package wavemin

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"wavemin/internal/faultinject"
)

// treeJSON snapshots the design's tree so tests can assert that a failed
// Optimize left it byte-for-byte untouched.
func treeJSON(t *testing.T, d *Design) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.SaveTree(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// blockAt installs a fault hook at site that signals first entry and then
// parks every caller until release is closed.
func blockAt(t *testing.T, site string) (entered chan struct{}, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	faultinject.Set(site, func() {
		once.Do(func() { close(entered) })
		<-release
	})
	t.Cleanup(func() { faultinject.Clear(site) })
	return entered, release
}

// multiModeDesign is the s15850 two-mode fixture shared by the multi-mode
// robustness tests.
func multiModeDesign(t *testing.T) *Design {
	t.Helper()
	d, err := Benchmark("s15850")
	if err != nil {
		t.Fatal(err)
	}
	domains := d.PartitionVoltageIslands(4)
	if err := d.SetModes([]Mode{
		{Name: "M1", Supplies: map[string]float64{domains[0]: 1.1, domains[1]: 1.1, domains[2]: 1.1, domains[3]: 1.1}},
		{Name: "M2", Supplies: map[string]float64{domains[0]: 0.9, domains[1]: 1.1, domains[2]: 0.9, domains[3]: 1.1}},
	}); err != nil {
		t.Fatal(err)
	}
	return d
}

// assertCancelPrompt drives opt on a fresh goroutine, waits for the solver
// to reach the injection site, cancels, and requires a prompt
// context.Canceled return with the tree unmodified.
func assertCancelPrompt(t *testing.T, d *Design, site string, opt func(context.Context) error) {
	t.Helper()
	before := treeJSON(t, d)
	entered, release := blockAt(t, site)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- opt(ctx) }()
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("solver never reached the injection site")
	}
	cancel()
	start := time.Now()
	close(release)
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Optimize did not return after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond+timingSlack/5 {
		t.Errorf("returned %v after cancel, want < ~100ms", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !bytes.Equal(before, treeJSON(t, d)) {
		t.Fatal("canceled optimization modified the tree")
	}
}

// TestOptimizeCancelPrompt covers every single-mode solver on the s13207
// benchmark: cancellation mid-solve must surface context.Canceled promptly
// and leave the design untouched. A plain cancellation (no budget) must
// NOT silently degrade to a cheaper algorithm.
func TestOptimizeCancelPrompt(t *testing.T) {
	cases := []struct {
		algo Algorithm
		site string
	}{
		{WaveMin, faultinject.SiteMospSolve},
		{WaveMinFast, faultinject.SiteMospSolveFast},
		{PeakMin, faultinject.SitePeakminSolve},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.algo.String(), func(t *testing.T) {
			d, err := Benchmark("s13207")
			if err != nil {
				t.Fatal(err)
			}
			assertCancelPrompt(t, d, tc.site, func(ctx context.Context) error {
				_, err := d.Optimize(ctx, Config{Samples: 32, MaxIntervals: 4, Algorithm: tc.algo})
				return err
			})
		})
	}
}

// TestMultiModeOptimizeCancelPrompt is the ClkWaveMin-M variant: even
// though the solver inserts ADBs mid-flight, a cancellation must leave the
// facade's tree unmodified (all mutation happens on a clone).
func TestMultiModeOptimizeCancelPrompt(t *testing.T) {
	d := multiModeDesign(t)
	assertCancelPrompt(t, d, faultinject.SiteMultimodeZone, func(ctx context.Context) error {
		_, err := d.Optimize(ctx, Config{Kappa: 14, Samples: 16, EnableADI: true, MaxIntersections: 4})
		return err
	})
}

// TestMeasureCancelPrompt cancels the power-grid transient underneath
// Measure.
func TestMeasureCancelPrompt(t *testing.T) {
	d, err := Benchmark("s13207")
	if err != nil {
		t.Fatal(err)
	}
	entered, release := blockAt(t, faultinject.SitePowergridSim)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := d.Measure(ctx)
		done <- err
	}()
	<-entered
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Measure err = %v, want context.Canceled", err)
	}
}

// TestOptimizePanicBecomesInternalError injects a panic into the MOSP
// solver and requires the facade to convert it into *InternalError with a
// captured stack, leaving the tree unmodified and the design usable.
func TestOptimizePanicBecomesInternalError(t *testing.T) {
	d, err := New(gridSinks(12))
	if err != nil {
		t.Fatal(err)
	}
	before := treeJSON(t, d)
	faultinject.Set(faultinject.SiteMospSolve, func() { panic("injected fault") })
	t.Cleanup(func() { faultinject.Clear(faultinject.SiteMospSolve) })
	_, err = d.Optimize(context.Background(), Config{Samples: 16, MaxIntervals: 2})
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if ie.Value != "injected fault" {
		t.Fatalf("panic value = %v", ie.Value)
	}
	if !strings.Contains(string(ie.Stack), "faultinject") {
		t.Fatal("stack trace does not include the panic site")
	}
	if !strings.Contains(ie.Error(), "injected fault") {
		t.Fatalf("Error() = %q", ie.Error())
	}
	if !bytes.Equal(before, treeJSON(t, d)) {
		t.Fatal("panicked Optimize modified the tree")
	}
	// The design must remain fully usable after the failure.
	faultinject.Clear(faultinject.SiteMospSolve)
	if _, err := d.Optimize(context.Background(), Config{Samples: 16, MaxIntervals: 2}); err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
}

// TestMultiModePanicLeavesTreeUnmodified: a panic after ADB insertion has
// already mutated the working clone must not leak any of that mutation
// into the design.
func TestMultiModePanicLeavesTreeUnmodified(t *testing.T) {
	d := multiModeDesign(t)
	before := treeJSON(t, d)
	faultinject.Set(faultinject.SiteMultimodeZone, func() { panic("mid-zone fault") })
	t.Cleanup(func() { faultinject.Clear(faultinject.SiteMultimodeZone) })
	_, err := d.Optimize(context.Background(), Config{Kappa: 14, Samples: 16, EnableADI: true, MaxIntersections: 4})
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *InternalError", err, err)
	}
	if !bytes.Equal(before, treeJSON(t, d)) {
		t.Fatal("panicked multi-mode Optimize modified the tree")
	}
}

// TestOptimizeDegradesToFast delays the ClkWaveMin rung past its slice of
// the budget; the ladder must answer with ClkWaveMin-f and say so.
func TestOptimizeDegradesToFast(t *testing.T) {
	for _, via := range []string{"budget", "ctx-deadline"} {
		via := via
		t.Run(via, func(t *testing.T) {
			d, err := New(gridSinks(12))
			if err != nil {
				t.Fatal(err)
			}
			// The first rung's slice is half the 800ms budget; a 450ms
			// stall at the MOSP entry blows it deterministically.
			faultinject.Set(faultinject.SiteMospSolve, func() { time.Sleep(450 * time.Millisecond) })
			t.Cleanup(func() { faultinject.Clear(faultinject.SiteMospSolve) })
			cfg := Config{Samples: 16, MaxIntervals: 2}
			ctx := context.Background()
			const budget = 800 * time.Millisecond
			if via == "budget" {
				cfg.Budget = budget
			} else {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, budget)
				defer cancel()
			}
			start := time.Now()
			res, err := d.Optimize(ctx, cfg)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Degraded {
				t.Fatal("expected a degraded result")
			}
			if res.AlgorithmUsed != "ClkWaveMin-f" {
				t.Fatalf("AlgorithmUsed = %q, want ClkWaveMin-f", res.AlgorithmUsed)
			}
			if elapsed > 2*budget+timingSlack {
				t.Fatalf("took %v, want < ~2× the %v budget", elapsed, budget)
			}
			if res.After.PeakCurrent <= 0 || res.NumBuffers+res.NumInverters == 0 {
				t.Fatalf("degraded result is missing metrics: %+v", res)
			}
			if err := d.Tree.Validate(); err != nil {
				t.Fatalf("tree invalid after degraded optimize: %v", err)
			}
		})
	}
}

// TestOptimizeExhaustedLadder stalls every rung; the bottom of the ladder
// must hand back the unmodified tree with Before metrics instead of an
// error.
func TestOptimizeExhaustedLadder(t *testing.T) {
	d, err := New(gridSinks(12))
	if err != nil {
		t.Fatal(err)
	}
	before := treeJSON(t, d)
	for _, site := range []string{
		faultinject.SiteMospSolve, faultinject.SiteMospSolveFast, faultinject.SitePeakminSolve,
	} {
		faultinject.Set(site, func() { time.Sleep(300 * time.Millisecond) })
	}
	t.Cleanup(faultinject.Reset)
	start := time.Now()
	res, err := d.Optimize(context.Background(), Config{Samples: 16, MaxIntervals: 2, Budget: 250 * time.Millisecond})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.AlgorithmUsed != AlgorithmNone {
		t.Fatalf("Degraded=%v AlgorithmUsed=%q, want exhausted ladder", res.Degraded, res.AlgorithmUsed)
	}
	if res.After != res.Before {
		t.Fatalf("exhausted ladder must report Before metrics unchanged: %+v vs %+v", res.After, res.Before)
	}
	if elapsed > 1500*time.Millisecond+timingSlack {
		t.Fatalf("exhausted ladder took %v", elapsed)
	}
	if !bytes.Equal(before, treeJSON(t, d)) {
		t.Fatal("exhausted ladder modified the tree")
	}
}

// TestOptimizeTightBudgetS35932 is the acceptance scenario from the issue:
// on s35932 (whose full ClkWaveMin run needs roughly 750ms here) a 300ms
// budget must return within ~2× the budget with Result.Degraded set and a
// valid tree — never hang, never panic.
func TestOptimizeTightBudgetS35932(t *testing.T) {
	d, err := Benchmark("s35932")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 300 * time.Millisecond
	start := time.Now()
	res, err := d.Optimize(context.Background(), Config{Budget: budget})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*budget+timingSlack {
		t.Fatalf("took %v, want < ~2× the %v budget", elapsed, budget)
	}
	if !res.Degraded {
		t.Fatalf("expected degradation under a %v budget (AlgorithmUsed=%q)", budget, res.AlgorithmUsed)
	}
	if res.AlgorithmUsed == "ClkWaveMin" {
		t.Fatal("degraded result still claims the full algorithm")
	}
	if err := d.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid after budgeted optimize: %v", err)
	}
}

// TestOptimizeNoDeadlineNeverDegrades: without a budget or deadline the
// ladder has exactly one rung, so results match the plain seed flow.
func TestOptimizeNoDeadlineNeverDegrades(t *testing.T) {
	d, err := New(gridSinks(12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Optimize(context.Background(), Config{Samples: 16, MaxIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("no-deadline run reported Degraded")
	}
	if res.AlgorithmUsed != "ClkWaveMin" {
		t.Fatalf("AlgorithmUsed = %q", res.AlgorithmUsed)
	}
}

// TestDynamicPolarityCancel covers the dynamic-polarity (XOR) path.
func TestDynamicPolarityCancel(t *testing.T) {
	d := multiModeDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.OptimizeDynamicPolarity(ctx, Config{Samples: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
