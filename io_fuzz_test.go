package wavemin

import (
	"strings"
	"testing"
)

// FuzzLoadSinksCSV checks the CSV loader never panics and accepted sinks
// are physically sane.
// FuzzLoadTree checks the tree loader never panics and every accepted
// tree is internally consistent: LoadTree is the one entry point that
// takes fully untrusted input, and the engine assumes Validate()-level
// invariants everywhere downstream. The seeds are the malformed-tree
// shapes the PR 1 hardening pass rejected one by one: wrong format tag,
// empty node list, unknown cell, out-of-range / duplicate IDs, dangling
// parents, non-root node 0, negative or non-finite parasitics, and adjust
// steps on a cell that has none.
func FuzzLoadTree(f *testing.F) {
	valid := `{"format":"wavemin-clocktree-v1","nodes":[
 {"id":0,"parent":-1,"cell":"BUF_X8","x":10,"y":10},
 {"id":1,"parent":0,"cell":"BUF_X8","x":20,"y":10,"wire_res":1,"wire_cap":2,"sink_cap":8},
 {"id":2,"parent":0,"cell":"INV_X8","x":10,"y":20,"wire_res":1,"wire_cap":2,"sink_cap":8,"domain":"d1"}]}`
	seeds := []string{
		valid,
		`{}`,
		`{"format":"wavemin-clocktree-v0","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"NOPE","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":5,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":0,"parent":0,"cell":"BUF_X8","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":7,"cell":"BUF_X8","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0,"wire_res":-4}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0,"sink_cap":-1}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":1e999,"y":0}]}`,
		`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0,"adjust_steps":{"m1":3}}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := LoadTree(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted trees must round-trip through SaveTree and hold the
		// structural invariants the solvers rely on.
		if d.Tree.Len() == 0 {
			t.Fatal("accepted empty tree")
		}
		if len(d.Tree.Leaves()) == 0 {
			t.Fatal("accepted tree with no leaves")
		}
		var buf strings.Builder
		if err := d.SaveTree(&buf); err != nil {
			t.Fatalf("accepted tree failed to save: %v", err)
		}
		if _, err := LoadTree(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("saved tree failed to reload: %v", err)
		}
	})
}

func FuzzLoadSinksCSV(f *testing.F) {
	f.Add("x_um,y_um,cap_fF\n10,20,8\n")
	f.Add("1,2,3\n")
	f.Add("x_um,y_um,cap_fF\n")
	f.Add(",,\n")
	f.Add("a,b,c\n1,2,3")
	f.Fuzz(func(t *testing.T, src string) {
		sinks, err := LoadSinksCSV(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, s := range sinks {
			if s.Cap <= 0 {
				t.Fatalf("accepted non-positive cap %g", s.Cap)
			}
		}
	})
}
