package wavemin

import (
	"strings"
	"testing"
)

// FuzzLoadSinksCSV checks the CSV loader never panics and accepted sinks
// are physically sane.
func FuzzLoadSinksCSV(f *testing.F) {
	f.Add("x_um,y_um,cap_fF\n10,20,8\n")
	f.Add("1,2,3\n")
	f.Add("x_um,y_um,cap_fF\n")
	f.Add(",,\n")
	f.Add("a,b,c\n1,2,3")
	f.Fuzz(func(t *testing.T, src string) {
		sinks, err := LoadSinksCSV(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, s := range sinks {
			if s.Cap <= 0 {
				t.Fatalf("accepted non-positive cap %g", s.Cap)
			}
		}
	})
}
