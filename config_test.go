package wavemin

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestConfigValidateAcceptsZeroAndSaneValues(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must be valid (defaults): %v", err)
	}
	full := Config{
		Kappa: 20, Samples: 64, Epsilon: 0.05, ZoneSize: 50,
		Algorithm: PeakMin, MaxIntervals: 4, MaxIntersections: 8,
		Budget: time.Second, EnableADI: true,
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("fully-specified config must be valid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative kappa", func(c *Config) { c.Kappa = -1 }},
		{"NaN kappa", func(c *Config) { c.Kappa = math.NaN() }},
		{"samples below 2", func(c *Config) { c.Samples = 1 }},
		{"negative epsilon", func(c *Config) { c.Epsilon = -0.01 }},
		{"NaN epsilon", func(c *Config) { c.Epsilon = math.NaN() }},
		{"negative zone size", func(c *Config) { c.ZoneSize = -5 }},
		{"NaN zone size", func(c *Config) { c.ZoneSize = math.NaN() }},
		{"unknown algorithm", func(c *Config) { c.Algorithm = Algorithm(42) }},
		{"negative algorithm", func(c *Config) { c.Algorithm = Algorithm(-1) }},
		{"negative interval cap", func(c *Config) { c.MaxIntervals = -1 }},
		{"negative intersection cap", func(c *Config) { c.MaxIntersections = -3 }},
		{"negative budget", func(c *Config) { c.Budget = -time.Second }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var cfg Config
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", cfg)
			}
			if !strings.HasPrefix(err.Error(), "wavemin: ") {
				t.Fatalf("error %q missing package prefix", err)
			}
		})
	}
}

// TestOptimizeRejectsInvalidConfig: both facade entry points must refuse a
// bad configuration before touching the tree.
func TestOptimizeRejectsInvalidConfig(t *testing.T) {
	d, err := New(gridSinks(4))
	if err != nil {
		t.Fatal(err)
	}
	bad := Config{Samples: 1}
	if _, err := d.Optimize(context.Background(), bad); err == nil {
		t.Fatal("Optimize accepted invalid config")
	}
	if _, err := d.OptimizeDynamicPolarity(context.Background(), bad); err == nil {
		t.Fatal("OptimizeDynamicPolarity accepted invalid config")
	}
}
