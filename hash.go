package wavemin

import (
	"sort"
	"strconv"
	"strings"

	"wavemin/internal/canon"
)

// cacheKeyFormat versions the canonical request encoding. Bump it whenever
// the canonical form of any section changes, so stale cache entries from an
// older encoding can never alias a new request.
const cacheKeyFormat = "wavemin-cachekey-v1"

// CacheKey returns the content hash of the optimization problem "this
// design's tree, in these modes, under this configuration" in canonical
// form — the key a result cache should store Optimize results under.
//
// Two requests get the same key iff they denote the same problem:
//
//   - the tree section is the canonical JSON serialization (SaveTree), so
//     any two in-memory trees with identical topology, placement,
//     parasitics, cells, domains, and ADB settings hash identically no
//     matter how they were built or what key order their source JSON used;
//   - the config section fills defaults first, so Config{} and a config
//     spelling out the paper defaults hash identically — and it covers
//     ONLY the fields that define the problem (Kappa, Samples, Epsilon,
//     ZoneSize, Algorithm, EnableADI, MaxIntervals, MaxIntersections).
//     Workers is excluded because results are bitwise identical at every
//     worker count; Budget is excluded because it is execution policy, not
//     problem statement (callers must not cache Degraded results, which
//     are the only way Budget can show through); ECO is excluded because
//     an incremental run replays bitwise-identical zone solutions — the
//     same problem answered faster is still the same problem;
//   - the modes section sorts the mode list (and each mode's supply map)
//     canonically and drops exact duplicates, so permuted-but-identical
//     mode lists hash identically while any semantic change — a mode
//     name, a domain, a supply voltage — changes the key;
//   - the die section pins the power-grid extent (the one Design property
//     not derivable from the tree), so two identical trees measured
//     against different die sizes do not alias.
//
// Trace/telemetry state and timing data never enter the key: they describe
// a run, not the problem. The configuration is validated first; an invalid
// one returns its Validate error.
func (d *Design) CacheKey(cfg Config) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	var tree strings.Builder
	if err := d.SaveTree(&tree); err != nil {
		return "", err
	}
	d.mu.Lock()
	modes := append([]Mode(nil), d.Modes...)
	dieW, dieH := d.dieW, d.dieH
	d.mu.Unlock()

	h := canon.NewHasher(cacheKeyFormat)
	h.Section("tree", tree.String())
	h.Section("config", cfg.canonical())
	h.Section("modes", canonicalModes(modes))
	h.Section("die", canonFloat(dieW)+"x"+canonFloat(dieH))
	return h.Sum(), nil
}

// canonical renders the problem-defining configuration fields with
// defaults filled, in a fixed order with shortest-round-trip float
// formatting.
func (c Config) canonical() string {
	f := c.withDefaults()
	return strings.Join([]string{
		"kappa=" + canonFloat(f.Kappa),
		"samples=" + strconv.Itoa(f.Samples),
		"epsilon=" + canonFloat(f.Epsilon),
		"zone=" + canonFloat(f.ZoneSize),
		"algorithm=" + f.Algorithm.String(),
		"adi=" + strconv.FormatBool(f.EnableADI),
		"max_intervals=" + strconv.Itoa(f.MaxIntervals),
		"max_intersections=" + strconv.Itoa(f.MaxIntersections),
	}, " ")
}

// canonicalModes renders a mode list order-independently: every mode's
// supply map is rendered with sorted domains, the rendered modes are
// sorted, and exact duplicates (same name, same supplies) are dropped —
// a duplicated mode adds no constraint.
func canonicalModes(modes []Mode) string {
	rendered := make([]string, 0, len(modes))
	for _, m := range modes {
		domains := make([]string, 0, len(m.Supplies))
		for dom := range m.Supplies {
			domains = append(domains, dom)
		}
		sort.Strings(domains)
		var sb strings.Builder
		sb.WriteString(strconv.Quote(m.Name))
		sb.WriteByte('{')
		for i, dom := range domains {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Quote(dom))
			sb.WriteByte('=')
			sb.WriteString(canonFloat(m.Supplies[dom]))
		}
		sb.WriteByte('}')
		rendered = append(rendered, sb.String())
	}
	sort.Strings(rendered)
	out := rendered[:0]
	for _, r := range rendered {
		if len(out) == 0 || out[len(out)-1] != r {
			out = append(out, r)
		}
	}
	return strings.Join(out, ";")
}

// canonFloat is the one float rendering used in cache keys — shared with
// the zone-level keys via internal/canon so the two formats can never
// drift apart.
func canonFloat(v float64) string {
	return canon.Float(v)
}
