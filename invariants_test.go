package wavemin

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"wavemin/internal/bench"
	"wavemin/internal/cell"
	"wavemin/internal/cts"
	"wavemin/internal/powergrid"
)

// propSpecs draws n randomized benchmark specs from a fixed master seed.
// Each spec's sink placement is itself seeded from its name (see
// bench.Spec), so one master seed pins the whole family and failures
// reproduce by name.
func propSpecs(n int) []bench.Spec {
	rng := rand.New(rand.NewSource(0x57A7E))
	specs := make([]bench.Spec, n)
	for i := range specs {
		leaves := 8 + rng.Intn(17) // 8..24 leaves
		die := 80 + 10*float64(rng.Intn(9))
		specs[i] = bench.Spec{
			Name:       fmt.Sprintf("prop-%02d", i),
			NumLeaves:  leaves,
			TargetN:    leaves + rng.Intn(leaves/2+1),
			DieW:       die,
			DieH:       die,
			MinSinkCap: 4,
			MaxSinkCap: 12,
			Clustered:  rng.Intn(2) == 1,
		}
	}
	return specs
}

// propDesign synthesizes a Design for a randomized spec, mirroring what
// Benchmark() does for the named circuits.
func propDesign(t *testing.T, spec bench.Spec) *Design {
	t.Helper()
	lib := cell.DefaultLibrary()
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := spec.Synthesize(lib, opt)
	if err != nil {
		t.Fatalf("%s: synthesize: %v", spec.Name, err)
	}
	grid, err := powergrid.New(spec.DieW, spec.DieH, powergrid.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: grid: %v", spec.Name, err)
	}
	return &Design{Tree: tree, Grid: grid, Modes: []Mode{NominalMode}, lib: lib,
		dieW: spec.DieW, dieH: spec.DieH}
}

// closeRel reports a ≈ b within relative tolerance tol (absolute near 0).
func closeRel(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

// TestInvariantProperties is the property suite over randomized benches:
// for every design and every optimizer, (1) the optimized tree meets the
// skew bound κ in every mode (WorstSkew is the max over modes), (2) the
// reported After metrics equal re-measuring the committed tree — i.e. the
// Result describes the assignment actually returned — and (3) the peaks
// order as peak(WaveMin) ≤ peak(PeakMin) ≤ peak(unmodified).
func TestInvariantProperties(t *testing.T) {
	const (
		kappa   = 20.0
		tol     = 1e-9 // reported-vs-recomputed: same arithmetic, same bytes
		skewTol = 1e-6
	)
	for _, spec := range propSpecs(6) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			ctx := context.Background()
			peaks := make(map[Algorithm]float64)
			var before float64
			for _, algo := range []Algorithm{PeakMin, WaveMin} {
				d := propDesign(t, spec)
				cfg := Config{Kappa: kappa, Samples: 32, MaxIntervals: 4, Algorithm: algo}
				res, err := d.Optimize(ctx, cfg)
				if err != nil {
					t.Fatalf("%v: %v", algo, err)
				}
				// (1) Skew bound honored after optimization.
				if res.After.WorstSkew > kappa+skewTol {
					t.Errorf("%v: skew %g exceeds κ=%g", algo, res.After.WorstSkew, kappa)
				}
				// (2) The Result matches the committed tree.
				m, err := d.Measure(ctx)
				if err != nil {
					t.Fatalf("%v: measure: %v", algo, err)
				}
				if !closeRel(m.PeakCurrent, res.After.PeakCurrent, tol) {
					t.Errorf("%v: reported peak %g != recomputed %g", algo, res.After.PeakCurrent, m.PeakCurrent)
				}
				if !closeRel(m.WorstSkew, res.After.WorstSkew, tol) {
					t.Errorf("%v: reported skew %g != recomputed %g", algo, res.After.WorstSkew, m.WorstSkew)
				}
				peaks[algo] = res.After.PeakCurrent
				before = res.Before.PeakCurrent
			}
			// (3) The optimizer hierarchy: WaveMin refines PeakMin's
			// objective, and both only ever commit an improvement over the
			// unmodified tree.
			if peaks[WaveMin] > peaks[PeakMin]+tol {
				t.Errorf("peak(WaveMin)=%g > peak(PeakMin)=%g", peaks[WaveMin], peaks[PeakMin])
			}
			if peaks[PeakMin] > before+tol {
				t.Errorf("peak(PeakMin)=%g > peak(unmodified)=%g", peaks[PeakMin], before)
			}
		})
	}
}

// TestInvariantPropertiesMultiMode repeats the skew and recompute checks
// on a multi-mode design: the bound must hold in the worst mode, after ADB
// insertion and retuning.
func TestInvariantPropertiesMultiMode(t *testing.T) {
	const kappa = 16.0
	spec, ok := bench.SpecByName("s15850")
	if !ok {
		t.Fatal("missing spec s15850")
	}
	d, err := Benchmark(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	names := d.PartitionVoltageIslands(3)
	if err := d.SetModes(spec.Modes(names, 2)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := d.Optimize(ctx, Config{Kappa: kappa, Samples: 16, MaxIntersections: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.WorstSkew > kappa+1e-6 {
		t.Errorf("multi-mode skew %g exceeds κ=%g", res.After.WorstSkew, kappa)
	}
	if res.After.PeakCurrent > res.Before.PeakCurrent+1e-9 {
		t.Errorf("multi-mode peak regressed: %g -> %g", res.Before.PeakCurrent, res.After.PeakCurrent)
	}
	m, err := d.Measure(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !closeRel(m.PeakCurrent, res.After.PeakCurrent, 1e-9) {
		t.Errorf("reported peak %g != recomputed %g", res.After.PeakCurrent, m.PeakCurrent)
	}
	if !closeRel(m.WorstSkew, res.After.WorstSkew, 1e-9) {
		t.Errorf("reported skew %g != recomputed %g", res.After.WorstSkew, m.WorstSkew)
	}
}
