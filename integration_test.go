package wavemin

import (
	"context"
	"math"
	"testing"

	"wavemin/internal/clocktree"
	"wavemin/internal/polarity"
)

// TestEndToEndSingleMode is the acceptance test for the paper's headline
// single-mode flow on a full benchmark: synthesize → optimize → verify
// every reported metric against the golden evaluator.
func TestEndToEndSingleMode(t *testing.T) {
	d, err := Benchmark("s13207")
	if err != nil {
		t.Fatal(err)
	}
	before, err := d.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if before.WorstSkew > 10 {
		t.Fatalf("CTS delivered %g ps skew, want <10 (the paper's zero-skew input)", before.WorstSkew)
	}
	res, err := d.Optimize(context.Background(), Config{Kappa: 20, Samples: 64, MaxIntervals: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Headline: double-digit peak reduction on this circuit.
	if res.PeakReduction() < 10 {
		t.Fatalf("peak reduction %.1f %%, want ≥10", res.PeakReduction())
	}
	// Noise must improve along with the peak.
	if res.After.VDDNoise >= res.Before.VDDNoise || res.After.GndNoise >= res.Before.GndNoise {
		t.Fatalf("rail noise did not improve: VDD %g→%g, Gnd %g→%g",
			res.Before.VDDNoise, res.After.VDDNoise, res.Before.GndNoise, res.After.GndNoise)
	}
	// Skew bound held with Observation-4 drift slack.
	if res.After.WorstSkew > 22 {
		t.Fatalf("skew %g ps exceeds κ=20 (+slack)", res.After.WorstSkew)
	}
	// A real mix of polarities at leaf level.
	if res.NumInverters == 0 || res.NumBuffers == 0 {
		t.Fatalf("degenerate assignment: %d buffers / %d inverters", res.NumBuffers, res.NumInverters)
	}
	// The Result metrics must match an independent re-measurement.
	again, err := d.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(again.PeakCurrent-res.After.PeakCurrent) > 1e-6 {
		t.Fatal("reported After metrics disagree with re-measurement")
	}
}

// TestEndToEndMultiMode covers the full ClkWaveMin-M path: islands, modes,
// ADB insertion, ADI conversion, per-mode skew verification.
func TestEndToEndMultiMode(t *testing.T) {
	d, err := Benchmark("s35932")
	if err != nil {
		t.Fatal(err)
	}
	pd := d.PartitionVoltageIslands(8)
	modes := make([]Mode, 3)
	for i := range modes {
		sup := make(map[string]float64, len(pd))
		for j, dom := range pd {
			sup[dom] = 1.1
			if i > 0 && j%(i+1) == 0 {
				sup[dom] = 0.9
			}
		}
		modes[i] = Mode{Name: []string{"M1", "M2", "M3"}[i], Supplies: sup}
	}
	if err := d.SetModes(modes); err != nil {
		t.Fatal(err)
	}
	res, err := d.Optimize(context.Background(), Config{Kappa: 14, Samples: 16, EnableADI: true, MaxIntersections: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.WorstSkew > 16 {
		t.Fatalf("multi-mode skew %g exceeds κ=14 (+slack)", res.After.WorstSkew)
	}
	if res.After.PeakCurrent > res.Before.PeakCurrent {
		t.Fatalf("peak regressed %g → %g", res.Before.PeakCurrent, res.After.PeakCurrent)
	}
	// Every mode individually must hold the bound (not just the worst).
	for _, m := range d.Modes {
		if s := d.Tree.ComputeTiming(m).Skew(d.Tree); s > 16 {
			t.Fatalf("mode %s skew %g", m.Name, s)
		}
	}
}

// TestOptimizerEstimateRanksLikeGoldenNoise sanity-checks the model chain:
// across several assignments, the optimizer's waveform estimate must rank
// configurations the same way the independent power-grid simulation does
// (within one inversion of tolerance) — the property that makes optimizing
// the estimate meaningful.
func TestOptimizerEstimateRanksLikeGoldenNoise(t *testing.T) {
	d, err := Benchmark("s15850")
	if err != nil {
		t.Fatal(err)
	}
	lib := d.lib
	sizing, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	cfg := polarity.Config{Library: sizing, Kappa: 20, Samples: 32, Epsilon: 0.05, MaxIntervals: 4}
	// Three assignments of very different quality.
	allBuf := make(polarity.Assignment)
	for _, leaf := range d.Tree.Leaves() {
		allBuf[leaf] = sizing.MustByName("BUF_X16")
	}
	nieh, err := polarity.NiehBaseline(d.Tree, sizing, clocktree.NominalMode)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := polarity.Optimize(context.Background(), d.Tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ est, noise float64 }
	score := func(a polarity.Assignment) pair {
		est, err := polarity.EstimatePeak(d.Tree, cfg, a)
		if err != nil {
			t.Fatal(err)
		}
		work := d.Tree.Clone()
		polarity.Apply(work, a)
		tm := work.ComputeTiming(clocktree.NominalMode)
		v, g, err := d.Grid.MeasureTreeNoise(context.Background(), work, tm)
		if err != nil {
			t.Fatal(err)
		}
		return pair{est: est, noise: math.Max(v, g)}
	}
	pAll, pNieh, pOpt := score(allBuf), score(nieh), score(opt.Assignment)
	// Estimate ordering: optimized < nieh < all-buffer.
	if !(pOpt.est <= pNieh.est && pNieh.est <= pAll.est) {
		t.Fatalf("estimate ordering broken: %g / %g / %g", pOpt.est, pNieh.est, pAll.est)
	}
	// Golden grid-noise ordering must agree on the extremes.
	if pOpt.noise >= pAll.noise {
		t.Fatalf("grid noise disagrees on extremes: opt %g vs all-buffer %g", pOpt.noise, pAll.noise)
	}
}
