package wavemin

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestParallelConcurrentOptimize is the -race regression for the Design
// concurrency contract: N concurrent Optimize calls (plus interleaved
// Measure and SaveTree readers) on ONE Design must be data-race free,
// every call must succeed, and the design must end in a consistent,
// fully-committed state. Before the snapshot/commit discipline this
// raced on the lazy library init and on Tree.ReplaceWith vs. the rungs'
// Tree.Clone.
func TestParallelConcurrentOptimize(t *testing.T) {
	d, err := New(gridSinks(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Samples: 16, MaxIntervals: 2, Workers: 2}

	const n = 4
	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = d.Optimize(context.Background(), cfg)
		}(i)
	}
	// Concurrent readers: Measure and SaveTree must observe only
	// fully-committed trees.
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := d.Measure(context.Background()); err != nil {
			t.Errorf("concurrent Measure: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		var sb strings.Builder
		if err := d.SaveTree(&sb); err != nil {
			t.Errorf("concurrent SaveTree: %v", err)
		}
		if _, err := LoadTree(strings.NewReader(sb.String())); err != nil {
			t.Errorf("concurrently saved tree does not reload: %v", err)
		}
	}()
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("optimize %d: %v", i, errs[i])
		}
		if results[i].AlgorithmUsed != "ClkWaveMin" {
			t.Fatalf("optimize %d answered by %q", i, results[i].AlgorithmUsed)
		}
	}
	if err := d.Tree.Validate(); err != nil {
		t.Fatalf("committed tree invalid: %v", err)
	}
	// Commits are atomic and last-wins: the design must hold exactly the
	// tree of one of the runs, so a fresh measurement must reproduce that
	// run's After metrics bit for bit.
	m, err := d.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	matched := false
	for i := range results {
		if m == results[i].After {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("committed tree measures %+v, matching no run's After", m)
	}
}
