// Variation: the §VII-D robustness question — after optimizing a tree
// right up to the skew bound, how often does manufacturing variation break
// it? Runs a Monte Carlo over wire and device variation and reports skew
// yield and the spread of the peak current.
package main

import (
	"context"
	"fmt"
	"log"

	"wavemin"
	"wavemin/internal/variation"
)

func main() {
	log.SetFlags(0)

	design, err := wavemin.Benchmark("s38584")
	if err != nil {
		log.Fatal(err)
	}
	const kappa = 100.0
	if _, err := design.Optimize(context.Background(), wavemin.Config{Kappa: kappa, Samples: 64, MaxIntervals: 6}); err != nil {
		log.Fatal(err)
	}

	for _, sigma := range []float64{0.03, 0.05, 0.08} {
		stats, err := variation.MonteCarlo(context.Background(), design.Tree, variation.Params{
			Sigma: sigma,
			N:     400,
			Kappa: kappa,
			Seed:  1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("σ/µ = %.0f%%: skew yield %5.1f%%  (mean skew %.1f ps, worst %.1f ps)  peak %.2f mA ± %.1f%%\n",
			sigma*100, stats.Yield*100, stats.MeanSkew, stats.WorstSkew,
			stats.MeanPeak/1000, stats.NormSDev*100)
	}
}
