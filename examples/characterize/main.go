// Characterize: build NLDM-style lookup tables for the sizing library by
// sweeping input slew and output load, dump them in the Liberty-flavoured
// text format, and cross-check one cell against the transistor-level
// (switched-conductance) simulation — the characterization flow behind the
// paper's Fig. 7.
package main

import (
	"fmt"
	"log"
	"os"

	"wavemin/internal/cell"
)

func main() {
	log.SetFlags(0)

	lib := cell.SizingLibrary()
	slews := []float64{10, 20, 40, 80}
	loads := []float64{2, 4, 8, 16, 32}

	var tables []cell.CellTables
	for _, c := range lib.Cells() {
		ct, err := cell.BuildTables(c, 1.1, slews, loads)
		if err != nil {
			log.Fatal(err)
		}
		tables = append(tables, ct)
	}
	if err := cell.WriteLiberty(os.Stdout, "wavemin_45nm", 1.1, tables); err != nil {
		log.Fatal(err)
	}

	// Cross-validate the analytic model against the transistor-level
	// testbench for one operating point.
	c := lib.MustByName("INV_X8")
	p, err := cell.SpiceCharacterize(c, cell.Rising, 8, 1.1, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\ncross-check INV_X8 @ 8 fF, 1.1 V, rising edge:\n")
	fmt.Fprintf(os.Stderr, "  delay:    analytic %.2f ps, switched-conductance sim %.2f ps\n",
		c.Delay(8, 1.1), p.TD)
	fmt.Fprintf(os.Stderr, "  ISS peak: analytic %.1f µA, switched-conductance sim %.1f µA\n",
		c.PeakMinus(8, 1.1), p.PeakISS())
}
