// Noisemap: visualize where on the die the clock tree's switching noise
// concentrates, before and after the WaveMin assignment — an ASCII heat
// map of per-zone peak current, the spatial view behind the paper's
// zone-by-zone optimization.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"wavemin"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/polarity"
	"wavemin/internal/waveform"
)

const zoneSize = 50.0

// zonePeaks computes each 50×50 µm tile's worst accumulated current peak.
func zonePeaks(tree *clocktree.Tree) map[[2]int]float64 {
	tm := tree.ComputeTiming(clocktree.NominalMode)
	peaks := make(map[[2]int]float64)
	for _, zone := range polarity.PartitionZones(tree, zoneSize) {
		ids := append(append([]clocktree.NodeID(nil), zone.Leaves...), zone.NonLeaves...)
		var worst float64
		for _, e := range []cell.Edge{cell.Rising, cell.Falling} {
			idd, iss := tree.SumCurrents(tm, ids, e)
			for _, w := range []waveform.Waveform{idd, iss} {
				if p, _ := w.Peak(); p > worst {
					worst = p
				}
			}
		}
		peaks[zone.Key] = worst
	}
	return peaks
}

// render draws the tile grid with one glyph per noise decade.
func render(peaks map[[2]int]float64, max float64) {
	glyphs := []byte(" .:-=+*#%@")
	var maxX, maxY int
	for k := range peaks {
		if k[0] > maxX {
			maxX = k[0]
		}
		if k[1] > maxY {
			maxY = k[1]
		}
	}
	for y := maxY; y >= 0; y-- {
		fmt.Printf("%4d | ", y)
		for x := 0; x <= maxX; x++ {
			p := peaks[[2]int{x, y}]
			idx := int(math.Round(p / max * float64(len(glyphs)-1)))
			if idx >= len(glyphs) {
				idx = len(glyphs) - 1
			}
			fmt.Printf("%c ", glyphs[idx])
		}
		fmt.Println()
	}
}

func main() {
	log.SetFlags(0)
	design, err := wavemin.Benchmark("s35932")
	if err != nil {
		log.Fatal(err)
	}

	before := zonePeaks(design.Tree)
	if _, err := design.Optimize(context.Background(), wavemin.Config{Kappa: 20, Samples: 64, MaxIntervals: 6}); err != nil {
		log.Fatal(err)
	}
	after := zonePeaks(design.Tree)

	var max, worstB, worstA float64
	for _, p := range before {
		max = math.Max(max, p)
		worstB = math.Max(worstB, p)
	}
	for _, p := range after {
		max = math.Max(max, p)
		worstA = math.Max(worstA, p)
	}

	fmt.Printf("s35932 zone noise map (%g µm tiles; scale ' ' = quiet, '@' = %.1f mA)\n\n", zoneSize, max/1000)
	fmt.Println("before WaveMin:")
	render(before, max)
	fmt.Println("\nafter WaveMin:")
	render(after, max)
	fmt.Printf("\nworst zone peak: %.2f mA -> %.2f mA\n", worstB/1000, worstA/1000)
}
