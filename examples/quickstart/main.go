// Quickstart: synthesize a clock tree over a handful of flip-flop groups,
// run the WaveMin polarity assignment, and print the before/after peak
// current, rail noise, and skew.
package main

import (
	"context"
	"fmt"
	"log"

	"wavemin"
)

func main() {
	log.SetFlags(0)

	// Sixteen flip-flop groups on a 100×100 µm block, ~8 fF each.
	var sinks []wavemin.Sink
	for i := 0; i < 16; i++ {
		sinks = append(sinks, wavemin.Sink{
			X:   float64(15 + (i%4)*25),
			Y:   float64(15 + (i/4)*25),
			Cap: 8,
		})
	}

	design, err := wavemin.New(sinks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized clock tree: %d buffering elements, %d leaves\n",
		design.Tree.Len(), len(design.Tree.Leaves()))

	res, err := design.Optimize(context.Background(), wavemin.Config{
		Kappa:   20, // clock skew bound, ps
		Samples: 64, // fine-grained time sampling
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("peak current: %.2f mA -> %.2f mA  (%.1f%% lower)\n",
		res.Before.PeakCurrent/1000, res.After.PeakCurrent/1000, res.PeakReduction())
	fmt.Printf("VDD noise:    %.2f mV -> %.2f mV\n",
		res.Before.VDDNoise*1000, res.After.VDDNoise*1000)
	fmt.Printf("Gnd noise:    %.2f mV -> %.2f mV\n",
		res.Before.GndNoise*1000, res.After.GndNoise*1000)
	fmt.Printf("clock skew:   %.2f ps -> %.2f ps (bound 20 ps)\n",
		res.Before.WorstSkew, res.After.WorstSkew)
	fmt.Printf("leaf cells:   %d buffers / %d inverters\n",
		res.NumBuffers, res.NumInverters)
}
