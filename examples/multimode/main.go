// Multimode: a low-power design with voltage islands and dynamically
// switched power modes. The skew bound must hold in *every* mode; where
// buffer sizing cannot manage that, adjustable delay buffers are inserted
// and — with EnableADI — some become the paper's adjustable delay
// inverters, recovering polarity freedom on those sites.
package main

import (
	"context"
	"fmt"
	"log"

	"wavemin"
)

func main() {
	log.SetFlags(0)

	design, err := wavemin.Benchmark("s13207")
	if err != nil {
		log.Fatal(err)
	}

	// Partition the die into four voltage islands and define three power
	// modes: everything nominal, and two low-power modes that drop
	// different island pairs to 0.9 V.
	pd := design.PartitionVoltageIslands(4)
	modes := []wavemin.Mode{
		{Name: "perf", Supplies: map[string]float64{pd[0]: 1.1, pd[1]: 1.1, pd[2]: 1.1, pd[3]: 1.1}},
		{Name: "save1", Supplies: map[string]float64{pd[0]: 0.9, pd[1]: 0.9, pd[2]: 1.1, pd[3]: 1.1}},
		{Name: "save2", Supplies: map[string]float64{pd[0]: 1.1, pd[1]: 0.9, pd[2]: 0.9, pd[3]: 0.9}},
	}
	if err := design.SetModes(modes); err != nil {
		log.Fatal(err)
	}

	before, err := design.Measure(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-mode skew before optimization: %.2f ps\n", before.WorstSkew)

	res, err := design.Optimize(context.Background(), wavemin.Config{
		Kappa:     14,
		Samples:   32,
		EnableADI: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("peak current: %.2f mA -> %.2f mA (%.1f%% lower)\n",
		res.Before.PeakCurrent/1000, res.After.PeakCurrent/1000, res.PeakReduction())
	fmt.Printf("worst skew:   %.2f ps -> %.2f ps (bound 14 ps, all %d modes)\n",
		res.Before.WorstSkew, res.After.WorstSkew, len(modes))
	fmt.Printf("leaf cells:   %d buffers, %d inverters, %d ADBs, %d ADIs\n",
		res.NumBuffers, res.NumInverters, res.NumADBs, res.NumADIs)
	if res.ADBInserted > 0 {
		fmt.Printf("(%d ADBs were inserted to make κ feasible across modes)\n", res.ADBInserted)
	}
}
