// Dynamicpolarity: the research direction the paper cites as [30, 31] —
// instead of committing one static buffer/inverter choice per leaf, drive
// each flip-flop group through an XOR gate with a per-power-mode control
// bit (and double-edge-triggered flip-flops), so the polarity program can
// be re-optimized for every mode with zero timing impact.
package main

import (
	"context"
	"fmt"
	"log"

	"wavemin"
)

func main() {
	log.SetFlags(0)

	design, err := wavemin.Benchmark("s38584")
	if err != nil {
		log.Fatal(err)
	}
	pd := design.PartitionVoltageIslands(4)
	modes := []wavemin.Mode{
		{Name: "perf", Supplies: map[string]float64{pd[0]: 1.1, pd[1]: 1.1, pd[2]: 1.1, pd[3]: 1.1}},
		{Name: "save1", Supplies: map[string]float64{pd[0]: 0.9, pd[1]: 1.1, pd[2]: 0.9, pd[3]: 1.1}},
		{Name: "save2", Supplies: map[string]float64{pd[0]: 1.1, pd[1]: 0.9, pd[2]: 1.1, pd[3]: 0.9}},
	}
	if err := design.SetModes(modes); err != nil {
		log.Fatal(err)
	}

	res, err := design.OptimizeDynamicPolarity(context.Background(), wavemin.Config{Samples: 32})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dynamic polarity program for %d leaves, %d modes:\n",
		len(res.Positive), len(modes))
	for _, m := range modes {
		fmt.Printf("  %-6s worst-zone peak %7.2f mA, %3d of %d leaves run flipped\n",
			m.Name, res.PeakPerMode[m.Name]/1000, res.FlipsPerMode[m.Name], len(res.Positive))
	}

	// How different are the per-mode programs? Count leaves whose polarity
	// changes between any two modes — the flexibility a static assignment
	// gives up.
	dynamic := 0
	for _, byMode := range res.Positive {
		first := byMode[modes[0].Name]
		for _, m := range modes[1:] {
			if byMode[m.Name] != first {
				dynamic++
				break
			}
		}
	}
	fmt.Printf("leaves whose polarity changes across modes: %d\n", dynamic)
}
