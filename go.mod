module wavemin

go 1.22
