package wavemin

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/powergrid"
)

// LoadSinksCSV reads sink placements from CSV with the header
// "x_um,y_um,cap_fF" — the format cmd/benchgen emits, so generated
// benchmarks can be piped into external flows and back.
func LoadSinksCSV(r io.Reader) ([]Sink, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("wavemin: sinks csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("wavemin: sinks csv: empty input")
	}
	start := 0
	if rows[0][0] == "x_um" {
		start = 1
	}
	var sinks []Sink
	for i, row := range rows[start:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("wavemin: sinks csv row %d: want 3 columns, got %d", i+start+1, len(row))
		}
		var vals [3]float64
		for j, f := range row {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("wavemin: sinks csv row %d col %d: %w", i+start+1, j+1, err)
			}
			vals[j] = v
		}
		if vals[2] <= 0 {
			return nil, fmt.Errorf("wavemin: sinks csv row %d: non-positive cap %g", i+start+1, vals[2])
		}
		sinks = append(sinks, Sink{X: vals[0], Y: vals[1], Cap: vals[2]})
	}
	return sinks, nil
}

// SaveTree serializes the design's clock tree (topology, placement,
// parasitics, cell assignment, ADB settings) as JSON. Safe to call
// concurrently with Optimize: the tree is serialized under the same lock
// Optimize commits under.
func (d *Design) SaveTree(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Tree.WriteJSON(w)
}

// LoadTree reconstructs a Design from a serialized clock tree: the power
// grid is rebuilt over the tree's bounding box and the modes reset to
// nominal (re-declare with SetModes).
func LoadTree(r io.Reader) (*Design, error) {
	lib := cell.DefaultLibrary()
	tree, err := clocktree.ReadJSON(r, lib)
	if err != nil {
		return nil, err
	}
	var w, h float64
	tree.Walk(func(n *clocktree.Node) {
		if n.X > w {
			w = n.X
		}
		if n.Y > h {
			h = n.Y
		}
	})
	grid, err := powergrid.New(w+10, h+10, powergrid.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Design{Tree: tree, Grid: grid, Modes: []Mode{NominalMode}, lib: lib,
		dieW: w + 10, dieH: h + 10}, nil
}
