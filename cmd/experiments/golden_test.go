package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the testdata goldens from current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/experiments -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// The golden tables are the fully deterministic ones: the worked-example
// feasibility matrix (Table IV) and the closed-form cell characterization
// (Tables II/III). The benchmark tables carry runtimes, so they are
// format-checked structurally elsewhere, not byte-pinned.

func TestGoldenTable4(t *testing.T) {
	res, err := experiments.RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4", res.Format())
}

func TestGoldenCharacterizationPaper(t *testing.T) {
	got := cell.CharacterizationTable(cell.PaperLibrary(), 0, []float64{0.9, 1.1})
	checkGolden(t, "characterization_paper", got)
}

func TestGoldenCharacterizationDefault(t *testing.T) {
	got := cell.CharacterizationTable(cell.SizingLibrary(), 6, []float64{0.9, clocktree.NominalVDD})
	checkGolden(t, "characterization_default", got)
}
