// Command experiments regenerates the paper's evaluation tables and
// figures on the synthetic benchmark substrate.
//
// Usage:
//
//	experiments -all                # everything (slow)
//	experiments -table 5           # one table (1, 2, 4, 5, 6, 7)
//	experiments -fig 2             # one figure (1, 2, 3, 6, 14)
//	experiments -mc                # the §VII-D Monte Carlo study
//	experiments -table 5 -quick    # reduced circuits/sampling
//
// Output is the text rendering of each table's rows; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"log"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/experiments"
	"wavemin/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		table     = flag.Int("table", 0, "table number to regenerate (1, 2, 4, 5, 6, 7)")
		fig       = flag.Int("fig", 0, "figure number to regenerate (1, 2, 3, 6, 14)")
		mc        = flag.Bool("mc", false, "run the Monte Carlo study (§VII-D)")
		baselines = flag.Bool("baselines", false, "compare the polarity-assignment lineage [22][23][27] vs WaveMin")
		all       = flag.Bool("all", false, "run everything")
		quick     = flag.Bool("quick", false, "reduced configuration (fewer circuits, coarser sampling)")
	)
	flag.Parse()

	quickCircuits := []string{"s13207", "s15850", "ispd09f34"}

	runTable := func(n int) {
		switch n {
		case 1:
			res, err := experiments.RunTable1()
			check(err)
			fmt.Println("== Table I: impact of sibling replacement on delay, rail peaks, slew")
			fmt.Println(res.Format())
			check(res.Check())
		case 2:
			fmt.Println("== Table II/III: cell characterization (worked-example library)")
			fmt.Println(cell.CharacterizationTable(cell.PaperLibrary(), 0, []float64{0.9, 1.1}))
			fmt.Println("== Default analytic library at 6 fF load")
			fmt.Println(cell.CharacterizationTable(cell.SizingLibrary(), 6, []float64{0.9, clocktree.NominalVDD}))
		case 4:
			res, err := experiments.RunTable4()
			check(err)
			fmt.Println("== Table IV: feasible intersections of the two-mode worked example (κ=5)")
			fmt.Println(res.Format())
		case 5:
			cfg := experiments.DefaultTable5Config()
			if *quick {
				cfg.Circuits = quickCircuits
				cfg.Samples = 32
				cfg.MaxIntervals = 4
			}
			res, err := experiments.RunTable5(cfg)
			check(err)
			fmt.Println("== Table V: ClkPeakMin vs ClkWaveMin (κ=20 ps, ε=0.01, |S|=", cfg.Samples, ")")
			fmt.Println(res.Format())
		case 6:
			cfg := experiments.DefaultTable6Config()
			if *quick {
				cfg.Circuits = quickCircuits
				cfg.SampleSweeps = []int{4, 8, 32}
				cfg.FastSamples = 32
				cfg.MaxIntervals = 4
			}
			res, err := experiments.RunTable6(cfg)
			check(err)
			fmt.Println("== Table VI: sampling-density sweep and ClkWaveMin-f")
			fmt.Println(res.Format())
		case 7:
			cfg := experiments.DefaultTable7Config()
			if *quick {
				cfg.Circuits = quickCircuits
				cfg.Samples = 16
				cfg.MaxIntersections = 4
			}
			res, err := experiments.RunTable7(cfg)
			check(err)
			fmt.Println("== Table VII: multi-mode — ADB-embedding-only vs ClkWaveMin-M")
			fmt.Println(res.Format())
		default:
			log.Fatalf("unknown table %d", n)
		}
	}

	runFig := func(n int) {
		switch n {
		case 1:
			res, err := experiments.RunFig1()
			check(err)
			fmt.Println("== Fig. 1: buffer vs inverter supply-current waveforms")
			fmt.Println("-- buffer (IDD/ISS at rising edge):")
			fmt.Println(report.Plot(64, 10,
				report.Series{Name: "IDD", W: res.Buffer.IDDRise},
				report.Series{Name: "ISS", W: res.Buffer.ISSRise}))
			fmt.Println("-- inverter (IDD/ISS at rising edge):")
			fmt.Println(report.Plot(64, 10,
				report.Series{Name: "IDD", W: res.Inverter.IDDRise},
				report.Series{Name: "ISS", W: res.Inverter.ISSRise}))
			fmt.Println(res.Format())
		case 2:
			res, err := experiments.RunFig2()
			check(err)
			fmt.Println("== Fig. 2: leaf-only vs all-node optimal polarity assignment")
			fmt.Println(res.Format())
			fmt.Println("-- (c) leaf-optimal assignment: leaf-only vs all-node IDD")
			fmt.Println(report.Plot(64, 10,
				report.Series{Name: "leaf-only", W: res.LeafBestLeafWave},
				report.Series{Name: "all-node", W: res.LeafBestAllWave}))
			fmt.Println("-- (d) true optimum: leaf-only vs all-node IDD")
			fmt.Println(report.Plot(64, 10,
				report.Series{Name: "leaf-only", W: res.AllBestLeafWave},
				report.Series{Name: "all-node", W: res.AllBestAllWave}))
			if res.ObservationHolds() {
				fmt.Println("Observation 1 demonstrated: leaf-optimal != true optimal")
			}
		case 3:
			res, err := experiments.RunFig3()
			check(err)
			fmt.Println("== Fig. 3: ADB-only vs ADB+ADI multi-mode optimization")
			fmt.Println(res.Format())
		case 6:
			res, err := experiments.RunFig6()
			check(err)
			fmt.Println("== Fig. 6: arrival-time grid and feasible intervals (κ=5)")
			fmt.Println(res.Format())
		case 14:
			circuit := "s35932"
			per := 8
			if *quick {
				circuit, per = "s15850", 5
			}
			res, err := experiments.RunFig14(circuit, per)
			check(err)
			fmt.Println("== Fig. 14: degree of freedom vs peak noise (", circuit, ")")
			xs := make([]float64, len(res.Points))
			ys := make([]float64, len(res.Points))
			for i, pt := range res.Points {
				xs[i] = float64(pt.DoF)
				ys[i] = pt.Peak
			}
			fmt.Println(report.Scatter(56, 12, xs, ys, "degree of freedom", "peak (µA)"))
			fmt.Println(res.Format())
		default:
			log.Fatalf("unknown figure %d", n)
		}
	}

	runMC := func() {
		cfg := experiments.DefaultMCConfig()
		if *quick {
			cfg.Circuits = quickCircuits
			cfg.Instances = 200
			cfg.Samples = 32
			cfg.MaxIntervals = 4
		}
		res, err := experiments.RunMonteCarlo(cfg)
		check(err)
		fmt.Printf("== §VII-D Monte Carlo (κ=%g ps, σ=%g, %d instances)\n",
			cfg.Kappa, cfg.Sigma, cfg.Instances)
		fmt.Println(res.Format())
	}

	runBaselines := func() {
		circuits := []string{"s13207", "s15850", "s35932", "s38584"}
		samples := 64
		if *quick {
			circuits = quickCircuits
			samples = 16
		}
		res, err := experiments.RunBaselineLadder(circuits, samples)
		check(err)
		fmt.Println("== Baseline ladder: golden peak (mA) per strategy")
		fmt.Println(res.Format())
	}

	switch {
	case *all:
		for _, n := range []int{1, 2, 4, 5, 6, 7} {
			runTable(n)
		}
		for _, n := range []int{1, 2, 3, 6, 14} {
			runFig(n)
		}
		runMC()
		runBaselines()
	case *table != 0:
		runTable(*table)
	case *fig != 0:
		runFig(*fig)
	case *mc:
		runMC()
	case *baselines:
		runBaselines()
	default:
		flag.Usage()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
