// Command wavemin optimizes a clock tree's peak supply current with the
// WaveMin polarity assignment.
//
// Usage:
//
//	wavemin -bench s35932 [-kappa 20] [-samples 158] [-algo wavemin]
//	wavemin -bench s13207 -modes 4 -domains 6 -kappa 16 -adi
//
// Single-mode runs use ClkWaveMin (or -algo fast|peakmin); declaring
// -modes > 1 switches to the multi-mode flow with ADB insertion.
package main

import (
	"context"
	_ "expvar" // /debug/vars on -debug-addr
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on -debug-addr
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"wavemin"
	"wavemin/internal/bench"
	"wavemin/internal/obs"
	"wavemin/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavemin: ")

	var (
		benchName = flag.String("bench", "s13207", "benchmark circuit ("+strings.Join(wavemin.BenchmarkNames(), ", ")+")")
		sinksPath = flag.String("sinks", "", "synthesize over sinks from this CSV (x_um,y_um,cap_fF; \"-\" = stdin) instead of -bench")
		loadPath  = flag.String("load", "", "load a previously saved clock tree (JSON) instead of -bench")
		savePath  = flag.String("save", "", "save the optimized clock tree as JSON")
		dotPath   = flag.String("dot", "", "dump the optimized clock tree as Graphviz DOT")
		kappa     = flag.Float64("kappa", 20, "clock skew bound κ, ps")
		samples   = flag.Int("samples", 158, "number of time sampling points |S|")
		epsilon   = flag.Float64("eps", 0.01, "approximation parameter ε")
		algo      = flag.String("algo", "wavemin", "algorithm: wavemin | fast | peakmin")
		numModes  = flag.Int("modes", 1, "number of power modes (1 = single-mode flow)")
		domains   = flag.Int("domains", 4, "number of voltage domains (multi-mode only)")
		adi       = flag.Bool("adi", false, "offer adjustable delay inverters at ADB sites")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the optimization (0 = unlimited); on expiry the flow degrades to faster algorithms, down to returning the tree unmodified")
		workers   = flag.Int("workers", 0, "solver worker goroutines (0 = GOMAXPROCS, 1 = serial); results are identical for every count")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		tracePath = flag.String("trace", "", "write a JSONL telemetry trace of the run to this file")
		metrics   = flag.Bool("metrics", false, "print the per-stage telemetry summary after the run")
		snapshots = flag.Bool("snapshots", false, "record accumulated-waveform snapshots in the trace")
		debugAddr = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address, e.g. localhost:6060")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	var design *wavemin.Design
	var err error
	switch {
	case *sinksPath != "":
		var r io.Reader = os.Stdin
		if *sinksPath != "-" {
			f, ferr := os.Open(*sinksPath)
			if ferr != nil {
				log.Fatal(ferr)
			}
			defer f.Close()
			r = f
		}
		sinks, lerr := wavemin.LoadSinksCSV(r)
		if lerr != nil {
			log.Fatal(lerr)
		}
		design, err = wavemin.New(sinks)
	case *loadPath != "":
		f, ferr := os.Open(*loadPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		design, err = wavemin.LoadTree(f)
	default:
		design, err = wavemin.Benchmark(*benchName)
	}
	if err != nil {
		log.Fatal(err)
	}
	cfg := wavemin.Config{
		Kappa: *kappa, Samples: *samples, Epsilon: *epsilon, EnableADI: *adi,
		Budget: *timeout, Workers: *workers,
	}
	switch *algo {
	case "wavemin":
		cfg.Algorithm = wavemin.WaveMin
	case "fast":
		cfg.Algorithm = wavemin.WaveMinFast
	case "peakmin":
		cfg.Algorithm = wavemin.PeakMin
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}

	if *numModes > 1 {
		spec, ok := bench.SpecByName(*benchName)
		if !ok {
			log.Fatalf("multi-mode requires a named benchmark, got %q", *benchName)
		}
		names := design.PartitionVoltageIslands(*domains)
		if err := design.SetModes(spec.Modes(names, *numModes)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d modes over %d voltage domains\n", *benchName, *numModes, *domains)
	}

	label := *benchName
	switch {
	case *sinksPath != "":
		label = "custom(" + *sinksPath + ")"
	case *loadPath != "":
		label = "loaded(" + *loadPath + ")"
	}

	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		obs.ExpvarCounters() // publish the "wavemin" map before serving
		go func() {
			log.Printf("debug server: %v", http.ListenAndServe(*debugAddr, nil))
		}()
		fmt.Printf("debug server listening on http://%s/debug/vars and /debug/pprof\n", *debugAddr)
	}

	// Telemetry: one trace for the whole run, flushed to every requested
	// sink after Optimize returns. With none of the flags set, no trace is
	// attached and the engine's telemetry path costs nothing.
	var tr *obs.Trace
	var traceOut *os.File
	if *tracePath != "" || *metrics || *snapshots || *debugAddr != "" {
		var sinks []obs.Sink
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				log.Fatal(err)
			}
			traceOut = f
			sinks = append(sinks, &obs.JSONL{W: f})
		}
		if *debugAddr != "" {
			sinks = append(sinks, obs.ExpvarSink{})
		}
		tr = obs.New(obs.Options{Sink: obs.Tee(sinks...), Snapshots: *snapshots})
	}

	// Ctrl-C cancels the optimization promptly and leaves the tree as
	// loaded; the -timeout budget degrades instead of aborting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = obs.Into(ctx, tr)
	res, err := design.Optimize(ctx, cfg)
	if tr != nil {
		if ferr := tr.Flush(); ferr != nil {
			log.Printf("trace flush: %v", ferr)
		}
		if traceOut != nil {
			if cerr := traceOut.Close(); cerr != nil {
				log.Printf("trace close: %v", cerr)
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	fmt.Fprintf(w, "circuit      %s (n=%d, |L|=%d)\n", label, design.Tree.Len(), len(design.Tree.Leaves()))
	fmt.Fprintf(w, "algorithm    %s, κ=%g ps, |S|=%d, ε=%g\n", *algo, *kappa, *samples, *epsilon)
	fmt.Fprintf(w, "peak current %.3f mA -> %.3f mA (%.1f%% reduction)\n",
		res.Before.PeakCurrent/1000, res.After.PeakCurrent/1000, res.PeakReduction())
	fmt.Fprintf(w, "VDD noise    %.2f mV -> %.2f mV\n", res.Before.VDDNoise*1000, res.After.VDDNoise*1000)
	fmt.Fprintf(w, "Gnd noise    %.2f mV -> %.2f mV\n", res.Before.GndNoise*1000, res.After.GndNoise*1000)
	fmt.Fprintf(w, "worst skew   %.2f ps -> %.2f ps (bound %g)\n",
		res.Before.WorstSkew, res.After.WorstSkew, *kappa)
	fmt.Fprintf(w, "leaf cells   %d buffers, %d inverters, %d ADBs, %d ADIs (%d ADBs inserted)\n",
		res.NumBuffers, res.NumInverters, res.NumADBs, res.NumADIs, res.ADBInserted)
	fmt.Fprintf(w, "runtime      %v\n", res.Runtime.Round(time.Millisecond))
	if res.Degraded {
		fmt.Fprintf(w, "degraded     budget %v exceeded; answered by %s\n", *timeout, res.AlgorithmUsed)
	} else if res.AlgorithmUsed != "" {
		fmt.Fprintf(w, "answered by  %s\n", res.AlgorithmUsed)
	}
	if *metrics && tr != nil {
		fmt.Fprintf(w, "\n%s", report.FormatSummary(obs.Summarize(tr.Events())))
	}
	if *tracePath != "" {
		fmt.Fprintf(w, "trace        %s\n", *tracePath)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := design.SaveTree(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "saved        %s\n", *savePath)
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := design.Tree.WriteDOT(f, label); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "dot          %s\n", *dotPath)
	}
}
