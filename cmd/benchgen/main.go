// Command benchgen emits the synthetic benchmark circuits: their specs
// and, optionally, the generated sink placements as CSV, for inspection or
// for use with external tools.
//
// Usage:
//
//	benchgen                 # list all specs
//	benchgen -name s35932    # dump that circuit's sinks as CSV
package main

import (
	"flag"
	"fmt"
	"log"

	"wavemin/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	name := flag.String("name", "", "dump this circuit's sink placements as CSV")
	flag.Parse()

	if *name == "" {
		fmt.Printf("%-12s %6s %6s %10s\n", "circuit", "|L|", "n", "die (µm)")
		for _, s := range bench.Specs() {
			fmt.Printf("%-12s %6d %6d %5.0fx%-4.0f\n", s.Name, s.NumLeaves, s.TargetN, s.DieW, s.DieH)
		}
		return
	}
	spec, ok := bench.SpecByName(*name)
	if !ok {
		log.Fatalf("unknown circuit %q", *name)
	}
	fmt.Println("x_um,y_um,cap_fF")
	for _, s := range spec.Sinks() {
		fmt.Printf("%.3f,%.3f,%.3f\n", s.X, s.Y, s.Cap)
	}
}
