// Command wavemind serves WaveMin clock-tree optimization as a batch
// service: an HTTP JSON API over a bounded prioritized job queue with a
// content-addressed result cache.
//
// Usage:
//
//	wavemind [-addr :8080] [-queue 64] [-workers 2] [-solver-workers 0]
//	         [-cache-bytes 67108864] [-cache-entries 4096]
//	         [-default-timeout 30s] [-max-timeout 2m] [-drain-timeout 1m]
//	         [-debug]
//
// Submit work with POST /v1/optimize ({"tree": <wavemin-clocktree-v1>,
// "config": {...}}), poll GET /v1/jobs/{id}, fetch GET
// /v1/jobs/{id}/result. See the README's Serving section for the full
// API. On SIGTERM/SIGINT the server stops intake (new submissions get
// 503) and finishes every job already accepted before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavemin/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavemind: ")

	var (
		addr          = flag.String("addr", ":8080", "listen address")
		queue         = flag.Int("queue", 64, "job backlog capacity; submissions beyond it get 429 + Retry-After")
		workers       = flag.Int("workers", 2, "jobs optimized concurrently")
		solverWorkers = flag.Int("solver-workers", 0, "cap on per-job solver goroutines (0 = no cap); results are identical for every count")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "result cache size bound, bytes")
		cacheEntries  = flag.Int("cache-entries", 4096, "result cache entry bound")
		defTimeout    = flag.Duration("default-timeout", 30*time.Second, "per-job deadline when the request names none (queue wait included)")
		maxTimeout    = flag.Duration("max-timeout", 2*time.Minute, "per-job deadline ceiling")
		drainTimeout  = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for accepted jobs to finish")
		debug         = flag.Bool("debug", false, "serve expvar (/debug/vars) and pprof (/debug/pprof) on -addr")
	)
	flag.Parse()

	srv := server.New(server.Options{
		QueueCapacity:    *queue,
		Workers:          *workers,
		MaxSolverWorkers: *solverWorkers,
		CacheMaxBytes:    *cacheBytes,
		CacheMaxEntries:  *cacheEntries,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		Debug:            *debug,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	go func() {
		defer close(done)
		sig := <-sigCh
		log.Printf("%v: draining (intake closed, finishing accepted jobs)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain incomplete: %v (abandoning in-flight jobs)", err)
		} else {
			log.Printf("drained cleanly")
		}
		// Jobs are done (or abandoned); now close the listener and let
		// straggling HTTP reads/polls finish.
		if err := hs.Shutdown(ctx); err != nil {
			_ = hs.Close()
		}
	}()

	log.Printf("serving on %s (queue %d, %d workers)", *addr, *queue, *workers)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
