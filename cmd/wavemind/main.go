// Command wavemind serves WaveMin clock-tree optimization as a batch
// service: an HTTP JSON API over a bounded prioritized job queue with a
// content-addressed result cache — and, optionally, a coordinator/worker
// fleet that fans solves out across machines.
//
// Usage:
//
//	wavemind [-role serve|coordinator|worker] [-addr :8080]
//	         [-queue 64] [-workers 2] [-solver-workers 0]
//	         [-cache-bytes 67108864] [-cache-entries 4096]
//	         [-default-timeout 30s] [-max-timeout 2m] [-drain-timeout 1m]
//	         [-lease-ttl 15s] [-max-attempts 3] [-dispatch-local]
//	         [-join URL] [-worker-id ID] [-poll-wait 2s]
//	         [-data-dir DIR] [-fsync batch] [-recover-best-effort]
//	         [-store-bytes 268435456] [-debug]
//	         [-shard-id N -shard-map v1:8:3 -peers URL,URL,URL]
//
// A fleet of serve/coordinator nodes becomes one logical service with
// -shard-id/-shard-map/-peers: every node carries the same versioned
// key-space map, owns the requests whose cache key hashes into its
// shard, and forwards the rest a single hop to the owner. See the
// README's Running a fleet section.
//
// Roles:
//
//	serve        (default) the PR 4 single-process service: every job
//	             solves in this process.
//	coordinator  the same HTTP API plus the /v1/dispatch/* pull protocol:
//	             `-role=worker` processes lease jobs, heartbeat while
//	             solving, and deliver results; lapsed leases requeue with
//	             a bounded retry budget. With -dispatch-local (default
//	             on) the local pool still runs whatever no worker claims.
//	worker       no HTTP API; joins the coordinator at -join and pulls
//	             jobs until SIGTERM or the coordinator drains.
//
// Submit work with POST /v1/optimize ({"tree": <wavemin-clocktree-v1>,
// "config": {...}}), poll GET /v1/jobs/{id}, fetch GET
// /v1/jobs/{id}/result. See the README's Serving and Scaling out
// sections for the full API. On SIGTERM/SIGINT the server stops intake
// (new submissions get 503) and finishes every job already accepted
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wavemin/internal/dispatch"
	"wavemin/internal/server"
	"wavemin/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavemind: ")

	var (
		role          = flag.String("role", "serve", "process role: serve, coordinator, or worker")
		addr          = flag.String("addr", ":8080", "listen address (serve/coordinator)")
		queue         = flag.Int("queue", 64, "job backlog capacity; submissions beyond it get 429 + Retry-After")
		workers       = flag.Int("workers", 2, "jobs optimized concurrently")
		solverWorkers = flag.Int("solver-workers", 0, "cap on per-job solver goroutines (0 = no cap); results are identical for every count")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "result cache size bound, bytes")
		cacheEntries  = flag.Int("cache-entries", 4096, "result cache entry bound")
		defTimeout    = flag.Duration("default-timeout", 30*time.Second, "per-job deadline when the request names none (queue wait included)")
		maxTimeout    = flag.Duration("max-timeout", 2*time.Minute, "per-job deadline ceiling")
		drainTimeout  = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for accepted jobs to finish")
		debug         = flag.Bool("debug", false, "serve expvar (/debug/vars) and pprof (/debug/pprof) on -addr")

		dataDir    = flag.String("data-dir", "", "durable state directory (journal + result store); empty = in-memory only")
		fsync      = flag.String("fsync", "batch", "journal durability: always, batch, or none")
		recoverBE  = flag.Bool("recover-best-effort", false, "salvage the valid journal prefix past mid-journal corruption instead of refusing to start")
		storeBytes = flag.Int64("store-bytes", 256<<20, "persistent result store size bound, bytes (with -data-dir)")

		eco            = flag.Bool("eco", false, "enable incremental re-optimization: record per-zone solutions and accept baseJobId deltas (durable under -data-dir)")
		zoneCacheBytes = flag.Int64("zone-cache-bytes", 32<<20, "in-memory zone-solution cache bound, bytes (with -eco)")
		zoneStoreBytes = flag.Int64("zone-store-bytes", 64<<20, "durable zone-solution store bound, bytes (with -eco and -data-dir)")

		leaseTTL      = flag.Duration("lease-ttl", 15*time.Second, "coordinator: lease heartbeat deadline; a silent worker loses the job after this")
		maxAttempts   = flag.Int("max-attempts", 3, "coordinator: lease grants per job before it fails as retry-exhausted")
		dispatchLocal = flag.Bool("dispatch-local", true, "coordinator: let the local pool run jobs no worker claims")

		join     = flag.String("join", "", "worker: coordinator base URL, e.g. http://coord:8080")
		workerID = flag.String("worker-id", "", "worker: identity in protocol messages (default host-pid)")
		pollWait = flag.Duration("poll-wait", 2*time.Second, "worker: lease long-poll duration")

		shardID   = flag.Int("shard-id", -1, "fleet: the shard this node owns (with -shard-map and -peers)")
		shardMap  = flag.String("shard-map", "", "fleet: encoded shard map, v<version>:<prefix-bits>:<shards>[:<assignments>][:r<replicas>] — the boot map; a live fleet converges on the highest gossiped version")
		peersList = flag.String("peers", "", "fleet: comma-separated coordinator base URLs in shard order, one per shard (this node's own entry included)")
		replicas  = flag.Int("replicas", 0, "fleet: readers per bucket (ring successors of the owner); a dead owner's cached reads degrade to a replica instead of 503")
		gossipInt = flag.Duration("gossip-interval", 2*time.Second, "fleet: anti-entropy map pull cadence (0 disables the loop; version piggybacking on forwards still converges active routes)")

		yieldMaxSamples    = flag.Int("yield-max-samples", 0, "cap on a yield request's per-candidate Monte Carlo budget (0 = protocol ceiling)")
		yieldMaxConcurrent = flag.Int("yield-max-concurrent", 2, "yield jobs driving the fleet at once; further admitted jobs wait queued")
	)
	flag.Parse()

	switch *role {
	case "worker":
		runWorker(*join, *workerID, *solverWorkers, *pollWait)
		return
	case "serve", "coordinator":
	default:
		log.Fatalf("unknown -role %q (want serve, coordinator, or worker)", *role)
	}

	opts := server.Options{
		QueueCapacity:      *queue,
		Workers:            *workers,
		MaxSolverWorkers:   *solverWorkers,
		CacheMaxBytes:      *cacheBytes,
		CacheMaxEntries:    *cacheEntries,
		DefaultTimeout:     *defTimeout,
		MaxTimeout:         *maxTimeout,
		Debug:              *debug,
		DataDir:            *dataDir,
		Fsync:              *fsync,
		RecoverBestEffort:  *recoverBE,
		StoreMaxBytes:      *storeBytes,
		Eco:                *eco,
		ZoneCacheMaxBytes:  *zoneCacheBytes,
		ZoneStoreMaxBytes:  *zoneStoreBytes,
		YieldMaxSamples:    *yieldMaxSamples,
		YieldMaxConcurrent: *yieldMaxConcurrent,
	}
	if *role == "coordinator" {
		opts.Dispatch = &dispatch.Options{
			LeaseTTL:    *leaseTTL,
			MaxAttempts: *maxAttempts,
			LocalExec:   *dispatchLocal,
		}
	}
	if *shardMap != "" || *shardID >= 0 || *peersList != "" {
		if *shardMap == "" || *shardID < 0 || *peersList == "" {
			log.Fatal("sharding needs all three of -shard-id, -shard-map, and -peers")
		}
		m, err := shard.Decode(*shardMap)
		if err != nil {
			log.Fatalf("-shard-map: %v", err)
		}
		if *replicas > 0 && m.Replicas == nil {
			// A map that already encodes replica sets wins over the flag:
			// -replicas is the convenience spelling for uniform ring
			// successors on a plain boot map.
			if m, err = m.WithReplicas(*replicas); err != nil {
				log.Fatalf("-replicas: %v", err)
			}
		}
		opts.ShardMap = m
		opts.ShardID = *shardID
		opts.Peers = strings.Split(*peersList, ",")
		opts.GossipInterval = *gossipInt
	}
	srv, err := server.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	if rec := srv.Recovery(); rec.Durable {
		log.Printf("recovered %d job(s) from %s (replayed %d records, %d checkpoint(s))",
			rec.JobsRestored, *dataDir, rec.Records, rec.Checkpoints)
		if rec.Salvaged || rec.TornBytes > 0 {
			log.Printf("journal recovery was lossy: torn bytes %d, salvaged=%v, quarantined segments %d",
				rec.TornBytes, rec.Salvaged, rec.Quarantined)
		}
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	go func() {
		defer close(done)
		sig := <-sigCh
		log.Printf("%v: draining (intake closed, finishing accepted jobs)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain incomplete: %v (abandoning in-flight jobs)", err)
		} else {
			log.Printf("drained cleanly")
		}
		// Jobs are done (or abandoned); now close the listener and let
		// straggling HTTP reads/polls finish.
		if err := hs.Shutdown(ctx); err != nil {
			_ = hs.Close()
		}
	}()

	log.Printf("serving on %s as %s (queue %d, %d workers)", *addr, *role, *queue, *workers)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// runWorker joins a coordinator and pulls jobs until SIGTERM/SIGINT or
// until the coordinator reports it is draining.
func runWorker(join, id string, solverWorkers int, pollWait time.Duration) {
	if join == "" {
		log.Fatal("-role=worker requires -join=<coordinator-url>")
	}
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := dispatch.NewWorker(dispatch.WorkerOptions{
		Coordinator:   join,
		ID:            id,
		SolverWorkers: solverWorkers,
		PollWait:      pollWait,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigCh
		log.Printf("%v: leaving the fleet (in-flight lease is handed back for retry)", sig)
		cancel()
	}()

	log.Printf("worker %s joining %s", id, join)
	switch err := w.Run(ctx); {
	case err == nil:
		log.Printf("coordinator drained; exiting")
	case errors.Is(err, context.Canceled):
		log.Printf("worker stopped")
	default:
		log.Fatal(err)
	}
}
