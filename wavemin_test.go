package wavemin

import (
	"context"
	"testing"
)

func gridSinks(n int) []Sink {
	sinks := make([]Sink, 0, n)
	for i := 0; i < n; i++ {
		sinks = append(sinks, Sink{
			X:   float64(15 + (i%4)*10),
			Y:   float64(15 + (i/4)*10),
			Cap: 8,
		})
	}
	return sinks
}

func TestNewAndMeasure(t *testing.T) {
	d, err := New(gridSinks(12))
	if err != nil {
		t.Fatal(err)
	}
	m, err := d.Measure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakCurrent <= 0 || m.VDDNoise <= 0 || m.GndNoise <= 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
	if m.WorstSkew > 10 {
		t.Fatalf("synthesized skew %g", m.WorstSkew)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("no sinks should error")
	}
}

func TestSingleModeOptimizeImproves(t *testing.T) {
	d, err := New(gridSinks(12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Optimize(context.Background(), Config{Samples: 32, MaxIntervals: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.PeakCurrent > res.Before.PeakCurrent {
		t.Fatalf("peak got worse: %g → %g", res.Before.PeakCurrent, res.After.PeakCurrent)
	}
	if res.NumInverters == 0 {
		t.Fatal("expected polarity mixing")
	}
	if res.NumBuffers+res.NumInverters != 12 {
		t.Fatalf("leaf count mismatch: %d+%d", res.NumBuffers, res.NumInverters)
	}
	if res.After.WorstSkew > 22 {
		t.Fatalf("skew violated: %g", res.After.WorstSkew)
	}
	if res.PeakReduction() < 0 {
		t.Fatal("negative reduction reported for an improvement")
	}
	if res.Runtime <= 0 {
		t.Fatal("missing runtime")
	}
}

func TestBenchmarkLoading(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 7 {
		t.Fatalf("%d benchmarks", len(names))
	}
	d, err := Benchmark("s15850")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tree.Leaves()) != 19 {
		t.Fatalf("s15850 leaves = %d", len(d.Tree.Leaves()))
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestMultiModeOptimize(t *testing.T) {
	d, err := Benchmark("s15850")
	if err != nil {
		t.Fatal(err)
	}
	domains := d.PartitionVoltageIslands(4)
	if len(domains) != 4 {
		t.Fatalf("domains = %v", domains)
	}
	modes := []Mode{
		{Name: "M1", Supplies: map[string]float64{domains[0]: 1.1, domains[1]: 1.1, domains[2]: 1.1, domains[3]: 1.1}},
		{Name: "M2", Supplies: map[string]float64{domains[0]: 0.9, domains[1]: 1.1, domains[2]: 0.9, domains[3]: 1.1}},
	}
	if err := d.SetModes(modes); err != nil {
		t.Fatal(err)
	}
	res, err := d.Optimize(context.Background(), Config{Kappa: 14, Samples: 16, EnableADI: true, MaxIntersections: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.WorstSkew > 16 {
		t.Fatalf("multi-mode skew %g", res.After.WorstSkew)
	}
	if res.After.PeakCurrent > res.Before.PeakCurrent*1.05 {
		t.Fatalf("peak regressed: %g → %g", res.Before.PeakCurrent, res.After.PeakCurrent)
	}
}

func TestSetModesValidation(t *testing.T) {
	d, err := New(gridSinks(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetModes(nil); err == nil {
		t.Fatal("empty modes should error")
	}
}

func TestPeakMinBaselineViaFacade(t *testing.T) {
	d, err := New(gridSinks(12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Optimize(context.Background(), Config{Samples: 16, Algorithm: PeakMin, MaxIntervals: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInverters == 0 {
		t.Fatal("PeakMin should also mix polarity")
	}
}

func TestDynamicPolarityViaFacade(t *testing.T) {
	d, err := Benchmark("s15850")
	if err != nil {
		t.Fatal(err)
	}
	domains := d.PartitionVoltageIslands(2)
	if err := d.SetModes([]Mode{
		{Name: "M1", Supplies: map[string]float64{domains[0]: 1.1, domains[1]: 1.1}},
		{Name: "M2", Supplies: map[string]float64{domains[0]: 0.9, domains[1]: 1.1}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := d.OptimizeDynamicPolarity(context.Background(), Config{Samples: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positive) != len(d.Tree.Leaves()) {
		t.Fatalf("program covers %d leaves", len(res.Positive))
	}
	for _, m := range d.Modes {
		if res.PeakPerMode[m.Name] <= 0 {
			t.Fatalf("missing peak for %s", m.Name)
		}
		if res.FlipsPerMode[m.Name] == 0 {
			t.Fatalf("no flips in %s", m.Name)
		}
	}
}
