GO ?= go

.PHONY: build test vet race verify

build:
	$(GO) build ./...

# Tier 1: the fast correctness gate.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier 2: static analysis plus the full suite under the race detector.
# Slower, but the cancellation and fault-injection paths are concurrent,
# so this is the tier that must pass before a release.
race: vet
	$(GO) test -race ./...

verify: test race
