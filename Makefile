GO ?= go
BENCH_DATE := $(shell date +%F)
BENCH_LATEST = $(lastword $(sort $(filter-out BENCH_baseline.json,$(wildcard BENCH_*.json))))

.PHONY: build test vet race check verify bench benchdiff cover e2e e2e-dispatch e2e-crash e2e-eco e2e-shard e2e-rebalance e2e-yield test-flake fuzz-smoke

build:
	$(GO) build ./...

# Tier 1: the fast correctness gate.
test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier 2: static analysis plus the full suite under the race detector.
# Slower, but the cancellation and fault-injection paths are concurrent,
# so this is the tier that must pass before a release.
race: vet
	$(GO) test -race ./...

# Default gate: tier 1, vet, the worker-determinism tests under the race
# detector (the parallel fan-outs must be bitwise reproducible at any
# worker count; the full -race suite stays in `make race`), the coverage
# floor, a short fuzz smoke over the lease protocol and journal replay,
# and the subprocess kill -9 recovery loop.
check: test vet cover fuzz-smoke e2e-crash e2e-eco e2e-shard e2e-rebalance e2e-yield
	$(GO) test -race -run Parallel . ./internal/...

# Coverage with floors: internal/obs (the telemetry layer every solver
# calls into), the serving stack (jobq, rescache, server, dispatch), and
# the durability tier (wal, castore) must stay above 70% statement
# coverage; everything else is reported for information only. The
# shard-routing and gossip files carry their own per-file floors — the
# server package is large enough to hide an untested routing layer
# behind its aggregate number.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./scripts/coverfloor -profile cover.out \
		-floor wavemin/internal/obs=70 \
		-floor wavemin/internal/jobq=70 \
		-floor wavemin/internal/rescache=70 \
		-floor wavemin/internal/zonecache=70 \
		-floor wavemin/internal/server=70 \
		-floor wavemin/internal/dispatch=70 \
		-floor wavemin/internal/wal=70 \
		-floor wavemin/internal/castore=70 \
		-floor wavemin/internal/shard=70 \
		-floor wavemin/internal/yield=70 \
		-filefloor wavemin/internal/server/shardroute.go=70 \
		-filefloor wavemin/internal/server/gossip.go=70
	@rm -f cover.out

# End-to-end: the wavemind service suite (full HTTP stack, queue,
# cache, fault injection, drain) under the race detector.
e2e:
	$(GO) test -race -timeout 120s ./internal/server/...

# Distributed e2e: the coordinator/worker fleet under chaos — workers
# killed mid-solve, heartbeats dropped, coordinator partitioned — with
# the race detector on. Every job must terminate and requeued work must
# stay byte-identical to an uninterrupted local solve.
e2e-dispatch:
	$(GO) test -race -timeout 180s ./internal/dispatch/...

# Crash-recovery e2e: build the real wavemind binary, kill -9 it at
# seeded-random moments across several incarnations on one -data-dir,
# and assert the final incarnation answers every problem with
# byte-identical results. WAVEMIND_E2E_CRASH_SEED varies the schedule.
e2e-crash:
	WAVEMIND_E2E_CRASH=1 $(GO) test -timeout 120s -run '^TestCrashLoopKill9$$' ./internal/server

# ECO e2e: incremental re-optimization over the full HTTP stack under
# the race detector — base-reference error contract, bitwise equivalence
# of delta vs cold solves across worker counts (local and dispatched),
# and crash recovery mid-ECO on a durable data dir.
e2e-eco:
	$(GO) test -race -timeout 180s -run 'ECO' ./internal/server

# Cluster e2e: a 3-coordinator in-process fleet behind the shard-routing
# layer, under the race detector — cross-node cache hits must be bitwise
# replays with no solver re-run, the replayed-workload hit rate must
# equal a single-node baseline, and a seeded kill/restart of one owner
# mid-solve must degrade to structured 503s that clear on recovery with
# results byte-identical to a single-node reference run.
# WAVEMIND_E2E_SHARD_SEED varies the kill schedule.
e2e-shard:
	$(GO) test -race -timeout 180s -run 'ShardFleet' ./internal/server
	$(GO) test -race -timeout 60s ./internal/shard

# Yield e2e: statistical yield mode under the race detector — local
# report shape, early-stop metrics, cache replay under the extended
# key, and the distributed acceptance run: a 3-worker fleet with a
# seeded mid-chunk worker kill must produce bytes identical to the
# single-node reference.
e2e-yield:
	$(GO) test -race -timeout 180s -run 'Yield' ./internal/server ./internal/yield

# Rebalance e2e: the live shard-map machinery under the race detector —
# gossip convergence (a stale node catches up without restart, by
# anti-entropy pull or by the 409 traffic path), drain-before-flip
# bucket handoff (post-rebalance hit rate identical to the baseline, no
# re-solves), and the seeded chaos scenario on a durable fleet: a bucket
# moves mid-workload, the OLD owner and then the NEW owner are killed,
# reads degrade to replicas instead of 503, no acknowledged job is lost,
# and every byte matches a single-node reference.
# WAVEMIND_E2E_REBALANCE_SEED varies the schedule.
e2e-rebalance:
	$(GO) test -race -timeout 180s -run 'ShardRebalance|ShardGossipSkew' ./internal/server

# Flake hunt: the rebalance chaos scenario 5x under distinct seeds (the
# schedule is seed-derived, so each run kills at different moments).
test-flake:
	@for seed in 11 22 33 44 55; do \
		echo "== e2e-rebalance seed $$seed"; \
		WAVEMIND_E2E_REBALANCE_SEED=$$seed $(GO) test -race -timeout 180s -count=1 \
			-run 'ShardRebalance|ShardGossipSkew' ./internal/server || exit 1; \
	done

# Short fuzz passes: the lease wire protocol (malformed bodies, stale
# and replayed lease IDs), journal replay (arbitrary bytes on disk
# must recover or refuse, never panic), shard routing (forged forwards
# and hostile job IDs must terminate in structured 4xx with no
# wrong-shard cache writes), and map gossip (hostile map injections and
# forged handoff pushes: structured 4xx or ignored-with-counter, version
# monotone, no wrong-shard cache write). Seconds-long smoke for
# `make check`; run with a larger -fuzztime when hunting.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLeaseProtocol$$' -fuzztime 5s ./internal/dispatch
	$(GO) test -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime 5s ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzShardRoute$$' -fuzztime 5s ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzShardMapGossip$$' -fuzztime 5s ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzYieldRequest$$' -fuzztime 5s ./internal/server

verify: test race

# Benchmark snapshot: one pass over every benchmark, recorded as
# BENCH_<date>.json for regression tracking against BENCH_baseline.json.
bench: build
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . ./internal/yield | tee bench.out
	$(GO) run ./scripts/benchjson < bench.out > BENCH_$(BENCH_DATE).json
	@rm -f bench.out
	@echo wrote BENCH_$(BENCH_DATE).json

# Non-blocking regression report: newest snapshot vs the committed
# baseline. Informational — single-run perf noise should not fail CI,
# hence the leading "-".
benchdiff:
	-$(GO) run ./scripts/benchdiff -threshold 25 BENCH_baseline.json $(BENCH_LATEST)
