// Package wavemin is a clock-tree peak-current and power-noise optimizer:
// a Go implementation of WaveMin (Joo & Kim, DAC 2011; extended in IEEE
// TCAD 33(2), 2014), the fine-grained clock buffer polarity assignment
// combined with buffer sizing.
//
// Given a placed, buffered clock tree, WaveMin re-assigns every leaf
// buffering element to a buffer or inverter from a sizing library so that
// the accumulated supply-current waveform — sampled at many time points,
// with non-leaf contributions and per-sink arrival times modeled — has a
// minimal peak, while the clock skew stays within a bound κ in every power
// mode. Designs whose multi-mode skew cannot be fixed by sizing alone get
// adjustable delay buffers (ADBs) and, optionally, the paper's adjustable
// delay inverters (ADIs).
//
// The package is a facade over the internal engine:
//
//   - internal/polarity, internal/mosp: the WaveMin formulation and its
//     ε-approximate multi-objective shortest path solver;
//   - internal/multimode, internal/adb: the multi-power-mode extension;
//   - internal/peakmin: the ClkPeakMin comparison baseline;
//   - internal/cell, internal/clocktree, internal/cts, internal/spice,
//     internal/powergrid, internal/bench: the EDA substrate (cell models,
//     tree timing, synthesis, transient simulation, rail-noise analysis,
//     benchmark generation).
//
// See examples/ for runnable walkthroughs and cmd/experiments for the
// paper's evaluation tables.
package wavemin

import (
	"fmt"
	"time"

	"wavemin/internal/bench"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
	"wavemin/internal/multimode"
	"wavemin/internal/polarity"
	"wavemin/internal/powergrid"
	"wavemin/internal/xorpol"
)

// Sink is a clock consumer: a flip-flop group at a die location with a
// lumped load (fF), driven by one leaf buffering element.
type Sink = cts.Sink

// Mode is a power mode: a named assignment of supply voltages to voltage
// domains.
type Mode = clocktree.Mode

// NominalMode runs every domain at the nominal 1.1 V supply.
var NominalMode = clocktree.NominalMode

// Algorithm selects the optimizer.
type Algorithm int

const (
	// WaveMin is the ε-approximate fine-grained optimizer (ClkWaveMin).
	WaveMin Algorithm = iota
	// WaveMinFast is the fast greedy variant (ClkWaveMin-f).
	WaveMinFast
	// PeakMin is the two-corner baseline of Jang et al. (ClkPeakMin),
	// provided for comparison studies.
	PeakMin
)

// Config parameterizes Optimize. The zero value is completed with the
// paper's defaults.
type Config struct {
	Kappa     float64   // clock skew bound, ps (default 20)
	Samples   int       // |S| time sampling points (default 158)
	Epsilon   float64   // approximation parameter (default 0.01)
	ZoneSize  float64   // noise-zone tile, µm (default 50)
	Algorithm Algorithm // default WaveMin
	// EnableADI offers adjustable delay inverters at ADB sites in
	// multi-mode designs (the paper's Observation 3).
	EnableADI bool
	// MaxIntervals / MaxIntersections bound the search breadth (0 = the
	// experiment defaults).
	MaxIntervals     int
	MaxIntersections int
}

func (c Config) withDefaults() Config {
	if c.Kappa == 0 {
		c.Kappa = 20
	}
	if c.Samples == 0 {
		c.Samples = 158
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.01
	}
	if c.ZoneSize == 0 {
		c.ZoneSize = polarity.DefaultZoneSize
	}
	if c.MaxIntervals == 0 {
		c.MaxIntervals = 8
	}
	if c.MaxIntersections == 0 {
		c.MaxIntersections = 8
	}
	return c
}

// Design is a buffered clock tree with its power grid and operating modes.
type Design struct {
	Tree  *clocktree.Tree
	Grid  *powergrid.Grid
	Modes []Mode

	lib        *cell.Library
	dieW, dieH float64
}

// New synthesizes a near-zero-skew buffered clock tree over the sinks and
// builds a matching power grid. The die is inferred from the sink bounding
// box.
func New(sinks []Sink) (*Design, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("wavemin: no sinks")
	}
	lib := cell.DefaultLibrary()
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := cts.Synthesize(sinks, lib, opt)
	if err != nil {
		return nil, err
	}
	var w, h float64
	for _, s := range sinks {
		if s.X > w {
			w = s.X
		}
		if s.Y > h {
			h = s.Y
		}
	}
	grid, err := powergrid.New(w+10, h+10, powergrid.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Design{Tree: tree, Grid: grid, Modes: []Mode{NominalMode}, lib: lib, dieW: w + 10, dieH: h + 10}, nil
}

// Benchmark loads one of the built-in synthetic benchmark circuits
// (s13207, s15850, s35932, s38417, s38584, ispd09f31, ispd09f34).
func Benchmark(name string) (*Design, error) {
	spec, ok := bench.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("wavemin: unknown benchmark %q", name)
	}
	lib := cell.DefaultLibrary()
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := spec.Synthesize(lib, opt)
	if err != nil {
		return nil, err
	}
	gopt := powergrid.DefaultOptions()
	if spec.Clustered {
		gopt = powergrid.DenseOptions()
	}
	grid, err := powergrid.New(spec.DieW, spec.DieH, gopt)
	if err != nil {
		return nil, err
	}
	return &Design{Tree: tree, Grid: grid, Modes: []Mode{NominalMode}, lib: lib,
		dieW: spec.DieW, dieH: spec.DieH}, nil
}

// BenchmarkNames lists the built-in circuits.
func BenchmarkNames() []string {
	var out []string
	for _, s := range bench.Specs() {
		out = append(out, s.Name)
	}
	return out
}

// PartitionVoltageIslands splits the die into n region-based voltage
// domains, assigns every tree node to its region, and returns the domain
// names (for building Modes).
func (d *Design) PartitionVoltageIslands(n int) []string {
	return bench.AssignDomains(d.Tree, d.dieW, d.dieH, n)
}

// SetModes declares the design's power modes. At least one is required;
// the skew bound will be enforced in every mode.
func (d *Design) SetModes(modes []Mode) error {
	if len(modes) == 0 {
		return fmt.Errorf("wavemin: empty mode list")
	}
	d.Modes = append([]Mode(nil), modes...)
	return nil
}

// Metrics is a golden ("simulator-measured") evaluation of the design.
type Metrics struct {
	PeakCurrent float64 // µA, worst over modes and edges
	VDDNoise    float64 // volts
	GndNoise    float64 // volts
	WorstSkew   float64 // ps, worst over modes
}

// Measure evaluates the design as-is: total-waveform peak current, rail
// noise from the power-grid transient, and worst-mode skew.
func (d *Design) Measure() (Metrics, error) {
	var m Metrics
	for _, mode := range d.Modes {
		tm := d.Tree.ComputeTiming(mode)
		if p := d.Tree.PeakCurrent(tm); p > m.PeakCurrent {
			m.PeakCurrent = p
		}
		if s := tm.Skew(d.Tree); s > m.WorstSkew {
			m.WorstSkew = s
		}
		v, g, err := d.Grid.MeasureTreeNoise(d.Tree, tm)
		if err != nil {
			return Metrics{}, err
		}
		if v > m.VDDNoise {
			m.VDDNoise = v
		}
		if g > m.GndNoise {
			m.GndNoise = g
		}
	}
	return m, nil
}

// Result reports an optimization.
type Result struct {
	Before, After Metrics
	NumBuffers    int // leaves assigned plain buffers
	NumInverters  int // leaves assigned plain inverters
	NumADBs       int
	NumADIs       int
	ADBInserted   int // ADBs added to fix multi-mode skew
	Runtime       time.Duration
}

// PeakReduction returns the percent peak-current improvement.
func (r *Result) PeakReduction() float64 {
	if r.Before.PeakCurrent == 0 {
		return 0
	}
	return 100 * (r.Before.PeakCurrent - r.After.PeakCurrent) / r.Before.PeakCurrent
}

// Optimize runs the WaveMin flow on the design, modifying its tree in
// place: single-mode designs use ClkWaveMin (or the selected variant);
// multi-mode designs use ClkWaveMin-M with ADB insertion as needed.
func (d *Design) Optimize(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	before, err := d.Measure()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Before: before}

	sizing, err := d.lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		return nil, err
	}

	if len(d.Modes) == 1 {
		algo := polarity.ClkWaveMin
		switch cfg.Algorithm {
		case WaveMinFast:
			algo = polarity.ClkWaveMinF
		case PeakMin:
			algo = polarity.ClkPeakMinBaseline
		}
		opt, err := polarity.Optimize(d.Tree, polarity.Config{
			Library: sizing, Kappa: cfg.Kappa, Samples: cfg.Samples,
			Epsilon: cfg.Epsilon, ZoneSize: cfg.ZoneSize, Algorithm: algo,
			Mode: d.Modes[0], MaxIntervals: cfg.MaxIntervals,
		})
		if err != nil {
			return nil, err
		}
		polarity.Apply(d.Tree, opt.Assignment)
		countCells(d.Tree, res)
	} else {
		mcfg := multimode.Config{
			Library: sizing,
			ADBCell: d.lib.MustByName("ADB_X8"),
			Kappa:   cfg.Kappa, Samples: cfg.Samples, Epsilon: cfg.Epsilon,
			ZoneSize: cfg.ZoneSize, Fast: cfg.Algorithm == WaveMinFast,
			MaxIntersections: cfg.MaxIntersections,
		}
		if cfg.EnableADI {
			mcfg.ADICell = d.lib.MustByName("ADI_X8")
		}
		opt, err := multimode.Optimize(d.Tree, d.Modes, mcfg)
		if err != nil {
			return nil, err
		}
		if err := multimode.ApplyResult(d.Tree, d.Modes, cfg.Kappa, opt); err != nil {
			return nil, err
		}
		res.ADBInserted = opt.ADBInserted
		countCells(d.Tree, res)
	}
	res.Runtime = time.Since(start)
	after, err := d.Measure()
	if err != nil {
		return nil, err
	}
	res.After = after
	return res, nil
}

// DynamicPolarityResult reports OptimizeDynamicPolarity.
type DynamicPolarityResult struct {
	// Positive[leaf][modeName]: the XOR control program (true = the leaf
	// follows the clock polarity in that mode).
	Positive map[clocktree.NodeID]map[string]bool
	// PeakPerMode is the optimizer's per-mode estimate, µA.
	PeakPerMode map[string]float64
	// FlipsPerMode counts leaves running flipped relative to the built
	// tree, per mode.
	FlipsPerMode map[string]int
}

// OptimizeDynamicPolarity computes a per-power-mode polarity program in
// the style of XOR-gate/double-edge-triggered-FF clocking (the research
// direction the paper cites as [30, 31]): instead of committing one
// static buffer/inverter choice, each leaf's polarity becomes a
// mode-programmable bit with no timing impact. The design itself is not
// modified.
func (d *Design) OptimizeDynamicPolarity(cfg Config) (*DynamicPolarityResult, error) {
	cfg = cfg.withDefaults()
	res, err := xorpol.Optimize(d.Tree, d.Modes, xorpol.Config{
		Samples: cfg.Samples, ZoneSize: cfg.ZoneSize,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicPolarityResult{
		Positive:     res.Positive,
		PeakPerMode:  res.PeakPerMode,
		FlipsPerMode: res.Flips(d.Tree, d.Modes),
	}, nil
}

func countCells(t *clocktree.Tree, res *Result) {
	res.NumBuffers, res.NumInverters, res.NumADBs, res.NumADIs = 0, 0, 0, 0
	for _, leaf := range t.Leaves() {
		switch t.Node(leaf).Cell.Kind {
		case cell.Buf:
			res.NumBuffers++
		case cell.Inv:
			res.NumInverters++
		case cell.ADB:
			res.NumADBs++
		case cell.ADI:
			res.NumADIs++
		}
	}
}
