// Package wavemin is a clock-tree peak-current and power-noise optimizer:
// a Go implementation of WaveMin (Joo & Kim, DAC 2011; extended in IEEE
// TCAD 33(2), 2014), the fine-grained clock buffer polarity assignment
// combined with buffer sizing.
//
// Given a placed, buffered clock tree, WaveMin re-assigns every leaf
// buffering element to a buffer or inverter from a sizing library so that
// the accumulated supply-current waveform — sampled at many time points,
// with non-leaf contributions and per-sink arrival times modeled — has a
// minimal peak, while the clock skew stays within a bound κ in every power
// mode. Designs whose multi-mode skew cannot be fixed by sizing alone get
// adjustable delay buffers (ADBs) and, optionally, the paper's adjustable
// delay inverters (ADIs).
//
// The package is a facade over the internal engine:
//
//   - internal/polarity, internal/mosp: the WaveMin formulation and its
//     ε-approximate multi-objective shortest path solver;
//   - internal/multimode, internal/adb: the multi-power-mode extension;
//   - internal/peakmin: the ClkPeakMin comparison baseline;
//   - internal/cell, internal/clocktree, internal/cts, internal/spice,
//     internal/powergrid, internal/bench: the EDA substrate (cell models,
//     tree timing, synthesis, transient simulation, rail-noise analysis,
//     benchmark generation).
//
// See examples/ for runnable walkthroughs and cmd/experiments for the
// paper's evaluation tables.
package wavemin

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"wavemin/internal/bench"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
	"wavemin/internal/multimode"
	"wavemin/internal/obs"
	"wavemin/internal/polarity"
	"wavemin/internal/powergrid"
	"wavemin/internal/xorpol"
	"wavemin/internal/zonecache"
)

// Sink is a clock consumer: a flip-flop group at a die location with a
// lumped load (fF), driven by one leaf buffering element.
type Sink = cts.Sink

// Mode is a power mode: a named assignment of supply voltages to voltage
// domains.
type Mode = clocktree.Mode

// NominalMode runs every domain at the nominal 1.1 V supply.
var NominalMode = clocktree.NominalMode

// Algorithm selects the optimizer.
type Algorithm int

const (
	// WaveMin is the ε-approximate fine-grained optimizer (ClkWaveMin).
	WaveMin Algorithm = iota
	// WaveMinFast is the fast greedy variant (ClkWaveMin-f).
	WaveMinFast
	// PeakMin is the two-corner baseline of Jang et al. (ClkPeakMin),
	// provided for comparison studies.
	PeakMin
)

// String returns the paper's name for the algorithm. It matches the
// single-mode values of Result.AlgorithmUsed.
func (a Algorithm) String() string {
	switch a {
	case WaveMin:
		return "ClkWaveMin"
	case WaveMinFast:
		return "ClkWaveMin-f"
	case PeakMin:
		return "ClkPeakMin"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config parameterizes Optimize. The zero value is completed with the
// paper's defaults.
type Config struct {
	Kappa     float64   // clock skew bound, ps (default 20)
	Samples   int       // |S| time sampling points (default 158)
	Epsilon   float64   // approximation parameter (default 0.01)
	ZoneSize  float64   // noise-zone tile, µm (default 50)
	Algorithm Algorithm // default WaveMin
	// EnableADI offers adjustable delay inverters at ADB sites in
	// multi-mode designs (the paper's Observation 3).
	EnableADI bool
	// MaxIntervals / MaxIntersections bound the search breadth (0 = the
	// experiment defaults).
	MaxIntervals     int
	MaxIntersections int
	// Workers bounds the solver parallelism: the (interval, zone) fan-out
	// in single-mode runs, the per-zone fan-out in multi-mode runs, and
	// the (mode, zone) fan-out in OptimizeDynamicPolarity. 0 uses
	// GOMAXPROCS; 1 forces the serial path. Results are bitwise identical
	// for every worker count.
	Workers int
	// Budget bounds the wall-clock time Optimize may spend (0 = unlimited).
	// When the configured algorithm cannot finish within the budget it is
	// cancelled and the pipeline degrades down the algorithm ladder —
	// ClkWaveMin → ClkWaveMin-f → ClkPeakMin → unmodified tree — so a
	// bounded-time, possibly lower-quality answer is always returned.
	// A deadline on the Context passed to Optimize enables the same
	// degradation; the tighter of the two wins.
	Budget time.Duration
	// ECO, when non-nil, runs this optimization incrementally: every
	// (interval, zone) solver instance is content-keyed, unchanged zones
	// replay their cached solution, and only the delta is solved (with
	// warm-started arenas). ECO never changes the answer — replay is
	// bitwise-identical to solving by construction — so, like Workers and
	// Budget, it is an execution hint: it is excluded from CacheKey and the
	// eco accounting fields it populates are excluded from the marshaled
	// Result. Single-mode flow only; multi-mode rungs ignore it.
	ECO *ECOConfig `json:"ECO,omitempty"`
}

// ECOConfig carries the incremental re-optimization inputs of one run.
// A non-nil-but-empty ECOConfig is meaningful: it records the run's zone
// solutions (Result.Zones) without seeding any, which is how a cold run
// becomes a base for later deltas.
type ECOConfig struct {
	// BaseZones seeds the run's zone-solution session with a base run's
	// recorded solutions: zone content key → encoded zonecache.Solution.
	// Seeds are an optimization, never a correctness input — malformed or
	// stale entries are dropped and those zones are simply re-solved.
	BaseZones map[string][]byte `json:"baseZones,omitempty"`
}

// Validate rejects nonsensical configurations with a descriptive error.
// Zero values are permitted — they select the paper defaults — but
// negative or degenerate values are not.
func (c Config) Validate() error {
	switch {
	case math.IsNaN(c.Kappa) || c.Kappa < 0:
		return fmt.Errorf("wavemin: invalid skew bound κ=%g (want > 0, or 0 for the default)", c.Kappa)
	case c.Samples != 0 && c.Samples < 2:
		return fmt.Errorf("wavemin: invalid sample count %d (want >= 2, or 0 for the default)", c.Samples)
	case math.IsNaN(c.Epsilon) || c.Epsilon < 0:
		return fmt.Errorf("wavemin: invalid approximation parameter ε=%g (want > 0, or 0 for the default)", c.Epsilon)
	case math.IsNaN(c.ZoneSize) || c.ZoneSize < 0:
		return fmt.Errorf("wavemin: invalid zone size %g µm (want > 0, or 0 for the default)", c.ZoneSize)
	case c.Algorithm < WaveMin || c.Algorithm > PeakMin:
		return fmt.Errorf("wavemin: unknown algorithm %d", int(c.Algorithm))
	case c.MaxIntervals < 0:
		return fmt.Errorf("wavemin: negative interval cap %d", c.MaxIntervals)
	case c.MaxIntersections < 0:
		return fmt.Errorf("wavemin: negative intersection cap %d", c.MaxIntersections)
	case c.Workers < 0:
		return fmt.Errorf("wavemin: negative worker count %d (want > 0, or 0 for GOMAXPROCS)", c.Workers)
	case c.Budget < 0:
		return fmt.Errorf("wavemin: negative budget %v", c.Budget)
	}
	return nil
}

// WithDefaults returns the config with every zero-valued knob replaced by
// the paper default — the effective values Optimize runs with. Callers
// that derive configuration variants (internal/yield's candidate knobs)
// need the effective values: scaling a zero ZoneSize would silently be a
// no-op.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Kappa == 0 {
		c.Kappa = 20
	}
	if c.Samples == 0 {
		c.Samples = 158
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.01
	}
	if c.ZoneSize == 0 {
		c.ZoneSize = polarity.DefaultZoneSize
	}
	if c.MaxIntervals == 0 {
		c.MaxIntervals = 8
	}
	if c.MaxIntersections == 0 {
		c.MaxIntersections = 8
	}
	return c
}

// Design is a buffered clock tree with its power grid and operating modes.
//
// A Design is safe for concurrent use: Optimize, Measure,
// OptimizeDynamicPolarity, SetModes, PartitionVoltageIslands, and SaveTree
// may be called from multiple goroutines. Each Optimize works on a private
// snapshot of the tree taken at entry and commits its result atomically at
// the end, so concurrent Optimize calls run fully in parallel; when several
// commit, the last one to finish wins (each result is internally
// consistent — commits never interleave). Direct field access (Tree, Grid,
// Modes) is not synchronized; use the methods when sharing a Design across
// goroutines.
type Design struct {
	Tree  *clocktree.Tree
	Grid  *powergrid.Grid
	Modes []Mode

	// mu guards the Tree pointer's node storage (snapshot/commit), Modes,
	// the lazy lib init, and the zone cache pointer. The Grid is immutable
	// after construction.
	mu         sync.Mutex
	lib        *cell.Library
	dieW, dieH float64
	zcache     *zonecache.Cache
}

// SetZoneCache attaches a shared per-zone solution cache to the design:
// every subsequent Optimize run looks its (interval, zone) solver
// instances up by content key, replays hits, and writes fresh solutions
// through. Because zone keys pin the exact solver input, sharing a cache
// across designs or across edits of one design is safe — replay is
// bitwise-identical to solving — and attaching one never changes any
// result, only the cost. Pass nil to detach.
func (d *Design) SetZoneCache(c *zonecache.Cache) {
	d.mu.Lock()
	d.zcache = c
	d.mu.Unlock()
}

// zoneSession builds the per-run ECO session, or nil when this run has
// neither a cache attached nor an ECO request.
func (d *Design) zoneSession(cfg Config) *zonecache.Session {
	d.mu.Lock()
	zc := d.zcache
	d.mu.Unlock()
	if zc == nil && cfg.ECO == nil {
		return nil
	}
	zs := zonecache.NewSession(zc)
	if cfg.ECO != nil {
		zs.Seed(cfg.ECO.BaseZones)
	}
	return zs
}

// snapshot returns a consistent private view of the design — a deep clone
// of the tree, a copy of the mode list, and the (lazily initialized) cell
// library — for one optimization or measurement run.
func (d *Design) snapshot() (*clocktree.Tree, []Mode, *cell.Library) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lib == nil {
		d.lib = cell.DefaultLibrary()
	}
	return d.Tree.Clone(), append([]Mode(nil), d.Modes...), d.lib
}

// commit atomically publishes an optimized tree as the design's tree.
func (d *Design) commit(work *clocktree.Tree) {
	d.mu.Lock()
	d.Tree.ReplaceWith(work)
	d.mu.Unlock()
}

// New synthesizes a near-zero-skew buffered clock tree over the sinks and
// builds a matching power grid. The die is inferred from the sink bounding
// box.
func New(sinks []Sink) (*Design, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("wavemin: no sinks")
	}
	lib := cell.DefaultLibrary()
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := cts.Synthesize(sinks, lib, opt)
	if err != nil {
		return nil, err
	}
	var w, h float64
	for _, s := range sinks {
		if s.X > w {
			w = s.X
		}
		if s.Y > h {
			h = s.Y
		}
	}
	grid, err := powergrid.New(w+10, h+10, powergrid.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Design{Tree: tree, Grid: grid, Modes: []Mode{NominalMode}, lib: lib, dieW: w + 10, dieH: h + 10}, nil
}

// Benchmark loads one of the built-in synthetic benchmark circuits
// (s13207, s15850, s35932, s38417, s38584, ispd09f31, ispd09f34).
func Benchmark(name string) (*Design, error) {
	spec, ok := bench.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("wavemin: unknown benchmark %q", name)
	}
	lib := cell.DefaultLibrary()
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := spec.Synthesize(lib, opt)
	if err != nil {
		return nil, err
	}
	gopt := powergrid.DefaultOptions()
	if spec.Clustered {
		gopt = powergrid.DenseOptions()
	}
	grid, err := powergrid.New(spec.DieW, spec.DieH, gopt)
	if err != nil {
		return nil, err
	}
	return &Design{Tree: tree, Grid: grid, Modes: []Mode{NominalMode}, lib: lib,
		dieW: spec.DieW, dieH: spec.DieH}, nil
}

// BenchmarkNames lists the built-in circuits.
func BenchmarkNames() []string {
	var out []string
	for _, s := range bench.Specs() {
		out = append(out, s.Name)
	}
	return out
}

// PartitionVoltageIslands splits the die into n region-based voltage
// domains, assigns every tree node to its region, and returns the domain
// names (for building Modes).
func (d *Design) PartitionVoltageIslands(n int) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return bench.AssignDomains(d.Tree, d.dieW, d.dieH, n)
}

// SetModes declares the design's power modes. At least one is required;
// the skew bound will be enforced in every mode.
func (d *Design) SetModes(modes []Mode) error {
	if len(modes) == 0 {
		return fmt.Errorf("wavemin: empty mode list")
	}
	d.mu.Lock()
	d.Modes = append([]Mode(nil), modes...)
	d.mu.Unlock()
	return nil
}

// Metrics is a golden ("simulator-measured") evaluation of the design.
type Metrics struct {
	PeakCurrent float64 // µA, worst over modes and edges
	VDDNoise    float64 // volts
	GndNoise    float64 // volts
	WorstSkew   float64 // ps, worst over modes
}

// Measure evaluates the design as-is: total-waveform peak current, rail
// noise from the power-grid transient, and worst-mode skew. The context
// cancels the underlying transient simulation promptly; internal panics
// surface as *InternalError.
func (d *Design) Measure(ctx context.Context) (m Metrics, err error) {
	defer recoverToError(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	tree, modes, _ := d.snapshot()
	return d.measureTree(ctx, tree, modes)
}

// measureTree evaluates an arbitrary tree against the design's grid in the
// given modes — the same metrics as Measure, usable on working clones
// before they are committed.
func (d *Design) measureTree(ctx context.Context, t *clocktree.Tree, modes []Mode) (Metrics, error) {
	var m Metrics
	for _, mode := range modes {
		if err := ctx.Err(); err != nil {
			return Metrics{}, err
		}
		tm := t.ComputeTiming(mode)
		if p := t.PeakCurrent(tm); p > m.PeakCurrent {
			m.PeakCurrent = p
		}
		if s := tm.Skew(t); s > m.WorstSkew {
			m.WorstSkew = s
		}
		v, g, err := d.Grid.MeasureTreeNoise(ctx, t, tm)
		if err != nil {
			return Metrics{}, err
		}
		if v > m.VDDNoise {
			m.VDDNoise = v
		}
		if g > m.GndNoise {
			m.GndNoise = g
		}
	}
	return m, nil
}

// AlgorithmNone is the AlgorithmUsed value of the degradation ladder's
// bottom rung: no optimizer finished within the budget and the tree was
// returned unmodified.
const AlgorithmNone = "none"

// StageStats is one stage of a run's telemetry summary: a facade-level
// phase (measurement, one ladder rung) with its wall time and the counter
// totals over its whole subtree of spans.
type StageStats struct {
	Path     string
	Duration time.Duration
	Counters map[string]int64
}

// Stats summarizes the telemetry of one Optimize run. It is populated
// only when the context passed to Optimize carries a telemetry trace (see
// internal/obs and cmd/wavemin's -metrics flag); otherwise it is nil and
// the run pays no telemetry cost.
type Stats struct {
	Stages   []StageStats
	Counters map[string]int64 // grand totals over the whole run
}

// Result reports an optimization.
type Result struct {
	Before, After Metrics
	NumBuffers    int // leaves assigned plain buffers
	NumInverters  int // leaves assigned plain inverters
	NumADBs       int
	NumADIs       int
	ADBInserted   int // ADBs added to fix multi-mode skew
	Runtime       time.Duration
	// AlgorithmUsed names the rung of the degradation ladder that produced
	// the final tree ("ClkWaveMin", "ClkWaveMin-f", "ClkPeakMin",
	// "ClkWaveMin-M", "ClkWaveMin-Mf", or AlgorithmNone).
	AlgorithmUsed string
	// Degraded reports that the configured algorithm did not finish within
	// the budget/deadline and a cheaper rung (possibly "return the tree
	// unmodified") answered instead.
	Degraded bool
	// Stats carries the run's telemetry summary when the context carries a
	// trace (internal/obs); nil otherwise.
	Stats *Stats

	// ECO accounting, populated only when the run had a zone session
	// (Config.ECO set or a cache attached via SetZoneCache). All four are
	// excluded from the marshaled result: like Stats, they describe the
	// run, not the answer, and the canonical result bytes of a delta solve
	// must equal those of the cold solve it shortcuts.
	//
	// ZonesReused counts (interval, zone) solver instances replayed from
	// cached solutions; ZonesResolved counts instances actually solved;
	// WarmStartLabels totals the label-arena capacity seeded into
	// re-solved instances.
	ZonesReused     int `json:"-"`
	ZonesResolved   int `json:"-"`
	WarmStartLabels int `json:"-"`
	// Zones is every zone solution this run replayed or produced, keyed by
	// zone content key — the map a job registry records so later deltas
	// can chain off this result, and a dispatched run ships home.
	Zones map[string][]byte `json:"-"`
}

// PeakReduction returns the percent peak-current improvement.
func (r *Result) PeakReduction() float64 {
	if r.Before.PeakCurrent == 0 {
		return 0
	}
	return 100 * (r.Before.PeakCurrent - r.After.PeakCurrent) / r.Before.PeakCurrent
}

// rung is one step of the degradation ladder: it optimizes a clone of the
// design's tree and returns the result plus the clone to commit.
type rung struct {
	name string
	run  func(ctx context.Context) (*Result, *clocktree.Tree, error)
}

// Optimize runs the WaveMin flow on the design, modifying its tree in
// place: single-mode designs use ClkWaveMin (or the selected variant);
// multi-mode designs use ClkWaveMin-M with ADB insertion as needed.
//
// The context cancels the optimization promptly at every hot loop. When
// cfg.Budget is set (or ctx carries a deadline), Optimize never blows the
// budget: if the configured algorithm cannot finish in time it is
// cancelled and the pipeline degrades down the ladder — ClkWaveMin →
// ClkWaveMin-f → ClkPeakMin → "return the tree unmodified" — recording
// the answering rung in Result.AlgorithmUsed and setting Result.Degraded.
// All work happens on a clone that is committed atomically on success, so
// a cancelled, failed, or panicking run leaves the design untouched;
// internal panics surface as *InternalError.
func (d *Design) Optimize(ctx context.Context, cfg Config) (res *Result, err error) {
	defer recoverToError(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	// Private snapshot: all optimization and measurement below works on
	// this consistent view, so concurrent Optimize calls never observe each
	// other's intermediate state.
	snap, modes, lib := d.snapshot()
	// Telemetry root span. The worker count is deliberately NOT recorded
	// as content: traces must be bitwise identical across Workers values
	// (scheduling-dependent data lives in the events' timing blocks).
	var sp *obs.Span
	ctx, sp = obs.Start(ctx, "optimize")
	if sp != nil {
		sp.SetAttr("algorithm", cfg.Algorithm.String())
		sp.SetAttr("kappa", fmt.Sprintf("%g", cfg.Kappa))
		sp.SetAttr("samples", fmt.Sprintf("%d", cfg.Samples))
		sp.SetAttr("epsilon", fmt.Sprintf("%g", cfg.Epsilon))
		sp.SetAttr("modes", fmt.Sprintf("%d", len(modes)))
		tr := obs.TraceFrom(ctx)
		defer func() { // registered before sp.End's defer, so it runs after it
			if res != nil {
				res.Stats = summarizeStats(tr)
			}
		}()
	}
	defer sp.End()
	_, degradable := ctx.Deadline()
	if cfg.Budget > 0 {
		degradable = true
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Budget)
		defer cancel()
	}

	sizing, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		return nil, err
	}
	zs := d.zoneSession(cfg)
	rungs, err := d.ladder(cfg, sizing, degradable, snap, modes, lib, zs)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	msp := sp.Child("measure.before")
	before, err := d.measureTree(obs.WithSpan(ctx, msp), snap, modes)
	if err == nil {
		msp.Gauge("peak", before.PeakCurrent)
		msp.Gauge("skew", before.WorstSkew)
		snapshotWaveform(msp, "waveform.before", snap, modes)
	}
	msp.End()
	if err != nil {
		if degradable && errors.Is(err, context.DeadlineExceeded) {
			// Not even the baseline measurement fits the budget: the
			// bottom rung answers with the unmodified tree (and, lacking
			// a finished measurement, zero metrics).
			res := &Result{AlgorithmUsed: AlgorithmNone, Degraded: true, Runtime: time.Since(start)}
			countCells(snap, res)
			return res, nil
		}
		return nil, err
	}

	for i, r := range rungs {
		// Budget split: every rung but the last gets half of the time
		// remaining under the overall deadline, so a stuck upper rung
		// always leaves room for the cheaper ones below it.
		rungCtx, cancel := ctx, context.CancelFunc(func() {})
		if degradable && i < len(rungs)-1 {
			if overall, ok := ctx.Deadline(); ok {
				rungCtx, cancel = context.WithDeadline(ctx, time.Now().Add(time.Until(overall)/2))
			}
		}
		rsp := sp.Child("rung." + r.name)
		rr, work, rerr := r.run(obs.WithSpan(rungCtx, rsp))
		cancel()
		if rerr == nil {
			if rsp != nil {
				rsp.Gauge("peak", rr.After.PeakCurrent)
				rsp.Gauge("skew", rr.After.WorstSkew)
				snapshotWaveform(rsp, "waveform.after", work, modes)
			}
			rsp.End()
			d.commit(work)
			rr.Before = before
			rr.Runtime = time.Since(start)
			rr.AlgorithmUsed = r.name
			rr.Degraded = i > 0
			if zs != nil {
				rr.Zones = zs.Used()
				if esp := sp.Child("eco"); esp != nil {
					esp.Count("eco.zones_reused", int64(rr.ZonesReused))
					esp.Count("eco.zones_resolved", int64(rr.ZonesResolved))
					esp.Count("eco.warmstart_labels", int64(rr.WarmStartLabels))
					esp.End()
				}
			}
			return rr, nil
		}
		rsp.SetAttr("outcome", "error")
		rsp.End()
		if !degradable || !errors.Is(rerr, context.DeadlineExceeded) || ctx.Err() == context.Canceled {
			return nil, rerr
		}
		// This rung blew its slice of the budget; fall through to the
		// next, cheaper one.
	}
	// Bottom rung: every optimizer timed out. Return the unmodified tree
	// with the Before metrics — a valid, bounded-time answer.
	res = &Result{
		Before: before, After: before,
		AlgorithmUsed: AlgorithmNone, Degraded: true,
		Runtime: time.Since(start),
	}
	countCells(snap, res)
	return res, nil
}

// ladder builds the degradation ladder for the snapshot and configuration:
// the configured algorithm first, then — when a budget or deadline makes
// degradation meaningful — every cheaper variant below it. Every rung
// optimizes a private clone of snap, so the design itself is untouched
// until Optimize commits.
func (d *Design) ladder(cfg Config, sizing *cell.Library, degradable bool, snap *clocktree.Tree, modes []Mode, lib *cell.Library, zs *zonecache.Session) ([]rung, error) {
	var rungs []rung
	if len(modes) == 1 {
		single := func(algo polarity.Algorithm) rung {
			return rung{name: algo.String(), run: func(ctx context.Context) (*Result, *clocktree.Tree, error) {
				work := snap.Clone()
				opt, err := polarity.Optimize(ctx, work, polarity.Config{
					Library: sizing, Kappa: cfg.Kappa, Samples: cfg.Samples,
					Epsilon: cfg.Epsilon, ZoneSize: cfg.ZoneSize, Algorithm: algo,
					Mode: modes[0], MaxIntervals: cfg.MaxIntervals,
					Workers: cfg.Workers, Zones: zs,
				})
				if err != nil {
					return nil, nil, err
				}
				polarity.Apply(work, opt.Assignment)
				res := &Result{
					ZonesReused:     opt.ZonesReused,
					ZonesResolved:   opt.ZonesResolved,
					WarmStartLabels: opt.WarmStartLabel,
				}
				countCells(work, res)
				after, err := d.measureTree(ctx, work, modes)
				if err != nil {
					return nil, nil, err
				}
				res.After = after
				return res, work, nil
			}}
		}
		switch cfg.Algorithm {
		case WaveMin:
			rungs = append(rungs, single(polarity.ClkWaveMin), single(polarity.ClkWaveMinF), single(polarity.ClkPeakMinBaseline))
		case WaveMinFast:
			rungs = append(rungs, single(polarity.ClkWaveMinF), single(polarity.ClkPeakMinBaseline))
		case PeakMin:
			rungs = append(rungs, single(polarity.ClkPeakMinBaseline))
		}
	} else {
		adbCell, ok := lib.ByName("ADB_X8")
		if !ok {
			return nil, fmt.Errorf("wavemin: cell library has no %q: multi-mode optimization needs an adjustable delay buffer", "ADB_X8")
		}
		var adiCell *cell.Cell
		if cfg.EnableADI {
			if adiCell, ok = lib.ByName("ADI_X8"); !ok {
				return nil, fmt.Errorf("wavemin: cell library has no %q: EnableADI needs an adjustable delay inverter", "ADI_X8")
			}
		}
		multi := func(name string, fast bool) rung {
			return rung{name: name, run: func(ctx context.Context) (*Result, *clocktree.Tree, error) {
				work := snap.Clone()
				opt, err := multimode.Optimize(ctx, work, modes, multimode.Config{
					Library: sizing, ADBCell: adbCell, ADICell: adiCell,
					Kappa: cfg.Kappa, Samples: cfg.Samples, Epsilon: cfg.Epsilon,
					ZoneSize: cfg.ZoneSize, Fast: fast,
					MaxIntersections: cfg.MaxIntersections,
					Workers:          cfg.Workers,
				})
				if err != nil {
					return nil, nil, err
				}
				if err := multimode.ApplyResult(ctx, work, modes, cfg.Kappa, opt); err != nil {
					return nil, nil, err
				}
				res := &Result{ADBInserted: opt.ADBInserted}
				countCells(work, res)
				after, err := d.measureTree(ctx, work, modes)
				if err != nil {
					return nil, nil, err
				}
				res.After = after
				return res, work, nil
			}}
		}
		if cfg.Algorithm == WaveMinFast {
			rungs = append(rungs, multi("ClkWaveMin-Mf", true))
		} else {
			rungs = append(rungs, multi("ClkWaveMin-M", false), multi("ClkWaveMin-Mf", true))
		}
	}
	if !degradable {
		// Without a budget or deadline there is nothing to degrade to:
		// run exactly the configured algorithm, as the paper flow does.
		rungs = rungs[:1]
	}
	return rungs, nil
}

// DynamicPolarityResult reports OptimizeDynamicPolarity.
type DynamicPolarityResult struct {
	// Positive[leaf][modeName]: the XOR control program (true = the leaf
	// follows the clock polarity in that mode).
	Positive map[clocktree.NodeID]map[string]bool
	// PeakPerMode is the optimizer's per-mode estimate, µA.
	PeakPerMode map[string]float64
	// FlipsPerMode counts leaves running flipped relative to the built
	// tree, per mode.
	FlipsPerMode map[string]int
}

// OptimizeDynamicPolarity computes a per-power-mode polarity program in
// the style of XOR-gate/double-edge-triggered-FF clocking (the research
// direction the paper cites as [30, 31]): instead of committing one
// static buffer/inverter choice, each leaf's polarity becomes a
// mode-programmable bit with no timing impact. The design itself is not
// modified.
//
// The context cancels the per-mode optimization promptly; cfg.Budget, when
// set, bounds the total runtime. Internal panics surface as
// *InternalError.
func (d *Design) OptimizeDynamicPolarity(ctx context.Context, cfg Config) (res *DynamicPolarityResult, err error) {
	defer recoverToError(&err)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Budget)
		defer cancel()
	}
	tree, modes, _ := d.snapshot()
	opt, err := xorpol.Optimize(ctx, tree, modes, xorpol.Config{
		Samples: cfg.Samples, ZoneSize: cfg.ZoneSize, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &DynamicPolarityResult{
		Positive:     opt.Positive,
		PeakPerMode:  opt.PeakPerMode,
		FlipsPerMode: opt.Flips(tree, modes),
	}, nil
}

// snapshotWaveform records the accumulated rising-edge IDD waveform of
// the tree (the paper's Fig. 2 "all clock nodes" curve, in the first
// mode) onto the span. The waveform computation is skipped entirely
// unless the trace enables snapshots.
func snapshotWaveform(sp *obs.Span, name string, t *clocktree.Tree, modes []Mode) {
	if !sp.SnapshotsEnabled() || len(modes) == 0 {
		return
	}
	tm := t.ComputeTiming(modes[0])
	idd, _ := t.TreeCurrents(tm, cell.Rising)
	pts := idd.Points()
	times := make([]float64, len(pts))
	values := make([]float64, len(pts))
	for i, p := range pts {
		times[i], values[i] = p.T, p.I
	}
	sp.Snapshot(name, times, values)
}

// summarizeStats folds the trace into the public Stats form.
func summarizeStats(tr *obs.Trace) *Stats {
	if tr == nil {
		return nil
	}
	s := obs.Summarize(tr.Events())
	out := &Stats{Counters: s.Totals}
	for _, st := range s.Stages {
		out.Stages = append(out.Stages, StageStats{
			Path:     st.Path,
			Duration: st.Duration,
			Counters: st.Counters,
		})
	}
	return out
}

func countCells(t *clocktree.Tree, res *Result) {
	res.NumBuffers, res.NumInverters, res.NumADBs, res.NumADIs = 0, 0, 0, 0
	for _, leaf := range t.Leaves() {
		switch t.Node(leaf).Cell.Kind {
		case cell.Buf:
			res.NumBuffers++
		case cell.Inv:
			res.NumInverters++
		case cell.ADB:
			res.NumADBs++
		case cell.ADI:
			res.NumADIs++
		}
	}
}
