//go:build !race

package wavemin

import "time"

// timingSlack pads wall-clock assertions against scheduler and GC jitter.
const timingSlack = 250 * time.Millisecond
