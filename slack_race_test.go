//go:build race

package wavemin

import "time"

// timingSlack pads wall-clock assertions. The race detector slows the
// stretches between context checks by up to an order of magnitude, so the
// promptness bounds get a much larger allowance.
const timingSlack = 2 * time.Second
