package polarity

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
)

// zoneKeyConfig mirrors the knobs Optimize would hand NewZoneKeyer, with
// the defaults Optimize fills in (Samples, MaxLabels) made explicit so the
// helper below can call the keyer directly.
func zoneKeyConfig(lib *cell.Library) Config {
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		panic(err)
	}
	return Config{
		Library: sub, Kappa: 20, Samples: 8, Epsilon: 0.01,
		Algorithm: ClkWaveMin, ZoneSize: 15, MaxLabels: 4000,
	}
}

// twoZoneTree synthesizes two sink clusters far enough apart that a
// 15 µm grid puts them in different zones, so one zone can be edited
// while the other stays byte-identical.
func twoZoneTree(tb testing.TB) (*clocktree.Tree, *cell.Library) {
	tb.Helper()
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 4; i++ {
		sinks = append(sinks, cts.Sink{X: 5 + float64(i%2)*2, Y: 5 + float64(i/2)*2, Cap: 8})
	}
	for i := 0; i < 4; i++ {
		sinks = append(sinks, cts.Sink{X: 40 + float64(i%2)*2, Y: 40 + float64(i/2)*2, Cap: 8})
	}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return tree, lib
}

// zoneKeySets computes, per spatial zone, the sorted set of every
// (interval, zone) content key — the same preamble Optimize runs before
// its solver fan-out.
func zoneKeySets(tb testing.TB, tree *clocktree.Tree, cfg Config) map[[2]int][]string {
	tb.Helper()
	mode := cfg.Mode
	if mode.Name == "" {
		mode = clocktree.NominalMode
	}
	cs := BuildCandidates(tree, cfg.Library, mode)
	intervals, err := FeasibleIntervals(cs, cfg.Kappa)
	if err != nil {
		tb.Fatal(err)
	}
	tm := tree.ComputeTiming(mode)
	zones := LeafZones(PartitionZones(tree, cfg.ZoneSize))
	if len(zones) < 2 {
		tb.Fatalf("want >= 2 zones for the property, got %d", len(zones))
	}
	leafIndex := make(map[clocktree.NodeID]int)
	for i, leaf := range cs.Leaves() {
		leafIndex[leaf] = i
	}
	zk := NewZoneKeyer(tree, tm, cs, zones, cfg)
	out := make(map[[2]int][]string, len(zones))
	for ii := range intervals {
		for _, z := range zones {
			out[z.Key] = append(out[z.Key], zk.Key(z, &intervals[ii], leafIndex))
		}
	}
	for _, keys := range out {
		sort.Strings(keys)
	}
	return out
}

func treeJSONBytes(tb testing.TB, tree *clocktree.Tree) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func reloadTree(tb testing.TB, raw []byte, lib *cell.Library) *clocktree.Tree {
	tb.Helper()
	tree, err := clocktree.ReadJSON(bytes.NewReader(raw), lib)
	if err != nil {
		tb.Fatalf("reload scrambled tree: %v", err)
	}
	return tree
}

// TestZoneKeyCanonicalInvariance pins the canonicalization half of the
// zone-key contract: the key is a function of tree content, so a
// serialization that scrambles JSON object key order or permutes the
// nodes array — same content, different bytes — reloads to byte-identical
// zone keys for every (interval, zone) instance.
func TestZoneKeyCanonicalInvariance(t *testing.T) {
	tree, lib := twoZoneTree(t)
	cfg := zoneKeyConfig(lib)
	want := zoneKeySets(t, tree, cfg)
	raw := treeJSONBytes(t, tree)

	t.Run("KeyOrderScrambled", func(t *testing.T) {
		// A round-trip through map[string]any rewrites every object with
		// alphabetized keys — a different field order than the struct
		// encoder emits — without touching any value.
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		scrambled, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(bytes.TrimSpace(scrambled), bytes.TrimSpace(raw)) {
			t.Fatal("scramble produced byte-identical JSON; the property is vacuous")
		}
		got := zoneKeySets(t, reloadTree(t, scrambled, lib), cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatal("zone keys changed under JSON key-order scrambling")
		}
	})

	t.Run("NodesPermuted", func(t *testing.T) {
		// Reverse the nodes array: the loader indexes nodes by their
		// explicit IDs, so array order is presentation, not content.
		var doc struct {
			Format string            `json:"format"`
			Nodes  []json.RawMessage `json:"nodes"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		for i, j := 0, len(doc.Nodes)-1; i < j; i, j = i+1, j-1 {
			doc.Nodes[i], doc.Nodes[j] = doc.Nodes[j], doc.Nodes[i]
		}
		permuted, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		got := zoneKeySets(t, reloadTree(t, permuted, lib), cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatal("zone keys changed under nodes-array permutation")
		}
	})
}

// zoneContentKeys keys every zone against one fixed interval with total
// feasibility, isolating the content half of the key from the interval
// dimension: interval windows are anchored at candidate arrival times, so
// an electrical edit anywhere legitimately redraws feasible sets
// tree-wide (a different instance deserves a different key), and only a
// pinned interval exposes the pure per-zone content property.
func zoneContentKeys(tb testing.TB, tree *clocktree.Tree, cfg Config) map[[2]int]string {
	tb.Helper()
	mode := cfg.Mode
	if mode.Name == "" {
		mode = clocktree.NominalMode
	}
	cs := BuildCandidates(tree, cfg.Library, mode)
	tm := tree.ComputeTiming(mode)
	zones := LeafZones(PartitionZones(tree, cfg.ZoneSize))
	if len(zones) < 2 {
		tb.Fatalf("want >= 2 zones for the property, got %d", len(zones))
	}
	leaves := cs.Leaves()
	leafIndex := make(map[clocktree.NodeID]int)
	iv := Interval{Feasible: make([][]int, len(leaves))}
	for i, leaf := range leaves {
		leafIndex[leaf] = i
		for ci := range cs.ByLeaf[leaf] {
			iv.Feasible[i] = append(iv.Feasible[i], ci)
		}
	}
	zk := NewZoneKeyer(tree, tm, cs, zones, cfg)
	out := make(map[[2]int]string, len(zones))
	for _, z := range zones {
		out[z.Key] = zk.Key(z, &iv, leafIndex)
	}
	return out
}

// TestZoneKeyEditInvalidation pins the invalidation half of the
// contract: a parasitic, cell, or placement edit to one leaf flips the
// content key of the zone holding that leaf (the keys cover raw design
// content, not just characterized numbers) while zones the edit cannot
// reach keep byte-identical keys — the property that makes delta replay
// sound.
func TestZoneKeyEditInvalidation(t *testing.T) {
	tree, lib := twoZoneTree(t)
	cfg := zoneKeyConfig(lib)
	want := zoneContentKeys(t, tree, cfg)

	zones := LeafZones(PartitionZones(tree, cfg.ZoneSize))
	edited, other := zones[0], zones[1]
	leaf := edited.Leaves[0]

	edits := []struct {
		name  string
		apply func(tr *clocktree.Tree)
	}{
		{"WireCap", func(tr *clocktree.Tree) { tr.Node(leaf).WireCap += 1e-3 }},
		{"Cell", func(tr *clocktree.Tree) {
			swap := "BUF_X16"
			if tr.Node(leaf).Cell.Name == swap {
				swap = "BUF_X8"
			}
			tr.SetCell(leaf, lib.MustByName(swap))
		}},
		{"PlacementX", func(tr *clocktree.Tree) { tr.Node(leaf).X += 0.25 }},
	}
	for _, e := range edits {
		t.Run(e.name, func(t *testing.T) {
			work := tree.Clone()
			e.apply(work)
			got := zoneContentKeys(t, work, cfg)
			if got[edited.Key] == want[edited.Key] {
				t.Fatalf("edited zone %v kept its pre-edit key under %s edit", edited.Key, e.name)
			}
			if got[other.Key] != want[other.Key] {
				t.Fatalf("untouched zone %v key changed under %s edit", other.Key, e.name)
			}
		})
	}
}
