package polarity

import (
	"context"
	"fmt"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

// NonLeafResult reports OptimizeWithNonLeafFlips.
type NonLeafResult struct {
	// Flips lists the internal nodes whose buffers were replaced by
	// equal-drive inverters, in the order committed.
	Flips []clocktree.NodeID
	// Leaf is the final leaf assignment (computed after the flips).
	Leaf *Result
	// GoldenPeak is the evaluated total-waveform peak of the final
	// configuration, µA.
	GoldenPeak float64
}

// OptimizeWithNonLeafFlips extends polarity assignment to non-leaf
// buffering elements, after Lu & Taskin (ISQED 2010 — the paper's
// reference [28]): internal buffers may also become inverters, moving
// their own supply spikes to the opposite edge. The paper notes this buys
// a further few percent of peak at some skew cost; here every candidate
// flip re-runs the leaf-level WaveMin (the leaves' input edges and
// feasible sets change under them) and is kept only when the golden
// evaluated peak improves.
//
// Greedy: at most maxFlips internal nodes are flipped, best-first. The
// input tree is not modified; apply with ApplyNonLeaf.
func OptimizeWithNonLeafFlips(ctx context.Context, t *clocktree.Tree, fullLib *cell.Library, cfg Config, maxFlips int) (*NonLeafResult, error) {
	if maxFlips < 0 {
		return nil, fmt.Errorf("polarity: negative maxFlips")
	}
	evaluate := func(flips []clocktree.NodeID) (*Result, float64, error) {
		work := t.Clone()
		for _, id := range flips {
			inv, err := invertingTwin(fullLib, work.Node(id).Cell)
			if err != nil {
				return nil, 0, err
			}
			work.SetCell(id, inv)
		}
		res, err := Optimize(ctx, work, cfg)
		if err != nil {
			return nil, 0, err
		}
		Apply(work, res.Assignment)
		tm := work.ComputeTiming(modeOf(cfg))
		return res, work.PeakCurrent(tm), nil
	}

	baseRes, basePeak, err := evaluate(nil)
	if err != nil {
		return nil, err
	}
	best := &NonLeafResult{Leaf: baseRes, GoldenPeak: basePeak}

	candidates := t.NonLeaves()
	for len(best.Flips) < maxFlips {
		improved := false
		var bestFlip clocktree.NodeID
		var bestRes *Result
		bestPeak := best.GoldenPeak
		for _, id := range candidates {
			if id == t.Root() || contains(best.Flips, id) {
				continue
			}
			if _, err := invertingTwin(fullLib, t.Node(id).Cell); err != nil {
				continue // no equal-drive inverter available
			}
			res, peak, err := evaluate(append(append([]clocktree.NodeID(nil), best.Flips...), id))
			if err != nil {
				continue // flip made the instance infeasible; skip it
			}
			if peak < bestPeak-1e-9 {
				bestFlip, bestRes, bestPeak = id, res, peak
				improved = true
			}
		}
		if !improved {
			break
		}
		best.Flips = append(best.Flips, bestFlip)
		best.Leaf = bestRes
		best.GoldenPeak = bestPeak
	}
	return best, nil
}

// ApplyNonLeaf commits the flips and the leaf assignment to the tree.
func ApplyNonLeaf(t *clocktree.Tree, fullLib *cell.Library, res *NonLeafResult) error {
	for _, id := range res.Flips {
		inv, err := invertingTwin(fullLib, t.Node(id).Cell)
		if err != nil {
			return err
		}
		t.SetCell(id, inv)
	}
	Apply(t, res.Leaf.Assignment)
	return nil
}

// invertingTwin finds the inverter of equal drive for a buffer.
func invertingTwin(lib *cell.Library, c *cell.Cell) (*cell.Cell, error) {
	if c.Inverting() {
		return c, nil
	}
	name := fmt.Sprintf("INV_X%g", c.Drive)
	twin, ok := lib.ByName(name)
	if !ok {
		return nil, fmt.Errorf("polarity: no inverter %s in library", name)
	}
	return twin, nil
}

func contains(ids []clocktree.NodeID, id clocktree.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func modeOf(cfg Config) clocktree.Mode {
	if cfg.Mode.Name == "" {
		return clocktree.NominalMode
	}
	return cfg.Mode
}
