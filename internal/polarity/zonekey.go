package polarity

import (
	"crypto/sha256"
	"sort"

	"wavemin/internal/canon"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/waveform"
	"wavemin/internal/zonecache"
)

// ZoneKeyer computes the canonical content key of every (interval, zone)
// solver instance — the zone-level generalization of the facade's
// whole-design CacheKey, versioned by zonecache.KeyFormat.
//
// The key covers, byte for byte, everything the per-zone solver sees:
//
//   - per feasible candidate: its tag index, its cell name, the arrival
//     time it induces, and all four characterized supply-current waveforms
//     (which fold in the leaf's load, slew, upstream timing, and supply);
//   - per zone leaf, in the zone's canonical (ID-sorted) order: the leaf's
//     placement, wire parasitics, sink cap, domain, current cell, and
//     adjust steps — the raw design content, so any placement, parasitic,
//     or cell edit flips the key even if it happens not to move a
//     characterized number;
//   - the zone's non-leaf baseline waveforms in accumulation order
//     (Observation 1's term), empty when the baseline is ablated;
//   - the mode (name and sorted supply map) and the solver parameters that
//     shape the instance: algorithm, ε, label cap, sample count.
//
// Node IDs never enter the key: content, not identity, addresses the
// cache. The interval's window bounds are also excluded — two windows
// with identical per-leaf feasible sets define the same instance (the
// same dedup FeasibleIntervals applies).
//
// Because the key pins the exact solver input and the solver is
// deterministic, key equality implies a cold solve would reproduce the
// cached picks bit for bit — replay is not an approximation.
type ZoneKeyer struct {
	params     []byte
	leafDigest map[clocktree.NodeID][32]byte
	candDigest map[clocktree.NodeID][][32]byte
	baseDigest map[[2]int][32]byte
}

// NewZoneKeyer precomputes per-candidate, per-leaf, and per-zone-baseline
// digests once per run; Key then assembles per-instance keys from the
// 32-byte digests without touching waveform data again.
func NewZoneKeyer(
	t *clocktree.Tree, tm *clocktree.Timing, cs *CandidateSet,
	zones []Zone, cfg Config,
) *ZoneKeyer {
	zk := &ZoneKeyer{
		leafDigest: make(map[clocktree.NodeID][32]byte, len(cs.ByLeaf)),
		candDigest: make(map[clocktree.NodeID][][32]byte, len(cs.ByLeaf)),
		baseDigest: make(map[[2]int][32]byte, len(zones)),
	}

	// Solver-parameter and mode section, rendered once.
	var p []byte
	p = append(p, "alg="...)
	p = append(p, cfg.Algorithm.String()...)
	p = append(p, " eps="...)
	p = append(p, canon.Float(cfg.Epsilon)...)
	p = append(p, " maxlabels="...)
	p = canon.AppendInt(p, cfg.MaxLabels)
	p = append(p, " samples="...)
	p = canon.AppendInt(p, cfg.Samples)
	p = append(p, " mode="...)
	p = append(p, cs.Mode.Name...)
	doms := make([]string, 0, len(cs.Mode.Supplies))
	for d := range cs.Mode.Supplies {
		doms = append(doms, d)
	}
	sort.Strings(doms)
	for _, d := range doms {
		p = append(p, ' ')
		p = append(p, d...)
		p = append(p, '=')
		p = append(p, canon.Float(cs.Mode.Supplies[d])...)
	}
	zk.params = p

	var buf []byte
	for leaf, cands := range cs.ByLeaf {
		nd := t.Node(leaf)
		// Static leaf content: the design-side fields whose edit must
		// invalidate the zone even when electrically neutral.
		buf = buf[:0]
		buf = canon.AppendFloat(buf, nd.X)
		buf = canon.AppendFloat(buf, nd.Y)
		buf = canon.AppendFloat(buf, nd.WireRes)
		buf = canon.AppendFloat(buf, nd.WireCap)
		buf = canon.AppendFloat(buf, nd.SinkCap)
		buf = appendString(buf, nd.Domain)
		buf = appendString(buf, nd.Cell.Name)
		steps := make([]string, 0, len(nd.AdjustSteps))
		for m := range nd.AdjustSteps {
			steps = append(steps, m)
		}
		sort.Strings(steps)
		for _, m := range steps {
			buf = appendString(buf, m)
			buf = canon.AppendInt(buf, nd.AdjustSteps[m])
		}
		zk.leafDigest[leaf] = sha256.Sum256(buf)

		ds := make([][32]byte, len(cands))
		for ci := range cands {
			c := &cands[ci]
			buf = buf[:0]
			buf = appendString(buf, c.Cell.Name)
			buf = canon.AppendFloat(buf, c.AT)
			for g := Group(0); g < NumGroups; g++ {
				buf = appendWave(buf, c.Wave(g))
			}
			ds[ci] = sha256.Sum256(buf)
		}
		zk.candDigest[leaf] = ds
	}

	for _, z := range zones {
		buf = buf[:0]
		for _, id := range z.NonLeaves {
			iddR, issR := t.NodeCurrents(tm, id, cell.Rising)
			iddF, issF := t.NodeCurrents(tm, id, cell.Falling)
			buf = appendWave(buf, iddR)
			buf = appendWave(buf, issR)
			buf = appendWave(buf, iddF)
			buf = appendWave(buf, issF)
		}
		zk.baseDigest[z.Key] = sha256.Sum256(buf)
	}
	return zk
}

// emptyBaseline is the digest of a zone with no (or an ablated) non-leaf
// baseline.
var emptyBaseline = sha256.Sum256(nil)

// Key returns the content key for one (interval, zone) instance as
// lowercase hex, the form the zone cache stores under.
func (zk *ZoneKeyer) Key(zone Zone, iv *Interval, leafIndex map[clocktree.NodeID]int) string {
	h := canon.NewHasher(zonecache.KeyFormat)
	h.SectionBytes("params", zk.params)

	base := emptyBaseline
	if len(zone.NonLeaves) > 0 {
		base = zk.baseDigest[zone.Key]
	}
	h.SectionBytes("baseline", base[:])

	var buf []byte
	for _, leaf := range zone.Leaves {
		buf = buf[:0]
		ld := zk.leafDigest[leaf]
		buf = append(buf, ld[:]...)
		ds := zk.candDigest[leaf]
		for _, ci := range iv.Feasible[leafIndex[leaf]] {
			buf = canon.AppendInt(buf, ci)
			if ci >= 0 && ci < len(ds) {
				buf = append(buf, ds[ci][:]...)
			}
		}
		h.SectionBytes("leaf", buf)
	}
	return h.Sum()
}

func appendString(b []byte, s string) []byte {
	b = canon.AppendInt(b, len(s))
	return append(b, s...)
}

func appendWave(b []byte, w waveform.Waveform) []byte {
	pts := w.Points()
	b = canon.AppendInt(b, len(pts))
	for _, p := range pts {
		b = canon.AppendFloat(b, p.T)
		b = canon.AppendFloat(b, p.I)
	}
	return b
}
