package polarity

import (
	"fmt"
	"math"
	"sort"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

// SamantaBaseline implements the placement-aware polarity assignment of
// Samanta, Venkataraman & Hu (ICCAD 2006 — the paper's reference [23]):
// within every local region ("zone"), roughly half of the buffering
// elements get each polarity, so the two opposing current spikes cancel
// *locally*, not just chip-wide. Still arrival-time blind — the flaw
// WaveMin fixes — but strictly stronger than the global split of [22].
func SamantaBaseline(t *clocktree.Tree, lib *cell.Library, mode clocktree.Mode, zoneSize float64) (Assignment, error) {
	bufs, invs := lib.Buffers(), lib.Inverters()
	if len(bufs) == 0 || len(invs) == 0 {
		return nil, fmt.Errorf("polarity: Samanta baseline needs both buffers and inverters")
	}
	tm := t.ComputeTiming(mode)
	a := make(Assignment)
	for _, zone := range LeafZones(PartitionZones(t, zoneSize)) {
		for i, id := range zone.Leaves {
			nd := t.Node(id)
			vdd := mode.VDDOf(nd.Domain)
			load := tm.Load[id]
			ref := nd.Cell.Delay(load, vdd)
			cands := bufs
			if i%2 == 1 { // alternate within the zone → ⌈n/2⌉ / ⌊n/2⌋ split
				cands = invs
			}
			best, bestD := cands[0], math.Inf(1)
			for _, c := range cands {
				if d := math.Abs(c.Delay(load, vdd) - ref); d < bestD {
					best, bestD = c, d
				}
			}
			a[id] = best
		}
	}
	return a, nil
}

// NiehBaseline implements the earliest polarity-assignment scheme (Nieh,
// Huang & Hsu, DAC 2005 — the paper's reference [22]): split the design
// into two halves and drive one half with inverters, so the two halves'
// current spikes land on opposite clock edges. No arrival-time awareness,
// no sizing, no zones — the global 50/50 split the later work refines.
//
// The tree is split by the median leaf x-coordinate (the geometric
// equivalent of [22]'s two-subtree split). For each leaf the buffer and
// inverter are chosen from the library to minimize the delay change, which
// keeps the skew impact of the flip minimal.
func NiehBaseline(t *clocktree.Tree, lib *cell.Library, mode clocktree.Mode) (Assignment, error) {
	bufs, invs := lib.Buffers(), lib.Inverters()
	if len(bufs) == 0 || len(invs) == 0 {
		return nil, fmt.Errorf("polarity: Nieh baseline needs both buffers and inverters")
	}
	leaves := t.Leaves()
	if len(leaves) == 0 {
		return nil, fmt.Errorf("polarity: no leaves")
	}
	tm := t.ComputeTiming(mode)

	// Median split by x.
	xs := make([]float64, len(leaves))
	for i, id := range leaves {
		xs[i] = t.Node(id).X
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]

	a := make(Assignment, len(leaves))
	for i, id := range leaves {
		nd := t.Node(id)
		vdd := mode.VDDOf(nd.Domain)
		load := tm.Load[id]
		ref := nd.Cell.Delay(load, vdd)
		pick := func(cands []*cell.Cell) *cell.Cell {
			best, bestD := cands[0], math.Inf(1)
			for _, c := range cands {
				if d := math.Abs(c.Delay(load, vdd) - ref); d < bestD {
					best, bestD = c, d
				}
			}
			return best
		}
		if xs[i] < median {
			a[id] = pick(bufs)
		} else {
			a[id] = pick(invs)
		}
	}
	return a, nil
}
