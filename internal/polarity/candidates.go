// Package polarity implements the paper's primary contribution: the
// fine-grained clock buffer polarity assignment combined with buffer
// sizing (WaveMin), its ε-approximate solver ClkWaveMin, the fast
// heuristic ClkWaveMin-f, and the ClkPeakMin baseline driver.
//
// Pipeline (paper Fig. 8): characterize candidates → enumerate feasible
// arrival-time intervals under the skew bound κ → partition the design
// into zones → per (interval, zone) build the WaveMin→MOSP graph and
// solve → keep the interval whose worst zone peak is least.
package polarity

import (
	"fmt"
	"math"
	"sort"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/waveform"
)

// Candidate is one (leaf, cell) assignment option, fully characterized:
// the arrival time it induces and the four supply-current waveforms in
// absolute time (clock source switches at t = 0).
type Candidate struct {
	Leaf clocktree.NodeID
	Cell *cell.Cell
	AT   float64 // leaf output arrival time under this assignment, ps

	IDDRise waveform.Waveform // IDD when the source launches a rising edge
	ISSRise waveform.Waveform
	IDDFall waveform.Waveform // IDD when the source launches a falling edge
	ISSFall waveform.Waveform
}

// Group selects one of the four (rail, source-edge) noise groups.
type Group int

// The four sampling groups of the paper's problem statement: "S may
// contain ... VDD and Gnd on the rising edge; VDD and Gnd on the falling
// edge".
const (
	VDDRise Group = iota
	GndRise
	VDDFall
	GndFall
	NumGroups
)

// Wave returns the candidate's waveform for a group.
func (c *Candidate) Wave(g Group) waveform.Waveform {
	switch g {
	case VDDRise:
		return c.IDDRise
	case GndRise:
		return c.ISSRise
	case VDDFall:
		return c.IDDFall
	default:
		return c.ISSFall
	}
}

// CandidateSet holds, per leaf, the characterized options from B ∪ I.
type CandidateSet struct {
	Mode   clocktree.Mode
	ByLeaf map[clocktree.NodeID][]Candidate
}

// BuildCandidates characterizes every (leaf, cell) pair of the tree
// against the library in the given mode, per Observation 4: the leaf's own
// load and input arrival are taken from the *initial* timing (re-assigning
// a leaf leaves its siblings' delay/slew effectively unchanged), so each
// leaf's options are independent — the property that makes the layered
// MOSP formulation exact.
//
// Adjustable cells are characterized at zero bank steps; multi-mode
// optimization adjusts steps separately.
func BuildCandidates(t *clocktree.Tree, lib *cell.Library, mode clocktree.Mode) *CandidateSet {
	tm := t.ComputeTiming(mode)
	cs := &CandidateSet{Mode: mode, ByLeaf: make(map[clocktree.NodeID][]Candidate)}
	for _, leaf := range t.Leaves() {
		nd := t.Node(leaf)
		vdd := mode.VDDOf(nd.Domain)
		load := tm.Load[leaf]
		slewIn := tm.SlewIn[leaf]
		edgeAtRise := t.EdgeAtInput(leaf, cell.Rising) // independent of the leaf's own cell
		var cands []Candidate
		for _, c := range lib.Cells() {
			atIn := tm.ATIn[leaf] + selfLoadShift(t, tm, mode, leaf, c)
			iddR, issR := c.Currents(edgeAtRise, load, vdd, slewIn)
			iddF, issF := c.Currents(edgeAtRise.Opposite(), load, vdd, slewIn)
			cands = append(cands, Candidate{
				Leaf: leaf, Cell: c,
				AT:      atIn + c.Delay(load, vdd),
				IDDRise: iddR.Shift(atIn), ISSRise: issR.Shift(atIn),
				IDDFall: iddF.Shift(atIn), ISSFall: issF.Shift(atIn),
			})
		}
		cs.ByLeaf[leaf] = cands
	}
	return cs
}

// SelfLoadShift returns the exact change of a leaf's *input* arrival time
// caused by swapping its own cell for c: the candidate's input cap loads
// both its incoming wire (Elmore term) and its parent's output (cell
// delay term). Sibling-induced shifts remain unmodeled, per Observation 4.
func SelfLoadShift(t *clocktree.Tree, tm *clocktree.Timing, mode clocktree.Mode, leaf clocktree.NodeID, c *cell.Cell) float64 {
	return selfLoadShift(t, tm, mode, leaf, c)
}

func selfLoadShift(t *clocktree.Tree, tm *clocktree.Timing, mode clocktree.Mode, leaf clocktree.NodeID, c *cell.Cell) float64 {
	nd := t.Node(leaf)
	if nd.Parent == clocktree.NoNode {
		return 0
	}
	dCin := c.InputCap() - nd.Cell.InputCap()
	if dCin == 0 {
		return 0
	}
	p := t.Node(nd.Parent)
	vddP := mode.VDDOf(p.Domain)
	loadP := tm.Load[p.ID]
	parentShift := p.Cell.Delay(loadP+dCin, vddP) - p.Cell.Delay(loadP, vddP)
	wireShift := nd.WireRes * dCin
	return parentShift + wireShift
}

// Leaves returns the candidate set's leaf IDs in ascending order.
func (cs *CandidateSet) Leaves() []clocktree.NodeID {
	out := make([]clocktree.NodeID, 0, len(cs.ByLeaf))
	for id := range cs.ByLeaf {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ArrivalTimes returns the sorted distinct arrival times achievable by any
// candidate — the interval anchors of the paper's Fig. 6, Step 1.
func (cs *CandidateSet) ArrivalTimes() []float64 {
	var ats []float64
	for _, cands := range cs.ByLeaf {
		for _, c := range cands {
			ats = append(ats, c.AT)
		}
	}
	sort.Float64s(ats)
	out := ats[:0]
	for i, t := range ats {
		if i == 0 || t-out[len(out)-1] > 1e-9 {
			out = append(out, t)
		}
	}
	return out
}

// Assignment maps each leaf to its chosen cell.
type Assignment map[clocktree.NodeID]*cell.Cell

// Apply writes the assignment into the tree.
func Apply(t *clocktree.Tree, a Assignment) {
	for leaf, c := range a {
		t.SetCell(leaf, c)
	}
}

// InitialAssignment captures the tree's current leaf cells (to restore or
// diff against).
func InitialAssignment(t *clocktree.Tree) Assignment {
	a := make(Assignment)
	for _, leaf := range t.Leaves() {
		a[leaf] = t.Node(leaf).Cell
	}
	return a
}

// CountKinds tallies an assignment by cell kind — e.g. how many leaves
// became inverters.
func CountKinds(a Assignment) map[cell.Kind]int {
	out := make(map[cell.Kind]int)
	for _, c := range a {
		out[c.Kind]++
	}
	return out
}

// Validate checks that the assignment covers exactly the tree's leaves.
func (a Assignment) Validate(t *clocktree.Tree) error {
	leaves := t.Leaves()
	if len(a) != len(leaves) {
		return fmt.Errorf("polarity: assignment covers %d leaves, tree has %d", len(a), len(leaves))
	}
	for _, leaf := range leaves {
		if a[leaf] == nil {
			return fmt.Errorf("polarity: leaf %d unassigned", leaf)
		}
	}
	return nil
}

// SkewOf computes the skew the assignment would induce according to the
// candidate model (exact max−min over chosen candidates' ATs).
func (cs *CandidateSet) SkewOf(a Assignment) (float64, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for leaf, cands := range cs.ByLeaf {
		chosen := a[leaf]
		if chosen == nil {
			return 0, fmt.Errorf("polarity: leaf %d unassigned", leaf)
		}
		found := false
		for _, c := range cands {
			if c.Cell == chosen {
				lo = math.Min(lo, c.AT)
				hi = math.Max(hi, c.AT)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("polarity: leaf %d assigned unknown cell %s", leaf, chosen.Name)
		}
	}
	return hi - lo, nil
}
