package polarity

import (
	"context"
	"fmt"
	"math"
	"sort"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/faultinject"
	"wavemin/internal/mosp"
	"wavemin/internal/obs"
	"wavemin/internal/parallel"
	"wavemin/internal/peakmin"
	"wavemin/internal/zonecache"
)

// Algorithm selects the per-zone solver.
type Algorithm int

const (
	// ClkWaveMin is the ε-approximate multi-objective shortest path solver
	// (paper §V-B).
	ClkWaveMin Algorithm = iota
	// ClkWaveMinF is the fast vertex-selection heuristic (paper §V-C).
	ClkWaveMinF
	// ClkPeakMinBaseline is the two-corner knapsack baseline of [27],
	// unaware of arrival times and non-leaf currents.
	ClkPeakMinBaseline
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case ClkWaveMin:
		return "ClkWaveMin"
	case ClkWaveMinF:
		return "ClkWaveMin-f"
	case ClkPeakMinBaseline:
		return "ClkPeakMin"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config parameterizes Optimize.
type Config struct {
	Library   *cell.Library // B ∪ I (∪ adjustables)
	Kappa     float64       // clock skew bound κ, ps
	Samples   int           // |S|: total time sampling points (≥4)
	Epsilon   float64       // Warburton approximation parameter
	ZoneSize  float64       // tile pitch, µm; 0 = DefaultZoneSize
	Algorithm Algorithm
	Mode      clocktree.Mode // operating point; zero value = nominal
	// MaxIntervals bounds how many feasible intervals are fully optimized,
	// taken in decreasing degree-of-freedom order (Fig. 14: more freedom →
	// less noise). 0 = all.
	MaxIntervals int
	// IgnoreNonLeaf drops the non-leaf baseline from the optimization —
	// the Observation 1 ablation: the optimizer then sees only leaf noise,
	// like the prior work the paper improves on.
	IgnoreNonLeaf bool
	// MaxLabels caps the per-layer Pareto label set in the ClkWaveMin
	// solver; big clustered zones degrade gracefully instead of blowing
	// up. 0 = 4000.
	MaxLabels int
	// Workers bounds the solver goroutines fanned out over the interval ×
	// zone grid (every (interval, zone) MOSP instance is independent —
	// Fig. 8 is embarrassingly parallel). 0 = GOMAXPROCS, 1 = serial.
	// Results are bitwise identical for every worker count.
	Workers int
	// Zones, when non-nil, is the ECO-mode zone solution session: each
	// (interval, zone) instance is content-keyed (ZoneKeyer) and replayed
	// from the cache when unchanged, solved and stored when not. Replay is
	// bitwise-identical to solving by construction — the key covers every
	// solver input and the solver is deterministic — so attaching a
	// session never changes the result, only the cost. Ignored by the
	// ClkPeakMinBaseline algorithm (its zone solve is already cheap).
	Zones *zonecache.Session
}

// ZoneOutcome reports one zone's optimized peak estimate.
type ZoneOutcome struct {
	Zone Zone
	Peak float64 // optimizer estimate over S, µA
}

// Result is the outcome of Optimize.
type Result struct {
	Algorithm      Algorithm
	Assignment     Assignment
	Interval       Interval // chosen window
	PeakEstimate   float64  // max over zones of the optimizer estimate, µA
	ZonePeaks      []ZoneOutcome
	IntervalsTried int
	SkewEstimate   float64 // candidate-model skew of the assignment, ps
	// ECO-mode accounting (zero unless Config.Zones was attached):
	// instances replayed from the zone cache, instances actually solved,
	// and warm-start labels seeded into re-solved instances.
	ZonesReused    int
	ZonesResolved  int
	WarmStartLabel int
}

// Optimize runs the full single-mode flow of Fig. 8 and returns the best
// assignment found. The input tree is not modified; call Apply to commit.
// Cancellation is checked per interval and per zone, and forwarded into
// the per-zone solvers.
func Optimize(ctx context.Context, t *clocktree.Tree, cfg Config) (*Result, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("polarity: nil library")
	}
	if cfg.Kappa <= 0 {
		return nil, fmt.Errorf("polarity: non-positive skew bound %g", cfg.Kappa)
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 4
	}
	if cfg.MaxLabels <= 0 {
		cfg.MaxLabels = 4000
	}
	mode := cfg.Mode
	if mode.Name == "" {
		mode = clocktree.NominalMode
	}
	ctx, sp := obs.Start(ctx, "polarity")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("algorithm", cfg.Algorithm.String())
		sp.SetAttr("mode", mode.Name)
	}
	cs := BuildCandidates(t, cfg.Library, mode)
	intervals, err := FeasibleIntervals(cs, cfg.Kappa)
	if err != nil {
		return nil, err
	}
	sp.Count("polarity.intervals_found", int64(len(intervals)))
	// Richer intervals first (degree-of-freedom pruning).
	sort.SliceStable(intervals, func(i, j int) bool {
		return intervals[i].DegreeOfFreedom() > intervals[j].DegreeOfFreedom()
	})
	if cfg.MaxIntervals > 0 && len(intervals) > cfg.MaxIntervals {
		intervals = intervals[:cfg.MaxIntervals]
	}

	tm := t.ComputeTiming(mode)
	zones := LeafZones(PartitionZones(t, cfg.ZoneSize))
	leafIndex := make(map[clocktree.NodeID]int)
	for i, leaf := range cs.Leaves() {
		leafIndex[leaf] = i
	}

	// ECO mode: precompute content digests once so each (interval, zone)
	// instance can be keyed cheaply inside the fan-out. The baseline
	// solver algorithm is excluded — its per-zone solve costs less than a
	// cache round-trip.
	var zk *ZoneKeyer
	if cfg.Zones != nil && cfg.Algorithm != ClkPeakMinBaseline {
		zk = NewZoneKeyer(t, tm, cs, zones, cfg)
	}

	// Every (interval, zone) pair is an independent solver instance; fan
	// them out as one flat index space and merge afterwards in fixed
	// order, so the outcome is identical for every worker count.
	nz := len(zones)
	sp.Count("polarity.zones", int64(nz))
	sp.Count("polarity.intervals_tried", int64(len(intervals)))
	solved := make([]zoneSolved, len(intervals)*nz)
	ferr := parallel.ForEach(ctx, cfg.Workers, len(solved), func(k int) error {
		ii, zi := k/nz, k%nz
		// Per-instance sub-span at the flat fan-out index: the slot — not
		// the goroutine — fixes its serialized position, so the trace is
		// identical at any worker count.
		zctx := ctx
		if zsp := sp.ChildAt(k, "zone"); zsp != nil {
			defer zsp.End()
			zsp.SetAttr("interval", fmt.Sprintf("[%g,%g]", intervals[ii].Lo, intervals[ii].Hi))
			zsp.Count("zone.leaves", int64(len(zones[zi].Leaves)))
			zctx = obs.WithSpan(ctx, zsp)
		}
		s, err := solveZone(zctx, t, tm, cs, zones[zi], &intervals[ii], leafIndex, cfg, zk)
		if err != nil {
			iv := &intervals[ii]
			return fmt.Errorf("polarity: interval [%g,%g]: %w", iv.Lo, iv.Hi, err)
		}
		solved[k] = s
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	var best *Result
	for ii := range intervals {
		res := &Result{Algorithm: cfg.Algorithm, Assignment: make(Assignment), Interval: intervals[ii]}
		for zi, zone := range zones {
			s := solved[ii*nz+zi]
			for li, leaf := range zone.Leaves {
				res.Assignment[leaf] = cs.ByLeaf[leaf][s.picks[li]].Cell
			}
			res.ZonePeaks = append(res.ZonePeaks, ZoneOutcome{Zone: zone, Peak: s.peak})
			if s.peak > res.PeakEstimate {
				res.PeakEstimate = s.peak
			}
		}
		if best == nil || res.PeakEstimate < best.PeakEstimate {
			best = res
		}
	}
	best.IntervalsTried = len(intervals)
	if skew, err := cs.SkewOf(best.Assignment); err == nil {
		best.SkewEstimate = skew
	}
	if zk != nil {
		// Aggregated after the fan-out from the ordered slots, so the
		// counts (and the trace counters below) are identical at every
		// worker count.
		for i := range solved {
			if solved[i].reused {
				best.ZonesReused++
			} else {
				best.ZonesResolved++
				best.WarmStartLabel += solved[i].warm
			}
		}
		sp.Count("eco.zones_reused", int64(best.ZonesReused))
		sp.Count("eco.zones_resolved", int64(best.ZonesResolved))
		sp.Count("eco.warmstart_labels", int64(best.WarmStartLabel))
	}
	return best, nil
}

// zoneSolved is one (interval, zone) outcome: candidate-index picks per
// leaf plus the solver's peak estimate, and the ECO accounting for the
// instance (replayed from cache vs solved, warm-start labels seeded).
type zoneSolved struct {
	picks  []int
	peak   float64
	reused bool
	warm   int
}

// solveZone solves a single (interval, zone) instance. It runs on worker
// goroutines: everything it touches is either read-only shared state (the
// tree, timing, candidate set) or per-call (the zone is a value copy, so
// the IgnoreNonLeaf mutation stays local).
func solveZone(
	ctx context.Context, t *clocktree.Tree, tm *clocktree.Timing, cs *CandidateSet,
	zone Zone, iv *Interval, leafIndex map[clocktree.NodeID]int, cfg Config, zk *ZoneKeyer,
) (zoneSolved, error) {
	faultinject.At(faultinject.SitePolarityZone)
	if cfg.IgnoreNonLeaf {
		zone.NonLeaves = nil
	}
	switch cfg.Algorithm {
	case ClkPeakMinBaseline:
		// PeakMin's estimate ignores time structure; for interval scoring
		// we still use its own objective value.
		picks, peak, err := solveZonePeakMin(ctx, cs, zone, iv, leafIndex)
		if err != nil {
			return zoneSolved{}, err
		}
		return zoneSolved{picks: picks, peak: peak}, nil
	default:
		var key string
		if zk != nil {
			key = zk.Key(zone, iv, leafIndex)
			if sol, ok := cfg.Zones.Lookup(key); ok && replayValid(sol, cs, zone, iv, leafIndex) {
				// Content hit: the key pins the exact solver input, so the
				// cached picks are what the solve below would compute —
				// skip building the instance entirely.
				if zsp := obs.FromContext(ctx); zsp != nil {
					zsp.Count("zone.replayed", 1)
				}
				return zoneSolved{picks: sol.Picks, peak: sol.Peak, reused: true}, nil
			}
		}
		zi, err := BuildZoneInstance(t, tm, cs, zone, iv, leafIndex, cfg.Samples)
		if err != nil {
			return zoneSolved{}, err
		}
		if zsp := obs.FromContext(ctx); zsp != nil {
			var cands int64
			for _, l := range zi.Graph.Layers {
				cands += int64(len(l))
			}
			zsp.Count("zone.candidates", cands)
		}
		var sol mosp.Solution
		var info mosp.SolveInfo
		var warm int
		switch cfg.Algorithm {
		case ClkWaveMin:
			opts := mosp.Options{Epsilon: cfg.Epsilon, MaxLabels: cfg.MaxLabels}
			if zk != nil {
				opts.Info = &info
				if labels, front, ok := cfg.Zones.Warm(zone.Key); ok {
					// Output-neutral warm start: prior effort for this
					// spatial zone pre-sizes the solver's arenas.
					opts.WarmLabels, opts.WarmFrontier = labels, front
					warm = labels
				}
			}
			sol, err = mosp.Solve(ctx, zi.Graph, opts)
		case ClkWaveMinF:
			sol, err = mosp.SolveFast(ctx, zi.Graph)
		default:
			return zoneSolved{}, fmt.Errorf("polarity: unknown algorithm %v", cfg.Algorithm)
		}
		if err != nil {
			return zoneSolved{}, err
		}
		picks := make([]int, len(sol.Picks))
		for li, pi := range sol.Picks {
			picks[li] = zi.Graph.Layers[li][pi].Tag
		}
		if zk != nil {
			cfg.Zones.Store(key, &zonecache.Solution{
				Zone: zone.Key, Picks: picks, Peak: sol.Max,
				Expanded: info.Expanded, Frontier: info.Frontier,
			})
		}
		return zoneSolved{picks: picks, peak: sol.Max, warm: warm}, nil
	}
}

// replayValid defensively bounds-checks a cached solution against the live
// candidate set before replaying it: right leaf count, every pick a
// feasible candidate of its leaf. A mismatch (corrupt or aliased entry)
// falls back to a fresh solve — never an error.
func replayValid(sol *zonecache.Solution, cs *CandidateSet, zone Zone, iv *Interval, leafIndex map[clocktree.NodeID]int) bool {
	if len(sol.Picks) != len(zone.Leaves) {
		return false
	}
	for li, leaf := range zone.Leaves {
		p := sol.Picks[li]
		if p < 0 || p >= len(cs.ByLeaf[leaf]) {
			return false
		}
		ok := false
		for _, ci := range iv.Feasible[leafIndex[leaf]] {
			if ci == p {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// solveZonePeakMin runs the [27] baseline on one zone: per-element peaks
// (the maximum of each candidate's four waveform peaks), buffers vs
// inverters two-sum knapsack.
func solveZonePeakMin(
	ctx context.Context, cs *CandidateSet, zone Zone, iv *Interval, leafIndex map[clocktree.NodeID]int,
) (picks []int, peak float64, err error) {
	layers := make([][]peakmin.Option, len(zone.Leaves))
	tags := make([][]int, len(zone.Leaves))
	for li, leaf := range zone.Leaves {
		gi := leafIndex[leaf]
		cands := cs.ByLeaf[leaf]
		for _, ci := range iv.Feasible[gi] {
			c := &cands[ci]
			p := 0.0
			for g := Group(0); g < NumGroups; g++ {
				if pk, _ := c.Wave(g).Peak(); pk > p {
					p = pk
				}
			}
			layers[li] = append(layers[li], peakmin.Option{
				Peak:     p,
				IsBuffer: !c.Cell.Inverting(),
				Tag:      ci,
			})
			tags[li] = append(tags[li], ci)
		}
		if len(layers[li]) == 0 {
			return nil, 0, fmt.Errorf("polarity: leaf %d infeasible in interval", leaf)
		}
	}
	sol, err := peakmin.Solve(ctx, layers, 0)
	if err != nil {
		return nil, 0, err
	}
	picks = make([]int, len(sol.Picks))
	for li, pi := range sol.Picks {
		picks[li] = tags[li][pi]
	}
	return picks, sol.Max, nil
}

// EstimatePeak evaluates an arbitrary assignment with the optimizer's own
// noise model (max over zones, |S| samples) — used for apples-to-apples
// before/after comparisons and for Fig. 2-style studies.
func EstimatePeak(t *clocktree.Tree, cfg Config, a Assignment) (float64, error) {
	mode := cfg.Mode
	if mode.Name == "" {
		mode = clocktree.NominalMode
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 4
	}
	cs := BuildCandidates(t, cfg.Library, mode)
	tm := t.ComputeTiming(mode)
	zones := LeafZones(PartitionZones(t, cfg.ZoneSize))
	leafIndex := make(map[clocktree.NodeID]int)
	for i, leaf := range cs.Leaves() {
		leafIndex[leaf] = i
	}
	// A permissive interval covering all candidates (estimation only).
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, cands := range cs.ByLeaf {
		for _, c := range cands {
			lo = math.Min(lo, c.AT)
			hi = math.Max(hi, c.AT)
		}
	}
	leaves := cs.Leaves()
	iv := &Interval{Lo: lo, Hi: hi, Feasible: make([][]int, len(leaves))}
	for li, leaf := range leaves {
		for ci := range cs.ByLeaf[leaf] {
			iv.Feasible[li] = append(iv.Feasible[li], ci)
		}
	}
	worst := 0.0
	for _, zone := range zones {
		zi, err := BuildZoneInstance(t, tm, cs, zone, iv, leafIndex, cfg.Samples)
		if err != nil {
			return 0, err
		}
		p, err := zi.EstimateZonePeak(cs, a)
		if err != nil {
			return 0, err
		}
		if p > worst {
			worst = p
		}
	}
	return worst, nil
}
