package polarity

import (
	"context"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

func nonLeafFixture(t *testing.T) (*clocktree.Tree, *cell.Library, Config) {
	tree, lib := clusterTree(t, 8)
	cfg := sizingConfig(lib, ClkWaveMin)
	cfg.Samples = 16
	cfg.MaxIntervals = 3
	return tree, lib, cfg
}

func TestNonLeafFlipsNeverWorsenGolden(t *testing.T) {
	tree, lib, cfg := nonLeafFixture(t)
	base, err := Optimize(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	work := tree.Clone()
	Apply(work, base.Assignment)
	basePeak := work.PeakCurrent(work.ComputeTiming(clocktree.NominalMode))

	res, err := OptimizeWithNonLeafFlips(context.Background(), tree, lib, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoldenPeak > basePeak+1e-6 {
		t.Fatalf("non-leaf extension worsened the peak: %g vs %g", res.GoldenPeak, basePeak)
	}
	if len(res.Flips) > 2 {
		t.Fatalf("flip budget exceeded: %d", len(res.Flips))
	}
}

func TestNonLeafFlipsApply(t *testing.T) {
	tree, lib, cfg := nonLeafFixture(t)
	res, err := OptimizeWithNonLeafFlips(context.Background(), tree, lib, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyNonLeaf(tree, lib, res); err != nil {
		t.Fatal(err)
	}
	// Applied tree must reproduce the reported golden peak.
	got := tree.PeakCurrent(tree.ComputeTiming(clocktree.NominalMode))
	if diff := got - res.GoldenPeak; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("applied peak %g != reported %g", got, res.GoldenPeak)
	}
	// Flipped internal nodes are inverters now.
	for _, id := range res.Flips {
		if !tree.Node(id).Cell.Inverting() {
			t.Fatalf("flip %d not applied", id)
		}
	}
	// Skew still respected (±drift).
	if s := tree.ComputeTiming(clocktree.NominalMode).Skew(tree); s > cfg.Kappa+2 {
		t.Fatalf("skew %g after non-leaf flips", s)
	}
}

func TestNonLeafZeroBudgetEqualsPlain(t *testing.T) {
	tree, lib, cfg := nonLeafFixture(t)
	res, err := OptimizeWithNonLeafFlips(context.Background(), tree, lib, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flips) != 0 {
		t.Fatal("zero budget must not flip")
	}
	if _, err := OptimizeWithNonLeafFlips(context.Background(), tree, lib, cfg, -1); err == nil {
		t.Fatal("negative budget should error")
	}
}

func TestInvertingTwin(t *testing.T) {
	lib := cell.DefaultLibrary()
	buf := lib.MustByName("BUF_X8")
	twin, err := invertingTwin(lib, buf)
	if err != nil {
		t.Fatal(err)
	}
	if twin.Name != "INV_X8" {
		t.Fatalf("twin = %s", twin.Name)
	}
	inv := lib.MustByName("INV_X4")
	same, err := invertingTwin(lib, inv)
	if err != nil || same != inv {
		t.Fatal("inverting cell should be its own twin")
	}
	odd := cell.MakeADB(8, 4, 3)
	odd2 := *odd
	odd2.Kind = cell.Buf
	odd2.StepPs, odd2.MaxSteps = 0, 0
	odd2.Drive = 3 // no INV_X3 in the library
	if _, err := invertingTwin(lib, &odd2); err == nil {
		t.Fatal("missing twin should error")
	}
}
