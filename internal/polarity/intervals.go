package polarity

import (
	"fmt"
)

// Interval is a feasible arrival-time window [Lo, Hi] with Hi−Lo = κ
// (paper §IV-A, Step 2): any assignment whose every leaf arrival lands
// inside meets the skew bound.
type Interval struct {
	Lo, Hi float64
	// Feasible[leaf index in CandidateSet.Leaves() order] lists the
	// indices (into ByLeaf[leaf]) of candidates inside the window.
	Feasible [][]int
}

// DegreeOfFreedom counts the total feasible (leaf, cell) options — the
// paper's §VI pruning metric; more freedom correlates with lower noise
// (Fig. 14).
func (iv *Interval) DegreeOfFreedom() int {
	n := 0
	for _, f := range iv.Feasible {
		n += len(f)
	}
	return n
}

// FeasibleIntervals enumerates the candidate windows [t−κ, t] anchored at
// every distinct achievable arrival time t and keeps the feasible ones:
// windows where every leaf retains at least one candidate. Intervals with
// identical feasibility sets are deduplicated (they define the same
// optimization instance).
func FeasibleIntervals(cs *CandidateSet, kappa float64) ([]Interval, error) {
	if kappa < 0 {
		return nil, fmt.Errorf("polarity: negative skew bound %g", kappa)
	}
	leaves := cs.Leaves()
	if len(leaves) == 0 {
		return nil, fmt.Errorf("polarity: no leaves")
	}
	var out []Interval
	seen := make(map[string]bool)
	// The signature is a fixed-width (leaf, candidate) pair stream in a
	// reused buffer: same dedup semantics as the old "%d.%d," string at a
	// fraction of the cost, and the feasible sets are only materialized
	// for intervals that survive dedup.
	var sig []byte
	for _, t := range cs.ArrivalTimes() {
		lo, hi := t-kappa, t
		sig = sig[:0]
		ok := true
		for li, leaf := range leaves {
			n := len(sig)
			for ci, c := range cs.ByLeaf[leaf] {
				if c.AT >= lo-1e-9 && c.AT <= hi+1e-9 {
					sig = append(sig,
						byte(li), byte(li>>8), byte(li>>16), byte(li>>24),
						byte(ci), byte(ci>>8), byte(ci>>16), byte(ci>>24))
				}
			}
			if len(sig) == n {
				ok = false
				break
			}
		}
		if !ok || seen[string(sig)] {
			continue
		}
		seen[string(sig)] = true
		feas := make([][]int, len(leaves))
		for p := 0; p+8 <= len(sig); p += 8 {
			li := int(sig[p]) | int(sig[p+1])<<8 | int(sig[p+2])<<16 | int(sig[p+3])<<24
			ci := int(sig[p+4]) | int(sig[p+5])<<8 | int(sig[p+6])<<16 | int(sig[p+7])<<24
			feas[li] = append(feas[li], ci)
		}
		out = append(out, Interval{Lo: lo, Hi: hi, Feasible: feas})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("polarity: no feasible interval for κ=%g (arrival spread too large)", kappa)
	}
	return out, nil
}
