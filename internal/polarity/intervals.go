package polarity

import (
	"fmt"
	"strings"
)

// Interval is a feasible arrival-time window [Lo, Hi] with Hi−Lo = κ
// (paper §IV-A, Step 2): any assignment whose every leaf arrival lands
// inside meets the skew bound.
type Interval struct {
	Lo, Hi float64
	// Feasible[leaf index in CandidateSet.Leaves() order] lists the
	// indices (into ByLeaf[leaf]) of candidates inside the window.
	Feasible [][]int
}

// DegreeOfFreedom counts the total feasible (leaf, cell) options — the
// paper's §VI pruning metric; more freedom correlates with lower noise
// (Fig. 14).
func (iv *Interval) DegreeOfFreedom() int {
	n := 0
	for _, f := range iv.Feasible {
		n += len(f)
	}
	return n
}

// FeasibleIntervals enumerates the candidate windows [t−κ, t] anchored at
// every distinct achievable arrival time t and keeps the feasible ones:
// windows where every leaf retains at least one candidate. Intervals with
// identical feasibility sets are deduplicated (they define the same
// optimization instance).
func FeasibleIntervals(cs *CandidateSet, kappa float64) ([]Interval, error) {
	if kappa < 0 {
		return nil, fmt.Errorf("polarity: negative skew bound %g", kappa)
	}
	leaves := cs.Leaves()
	if len(leaves) == 0 {
		return nil, fmt.Errorf("polarity: no leaves")
	}
	var out []Interval
	seen := make(map[string]bool)
	for _, t := range cs.ArrivalTimes() {
		lo, hi := t-kappa, t
		feas := make([][]int, len(leaves))
		ok := true
		var sig strings.Builder
		for li, leaf := range leaves {
			for ci, c := range cs.ByLeaf[leaf] {
				if c.AT >= lo-1e-9 && c.AT <= hi+1e-9 {
					feas[li] = append(feas[li], ci)
					fmt.Fprintf(&sig, "%d.%d,", li, ci)
				}
			}
			if len(feas[li]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		key := sig.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Interval{Lo: lo, Hi: hi, Feasible: feas})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("polarity: no feasible interval for κ=%g (arrival spread too large)", kappa)
	}
	return out, nil
}
