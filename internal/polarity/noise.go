package polarity

import (
	"fmt"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/mosp"
	"wavemin/internal/waveform"
)

// ZoneInstance is the MOSP-ready optimization instance for one
// (zone, interval) pair: sampled baselines, per-candidate noise vectors,
// and the layered graph of Algorithm 1.
type ZoneInstance struct {
	Zone     Zone
	Interval *Interval
	// Samples holds the time sampling points per (rail, edge) group; the
	// concatenation over groups is the paper's S (r = |S| = graph dim).
	Samples [NumGroups]waveform.SampleSet
	// Baseline per group: the zone's non-leaf current waveform
	// (Observation 1).
	Baseline [NumGroups]waveform.Waveform
	// Graph is the layered MOSP instance; layer i corresponds to
	// Zone.Leaves[i] and vertex tags index into the candidate slice of
	// that leaf.
	Graph *mosp.Graph
}

// BuildZoneInstance assembles the instance. leafIndex maps a leaf ID to
// its position in cs.Leaves() order (the interval's Feasible index).
// sampleCount is the paper's |S|, split evenly across the four groups
// (minimum one sample per group).
func BuildZoneInstance(
	t *clocktree.Tree, tm *clocktree.Timing, cs *CandidateSet,
	zone Zone, iv *Interval, leafIndex map[clocktree.NodeID]int,
	sampleCount int,
) (*ZoneInstance, error) {
	if len(zone.Leaves) == 0 {
		return nil, fmt.Errorf("polarity: zone %v has no leaves", zone.Key)
	}
	perGroup := sampleCount / int(NumGroups)
	if perGroup < 1 {
		perGroup = 1
	}
	zi := &ZoneInstance{Zone: zone, Interval: iv}

	// Non-leaf baseline waveforms per group.
	for _, id := range zone.NonLeaves {
		iddR, issR := t.NodeCurrents(tm, id, cell.Rising)
		iddF, issF := t.NodeCurrents(tm, id, cell.Falling)
		zi.Baseline[VDDRise] = waveform.Add(zi.Baseline[VDDRise], iddR)
		zi.Baseline[GndRise] = waveform.Add(zi.Baseline[GndRise], issR)
		zi.Baseline[VDDFall] = waveform.Add(zi.Baseline[VDDFall], iddF)
		zi.Baseline[GndFall] = waveform.Add(zi.Baseline[GndFall], issF)
	}

	// Feasible candidates per zone leaf.
	feasible := make([][]*Candidate, len(zone.Leaves))
	for li, leaf := range zone.Leaves {
		gi, ok := leafIndex[leaf]
		if !ok {
			return nil, fmt.Errorf("polarity: leaf %d missing from candidate set", leaf)
		}
		cands := cs.ByLeaf[leaf]
		for _, ci := range iv.Feasible[gi] {
			feasible[li] = append(feasible[li], &cands[ci])
		}
		if len(feasible[li]) == 0 {
			return nil, fmt.Errorf("polarity: leaf %d infeasible in interval [%g,%g]", leaf, iv.Lo, iv.Hi)
		}
	}

	// Sampling points: hot spots of (baseline + every feasible candidate)
	// per group — the paper's Fig. 7 capture restricted to where current
	// actually flows in this zone.
	for g := Group(0); g < NumGroups; g++ {
		ws := []waveform.Waveform{zi.Baseline[g]}
		for _, cands := range feasible {
			for _, c := range cands {
				ws = append(ws, c.Wave(g))
			}
		}
		zi.Samples[g] = waveform.HotSpots(perGroup, ws...)
	}

	// Assemble the layered graph.
	g := &mosp.Graph{Baseline: zi.vector(func(gr Group) waveform.Waveform { return zi.Baseline[gr] })}
	for li := range zone.Leaves {
		layer := make([]mosp.Vertex, 0, len(feasible[li]))
		for _, cand := range feasible[li] {
			c := cand
			layer = append(layer, mosp.Vertex{
				Weight: zi.vector(c.Wave),
				Tag:    candIndex(cs.ByLeaf[zone.Leaves[li]], c),
			})
		}
		g.Layers = append(g.Layers, layer)
	}
	zi.Graph = g
	return zi, nil
}

// vector samples a per-group waveform selector over all groups and
// concatenates — the noise vector of the MOSP formulation.
func (zi *ZoneInstance) vector(sel func(Group) waveform.Waveform) []float64 {
	var out []float64
	for g := Group(0); g < NumGroups; g++ {
		out = append(out, zi.Samples[g].Vector(sel(g))...)
	}
	return out
}

// Dim returns the instance's r = |S| (post group-splitting).
func (zi *ZoneInstance) Dim() int {
	n := 0
	for g := Group(0); g < NumGroups; g++ {
		n += zi.Samples[g].Size()
	}
	return n
}

func candIndex(cands []Candidate, c *Candidate) int {
	for i := range cands {
		if &cands[i] == c {
			return i
		}
	}
	return -1
}

// EstimateZonePeak evaluates an assignment on the instance: the max over
// the sample set of baseline + chosen candidates — the optimizer-side
// estimate of the zone's peak.
func (zi *ZoneInstance) EstimateZonePeak(cs *CandidateSet, a Assignment) (float64, error) {
	run := append([]float64(nil), zi.Graph.Baseline...)
	for _, leaf := range zi.Zone.Leaves {
		chosen := a[leaf]
		if chosen == nil {
			return 0, fmt.Errorf("polarity: leaf %d unassigned", leaf)
		}
		cands := cs.ByLeaf[leaf]
		found := false
		for i := range cands {
			if cands[i].Cell == chosen {
				v := zi.vector(cands[i].Wave)
				for s := range run {
					run[s] += v[s]
				}
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("polarity: leaf %d cell %s not characterized", leaf, chosen.Name)
		}
	}
	peak := 0.0
	for _, v := range run {
		if v > peak {
			peak = v
		}
	}
	return peak, nil
}
