package polarity

import (
	"sort"

	"wavemin/internal/clocktree"
)

// Zone is one tile of the design: power noise is a local effect, so the
// optimizer minimizes the peak in every tile separately (paper §V-A; the
// empirically chosen tile is 50×50 µm).
type Zone struct {
	Key       [2]int
	Leaves    []clocktree.NodeID // leaves placed in the tile, ID order
	NonLeaves []clocktree.NodeID // internal buffering elements in the tile
}

// DefaultZoneSize is the paper's empirical grid pitch, µm.
const DefaultZoneSize = 50.0

// PartitionZones buckets the tree's nodes into size×size tiles. Every
// leaf belongs to exactly one zone; internal nodes are attached to the
// zone containing their placement (their switching noise forms the zone's
// baseline, Observation 1). Zones are returned in deterministic key order.
func PartitionZones(t *clocktree.Tree, size float64) []Zone {
	if size <= 0 {
		size = DefaultZoneSize
	}
	byKey := make(map[[2]int]*Zone)
	get := func(x, y float64) *Zone {
		key := [2]int{int(x / size), int(y / size)}
		z, ok := byKey[key]
		if !ok {
			z = &Zone{Key: key}
			byKey[key] = z
		}
		return z
	}
	t.Walk(func(n *clocktree.Node) {
		z := get(n.X, n.Y)
		if n.IsLeaf() {
			z.Leaves = append(z.Leaves, n.ID)
		} else {
			z.NonLeaves = append(z.NonLeaves, n.ID)
		}
	})
	out := make([]Zone, 0, len(byKey))
	for _, z := range byKey {
		sort.Slice(z.Leaves, func(i, j int) bool { return z.Leaves[i] < z.Leaves[j] })
		sort.Slice(z.NonLeaves, func(i, j int) bool { return z.NonLeaves[i] < z.NonLeaves[j] })
		out = append(out, *z)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key[0] != out[j].Key[0] {
			return out[i].Key[0] < out[j].Key[0]
		}
		return out[i].Key[1] < out[j].Key[1]
	})
	return out
}

// LeafZones filters to zones that contain at least one leaf (zones with
// only internal nodes need no assignment).
func LeafZones(zones []Zone) []Zone {
	out := zones[:0:0]
	for _, z := range zones {
		if len(z.Leaves) > 0 {
			out = append(out, z)
		}
	}
	return out
}
