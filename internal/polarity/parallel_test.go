package polarity

import (
	"context"
	"runtime"
	"testing"
)

// TestParallelDeterminismOptimize requires bitwise-identical results from
// Optimize under every worker count: the fan-out writes into pre-indexed
// slots and merges in fixed order, so scheduling must not leak into the
// outcome.
func TestParallelDeterminismOptimize(t *testing.T) {
	tree, lib := clusterTree(t, 8)
	for _, algo := range []Algorithm{ClkWaveMin, ClkWaveMinF, ClkPeakMinBaseline} {
		cfg := sizingConfig(lib, algo)
		cfg.Workers = 1
		want, err := Optimize(context.Background(), tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
			cfg.Workers = w
			got, err := Optimize(context.Background(), tree, cfg)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", algo, w, err)
			}
			if got.PeakEstimate != want.PeakEstimate {
				t.Fatalf("%v workers=%d: peak %g != %g", algo, w, got.PeakEstimate, want.PeakEstimate)
			}
			if got.SkewEstimate != want.SkewEstimate {
				t.Fatalf("%v workers=%d: skew %g != %g", algo, w, got.SkewEstimate, want.SkewEstimate)
			}
			if got.Interval.Lo != want.Interval.Lo || got.Interval.Hi != want.Interval.Hi ||
				len(got.Assignment) != len(want.Assignment) {
				t.Fatalf("%v workers=%d: interval/assignment size differs", algo, w)
			}
			for leaf, c := range want.Assignment {
				if got.Assignment[leaf] != c {
					t.Fatalf("%v workers=%d: leaf %d assigned %v, want %v",
						algo, w, leaf, got.Assignment[leaf], c)
				}
			}
			if len(got.ZonePeaks) != len(want.ZonePeaks) {
				t.Fatalf("%v workers=%d: zone count differs", algo, w)
			}
			for i := range want.ZonePeaks {
				if got.ZonePeaks[i].Peak != want.ZonePeaks[i].Peak {
					t.Fatalf("%v workers=%d: zone %d peak %g != %g",
						algo, w, i, got.ZonePeaks[i].Peak, want.ZonePeaks[i].Peak)
				}
			}
		}
	}
}
