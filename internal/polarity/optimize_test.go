package polarity

import (
	"context"
	"math"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
)

// clusterTree builds a balanced tree with n co-located leaves (one zone),
// all initially BUF_X16 — a worst-case coincident-spike configuration.
func clusterTree(t testing.TB, n int) (*clocktree.Tree, *cell.Library) {
	lib := cell.DefaultLibrary()
	sinks := make([]cts.Sink, n)
	for i := range sinks {
		sinks[i] = cts.Sink{X: 20 + float64(i%4), Y: 20 + float64(i/4), Cap: 8}
	}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	big := lib.MustByName("BUF_X16")
	for _, leaf := range tree.Leaves() {
		tree.SetCell(leaf, big)
	}
	return tree, lib
}

func sizingConfig(lib *cell.Library, algo Algorithm) Config {
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		panic(err)
	}
	return Config{Library: sub, Kappa: 20, Samples: 32, Epsilon: 0.01, Algorithm: algo}
}

func TestOptimizeReducesGoldenPeak(t *testing.T) {
	tree, lib := clusterTree(t, 8)
	tmBefore := tree.ComputeTiming(clocktree.NominalMode)
	before := tree.PeakCurrent(tmBefore)

	res, err := Optimize(context.Background(), tree, sizingConfig(lib, ClkWaveMin))
	if err != nil {
		t.Fatal(err)
	}
	work := tree.Clone()
	Apply(work, res.Assignment)
	tmAfter := work.ComputeTiming(clocktree.NominalMode)
	after := work.PeakCurrent(tmAfter)
	if after >= before {
		t.Fatalf("golden peak did not improve: %g → %g", before, after)
	}
	// For 8 coincident identical sinks a near-half split should cut the
	// leaf contribution dramatically; demand at least 20 % total.
	if after > 0.8*before {
		t.Fatalf("improvement too small: %g → %g", before, after)
	}
}

func TestOptimizeRespectsSkewAfterApply(t *testing.T) {
	tree, lib := clusterTree(t, 8)
	cfg := sizingConfig(lib, ClkWaveMin)
	res, err := Optimize(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	Apply(tree, res.Assignment)
	tm := tree.ComputeTiming(clocktree.NominalMode)
	// Candidate-model skew is exact up to parent-load second-order effects
	// (Observation 4); allow 2 ps of slack.
	if s := tm.Skew(tree); s > cfg.Kappa+2 {
		t.Fatalf("realized skew %g vs κ=%g", s, cfg.Kappa)
	}
}

func TestWaveMinBeatsOrMatchesFastEstimate(t *testing.T) {
	tree, lib := clusterTree(t, 8)
	exact, err := Optimize(context.Background(), tree, sizingConfig(lib, ClkWaveMin))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Optimize(context.Background(), tree, sizingConfig(lib, ClkWaveMinF))
	if err != nil {
		t.Fatal(err)
	}
	if exact.PeakEstimate > fast.PeakEstimate*(1.01)+1e-9 {
		t.Fatalf("ClkWaveMin estimate %g worse than ClkWaveMin-f %g",
			exact.PeakEstimate, fast.PeakEstimate)
	}
}

func TestPeakMinBaselineProducesValidAssignment(t *testing.T) {
	tree, lib := clusterTree(t, 8)
	cfg := sizingConfig(lib, ClkPeakMinBaseline)
	res, err := Optimize(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(tree); err != nil {
		t.Fatal(err)
	}
	Apply(tree, res.Assignment)
	tm := tree.ComputeTiming(clocktree.NominalMode)
	if s := tm.Skew(tree); s > cfg.Kappa+2 {
		t.Fatalf("PeakMin skew %g vs κ=%g", s, cfg.Kappa)
	}
	// The baseline must also mix polarities here (its objective forces a
	// split too).
	counts := CountKinds(res.Assignment)
	if counts[cell.Inv] == 0 {
		t.Fatalf("PeakMin produced no inverters: %v", counts)
	}
}

func TestWaveMinGoldenNotWorseThanPeakMin(t *testing.T) {
	// The headline claim, on a single-zone instance where the optimizer's
	// model is close to the golden evaluator.
	tree, lib := clusterTree(t, 10)
	wm, err := Optimize(context.Background(), tree, sizingConfig(lib, ClkWaveMin))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Optimize(context.Background(), tree, sizingConfig(lib, ClkPeakMinBaseline))
	if err != nil {
		t.Fatal(err)
	}
	evalGolden := func(a Assignment) float64 {
		work := tree.Clone()
		Apply(work, a)
		tm := work.ComputeTiming(clocktree.NominalMode)
		return work.PeakCurrent(tm)
	}
	gw, gp := evalGolden(wm.Assignment), evalGolden(pm.Assignment)
	if gw > gp*1.10 {
		t.Fatalf("WaveMin golden peak %g far worse than PeakMin %g", gw, gp)
	}
}

func TestMoreSamplesNoWorseEstimate(t *testing.T) {
	// Table VI's trend: more sampling points → better (or equal) peak.
	// Estimates across |S| aren't directly comparable, so compare on the
	// golden evaluator.
	tree, lib := clusterTree(t, 8)
	golden := func(samples int) float64 {
		cfg := sizingConfig(lib, ClkWaveMin)
		cfg.Samples = samples
		res, err := Optimize(context.Background(), tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		work := tree.Clone()
		Apply(work, res.Assignment)
		tm := work.ComputeTiming(clocktree.NominalMode)
		return work.PeakCurrent(tm)
	}
	coarse := golden(4)
	fine := golden(64)
	if fine > coarse*1.10 {
		t.Fatalf("more samples should not hurt much: |S|=4 → %g, |S|=64 → %g", coarse, fine)
	}
}

func TestOptimizeConfigValidation(t *testing.T) {
	tree, lib := clusterTree(t, 4)
	if _, err := Optimize(context.Background(), tree, Config{Library: nil, Kappa: 10}); err == nil {
		t.Error("nil library should error")
	}
	if _, err := Optimize(context.Background(), tree, Config{Library: lib, Kappa: 0}); err == nil {
		t.Error("zero kappa should error")
	}
}

func TestOptimizeMaxIntervals(t *testing.T) {
	tree, lib := clusterTree(t, 6)
	cfg := sizingConfig(lib, ClkWaveMinF)
	cfg.MaxIntervals = 1
	res, err := Optimize(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntervalsTried != 1 {
		t.Fatalf("tried %d intervals, want 1", res.IntervalsTried)
	}
}

func TestEstimatePeakTracksGoldenDirection(t *testing.T) {
	tree, lib := clusterTree(t, 8)
	cfg := sizingConfig(lib, ClkWaveMin)
	res, err := Optimize(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer's estimate of its own assignment should be below the
	// estimate of the all-BUF_X16 initial assignment.
	init := InitialAssignment(tree)
	eInit, err := EstimatePeak(tree, cfg, init)
	if err != nil {
		t.Fatal(err)
	}
	eOpt, err := EstimatePeak(tree, cfg, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if eOpt >= eInit {
		t.Fatalf("estimate did not improve: %g → %g", eInit, eOpt)
	}
}

func TestZonePartition(t *testing.T) {
	lib := cell.DefaultLibrary()
	sinks := []cts.Sink{
		{X: 10, Y: 10, Cap: 8}, {X: 12, Y: 14, Cap: 8}, // zone (0,0)
		{X: 80, Y: 10, Cap: 8}, // zone (1,0)
		{X: 10, Y: 80, Cap: 8}, // zone (0,1)
	}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	zones := PartitionZones(tree, 50)
	leafZones := LeafZones(zones)
	totalLeaves := 0
	for _, z := range leafZones {
		totalLeaves += len(z.Leaves)
	}
	if totalLeaves != 4 {
		t.Fatalf("zones cover %d leaves, want 4", totalLeaves)
	}
	if len(leafZones) < 3 {
		t.Fatalf("expected ≥3 leaf zones, got %d", len(leafZones))
	}
	// Default size fallback.
	if got := PartitionZones(tree, 0); len(got) == 0 {
		t.Fatal("default zone size failed")
	}
}

func TestIntervalDegreeOfFreedom(t *testing.T) {
	iv := Interval{Feasible: [][]int{{0, 1, 2}, {1}, {0, 3}}}
	if dof := iv.DegreeOfFreedom(); dof != 6 {
		t.Fatalf("DoF = %d, want 6", dof)
	}
}

func TestAssignmentHelpers(t *testing.T) {
	tree, lib := clusterTree(t, 4)
	a := InitialAssignment(tree)
	if err := a.Validate(tree); err != nil {
		t.Fatal(err)
	}
	counts := CountKinds(a)
	if counts[cell.Buf] != 4 {
		t.Fatalf("counts = %v", counts)
	}
	delete(a, tree.Leaves()[0])
	if err := a.Validate(tree); err == nil {
		t.Fatal("partial assignment should fail validation")
	}
	_ = lib
}

func TestCandidateWaveGroups(t *testing.T) {
	tree, lib := clusterTree(t, 4)
	cs := BuildCandidates(tree, lib, clocktree.NominalMode)
	leaf := tree.Leaves()[0]
	for _, c := range cs.ByLeaf[leaf] {
		// A non-inverting candidate's VDD-rise peak must exceed its
		// VDD-fall peak; inverting mirrored.
		pr, _ := c.Wave(VDDRise).Peak()
		pf, _ := c.Wave(VDDFall).Peak()
		if c.Cell.Inverting() && pr >= pf {
			t.Errorf("%s: inverting candidate P+ %g ≥ P- %g", c.Cell.Name, pr, pf)
		}
		if !c.Cell.Inverting() && pf >= pr {
			t.Errorf("%s: buffer candidate P- %g ≥ P+ %g", c.Cell.Name, pf, pr)
		}
	}
}

func TestCandidateArrivalModel(t *testing.T) {
	// Each candidate's AT must equal the initial input arrival plus the
	// exact self-load shift (its input cap re-loading wire and parent)
	// plus its own cell delay.
	tree, lib := clusterTree(t, 4)
	mode := clocktree.NominalMode
	tm := tree.ComputeTiming(mode)
	cs := BuildCandidates(tree, lib, mode)
	for _, leaf := range tree.Leaves() {
		for _, c := range cs.ByLeaf[leaf] {
			want := tm.ATIn[leaf] + SelfLoadShift(tree, tm, mode, leaf, c.Cell) +
				c.Cell.Delay(tm.Load[leaf], mode.VDDOf(tree.Node(leaf).Domain))
			if math.Abs(c.AT-want) > 1e-9 {
				t.Fatalf("leaf %d cell %s: AT %g, want %g", leaf, c.Cell.Name, c.AT, want)
			}
		}
	}
	// The currently-assigned cell's candidate must reproduce the timing
	// engine's arrival exactly (zero self-shift).
	for _, leaf := range tree.Leaves() {
		cur := tree.Node(leaf).Cell
		for _, c := range cs.ByLeaf[leaf] {
			if c.Cell == cur && math.Abs(c.AT-tm.ATOut[leaf]) > 1e-9 {
				t.Fatalf("leaf %d: current-cell candidate AT %g != timing %g", leaf, c.AT, tm.ATOut[leaf])
			}
		}
	}
}
