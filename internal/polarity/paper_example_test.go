package polarity

import (
	"context"
	"math"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

// fig5Tree reconstructs the paper's Fig. 5 example: four leaf nodes,
// initially all BUF_X2 from the Table II library, with arrival times 69,
// 70, 71, 70. Using the table-pinned PaperLibrary (BUF_X2 delay = 19 at
// 1.1 V), the leaves need input arrivals of 50, 51, 52, 51, arranged here
// with pure-R wire delays under a BUF_X2 root (delay 19, wire delay
// R·Cin with Cin(BUF_X2) = 0.5 fF).
func fig5Tree(t testing.TB) (*clocktree.Tree, *cell.Library) {
	lib := cell.PaperLibrary()
	buf2 := lib.MustByName("BUF_X2")
	tr := clocktree.New(buf2, 25, 25)
	// Input arrivals: root ATOut = 19, so wire delays 31, 32, 33, 32.
	// Wire delay = R·(C/2 + 0.5) with C = 0 → R = 2·delay.
	for i, wd := range []float64{31, 32, 33, 32} {
		leaf := tr.AddChild(tr.Root(), buf2, float64(10+10*i), 10, wd/0.5, 0)
		tr.SetSinkCap(leaf, 0) // Table II delays are load-independent
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr, lib
}

func TestPaperFig5ArrivalTimes(t *testing.T) {
	tr, _ := fig5Tree(t)
	tm := tr.ComputeTiming(clocktree.NominalMode)
	want := []float64{69, 70, 71, 70}
	for i, leaf := range tr.Leaves() {
		if got := tm.ATOut[leaf]; math.Abs(got-want[i]) > 1e-9 {
			t.Errorf("leaf %d arrival = %g, want %g", i, got, want[i])
		}
	}
	if s := tm.Skew(tr); math.Abs(s-2) > 1e-9 {
		t.Errorf("initial skew = %g, want 2", s)
	}
}

func TestPaperFig6CandidateArrivals(t *testing.T) {
	// Step 1 of PeakMin review: e2's collected arrival times must be
	// {68, 70, 72, 75} (paper §IV-A).
	tr, lib := fig5Tree(t)
	cs := BuildCandidates(tr, lib, clocktree.NominalMode)
	e2 := tr.Leaves()[1]
	got := map[string]float64{}
	for _, c := range cs.ByLeaf[e2] {
		got[c.Cell.Name] = c.AT
	}
	want := map[string]float64{"BUF_X1": 75, "BUF_X2": 70, "INV_X1": 72, "INV_X2": 68}
	for name, at := range want {
		if math.Abs(got[name]-at) > 1e-9 {
			t.Errorf("e2 with %s: AT = %g, want %g", name, got[name], at)
		}
	}
}

func TestPaperFig6FeasibleInterval(t *testing.T) {
	// With κ = 5, the window [69, 74] anchored at t = 74 is feasible:
	// every sink keeps at least one type inside (the yellow area of
	// Fig. 6).
	tr, lib := fig5Tree(t)
	cs := BuildCandidates(tr, lib, clocktree.NominalMode)
	intervals, err := FeasibleIntervals(cs, 5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, iv := range intervals {
		if math.Abs(iv.Lo-69) < 1e-9 && math.Abs(iv.Hi-74) < 1e-9 {
			found = true
			for li, f := range iv.Feasible {
				if len(f) == 0 {
					t.Errorf("interval [69,74]: leaf %d has no feasible type", li)
				}
			}
		}
	}
	if !found {
		got := make([][2]float64, len(intervals))
		for i, iv := range intervals {
			got[i] = [2]float64{iv.Lo, iv.Hi}
		}
		t.Fatalf("interval [69,74] not found among feasible %v", got)
	}
}

func TestPaperFig6InfeasibleWhenKappaTiny(t *testing.T) {
	// κ = 0.5: no window can hold all four sinks (arrivals differ by ≥1).
	tr, lib := fig5Tree(t)
	cs := BuildCandidates(tr, lib, clocktree.NominalMode)
	if _, err := FeasibleIntervals(cs, 0.5); err == nil {
		t.Fatal("expected infeasibility for tiny κ")
	}
}

func TestPaperExampleOptimizeMixesPolarity(t *testing.T) {
	// With Table II peaks (buffers spike on P+, inverters on P−, same
	// magnitudes), the min–max optimum for four co-located equal sinks is
	// a 2/2 split between polarities.
	tr, lib := fig5Tree(t)
	res, err := Optimize(context.Background(), tr, Config{
		Library: lib, Kappa: 5, Samples: 8, Epsilon: 0.01,
		Algorithm: ClkWaveMin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(tr); err != nil {
		t.Fatal(err)
	}
	counts := CountKinds(res.Assignment)
	if counts[cell.Inv] == 0 || counts[cell.Buf] == 0 {
		t.Fatalf("expected mixed polarity, got %v", counts)
	}
	if res.SkewEstimate > 5+1e-9 {
		t.Fatalf("skew estimate %g exceeds κ=5", res.SkewEstimate)
	}
}

func TestPaperExampleSkewHeldAfterApply(t *testing.T) {
	tr, lib := fig5Tree(t)
	res, err := Optimize(context.Background(), tr, Config{
		Library: lib, Kappa: 5, Samples: 8, Epsilon: 0.01, Algorithm: ClkWaveMin,
	})
	if err != nil {
		t.Fatal(err)
	}
	Apply(tr, res.Assignment)
	tm := tr.ComputeTiming(clocktree.NominalMode)
	// Table-pinned delays are load-independent, so the candidate model is
	// exact here: the realized skew must respect κ exactly.
	if s := tm.Skew(tr); s > 5+1e-9 {
		t.Fatalf("realized skew %g exceeds κ=5", s)
	}
}
