package polarity

import (
	"context"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
)

// spreadTree places two clusters of leaves in different zones.
func spreadTree(t testing.TB) (*clocktree.Tree, *cell.Library) {
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 6; i++ {
		sinks = append(sinks, cts.Sink{X: 10 + float64(i*3), Y: 15, Cap: 8})
		sinks = append(sinks, cts.Sink{X: 210 + float64(i*3), Y: 15, Cap: 8})
	}
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := cts.Synthesize(sinks, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tree, lib
}

func TestSamantaBalancesEveryZone(t *testing.T) {
	tree, lib := spreadTree(t)
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	a, err := SamantaBaseline(tree, sub, clocktree.NominalMode, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(tree); err != nil {
		t.Fatal(err)
	}
	// Every leaf zone must be split within one cell of half/half.
	for _, zone := range LeafZones(PartitionZones(tree, 50)) {
		pos, neg := 0, 0
		for _, leaf := range zone.Leaves {
			if a[leaf].Inverting() {
				neg++
			} else {
				pos++
			}
		}
		if diff := pos - neg; diff > 1 || diff < -1 {
			t.Fatalf("zone %v unbalanced: %d buffers vs %d inverters", zone.Key, pos, neg)
		}
	}
}

func TestSamantaBeatsNiehLocally(t *testing.T) {
	// Nieh splits globally: with two separate clusters, one cluster can end
	// up all-buffer and the other all-inverter — locally unbalanced. The
	// per-zone worst peak under Samanta must not exceed Nieh's.
	tree, lib := spreadTree(t)
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	worstZonePeak := func(a Assignment) float64 {
		work := tree.Clone()
		Apply(work, a)
		tm := work.ComputeTiming(clocktree.NominalMode)
		worst := 0.0
		for _, zone := range LeafZones(PartitionZones(work, 50)) {
			for _, e := range []cell.Edge{cell.Rising, cell.Falling} {
				idd, iss := work.SumCurrents(tm, zone.Leaves, e)
				if p, _ := idd.Peak(); p > worst {
					worst = p
				}
				if p, _ := iss.Peak(); p > worst {
					worst = p
				}
			}
		}
		return worst
	}
	nieh, err := NiehBaseline(tree, sub, clocktree.NominalMode)
	if err != nil {
		t.Fatal(err)
	}
	sam, err := SamantaBaseline(tree, sub, clocktree.NominalMode, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ws, wn := worstZonePeak(sam), worstZonePeak(nieh); ws > wn*1.02 {
		t.Fatalf("Samanta local peak %g should not exceed Nieh %g", ws, wn)
	}
}

func TestSamantaRequiresBothKinds(t *testing.T) {
	tree, lib := spreadTree(t)
	bufsOnly, err := lib.Restrict("BUF_X8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SamantaBaseline(tree, bufsOnly, clocktree.NominalMode, 50); err == nil {
		t.Fatal("expected error without inverters")
	}
}

func TestWaveMinBeatsSamantaGolden(t *testing.T) {
	tree, lib := spreadTree(t)
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	sam, err := SamantaBaseline(tree, sub, clocktree.NominalMode, 50)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := Optimize(context.Background(), tree, Config{
		Library: sub, Kappa: 20, Samples: 32, Epsilon: 0.01, Algorithm: ClkWaveMin,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := func(a Assignment) float64 {
		work := tree.Clone()
		Apply(work, a)
		return work.PeakCurrent(work.ComputeTiming(clocktree.NominalMode))
	}
	gs, gw := golden(sam), golden(wm.Assignment)
	if gw > gs*1.05 {
		t.Fatalf("WaveMin %g should not lose to Samanta %g", gw, gs)
	}
}
