package polarity

import (
	"context"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

func TestNiehBaselineSplitsHalfHalf(t *testing.T) {
	tree, lib := clusterTree(t, 8)
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NiehBaseline(tree, sub, clocktree.NominalMode)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(tree); err != nil {
		t.Fatal(err)
	}
	counts := CountKinds(a)
	if counts[cell.Buf] != 4 || counts[cell.Inv] != 4 {
		t.Fatalf("expected 4/4 split, got %v", counts)
	}
}

func TestNiehBaselineSkewCost(t *testing.T) {
	// The known weakness of the opposite-phase scheme (which Samanta et
	// al. and the paper both call out): flipping half the tree without
	// delay awareness costs skew. It must grow versus the balanced tree,
	// but the minimal-delay-change cell picks keep it bounded.
	tree, lib := clusterTree(t, 8)
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	before := tree.ComputeTiming(clocktree.NominalMode).Skew(tree)
	a, err := NiehBaseline(tree, sub, clocktree.NominalMode)
	if err != nil {
		t.Fatal(err)
	}
	Apply(tree, a)
	after := tree.ComputeTiming(clocktree.NominalMode).Skew(tree)
	if after <= before {
		t.Fatalf("expected the delay-unaware flip to cost skew: %g → %g", before, after)
	}
	if after > 30 {
		t.Fatalf("Nieh baseline skew %g implausibly large", after)
	}
}

func TestNiehBaselineRequiresBothKinds(t *testing.T) {
	tree, lib := clusterTree(t, 4)
	bufsOnly, err := lib.Restrict("BUF_X8", "BUF_X16")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NiehBaseline(tree, bufsOnly, clocktree.NominalMode); err == nil {
		t.Fatal("expected error without inverters")
	}
}

func TestWaveMinBeatsNiehOnStaggeredArrivals(t *testing.T) {
	// Nieh's split ignores arrival times; on a design whose halves switch
	// at different instants, WaveMin's fine-grained view wins under the
	// golden evaluator.
	tree, lib := clusterTree(t, 10)
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	nieh, err := NiehBaseline(tree, sub, clocktree.NominalMode)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := Optimize(context.Background(), tree, Config{
		Library: sub, Kappa: 20, Samples: 32, Epsilon: 0.01, Algorithm: ClkWaveMin,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := func(a Assignment) float64 {
		work := tree.Clone()
		Apply(work, a)
		tm := work.ComputeTiming(clocktree.NominalMode)
		return work.PeakCurrent(tm)
	}
	gn, gw := golden(nieh), golden(wm.Assignment)
	if gw > gn*1.05 {
		t.Fatalf("WaveMin %g should not lose to Nieh %g", gw, gn)
	}
}
