package polarity

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
)

// randTree synthesizes a small random design.
func randTree(rng *rand.Rand, lib *cell.Library) (*clocktree.Tree, error) {
	n := 4 + rng.Intn(8)
	sinks := make([]cts.Sink, n)
	for i := range sinks {
		sinks[i] = cts.Sink{
			X:   10 + rng.Float64()*80,
			Y:   10 + rng.Float64()*80,
			Cap: 4 + rng.Float64()*8,
		}
	}
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	return cts.Synthesize(sinks, lib, opt)
}

// Property: every assignment Optimize returns stays inside the chosen
// interval under the candidate model — the skew guarantee.
func TestPropertyOptimizeRespectsInterval(t *testing.T) {
	lib := cell.DefaultLibrary()
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, err := randTree(rng, lib)
		if err != nil {
			return false
		}
		kappa := 10 + rng.Float64()*20
		algo := []Algorithm{ClkWaveMin, ClkWaveMinF, ClkPeakMinBaseline}[rng.Intn(3)]
		res, err := Optimize(context.Background(), tree, Config{
			Library: sub, Kappa: kappa, Samples: 8, Epsilon: 0.1,
			Algorithm: algo, MaxIntervals: 3,
		})
		if err != nil {
			return false
		}
		if res.SkewEstimate > kappa+1e-6 {
			t.Logf("seed %d: skew estimate %g > κ %g", seed, res.SkewEstimate, kappa)
			return false
		}
		// Every chosen cell must come from the library.
		for _, c := range res.Assignment {
			if _, ok := sub.ByName(c.Name); !ok {
				return false
			}
		}
		return res.Assignment.Validate(tree) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: Optimize is deterministic — same tree, same config, same
// assignment.
func TestPropertyOptimizeDeterministic(t *testing.T) {
	lib := cell.DefaultLibrary()
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, err := randTree(rng, lib)
		if err != nil {
			return false
		}
		cfg := Config{Library: sub, Kappa: 20, Samples: 8, Epsilon: 0.05,
			Algorithm: ClkWaveMin, MaxIntervals: 3}
		a, err1 := Optimize(context.Background(), tree, cfg)
		b, err2 := Optimize(context.Background(), tree, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		for leaf, c := range a.Assignment {
			if b.Assignment[leaf] != c {
				return false
			}
		}
		return a.PeakEstimate == b.PeakEstimate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ClkWaveMin estimate never exceeds the ClkWaveMin-f
// estimate (per shared interval set the exact solver dominates; across
// interval selection both pick their own best, preserving the order).
func TestPropertyExactBeatsGreedyEstimate(t *testing.T) {
	lib := cell.DefaultLibrary()
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, err := randTree(rng, lib)
		if err != nil {
			return false
		}
		base := Config{Library: sub, Kappa: 20, Samples: 8, Epsilon: 0,
			MaxIntervals: 2}
		exact := base
		exact.Algorithm = ClkWaveMin
		fast := base
		fast.Algorithm = ClkWaveMinF
		a, err1 := Optimize(context.Background(), tree, exact)
		b, err2 := Optimize(context.Background(), tree, fast)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.PeakEstimate <= b.PeakEstimate*1.001+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: applying the assignment then rebuilding candidates, the
// currently-assigned cell reproduces the realized arrival exactly (the
// self-load shift bookkeeping closes).
func TestPropertySelfLoadShiftCloses(t *testing.T) {
	lib := cell.DefaultLibrary()
	sub, err := lib.Restrict("BUF_X8", "BUF_X16", "INV_X8", "INV_X16")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, err := randTree(rng, lib)
		if err != nil {
			return false
		}
		res, err := Optimize(context.Background(), tree, Config{Library: sub, Kappa: 20, Samples: 8,
			Epsilon: 0.1, Algorithm: ClkWaveMinF, MaxIntervals: 2})
		if err != nil {
			return false
		}
		Apply(tree, res.Assignment)
		tm := tree.ComputeTiming(clocktree.NominalMode)
		cs := BuildCandidates(tree, sub, clocktree.NominalMode)
		for _, leaf := range tree.Leaves() {
			cur := tree.Node(leaf).Cell
			for _, c := range cs.ByLeaf[leaf] {
				if c.Cell == cur {
					if d := c.AT - tm.ATOut[leaf]; d > 1e-9 || d < -1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
