package polarity

import (
	"context"
	"errors"
	"testing"
)

func TestOptimizeCanceled(t *testing.T) {
	tree, lib := clusterTree(t, 8)
	for _, algo := range []Algorithm{ClkWaveMin, ClkWaveMinF, ClkPeakMinBaseline} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Optimize(ctx, tree, sizingConfig(lib, algo)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", algo, err)
		}
	}
}
