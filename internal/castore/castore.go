// Package castore is a persistent content-addressed store: the disk
// tier behind wavemind's result cache. Values are opaque bytes stored
// one file per key (wavemin's sha256 Design.CacheKey) under a sharded
// two-level prefix directory, so a restart — or another coordinator
// sharing the directory tree — sees every result ever completed.
//
// # Integrity
//
// Every entry file is framed [magic][u32le length][u32le CRC32C][bytes]
// and written atomically (tmp file in the same shard directory, fsync,
// rename, dir fsync when Options.Sync). Reads verify the frame: a
// corrupt entry is QUARANTINED — moved to quarantine/ and reported as a
// miss — never served. Content addressing makes this safe: a miss just
// re-solves the problem and rewrites the entry; serving rotted bytes
// would silently corrupt a caller's design.
//
// # Recency
//
// Eviction is LRU by byte budget, and recency survives restarts: an
// append-only index journal (internal/wal, SyncNone — losing a few
// recency updates to a crash costs a slightly wrong eviction order,
// nothing more) records put/touch/evict operations and is compacted
// into a checkpoint snapshot as it grows. Object files, not the index,
// are the source of truth: entries the index has never heard of (a
// crash between rename and index append, or another writer) are
// adopted at open as least-recently-used.
package castore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"wavemin/internal/faultinject"
	"wavemin/internal/obs"
	"wavemin/internal/wal"
)

// Options configures a Store. Zero values take the defaults noted.
type Options struct {
	// MaxBytes bounds the total size of entry files on disk; least-
	// recently-used entries are deleted to respect it. 0 = unbounded.
	MaxBytes int64
	// Sync fsyncs entry files (and their directories) before an entry is
	// considered stored. Off, a crash can lose recent puts — they
	// re-solve on the next request — but a served entry is always whole.
	Sync bool
	// CompactEvery compacts the index journal after this many operations
	// since the last checkpoint (default 4096).
	CompactEvery int
}

func (o Options) withDefaults() Options {
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
	return o
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Entries     int   // resident entries
	Bytes       int64 // resident entry-file bytes
	Hits        int64
	Misses      int64
	Puts        int64
	Evictions   int64 // entries deleted to respect MaxBytes
	Quarantined int64 // corrupt entries moved aside instead of served
	Orphans     int64 // entries adopted at Open that the index had lost
}

var (
	entryMagic = [4]byte{'W', 'M', 'C', '1'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

const entryHeader = 12 // magic + length + crc

// ErrBadKey reports a key that is not a plausible content hash — the
// store refuses it rather than risk path tricks.
var ErrBadKey = errors.New("castore: key is not a lowercase hex content hash")

func validKey(key string) bool {
	if len(key) < 8 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

type entry struct {
	key        string
	size       int64 // framed file size on disk
	prev, next *entry
}

// Store is a persistent content-addressed store. Construct with Open;
// safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	items   map[string]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   int64
	ops     int // index records since the last compaction
	index   *wal.Writer
	quarSeq int64
	closed  bool

	hits, misses, puts, evictions, quarantined, orphans int64
}

// index journal records. Op is "p" (put), "t" (touch), "e" (evict); a
// checkpoint snapshot is a JSON array of indexEntry in LRU order
// (most recent first).
type indexRec struct {
	Op   string `json:"op"`
	Key  string `json:"k"`
	Size int64  `json:"n,omitempty"`
}

type indexEntry struct {
	Key  string `json:"k"`
	Size int64  `json:"n"`
}

// Open opens (creating if needed) the store rooted at dir: it replays
// the index journal, adopts any entry files the index lost, and
// enforces the byte budget.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	for _, sub := range []string{"objects", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("castore: %w", err)
		}
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		items: make(map[string]*entry),
	}
	// Recency is best-effort by design: the index journal is opened with
	// BestEffort so a rotted index can never block the store — object
	// files are the source of truth and the scan below readopts them.
	idx, _, err := wal.Open(filepath.Join(dir, "index"), wal.Options{Sync: wal.SyncNone, BestEffort: true}, s.replayIndex)
	if err != nil {
		return nil, fmt.Errorf("castore: index journal: %w", err)
	}
	s.index = idx
	if err := s.adoptOrphans(); err != nil {
		idx.Close()
		return nil, err
	}
	s.mu.Lock()
	s.evictToBudgetLocked()
	s.compactLocked(true)
	s.mu.Unlock()
	return s, nil
}

// replayIndex rebuilds the LRU list from one index journal record.
// Runs inside wal.Open, before the store is shared: no lock needed.
func (s *Store) replayIndex(kind wal.RecordKind, payload []byte) error {
	if kind == wal.Checkpoint {
		var snap []indexEntry
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil // malformed snapshot: scan will readopt everything
		}
		s.items = make(map[string]*entry, len(snap))
		s.head, s.tail, s.bytes = nil, nil, 0
		// Snapshot is most-recent-first; pushing back preserves order.
		for _, ie := range snap {
			s.pushBack(&entry{key: ie.Key, size: ie.Size})
		}
		return nil
	}
	var rec indexRec
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil // skip rot: recency hints only
	}
	switch rec.Op {
	case "p":
		if e, ok := s.items[rec.Key]; ok {
			s.bytes += rec.Size - e.size
			e.size = rec.Size
			s.moveFront(e)
		} else {
			s.pushFront(&entry{key: rec.Key, size: rec.Size})
		}
	case "t":
		if e, ok := s.items[rec.Key]; ok {
			s.moveFront(e)
		}
	case "e":
		if e, ok := s.items[rec.Key]; ok {
			s.unlink(e)
		}
	}
	return nil
}

// adoptOrphans walks the object tree and adopts files the index lost
// (crash between rename and index append, or a foreign writer), as
// least-recently-used; index entries whose file vanished are dropped.
func (s *Store) adoptOrphans() error {
	onDisk := make(map[string]int64)
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if filepath.Ext(name) != ".obj" {
			// Stray tmp file from a crashed put: never renamed, never
			// acknowledged — delete it.
			_ = os.Remove(path)
			return nil
		}
		key := name[:len(name)-len(".obj")]
		if !validKey(key) {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		onDisk[key] = info.Size()
		return nil
	})
	if err != nil {
		return fmt.Errorf("castore: scanning objects: %w", err)
	}
	for key, size := range onDisk {
		if e, ok := s.items[key]; ok {
			if e.size != size { // index drifted; trust the file
				s.bytes += size - e.size
				e.size = size
			}
			continue
		}
		s.pushBack(&entry{key: key, size: size})
		s.orphans++
	}
	for key, e := range s.items {
		if _, ok := onDisk[key]; !ok {
			s.unlink(e)
		}
	}
	obs.ExpvarCounters().Add("castore_orphans_adopted", s.orphans)
	return nil
}

// --- LRU list (caller holds s.mu once the store is shared) ---------------

func (s *Store) pushFront(e *entry) {
	s.items[e.key] = e
	s.bytes += e.size
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) pushBack(e *entry) {
	s.items[e.key] = e
	s.bytes += e.size
	e.next, e.prev = nil, s.tail
	if s.tail != nil {
		s.tail.next = e
	}
	s.tail = e
	if s.head == nil {
		s.head = e
	}
}

func (s *Store) unlink(e *entry) {
	delete(s.items, e.key)
	s.bytes -= e.size
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e) // unlink subtracts the size; pushFront re-adds it
	s.pushFront(e)
}

// --- paths ----------------------------------------------------------------

func (s *Store) objPath(key string) string {
	return filepath.Join(s.dir, "objects", key[0:2], key[2:4], key+".obj")
}

// --- operations -----------------------------------------------------------

// Get returns the bytes stored under key. A corrupt entry is moved to
// quarantine/ and reported as a miss — the caller re-solves and the
// rewrite heals the store. The returned slice is the caller's to keep.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	e, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	data, err := os.ReadFile(s.objPath(key))
	if err != nil {
		// Index said present, disk disagrees: drop the entry, miss.
		s.dropLocked(e, "e")
		s.misses++
		return nil, false
	}
	payload, verr := verifyEntry(data)
	if verr != nil {
		s.quarantineLocked(e)
		s.misses++
		return nil, false
	}
	s.hits++
	s.moveFront(e)
	s.appendIndexLocked(indexRec{Op: "t", Key: key})
	obs.ExpvarCounters().Add("castore_hits", 1)
	return payload, true
}

// Contains reports whether key is resident, without touching recency,
// counters, or the disk frame.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[key]
	return ok
}

// Put stores val under key atomically: tmp file, (fsync), rename. An
// entry alone larger than the byte budget is not stored.
func (s *Store) Put(key string, val []byte) error {
	if !validKey(key) {
		return ErrBadKey
	}
	framed := frameEntry(val)
	if s.opts.MaxBytes > 0 && int64(len(framed)) > s.opts.MaxBytes {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("castore: closed")
	}
	shard := filepath.Dir(s.objPath(key))
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	if err := writeEntryFile(shard, s.objPath(key), framed, s.opts.Sync); err != nil {
		return err
	}
	s.puts++
	obs.ExpvarCounters().Add("castore_puts", 1)
	if e, ok := s.items[key]; ok {
		s.bytes += int64(len(framed)) - e.size
		e.size = int64(len(framed))
		s.moveFront(e)
	} else {
		s.pushFront(&entry{key: key, size: int64(len(framed))})
	}
	s.appendIndexLocked(indexRec{Op: "p", Key: key, Size: int64(len(framed))})
	s.evictToBudgetLocked()
	s.compactLocked(false)
	return nil
}

// dropLocked removes e from the index (op "e") without touching its file.
func (s *Store) dropLocked(e *entry, op string) {
	s.unlink(e)
	s.appendIndexLocked(indexRec{Op: op, Key: e.key})
}

// quarantineLocked moves a corrupt entry's file aside and drops it from
// the index: rot is preserved for forensics but never served.
func (s *Store) quarantineLocked(e *entry) {
	s.quarSeq++
	dst := filepath.Join(s.dir, "quarantine", fmt.Sprintf("%s.%d.corrupt", e.key, s.quarSeq))
	if err := os.Rename(s.objPath(e.key), dst); err != nil {
		_ = os.Remove(s.objPath(e.key))
	}
	s.quarantined++
	obs.ExpvarCounters().Add("castore_quarantined", 1)
	s.dropLocked(e, "e")
}

func (s *Store) evictToBudgetLocked() {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.bytes > s.opts.MaxBytes && s.tail != nil {
		victim := s.tail
		_ = os.Remove(s.objPath(victim.key))
		s.evictions++
		obs.ExpvarCounters().Add("castore_evictions", 1)
		s.dropLocked(victim, "e")
	}
}

// appendIndexLocked journals one recency operation. Failures are
// swallowed: the index is a hint, the object files are the truth.
func (s *Store) appendIndexLocked(rec indexRec) {
	if s.index == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if _, err := s.index.Append(b); err != nil {
		return
	}
	s.ops++
}

// compactLocked checkpoints the index journal when it has grown past
// the compaction threshold (or force), bounding replay time at Open.
func (s *Store) compactLocked(force bool) {
	if s.index == nil {
		return
	}
	if !force && s.ops < s.opts.CompactEvery {
		return
	}
	snap := make([]indexEntry, 0, len(s.items))
	for e := s.head; e != nil; e = e.next {
		snap = append(snap, indexEntry{Key: e.key, Size: e.size})
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return
	}
	if err := s.index.Checkpoint(b); err != nil {
		return
	}
	s.ops = 0
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Keys returns resident keys from most to least recently used.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.items))
	for e := s.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:     len(s.items),
		Bytes:       s.bytes,
		Hits:        s.hits,
		Misses:      s.misses,
		Puts:        s.puts,
		Evictions:   s.evictions,
		Quarantined: s.quarantined,
		Orphans:     s.orphans,
	}
}

// Close compacts the index journal and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.compactLocked(true)
	if s.index != nil {
		return s.index.Close()
	}
	return nil
}

// Abort closes the store without compacting or flushing the index —
// the crash-simulation path: recency updates the committer had not yet
// written are lost, entry files are untouched.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.index != nil {
		s.index.Abort()
	}
}

// --- entry framing --------------------------------------------------------

func frameEntry(val []byte) []byte {
	buf := make([]byte, entryHeader+len(val))
	copy(buf, entryMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(val)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(val, castagnoli))
	copy(buf[entryHeader:], val)
	return buf
}

func verifyEntry(data []byte) ([]byte, error) {
	if len(data) < entryHeader {
		return nil, fmt.Errorf("castore: entry shorter than its header (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != entryMagic {
		return nil, errors.New("castore: bad entry magic")
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if int(n) != len(data)-entryHeader {
		return nil, fmt.Errorf("castore: entry length %d does not match file size %d", n, len(data)-entryHeader)
	}
	payload := data[entryHeader:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, errors.New("castore: CRC32C mismatch")
	}
	return payload, nil
}

func writeEntryFile(shard, dst string, framed []byte, sync bool) error {
	if err := faultinject.ErrAt(faultinject.SiteCastoreWrite); err != nil {
		return fmt.Errorf("castore: write: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".put-*")
	if err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); _ = os.Remove(tmpName) }
	if _, err := tmp.Write(framed); err != nil {
		cleanup()
		return fmt.Errorf("castore: write: %w", err)
	}
	if sync {
		if err := faultinject.ErrAt(faultinject.SiteCastoreSync); err != nil {
			cleanup()
			return fmt.Errorf("castore: sync: %w", err)
		}
		if err := tmp.Sync(); err != nil {
			cleanup()
			return fmt.Errorf("castore: sync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("castore: close: %w", err)
	}
	if err := faultinject.ErrAt(faultinject.SiteCastoreRename); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("castore: rename: %w", err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("castore: rename: %w", err)
	}
	if sync {
		if d, err := os.Open(shard); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	return nil
}
