package castore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"wavemin/internal/faultinject"
)

func keyOf(val []byte) string {
	sum := sha256.Sum256(val)
	return hex.EncodeToString(sum[:])
}

func mustPut(t *testing.T, s *Store, val []byte) string {
	t.Helper()
	key := keyOf(val)
	if err := s.Put(key, val); err != nil {
		t.Fatalf("Put(%s): %v", key[:8], err)
	}
	return key
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := []byte(`{"result": "bytes", "padding": "xyzzy"}`)
	key := mustPut(t, s, val)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get: ok=%v val=%q", ok, got)
	}
	if _, ok := s.Get(keyOf([]byte("absent"))); ok {
		t.Fatal("hit for a key never stored")
	}
	if err := s.Put("../../../etc/passwd", []byte("nope")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("traversal key accepted: %v", err)
	}
	if err := s.Put("ABCDEF0123456789", []byte("nope")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("uppercase key accepted: %v", err)
	}
}

func TestEntriesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]byte{}
	for i := 0; i < 20; i++ {
		v := []byte(fmt.Sprintf("result-%03d-%s", i, string(make([]byte, i*7))))
		vals[mustPut(t, s, v)] = v
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(vals) {
		t.Fatalf("reopened store has %d entries, want %d", s2.Len(), len(vals))
	}
	if st := s2.Stats(); st.Orphans != 0 {
		t.Fatalf("clean reopen adopted %d orphans", st.Orphans)
	}
	for key, want := range vals {
		got, ok := s2.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("entry %s lost across reopen", key[:8])
		}
	}
}

func TestLRURecencySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := mustPut(t, s, []byte("value-a"))
	b := mustPut(t, s, []byte("value-b"))
	c := mustPut(t, s, []byte("value-c"))
	// Touch a: order becomes a, c, b (most→least recent).
	if _, ok := s.Get(a); !ok {
		t.Fatal("miss on a")
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	keys := s2.Keys()
	want := []string{a, c, b}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("recency order lost across reopen: got %v want %v", short(keys), short(want))
		}
	}
}

func short(keys []string) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k[:8]
	}
	return out
}

func TestByteBudgetEvictionAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 10 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 30; i++ {
		v := make([]byte, 1024)
		for j := range v {
			v[j] = byte(i)
		}
		keys = append(keys, mustPut(t, s, v))
	}
	st := s.Stats()
	if st.Bytes > 10<<10 {
		t.Fatalf("budget violated: %d bytes resident", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under a tight budget")
	}
	// Oldest keys are gone, newest survive.
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := s.Get(keys[len(keys)-1]); !ok {
		t.Fatal("newest entry should be resident")
	}
	s.Close()

	// Reopen with a tighter budget: eviction applies at open.
	s2, err := Open(dir, Options{MaxBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Bytes > 4<<10 {
		t.Fatalf("reopen budget violated: %d bytes", st.Bytes)
	}
	if _, ok := s2.Get(keys[len(keys)-1]); !ok {
		t.Fatal("most recent entry evicted before older ones")
	}
}

// TestCorruptEntryQuarantinedNotServed is the core integrity property:
// however an entry file rots (bit flip, truncation, wrong magic, bad
// length), Get must report a miss and move the file to quarantine — and
// a subsequent Put under the same key (the "re-solve") must heal it.
func TestCorruptEntryQuarantinedNotServed(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bit-flip-payload", func(b []byte) []byte { b[entryHeader+1] ^= 0x20; return b }},
		{"bit-flip-header", func(b []byte) []byte { b[9] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"emptied", func(b []byte) []byte { return nil }},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"appended-garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{Sync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			val := []byte("the one true result, bit for bit")
			key := mustPut(t, s, val)

			path := s.objPath(key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}

			if got, ok := s.Get(key); ok {
				t.Fatalf("served corrupt entry: %q", got)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("quarantined=%d, want 1", st.Quarantined)
			}
			quar, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
			if len(quar) != 1 {
				t.Fatalf("quarantine dir has %d files, want 1", len(quar))
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt file still in the object tree")
			}

			// Re-solve heals: the same key stores and serves cleanly.
			mustPut(t, s, val)
			got, ok := s.Get(key)
			if !ok || !bytes.Equal(got, val) {
				t.Fatalf("store did not heal after re-put: ok=%v", ok)
			}
		})
	}
}

// TestQuarantinePropertyRandomized drives random corruption over a
// populated store: every corrupted entry must read as a miss (never
// wrong bytes), every clean entry must read back exactly, and re-puts
// must heal — regardless of which subset rots.
func TestQuarantinePropertyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 40
	vals := make(map[string][]byte, n)
	var keys []string
	for i := 0; i < n; i++ {
		v := make([]byte, 16+rng.Intn(512))
		rng.Read(v)
		k := keyOf(v)
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		vals[k] = v
		keys = append(keys, k)
	}

	corrupted := make(map[string]bool)
	for _, k := range keys {
		if rng.Intn(3) != 0 {
			continue
		}
		corrupted[k] = true
		path := s.objPath(k)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch rng.Intn(3) {
		case 0:
			raw[rng.Intn(len(raw))] ^= 1 << uint(rng.Intn(8))
		case 1:
			raw = raw[:rng.Intn(len(raw))]
		case 2:
			raw = append(raw, byte(rng.Intn(256)))
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	quarantined := 0
	for _, k := range keys {
		got, ok := s.Get(k)
		if corrupted[k] {
			if ok {
				// A bit flip could, in principle, keep the CRC valid — at
				// 2^-32 odds. With a fixed seed this must not happen.
				t.Fatalf("corrupted entry %s served", k[:8])
			}
			quarantined++
			// Re-solve path: the caller recomputes and re-puts.
			if err := s.Put(k, vals[k]); err != nil {
				t.Fatal(err)
			}
			healed, ok := s.Get(k)
			if !ok || !bytes.Equal(healed, vals[k]) {
				t.Fatalf("entry %s did not heal", k[:8])
			}
		} else if !ok || !bytes.Equal(got, vals[k]) {
			t.Fatalf("clean entry %s misread", k[:8])
		}
	}
	if st := s.Stats(); st.Quarantined != int64(quarantined) {
		t.Fatalf("quarantined counter %d, want %d", st.Quarantined, quarantined)
	}
}

func TestOrphanAdoptionAndStrayTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := mustPut(t, s, []byte("indexed"))
	// Crash-abandon: the index journal never hears about further state.
	s.Abort()

	// Simulate a put that renamed its file but died before the index
	// append: drop a well-formed entry file straight into the tree.
	orphanVal := []byte("orphaned result bytes")
	orphanKey := keyOf(orphanVal)
	shard := filepath.Join(dir, "objects", orphanKey[0:2], orphanKey[2:4])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shard, orphanKey+".obj"), frameEntry(orphanVal), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a stray tmp file from a put that died mid-write.
	stray := filepath.Join(shard, ".put-12345")
	if err := os.WriteFile(stray, []byte("half a"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(orphanKey)
	if !ok || !bytes.Equal(got, orphanVal) {
		t.Fatal("orphan entry not adopted")
	}
	if _, ok := s2.Get(key); !ok {
		t.Fatal("indexed entry lost")
	}
	if st := s2.Stats(); st.Orphans == 0 {
		t.Fatal("orphan counter not bumped")
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray tmp file survived reopen")
	}
}

func TestFaultInjectedPutNeverLeavesTornEntry(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	boom := errors.New("injected rename failure")
	val := []byte("must never half-exist")
	key := keyOf(val)
	for _, site := range []string{
		faultinject.SiteCastoreWrite,
		faultinject.SiteCastoreSync,
		faultinject.SiteCastoreRename,
	} {
		faultinject.SetErr(site, func() error { return boom })
		if err := s.Put(key, val); !errors.Is(err, boom) {
			t.Fatalf("site %s: Put err = %v, want injected", site, err)
		}
		faultinject.Reset()
		if _, ok := s.Get(key); ok {
			t.Fatalf("site %s: entry visible after failed put", site)
		}
	}
	// After the faults clear, the put succeeds and serves.
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, val) {
		t.Fatal("entry unreadable after recovery")
	}
}
