package yield

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"wavemin"
	"wavemin/internal/cell"
	"wavemin/internal/cts"
)

// testTreeJSON synthesizes a small clock tree and returns its canonical
// JSON bytes — the same input POST /v1/optimize would carry.
func testTreeJSON(t testing.TB, n int) []byte {
	t.Helper()
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < n; i++ {
		sinks = append(sinks, cts.Sink{X: float64(10 + i*13), Y: float64(10 + (i%4)*35), Cap: 8})
	}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testParams is a small, fast parameter set: few samples, loose bound.
func testParams() Params {
	p := Params{
		Sigma:      0.08,
		Kappa:      200, // generous: most samples pass, CIs separate fast
		Samples:    256,
		Epsilon:    0.05,
		Confidence: 0.95,
		Candidates: 3,
		Seed:       7,
	}
	return p.WithDefaults()
}

// fixture caches one candidate generation per test binary: solving the
// ladder dominates test time and every test wants the same candidates.
var fixture struct {
	once     sync.Once
	tree     []byte
	cands    []Candidate
	rejected int
	err      error
}

func testCandidates(t testing.TB) ([]byte, []Candidate, int) {
	t.Helper()
	fixture.once.Do(func() {
		fixture.tree = testTreeJSON(t, 12)
		fixture.cands, fixture.rejected, fixture.err = GenerateCandidates(
			context.Background(), fixture.tree, wavemin.Config{Samples: 16, MaxIntervals: 2}, nil, testParams())
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	if len(fixture.cands) == 0 {
		t.Fatal("fixture produced no candidates")
	}
	return fixture.tree, fixture.cands, fixture.rejected
}

func mustRun(t testing.TB, p Params, r Runner) *Report {
	t.Helper()
	_, cands, rejected := testCandidates(t)
	rep, err := Run(context.Background(), cands, p, rejected, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParamsKeyDependsOnSemanticKnobsOnly(t *testing.T) {
	base := "0123abcd"
	p := testParams()
	k1 := p.Key(base)
	if k2 := p.Key(base); k2 != k1 {
		t.Fatal("key not deterministic")
	}
	q := p
	q.Seed++
	if q.Key(base) == k1 {
		t.Fatal("seed change did not change the key")
	}
	q = p
	q.Epsilon = 0
	if q.Key(base) == k1 {
		t.Fatal("epsilon change did not change the key")
	}
	if p.Key("other-base") == k1 {
		t.Fatal("base key change did not change the extended key")
	}
	if len(k1) != 64 {
		t.Fatalf("extended key %q is not a hex sha256", k1)
	}
}

func TestParamsValidateRejectsHostileValues(t *testing.T) {
	mut := func(f func(*Params)) Params { q := testParams(); f(&q); return q }
	bad := []Params{
		mut(func(p *Params) { p.Sigma = -0.1 }),
		mut(func(p *Params) { p.Sigma = 2 }),
		mut(func(p *Params) { p.Correlation = 1.5 }),
		mut(func(p *Params) { p.Kappa = 0 }),
		mut(func(p *Params) { p.Kappa = -3 }),
		mut(func(p *Params) { p.PeakCap = -1 }),
		mut(func(p *Params) { p.Samples = -5 }),
		mut(func(p *Params) { p.Samples = MaxSamples + 1 }),
		mut(func(p *Params) { p.Epsilon = 0.6 }),
		mut(func(p *Params) { p.Confidence = 0.2 }),
		mut(func(p *Params) { p.Candidates = MaxCandidates + 1 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: hostile params validated: %+v", i, p)
		}
	}
	if err := testParams().Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
}

func TestChunkBoundsCoverBudgetExactly(t *testing.T) {
	for _, budget := range []int{1, ChunkSize - 1, ChunkSize, ChunkSize + 1, 1000, 1024} {
		total := 0
		for idx := 0; idx < chunkCount(budget); idx++ {
			start, n := chunkBounds(idx, budget)
			if start != total {
				t.Fatalf("budget %d chunk %d: start %d, want %d", budget, idx, start, total)
			}
			if n < 1 || n > ChunkSize {
				t.Fatalf("budget %d chunk %d: size %d out of range", budget, idx, n)
			}
			total += n
		}
		if total != budget {
			t.Fatalf("budget %d: chunks cover %d samples", budget, total)
		}
	}
}
