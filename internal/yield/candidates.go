package yield

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"wavemin"
	"wavemin/internal/clocktree"
)

// knobVariant is one deterministic configuration alternate. Variants are
// applied to the effective (defaults-resolved) base config, in this fixed
// order, so the candidate list is a pure function of the request.
type knobVariant struct {
	label string
	apply func(*wavemin.Config)
}

// knobVariants is the candidate ladder: the base result first, then the
// alternates most likely to trade nominal optimality for robustness under
// variation — a faster greedy assignment, coarser/finer zoning (different
// polarity granularity), the peak-current-first solver, and wider search
// budgets.
var knobVariants = []knobVariant{
	{"base", func(c *wavemin.Config) {}},
	{"fast", func(c *wavemin.Config) { c.Algorithm = wavemin.WaveMinFast }},
	{"zone+50%", func(c *wavemin.Config) { c.ZoneSize *= 1.5 }},
	{"zone-25%", func(c *wavemin.Config) { c.ZoneSize *= 0.75 }},
	{"peakmin", func(c *wavemin.Config) { c.Algorithm = wavemin.PeakMin }},
	{"intervals*2", func(c *wavemin.Config) { c.MaxIntervals *= 2 }},
	{"eps/2", func(c *wavemin.Config) { c.Epsilon /= 2 }},
	{"samples*2", func(c *wavemin.Config) { c.Samples *= 2 }},
}

// MaxCandidates is the candidate-count ceiling: the knob ladder's length.
const MaxCandidates = 8

// Candidate is one fully solved assignment entering the Monte Carlo race.
type Candidate struct {
	// Label names the knob variant(s) that produced this tree; duplicates
	// are merged with "+" in variant order.
	Label string `json:"label"`
	// TreeJSON is the optimized tree in canonical wavemin-clocktree-v1
	// form — what every chunk spec carries.
	TreeJSON json.RawMessage `json:"-"`
	// ResultJSON is the candidate solve's canonical result bytes (Stats
	// and Runtime zeroed, exactly the dispatch contract).
	ResultJSON    json.RawMessage `json:"-"`
	AlgorithmUsed string          `json:"algorithmUsed"`
	// NominalSkew / NominalPeak are the unperturbed metrics of the
	// optimized tree; candidates whose nominal skew violates κ never
	// enter the race.
	NominalSkew float64 `json:"nominalSkew"`
	NominalPeak float64 `json:"nominalPeak"`
}

// GenerateCandidates solves the base config plus the first
// p.Candidates−1 knob alternates, each on a private design reconstructed
// from the canonical tree bytes, and returns the deduplicated candidate
// list. Variants whose optimized tree violates κ at nominal are dropped
// (counted in rejected); variants converging to an identical tree merge
// into one candidate (their samples would be identical — racing them
// would spend budget to learn nothing).
//
// Candidate solves never degrade: a yield result is cacheable, so its
// bytes must be a pure function of the inputs, and a deadline-shaped
// candidate set would not be. A solve that comes back degraded fails the
// run with context.DeadlineExceeded semantics instead.
func GenerateCandidates(ctx context.Context, treeJSON []byte, baseCfg wavemin.Config, modes []wavemin.Mode, p Params) (cands []Candidate, rejected int, err error) {
	if p.Candidates < 1 || p.Candidates > MaxCandidates {
		return nil, 0, fmt.Errorf("yield: invalid candidate count %d", p.Candidates)
	}
	mode := clocktree.NominalMode
	if len(modes) > 0 {
		mode = modes[0]
	}
	effective := baseCfg.WithDefaults()
	byDigest := make(map[[sha256.Size]byte]int) // tree digest → index in cands
	for i := 0; i < p.Candidates; i++ {
		v := knobVariants[i]
		cfg := effective
		v.apply(&cfg)
		if verr := cfg.Validate(); verr != nil {
			// A knob pushed the config out of range (possible only with
			// extreme base values); skip the variant rather than fail.
			rejected++
			continue
		}
		design, lerr := wavemin.LoadTree(bytes.NewReader(treeJSON))
		if lerr != nil {
			return nil, 0, fmt.Errorf("yield: candidate %q: tree: %w", v.label, lerr)
		}
		if len(modes) > 0 {
			if merr := design.SetModes(modes); merr != nil {
				return nil, 0, fmt.Errorf("yield: candidate %q: modes: %w", v.label, merr)
			}
		}
		res, oerr := design.Optimize(ctx, cfg)
		if oerr != nil {
			return nil, 0, fmt.Errorf("yield: candidate %q: %w", v.label, oerr)
		}
		if res.Degraded {
			return nil, 0, fmt.Errorf("yield: candidate %q degraded under the deadline: %w",
				v.label, context.DeadlineExceeded)
		}
		var buf bytes.Buffer
		if serr := design.SaveTree(&buf); serr != nil {
			return nil, 0, fmt.Errorf("yield: candidate %q: save tree: %w", v.label, serr)
		}
		digest := sha256.Sum256(buf.Bytes())
		if at, ok := byDigest[digest]; ok {
			cands[at].Label += "+" + v.label
			continue
		}
		tm := design.Tree.ComputeTiming(mode)
		nomSkew := tm.Skew(design.Tree)
		nomPeak := design.Tree.PeakCurrent(tm)
		if nomSkew > p.Kappa {
			// The winner must never violate κ at nominal — enforced here,
			// by construction, so the invariant holds whatever the
			// sampling says.
			rejected++
			continue
		}
		// Canonical result bytes: the dispatch contract (wall-clock
		// fields zeroed), so the yield result is replayable bit-for-bit.
		res.Stats = nil
		res.Runtime = 0
		blob, merr := json.Marshal(res)
		if merr != nil {
			return nil, 0, fmt.Errorf("yield: candidate %q: marshal result: %w", v.label, merr)
		}
		byDigest[digest] = len(cands)
		cands = append(cands, Candidate{
			Label:         v.label,
			TreeJSON:      append(json.RawMessage(nil), buf.Bytes()...),
			ResultJSON:    blob,
			AlgorithmUsed: res.AlgorithmUsed,
			NominalSkew:   nomSkew,
			NominalPeak:   nomPeak,
		})
	}
	return cands, rejected, nil
}
