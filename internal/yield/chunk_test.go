package yield

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"wavemin/internal/variation"
)

// TestYieldChunkAllocBudget pins the Monte Carlo hot path at two levels.
//
// The sharp pin: variation.Scratch.Perturb — the per-sample redraw — must
// be allocation-free. This is the fix the scratch-tree rewrite bought:
// the old path cloned the whole tree per sample, O(nodes) allocations
// each; the scratch path redraws parasitics in place.
//
// The coarse pin: a whole chunk (ChunkSize samples of timing + peak
// current analysis) stays under a per-sample allocation budget with
// headroom, so an accidental reintroduction of per-sample tree copies —
// anywhere in the chunk loop, not just Perturb — fails loudly.
func TestYieldChunkAllocBudget(t *testing.T) {
	tree, _, _ := testCandidates(t)
	parsed, err := ParseTree(tree)
	if err != nil {
		t.Fatal(err)
	}

	sc := variation.NewScratch(parsed)
	rng := rand.New(rand.NewSource(1))
	perDraw := testing.AllocsPerRun(200, func() {
		sc.Perturb(0.08, 0.4, rng)
	})
	if perDraw > 0 {
		t.Errorf("Scratch.Perturb allocates %v per draw; the redraw must be in-place (0 allocs)", perDraw)
	}

	spec := &ChunkSpec{
		Tree: tree, Candidate: 0, Index: 0, Start: 0, N: ChunkSize,
		Sigma: 0.08, Kappa: 200, Seed: 7,
	}
	ctx := context.Background()
	perChunk := testing.AllocsPerRun(5, func() {
		if _, err := EvaluateChunk(ctx, parsed, spec); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~714 allocs/sample (timing arrays + current waveforms per
	// sample); the budget leaves ~25% headroom while still catching a
	// clone-per-sample regression on any realistically sized tree.
	const perSampleBudget = 900
	if perSample := perChunk / ChunkSize; perSample > perSampleBudget {
		t.Errorf("chunk evaluation allocates %.0f per sample (budget %d)", perSample, perSampleBudget)
	}
}

// TestEvaluateChunkHonorsPeakCap: the cap must gate OK counting without
// touching the skew statistics.
func TestEvaluateChunkHonorsPeakCap(t *testing.T) {
	tree, _, _ := testCandidates(t)
	parsed, err := ParseTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	base := &ChunkSpec{Tree: tree, Candidate: 0, Index: 0, Start: 0, N: ChunkSize,
		Sigma: 0.08, Kappa: 200, Seed: 7}
	uncapped, err := EvaluateChunk(context.Background(), parsed, base)
	if err != nil {
		t.Fatal(err)
	}
	// A cap below every observed peak zeroes OK; an impossible-to-hit cap
	// reproduces the uncapped count.
	tight := *base
	tight.PeakCap = 1e-9
	st, err := EvaluateChunk(context.Background(), parsed, &tight)
	if err != nil {
		t.Fatal(err)
	}
	if st.OK != 0 {
		t.Fatalf("cap %g left %d samples passing (max peak %g)", tight.PeakCap, st.OK, st.MaxPeak)
	}
	if st.SumSkew != uncapped.SumSkew || st.WorstSkew != uncapped.WorstSkew {
		t.Fatal("peak cap changed skew statistics")
	}
	loose := *base
	loose.PeakCap = math.MaxFloat64 / 2
	st, err = EvaluateChunk(context.Background(), parsed, &loose)
	if err != nil {
		t.Fatal(err)
	}
	if st.OK != uncapped.OK {
		t.Fatalf("unreachable cap changed OK: %d != %d", st.OK, uncapped.OK)
	}
}

// TestChunkSpecValidateRejectsHostileSpecs: the executor is reachable
// through the open lease protocol, so it must bound everything itself.
func TestChunkSpecValidateRejectsHostileSpecs(t *testing.T) {
	tree, _, _ := testCandidates(t)
	good := func() *ChunkSpec {
		return &ChunkSpec{Tree: tree, Candidate: 0, Index: 0, Start: 0, N: ChunkSize,
			Sigma: 0.08, Kappa: 200, Seed: 7}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	cases := []func(*ChunkSpec){
		func(c *ChunkSpec) { c.Tree = nil },
		func(c *ChunkSpec) { c.Candidate = -1 },
		func(c *ChunkSpec) { c.Candidate = MaxCandidates },
		func(c *ChunkSpec) { c.N = 0 },
		func(c *ChunkSpec) { c.N = ChunkSize + 1 },
		func(c *ChunkSpec) { c.Start = -5 },
		func(c *ChunkSpec) { c.Start = MaxSamples + 1 },
		func(c *ChunkSpec) { c.Sigma = math.NaN() },
		func(c *ChunkSpec) { c.Sigma = 3 },
		func(c *ChunkSpec) { c.Kappa = 0 },
		func(c *ChunkSpec) { c.Kappa = math.NaN() },
		func(c *ChunkSpec) { c.PeakCap = -1 },
	}
	for i, mut := range cases {
		c := good()
		mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: hostile chunk spec validated", i)
		}
	}
}

// TestChunkStatsValidate: stats from the wire must answer the spec they
// claim to.
func TestChunkStatsValidate(t *testing.T) {
	spec := &ChunkSpec{Candidate: 1, Index: 2, N: 64}
	good := ChunkStats{Candidate: 1, Index: 2, N: 64, OK: 60, SumSkew: 10, WorstSkew: 1, SumPeak: 5, MaxPeak: 1}
	if err := good.Validate(spec); err != nil {
		t.Fatalf("good stats rejected: %v", err)
	}
	bad := []ChunkStats{
		{Candidate: 0, Index: 2, N: 64, OK: 60},
		{Candidate: 1, Index: 3, N: 64, OK: 60},
		{Candidate: 1, Index: 2, N: 32, OK: 30},
		{Candidate: 1, Index: 2, N: 64, OK: 65},
		{Candidate: 1, Index: 2, N: 64, OK: -1},
		{Candidate: 1, Index: 2, N: 64, OK: 60, SumSkew: math.NaN()},
		{Candidate: 1, Index: 2, N: 64, OK: 60, MaxPeak: math.Inf(1)},
	}
	for i, st := range bad {
		if err := st.Validate(spec); err == nil {
			t.Errorf("case %d: hostile stats validated: %+v", i, st)
		}
	}
}
