package yield

import (
	"context"
	"strings"
	"testing"

	"wavemin"
)

func TestGenerateCandidatesDeterministicAndDeduplicated(t *testing.T) {
	tree, cands, _ := testCandidates(t)
	// Regenerating must reproduce the exact candidate list (labels, tree
	// bytes, result bytes) — candidate generation is inside the
	// determinism boundary.
	again, _, err := GenerateCandidates(context.Background(), tree,
		wavemin.Config{Samples: 16, MaxIntervals: 2}, nil, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(cands) {
		t.Fatalf("regeneration produced %d candidates, was %d", len(again), len(cands))
	}
	seen := make(map[string]bool)
	for i := range cands {
		if cands[i].Label != again[i].Label {
			t.Errorf("candidate %d label %q != %q", i, cands[i].Label, again[i].Label)
		}
		if string(cands[i].TreeJSON) != string(again[i].TreeJSON) {
			t.Errorf("candidate %d tree bytes differ across generations", i)
		}
		if string(cands[i].ResultJSON) != string(again[i].ResultJSON) {
			t.Errorf("candidate %d result bytes differ across generations", i)
		}
		// Dedup: no two candidates may share tree bytes (identical trees
		// would race budget to learn nothing).
		key := string(cands[i].TreeJSON)
		if seen[key] {
			t.Errorf("candidate %d (%s) duplicates another candidate's tree", i, cands[i].Label)
		}
		seen[key] = true
	}
}

func TestGenerateCandidatesFirstIsBase(t *testing.T) {
	_, cands, _ := testCandidates(t)
	if !strings.HasPrefix(cands[0].Label, "base") {
		t.Fatalf("first candidate is %q, want the base config", cands[0].Label)
	}
}

func TestGenerateCandidatesRejectsKappaViolators(t *testing.T) {
	tree := testTreeJSON(t, 12)
	p := testParams()
	p.Kappa = 1e-6 // unmeetable: every candidate violates at nominal
	cands, rejected, err := GenerateCandidates(context.Background(), tree,
		wavemin.Config{Samples: 16, MaxIntervals: 2}, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Fatalf("%d candidates survived an unmeetable kappa", len(cands))
	}
	if rejected == 0 {
		t.Fatal("no rejections recorded")
	}
	// And Run must turn the empty ladder into an error, not a panic.
	if _, err := Run(context.Background(), cands, p, rejected, nil, &LocalRunner{}); err == nil {
		t.Fatal("Run accepted an empty candidate list")
	}
}

func TestGenerateCandidatesBoundsCount(t *testing.T) {
	tree := testTreeJSON(t, 8)
	p := testParams()
	p.Candidates = MaxCandidates + 3
	if _, _, err := GenerateCandidates(context.Background(), tree, wavemin.Config{}, nil, p); err == nil {
		t.Fatal("candidate count above the ladder accepted")
	}
	p.Candidates = 0
	if _, _, err := GenerateCandidates(context.Background(), tree, wavemin.Config{}, nil, p); err == nil {
		t.Fatal("zero candidates accepted")
	}
}
