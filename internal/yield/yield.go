// Package yield implements the statistical yield optimization mode: given
// a design, a skew bound κ, and an optional peak-current cap, it evaluates
// candidate assignments (the WaveMin result plus perturbed-knob
// alternates) under seeded Monte Carlo process variation and returns the
// candidate maximizing estimated yield, with a Wilson confidence interval
// per candidate.
//
// The sampling plan is built for the dispatch fleet: samples are batched
// into fixed-size chunks whose statistics are a pure function of
// (seed, candidate, sample index) — never of which worker ran the chunk,
// in what order, or how many times (a retried chunk reproduces the same
// bytes, and the aggregator folds chunks in index order and drops
// duplicates). The whole run is therefore bitwise deterministic at any
// worker count, chunk placement, or retry schedule, which is what lets
// yield results live in the content-addressed result cache.
//
// Early stopping is round-based: every round issues a deterministic quota
// of chunks per surviving candidate, waits for all of them, and then — on
// the deterministic aggregate — eliminates candidates whose CI upper
// bound falls below the best lower bound, stopping when a unique winner
// is separated or every surviving interval is tighter than ε.
package yield

import (
	"fmt"
	"math"
	"strconv"

	"wavemin/internal/canon"
	"wavemin/internal/rescache"
)

// KeyFormat tags the extended content key of a yield run (see Params.Key).
const KeyFormat = "wavemin-yieldkey-v1"

// ChunkSize is the canonical sample-batch width. It is part of the
// algorithm, not an operator knob: chunk boundaries decide the float
// summation order inside a chunk, so changing it would change result
// bytes. Sixty-four samples keeps a chunk in the tens of milliseconds on
// the synthetic circuits — long enough to amortize lease overhead, short
// enough that a lapsed lease wastes little work.
const ChunkSize = 64

// baseRoundChunks is the per-candidate chunk quota of round 1; the quota
// doubles every round so large budgets need O(log n) round barriers.
const baseRoundChunks = 2

// MaxSamples bounds the per-candidate sample budget a request may ask
// for: a hostile "samples": 1e9 must be a 400, not a fleet-wide DoS.
const MaxSamples = 1 << 20

// Defaults for zero-valued Params fields.
const (
	DefaultSigma      = 0.05
	DefaultSamples    = 1024
	DefaultEpsilon    = 0.02
	DefaultConfidence = 0.95
	DefaultCandidates = 4
	DefaultSeed       = 1
)

// Params are the semantic knobs of one yield run. Every field enters the
// extended content key: two requests with equal base keys and equal
// Params get byte-identical results, and anything execution-shaped
// (worker count, chunk placement, dispatch topology) is deliberately
// absent.
type Params struct {
	// Sigma is the relative process-variation σ (default 0.05).
	Sigma float64
	// Correlation in [0,1] is the die-wide (correlated) share of σ.
	Correlation float64
	// Kappa is the skew bound a sample must meet to count as good, ps.
	// Required: the server defaults it to the optimization config's κ.
	Kappa float64
	// PeakCap, when > 0, additionally requires each sample's peak current
	// to stay at or below it, µA.
	PeakCap float64
	// Samples is the Monte Carlo budget per candidate (default 1024).
	Samples int
	// Epsilon is the early-stop CI half-width target: once every
	// surviving candidate's interval is tighter than ε, further samples
	// cannot change the ranking materially and the run stops. 0 disables
	// the width-based stop (elimination still applies), so ε=0 is the
	// "full budget" reference a seeded early-stop run must agree with.
	Epsilon float64
	// Confidence is the two-sided Wilson interval confidence
	// (default 0.95).
	Confidence float64
	// Candidates is how many assignment candidates to race: the base
	// config's result plus Candidates−1 deterministic knob alternates
	// (default 4, max MaxCandidates).
	Candidates int
	// Seed seeds the sample stream (default 1).
	Seed int64
}

// WithDefaults returns p with zero-valued knobs replaced by the defaults.
// Kappa has no default here — the server injects the optimization κ.
func (p Params) WithDefaults() Params {
	if p.Sigma == 0 {
		p.Sigma = DefaultSigma
	}
	if p.Samples == 0 {
		p.Samples = DefaultSamples
	}
	if p.Epsilon == 0 {
		// Epsilon 0 is meaningful (disable the width stop), so the
		// default is injected by the server's decode layer, not here.
		p.Epsilon = 0
	}
	if p.Confidence == 0 {
		p.Confidence = DefaultConfidence
	}
	if p.Candidates == 0 {
		p.Candidates = DefaultCandidates
	}
	if p.Seed == 0 {
		p.Seed = DefaultSeed
	}
	return p
}

// Validate rejects nonsensical parameters with a descriptive error —
// the request decoder turns each into a structured 400.
func (p Params) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("yield: "+format, args...)
	}
	switch {
	case math.IsNaN(p.Sigma) || math.IsInf(p.Sigma, 0) || p.Sigma < 0 || p.Sigma > 1:
		return bad("invalid sigma %g (want 0 <= sigma <= 1)", p.Sigma)
	case math.IsNaN(p.Correlation) || math.IsInf(p.Correlation, 0) || p.Correlation < 0 || p.Correlation > 1:
		return bad("invalid correlation %g (want 0 <= correlation <= 1)", p.Correlation)
	case math.IsNaN(p.Kappa) || math.IsInf(p.Kappa, 0) || p.Kappa <= 0 || p.Kappa > 1e9:
		return bad("invalid kappa %g ps (want 0 < kappa <= 1e9)", p.Kappa)
	case math.IsNaN(p.PeakCap) || math.IsInf(p.PeakCap, 0) || p.PeakCap < 0 || p.PeakCap > 1e12:
		return bad("invalid peakCap %g µA (want 0 <= peakCap <= 1e12; 0 disables the cap)", p.PeakCap)
	case p.Samples < 1 || p.Samples > MaxSamples:
		return bad("invalid samples %d (want 1 <= samples <= %d)", p.Samples, MaxSamples)
	case math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) || p.Epsilon < 0 || p.Epsilon >= 0.5:
		return bad("invalid epsilon %g (want 0 <= epsilon < 0.5; 0 disables the width stop)", p.Epsilon)
	case math.IsNaN(p.Confidence) || p.Confidence < 0.5 || p.Confidence > 0.9999:
		return bad("invalid confidence %g (want 0.5 <= confidence <= 0.9999)", p.Confidence)
	case p.Candidates < 1 || p.Candidates > MaxCandidates:
		return bad("invalid candidates %d (want 1 <= candidates <= %d)", p.Candidates, MaxCandidates)
	}
	return nil
}

// canonical renders the semantic knobs in the fixed order and float
// formatting the extended content key hashes. Chunking, worker counts,
// and dispatch topology never appear here — that is the cache-key
// contract: they cannot change the bytes, so they must not change the key.
func (p Params) canonical() string {
	b := make([]byte, 0, 128)
	b = append(b, "sigma="...)
	b = canon.AppendFloat(b, p.Sigma)
	b = append(b, ";corr="...)
	b = canon.AppendFloat(b, p.Correlation)
	b = append(b, ";kappa="...)
	b = canon.AppendFloat(b, p.Kappa)
	b = append(b, ";peakcap="...)
	b = canon.AppendFloat(b, p.PeakCap)
	b = append(b, ";samples="...)
	b = canon.AppendInt(b, p.Samples)
	b = append(b, ";eps="...)
	b = canon.AppendFloat(b, p.Epsilon)
	b = append(b, ";conf="...)
	b = canon.AppendFloat(b, p.Confidence)
	b = append(b, ";cand="...)
	b = canon.AppendInt(b, p.Candidates)
	b = append(b, ";seed="...)
	b = strconv.AppendInt(b, p.Seed, 10)
	return string(b)
}

// Key derives the extended content key of a yield run: the base
// optimization key (tree + config + modes) extended with the canonical
// yield knobs under the KeyFormat tag. Same keyspace as the primary keys
// (hex sha256), so every cache tier and the shard router accept it.
func (p Params) Key(baseKey string) string {
	return rescache.ExtendKey(baseKey, KeyFormat, p.canonical())
}

// zScore converts a two-sided confidence level to the normal quantile
// Wilson needs: z = Φ⁻¹((1+c)/2) = √2·erfinv(c).
func zScore(confidence float64) float64 {
	return math.Sqrt2 * math.Erfinv(confidence)
}

// Wilson returns the Wilson score interval for ok successes in n trials
// at normal quantile z, clamped to [0, 1]. For fixed p̂ the width shrinks
// monotonically in n (the invariant suite pins this), and unlike the
// normal approximation it stays honest at p̂ near 0 or 1 — exactly where
// high-yield candidates live.
func Wilson(ok, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(ok) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - half) / denom
	hi = (center + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// chunkCount is how many chunks a per-candidate budget of n samples
// needs; the last chunk may be partial.
func chunkCount(n int) int {
	return (n + ChunkSize - 1) / ChunkSize
}

// chunkBounds returns the sample range [start, start+n) of chunk idx
// under a per-candidate budget.
func chunkBounds(idx, budget int) (start, n int) {
	start = idx * ChunkSize
	n = ChunkSize
	if start+n > budget {
		n = budget - start
	}
	return start, n
}
