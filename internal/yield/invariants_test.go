package yield

import (
	"context"
	"encoding/json"
	"testing"
)

// The invariant suite: properties every yield run must satisfy on every
// input, pinned on seeded fixtures so violations reproduce exactly.

func TestInvariantYieldAndCIInUnitInterval(t *testing.T) {
	rep := mustRun(t, testParams(), &LocalRunner{Workers: 2})
	for _, c := range rep.Candidates {
		if c.Yield < 0 || c.Yield > 1 {
			t.Errorf("candidate %d (%s): yield %v outside [0,1]", c.Index, c.Label, c.Yield)
		}
		if c.CILow < 0 || c.CIHigh > 1 || c.CILow > c.CIHigh {
			t.Errorf("candidate %d (%s): CI [%v,%v] malformed", c.Index, c.Label, c.CILow, c.CIHigh)
		}
		if c.Yield < c.CILow || c.Yield > c.CIHigh {
			t.Errorf("candidate %d (%s): point estimate %v outside its CI [%v,%v]",
				c.Index, c.Label, c.Yield, c.CILow, c.CIHigh)
		}
		if c.OK < 0 || c.OK > c.Samples {
			t.Errorf("candidate %d (%s): ok %d out of range for %d samples", c.Index, c.Label, c.OK, c.Samples)
		}
	}
}

// TestInvariantWilsonWidthShrinksWithSamples: at a fixed success rate the
// interval must tighten monotonically as the sample count grows — that is
// what makes "stop when the interval is tight enough" sound.
func TestInvariantWilsonWidthShrinksWithSamples(t *testing.T) {
	z := zScore(0.95)
	for _, num := range []int{0, 1, 3} { // p̂ = 0, 1/4, 3/4 per quarter
		prev := 2.0
		for n := 4; n <= 1<<20; n *= 2 {
			lo, hi := Wilson(n/4*num, n, z)
			w := hi - lo
			if w >= prev {
				t.Fatalf("p̂=%d/4: width %v at n=%d did not shrink (was %v)", num, w, n, prev)
			}
			if lo < 0 || hi > 1 || lo > hi {
				t.Fatalf("p̂=%d/4 n=%d: malformed interval [%v,%v]", num, n, lo, hi)
			}
			prev = w
		}
	}
}

// TestInvariantEarlyStopMatchesFullBudget: on a seeded fixture, the
// early-stopped run must select the same winner as the exhaustive ε=0
// full-budget run — early stopping may save samples, never change the
// answer.
func TestInvariantEarlyStopMatchesFullBudget(t *testing.T) {
	early := mustRun(t, testParams(), &LocalRunner{})
	full := testParams()
	full.Epsilon = 0 // disable the width stop: the exhaustive reference
	ref := mustRun(t, full, &LocalRunner{})
	if early.Winner != ref.Winner {
		t.Fatalf("early-stop winner %d (%s) != full-budget winner %d (%s)",
			early.Winner, early.WinnerLabel, ref.Winner, ref.WinnerLabel)
	}
	if early.SamplesUsed > ref.SamplesUsed {
		t.Fatalf("early stop used more samples (%d) than the full run (%d)",
			early.SamplesUsed, ref.SamplesUsed)
	}
	if !bytesEqualJSON(t, early.Result, ref.Result) {
		t.Fatal("early-stop winner result bytes differ from full-budget winner result bytes")
	}
}

// TestInvariantWinnerMeetsKappaAtNominal: whatever the sampling says, the
// returned assignment must hold the skew bound in the unperturbed corner.
func TestInvariantWinnerMeetsKappaAtNominal(t *testing.T) {
	p := testParams()
	rep := mustRun(t, p, &LocalRunner{})
	w := rep.Candidates[rep.Winner]
	if w.NominalSkew > p.Kappa {
		t.Fatalf("winner %q violates kappa at nominal: skew %v > %v", w.Label, w.NominalSkew, p.Kappa)
	}
	for _, c := range rep.Candidates {
		if c.NominalSkew > p.Kappa {
			t.Errorf("candidate %q entered the race violating kappa at nominal (skew %v > %v)",
				c.Label, c.NominalSkew, p.Kappa)
		}
	}
}

// TestInvariantEarlyStopReducesSamplesOnSeparableFixture: with a loose ε
// and a generous κ (all candidates near yield 1), the width stop must
// fire before the full budget is spent — the "early stopping demonstrably
// saves samples" acceptance criterion, at the library level.
func TestInvariantEarlyStopReducesSamplesOnSeparableFixture(t *testing.T) {
	p := testParams()
	rep := mustRun(t, p, &LocalRunner{})
	if !rep.EarlyStopped || rep.SamplesSaved <= 0 {
		t.Fatalf("expected early stop on the seeded fixture: used %d of %d (saved %d)",
			rep.SamplesUsed, rep.SamplesBudget, rep.SamplesSaved)
	}
}

// TestInvariantDuplicateChunksDoNotDoubleCount: a runner that delivers
// every chunk twice (the retry-observed-twice shape) must produce the
// exact bytes of the clean run.
func TestInvariantDuplicateChunksDoNotDoubleCount(t *testing.T) {
	clean := mustRun(t, testParams(), &LocalRunner{})
	dup := mustRun(t, testParams(), duplicatingRunner{&LocalRunner{}})
	a, _ := json.Marshal(clean)
	b, _ := json.Marshal(dup)
	if string(a) != string(b) {
		t.Fatal("duplicated chunk delivery changed the report bytes")
	}
}

// duplicatingRunner delivers every chunk's stats twice, emulating a
// retried chunk whose first execution's completion also surfaced.
type duplicatingRunner struct{ inner Runner }

func (r duplicatingRunner) RunChunks(ctx context.Context, specs []*ChunkSpec) ([]*ChunkStats, error) {
	out, err := r.inner.RunChunks(ctx, specs)
	if err != nil {
		return nil, err
	}
	return append(out, out...), nil
}

func bytesEqualJSON(t *testing.T, a, b json.RawMessage) bool {
	t.Helper()
	return string(a) == string(b)
}

// TestRunErrorsOnEmptyCandidates pins the no-survivors error path.
func TestRunErrorsOnEmptyCandidates(t *testing.T) {
	if _, err := Run(context.Background(), nil, testParams(), 3, nil, &LocalRunner{}); err == nil {
		t.Fatal("Run accepted an empty candidate list")
	}
}
