package yield

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/obs"
	"wavemin/internal/parallel"
)

// Runner evaluates a batch of chunk specs — locally, or fanned out over
// the dispatch fleet as sub-leases of the parent yield job. The returned
// stats may arrive in any order (the aggregator keys on candidate and
// chunk index); a runner may even deliver duplicates (a retried chunk
// observed twice), which the aggregator drops. A runner must not drop
// chunks: every spec needs exactly one (or more) stats, or an error.
type Runner interface {
	RunChunks(ctx context.Context, specs []*ChunkSpec) ([]*ChunkStats, error)
}

// LocalRunner evaluates chunks in-process with a bounded worker pool —
// the pure-library path, and the reference the distributed path must
// match byte-for-byte.
type LocalRunner struct {
	Workers int // 0 = GOMAXPROCS, 1 = serial
}

// RunChunks implements Runner. Each chunk parses its own tree — the same
// work a remote worker would do — so local and dispatched runs share one
// code path and one set of bytes.
func (r *LocalRunner) RunChunks(ctx context.Context, specs []*ChunkSpec) ([]*ChunkStats, error) {
	out := make([]*ChunkStats, len(specs))
	err := parallel.ForEach(ctx, r.Workers, len(specs), func(i int) error {
		st, cerr := ExecuteChunk(ctx, specs[i])
		if cerr != nil {
			return cerr
		}
		out[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CandidateStats is one candidate's final accounting in the result.
type CandidateStats struct {
	Index         int     `json:"index"`
	Label         string  `json:"label"`
	AlgorithmUsed string  `json:"algorithmUsed"`
	Samples       int     `json:"samples"`
	OK            int     `json:"ok"`
	Yield         float64 `json:"yield"`
	CILow         float64 `json:"ciLow"`
	CIHigh        float64 `json:"ciHigh"`
	MeanSkew      float64 `json:"meanSkew"`
	WorstSkew     float64 `json:"worstSkew"`
	MeanPeak      float64 `json:"meanPeak"`
	MaxPeak       float64 `json:"maxPeak"`
	NominalSkew   float64 `json:"nominalSkew"`
	NominalPeak   float64 `json:"nominalPeak"`
	// EliminatedRound is the 1-based round this candidate's CI upper
	// bound fell below the best lower bound; 0 = survived to the end.
	EliminatedRound int `json:"eliminatedRound,omitempty"`
}

// Report is the yield run's result — the bytes POST /v1/optimize stores
// and the cache replays. Everything here is a pure function of
// (tree, config, modes, Params); nothing wall-clock- or topology-shaped
// may enter.
type Report struct {
	// Mode distinguishes yield results from plain optimization results
	// in the shared result cache and job registry.
	Mode string `json:"mode"`
	// AlgorithmUsed decorates the job view ("yield-mc").
	AlgorithmUsed string `json:"algorithmUsed"`
	// Winner indexes Candidates; WinnerLabel repeats its label.
	Winner      int    `json:"winner"`
	WinnerLabel string `json:"winnerLabel"`

	Kappa      float64          `json:"kappa"`
	PeakCap    float64          `json:"peakCap,omitempty"`
	Candidates []CandidateStats `json:"candidates"`
	// RejectedNominal counts knob variants dropped before sampling
	// (κ-violating at nominal, or out-of-range configs).
	RejectedNominal int `json:"rejectedNominal,omitempty"`

	Rounds        int  `json:"rounds"`
	SamplesUsed   int  `json:"samplesUsed"`
	SamplesBudget int  `json:"samplesBudget"`
	SamplesSaved  int  `json:"samplesSaved"`
	EarlyStopped  bool `json:"earlyStopped"`

	// Result is the winning candidate's canonical optimization result
	// (the same bytes a plain POST /v1/optimize with that candidate's
	// config would have produced).
	Result json.RawMessage `json:"result"`
}

// AlgorithmYieldMC is the Report.AlgorithmUsed / job decoration value.
const AlgorithmYieldMC = "yield-mc"

// candAgg folds one candidate's chunks. Chunks land keyed by index (so a
// retried duplicate overwrites its identical twin instead of
// double-counting samples) and are summed in index order at snapshot
// time, making every aggregate independent of arrival order.
type candAgg struct {
	issued int                 // chunks issued so far
	chunks map[int]*ChunkStats // by chunk index
}

func (a *candAgg) add(st *ChunkStats) {
	if a.chunks == nil {
		a.chunks = make(map[int]*ChunkStats)
	}
	a.chunks[st.Index] = st
}

// fold sums the received chunks in canonical (ascending index) order.
func (a *candAgg) fold() (samples, ok int, sumSkew, worstSkew, sumPeak, maxPeak float64) {
	idxs := make([]int, 0, len(a.chunks))
	for i := range a.chunks {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		st := a.chunks[i]
		samples += st.N
		ok += st.OK
		sumSkew += st.SumSkew
		sumPeak += st.SumPeak
		if st.WorstSkew > worstSkew {
			worstSkew = st.WorstSkew
		}
		if st.MaxPeak > maxPeak {
			maxPeak = st.MaxPeak
		}
	}
	return
}

// Run races the candidates under Monte Carlo sampling and returns the
// deterministic report. rejected is the count of variants dropped during
// candidate generation (it rides into the report).
//
// The loop is round-based: each round issues a deterministic quota of
// chunks for every surviving candidate (doubling each round), waits for
// all of them, and then decides — eliminate candidates whose Wilson upper
// bound is below the best lower bound, stop when one candidate remains,
// when every surviving interval is tighter than ε, or when the budget is
// spent. All decisions read only round-complete aggregates, so the
// report's bytes cannot depend on chunk timing.
//
// mode is the power mode samples are timed in (nil = nominal); it must be
// the mode the candidates' nominal metrics were computed in.
func Run(ctx context.Context, cands []Candidate, p Params, rejected int, mode *clocktree.Mode, runner Runner) (*Report, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("yield: no candidates meet kappa=%g at nominal (%d rejected)", p.Kappa, rejected)
	}
	if len(cands) > MaxCandidates {
		return nil, fmt.Errorf("yield: %d candidates exceeds the limit of %d", len(cands), MaxCandidates)
	}
	ctx, sp := obs.Start(ctx, "yield.run")
	defer sp.End()
	sp.Count("yield.candidates", int64(len(cands)))

	n := len(cands)
	z := zScore(p.Confidence)
	budgetChunks := chunkCount(p.Samples)
	aggs := make([]*candAgg, n)
	for i := range aggs {
		aggs[i] = &candAgg{}
	}
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	elim := make([]int, n)

	rounds, chunksIssued := 0, 0
	quota := baseRoundChunks
	for {
		// Issue this round's chunks for every surviving candidate with
		// budget left.
		var specs []*ChunkSpec
		for i := range cands {
			if !live[i] || aggs[i].issued >= budgetChunks {
				continue
			}
			take := quota
			if rem := budgetChunks - aggs[i].issued; take > rem {
				take = rem
			}
			for k := 0; k < take; k++ {
				idx := aggs[i].issued + k
				start, cn := chunkBounds(idx, p.Samples)
				specs = append(specs, &ChunkSpec{
					Tree:        cands[i].TreeJSON,
					Candidate:   i,
					Index:       idx,
					Start:       start,
					N:           cn,
					Sigma:       p.Sigma,
					Correlation: p.Correlation,
					Kappa:       p.Kappa,
					PeakCap:     p.PeakCap,
					Seed:        p.Seed,
					Mode:        mode,
				})
			}
			aggs[i].issued += take
		}
		if len(specs) == 0 {
			break // every surviving candidate exhausted its budget
		}
		rounds++
		chunksIssued += len(specs)
		stats, err := runner.RunChunks(ctx, specs)
		if err != nil {
			return nil, err
		}
		for si, st := range stats {
			if st == nil {
				return nil, fmt.Errorf("yield: runner dropped chunk %d of round %d", si, rounds)
			}
			if st.Candidate < 0 || st.Candidate >= n {
				return nil, fmt.Errorf("yield: runner returned stats for unknown candidate %d", st.Candidate)
			}
			aggs[st.Candidate].add(st)
		}
		// Round barrier passed: decide on the deterministic aggregates.
		maxLo := -1.0
		los := make([]float64, n)
		his := make([]float64, n)
		for i := range cands {
			if !live[i] {
				continue
			}
			samples, ok, _, _, _, _ := aggs[i].fold()
			los[i], his[i] = Wilson(ok, samples, z)
			if los[i] > maxLo {
				maxLo = los[i]
			}
		}
		countLive := 0
		for i := range cands {
			if !live[i] {
				continue
			}
			if his[i] < maxLo {
				live[i] = false
				elim[i] = rounds
				continue
			}
			countLive++
		}
		if countLive <= 1 {
			break // unique winner separated
		}
		if p.Epsilon > 0 {
			tight := true
			for i := range cands {
				if live[i] && (his[i]-los[i])/2 > p.Epsilon {
					tight = false
					break
				}
			}
			if tight {
				break
			}
		}
		quota *= 2
	}

	// Final accounting. The winner is the surviving candidate with the
	// highest point estimate; ties break to the lower index (candidate
	// order is deterministic, so this is too).
	rep := &Report{
		Mode:            "yield",
		AlgorithmUsed:   AlgorithmYieldMC,
		Kappa:           p.Kappa,
		PeakCap:         p.PeakCap,
		RejectedNominal: rejected,
		Rounds:          rounds,
		SamplesBudget:   n * p.Samples,
	}
	winner, winnerYield := -1, -1.0
	for i, c := range cands {
		samples, ok, sumSkew, worstSkew, sumPeak, maxPeak := aggs[i].fold()
		lo, hi := Wilson(ok, samples, z)
		cs := CandidateStats{
			Index:           i,
			Label:           c.Label,
			AlgorithmUsed:   c.AlgorithmUsed,
			Samples:         samples,
			OK:              ok,
			CILow:           lo,
			CIHigh:          hi,
			WorstSkew:       worstSkew,
			MaxPeak:         maxPeak,
			NominalSkew:     c.NominalSkew,
			NominalPeak:     c.NominalPeak,
			EliminatedRound: elim[i],
		}
		if samples > 0 {
			cs.Yield = float64(ok) / float64(samples)
			cs.MeanSkew = sumSkew / float64(samples)
			cs.MeanPeak = sumPeak / float64(samples)
		}
		rep.Candidates = append(rep.Candidates, cs)
		rep.SamplesUsed += samples
		if live[i] && cs.Yield > winnerYield {
			winner, winnerYield = i, cs.Yield
		}
	}
	if winner < 0 {
		// Unreachable: the best candidate can never be eliminated by its
		// own lower bound. Guard anyway — a report must name a winner.
		winner = 0
	}
	rep.Winner = winner
	rep.WinnerLabel = cands[winner].Label
	rep.Result = cands[winner].ResultJSON
	rep.SamplesSaved = rep.SamplesBudget - rep.SamplesUsed
	rep.EarlyStopped = rep.SamplesSaved > 0
	sp.Count("yield.chunks", int64(chunksIssued))
	sp.Count("yield.rounds", int64(rounds))
	sp.Count("yield.samples_used", int64(rep.SamplesUsed))
	sp.Count("yield.samples_saved", int64(rep.SamplesSaved))
	if rep.EarlyStopped {
		sp.Count("yield.early_stop_round", int64(rounds))
	}
	return rep, nil
}

// ParseTree parses canonical tree bytes with the default cell library —
// a convenience for runners that pre-parse candidate trees.
func ParseTree(treeJSON []byte) (*clocktree.Tree, error) {
	return clocktree.ReadJSON(bytes.NewReader(treeJSON), cell.DefaultLibrary())
}
