package yield

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/variation"
)

// ChunkSpec is the self-contained description of one sample batch: the
// candidate's optimized tree plus the sample range and the variation
// knobs. A worker needs nothing else — in particular, no state from other
// chunks — so chunks can run anywhere, in any order, any number of times.
type ChunkSpec struct {
	// Tree is the candidate's optimized clock tree, in the
	// wavemin-clocktree-v1 JSON format.
	Tree json.RawMessage `json:"tree"`
	// Candidate is the candidate's index in the run's candidate list.
	Candidate int `json:"candidate"`
	// Index is the chunk's index within the candidate's sample stream;
	// the aggregator folds chunks in this order and drops duplicates.
	Index int `json:"index"`
	// Start / N delimit the global sample range [Start, Start+N). Sample
	// seeds derive from the global sample index, so the statistics do not
	// depend on how the stream was cut into chunks.
	Start int `json:"start"`
	N     int `json:"n"`

	Sigma       float64 `json:"sigma"`
	Correlation float64 `json:"correlation"`
	Kappa       float64 `json:"kappa"`
	PeakCap     float64 `json:"peakCap,omitempty"`
	Seed        int64   `json:"seed"`
	// Mode is the power mode samples are timed in; nil means nominal.
	Mode *clocktree.Mode `json:"mode,omitempty"`
}

// Validate bounds a chunk spec: specs normally come from a trusted
// coordinator, but the executor is reachable through the open lease
// protocol, so it re-checks before burning CPU.
func (c *ChunkSpec) Validate() error {
	switch {
	case len(c.Tree) == 0:
		return fmt.Errorf("yield: chunk missing tree")
	case c.Candidate < 0 || c.Candidate >= MaxCandidates:
		return fmt.Errorf("yield: chunk candidate %d out of range", c.Candidate)
	case c.N < 1 || c.N > ChunkSize:
		return fmt.Errorf("yield: chunk size %d out of range (want 1..%d)", c.N, ChunkSize)
	case c.Start < 0 || c.Start > MaxSamples:
		return fmt.Errorf("yield: chunk start %d out of range", c.Start)
	case math.IsNaN(c.Sigma) || math.IsInf(c.Sigma, 0) || c.Sigma < 0 || c.Sigma > 1:
		return fmt.Errorf("yield: chunk sigma %g out of range", c.Sigma)
	case math.IsNaN(c.Kappa) || c.Kappa <= 0:
		return fmt.Errorf("yield: chunk kappa %g out of range", c.Kappa)
	case math.IsNaN(c.PeakCap) || c.PeakCap < 0:
		return fmt.Errorf("yield: chunk peakCap %g out of range", c.PeakCap)
	}
	return nil
}

// ChunkStats is a chunk's aggregate — plain sums, so any two executions
// of the same spec produce identical values, and the coordinator can fold
// chunks without seeing individual samples. The canonical wire form is
// encoding/json of this struct (fixed field order, shortest-round-trip
// floats).
type ChunkStats struct {
	Candidate int     `json:"candidate"`
	Index     int     `json:"index"`
	N         int     `json:"n"`
	OK        int     `json:"ok"` // samples meeting κ (and the peak cap)
	SumSkew   float64 `json:"sumSkew"`
	WorstSkew float64 `json:"worstSkew"`
	SumPeak   float64 `json:"sumPeak"`
	MaxPeak   float64 `json:"maxPeak"`
}

// Validate sanity-checks stats reported back over the wire against the
// spec they claim to answer.
func (s *ChunkStats) Validate(spec *ChunkSpec) error {
	switch {
	case s.Candidate != spec.Candidate || s.Index != spec.Index || s.N != spec.N:
		return fmt.Errorf("yield: chunk stats identity mismatch (got cand=%d idx=%d n=%d, want cand=%d idx=%d n=%d)",
			s.Candidate, s.Index, s.N, spec.Candidate, spec.Index, spec.N)
	case s.OK < 0 || s.OK > s.N:
		return fmt.Errorf("yield: chunk stats ok=%d out of range for n=%d", s.OK, s.N)
	case math.IsNaN(s.SumSkew) || math.IsInf(s.SumSkew, 0) ||
		math.IsNaN(s.WorstSkew) || math.IsInf(s.WorstSkew, 0) ||
		math.IsNaN(s.SumPeak) || math.IsInf(s.SumPeak, 0) ||
		math.IsNaN(s.MaxPeak) || math.IsInf(s.MaxPeak, 0):
		return fmt.Errorf("yield: chunk stats carry non-finite values")
	}
	return nil
}

// sampleSeed derives the RNG seed of one Monte Carlo sample from the run
// seed, the candidate, and the global sample index — two splitmix64-style
// mixes, so the stream is independent of chunk boundaries, worker
// placement, and retry schedules.
func sampleSeed(seed int64, candidate, sample int) int64 {
	return variation.InstanceSeed(variation.InstanceSeed(seed, candidate), sample)
}

// EvaluateChunk runs one chunk's samples over an already-parsed tree and
// returns the deterministic aggregate. One Scratch serves the whole
// chunk, so the per-sample cost is the timing/current evaluation alone —
// no tree clone per sample (BenchmarkYieldChunk pins this).
func EvaluateChunk(ctx context.Context, tree *clocktree.Tree, spec *ChunkSpec) (*ChunkStats, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mode := clocktree.NominalMode
	if spec.Mode != nil {
		mode = *spec.Mode
	}
	sc := variation.NewScratch(tree)
	rng := rand.New(rand.NewSource(1))
	candSeed := variation.InstanceSeed(spec.Seed, spec.Candidate)
	st := &ChunkStats{Candidate: spec.Candidate, Index: spec.Index, N: spec.N}
	for i := 0; i < spec.N; i++ {
		if i%16 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Reseeding in place is exactly rand.New(rand.NewSource(s)) —
		// minus the two allocations per sample.
		rng.Seed(variation.InstanceSeed(candSeed, spec.Start+i))
		inst := sc.Perturb(spec.Sigma, spec.Correlation, rng)
		tm := inst.ComputeTiming(mode)
		skew := tm.Skew(inst)
		peak := inst.PeakCurrent(tm)
		if skew <= spec.Kappa && (spec.PeakCap <= 0 || peak <= spec.PeakCap) {
			st.OK++
		}
		st.SumSkew += skew
		if skew > st.WorstSkew {
			st.WorstSkew = skew
		}
		st.SumPeak += peak
		if peak > st.MaxPeak {
			st.MaxPeak = peak
		}
	}
	return st, nil
}

// ExecuteChunk is the wire-facing executor: it parses the spec's tree and
// evaluates the chunk. This is what a dispatch worker (or the local
// fallback) runs for a leased yield chunk.
func ExecuteChunk(ctx context.Context, spec *ChunkSpec) (*ChunkStats, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tree, err := clocktree.ReadJSON(bytes.NewReader(spec.Tree), cell.DefaultLibrary())
	if err != nil {
		return nil, fmt.Errorf("yield: chunk tree: %w", err)
	}
	return EvaluateChunk(ctx, tree, spec)
}
