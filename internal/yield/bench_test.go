package yield

import (
	"context"
	"testing"
)

// BenchmarkYieldChunk is the hot path of the whole subsystem: one sample
// chunk over a pre-parsed tree. Its allocs/op pin the scratch-tree reuse
// in variation (one clone per chunk, in-place redraw per sample) — a
// regression to clone-per-sample multiplies allocs by the tree size and
// fails TestYieldChunkAllocBudget.
func BenchmarkYieldChunk(b *testing.B) {
	tree, _, _ := testCandidates(b)
	parsed, err := ParseTree(tree)
	if err != nil {
		b.Fatal(err)
	}
	spec := &ChunkSpec{
		Tree: tree, Candidate: 0, Index: 0, Start: 0, N: ChunkSize,
		Sigma: 0.08, Kappa: 200, Seed: 7,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateChunk(ctx, parsed, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYieldRun measures a whole small race end to end (candidate
// solves excluded — the fixture caches them).
func BenchmarkYieldRun(b *testing.B) {
	_, cands, rejected := testCandidates(b)
	p := testParams()
	r := &LocalRunner{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), cands, p, rejected, nil, r); err != nil {
			b.Fatal(err)
		}
	}
}
