package yield

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// TestParallelDeterminismYield is the yield-mode bitwise-determinism
// sweep (it runs under the Makefile's -race gate like the other Parallel
// tests): the marshaled report must be byte-identical at every worker
// count, under deterministic chunk-result shuffling (out-of-order
// delivery), and with duplicated deliveries (retries observed twice) —
// every topology and scheduling accident the fleet can produce.
func TestParallelDeterminismYield(t *testing.T) {
	p := testParams()
	ref := mustRun(t, p, &LocalRunner{Workers: 1})
	refBytes, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}

	runners := map[string]Runner{
		"workers=4":      &LocalRunner{Workers: 4},
		"workers=numcpu": &LocalRunner{Workers: runtime.NumCPU()},
		"shuffled":       shufflingRunner{inner: &LocalRunner{Workers: 4}, seed: 11},
		"shuffled+dup":   duplicatingRunner{shufflingRunner{inner: &LocalRunner{Workers: 3}, seed: 23}},
	}
	for name, r := range runners {
		rep := mustRun(t, p, r)
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(refBytes) {
			t.Errorf("%s: report bytes differ from the single-worker reference\nref: %s\ngot: %s",
				name, refBytes, got)
		}
	}
}

// shufflingRunner permutes both the spec order it hands its inner runner
// and the stat order it returns, with a deterministic seed — emulating a
// fleet where chunk completion order has nothing to do with issue order.
type shufflingRunner struct {
	inner Runner
	seed  int64
}

func (r shufflingRunner) RunChunks(ctx context.Context, specs []*ChunkSpec) ([]*ChunkStats, error) {
	rng := rand.New(rand.NewSource(r.seed))
	shuffled := append([]*ChunkSpec(nil), specs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	out, err := r.inner.RunChunks(ctx, shuffled)
	if err != nil {
		return nil, err
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// TestChunkStatsIndependentOfExecutionCount: re-executing the same spec
// must reproduce identical stats — the property that makes lease-lapse
// retries invisible.
func TestChunkStatsIndependentOfExecutionCount(t *testing.T) {
	tree, _, _ := testCandidates(t)
	spec := &ChunkSpec{
		Tree: tree, Candidate: 1, Index: 3, Start: 3 * ChunkSize, N: ChunkSize,
		Sigma: 0.08, Kappa: 200, Seed: 7,
	}
	first, err := ExecuteChunk(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := ExecuteChunk(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if *again != *first {
			t.Fatalf("re-execution %d changed stats: %+v != %+v", i, again, first)
		}
	}
}

// TestChunkStatsIndependentOfSiblingChunks: a chunk's stats must not
// depend on which other chunks ran before it in the same process (shared
// scratch state would break this).
func TestChunkStatsIndependentOfSiblingChunks(t *testing.T) {
	tree, _, _ := testCandidates(t)
	mk := func(idx int) *ChunkSpec {
		start, n := chunkBounds(idx, 4*ChunkSize)
		return &ChunkSpec{Tree: tree, Candidate: 0, Index: idx, Start: start, N: n,
			Sigma: 0.08, Kappa: 200, Seed: 7}
	}
	// Reference: each chunk alone in a fresh pass.
	want := make([]*ChunkStats, 4)
	for i := range want {
		st, err := ExecuteChunk(context.Background(), mk(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = st
	}
	// Same chunks interleaved in reverse order through one runner.
	specs := []*ChunkSpec{mk(3), mk(1), mk(2), mk(0)}
	got, err := (&LocalRunner{Workers: 2}).RunChunks(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Index < got[j].Index })
	for i := range want {
		if *got[i] != *want[i] {
			t.Fatalf("chunk %d stats depend on siblings: %+v != %+v", i, got[i], want[i])
		}
	}
}
