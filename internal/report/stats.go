package report

import (
	"fmt"
	"strings"
	"time"

	"wavemin/internal/obs"
)

// FormatSummary renders a trace summary as the fixed-width stage/counter
// table cmd/wavemin prints under -metrics. Counter keys are emitted in
// sorted order, so equal summaries render to equal bytes.
func FormatSummary(s *obs.Summary) string {
	if s == nil || (len(s.Stages) == 0 && len(s.Totals) == 0) {
		return "(no telemetry)\n"
	}
	var b strings.Builder
	if len(s.Stages) > 0 {
		width := len("stage")
		for _, st := range s.Stages {
			if len(st.Path) > width {
				width = len(st.Path)
			}
		}
		fmt.Fprintf(&b, "%-*s  %10s\n", width, "stage", "time")
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "%-*s  %10s\n", width, st.Path, formatDuration(st.Duration))
		}
	}
	if len(s.Totals) > 0 {
		keys := obs.SortedCounters(s.Totals)
		width := len("counter")
		for _, k := range keys {
			if len(k) > width {
				width = len(k)
			}
		}
		fmt.Fprintf(&b, "%-*s  %12s\n", width, "counter", "total")
		for _, k := range keys {
			fmt.Fprintf(&b, "%-*s  %12d\n", width, k, s.Totals[k])
		}
	}
	return b.String()
}

// formatDuration renders durations at millisecond precision — enough for
// stage accounting, and stable-width for the table.
func formatDuration(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
