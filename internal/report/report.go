// Package report renders waveforms and scatter data as ASCII charts — the
// in-terminal form of the paper's figures, used by cmd/experiments.
package report

import (
	"fmt"
	"math"
	"strings"

	"wavemin/internal/waveform"
)

// Plot renders one or more named waveforms as an ASCII line chart of the
// given width×height characters (plus axes). Series are drawn with
// distinct glyphs; later series overdraw earlier ones where they collide.
func Plot(width, height int, series ...Series) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	if len(series) == 0 {
		return "(no data)\n"
	}
	t0, t1 := math.Inf(1), math.Inf(-1)
	vMax := 0.0
	for _, s := range series {
		if s.W.IsZero() {
			continue
		}
		t0 = math.Min(t0, s.W.First())
		t1 = math.Max(t1, s.W.Last())
		if p, _ := s.W.Peak(); p > vMax {
			vMax = p
		}
	}
	if math.IsInf(t0, 1) || vMax <= 0 {
		return "(all series empty)\n"
	}
	glyphs := []byte("*o+x#%@")
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for col := 0; col < width; col++ {
			t := t0 + (t1-t0)*float64(col)/float64(width-1)
			v := s.W.At(t)
			row := int(math.Round(v / vMax * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row > height-1 {
				row = height - 1
			}
			grid[height-1-row][col] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.1f ┤%s\n", vMax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.1f ┼%s\n", 0.0, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s  %-*.1f%*.1f\n", "", width/2, t0, width-width/2, t1)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// Series names one waveform in a Plot.
type Series struct {
	Name string
	W    waveform.Waveform
}

// Scatter renders (x, y) points as an ASCII scatter chart.
func Scatter(width, height int, xs, ys []float64, xLabel, yLabel string) string {
	if len(xs) != len(ys) || len(xs) == 0 {
		return "(no data)\n"
	}
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	xMin, xMax := xs[0], xs[0]
	yMin, yMax := ys[0], ys[0]
	for i := range xs {
		xMin, xMax = math.Min(xMin, xs[i]), math.Max(xMax, xs[i])
		yMin, yMax = math.Min(yMin, ys[i]), math.Max(yMax, ys[i])
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		col := int(math.Round((xs[i] - xMin) / (xMax - xMin) * float64(width-1)))
		row := int(math.Round((ys[i] - yMin) / (yMax - yMin) * float64(height-1)))
		grid[height-1-row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.1f ┤%s\n", yMax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.1f ┼%s\n", yMin, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s  %-*.0f%*.0f\n", "", width/2, xMin, width-width/2, xMax)
	fmt.Fprintf(&b, "%10s  x=%s, y=%s\n", "", xLabel, yLabel)
	return b.String()
}
