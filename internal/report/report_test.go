package report

import (
	"strings"
	"testing"

	"wavemin/internal/waveform"
)

func TestPlotRendersSeries(t *testing.T) {
	a := waveform.Triangle(0, 10, 10, 100)
	b := waveform.Triangle(15, 5, 5, 60)
	out := Plot(40, 8, Series{Name: "idd", W: a}, Series{Name: "iss", W: b})
	if !strings.Contains(out, "*=idd") || !strings.Contains(out, "o=iss") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "100.0") {
		t.Fatalf("y-axis max missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8+2 { // height rows + x axis + legend
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestPlotEmpty(t *testing.T) {
	if out := Plot(20, 5); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
	if out := Plot(20, 5, Series{Name: "z"}); !strings.Contains(out, "empty") {
		t.Fatalf("zero series: %q", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	w := waveform.Triangle(0, 1, 1, 10)
	out := Plot(1, 1, Series{Name: "w", W: w})
	if out == "" {
		t.Fatal("clamped plot empty")
	}
}

func TestScatter(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 8, 6, 4, 2}
	out := Scatter(30, 8, xs, ys, "dof", "peak")
	if !strings.Contains(out, "x=dof, y=peak") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if strings.Count(out, "*") < 4 {
		t.Fatalf("points missing:\n%s", out)
	}
}

func TestScatterDegenerate(t *testing.T) {
	if out := Scatter(20, 5, nil, nil, "x", "y"); !strings.Contains(out, "no data") {
		t.Fatalf("empty scatter: %q", out)
	}
	if out := Scatter(20, 5, []float64{1}, []float64{1}, "x", "y"); out == "" {
		t.Fatal("single-point scatter empty")
	}
	if out := Scatter(20, 5, []float64{1, 2}, []float64{3}, "x", "y"); !strings.Contains(out, "no data") {
		t.Fatal("mismatched lengths should be rejected")
	}
}
