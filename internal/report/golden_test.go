package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wavemin/internal/obs"
	"wavemin/internal/waveform"
)

var update = flag.Bool("update", false, "rewrite the testdata goldens from current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update. Goldens pin the exact rendered bytes so formatting
// drift (column widths, rounding, glyphs) shows up as a diff, not as a
// silent change in every experiment log.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenFormatSummary(t *testing.T) {
	s := &obs.Summary{
		Stages: []obs.StageSummary{
			{Path: "optimize[0]", Duration: 51_234_567 * time.Nanosecond},
			{Path: "optimize[0]/measure.before[0]", Duration: 10_060_000 * time.Nanosecond},
			{Path: "optimize[0]/rung.ClkWaveMin[1]", Duration: 40_910_124 * time.Nanosecond},
		},
		Totals: map[string]int64{
			"mosp.labels_expanded":     3444,
			"mosp.pruned":              2327,
			"polarity.intervals_found": 106,
			"polarity.zones":           20,
			"zone.candidates":          1306,
		},
	}
	checkGolden(t, "summary", FormatSummary(s))
}

func TestGoldenFormatSummaryEmpty(t *testing.T) {
	checkGolden(t, "summary_empty", FormatSummary(nil))
}

func TestGoldenPlot(t *testing.T) {
	got := Plot(64, 10,
		Series{Name: "IDD", W: waveform.Triangle(10, 4, 8, 950)},
		Series{Name: "ISS", W: waveform.Triangle(12, 3, 9, 730)},
	)
	checkGolden(t, "plot", got)
}

func TestGoldenScatter(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 12, 16, 24, 32}
	ys := []float64{980, 931, 880, 842, 820, 811, 806, 803}
	checkGolden(t, "scatter", Scatter(56, 12, xs, ys, "degree of freedom", "peak (µA)"))
}
