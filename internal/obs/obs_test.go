package obs

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNilAndFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything")
	if sp != nil {
		t.Fatal("span on bare context")
	}
	if ctx2 != ctx {
		t.Fatal("Start allocated a context with telemetry disabled")
	}
	// Every method must be a no-op on nil.
	sp.End()
	sp.SetAttr("k", "v")
	sp.Count("c", 1)
	sp.Gauge("g", 1)
	sp.Sched("s", 1)
	sp.Snapshot("w", nil, nil)
	if sp.SnapshotsEnabled() {
		t.Fatal("snapshots on nil span")
	}
	if c := sp.Child("x"); c != nil {
		t.Fatal("child of nil span")
	}
	if c := sp.ChildAt(3, "x"); c != nil {
		t.Fatal("childAt of nil span")
	}
	if WithSpan(ctx, nil) != ctx {
		t.Fatal("WithSpan(nil) allocated")
	}
}

func TestSpanTreeSerializesInSlotOrder(t *testing.T) {
	tr := New(Options{})
	ctx := Into(context.Background(), tr)
	ctx, root := Start(ctx, "run")
	if root == nil {
		t.Fatal("no span with trace attached")
	}
	root.SetAttr("algo", "ClkWaveMin")
	root.Count("items", 2)

	// Children created out of slot order, concurrently.
	var wg sync.WaitGroup
	for _, slot := range []int{3, 1, 0, 2} {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			c := root.ChildAt(slot, "zone")
			c.Count("zone.leaves", int64(slot))
			c.End()
		}(slot)
	}
	wg.Wait()
	_, child := Start(ctx, "measure")
	child.End()
	root.End()

	evs := tr.Events()
	wantPaths := []string{
		"run[0]",
		"run[0]/zone[0]", "run[0]/zone[1]", "run[0]/zone[2]", "run[0]/zone[3]",
		"run[0]/measure[4]",
	}
	if len(evs) != len(wantPaths) {
		t.Fatalf("got %d events, want %d", len(evs), len(wantPaths))
	}
	for i, want := range wantPaths {
		if evs[i].Path != want {
			t.Fatalf("event %d path %q, want %q", i, evs[i].Path, want)
		}
	}
	if evs[0].Counters["items"] != 2 || evs[0].Attrs[0] != (Attr{"algo", "ClkWaveMin"}) {
		t.Fatalf("root event content wrong: %+v", evs[0])
	}
	if evs[3].Counters["zone.leaves"] != 2 {
		t.Fatalf("slot 2 counter = %d", evs[3].Counters["zone.leaves"])
	}
	if evs[0].Timing == nil || evs[0].Timing.DurNS <= 0 {
		t.Fatal("root timing missing")
	}
}

func TestSnapshotsGated(t *testing.T) {
	off := New(Options{})
	sp := off.Start("s")
	sp.Snapshot("w", []float64{1}, []float64{2})
	sp.End()
	if n := len(off.Events()[0].Snaps); n != 0 {
		t.Fatalf("snapshot recorded with snapshots disabled: %d", n)
	}

	on := New(Options{Snapshots: true})
	sp = on.Start("s")
	if !sp.SnapshotsEnabled() {
		t.Fatal("snapshots not enabled")
	}
	ts, vs := []float64{0, 1}, []float64{5, 6}
	sp.Snapshot("idd", ts, vs)
	ts[0] = 99 // must have been copied
	sp.End()
	got := on.Events()[0].Snaps
	if len(got) != 1 || got[0].Name != "idd" || got[0].Times[0] != 0 || got[0].Values[1] != 6 {
		t.Fatalf("snapshot content wrong: %+v", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := New(Options{Snapshots: true})
	sp := tr.Start("optimize")
	sp.SetAttr("kappa", "20")
	sp.Count("mosp.labels_expanded", 123)
	sp.Gauge("peak", 456.25)
	sp.Sched("parallel.workers", 4)
	sp.Snapshot("idd", []float64{0, 1.5}, []float64{10, 20})
	c := sp.Child("zone")
	c.Count("zone.leaves", 7)
	c.End()
	sp.End()

	evs := tr.Events()
	var buf bytes.Buffer
	if err := Encode(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(evs), normalize(got)) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", evs, got)
	}
}

// normalize re-encodes via the JSON layer's view: empty-vs-nil slice
// differences are not observable in JSONL, so compare the encoded bytes.
func normalize(evs []Event) string {
	var buf bytes.Buffer
	if err := Encode(&buf, evs); err != nil {
		panic(err)
	}
	return buf.String()
}

func TestDecodeRejectsMalformed(t *testing.T) {
	for _, src := range []string{
		"{not json}\n",
		`{"path":"a"} trailing` + "\n",
		`{"path":"a","counters":{"x":1.5}}` + "\n", // non-integer counter
	} {
		if _, err := Decode(bytes.NewReader([]byte(src))); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
	// Blank lines are fine.
	evs, err := Decode(bytes.NewReader([]byte("\n\n{\"path\":\"a\"}\n\n")))
	if err != nil || len(evs) != 1 {
		t.Fatalf("blank-line input: %v %v", evs, err)
	}
}

func TestStripTimingAndDeterminism(t *testing.T) {
	build := func() *Trace {
		tr := New(Options{})
		sp := tr.Start("run")
		for k := 0; k < 3; k++ {
			c := sp.ChildAt(k, "zone")
			c.Count("n", int64(k))
			c.Sched("worker[0].items", 1) // scheduling-dependent
			c.End()
		}
		sp.End()
		return tr
	}
	a, b := build().Events(), build().Events()
	if normalize(a) == normalize(b) {
		t.Fatal("expected raw streams to differ (wall times)")
	}
	sa, sb := StripTiming(a), StripTiming(b)
	if normalize(sa) != normalize(sb) {
		t.Fatalf("content streams differ:\n%s\n%s", normalize(sa), normalize(sb))
	}
	if a[0].Timing == nil {
		t.Fatal("StripTiming mutated its input")
	}
	for _, ev := range sa {
		if ev.Timing != nil {
			t.Fatal("timing survived StripTiming")
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := New(Options{})
	run := tr.Start("optimize")
	st1 := run.Child("ClkWaveMin")
	z := st1.ChildAt(0, "zone")
	z.Count("mosp.labels_expanded", 10)
	z.End()
	st1.Count("intervals.tried", 2)
	st1.End()
	st2 := run.Child("measure")
	st2.Count("modes", 1)
	st2.End()
	run.End()
	time.Sleep(time.Millisecond) // not required; documents Duration source

	s := Summarize(tr.Events())
	if len(s.Stages) != 3 {
		t.Fatalf("got %d stages: %+v", len(s.Stages), s.Stages)
	}
	if s.Totals["mosp.labels_expanded"] != 10 || s.Totals["intervals.tried"] != 2 {
		t.Fatalf("totals wrong: %v", s.Totals)
	}
	// The deep zone counter rolls up into its depth-1 stage and the root.
	if s.Stages[1].Counters["mosp.labels_expanded"] != 10 {
		t.Fatalf("stage rollup missing: %+v", s.Stages[1])
	}
	if s.Stages[0].Counters["mosp.labels_expanded"] != 10 {
		t.Fatalf("root rollup missing: %+v", s.Stages[0])
	}
	if s.Stages[2].Counters["modes"] != 1 {
		t.Fatalf("stage 2: %+v", s.Stages[2])
	}
	if got := SortedCounters(s.Totals); len(got) != 3 || got[0] != "intervals.tried" {
		t.Fatalf("sorted counters: %v", got)
	}
}

func TestSinks(t *testing.T) {
	tr := New(Options{})
	tr.Start("a").End()

	mem := &Memory{}
	var buf bytes.Buffer
	tr2 := New(Options{Sink: Tee(mem, &JSONL{W: &buf})})
	sp := tr2.Start("run")
	sp.Count("c", 3)
	sp.End()
	if err := tr2.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(mem.Events()) != 1 || mem.Events()[0].Counters["c"] != 3 {
		t.Fatalf("memory sink: %+v", mem.Events())
	}
	dec, err := Decode(&buf)
	if err != nil || len(dec) != 1 {
		t.Fatalf("jsonl sink: %v %v", dec, err)
	}

	// Expvar totals accumulate.
	before := counterValue(t, "c")
	if err := (ExpvarSink{}).Write(mem.Events()); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, "c"); got != before+3 {
		t.Fatalf("expvar c = %d, want %d", got, before+3)
	}

	// Flushing a sink-less trace is a no-op, as is a nil trace.
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var nilTrace *Trace
	if err := nilTrace.Flush(); err != nil || nilTrace.Events() != nil || nilTrace.Start("x") != nil {
		t.Fatal("nil trace not inert")
	}
}

func counterValue(t *testing.T, name string) int64 {
	t.Helper()
	v := ExpvarCounters().Get(name)
	if v == nil {
		return 0
	}
	iv, ok := v.(interface{ Value() int64 })
	if !ok {
		t.Fatalf("counter %q has unexpected type %T", name, v)
	}
	return iv.Value()
}

func TestAttachSink(t *testing.T) {
	// A sink attached after construction receives the flush, alongside
	// any sink the trace already had.
	first := &Memory{}
	tr := New(Options{Sink: first})
	sp := tr.Start("run")
	sp.Count("items", 2)
	sp.End()
	second := &Memory{}
	tr.AttachSink(second)
	tr.AttachSink(nil) // no-op
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, mem := range []*Memory{first, second} {
		evs := mem.Events()
		if len(evs) != 1 || evs[0].Name != "run" || evs[0].Counters["items"] != 2 {
			t.Fatalf("sink %d saw %+v", i, evs)
		}
	}

	// Attaching to a sink-less trace makes it the sole sink.
	tr2 := New(Options{})
	tr2.Start("x").End()
	mem := &Memory{}
	tr2.AttachSink(mem)
	if err := tr2.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(mem.Events()) != 1 {
		t.Fatalf("attached-only sink saw %d events", len(mem.Events()))
	}

	// A nil trace stays inert.
	var nilTrace *Trace
	nilTrace.AttachSink(mem)
}
