package obs

import (
	"bytes"
	"testing"
)

// FuzzJSONLRoundTrip feeds arbitrary bytes to the trace decoder. Inputs
// the decoder accepts must survive an encode→decode round trip with the
// encoded bytes as the fixed point: encode(decode(in)) must equal
// encode(decode(encode(decode(in)))).
func FuzzJSONLRoundTrip(f *testing.F) {
	// A real trace as produced by the engine.
	tr := New(Options{Snapshots: true})
	sp := tr.Start("optimize")
	sp.SetAttr("algorithm", "ClkWaveMin")
	sp.Count("mosp.labels_expanded", 42)
	sp.Gauge("peak.after", 123.5)
	sp.Sched("parallel.workers", 4)
	sp.Snapshot("idd", []float64{0, 1, 2}, []float64{0.5, 2.5, 1.0})
	z := sp.ChildAt(1, "zone")
	z.Count("zone.candidates", 9)
	z.End()
	sp.End()
	var valid bytes.Buffer
	if err := Encode(&valid, tr.Events()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	// Hand-rolled edge cases: minimal, blank-padded, and malformed lines.
	f.Add([]byte(`{"path":"a","name":"a","slot":0,"depth":0}` + "\n"))
	f.Add([]byte("\n\n" + `{"path":"a"}` + "\n\n"))
	f.Add([]byte(`{"path":"a","timing":{"start_ns":1,"dur_ns":2,"sched":{"w":1}}}` + "\n"))
	f.Add([]byte(`{"path":"a","gauges":{"g":1e308}}` + "\n"))
	f.Add([]byte(`{"path":"a"} {"path":"b"}` + "\n"))
	f.Add([]byte(`{"path":`))
	f.Add([]byte(`[{"path":"a"}]`))
	f.Add([]byte(`{"counters":{"x":1.5}}`))
	f.Add([]byte("{}\n{}\n{}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		var first bytes.Buffer
		if err := Encode(&first, evs); err != nil {
			t.Fatalf("encode of decoded events failed: %v", err)
		}
		evs2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of encoder output failed: %v\n%s", err, first.Bytes())
		}
		if len(evs2) != len(evs) {
			t.Fatalf("round trip changed event count: %d != %d", len(evs2), len(evs))
		}
		var second bytes.Buffer
		if err := Encode(&second, evs2); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode is not a fixed point:\n%s\n%s", first.Bytes(), second.Bytes())
		}
		// StripTiming must be stable under the round trip too.
		var sa, sb bytes.Buffer
		if err := Encode(&sa, StripTiming(evs)); err != nil {
			t.Fatal(err)
		}
		if err := Encode(&sb, StripTiming(evs2)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
			t.Fatal("StripTiming view changed across round trip")
		}
	})
}
