package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Event is the serialized (JSONL) form of one span: one JSON object per
// line, emitted in deterministic depth-first, slot-ordered tree order.
//
// Everything outside Timing is content: bitwise identical across worker
// counts. Timing carries wall-clock and scheduling-dependent data and is
// what StripTiming removes before determinism comparisons.
type Event struct {
	Path     string             `json:"path"`
	Name     string             `json:"name"`
	Slot     int                `json:"slot"`
	Depth    int                `json:"depth"`
	Attrs    []Attr             `json:"attrs,omitempty"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	Snaps    []Snapshot         `json:"snapshots,omitempty"`
	Timing   *Timing            `json:"timing,omitempty"`
}

// Timing is the non-deterministic part of an event.
type Timing struct {
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Sched holds scheduling-dependent counts (resolved worker-pool
	// width, per-worker item tallies) recorded via Span.Sched.
	Sched map[string]int64 `json:"sched,omitempty"`
}

// Duration returns the span's wall time.
func (t *Timing) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.DurNS)
}

// Encode writes events as JSONL: one compact JSON object per line.
// encoding/json sorts map keys, so equal events encode to equal bytes.
func Encode(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return fmt.Errorf("obs: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Decode reads a JSONL event stream. Blank lines are skipped; any
// malformed line is an error.
func Decode(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var ev Event
		dec := json.NewDecoder(bytes.NewReader(b))
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("obs: decode line %d: %w", line, err)
		}
		// A line must be exactly one object — trailing garbage after the
		// object is malformed input, not a second event.
		if dec.More() {
			return nil, fmt.Errorf("obs: decode line %d: trailing data after event", line)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: decode line %d: %w", line+1, err)
	}
	return out, nil
}

// StripTiming returns a copy of the events with every Timing block
// removed — the content-only view the determinism contract covers.
func StripTiming(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	for i := range out {
		out[i].Timing = nil
	}
	return out
}

// StageSummary aggregates one top-level stage of a trace.
type StageSummary struct {
	Path     string
	Duration time.Duration
	// Counters sums every counter over the stage's whole subtree.
	Counters map[string]int64
}

// Summary condenses a trace for reporting: per-stage durations plus
// counter totals over the stage subtrees, and grand totals.
type Summary struct {
	Stages []StageSummary
	Totals map[string]int64
}

// Summarize folds an event stream (as produced by Trace.Events) into a
// Summary. Stages are the events at depth 0 and 1 — the facade's run
// span and its per-algorithm/per-measure children — each aggregating its
// subtree by path prefix.
func Summarize(evs []Event) *Summary {
	s := &Summary{Totals: make(map[string]int64)}
	idx := make(map[string]int) // stage path -> index in s.Stages
	for _, ev := range evs {
		if ev.Depth <= 1 {
			idx[ev.Path] = len(s.Stages)
			s.Stages = append(s.Stages, StageSummary{
				Path:     ev.Path,
				Duration: ev.Timing.Duration(),
				Counters: make(map[string]int64),
			})
		}
		for k, v := range ev.Counters {
			s.Totals[k] += v
			for _, st := range stagesOf(ev.Path) {
				if i, ok := idx[st]; ok {
					s.Stages[i].Counters[k] += v
				}
			}
		}
	}
	return s
}

// stagesOf returns the depth-0 and depth-1 path prefixes of a span path.
func stagesOf(path string) []string {
	parts := strings.SplitN(path, "/", 3)
	out := []string{parts[0]}
	if len(parts) > 1 {
		out = append(out, parts[0]+"/"+parts[1])
	}
	return out
}

// SortedCounters returns a counter map's keys in sorted order — the
// deterministic iteration order renderers use.
func SortedCounters(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
