// Package obs is the solver telemetry layer: hierarchical trace spans
// with per-stage wall time, counters/gauges for the solver internals
// (labels expanded, dedup hits, incumbent prunes, candidates per zone,
// worker utilization), and optional accumulated-waveform snapshots at
// stage boundaries.
//
// The layer is carried through the engine on the context — the same path
// the cancellation and Workers knobs already travel — and costs nothing
// when absent: FromContext on a bare context returns nil, and every
// method of *Span is a no-op on a nil receiver, so instrumented code
// needs no enable checks beyond the nil guards it would write anyway.
//
// Determinism contract: everything a span records except the Timing
// block (wall-clock start/duration and scheduling-dependent counts) is a
// pure function of the inputs, independent of worker count and goroutine
// scheduling. Parallel fan-outs create children with ChildAt(slot, ...)
// — the same pre-indexed slot discipline the solvers use for result
// merging — and Events() serializes the span tree in slot order, so
// StripTiming(events) is bitwise identical at any Workers setting. The
// root-package TestParallelDeterminismTrace pins this down.
package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Options configures a Trace.
type Options struct {
	// Sink receives the serialized events on Flush. Nil discards them
	// (Events() still works, which is all in-process consumers need).
	Sink Sink
	// Snapshots enables accumulated-waveform snapshots at stage
	// boundaries. Off by default: snapshots dominate trace size.
	Snapshots bool
}

// Trace owns a forest of spans for one run. Create with New, attach to a
// context with Into, and Flush once the run is over.
type Trace struct {
	opts Options

	mu   sync.Mutex
	tops []*Span
}

// New creates an empty trace.
func New(opts Options) *Trace {
	return &Trace{opts: opts}
}

// Start opens a new top-level span. Most callers use the package-level
// Start with a context instead.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	sp.slot = len(t.tops)
	t.tops = append(t.tops, sp)
	t.mu.Unlock()
	return sp
}

// Events serializes the span forest depth-first, children in slot order,
// into the flat JSONL event form. Safe to call at any time; spans still
// open report a zero duration.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tops := append([]*Span(nil), t.tops...)
	t.mu.Unlock()
	var out []Event
	for _, sp := range tops {
		out = sp.appendEvents(out, "", 0)
	}
	return out
}

// Flush serializes the span forest into the configured sinks. Call after
// the traced run finishes (every span ended).
func (t *Trace) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sink := t.opts.Sink
	t.mu.Unlock()
	if sink == nil {
		return nil
	}
	return sink.Write(t.Events())
}

// AttachSink adds a sink to the trace after construction, preserving any
// sink it already has — the per-job attachment path a server uses: each
// job's trace gets its own in-memory sink for the job's trace endpoint
// plus whatever process-wide sinks (expvar, JSONL) are active. Safe to
// call concurrently with Flush; a nil sink is a no-op.
func (t *Trace) AttachSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	if t.opts.Sink == nil {
		t.opts.Sink = s
	} else {
		t.opts.Sink = Tee(t.opts.Sink, s)
	}
	t.mu.Unlock()
}

// Attr is one key/value annotation on a span. Values are pre-formatted
// strings so serialization is trivially deterministic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Snapshot is a sampled waveform captured at a stage boundary — the
// accumulated supply-current waveform is the paper's object of interest,
// so it is observable mid-run.
type Snapshot struct {
	Name   string    `json:"name"`
	Times  []float64 `json:"t,omitempty"` // ps
	Values []float64 `json:"v,omitempty"` // µA
}

// Span is one stage of the run. All methods are safe on a nil receiver
// (the "telemetry disabled" representation) and safe for concurrent use.
type Span struct {
	tr     *Trace
	name   string
	slot   int
	start  time.Time
	dur    time.Duration
	nextCh int // next serial child slot

	mu        sync.Mutex
	attrs     []Attr
	counters  map[string]int64
	gauges    map[string]float64
	sched     map[string]int64
	snaps     []Snapshot
	children  []*Span
	adoptions []adoption
}

// adoption is a serialized remote subtree grafted under a span at an
// explicit child slot — how a dispatch coordinator stitches a worker's
// trace under its own job span.
type adoption struct {
	slot int
	evs  []Event
}

// End records the span's duration. Idempotent enough for defer use: the
// first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.dur == 0 {
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Child opens a sub-span with the next sequential slot. Use only from
// serial code; parallel fan-outs must use ChildAt so slots (and hence
// the serialized order) do not depend on scheduling.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	slot := s.nextCh
	s.nextCh++
	s.mu.Unlock()
	return s.childAt(slot, name)
}

// ChildAt opens a sub-span at an explicit slot — the worker-pool
// discipline: the caller owns index k of a fan-out and everything it
// records lands at a position independent of which goroutine ran it.
func (s *Span) ChildAt(slot int, name string) *Span {
	if s == nil {
		return nil
	}
	return s.childAt(slot, name)
}

// AdoptAt grafts an already-serialized span subtree (the Events() output
// of a trace built elsewhere — typically a remote worker) under this
// span at an explicit child slot, following the same slot discipline as
// ChildAt. On serialization the adopted events keep their own names,
// slots, and relative structure; their Depth and Path are rewritten so
// they read as descendants of this span. The events are adopted as
// given: remote Timing blocks survive (StripTiming removes them later),
// and content determinism is the producer's responsibility.
func (s *Span) AdoptAt(slot int, evs []Event) {
	if s == nil || len(evs) == 0 {
		return
	}
	ad := adoption{slot: slot, evs: append([]Event(nil), evs...)}
	s.mu.Lock()
	s.adoptions = append(s.adoptions, ad)
	if slot >= s.nextCh {
		s.nextCh = slot + 1
	}
	s.mu.Unlock()
}

func (s *Span) childAt(slot int, name string) *Span {
	c := &Span{tr: s.tr, name: name, slot: slot, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	// Keep the serial counter ahead of explicit slots so a Child after a
	// ChildAt fan-out lands in the next free slot, not back at 0.
	if slot >= s.nextCh {
		s.nextCh = slot + 1
	}
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span. Values must be deterministically formatted
// by the caller (no addresses, no durations).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Count adds n to a counter. Counters are content: they must be
// deterministic. Scheduling-dependent counts belong in Sched.
func (s *Span) Count(name string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += n
	s.mu.Unlock()
}

// Gauge records a point-in-time value (content: must be deterministic
// and finite).
func (s *Span) Gauge(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.gauges == nil {
		s.gauges = make(map[string]float64)
	}
	s.gauges[name] = v
	s.mu.Unlock()
}

// Sched adds n to a scheduling-dependent counter (per-worker item
// counts, resolved pool width). Sched values live in the event's Timing
// block, which StripTiming removes — they are observable but excluded
// from the determinism contract.
func (s *Span) Sched(name string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.sched == nil {
		s.sched = make(map[string]int64)
	}
	s.sched[name] += n
	s.mu.Unlock()
}

// SnapshotsEnabled reports whether the owning trace records waveform
// snapshots — callers guard the (possibly expensive) waveform
// computation behind it.
func (s *Span) SnapshotsEnabled() bool {
	return s != nil && s.tr != nil && s.tr.opts.Snapshots
}

// Snapshot records a sampled waveform at a stage boundary. No-op unless
// the trace enables snapshots. The slices are copied.
func (s *Span) Snapshot(name string, times, values []float64) {
	if !s.SnapshotsEnabled() {
		return
	}
	snap := Snapshot{
		Name:   name,
		Times:  append([]float64(nil), times...),
		Values: append([]float64(nil), values...),
	}
	s.mu.Lock()
	s.snaps = append(s.snaps, snap)
	s.mu.Unlock()
}

// appendEvents serializes the span and its subtree (children in slot
// order, ties in creation order).
func (s *Span) appendEvents(out []Event, parentPath string, depth int) []Event {
	s.mu.Lock()
	ev := Event{
		Name:  s.name,
		Slot:  s.slot,
		Depth: depth,
		Path:  joinPath(parentPath, s.name, s.slot),
		Attrs: append([]Attr(nil), s.attrs...),
		Snaps: append([]Snapshot(nil), s.snaps...),
		Timing: &Timing{
			StartNS: s.start.UnixNano(),
			DurNS:   int64(s.dur),
			Sched:   copyCounts(s.sched),
		},
	}
	if len(s.counters) > 0 {
		ev.Counters = copyCounts(s.counters)
	}
	if len(s.gauges) > 0 {
		ev.Gauges = make(map[string]float64, len(s.gauges))
		for k, v := range s.gauges {
			ev.Gauges[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	adoptions := append([]adoption(nil), s.adoptions...)
	s.mu.Unlock()
	out = append(out, ev)
	// Merge live children and adopted subtrees into one slot order.
	type slotItem struct {
		slot int
		sp   *Span
		ad   *adoption
	}
	items := make([]slotItem, 0, len(children)+len(adoptions))
	for _, c := range children {
		items = append(items, slotItem{slot: c.slot, sp: c})
	}
	for i := range adoptions {
		items = append(items, slotItem{slot: adoptions[i].slot, ad: &adoptions[i]})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].slot < items[j].slot })
	for _, it := range items {
		if it.sp != nil {
			out = it.sp.appendEvents(out, ev.Path, depth+1)
			continue
		}
		for _, ae := range it.ad.evs {
			ae.Depth = depth + 1 + ae.Depth
			ae.Path = ev.Path + "/" + ae.Path
			out = append(out, ae)
		}
	}
	return out
}

func copyCounts(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ctxKey carries the telemetry state on a context.
type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// Into attaches a trace to the context; spans started from the returned
// context (and its descendants) land in the trace.
func Into(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// FromContext returns the context's current span, or nil when telemetry
// is disabled — the single cheap lookup hot paths do once at entry.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// WithSpan makes sp the context's current span. A nil sp returns ctx
// unchanged, so the disabled path allocates nothing.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// Start opens a span under the context's current span (or as a new
// top-level span of the context's trace) and returns a context carrying
// it. With no trace attached it returns (ctx, nil) without allocating.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil {
		sp := parent.Child(name)
		return WithSpan(ctx, sp), sp
	}
	if tr := TraceFrom(ctx); tr != nil {
		sp := tr.Start(name)
		return WithSpan(ctx, sp), sp
	}
	return ctx, nil
}

func joinPath(parent, name string, slot int) string {
	elem := name + "[" + itoa(slot) + "]"
	if parent == "" {
		return elem
	}
	return parent + "/" + elem
}

// itoa avoids strconv in the per-span path builder's import set; spans
// are built rarely, so clarity wins over speed here.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
