package obs

import (
	"testing"
)

// TestAdoptAtSplicesRemoteSubtree pins the remote-span ingestion used by
// the dispatch coordinator: a subtree serialized from one trace, adopted
// under a span of another, reads as that span's descendant — depths and
// paths rewritten, names/slots/attrs preserved — and sorts into the
// parent's child slot order alongside live children.
func TestAdoptAtSplicesRemoteSubtree(t *testing.T) {
	// Remote side: a worker-built trace with structure.
	remote := New(Options{})
	rroot := remote.Start("optimize")
	rroot.SetAttr("algorithm", "wavemin")
	rchild := rroot.ChildAt(0, "solve")
	rchild.Count("labels", 7)
	rchild.End()
	rroot.End()
	revs := remote.Events()
	if len(revs) != 2 {
		t.Fatalf("remote events = %d, want 2", len(revs))
	}

	// Local side: a coordinator span with a live child at slot 0 and the
	// adopted remote subtree at slot 1.
	local := New(Options{})
	job := local.Start("dispatch")
	lease := job.ChildAt(0, "lease")
	lease.End()
	job.AdoptAt(1, revs)
	tail := job.ChildAt(2, "finish")
	tail.End()
	job.End()

	evs := local.Events()
	wantPaths := []string{
		"dispatch[0]",
		"lease[0]",
		"dispatch[0]/optimize[0]",
		"dispatch[0]/optimize[0]/solve[0]",
		"finish[2]",
	}
	// joinPath uses the parent's full path, so live children carry it too.
	wantPaths[1] = "dispatch[0]/lease[0]"
	wantPaths[4] = "dispatch[0]/finish[2]"
	if len(evs) != len(wantPaths) {
		t.Fatalf("events = %d, want %d:\n%+v", len(evs), len(wantPaths), evs)
	}
	for i, want := range wantPaths {
		if evs[i].Path != want {
			t.Errorf("event %d path = %q, want %q", i, evs[i].Path, want)
		}
	}
	// Depths: dispatch=0, lease=1, optimize=1, solve=2, finish=1.
	wantDepth := []int{0, 1, 1, 2, 1}
	for i, want := range wantDepth {
		if evs[i].Depth != want {
			t.Errorf("event %d depth = %d, want %d", i, evs[i].Depth, want)
		}
	}
	// Adopted content survives intact.
	if got := evs[2].Attrs; len(got) != 1 || got[0].Key != "algorithm" || got[0].Value != "wavemin" {
		t.Errorf("adopted root attrs = %+v", got)
	}
	if got := evs[3].Counters["labels"]; got != 7 {
		t.Errorf("adopted child counter = %d, want 7", got)
	}
}

// TestAdoptAtNilAndEmpty pins the no-op paths.
func TestAdoptAtNilAndEmpty(t *testing.T) {
	var nilSpan *Span
	nilSpan.AdoptAt(0, []Event{{Name: "x"}}) // must not panic

	tr := New(Options{})
	sp := tr.Start("root")
	sp.AdoptAt(3, nil)
	sp.End()
	if evs := tr.Events(); len(evs) != 1 {
		t.Fatalf("events after empty adopt = %d, want 1", len(evs))
	}
	// The empty adopt still advanced the slot counter? It should NOT have:
	// AdoptAt with no events is a full no-op.
	c := sp.Child("next")
	c.End()
	evs := tr.Events()
	if evs[1].Slot != 0 {
		t.Fatalf("child slot after empty adopt = %d, want 0", evs[1].Slot)
	}
}
