package obs

import (
	"expvar"
	"fmt"
	"io"
	"sync"
)

// Sink receives a trace's serialized events on Flush. Implementations
// must tolerate being handed the same stream more than once (a caller
// may Flush defensively).
type Sink interface {
	Write(evs []Event) error
}

// JSONL writes events as JSON lines to an io.Writer — the on-disk trace
// format of cmd/wavemin's -trace flag.
type JSONL struct {
	W io.Writer
}

// Write implements Sink.
func (s *JSONL) Write(evs []Event) error { return Encode(s.W, evs) }

// Memory collects events in memory — the sink tests use.
type Memory struct {
	mu  sync.Mutex
	evs []Event
}

// Write implements Sink. Repeated writes replace the stored stream (a
// re-Flush is the same trace, serialized again).
func (s *Memory) Write(evs []Event) error {
	s.mu.Lock()
	s.evs = append(s.evs[:0], evs...)
	s.mu.Unlock()
	return nil
}

// Events returns the collected stream.
func (s *Memory) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.evs...)
}

// Tee fans a trace out to several sinks; the first error wins but every
// sink still sees the stream.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Write(evs []Event) error {
	var first error
	for _, s := range t {
		if err := s.Write(evs); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var (
	expvarOnce sync.Once
	expvarMap  *expvar.Map
)

// ExpvarSink publishes counter totals into the process-wide expvar map
// "wavemin" (served on /debug/vars by cmd/wavemin's -debug-addr).
// Counter names are used as-is; repeated runs accumulate.
type ExpvarSink struct{}

// Write implements Sink.
func (ExpvarSink) Write(evs []Event) error {
	m := ExpvarCounters()
	for _, ev := range evs {
		for k, v := range ev.Counters {
			m.Add(k, v)
		}
	}
	m.Add("traces_flushed", 1)
	return nil
}

// ExpvarCounters returns (publishing on first use) the "wavemin" expvar
// map the ExpvarSink feeds.
func ExpvarCounters() *expvar.Map {
	expvarOnce.Do(func() {
		expvarMap = expvar.NewMap("wavemin")
	})
	return expvarMap
}

var (
	shardMu   sync.Mutex
	shardMaps = map[int]*expvar.Map{}
)

// ExpvarShard returns (publishing on first use) the per-shard expvar map
// "wavemin_shard_<id>". The sharded serving tier's routing counters —
// forwards out/in, wrong-shard rejections, peer cache traffic — live
// here beside the process-wide "wavemin" map, so /debug/vars tells a
// fleet's nodes apart by the shard they own. Safe for concurrent use;
// repeated calls for the same shard return the same map.
func ExpvarShard(shard int) *expvar.Map {
	shardMu.Lock()
	defer shardMu.Unlock()
	m, ok := shardMaps[shard]
	if !ok {
		m = expvar.NewMap(fmt.Sprintf("wavemin_shard_%d", shard))
		shardMaps[shard] = m
	}
	return m
}

// ExpvarGauge returns (publishing into m on first use) a named
// point-in-time gauge — a settable expvar.Int, as opposed to the
// monotonic Add counters the maps otherwise hold. The sharded serving
// tier uses one per node for the live shard-map version, so /debug/vars
// shows a fleet's convergence state directly. Safe for concurrent use;
// repeated calls for the same (map, name) return the same gauge.
func ExpvarGauge(m *expvar.Map, name string) *expvar.Int {
	shardMu.Lock()
	defer shardMu.Unlock()
	if v, ok := m.Get(name).(*expvar.Int); ok {
		return v
	}
	g := new(expvar.Int)
	m.Set(name, g)
	return g
}
