// Package cts synthesizes buffered, (near-)zero-skew clock trees over
// placed sinks — the substitute for the commercial CTS (Synopsys IC
// Compiler) that produced the paper's input trees.
//
// The synthesis has three phases:
//
//  1. Topology: recursive geometric bisection of the sink set (method of
//     means and medians): split along the wider axis at the median until a
//     cluster fits one leaf buffer.
//  2. Buffering: each topology node gets a buffer sized to its downstream
//     capacitance; wires get per-µm RC parasitics over Manhattan lengths.
//  3. Balancing: bottom-up delay balancing by wire snaking — the faster
//     child branch's wire is lengthened until subtree delays match —
//     iterated globally until the skew target (paper: <10 ps) is met.
package cts

import (
	"fmt"
	"math"
	"sort"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

// Sink is a clock consumer to be driven by one leaf buffering element: a
// flip-flop group at a placement with a lumped load.
type Sink struct {
	X, Y float64 // µm
	Cap  float64 // fF
}

// Options configures synthesis. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	MaxFanout    int     // maximum children per internal node
	WireResPerUm float64 // kΩ/µm
	WireCapPerUm float64 // fF/µm
	TargetSkew   float64 // ps, balancing stops under this
	MaxBalance   int     // balancing iterations
	LeafCell     string  // library cell for leaves
	RootCell     string  // library cell for the root
}

// DefaultOptions returns the synthesis configuration used by the
// experiments: 45 nm-ish global-layer wire parasitics and the paper's
// <10 ps pre-assignment skew.
func DefaultOptions() Options {
	return Options{
		MaxFanout:    4,
		WireResPerUm: 0.0004, // 0.4 Ω/µm
		WireCapPerUm: 0.2,    // fF/µm
		TargetSkew:   8,
		MaxBalance:   12,
		LeafCell:     "BUF_X4",
		RootCell:     "BUF_X16",
	}
}

// Synthesize builds a buffered clock tree over the sinks using cells from
// lib. Every sink becomes the load of exactly one leaf node.
func Synthesize(sinks []Sink, lib *cell.Library, opt Options) (*clocktree.Tree, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("cts: no sinks")
	}
	if opt.MaxFanout < 2 {
		return nil, fmt.Errorf("cts: MaxFanout %d < 2", opt.MaxFanout)
	}
	leafCell, ok := lib.ByName(opt.LeafCell)
	if !ok {
		return nil, fmt.Errorf("cts: leaf cell %q not in library", opt.LeafCell)
	}
	rootCell, ok := lib.ByName(opt.RootCell)
	if !ok {
		return nil, fmt.Errorf("cts: root cell %q not in library", opt.RootCell)
	}

	cx, cy := centroid(sinks)
	tree := clocktree.New(rootCell, cx, cy)

	var build func(parent clocktree.NodeID, cluster []Sink)
	build = func(parent clocktree.NodeID, cluster []Sink) {
		if len(cluster) == 1 {
			s := cluster[0]
			id := addWired(tree, parent, leafCell, s.X, s.Y, opt)
			tree.SetSinkCap(id, s.Cap)
			return
		}
		parts := bisect(cluster, opt.MaxFanout)
		for _, part := range parts {
			if len(part) == 1 {
				s := part[0]
				id := addWired(tree, parent, leafCell, s.X, s.Y, opt)
				tree.SetSinkCap(id, s.Cap)
				continue
			}
			px, py := centroid(part)
			mid := addWired(tree, parent, leafCell, px, py, opt)
			build(mid, part)
		}
	}
	build(tree.Root(), sinks)

	Rebalance(tree, lib, opt)
	return tree, nil
}

// addWired adds a child with wire parasitics proportional to the Manhattan
// distance from the parent.
func addWired(t *clocktree.Tree, parent clocktree.NodeID, c *cell.Cell, x, y float64, opt Options) clocktree.NodeID {
	p := t.Node(parent)
	dist := math.Abs(p.X-x) + math.Abs(p.Y-y)
	if dist < 1 {
		dist = 1 // minimum routing detour
	}
	return t.AddChild(parent, c, x, y, dist*opt.WireResPerUm, dist*opt.WireCapPerUm)
}

func centroid(sinks []Sink) (x, y float64) {
	for _, s := range sinks {
		x += s.X
		y += s.Y
	}
	n := float64(len(sinks))
	return x / n, y / n
}

// bisect splits a cluster into up to fanout parts by recursive median
// splits along the wider axis.
func bisect(cluster []Sink, fanout int) [][]Sink {
	parts := [][]Sink{cluster}
	for len(parts) < fanout {
		// Split the largest part.
		idx, size := 0, 0
		for i, p := range parts {
			if len(p) > size {
				idx, size = i, len(p)
			}
		}
		if size < 2 {
			break
		}
		a, b := medianSplit(parts[idx])
		parts[idx] = a
		parts = append(parts, b)
	}
	return parts
}

// medianSplit divides the sinks at the median of their wider spatial axis.
func medianSplit(cluster []Sink) (a, b []Sink) {
	minX, maxX := cluster[0].X, cluster[0].X
	minY, maxY := cluster[0].Y, cluster[0].Y
	for _, s := range cluster {
		minX, maxX = math.Min(minX, s.X), math.Max(maxX, s.X)
		minY, maxY = math.Min(minY, s.Y), math.Max(maxY, s.Y)
	}
	sorted := append([]Sink(nil), cluster...)
	if maxX-minX >= maxY-minY {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	} else {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Y < sorted[j].Y })
	}
	mid := len(sorted) / 2
	return sorted[:mid], sorted[mid:]
}

// sizeBuffers picks, for every internal node, the smallest library buffer
// whose drive comfortably handles the node's downstream capacitance.
// Leaves keep opt.LeafCell (the polarity assignment re-sizes them later).
func sizeBuffers(t *clocktree.Tree, lib *cell.Library, opt Options) {
	buffers := lib.Buffers()
	sort.Slice(buffers, func(i, j int) bool { return buffers[i].Drive < buffers[j].Drive })
	if len(buffers) == 0 {
		return
	}
	tm := t.ComputeTiming(clocktree.NominalMode)
	for _, id := range t.NonLeaves() {
		load := tm.Load[id]
		chosen := buffers[len(buffers)-1]
		for _, b := range buffers {
			// A buffer of drive X handles ~4·X fF; the 1.5 margin leaves
			// headroom so later leaf re-sizing (whose input caps load this
			// buffer) shifts its delay only marginally — the robustness
			// Observation 4 presumes of "parent buffers [with] better
			// driving strength".
			if 4*b.Drive >= 1.5*load {
				chosen = b
				break
			}
		}
		t.SetCell(id, chosen)
	}
}

// Rebalance re-runs buffer sizing and skew balancing on an existing tree —
// e.g. after repeater insertion has disturbed path delays.
func Rebalance(tree *clocktree.Tree, lib *cell.Library, opt Options) {
	for iter := 0; iter < opt.MaxBalance; iter++ {
		sizeBuffers(tree, lib, opt)
		tm := tree.ComputeTiming(clocktree.NominalMode)
		if tm.Skew(tree) <= opt.TargetSkew {
			break
		}
		balanceNode(tree, tree.Root(), opt)
	}
	sizeBuffers(tree, lib, opt)
}

// nodeLoad computes a node's output load from current tree state.
func nodeLoad(t *clocktree.Tree, id clocktree.NodeID) float64 {
	n := t.Node(id)
	load := n.SinkCap
	for _, chID := range n.Children {
		ch := t.Node(chID)
		load += ch.WireCap + ch.Cell.InputCap()
	}
	return load
}

// edgeDelay is the delay contributed by a node itself: its incoming wire's
// Elmore term plus its cell delay at the current load. This matches
// clocktree.ComputeTiming's model exactly (delay is slew-independent).
func edgeDelay(t *clocktree.Tree, id clocktree.NodeID) float64 {
	n := t.Node(id)
	wire := n.WireRes * (n.WireCap/2 + n.Cell.InputCap())
	return wire + n.Cell.Delay(nodeLoad(t, id), clocktree.NominalVDD)
}

// balanceNode equalizes the subtree delays of a node's children by snaking
// the faster children's wires, bottom-up, and returns the node's own
// max root-to-leaf delay contribution (edge delay + balanced child delay).
//
// Balancing locally keeps deficits small: sibling subtrees produced by
// median bisection have near-identical structure, so snakes stay short and
// the parent-load side effects (shared by all siblings) stay second-order.
func balanceNode(t *clocktree.Tree, id clocktree.NodeID, opt Options) float64 {
	n := t.Node(id)
	if n.IsLeaf() {
		return edgeDelay(t, id)
	}
	ds := make([]float64, len(n.Children))
	var target float64
	for i, ch := range n.Children {
		ds[i] = balanceNode(t, ch, opt)
		if ds[i] > target {
			target = ds[i]
		}
	}
	for i, ch := range n.Children {
		if deficit := target - ds[i]; deficit > opt.TargetSkew/8 {
			snake(t.Node(ch), deficit, opt)
		}
	}
	return target + edgeDelay(t, id)
}

// snake lengthens a node's incoming wire so that wire's own Elmore delay
// grows by exactly extra ps. Solving r·dL·(c·dL/2 + c·L + Cin) = extra for
// dL: positive root of (r·c/2)·dL² + r·(c·L + Cin)·dL − extra = 0. The
// added wire capacitance also loads the parent — an effect shared by all
// siblings, hence skew-neutral at the parent's level.
func snake(n *clocktree.Node, extra float64, opt Options) {
	r, c := opt.WireResPerUm, opt.WireCapPerUm
	cin := n.Cell.InputCap()
	curL := n.WireRes / r
	a := r * c / 2
	b := r * (c*curL + cin)
	disc := b*b + 4*a*extra
	dL := (-b + math.Sqrt(disc)) / (2 * a)
	if dL <= 0 {
		return
	}
	n.WireRes += dL * r
	n.WireCap += dL * c
}
