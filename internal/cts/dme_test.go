package cts

import (
	"math/rand"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

func TestDMEBasics(t *testing.T) {
	lib := cell.DefaultLibrary()
	rng := rand.New(rand.NewSource(2))
	sinks := randomSinks(rng, 40, 300)
	tree, err := SynthesizeDME(sinks, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Leaves()); got != len(sinks) {
		t.Fatalf("leaves = %d, want %d", got, len(sinks))
	}
	for _, id := range tree.Leaves() {
		if tree.Node(id).SinkCap <= 0 {
			t.Fatalf("leaf %d missing sink cap", id)
		}
	}
}

func TestDMEMeetsSkewTarget(t *testing.T) {
	lib := cell.DefaultLibrary()
	opt := DefaultOptions()
	for _, n := range []int{3, 10, 33, 120} {
		rng := rand.New(rand.NewSource(int64(n * 7)))
		sinks := randomSinks(rng, n, 400)
		tree, err := SynthesizeDME(sinks, lib, opt)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		tm := tree.ComputeTiming(clocktree.NominalMode)
		if s := tm.Skew(tree); s > opt.TargetSkew {
			t.Errorf("n=%d: skew %g > %g", n, s, opt.TargetSkew)
		}
	}
}

func TestDMESingleSink(t *testing.T) {
	lib := cell.DefaultLibrary()
	tree, err := SynthesizeDME([]Sink{{X: 20, Y: 20, Cap: 6}}, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves()) != 1 {
		t.Fatal("single-sink DME broken")
	}
}

func TestDMEErrors(t *testing.T) {
	lib := cell.DefaultLibrary()
	if _, err := SynthesizeDME(nil, lib, DefaultOptions()); err == nil {
		t.Error("no sinks should error")
	}
	bad := DefaultOptions()
	bad.LeafCell = "nope"
	if _, err := SynthesizeDME([]Sink{{}}, lib, bad); err == nil {
		t.Error("unknown leaf cell should error")
	}
	bad2 := DefaultOptions()
	bad2.RootCell = "nope"
	if _, err := SynthesizeDME([]Sink{{}}, lib, bad2); err == nil {
		t.Error("unknown root cell should error")
	}
}

func TestDMEUsesLessWireThanBinaryBisection(t *testing.T) {
	// The classic DME result: for *binary* topologies, deferred merging
	// spends far less wire than top-down bisection at the same skew
	// target. (The default 4-ary star topology is a different trade: fewer
	// levels, so less total wire but more load per buffer.) Compare
	// against bisection restricted to fanout 2.
	lib := cell.DefaultLibrary()
	opt := DefaultOptions()
	binary := DefaultOptions()
	binary.MaxFanout = 2
	var dmeTotal, bisTotal float64
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sinks := randomSinks(rng, 60, 400)
		dme, err := SynthesizeDME(sinks, lib, opt)
		if err != nil {
			t.Fatal(err)
		}
		bis, err := Synthesize(sinks, lib, binary)
		if err != nil {
			t.Fatal(err)
		}
		dmeTotal += TotalWireCap(dme)
		bisTotal += TotalWireCap(bis)
	}
	if dmeTotal >= 0.7*bisTotal {
		t.Fatalf("DME wire %g should clearly beat binary bisection %g", dmeTotal, bisTotal)
	}
}

func TestDMEDeterministic(t *testing.T) {
	lib := cell.DefaultLibrary()
	rng := rand.New(rand.NewSource(9))
	sinks := randomSinks(rng, 30, 200)
	a, err := SynthesizeDME(sinks, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynthesizeDME(sinks, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("node counts differ")
	}
	for i := 0; i < a.Len(); i++ {
		na, nb := a.Node(clocktree.NodeID(i)), b.Node(clocktree.NodeID(i))
		if na.X != nb.X || na.WireRes != nb.WireRes || na.Cell.Name != nb.Cell.Name {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestMergePairBalancesDelays(t *testing.T) {
	opt := DefaultOptions()
	a := &mergeNode{x: 0, y: 0, cap: 10, delay: 5}
	b := &mergeNode{x: 100, y: 0, cap: 20, delay: 0}
	m := mergePair(a, b, opt)
	r, c := opt.WireResPerUm, opt.WireCapPerUm
	dA := a.delay + r*a.wireLen*(c*a.wireLen/2+a.cap)
	dB := b.delay + r*b.wireLen*(c*b.wireLen/2+b.cap)
	if diff := dA - dB; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("merge not balanced: %g vs %g", dA, dB)
	}
	if m.cap <= a.cap+b.cap {
		t.Fatal("merge cap must include the wire")
	}
}

func TestMergePairElongatesWhenUnbalanced(t *testing.T) {
	opt := DefaultOptions()
	// a is far slower than any point on the direct wire can compensate.
	a := &mergeNode{x: 0, y: 0, cap: 10, delay: 500}
	b := &mergeNode{x: 10, y: 0, cap: 10, delay: 0}
	m := mergePair(a, b, opt)
	if b.wireLen <= 10 {
		t.Fatalf("expected snaked wire > 10, got %g", b.wireLen)
	}
	if a.wireLen != 0 {
		t.Fatalf("slow side should get zero wire, got %g", a.wireLen)
	}
	r, c := opt.WireResPerUm, opt.WireCapPerUm
	dB := b.delay + r*b.wireLen*(c*b.wireLen/2+b.cap)
	if diff := dB - a.delay; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("elongated side unbalanced: %g vs %g", dB, a.delay)
	}
	_ = m
}
