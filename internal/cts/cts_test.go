package cts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

func randomSinks(rng *rand.Rand, n int, die float64) []Sink {
	sinks := make([]Sink, n)
	for i := range sinks {
		sinks[i] = Sink{
			X:   rng.Float64() * die,
			Y:   rng.Float64() * die,
			Cap: 4 + rng.Float64()*8,
		}
	}
	return sinks
}

func TestSynthesizeBasics(t *testing.T) {
	lib := cell.DefaultLibrary()
	rng := rand.New(rand.NewSource(1))
	sinks := randomSinks(rng, 40, 300)
	tree, err := Synthesize(sinks, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Leaves()); got != len(sinks) {
		t.Fatalf("leaves = %d, want %d", got, len(sinks))
	}
	// Every leaf carries its sink load.
	for _, id := range tree.Leaves() {
		if tree.Node(id).SinkCap <= 0 {
			t.Fatalf("leaf %d missing sink cap", id)
		}
	}
}

func TestSynthesizeMeetsSkewTarget(t *testing.T) {
	lib := cell.DefaultLibrary()
	opt := DefaultOptions()
	for _, n := range []int{5, 17, 64, 150} {
		rng := rand.New(rand.NewSource(int64(n)))
		sinks := randomSinks(rng, n, 400)
		tree, err := Synthesize(sinks, lib, opt)
		if err != nil {
			t.Fatal(err)
		}
		tm := tree.ComputeTiming(clocktree.NominalMode)
		if s := tm.Skew(tree); s > opt.TargetSkew {
			t.Errorf("n=%d: skew %g > target %g", n, s, opt.TargetSkew)
		}
	}
}

func TestSynthesizeSingleSink(t *testing.T) {
	lib := cell.DefaultLibrary()
	tree, err := Synthesize([]Sink{{X: 10, Y: 10, Cap: 5}}, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Leaves()) != 1 || tree.Len() != 2 {
		t.Fatalf("single sink: %d nodes, %d leaves", tree.Len(), len(tree.Leaves()))
	}
}

func TestSynthesizeErrors(t *testing.T) {
	lib := cell.DefaultLibrary()
	if _, err := Synthesize(nil, lib, DefaultOptions()); err == nil {
		t.Error("no sinks should error")
	}
	bad := DefaultOptions()
	bad.MaxFanout = 1
	if _, err := Synthesize([]Sink{{}}, lib, bad); err == nil {
		t.Error("fanout 1 should error")
	}
	bad2 := DefaultOptions()
	bad2.LeafCell = "nope"
	if _, err := Synthesize([]Sink{{}}, lib, bad2); err == nil {
		t.Error("unknown leaf cell should error")
	}
	bad3 := DefaultOptions()
	bad3.RootCell = "nope"
	if _, err := Synthesize([]Sink{{}}, lib, bad3); err == nil {
		t.Error("unknown root cell should error")
	}
}

func TestFanoutRespected(t *testing.T) {
	lib := cell.DefaultLibrary()
	opt := DefaultOptions()
	rng := rand.New(rand.NewSource(3))
	tree, err := Synthesize(randomSinks(rng, 100, 500), lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(func(n *clocktree.Node) {
		if len(n.Children) > opt.MaxFanout {
			t.Errorf("node %d has fanout %d > %d", n.ID, len(n.Children), opt.MaxFanout)
		}
	})
}

func TestInternalBuffersSizedToLoad(t *testing.T) {
	lib := cell.DefaultLibrary()
	rng := rand.New(rand.NewSource(4))
	tree, err := Synthesize(randomSinks(rng, 60, 400), lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tm := tree.ComputeTiming(clocktree.NominalMode)
	for _, id := range tree.NonLeaves() {
		n := tree.Node(id)
		if n.Cell.Kind != cell.Buf {
			t.Fatalf("internal node %d is %v, want buffer", id, n.Cell.Kind)
		}
		// No internal buffer should be hopelessly overloaded (unless it is
		// already the largest in the library).
		if tm.Load[id] > 4*n.Cell.Drive && n.Cell.Drive < 32 {
			t.Errorf("node %d: load %.1f fF on %s", id, tm.Load[id], n.Cell.Name)
		}
	}
}

func TestMedianSplitBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sinks := randomSinks(rng, 31, 100)
	a, b := medianSplit(sinks)
	if len(a)+len(b) != 31 {
		t.Fatal("split lost sinks")
	}
	if math.Abs(float64(len(a)-len(b))) > 1 {
		t.Fatalf("unbalanced split: %d vs %d", len(a), len(b))
	}
}

func TestSnakeAddsRequestedDelay(t *testing.T) {
	lib := cell.DefaultLibrary()
	tree := clocktree.New(lib.MustByName("BUF_X16"), 0, 0)
	leaf := tree.AddChild(tree.Root(), lib.MustByName("BUF_X4"), 100, 0, 0.04, 20)
	tree.SetSinkCap(leaf, 8)
	opt := DefaultOptions()
	wireDelay := func() float64 {
		n := tree.Node(leaf)
		return n.WireRes * (n.WireCap/2 + n.Cell.InputCap())
	}
	before := wireDelay()
	snake(tree.Node(leaf), 15, opt)
	got := wireDelay() - before
	// The quadratic solves the wire's own Elmore contribution exactly.
	if math.Abs(got-15) > 1e-6 {
		t.Fatalf("snake added %g ps to the wire delay, want 15", got)
	}
}

// Property: synthesis is deterministic for a fixed sink list.
func TestPropertyDeterministic(t *testing.T) {
	lib := cell.DefaultLibrary()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sinks := randomSinks(rng, 5+rng.Intn(50), 300)
		t1, err1 := Synthesize(sinks, lib, DefaultOptions())
		t2, err2 := Synthesize(sinks, lib, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		if t1.Len() != t2.Len() {
			return false
		}
		for i := 0; i < t1.Len(); i++ {
			a, b := t1.Node(clocktree.NodeID(i)), t2.Node(clocktree.NodeID(i))
			if a.Cell.Name != b.Cell.Name || a.WireRes != b.WireRes || a.X != b.X {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: skew target met across random instances.
func TestPropertySkewMet(t *testing.T) {
	lib := cell.DefaultLibrary()
	opt := DefaultOptions()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sinks := randomSinks(rng, 3+rng.Intn(80), 100+rng.Float64()*500)
		tree, err := Synthesize(sinks, lib, opt)
		if err != nil {
			return false
		}
		return tree.ComputeTiming(clocktree.NominalMode).Skew(tree) <= opt.TargetSkew+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
