package cts

import (
	"fmt"
	"math"
	"sort"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

// SynthesizeDME builds the clock tree with the classic exact zero-skew
// method (Tsay-style deferred merging): sinks are paired bottom-up by
// nearest neighbour, and every pair is merged at the tapping point along
// the connecting path where the two subtrees' Elmore wire delays balance
// exactly — elongating (snaking) the shorter side when no interior point
// balances. Buffers are then inserted top-down whenever the accumulated
// downstream capacitance exceeds a drive threshold, and the final tree is
// re-balanced (buffer insertion perturbs the pure-wire balance).
//
// Compared to Synthesize's recursive bisection, DME spends less wire for
// the same skew target — the classic result, verified in the tests.
func SynthesizeDME(sinks []Sink, lib *cell.Library, opt Options) (*clocktree.Tree, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("cts: no sinks")
	}
	leafCell, ok := lib.ByName(opt.LeafCell)
	if !ok {
		return nil, fmt.Errorf("cts: leaf cell %q not in library", opt.LeafCell)
	}
	rootCell, ok := lib.ByName(opt.RootCell)
	if !ok {
		return nil, fmt.Errorf("cts: root cell %q not in library", opt.RootCell)
	}

	// Bottom-up zero-skew merging of abstract subtrees.
	nodes := make([]*mergeNode, len(sinks))
	for i, s := range sinks {
		s := s
		nodes[i] = &mergeNode{x: s.X, y: s.Y, cap: s.Cap + leafCell.InputCap(), sink: &s}
	}
	for len(nodes) > 1 {
		nodes = mergeLevel(nodes, opt)
	}
	top := nodes[0]

	// Emit the buffered clocktree.
	tree := clocktree.New(rootCell, top.x, top.y)
	// The drive threshold: a buffer handles about 4 fF per unit drive;
	// insert the next buffer before the accumulated subtree cap exceeds
	// what a mid-size buffer handles.
	const capPerBuffer = 40.0
	var emit func(parent clocktree.NodeID, m *mergeNode, accR, accC float64)
	emit = func(parent clocktree.NodeID, m *mergeNode, accR, accC float64) {
		accR += m.wireLen * opt.WireResPerUm
		accC += m.wireLen * opt.WireCapPerUm
		if m.sink != nil {
			id := tree.AddChild(parent, leafCell, m.x, m.y, math.Max(accR, 1e-6), accC)
			tree.SetSinkCap(id, m.sink.Cap)
			return
		}
		if m.cap > capPerBuffer {
			// The subtree is too big to drive as bare wire: buffer here;
			// children start fresh wire accumulation.
			id := tree.AddChild(parent, leafCell, m.x, m.y, math.Max(accR, 1e-6), accC)
			emit(id, m.left, 0, 0)
			emit(id, m.right, 0, 0)
			return
		}
		// Pass-through Steiner point: keep accumulating wire.
		emit(parent, m.left, accR, accC)
		emit(parent, m.right, accR, accC)
	}
	if top.sink != nil { // single sink
		id := tree.AddChild(tree.Root(), leafCell, top.x, top.y, 1e-6, 0)
		tree.SetSinkCap(id, top.sink.Cap)
	} else {
		emit(tree.Root(), top.left, 0, 0)
		emit(tree.Root(), top.right, 0, 0)
	}

	Rebalance(tree, lib, opt)
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	return tree, nil
}

// mergeNode is an abstract subtree during deferred merging.
type mergeNode struct {
	x, y    float64
	cap     float64 // downstream capacitance at this point, fF
	delay   float64 // balanced wire delay from here to every sink, ps
	wireLen float64 // wire from the parent's merge point (incl. snaking), µm
	left    *mergeNode
	right   *mergeNode
	sink    *Sink
}

// mergeLevel pairs nodes by greedy nearest neighbour and merges each pair
// with an exact zero-skew tapping point. Odd node carries over.
func mergeLevel(nodes []*mergeNode, opt Options) []*mergeNode {
	// Deterministic order: sort by (x, y).
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].x != nodes[j].x {
			return nodes[i].x < nodes[j].x
		}
		return nodes[i].y < nodes[j].y
	})
	used := make([]bool, len(nodes))
	var next []*mergeNode
	for i := range nodes {
		if used[i] {
			continue
		}
		used[i] = true
		best, bestD := -1, math.Inf(1)
		for j := i + 1; j < len(nodes); j++ {
			if used[j] {
				continue
			}
			d := manhattan(nodes[i], nodes[j])
			if d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			next = append(next, nodes[i]) // odd one out
			continue
		}
		used[best] = true
		next = append(next, mergePair(nodes[i], nodes[best], opt))
	}
	return next
}

func manhattan(a, b *mergeNode) float64 {
	return math.Abs(a.x-b.x) + math.Abs(a.y-b.y)
}

// mergePair computes the exact zero-skew tapping point between subtrees a
// and b: the split x of the connecting wire of length L satisfying
//
//	delay_a + r·x·(c·x/2 + cap_a) = delay_b + r·(L−x)·(c·(L−x)/2 + cap_b)
//
// If no interior split balances, the wire on the faster side is elongated.
func mergePair(a, b *mergeNode, opt Options) *mergeNode {
	r, c := opt.WireResPerUm, opt.WireCapPerUm
	L := math.Max(manhattan(a, b), 1)

	da := func(x float64) float64 { return a.delay + r*x*(c*x/2+a.cap) }
	db := func(x float64) float64 { return b.delay + r*(L-x)*(c*(L-x)/2+b.cap) }

	var x float64
	switch {
	case da(0) > db(0):
		// a is slow even with zero wire: tap at a, elongate (snake) b's
		// wire beyond L until its delay matches.
		x = 0
		L = math.Max(solveWireFor(b, a.delay-b.delay, r, c), L)
	case db(L) > da(L):
		// b too slow even taking the whole wire: symmetric case — swap
		// roles so a is the slow, zero-wire side.
		a, b = b, a
		x = 0
		L = math.Max(solveWireFor(b, a.delay-b.delay, r, c), manhattan(a, b))
	default:
		// Interior balance point: bisection on the monotone difference.
		lo, hi := 0.0, L
		for it := 0; it < 60; it++ {
			mid := (lo + hi) / 2
			if da(mid) < db(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		x = (lo + hi) / 2
	}

	// Tapping point located x along the (abstract Manhattan) path a→b.
	frac := x / L
	if frac > 1 {
		frac = 1
	}
	m := &mergeNode{
		x:    a.x + (b.x-a.x)*frac,
		y:    a.y + (b.y-a.y)*frac,
		left: a, right: b,
	}
	a.wireLen = x
	b.wireLen = L - x
	m.cap = a.cap + b.cap + c*L
	m.delay = a.delay + r*x*(c*x/2+a.cap)
	return m
}

// solveWireFor returns the wire length e whose Elmore delay into the given
// subtree equals target: r·e·(c·e/2 + cap) = target.
func solveWireFor(n *mergeNode, target, r, c float64) float64 {
	if target <= 0 {
		return 0
	}
	aa := r * c / 2
	bb := r * n.cap
	return (-bb + math.Sqrt(bb*bb+4*aa*target)) / (2 * aa)
}

// TotalWireCap sums every wire's capacitance — proportional to total
// wirelength, the CTS cost metric the DME construction minimizes.
func TotalWireCap(t *clocktree.Tree) float64 {
	var sum float64
	t.Walk(func(n *clocktree.Node) { sum += n.WireCap })
	return sum
}
