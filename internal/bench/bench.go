// Package bench generates the synthetic stand-ins for the paper's
// benchmark circuits (ISCAS'89 netlists synthesized with Design Compiler +
// IC Compiler, and ISPD'09 CTS contest designs).
//
// The polarity-assignment evaluation only depends on a handful of
// benchmark properties: the number of leaf buffering elements |L|, the
// total buffering-element count n (which sets the non-leaf noise
// baseline), the spatial distribution of leaves (which sets the zone
// occupancy — 4.3 leaves/zone on average for ISCAS, 4.9 for ISPD, 7.1 for
// s35932 at 50×50 µm zones), and the sink loads. Each named Spec
// reproduces the published values of these properties; sink placements are
// drawn deterministically from the circuit name so every run sees the same
// "netlist".
package bench

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
)

// Spec describes one benchmark circuit.
type Spec struct {
	Name       string
	NumLeaves  int     // the paper's |L|
	TargetN    int     // the paper's n (total buffering elements)
	DieW, DieH float64 // µm
	MinSinkCap float64 // fF
	MaxSinkCap float64 // fF
	Clustered  bool    // ISPD designs cluster sinks more tightly
}

// Specs returns the seven benchmark circuits of the paper's Tables V–VII
// with their published n and |L| (Table V) and die sizes chosen to
// reproduce the reported zone occupancies at 50×50 µm zones.
func Specs() []Spec {
	return []Spec{
		// ISCAS'89 — ≈4.3 leaves/zone on average; s35932 ≈7.1.
		{Name: "s13207", NumLeaves: 50, TargetN: 58, DieW: 170, DieH: 170, MinSinkCap: 4, MaxSinkCap: 12},
		{Name: "s15850", NumLeaves: 19, TargetN: 22, DieW: 105, DieH: 105, MinSinkCap: 4, MaxSinkCap: 12},
		{Name: "s35932", NumLeaves: 246, TargetN: 323, DieW: 295, DieH: 295, MinSinkCap: 4, MaxSinkCap: 12},
		{Name: "s38417", NumLeaves: 228, TargetN: 304, DieW: 365, DieH: 365, MinSinkCap: 4, MaxSinkCap: 12},
		{Name: "s38584", NumLeaves: 169, TargetN: 210, DieW: 315, DieH: 315, MinSinkCap: 4, MaxSinkCap: 12},
		// ISPD'09 — ≈4.9 leaves/zone; fewer leaves, many repeaters (large n).
		{Name: "ispd09f31", NumLeaves: 111, TargetN: 328, DieW: 240, DieH: 240, MinSinkCap: 8, MaxSinkCap: 20, Clustered: true},
		{Name: "ispd09f34", NumLeaves: 69, TargetN: 210, DieW: 190, DieH: 190, MinSinkCap: 8, MaxSinkCap: 20, Clustered: true},
	}
}

// SpecByName finds a benchmark spec by name.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// seed derives a deterministic RNG seed from the circuit name.
func (s Spec) seed() int64 {
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	return int64(h.Sum64())
}

// Rand returns the circuit's deterministic random source. Each call
// returns a fresh generator at the same state.
func (s Spec) Rand() *rand.Rand { return rand.New(rand.NewSource(s.seed())) }

// Sinks generates the circuit's leaf placements and loads.
func (s Spec) Sinks() []cts.Sink {
	rng := s.Rand()
	sinks := make([]cts.Sink, s.NumLeaves)
	if s.Clustered {
		// ISPD-style: a few dense macro regions plus scattered fill.
		nClusters := 3 + rng.Intn(3)
		centers := make([][2]float64, nClusters)
		for i := range centers {
			centers[i] = [2]float64{
				s.DieW * (0.15 + 0.7*rng.Float64()),
				s.DieH * (0.15 + 0.7*rng.Float64()),
			}
		}
		for i := range sinks {
			if rng.Float64() < 0.75 {
				c := centers[rng.Intn(nClusters)]
				sinks[i].X = clamp(c[0]+rng.NormFloat64()*s.DieW/12, 0, s.DieW)
				sinks[i].Y = clamp(c[1]+rng.NormFloat64()*s.DieH/12, 0, s.DieH)
			} else {
				sinks[i].X = rng.Float64() * s.DieW
				sinks[i].Y = rng.Float64() * s.DieH
			}
			sinks[i].Cap = s.MinSinkCap + rng.Float64()*(s.MaxSinkCap-s.MinSinkCap)
		}
		return sinks
	}
	for i := range sinks {
		sinks[i] = cts.Sink{
			X:   rng.Float64() * s.DieW,
			Y:   rng.Float64() * s.DieH,
			Cap: s.MinSinkCap + rng.Float64()*(s.MaxSinkCap-s.MinSinkCap),
		}
	}
	return sinks
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }

// Synthesize builds the circuit's buffered clock tree: CTS over the
// generated sinks, then repeater padding toward the published n, then a
// final rebalance. The realized node count is within a few cells of
// TargetN (repeaters are inserted level-by-level to preserve balance).
func (s Spec) Synthesize(lib *cell.Library, opt cts.Options) (*clocktree.Tree, error) {
	tree, err := cts.Synthesize(s.Sinks(), lib, opt)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", s.Name, err)
	}
	padRepeaters(tree, lib, s.TargetN)
	cts.Rebalance(tree, lib, opt)
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("bench %s: %w", s.Name, err)
	}
	return tree, nil
}

// padRepeaters inserts buffer repeaters into the longest wires until the
// tree has ≈ target nodes. To preserve balance, the wire set is processed
// in rounds: within a round, the wires of every child of one tree level are
// split together.
func padRepeaters(tree *clocktree.Tree, lib *cell.Library, target int) {
	rep, ok := lib.ByName("BUF_X8")
	if !ok {
		cells := lib.Buffers()
		if len(cells) == 0 {
			return
		}
		rep = cells[len(cells)/2]
	}
	for rounds := 0; tree.Len() < target && rounds < 8; rounds++ {
		// Group non-root nodes by depth, split the level whose splitting
		// gets closest to the target without overshooting wildly.
		byDepth := make(map[int][]clocktree.NodeID)
		var depthOf func(clocktree.NodeID) int
		depthOf = func(id clocktree.NodeID) int {
			d := 0
			for cur := id; tree.Node(cur).Parent != clocktree.NoNode; cur = tree.Node(cur).Parent {
				d++
			}
			return d
		}
		maxDepth := 0
		for i := 0; i < tree.Len(); i++ {
			id := clocktree.NodeID(i)
			if tree.Node(id).Parent == clocktree.NoNode {
				continue
			}
			d := depthOf(id)
			byDepth[d] = append(byDepth[d], id)
			if d > maxDepth {
				maxDepth = d
			}
		}
		need := target - tree.Len()
		// Prefer the deepest level that fits entirely; otherwise split the
		// `need` longest wires of the shallowest level (slight imbalance,
		// fixed by the caller's rebalance).
		chosen := -1
		for d := maxDepth; d >= 1; d-- {
			if len(byDepth[d]) <= need {
				chosen = d
				break
			}
		}
		if chosen >= 0 {
			for _, id := range byDepth[chosen] {
				tree.SplitWire(id, rep)
			}
			continue
		}
		// No level fits: split the longest wires individually.
		var all []clocktree.NodeID
		for _, ids := range byDepth {
			all = append(all, ids...)
		}
		sort.Slice(all, func(i, j int) bool {
			return tree.Node(all[i]).WireRes > tree.Node(all[j]).WireRes
		})
		if need > len(all) {
			need = len(all)
		}
		for _, id := range all[:need] {
			tree.SplitWire(id, rep)
		}
	}
}

// AssignDomains partitions the die into a numDomains-cell grid of voltage
// islands and assigns every tree node to the island containing it. Returns
// the domain names. Used by the multi-mode experiments (§VII-E: "four to
// ten power domains").
func AssignDomains(tree *clocktree.Tree, dieW, dieH float64, numDomains int) []string {
	cols := int(math.Ceil(math.Sqrt(float64(numDomains))))
	rows := (numDomains + cols - 1) / cols
	names := make([]string, 0, numDomains)
	for i := 0; i < numDomains; i++ {
		names = append(names, fmt.Sprintf("pd%d", i))
	}
	tree.Walk(func(n *clocktree.Node) {
		cx := int(n.X / (dieW/float64(cols) + 1e-9))
		cy := int(n.Y / (dieH/float64(rows) + 1e-9))
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		idx := cy*cols + cx
		if idx >= numDomains {
			idx = numDomains - 1
		}
		n.Domain = names[idx]
	})
	return names
}

// Modes builds numModes power modes over the given domains: mode 0 runs
// everything at 1.1 V; each further mode drops a deterministic subset of
// domains to 0.9 V (each domain has exactly the two operating points of
// the paper's §VII-E).
func (s Spec) Modes(domains []string, numModes int) []clocktree.Mode {
	rng := rand.New(rand.NewSource(s.seed() ^ 0x5eed))
	modes := make([]clocktree.Mode, numModes)
	modes[0] = clocktree.Mode{Name: "M1", Supplies: map[string]float64{}}
	for _, d := range domains {
		modes[0].Supplies[d] = 1.1
	}
	for i := 1; i < numModes; i++ {
		sup := make(map[string]float64, len(domains))
		anyLow := false
		for _, d := range domains {
			if rng.Float64() < 0.5 {
				sup[d] = 0.9
				anyLow = true
			} else {
				sup[d] = 1.1
			}
		}
		if !anyLow { // guarantee modes differ from M1
			sup[domains[rng.Intn(len(domains))]] = 0.9
		}
		modes[i] = clocktree.Mode{Name: fmt.Sprintf("M%d", i+1), Supplies: sup}
	}
	return modes
}
