package bench

import (
	"math"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
)

func TestSpecsMatchPaperTableV(t *testing.T) {
	want := map[string][2]int{ // |L|, n
		"s13207": {50, 58}, "s15850": {19, 22}, "s35932": {246, 323},
		"s38417": {228, 304}, "s38584": {169, 210},
		"ispd09f31": {111, 328}, "ispd09f34": {69, 210},
	}
	specs := Specs()
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected spec %s", s.Name)
			continue
		}
		if s.NumLeaves != w[0] || s.TargetN != w[1] {
			t.Errorf("%s: |L|=%d n=%d, want %d/%d", s.Name, s.NumLeaves, s.TargetN, w[0], w[1])
		}
	}
}

func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName("s35932"); !ok {
		t.Fatal("s35932 missing")
	}
	if _, ok := SpecByName("bogus"); ok {
		t.Fatal("phantom spec")
	}
}

func TestSinksDeterministic(t *testing.T) {
	s, _ := SpecByName("s13207")
	a := s.Sinks()
	b := s.Sinks()
	if len(a) != s.NumLeaves {
		t.Fatalf("sink count %d, want %d", len(a), s.NumLeaves)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sink %d differs across generations", i)
		}
	}
}

func TestSinksWithinDie(t *testing.T) {
	for _, s := range Specs() {
		for i, sk := range s.Sinks() {
			if sk.X < 0 || sk.X > s.DieW || sk.Y < 0 || sk.Y > s.DieH {
				t.Errorf("%s sink %d at (%g,%g) outside %gx%g", s.Name, i, sk.X, sk.Y, s.DieW, s.DieH)
			}
			if sk.Cap < s.MinSinkCap || sk.Cap > s.MaxSinkCap {
				t.Errorf("%s sink %d cap %g outside [%g,%g]", s.Name, i, sk.Cap, s.MinSinkCap, s.MaxSinkCap)
			}
		}
	}
}

func TestSynthesizeMatchesPublishedCounts(t *testing.T) {
	lib := cell.DefaultLibrary()
	opt := cts.DefaultOptions()
	for _, s := range Specs() {
		tree, err := s.Synthesize(lib, opt)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if got := len(tree.Leaves()); got != s.NumLeaves {
			t.Errorf("%s: %d leaves, want %d", s.Name, got, s.NumLeaves)
		}
		// n is approximate (repeater padding is quantized); within 25 %.
		if got := tree.Len(); math.Abs(float64(got-s.TargetN)) > 0.25*float64(s.TargetN) {
			t.Errorf("%s: n = %d, want ≈%d", s.Name, got, s.TargetN)
		}
		// Pre-assignment skew must be a "zero skew tree" (paper: <10 ps).
		tm := tree.ComputeTiming(clocktree.NominalMode)
		if sk := tm.Skew(tree); sk > 10 {
			t.Errorf("%s: synthesized skew %g ps", s.Name, sk)
		}
	}
}

func TestZoneOccupancy(t *testing.T) {
	// The paper reports average leaves/zone at 50 µm zones: ≈4.3 for
	// ISCAS'89, ≈4.9 for ISPD'09, ≈7.1 for s35932. Verify we land near
	// those (±40 %: placement is random and zones are only partly filled).
	check := func(name string, want float64) {
		s, _ := SpecByName(name)
		sinks := s.Sinks()
		occupied := make(map[[2]int]int)
		for _, sk := range sinks {
			occupied[[2]int{int(sk.X / 50), int(sk.Y / 50)}]++
		}
		avg := float64(len(sinks)) / float64(len(occupied))
		if avg < want*0.6 || avg > want*1.4 {
			t.Errorf("%s: %.2f leaves/zone, want ≈%.1f", name, avg, want)
		}
	}
	check("s13207", 4.3)
	check("s38584", 4.3)
	check("s35932", 7.1)
	check("ispd09f31", 4.9)
}

func TestAssignDomains(t *testing.T) {
	lib := cell.DefaultLibrary()
	s, _ := SpecByName("s15850")
	tree, err := s.Synthesize(lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	domains := AssignDomains(tree, s.DieW, s.DieH, 4)
	if len(domains) != 4 {
		t.Fatalf("domains = %v", domains)
	}
	seen := make(map[string]bool)
	tree.Walk(func(n *clocktree.Node) { seen[n.Domain] = true })
	if len(seen) < 2 {
		t.Fatalf("all nodes in one domain: %v", seen)
	}
	for d := range seen {
		found := false
		for _, name := range domains {
			if name == d {
				found = true
			}
		}
		if !found {
			t.Errorf("node domain %q not in declared set", d)
		}
	}
}

func TestModes(t *testing.T) {
	s, _ := SpecByName("s13207")
	domains := []string{"pd0", "pd1", "pd2", "pd3"}
	modes := s.Modes(domains, 4)
	if len(modes) != 4 {
		t.Fatalf("%d modes", len(modes))
	}
	// M1 is all-nominal.
	for _, d := range domains {
		if modes[0].VDDOf(d) != 1.1 {
			t.Fatalf("M1 domain %s at %g", d, modes[0].VDDOf(d))
		}
	}
	// Every later mode differs from M1 and uses only {0.9, 1.1}.
	for _, m := range modes[1:] {
		low := 0
		for _, d := range domains {
			v := m.VDDOf(d)
			if v != 0.9 && v != 1.1 {
				t.Fatalf("mode %s domain %s at %g", m.Name, d, v)
			}
			if v == 0.9 {
				low++
			}
		}
		if low == 0 {
			t.Fatalf("mode %s identical to M1", m.Name)
		}
	}
	// Determinism.
	again := s.Modes(domains, 4)
	for i := range modes {
		for _, d := range domains {
			if modes[i].VDDOf(d) != again[i].VDDOf(d) {
				t.Fatal("modes not deterministic")
			}
		}
	}
}
