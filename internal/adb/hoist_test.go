package adb

import (
	"context"
	"testing"

	"wavemin/internal/cell"
)

func TestInsertHoistsToNonLeafWhenBankTooSmall(t *testing.T) {
	tree, modes, _ := islandTree(t, 12)
	kappa := 6.0
	// A 9 ps bank cannot absorb the island's ~14 ps shift at any single
	// leaf; the insertion must hoist part of the delay into non-leaf ADBs.
	small := cell.MakeADB(16, 3, 3)
	res, err := Insert(context.Background(), tree, small, modes, kappa)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.MeetsSkew(kappa, modes) {
		for _, m := range modes {
			t.Logf("mode %s skew %g", m.Name, tree.ComputeTiming(m).Skew(tree))
		}
		t.Fatal("skew still violated after hoisted insertion")
	}
	// At least one inserted ADB must sit at a non-leaf position.
	nonLeaf := 0
	for _, id := range res.Inserted {
		if !tree.Node(id).IsLeaf() {
			nonLeaf++
		}
	}
	if nonLeaf == 0 {
		t.Fatalf("expected non-leaf ADBs among %d inserted", len(res.Inserted))
	}
	adbs, adis := CountAdjustables(tree)
	if adbs != len(res.Inserted) || adis != 0 {
		t.Fatalf("CountAdjustables %d/%d vs inserted %d", adbs, adis, len(res.Inserted))
	}
}

func TestHoistRespectsOnTimeSiblings(t *testing.T) {
	// A parent whose leaf children include an on-time leaf must not be
	// hoisted; verify windows still hold everywhere after insertion.
	tree, modes, lib := islandTree(t, 12)
	kappa := 6.0
	if _, err := Insert(context.Background(), tree, lib.MustByName("ADB_X8"), modes, kappa); err != nil {
		t.Fatal(err)
	}
	for _, m := range modes {
		tm := tree.ComputeTiming(m)
		if s := tm.Skew(tree); s > kappa+1e-9 {
			t.Fatalf("mode %s skew %g", m.Name, s)
		}
	}
}
