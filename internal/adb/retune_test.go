package adb

import (
	"context"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

func TestRetuneFixesDriftedBanks(t *testing.T) {
	tree, modes, lib := islandTree(t, 12)
	kappa := 6.0
	if _, err := Insert(context.Background(), tree, lib.MustByName("ADB_X8"), modes, kappa); err != nil {
		t.Fatal(err)
	}
	// Sabotage the bank settings.
	for _, leaf := range Sites(tree) {
		tree.SetAdjustSteps(leaf, "M2", 0)
	}
	if tree.MeetsSkew(kappa, modes) {
		t.Fatal("sabotage should have broken the skew")
	}
	worst, err := Retune(context.Background(), tree, modes, kappa)
	if err != nil {
		t.Fatal(err)
	}
	if worst > kappa+1e-9 {
		t.Fatalf("retune left worst skew %g > κ=%g", worst, kappa)
	}
	if !tree.MeetsSkew(kappa, modes) {
		t.Fatal("tree still violates after retune")
	}
}

func TestRetuneNoAdjustablesReportsResidual(t *testing.T) {
	// A plain tree with drift: retune cannot move anything, must report
	// the residual skew without erroring.
	tree, modes, _ := islandTree(t, 12)
	worstBefore, _ := tree.SkewAcrossModes(modes)
	worst, err := Retune(context.Background(), tree, modes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if worst < worstBefore-1e-9 {
		t.Fatalf("retune claims %g, actual %g", worst, worstBefore)
	}
}

func TestRetuneValidatesKappa(t *testing.T) {
	tree, modes, _ := islandTree(t, 4)
	if _, err := Retune(context.Background(), tree, modes, 0); err == nil {
		t.Fatal("zero kappa should error")
	}
}

func TestRetuneBankRangeExceeded(t *testing.T) {
	// An adjustable leaf with a 1-step bank placed very early: retune must
	// error when the window is unreachable.
	lib := cell.DefaultLibrary()
	tiny := cell.MakeADB(8, 1, 1)
	tree := clocktree.New(lib.MustByName("BUF_X16"), 0, 0)
	early := tree.AddChild(tree.Root(), tiny, 10, 0, 0.01, 1)
	tree.SetSinkCap(early, 8)
	late := tree.AddChild(tree.Root(), lib.MustByName("BUF_X8"), 20, 0, 2.0, 200)
	tree.SetSinkCap(late, 8)
	modes := []clocktree.Mode{clocktree.NominalMode}
	if tree.ComputeTiming(modes[0]).Skew(tree) < 5 {
		t.Fatal("fixture premise: need large skew")
	}
	if _, err := Retune(context.Background(), tree, modes, 3); err == nil {
		t.Fatal("expected bank-range error")
	}
}

func TestInsertMaxPassesFailure(t *testing.T) {
	// Force non-convergence: κ tiny relative to drift on a tree whose
	// plain leaves spread more than κ.
	tree, modes, lib := islandTree(t, 12)
	if _, err := Insert(context.Background(), tree, lib.MustByName("ADB_X8"), modes, 0.05); err == nil {
		t.Fatal("expected failure for κ=0.05")
	}
}
