// Package adb allocates adjustable delay buffers (ADBs) on a clock tree so
// that the clock skew bound κ holds in every power mode — the substrate
// step of ClkWaveMin-M (paper Fig. 13, module Insert-ADB), in the spirit of
// the minimal-allocation algorithm of the paper's reference [17].
//
// Allocation escalates through three regimes, mirroring the paper's
// observation that "ADBs are located at both leaf and non-leaf positions":
//
//  1. Windowed leaf insertion: for every mode the target window is
//     [maxAT_m − κ, maxAT_m]; a leaf arriving before the window in some
//     mode is re-celled as an ADB whose bank is programmed per mode with
//     the smallest step count entering every window. The swap's own
//     base-delay change is accounted for exactly.
//  2. Sibling-slack hoisting: when a single bank cannot absorb a leaf's
//     need, the common part of its family's need moves into a non-leaf
//     ADB at the parent, bounded by every subtree leaf's need or window
//     slack.
//  3. Tree alignment (align.go): for deep designs whose per-mode spreads
//     exceed one bank, gaps between sibling subtrees' latest arrivals are
//     absorbed edge by edge with drive-matched ADBs, chaining banks along
//     root-to-leaf paths.
//
// Every pass re-times the tree exactly, so second-order load shifts are
// self-correcting; Retune polishes bank settings after later cell
// re-assignment.
package adb

import (
	"context"
	"fmt"
	"math"
	"sort"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/obs"
)

// Result reports an allocation.
type Result struct {
	Inserted []clocktree.NodeID // nodes (leaf and non-leaf) re-celled as ADBs, ID order
	Passes   int                // timing iterations used
}

// NumADBs returns the allocation size.
func (r *Result) NumADBs() int { return len(r.Inserted) }

// maxPasses bounds the fix-up iterations.
const maxPasses = 24

// Insert mutates the tree: leaves that violate any mode's skew window are
// replaced by adbCell with per-mode bank settings. Returns an error when
// the bank range cannot absorb the required shift (κ too tight for the
// ADB's delay range).
func Insert(ctx context.Context, t *clocktree.Tree, adbCell *cell.Cell, modes []clocktree.Mode, kappa float64) (*Result, error) {
	_, sp := obs.Start(ctx, "adb.insert")
	defer sp.End()
	if adbCell == nil || !adbCell.Adjustable() {
		return nil, fmt.Errorf("adb: cell %v is not adjustable", adbCell)
	}
	if kappa <= 0 {
		return nil, fmt.Errorf("adb: non-positive kappa %g", kappa)
	}
	if len(modes) == 0 {
		return nil, fmt.Errorf("adb: no modes")
	}
	res := &Result{}
	inserted := make(map[clocktree.NodeID]bool)
	leaves := t.Leaves()

	for pass := 1; pass <= maxPasses; pass++ {
		res.Passes = pass
		timings := make([]*clocktree.Timing, len(modes))
		allMeet := true
		for i, m := range modes {
			timings[i] = t.ComputeTiming(m)
			if timings[i].Skew(t) > kappa+1e-9 {
				allMeet = false
			}
		}
		if allMeet {
			t.Walk(func(n *clocktree.Node) {
				if inserted[n.ID] {
					res.Inserted = append(res.Inserted, n.ID)
				}
			})
			sort.Slice(res.Inserted, func(i, j int) bool { return res.Inserted[i] < res.Inserted[j] })
			if sp != nil {
				sp.Count("adb.inserted", int64(len(res.Inserted)))
				sp.Count("adb.passes", int64(res.Passes))
			}
			return res, nil
		}

		// Zero-step base arrival of a leaf in mode i if it were (or is)
		// the ADB cell.
		baseAT := func(leaf clocktree.NodeID, i int) float64 {
			nd := t.Node(leaf)
			at := timings[i].ATOut[leaf]
			if nd.Cell.Adjustable() {
				return at - nd.AdjustDelay(modes[i].Name)
			}
			vdd := modes[i].VDDOf(nd.Domain)
			load := timings[i].Load[leaf]
			return at + adbCell.Delay(load, vdd) - nd.Cell.Delay(load, vdd)
		}

		// Grow the must-swap set S to a fixpoint: a leaf must become an
		// ADB when it arrives before some mode's window, where the window
		// anchor T_m accounts for the base-delay penalty of every leaf
		// already in S (delays can only be added, so the target can only
		// move later).
		mustSwap := make(map[clocktree.NodeID]bool, len(inserted))
		for l := range inserted {
			mustSwap[l] = true
		}
		target := make([]float64, len(modes))
		for {
			for i := range modes {
				T := math.Inf(-1)
				for _, leaf := range leaves {
					at := timings[i].ATOut[leaf]
					if mustSwap[leaf] {
						at = baseAT(leaf, i)
					}
					if at > T {
						T = at
					}
				}
				target[i] = T
			}
			grew := false
			for _, leaf := range leaves {
				if mustSwap[leaf] {
					continue
				}
				for i := range modes {
					if timings[i].ATOut[leaf] < target[i]-kappa-1e-9 {
						mustSwap[leaf] = true
						grew = true
						break
					}
				}
			}
			if !grew {
				break
			}
		}
		if len(mustSwap) == 0 {
			return nil, fmt.Errorf("adb: skew violated but no leaf is early (inconsistent timing)")
		}
		if debugInsert {
			worstSkew := 0.0
			for i := range modes {
				if s := timings[i].Skew(t); s > worstSkew {
					worstSkew = s
				}
			}
			fmt.Printf("adb pass %d: worstSkew=%.2f mustSwap=%d\n", pass, worstSkew, len(mustSwap))
		}

		// Per-leaf required bank delay per mode.
		needs := make(map[clocktree.NodeID][]float64)
		overflow := false
		for _, leaf := range leaves {
			if !mustSwap[leaf] {
				continue
			}
			ns := make([]float64, len(modes))
			for i := range modes {
				ns[i] = math.Max(0, (target[i]-kappa)-baseAT(leaf, i))
				if ns[i] > adbCell.MaxAdjust()+1e-9 {
					overflow = true
				}
			}
			needs[leaf] = ns
		}

		if debugInsert {
			worstNeed := 0.0
			for _, ns := range needs {
				for _, n := range ns {
					if n > worstNeed {
						worstNeed = n
					}
				}
			}
			fmt.Printf("  worstNeed=%.2f overflow=%v\n", worstNeed, overflow)
		}
		if overflow {
			// A leaf bank cannot absorb the whole shift: hoist the common
			// part of each sibling group's need into a *non-leaf* ADB at
			// the parent ("ADBs are located at both leaf and non-leaf
			// positions", paper §VII-E). A parent may only delay its
			// subtree by the minimum need across its leaf children —
			// anything more would push an on-time leaf past the window.
			if err := t.Validate(); err != nil {
				return nil, err
			}
			promoted := false
			byParent := make(map[clocktree.NodeID]bool)
			for leaf, ns := range needs {
				for i := range modes {
					if ns[i] > adbCell.MaxAdjust()+1e-9 {
						byParent[t.Node(leaf).Parent] = true
						break
					}
				}
			}
			for parent := range byParent {
				if parent == clocktree.NoNode {
					continue
				}
				// A parent ADB delays every leaf below it, so the hoist is
				// bounded per mode by the tightest constraint among the
				// subtree's leaves: a needy leaf can absorb up to its need,
				// an on-time leaf only up to its remaining window slack.
				pn := t.Node(parent)
				descendants := leafDescendants(t, parent)
				hoist := make(map[string]int, len(modes))
				any, safe := false, true
				for i, m := range modes {
					bound := math.Inf(1)
					for _, leaf := range descendants {
						if ns, needy := needs[leaf]; needy {
							bound = math.Min(bound, ns[i])
						} else {
							bound = math.Min(bound, math.Max(0, target[i]-timings[i].ATOut[leaf]))
						}
					}
					// The parent's own swap to the ADB cell adds base delay
					// to the whole subtree; the bank steps must leave room
					// for it, or the swap alone would overshoot.
					delta := 0.0
					if !pn.Cell.Adjustable() {
						vdd := m.VDDOf(pn.Domain)
						load := timings[i].Load[parent]
						delta = adbCell.Delay(load, vdd) - pn.Cell.Delay(load, vdd)
					}
					if delta > bound+1e-9 {
						safe = false
						break
					}
					sc := int((bound - delta) / adbCell.StepPs) // floor: never overshoot
					room := adbCell.MaxSteps - pn.AdjustSteps[m.Name]
					if sc > room {
						sc = room
					}
					hoist[m.Name] = sc
					if sc > 0 {
						any = true
					}
				}
				if !safe || !any {
					continue
				}
				if !pn.Cell.Adjustable() {
					t.SetCell(parent, adbCell)
				}
				for name, s := range hoist {
					t.SetAdjustSteps(parent, name, pn.AdjustSteps[name]+s)
				}
				inserted[parent] = true
				promoted = true
			}
			if !promoted {
				// Sibling-slack hoisting is exhausted (deep designs whose
				// per-mode spreads exceed a single bank): switch to the
				// full tree-alignment allocator, which chains banks along
				// root-to-leaf paths.
				if err := insertAligned(t, adbCell, modes, kappa, inserted); err != nil {
					return nil, fmt.Errorf("%w (κ=%g)", err, kappa)
				}
			}
			continue // re-time and retry with the hoisted delays in place
		}

		// Program every must-swap leaf into all windows.
		for leaf, ns := range needs {
			steps := make(map[string]int, len(modes))
			for i, m := range modes {
				base := baseAT(leaf, i)
				hi := target[i]
				sc := int(math.Ceil(ns[i]/adbCell.StepPs - 1e-9))
				if sc > adbCell.MaxSteps || base+float64(sc)*adbCell.StepPs > hi+1e-9 {
					return nil, fmt.Errorf("adb: leaf %d mode %s needs %g ps beyond bank range %g (κ=%g)",
						leaf, m.Name, ns[i], adbCell.MaxAdjust(), kappa)
				}
				steps[m.Name] = sc
			}
			if !t.Node(leaf).Cell.Adjustable() {
				t.SetCell(leaf, adbCell)
			}
			for name, s := range steps {
				t.SetAdjustSteps(leaf, name, s)
			}
			inserted[leaf] = true
		}
	}
	return nil, fmt.Errorf("adb: did not converge within %d passes", maxPasses)
}

// CountAdjustables tallies the tree's adjustable cells by kind, at both
// leaf and non-leaf positions — the paper's #ADBs/#ADIs accounting.
func CountAdjustables(t *clocktree.Tree) (adbs, adis int) {
	t.Walk(func(n *clocktree.Node) {
		switch n.Cell.Kind {
		case cell.ADB:
			adbs++
		case cell.ADI:
			adis++
		}
	})
	return adbs, adis
}

// Retune re-programs the capacitor banks of the tree's existing
// adjustable leaves (ADB or ADI) against *realized* timing so that every
// mode meets κ. No cells are swapped. This is the post-assignment settle
// pass: committing a polarity assignment shifts parent loads slightly
// (Observation 4's second-order effect), and the banks — being
// programmable per mode anyway — absorb that drift exactly.
// Retune is best-effort: it cannot move plain leaves, so small residual
// violations from plain-leaf drift remain (and are reported via the
// returned worst skew). It errors only on structural failures — a bank
// that cannot reach its window at all.
func Retune(ctx context.Context, t *clocktree.Tree, modes []clocktree.Mode, kappa float64) (worstSkew float64, err error) {
	_, sp := obs.Start(ctx, "adb.retune")
	defer sp.End()
	defer func() { sp.Gauge("adb.worst_skew", worstSkew) }()
	if kappa <= 0 {
		return 0, fmt.Errorf("adb: non-positive kappa %g", kappa)
	}
	sites := Sites(t)
	sp.Count("adb.retune_sites", int64(len(sites)))
	for pass := 0; pass < maxPasses; pass++ {
		worstSkew = 0
		for _, m := range modes {
			if s := t.ComputeTiming(m).Skew(t); s > worstSkew {
				worstSkew = s
			}
		}
		if worstSkew <= kappa+1e-9 || len(sites) == 0 {
			return worstSkew, nil
		}
		changed := false
		for _, m := range modes {
			tm := t.ComputeTiming(m)
			// The unavoidable latest arrival: plain leaves as they are,
			// adjustable leaves at zero bank steps.
			T := math.Inf(-1)
			for _, leaf := range t.Leaves() {
				at := tm.ATOut[leaf] - t.Node(leaf).AdjustDelay(m.Name)
				if at > T {
					T = at
				}
			}
			for _, leaf := range t.Leaves() {
				nd := t.Node(leaf)
				if !nd.Cell.Adjustable() {
					continue // plain drift is absorbed by the skew report
				}
				base := tm.ATOut[leaf] - nd.AdjustDelay(m.Name)
				need := math.Max(0, T-kappa-base)
				sc := int(math.Ceil(need/nd.Cell.StepPs - 1e-9))
				if sc > nd.Cell.MaxSteps || base+float64(sc)*nd.Cell.StepPs > T+1e-9 {
					return worstSkew, fmt.Errorf("adb: leaf %d mode %s needs %g ps beyond bank range %g",
						leaf, m.Name, need, nd.Cell.MaxAdjust())
				}
				if nd.AdjustSteps[m.Name] != sc {
					changed = true
				}
				t.SetAdjustSteps(leaf, m.Name, sc)
			}
		}
		if !changed {
			break
		}
	}
	worstSkew = 0
	for _, m := range modes {
		if s := t.ComputeTiming(m).Skew(t); s > worstSkew {
			worstSkew = s
		}
	}
	return worstSkew, nil
}

// Sites returns the leaves currently celled with adjustable cells — the
// positions ClkWaveMin-M may swap between ADB and ADI.
func Sites(t *clocktree.Tree) []clocktree.NodeID {
	var out []clocktree.NodeID
	for _, leaf := range t.Leaves() {
		if t.Node(leaf).Cell.Adjustable() {
			out = append(out, leaf)
		}
	}
	return out
}

// debugInsert, when set by tests, traces Insert's passes.
var debugInsert = false

// leafDescendants collects the leaves in a node's subtree.
func leafDescendants(t *clocktree.Tree, id clocktree.NodeID) []clocktree.NodeID {
	var out []clocktree.NodeID
	var rec func(clocktree.NodeID)
	rec = func(v clocktree.NodeID) {
		n := t.Node(v)
		if n.IsLeaf() {
			out = append(out, v)
			return
		}
		for _, ch := range n.Children {
			rec(ch)
		}
	}
	rec(id)
	return out
}
