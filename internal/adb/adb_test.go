package adb

import (
	"context"
	"testing"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
)

// islandTree builds a balanced tree over two spatial halves and assigns
// the right half to a voltage island, like the paper's Fig. 10.
func islandTree(t testing.TB, nPerSide int) (*clocktree.Tree, []clocktree.Mode, *cell.Library) {
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < nPerSide; i++ {
		sinks = append(sinks, cts.Sink{X: 20 + float64(i*3), Y: 20 + float64(i%5)*9, Cap: 8})
		sinks = append(sinks, cts.Sink{X: 220 + float64(i*3), Y: 20 + float64(i%5)*9, Cap: 8})
	}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tree.Walk(func(n *clocktree.Node) {
		if n.X >= 150 {
			n.Domain = "A2"
		} else {
			n.Domain = "A1"
		}
	})
	modes := []clocktree.Mode{
		{Name: "M1", Supplies: map[string]float64{"A1": 1.1, "A2": 1.1}},
		{Name: "M2", Supplies: map[string]float64{"A1": 1.1, "A2": 0.9}},
	}
	return tree, modes, lib
}

func TestInsertFixesMultiModeSkew(t *testing.T) {
	tree, modes, lib := islandTree(t, 12)
	kappa := 6.0
	if tree.MeetsSkew(kappa, modes) {
		t.Fatal("island did not create a violation; test premise broken")
	}
	adbCell := lib.MustByName("ADB_X8")
	res, err := Insert(context.Background(), tree, adbCell, modes, kappa)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.MeetsSkew(kappa, modes) {
		for _, m := range modes {
			t.Logf("mode %s skew %g", m.Name, tree.ComputeTiming(m).Skew(tree))
		}
		t.Fatal("skew still violated after ADB insertion")
	}
	if res.NumADBs() == 0 {
		t.Fatal("no ADBs inserted despite violation")
	}
	if len(Sites(tree)) != res.NumADBs() {
		t.Fatalf("Sites %d != inserted %d", len(Sites(tree)), res.NumADBs())
	}
}

func TestInsertIsMinimalOnLooseKappa(t *testing.T) {
	// With a huge κ the tree already meets the bound: no ADBs.
	tree, modes, lib := islandTree(t, 6)
	res, err := Insert(context.Background(), tree, lib.MustByName("ADB_X8"), modes, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumADBs() != 0 {
		t.Fatalf("inserted %d ADBs with loose κ", res.NumADBs())
	}
}

func TestInsertSettingsDifferPerMode(t *testing.T) {
	tree, modes, lib := islandTree(t, 12)
	kappa := 6.0
	if tree.MeetsSkew(kappa, modes) {
		t.Fatal("island did not create a violation; test premise broken")
	}
	if _, err := Insert(context.Background(), tree, lib.MustByName("ADB_X8"), modes, kappa); err != nil {
		t.Fatal(err)
	}
	// At least one ADB should need different bank settings in M1 vs M2
	// (the island shifts only in M2).
	differ := false
	for _, leaf := range Sites(tree) {
		n := tree.Node(leaf)
		if n.AdjustSteps["M1"] != n.AdjustSteps["M2"] {
			differ = true
		}
	}
	if !differ {
		t.Fatal("expected mode-dependent bank settings")
	}
}

func TestInsertErrors(t *testing.T) {
	tree, modes, lib := islandTree(t, 4)
	if _, err := Insert(context.Background(), tree, lib.MustByName("BUF_X8"), modes, 10); err == nil {
		t.Error("non-adjustable cell should error")
	}
	if _, err := Insert(context.Background(), tree, lib.MustByName("ADB_X8"), modes, -1); err == nil {
		t.Error("negative kappa should error")
	}
	if _, err := Insert(context.Background(), tree, lib.MustByName("ADB_X8"), nil, 10); err == nil {
		t.Error("no modes should error")
	}
}

func TestInsertFailsWhenBankTooSmall(t *testing.T) {
	tree, modes, _ := islandTree(t, 12)
	// A bank with one 1-ps step cannot absorb a multi-ps island shift with
	// a tight window.
	tiny := cell.MakeADB(8, 1, 1)
	if _, err := Insert(context.Background(), tree, tiny, modes, 2); err == nil {
		skews := []float64{}
		for _, m := range modes {
			skews = append(skews, tree.ComputeTiming(m).Skew(tree))
		}
		t.Fatalf("expected failure with 1 ps bank; skews now %v", skews)
	}
}

func TestInsertKeepsSingleModeNoop(t *testing.T) {
	// A single nominal mode on a balanced tree needs nothing.
	lib := cell.DefaultLibrary()
	sinks := []cts.Sink{{X: 10, Y: 10, Cap: 8}, {X: 90, Y: 90, Cap: 8}}
	tree, err := cts.Synthesize(sinks, lib, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Insert(context.Background(), tree, lib.MustByName("ADB_X8"), []clocktree.Mode{clocktree.NominalMode}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumADBs() != 0 {
		t.Fatalf("inserted %d ADBs on a balanced single-mode tree", res.NumADBs())
	}
}
