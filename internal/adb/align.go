package adb

import (
	"fmt"
	"math"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

// insertAligned is the heavy-duty ADB allocator for designs whose
// per-mode arrival spreads exceed a single capacitor bank: it aligns the
// whole tree per mode by absorbing, at every tree edge, the gap between a
// child subtree's latest arrival and its siblings' latest arrival — the
// classic bottom-up delay-alignment. Gaps larger than one bank cascade
// down the subtree (every node on the path contributes its bank), so the
// usable range grows with tree depth. The allocation is committed into the
// tree (cell swaps + per-mode bank settings) and marked in inserted.
//
// Quantization residue (≤ one bank step per level) and swap-delta
// second-order effects are left to the caller's outer verify loop and
// Retune.
func insertAligned(t *clocktree.Tree, adbCell *cell.Cell, modes []clocktree.Mode, kappa float64, inserted map[clocktree.NodeID]bool) error {
	// A swap's base-delay penalty may overshoot a mode whose gap is
	// already closed (typically the nominal mode); tolerate a bounded
	// overshoot — the outer verify loop then delays the overshot node's
	// siblings to match (cascading allocation, the regime of the paper's
	// Table VII where most of a tree ends up as ADBs).
	overshootTol := math.Max(2*adbCell.StepPs, kappa/3)

	// Internal positions get drive-matched ADBs (an ADB_X8 replacing a
	// BUF_X32 would cost tens of ps of base delay); same bank geometry as
	// the configured leaf ADB.
	adbByDrive := map[float64]*cell.Cell{adbCell.Drive: adbCell}
	adbFor := func(c *cell.Cell) *cell.Cell {
		if a, ok := adbByDrive[c.Drive]; ok {
			return a
		}
		a := cell.MakeADB(c.Drive, adbCell.MaxSteps, adbCell.StepPs)
		adbByDrive[c.Drive] = a
		return a
	}
	nModes := len(modes)
	timings := make([]*clocktree.Timing, nModes)
	for i, m := range modes {
		timings[i] = t.ComputeTiming(m)
	}
	// maxdown[m][node]: latest leaf arrival in the node's subtree.
	maxdown := make([][]float64, nModes)
	for i := range modes {
		md := make([]float64, t.Len())
		var rec func(clocktree.NodeID) float64
		rec = func(v clocktree.NodeID) float64 {
			n := t.Node(v)
			if n.IsLeaf() {
				md[v] = timings[i].ATOut[v]
				return md[v]
			}
			worst := math.Inf(-1)
			for _, ch := range n.Children {
				if d := rec(ch); d > worst {
					worst = d
				}
			}
			md[v] = worst
			return worst
		}
		rec(t.Root())
		maxdown[i] = md
	}

	changed := false
	var alloc func(v clocktree.NodeID, carry []float64) error
	alloc = func(v clocktree.NodeID, carry []float64) error {
		n := t.Node(v)
		for _, ch := range n.Children {
			chN := t.Node(ch)
			need := make([]float64, nModes)
			maxNeed := 0.0
			for i := range modes {
				need[i] = maxdown[i][v] - maxdown[i][ch] + carry[i]
				if need[i] > maxNeed {
					maxNeed = need[i]
				}
			}
			residual := need
			if maxNeed >= adbCell.StepPs {
				// Worth allocating here if the cell swap never overshoots
				// (beyond tolerance).
				target := chN.Cell
				if !target.Adjustable() {
					if chN.IsLeaf() {
						target = adbCell
					} else {
						target = adbFor(chN.Cell)
					}
				}
				delta := make([]float64, nModes)
				if !chN.Cell.Adjustable() {
					for i, m := range modes {
						vdd := m.VDDOf(chN.Domain)
						load := timings[i].Load[ch]
						delta[i] = target.Delay(load, vdd) - chN.Cell.Delay(load, vdd)
					}
				}
				safe, useful := true, false
				add := make([]int, nModes)
				for i := range modes {
					if delta[i] > need[i]+overshootTol {
						safe = false
						break
					}
					room := target.MaxSteps - chN.AdjustSteps[modes[i].Name]
					sc := int((need[i] - delta[i]) / target.StepPs)
					if sc > room {
						sc = room
					}
					if sc < 0 {
						sc = 0
					}
					add[i] = sc
					if sc > 0 {
						useful = true
					}
				}
				if safe && useful {
					if !chN.Cell.Adjustable() {
						t.SetCell(ch, target)
					}
					residual = make([]float64, nModes)
					for i, m := range modes {
						t.SetAdjustSteps(ch, m.Name, chN.AdjustSteps[m.Name]+add[i])
						residual[i] = math.Max(0, need[i]-delta[i]-float64(add[i])*target.StepPs)
					}
					inserted[ch] = true
					changed = true
				}
			}
			if chN.IsLeaf() {
				continue // leaf residue is the outer loop's to verify
			}
			if err := alloc(ch, residual); err != nil {
				return err
			}
		}
		return nil
	}
	if err := alloc(t.Root(), make([]float64, nModes)); err != nil {
		return err
	}
	if !changed {
		return fmt.Errorf("adb: alignment allocator made no progress (bank range %g ps too small for the design)",
			adbCell.MaxAdjust())
	}
	return nil
}
