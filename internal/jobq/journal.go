// Journal integration: every lifecycle transition of a leasable job is
// written to a write-ahead journal (internal/wal) before the transition
// is acknowledged to the outside, so a crashed coordinator can rebuild
// its backlog on restart and requeue the jobs it was holding.
//
// The protocol is deliberately asymmetric about durability:
//
//   - accept (SubmitLeasable) is ack-gated: the record must be fsynced
//     before the submitter gets its Ticket. An accepted job is therefore
//     never lost, whatever happens next.
//   - complete/fail/expire/exhaust are ack-gated where there is a caller
//     to gate (Complete, Fail): the worker's acknowledgement arrives only
//     after the terminal record is durable. Internally-driven terminals
//     (context cull, retry exhaustion) are journaled asynchronously.
//   - grant and requeue are advisory: they are buffered into the journal
//     in order but nobody waits on them. Losing a suffix of them is safe
//     because replay treats a granted-but-unresolved job as leased at
//     crash time and requeues it without burning the attempt.
//
// Records are JSON payloads inside the WAL's CRC-framed records. The
// journal only covers leasable jobs: push jobs carry closures, which
// cannot be replayed, and their submitters hold no ticket to honor.
package jobq

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"wavemin/internal/wal"
)

// Journal record ops. Single letters keep the journal compact; the
// replayer rejects anything it does not recognize.
const (
	opAccept   = "a" // job entered the queue (payload, lane, deadline)
	opGrant    = "g" // a lease was granted (attempt burned)
	opRequeue  = "r" // lease lapsed or failed retryably; job back at lane front
	opComplete = "c" // terminal: completed (result durable elsewhere)
	opFail     = "f" // terminal: non-retryable failure
	opExpire   = "x" // terminal: job context ended
	opExhaust  = "e" // terminal: retry budget spent
)

// journalRec is the JSON payload of one Data record.
type journalRec struct {
	Op       string          `json:"op"`
	ID       uint64          `json:"id"`
	Pri      int             `json:"pri,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`  // opAccept only
	Deadline int64           `json:"deadline,omitempty"` // unix nanos; 0 = none
	Attempt  int             `json:"attempt,omitempty"`
}

// snapshot is the JSON payload of a Checkpoint record: the full set of
// non-terminal leasable jobs at checkpoint time, queued jobs in queue
// order, then jobs leased at that moment.
type snapshot struct {
	LastID uint64    `json:"last_id"` // highest job ID ever assigned
	Jobs   []snapJob `json:"jobs"`
}

type snapJob struct {
	ID       uint64          `json:"id"`
	Pri      int             `json:"pri"`
	Payload  json.RawMessage `json:"payload"`
	Deadline int64           `json:"deadline,omitempty"`
	Attempts int             `json:"attempts,omitempty"` // lease grants consumed
	Leased   bool            `json:"leased,omitempty"`   // held by a consumer at checkpoint
}

// PayloadCodec converts between in-memory job payloads and the bytes the
// journal stores. Both directions must be total for every payload the
// queue will ever carry — an Encode failure rejects the submission.
type PayloadCodec struct {
	Encode func(payload any) ([]byte, error)
	Decode func(data []byte) (any, error)
}

// AttachJournal starts journaling every leasable-job transition to w.
// It must be called before the queue starts accepting work: jobs
// submitted earlier have no accept record, and their later transitions
// are ignored at replay. The queue does not close w; the owner does,
// after Drain.
func (q *Queue) AttachJournal(w *wal.Writer, codec PayloadCodec) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.jrnl = w
	q.codec = codec
}

// JournalErrs reports how many journal appends or waits failed since the
// queue started. Non-zero means the durability guarantee is degraded and
// the operator should be paged; in-memory serving continues regardless.
func (q *Queue) JournalErrs() int64 { return q.journalErrs.Load() }

// appendJournalLocked buffers one record for j into the journal, in the
// same critical section as the in-memory transition so journal order
// equals state order. Returns a nil Commit when no journal is attached
// or j is not journaled (push job, pre-attach job). Caller holds q.mu.
func (q *Queue) appendJournalLocked(op string, j *job, payload json.RawMessage, deadline int64) (*wal.Commit, error) {
	if q.jrnl == nil || !j.leasable() || j.id == 0 {
		return nil, nil
	}
	rec := journalRec{Op: op, ID: j.id, Attempt: j.attempts}
	if op == opAccept {
		rec.Pri = int(j.pri)
		rec.Payload = payload
		rec.Deadline = deadline
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return q.jrnl.Append(b)
}

// journalAsyncLocked buffers a record nobody waits on; failures are
// counted, not surfaced. Caller holds q.mu.
func (q *Queue) journalAsyncLocked(op string, j *job) {
	if _, err := q.appendJournalLocked(op, j, nil, 0); err != nil {
		q.journalErrs.Add(1)
	}
}

// waitJournal blocks until c is durable, folding failures into the
// journal-error counter. Called WITHOUT q.mu held.
func (q *Queue) waitJournal(c *wal.Commit) {
	if c == nil {
		return
	}
	if err := c.Wait(); err != nil {
		q.journalErrs.Add(1)
	}
}

// CheckpointJournal writes a snapshot of every non-terminal leasable job
// and truncates the journal's history. The queue's lock serializes the
// snapshot against every append, which is exactly the external ordering
// wal.Checkpoint requires.
func (q *Queue) CheckpointJournal() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.jrnl == nil {
		return errors.New("jobq: no journal attached")
	}
	snap := snapshot{LastID: q.jobSeq}
	add := func(j *job, leased bool) error {
		enc, err := q.codec.Encode(j.payload)
		if err != nil {
			return fmt.Errorf("jobq: checkpoint: encode job %d: %w", j.id, err)
		}
		var dl int64
		if t, ok := j.ctx.Deadline(); ok {
			dl = t.UnixNano()
		}
		snap.Jobs = append(snap.Jobs, snapJob{
			ID: j.id, Pri: int(j.pri), Payload: enc,
			Deadline: dl, Attempts: j.attempts, Leased: leased,
		})
		return nil
	}
	for lane := range q.lanes {
		for _, j := range q.lanes[lane] {
			if j.leasable() && j.id != 0 {
				if err := add(j, false); err != nil {
					return err
				}
			}
		}
	}
	for _, j := range q.leases {
		if err := add(j, true); err != nil {
			return err
		}
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return q.jrnl.Checkpoint(b)
}

// RecoveredJob is one non-terminal job reconstructed from the journal.
type RecoveredJob struct {
	ID       uint64
	Pri      Priority
	Payload  any
	Attempts int       // grants that count against the retry budget
	Deadline time.Time // zero = no deadline
	// WasLeased reports the job was held by a consumer at crash time.
	// Its in-flight attempt is NOT counted in Attempts: the crash was
	// the coordinator's fault, not the job's.
	WasLeased bool
}

// Replayer folds journal records back into the set of jobs that were
// non-terminal at crash time. Feed its Apply method to wal.Open (or
// wal.ReadAll), then collect the backlog with Jobs.
type Replayer struct {
	decode  func([]byte) (any, error)
	jobs    map[uint64]*replayJob
	seq     int64  // increasing order keys for accepts
	front   int64  // decreasing order keys for requeues/grants
	lastID  uint64 // highest ID seen (records or snapshot)
	ignored int    // records for unknown job IDs
}

type replayJob struct {
	id       uint64
	pri      Priority
	payload  json.RawMessage
	deadline int64
	grants   int
	leased   bool
	order    int64
}

// NewReplayer builds a Replayer that decodes payloads with decode.
func NewReplayer(decode func([]byte) (any, error)) *Replayer {
	return &Replayer{decode: decode, jobs: make(map[uint64]*replayJob)}
}

// Ignored reports how many records referenced job IDs the replayer had
// never seen an accept for — expected only after a best-effort salvage
// that lost a prefix, or for jobs submitted before AttachJournal.
func (r *Replayer) Ignored() int { return r.ignored }

// Apply consumes one journal record. It is shaped to be passed directly
// as the replay callback of wal.Open.
func (r *Replayer) Apply(kind wal.RecordKind, payload []byte) error {
	switch kind {
	case wal.Checkpoint:
		var snap snapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return fmt.Errorf("jobq: checkpoint record: %w", err)
		}
		r.jobs = make(map[uint64]*replayJob, len(snap.Jobs))
		if snap.LastID > r.lastID {
			r.lastID = snap.LastID
		}
		for _, sj := range snap.Jobs {
			if sj.Pri < int(High) || sj.Pri > int(Low) {
				return fmt.Errorf("jobq: checkpoint job %d: invalid priority %d", sj.ID, sj.Pri)
			}
			j := &replayJob{
				id: sj.ID, pri: Priority(sj.Pri), payload: sj.Payload,
				deadline: sj.Deadline, grants: sj.Attempts, leased: sj.Leased,
			}
			if sj.Leased {
				r.front--
				j.order = r.front
			} else {
				r.seq++
				j.order = r.seq
			}
			r.jobs[sj.ID] = j
			if sj.ID > r.lastID {
				r.lastID = sj.ID
			}
		}
		return nil
	case wal.Data:
		var rec journalRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("jobq: journal record: %w", err)
		}
		switch rec.Op {
		case opAccept:
			if rec.Pri < int(High) || rec.Pri > int(Low) {
				return fmt.Errorf("jobq: accept record %d: invalid priority %d", rec.ID, rec.Pri)
			}
			r.seq++
			r.jobs[rec.ID] = &replayJob{
				id: rec.ID, pri: Priority(rec.Pri), payload: rec.Payload,
				deadline: rec.Deadline, order: r.seq,
			}
			if rec.ID > r.lastID {
				r.lastID = rec.ID
			}
		case opGrant:
			j, ok := r.jobs[rec.ID]
			if !ok {
				r.ignored++
				return nil
			}
			j.grants++
			j.leased = true
			r.front--
			j.order = r.front
		case opRequeue:
			j, ok := r.jobs[rec.ID]
			if !ok {
				r.ignored++
				return nil
			}
			j.leased = false
			r.front--
			j.order = r.front
		case opComplete, opFail, opExpire, opExhaust:
			if _, ok := r.jobs[rec.ID]; !ok {
				r.ignored++
				return nil
			}
			delete(r.jobs, rec.ID)
		default:
			return fmt.Errorf("jobq: journal record: unknown op %q", rec.Op)
		}
		return nil
	default:
		return fmt.Errorf("jobq: unknown journal record kind %d", kind)
	}
}

// LastID returns the highest job ID the journal ever assigned; Restore
// uses it to keep IDs monotonic across restarts.
func (r *Replayer) LastID() uint64 { return r.lastID }

// Jobs returns the reconstructed backlog in queue order: requeued and
// leased-at-crash jobs first (they had, or regain, their place at the
// front of their lane), then accepted jobs in submission order. Payloads
// are decoded; a decode failure aborts, because serving a job with a
// garbled payload is worse than refusing to start.
func (r *Replayer) Jobs() ([]RecoveredJob, error) {
	ordered := make([]*replayJob, 0, len(r.jobs))
	for _, j := range r.jobs {
		ordered = append(ordered, j)
	}
	for i := 1; i < len(ordered); i++ {
		for k := i; k > 0 && ordered[k].order < ordered[k-1].order; k-- {
			ordered[k], ordered[k-1] = ordered[k-1], ordered[k]
		}
	}
	out := make([]RecoveredJob, 0, len(ordered))
	for _, j := range ordered {
		payload, err := r.decode(j.payload)
		if err != nil {
			return nil, fmt.Errorf("jobq: replay job %d: decode payload: %w", j.id, err)
		}
		rj := RecoveredJob{
			ID: j.id, Pri: j.pri, Payload: payload,
			Attempts: j.grants, WasLeased: j.leased,
		}
		if j.leased && rj.Attempts > 0 {
			rj.Attempts-- // the in-flight grant died with the coordinator
		}
		if j.deadline != 0 {
			rj.Deadline = time.Unix(0, j.deadline)
		}
		out = append(out, rj)
	}
	return out, nil
}

// Restore re-enqueues recovered jobs, preserving IDs, attempts, lane
// order, and deadlines (a job whose deadline already passed is enqueued
// and immediately culled as expired, so it still reaches a terminal
// state through the normal path). onEvent, if non-nil, is asked for a
// per-job event callback before each job is enqueued. The returned
// tickets parallel jobs.
//
// Restore must run after AttachJournal and before the queue starts
// granting leases. It deliberately ignores the capacity bound: these
// jobs were already accepted once, and that acknowledgement is a debt
// the queue must honor even if the configured capacity has shrunk.
func (q *Queue) Restore(jobs []RecoveredJob, lastID uint64, onEvent func(RecoveredJob) func(LeaseEvent)) []*Ticket {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Ticket, 0, len(jobs))
	for _, rj := range jobs {
		pri := rj.Pri
		if pri < High || pri > Low {
			pri = Normal
		}
		ctx := context.Background()
		var cancel context.CancelFunc
		if !rj.Deadline.IsZero() {
			ctx, cancel = context.WithDeadline(ctx, rj.Deadline)
		}
		t := &Ticket{done: make(chan struct{})}
		var ev func(LeaseEvent)
		if onEvent != nil {
			ev = onEvent(rj)
		}
		j := &job{
			ctx: ctx, cancel: cancel, id: rj.ID, pri: pri,
			payload: rj.Payload, ticket: t, onEvent: ev, attempts: rj.Attempts,
		}
		q.lanes[pri] = append(q.lanes[pri], j)
		q.queued++
		q.outstanding++
		if rj.ID > q.jobSeq {
			q.jobSeq = rj.ID
		}
		out = append(out, t)
	}
	if lastID > q.jobSeq {
		q.jobSeq = lastID
	}
	q.cond.Broadcast()
	return out
}

// removeQueuedLocked withdraws j from its lane if it is still queued,
// returning whether it was found. Caller holds q.mu and accounts for
// q.queued / q.outstanding itself.
func (q *Queue) removeQueuedLocked(j *job) bool {
	lane := q.lanes[j.pri]
	for i, cand := range lane {
		if cand == j {
			copy(lane[i:], lane[i+1:])
			lane[len(lane)-1] = nil
			q.lanes[j.pri] = lane[:len(lane)-1]
			return true
		}
	}
	return false
}
