package jobq

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"wavemin/internal/faultinject"
	"wavemin/internal/wal"
)

// stringCodec journals plain string payloads as JSON.
var stringCodec = PayloadCodec{
	Encode: func(p any) ([]byte, error) { return json.Marshal(p.(string)) },
	Decode: func(b []byte) (any, error) {
		var s string
		err := json.Unmarshal(b, &s)
		return s, err
	},
}

func openJournal(t *testing.T, dir string) *wal.Writer {
	t.Helper()
	w, _, err := wal.Open(dir, wal.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// replayDir reads the journal at dir through a Replayer and returns the
// reconstructed backlog.
func replayDir(t *testing.T, dir string) ([]RecoveredJob, uint64) {
	t.Helper()
	r := NewReplayer(stringCodec.Decode)
	if _, err := wal.ReadAll(dir, false, r.Apply); err != nil {
		t.Fatalf("replay: %v", err)
	}
	jobs, err := r.Jobs()
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	return jobs, r.LastID()
}

func TestJournalReplayRebuildsBacklog(t *testing.T) {
	dir := t.TempDir()
	w := openJournal(t, dir)
	q := New(16, 1)
	q.AttachJournal(w, stringCodec)

	// done: completed through a lease — must NOT reappear.
	tDone, err := q.SubmitLeasable(context.Background(), Normal, "done", nil)
	if err != nil {
		t.Fatal(err)
	}
	// failed: terminal non-retryable — must NOT reappear.
	if _, err := q.SubmitLeasable(context.Background(), Normal, "failed", nil); err != nil {
		t.Fatal(err)
	}
	// queued / leased: survive the crash.
	if _, err := q.SubmitLeasable(context.Background(), High, "leased", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitLeasable(context.Background(), Low, "queued", nil); err != nil {
		t.Fatal(err)
	}

	l1, ok := q.Lease() // "done" (Normal beats nothing — High? no: High first)
	if !ok {
		t.Fatal("no lease")
	}
	// Lanes grant High first, so l1 is "leased"; take another for "done".
	if l1.Payload.(string) != "leased" {
		t.Fatalf("first lease got %v, want the High job", l1.Payload)
	}
	l2, ok := q.Lease()
	if !ok || l2.Payload.(string) != "done" {
		t.Fatalf("second lease got %+v", l2)
	}
	if err := q.Complete(l2.ID, "result"); err != nil {
		t.Fatal(err)
	}
	<-tDone.Done()
	l3, ok := q.Lease()
	if !ok || l3.Payload.(string) != "failed" {
		t.Fatalf("third lease got %+v", l3)
	}
	if err := q.Fail(l3.ID, errors.New("bad input"), false); err != nil {
		t.Fatal(err)
	}

	// Crash: flush what the committer has, then abandon the writer
	// without a clean close. "leased" is still held.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Abort()

	jobs, lastID := replayDir(t, dir)
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2: %+v", len(jobs), jobs)
	}
	// Leased-at-crash comes back first (front of the line), attempt
	// unburned; the untouched queued job follows.
	if jobs[0].Payload.(string) != "leased" || !jobs[0].WasLeased || jobs[0].Attempts != 0 {
		t.Fatalf("leased-at-crash job wrong: %+v", jobs[0])
	}
	if jobs[1].Payload.(string) != "queued" || jobs[1].WasLeased || jobs[1].Attempts != 0 {
		t.Fatalf("queued job wrong: %+v", jobs[1])
	}
	if jobs[0].Pri != High || jobs[1].Pri != Low {
		t.Fatalf("priorities lost: %+v", jobs)
	}
	if lastID != 4 {
		t.Fatalf("lastID = %d, want 4", lastID)
	}

	// Second incarnation: restore and finish the work.
	w2 := openJournal(t, dir)
	defer w2.Close()
	q2 := New(16, 1)
	q2.AttachJournal(w2, stringCodec)
	tickets := q2.Restore(jobs, lastID, nil)
	if len(tickets) != 2 {
		t.Fatalf("restore returned %d tickets", len(tickets))
	}
	for i := 0; i < 2; i++ {
		l, ok := q2.Lease()
		if !ok {
			t.Fatalf("lease %d unavailable after restore", i)
		}
		if err := q2.Complete(l.ID, "r:"+l.Payload.(string)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tk := range tickets {
		<-tk.Done()
		if _, err := tk.Outcome(); err != nil {
			t.Fatalf("restored job failed: %v", err)
		}
	}
	// New submissions continue the ID sequence (no reuse).
	if _, err := q2.SubmitLeasable(context.Background(), Normal, "new", nil); err != nil {
		t.Fatal(err)
	}
	q2.mu.Lock()
	seq := q2.jobSeq
	q2.mu.Unlock()
	if seq != 5 {
		t.Fatalf("jobSeq = %d, want 5", seq)
	}
}

func TestJournalCheckpointCompactsAndPreservesState(t *testing.T) {
	dir := t.TempDir()
	w := openJournal(t, dir)
	q := New(16, 1)
	q.AttachJournal(w, stringCodec)

	for _, p := range []string{"a", "b", "c"} {
		if _, err := q.SubmitLeasable(context.Background(), Normal, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	l, ok := q.Lease() // "a" held across the checkpoint
	if !ok {
		t.Fatal("no lease")
	}
	if err := q.CheckpointJournal(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity lands after the snapshot.
	if _, err := q.SubmitLeasable(context.Background(), High, "d", nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(l.ID, "ok"); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Abort()

	jobs, _ := replayDir(t, dir)
	got := map[string]RecoveredJob{}
	for _, j := range jobs {
		got[j.Payload.(string)] = j
	}
	if len(jobs) != 3 {
		t.Fatalf("recovered %v, want b, c, d", got)
	}
	for _, p := range []string{"b", "c", "d"} {
		if _, ok := got[p]; !ok {
			t.Fatalf("job %q lost (have %v)", p, got)
		}
	}
	if _, ok := got["a"]; ok {
		t.Fatal("completed job resurrected by checkpoint replay")
	}
}

func TestJournalSubmitRejectedWhenNotDurable(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	w, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	q := New(16, 1)
	q.AttachJournal(w, stringCodec)

	faultinject.SetErr(faultinject.SiteWALSync, func() error {
		return errors.New("injected fsync failure")
	})
	if _, err := q.SubmitLeasable(context.Background(), Normal, "doomed", nil); err == nil {
		t.Fatal("submit acknowledged without a durable accept record")
	}
	if q.Depth() != 0 {
		t.Fatalf("non-durable job left in backlog (depth %d)", q.Depth())
	}
	if q.JournalErrs() == 0 {
		t.Fatal("journal error not counted")
	}
}

func TestJournalDeadlineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	w := openJournal(t, dir)
	q := New(16, 1)
	q.AttachJournal(w, stringCodec)

	deadline := time.Now().Add(40 * time.Millisecond)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if _, err := q.SubmitLeasable(ctx, Normal, "timed", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Abort()

	jobs, lastID := replayDir(t, dir)
	if len(jobs) != 1 || jobs[0].Deadline.IsZero() {
		t.Fatalf("deadline lost: %+v", jobs)
	}
	if got := jobs[0].Deadline.UnixNano(); got != deadline.UnixNano() {
		t.Fatalf("deadline drifted: %d != %d", got, deadline.UnixNano())
	}

	// Restore after the deadline passed: the job must still reach a
	// terminal state — expired through the normal cull, not lost.
	time.Sleep(time.Until(deadline) + 20*time.Millisecond)
	w2 := openJournal(t, dir)
	defer w2.Close()
	q2 := New(16, 1)
	q2.AttachJournal(w2, stringCodec)
	tickets := q2.Restore(jobs, lastID, nil)
	q2.ExpireLeases()
	select {
	case <-tickets[0].Done():
	case <-time.After(2 * time.Second):
		t.Fatal("expired restored job never resolved")
	}
	if _, err := tickets[0].Outcome(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("outcome = %v, want deadline exceeded", err)
	}
}

func TestJournalRestoredJobsRunViaLeaseExecutor(t *testing.T) {
	dir := t.TempDir()
	w := openJournal(t, dir)
	q := New(16, 1)
	q.AttachJournal(w, stringCodec)
	for _, p := range []string{"x", "y"} {
		if _, err := q.SubmitLeasable(context.Background(), Normal, p, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Abort()

	jobs, lastID := replayDir(t, dir)
	w2 := openJournal(t, dir)
	defer w2.Close()
	q2 := New(16, 2)
	q2.AttachJournal(w2, stringCodec)
	tickets := q2.Restore(jobs, lastID, nil)
	q2.SetLeaseExecutor(func(ctx context.Context, payload any) (any, error) {
		return "ran:" + payload.(string), nil
	})
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		case <-time.After(2 * time.Second):
			t.Fatalf("restored job %d never ran", i)
		}
		res, err := tk.Outcome()
		if err != nil {
			t.Fatal(err)
		}
		if res.(string) != "ran:"+jobs[i].Payload.(string) {
			t.Fatalf("job %d result %v", i, res)
		}
	}
}

func TestReplayerRejectsGarbage(t *testing.T) {
	r := NewReplayer(stringCodec.Decode)
	if err := r.Apply(wal.Data, []byte("{not json")); err == nil {
		t.Fatal("malformed record accepted")
	}
	if err := r.Apply(wal.Data, []byte(`{"op":"z","id":1}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := r.Apply(wal.Data, []byte(`{"op":"a","id":1,"pri":9}`)); err == nil {
		t.Fatal("out-of-range priority accepted")
	}
	// Transitions for unknown IDs are counted, not fatal: a best-effort
	// salvage may have lost the accept.
	if err := r.Apply(wal.Data, []byte(`{"op":"g","id":77}`)); err != nil {
		t.Fatal(err)
	}
	if r.Ignored() != 1 {
		t.Fatalf("ignored = %d", r.Ignored())
	}
}

func TestRetryAfterHonorsConfiguredHintBeforeSamples(t *testing.T) {
	q := New(1, 1)
	if got := q.RetryAfter(); got != time.Second {
		t.Fatalf("default cold hint = %v, want 1s", got)
	}
	q.SetRetryHint(45 * time.Second)
	if got := q.RetryAfter(); got != 45*time.Second {
		t.Fatalf("cold hint = %v, want 45s", got)
	}
	q.SetRetryHint(-1) // ignored
	if got := q.RetryAfter(); got != 45*time.Second {
		t.Fatalf("negative hint applied: %v", got)
	}
	// Once a sample exists the EWMA takes over.
	q.mu.Lock()
	q.observeLocked(2 * time.Second)
	q.mu.Unlock()
	if got := q.RetryAfter(); got != 2*time.Second {
		t.Fatalf("post-sample estimate = %v, want 2s", got)
	}
}

// TestSubLeaseNeverJournaled pins the sub-lease contract: a job submitted
// with SubmitSubLease rides the full lease lifecycle but leaves no trace
// in the journal — a parent job re-derives its sub-units on recovery, so
// journaling them would only multiply WAL traffic, and replaying one
// without its parent would be meaningless.
func TestSubLeaseNeverJournaled(t *testing.T) {
	dir := t.TempDir()
	w := openJournal(t, dir)
	q := New(16, 1)
	q.AttachJournal(w, stringCodec)

	// One journaled job so the journal is provably live, then a full
	// sub-lease lifecycle (grant, complete) interleaved with it.
	if _, err := q.SubmitLeasable(context.Background(), Normal, "parent", nil); err != nil {
		t.Fatal(err)
	}
	tSub, err := q.SubmitSubLease(context.Background(), High, "sub-chunk", nil)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := q.Lease() // High first: the sub-lease
	if !ok || l.Payload.(string) != "sub-chunk" {
		t.Fatalf("first lease got %+v, want the sub-lease", l)
	}
	if err := q.Complete(l.ID, "chunk stats"); err != nil {
		t.Fatal(err)
	}
	<-tSub.Done()
	if res, err := tSub.Outcome(); err != nil || res.(string) != "chunk stats" {
		t.Fatalf("sub-lease outcome = %v, %v", res, err)
	}

	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Abort()

	jobs, lastID := replayDir(t, dir)
	if len(jobs) != 1 || jobs[0].Payload.(string) != "parent" {
		t.Fatalf("replay recovered %+v, want only the parent", jobs)
	}
	if lastID != 1 {
		t.Fatalf("lastID = %d, want 1 (the sub-lease must not burn journal IDs)", lastID)
	}
}

// TestSubLeaseRefusedDuringDrain pins the fallback contract: once the
// queue drains, sub-lease submission fails fast with ErrDraining so the
// caller can evaluate inline instead of hanging on a queue whose workers
// are gone.
func TestSubLeaseRefusedDuringDrain(t *testing.T) {
	q := New(4, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitSubLease(context.Background(), Normal, "late", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}
}
