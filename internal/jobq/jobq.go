// Package jobq is a bounded, prioritized job queue with graceful drain —
// the execution backbone of the wavemind batch optimization service.
//
// Jobs are submitted into one of three priority lanes and executed by a
// fixed pool of workers, always highest lane first, FIFO within a lane.
// The queue is bounded: when the backlog is at capacity Submit fails fast
// with ErrFull so the caller can push back (HTTP 429) instead of letting
// latency grow without bound. Draining stops intake (ErrDraining) while
// the workers finish every job already accepted — the SIGTERM story.
//
// The queue runs jobs, it does not time them out: each job carries the
// context it was submitted with, so per-job deadlines (which keep ticking
// while the job waits in the backlog) are enforced by the job's own
// Run function and by the solvers' context plumbing.
package jobq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Priority selects the lane. Higher priorities are always dequeued first;
// within a lane, jobs run in submission order.
type Priority int

const (
	High Priority = iota
	Normal
	Low
	numLanes
)

// String returns the wire name of the priority.
func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Normal:
		return "normal"
	case Low:
		return "low"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// ParsePriority parses a wire-form priority. The empty string means
// Normal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "high":
		return High, nil
	case "normal", "":
		return Normal, nil
	case "low":
		return Low, nil
	default:
		return Normal, fmt.Errorf("jobq: unknown priority %q (want high, normal, or low)", s)
	}
}

// ErrFull reports that the backlog is at capacity; the caller should back
// off for about RetryAfter and resubmit.
var ErrFull = errors.New("jobq: queue full")

// ErrDraining reports that the queue has stopped accepting work (shutdown
// in progress).
var ErrDraining = errors.New("jobq: draining")

type job struct {
	ctx context.Context
	run func(ctx context.Context)
}

// Stats is a point-in-time snapshot of the queue.
type Stats struct {
	Queued    [numLanes]int // backlog per lane (High, Normal, Low)
	Running   int
	Executed  int64
	Rejected  int64 // Submit calls failed with ErrFull
	AvgJobDur time.Duration
}

// Queue is a bounded priority job queue. Construct with New; safe for
// concurrent use.
type Queue struct {
	capacity int
	workers  int

	mu       sync.Mutex
	cond     *sync.Cond
	lanes    [numLanes][]*job
	queued   int
	running  int
	draining bool
	executed int64
	rejected int64
	avgNs    float64 // EWMA of job wall time, ns

	wg sync.WaitGroup
}

// New starts a queue with the given backlog capacity and worker count.
// Capacity bounds jobs WAITING (running jobs don't count); capacity < 1
// is raised to 1, workers < 1 to 1.
func New(capacity, workers int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 1 {
		workers = 1
	}
	q := &Queue{capacity: capacity, workers: workers}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// Submit enqueues run in the lane for pri. The context travels with the
// job and is handed to run when a worker picks it up — a deadline on it
// keeps counting down while the job waits. Returns ErrFull when the
// backlog is at capacity and ErrDraining after Drain has begun.
func (q *Queue) Submit(ctx context.Context, pri Priority, run func(ctx context.Context)) error {
	if pri < High || pri > Low {
		return fmt.Errorf("jobq: invalid priority %d", int(pri))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return ErrDraining
	}
	if q.queued >= q.capacity {
		q.rejected++
		return ErrFull
	}
	q.lanes[pri] = append(q.lanes[pri], &job{ctx: ctx, run: run})
	q.queued++
	q.cond.Signal()
	return nil
}

// worker executes jobs until drain empties the backlog.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for q.queued == 0 && !q.draining {
			q.cond.Wait()
		}
		if q.queued == 0 {
			// Draining and nothing left to pick up: this worker is done.
			q.mu.Unlock()
			return
		}
		var j *job
		for lane := range q.lanes {
			if len(q.lanes[lane]) > 0 {
				j = q.lanes[lane][0]
				q.lanes[lane][0] = nil
				q.lanes[lane] = q.lanes[lane][1:]
				break
			}
		}
		q.queued--
		q.running++
		q.mu.Unlock()

		start := time.Now()
		j.run(j.ctx)
		dur := time.Since(start)

		q.mu.Lock()
		q.running--
		q.executed++
		// EWMA with α=0.2: smooth enough for a Retry-After estimate,
		// responsive enough to follow workload shifts.
		if q.avgNs == 0 {
			q.avgNs = float64(dur)
		} else {
			q.avgNs += 0.2 * (float64(dur) - q.avgNs)
		}
		q.mu.Unlock()
	}
}

// Drain stops intake and waits until every accepted job (queued or
// running) has finished, or until ctx expires. After Drain begins, Submit
// returns ErrDraining. Drain is idempotent; concurrent calls all wait for
// the same completion.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.draining = true
	q.cond.Broadcast()
	q.mu.Unlock()
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Depth returns the current backlog size (all lanes, excluding running
// jobs).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// RetryAfter estimates how long a rejected caller should wait before
// resubmitting: the time for the pool to work one queue-capacity of
// backlog off, based on the average job duration seen so far. Never less
// than a second — the estimate is coarse and clients should not busy-poll.
func (q *Queue) RetryAfter() time.Duration {
	q.mu.Lock()
	avg := q.avgNs
	depth := q.queued
	q.mu.Unlock()
	if avg == 0 {
		return time.Second
	}
	slots := (depth + q.workers) / q.workers
	est := time.Duration(avg * float64(slots))
	if est < time.Second {
		return time.Second
	}
	return est.Round(time.Second)
}

// Snapshot returns the queue's counters.
func (q *Queue) Snapshot() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Running:   q.running,
		Executed:  q.executed,
		Rejected:  q.rejected,
		AvgJobDur: time.Duration(q.avgNs),
	}
	for lane := range q.lanes {
		st.Queued[lane] = len(q.lanes[lane])
	}
	return st
}
