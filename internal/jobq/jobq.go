// Package jobq is a bounded, prioritized job queue with graceful drain —
// the execution backbone of the wavemind batch optimization service.
//
// Jobs are submitted into one of three priority lanes and executed by a
// fixed pool of workers, highest lane first, FIFO within a lane, with a
// starvation guard: a lane passed over for fairShare consecutive
// dequeues gets the next slot, so a continuous high-priority stream
// cannot pin low-priority work in the backlog forever. The queue is
// bounded: when the backlog is at capacity Submit fails fast with
// ErrFull so the caller can push back (HTTP 429) instead of letting
// latency grow without bound. Draining stops intake (ErrDraining) while
// the workers finish every job already accepted — the SIGTERM story.
//
// Beyond the push pool, the queue is also a lease state machine — the
// substrate of the internal/dispatch coordinator/worker layer. A
// leasable job (SubmitLeasable) carries an opaque payload instead of a
// run function and is pulled by external consumers via Lease/LeaseWait,
// which grant exclusive, heartbeat-renewed ownership for the queue's
// lease TTL. Complete and Fail resolve the lease; a lease whose
// heartbeats lapse (ExpireLeases) puts the job back at the front of its
// lane and counts an attempt, until the retry budget is spent and the
// job fails with *RetryExhaustedError. The submitter observes the whole
// lifecycle through a Ticket and an optional per-job event callback.
// When a lease executor is installed (SetLeaseExecutor) the push pool
// runs leasable jobs too, so a queue with no external consumers still
// makes progress.
//
// The queue runs jobs, it does not time them out: each job carries the
// context it was submitted with, so per-job deadlines (which keep
// ticking while the job waits in the backlog — and while it is leased)
// are enforced by the job's own Run function, by the solvers' context
// plumbing, and, for leasable jobs, by the cull in Lease/ExpireLeases
// that resolves a dead-context job without handing it to anyone.
package jobq

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"wavemin/internal/wal"
)

// Priority selects the lane. Higher priorities are always dequeued first;
// within a lane, jobs run in submission order.
type Priority int

const (
	High Priority = iota
	Normal
	Low
	numLanes
)

// fairShare is the starvation bound: a lane with work that has been
// passed over this many consecutive dequeues is serviced next, ahead of
// higher-priority lanes. Strict priority below the bound, bounded wait
// above it.
const fairShare = 8

// String returns the wire name of the priority.
func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Normal:
		return "normal"
	case Low:
		return "low"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// ParsePriority parses a wire-form priority. The empty string means
// Normal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "high":
		return High, nil
	case "normal", "":
		return Normal, nil
	case "low":
		return Low, nil
	default:
		return Normal, fmt.Errorf("jobq: unknown priority %q (want high, normal, or low)", s)
	}
}

// ErrFull reports that the backlog is at capacity; the caller should back
// off for about RetryAfter and resubmit.
var ErrFull = errors.New("jobq: queue full")

// ErrDraining reports that the queue has stopped accepting work (shutdown
// in progress).
var ErrDraining = errors.New("jobq: draining")

// ErrUnknownLease reports a lease ID that is not currently active: never
// granted, already resolved, or expired and requeued. A consumer holding
// such an ID no longer owns the job and must not apply its result.
var ErrUnknownLease = errors.New("jobq: unknown, expired, or already-resolved lease")

// RetryExhaustedError reports that a leasable job burned its whole retry
// budget on lapsed leases without ever being completed.
type RetryExhaustedError struct {
	Attempts int   // lease grants consumed
	Last     error // what ended the final attempt
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("jobq: job failed after %d lease attempts (last: %v)", e.Attempts, e.Last)
}

func (e *RetryExhaustedError) Unwrap() error { return e.Last }

type job struct {
	ctx    context.Context
	cancel context.CancelFunc        // non-nil only for restored deadline contexts
	run    func(ctx context.Context) // push job; nil for leasable jobs

	// Leasable-job state, guarded by the queue mutex.
	id        uint64 // journal identity; 0 = never journaled
	pri       Priority
	payload   any
	ticket    *Ticket
	onEvent   func(LeaseEvent)
	attempts  int
	leaseID   string
	leaseExp  time.Time
	grantedAt time.Time
}

func (j *job) leasable() bool { return j.ticket != nil }

// Ticket is the submitter's handle on a leasable job: Done closes when
// the job reaches a terminal state, after which Outcome returns the
// result a consumer completed it with, or the error that ended it.
type Ticket struct {
	done chan struct{}

	mu       sync.Mutex
	resolved bool
	result   any
	err      error
	attempts int
}

// Done returns a channel closed when the job is terminal.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Outcome returns the job's result or terminal error. Valid after Done
// is closed; before that it returns (nil, nil).
func (t *Ticket) Outcome() (any, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result, t.err
}

// Attempts returns how many lease grants the job consumed.
func (t *Ticket) Attempts() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

func (t *Ticket) resolve(result any, err error, attempts int) {
	t.mu.Lock()
	if !t.resolved {
		t.resolved = true
		t.result = result
		t.err = err
		t.attempts = attempts
		close(t.done)
	}
	t.mu.Unlock()
}

// Lease is exclusive, time-bounded ownership of one leasable job. The
// holder must Complete or Fail it before Deadline, or extend the lease
// with Heartbeat; otherwise the job is requeued for someone else.
type Lease struct {
	ID      string
	Attempt int // 1-based grant count, this grant included
	Payload any
	// Ctx is the submitter's context: its deadline keeps ticking while
	// the job is leased, and the holder should bound its work by it.
	Ctx      context.Context
	TTL      time.Duration
	Deadline time.Time // heartbeat deadline (lease expiry, not job deadline)
}

// LeaseEventKind enumerates the lifecycle transitions of a leasable job.
type LeaseEventKind int

const (
	// LeaseGranted: the job was handed to a consumer (Local reports a
	// push-pool run rather than an external lease).
	LeaseGranted LeaseEventKind = iota
	// LeaseRequeued: the lease lapsed (or failed retryably) and the job
	// went back to the front of its lane. Err carries the reason.
	LeaseRequeued
	// LeaseCompleted: terminal success; Result carries the outcome.
	LeaseCompleted
	// LeaseFailed: terminal, non-retryable failure; Err carries it.
	LeaseFailed
	// LeaseExpired: terminal; the job's own context ended (deadline or
	// cancellation). Err carries the context error.
	LeaseExpired
	// LeaseExhausted: terminal; the retry budget is spent. Err is a
	// *RetryExhaustedError.
	LeaseExhausted
)

// LeaseEvent is one lifecycle transition, delivered to the callback
// registered at SubmitLeasable. Events for one job are strictly ordered.
// The callback runs with the queue's internal lock held: it must be fast
// and MUST NOT call back into the Queue.
type LeaseEvent struct {
	Kind    LeaseEventKind
	Attempt int
	Local   bool // grant went to the local push pool, not an external lease
	Result  any  // LeaseCompleted only
	Err     error
}

// Stats is a point-in-time snapshot of the queue.
type Stats struct {
	Queued      [numLanes]int // backlog per lane (High, Normal, Low)
	Running     int           // push-pool executions in flight
	Leased      int           // active external leases
	Outstanding int           // leasable jobs not yet terminal (queued, leased, or running)
	Executed    int64
	Rejected    int64 // Submit calls failed with ErrFull
	AvgJobDur   time.Duration
}

// Queue is a bounded priority job queue. Construct with New; safe for
// concurrent use.
type Queue struct {
	capacity int
	workers  int

	mu          sync.Mutex
	cond        *sync.Cond
	lanes       [numLanes][]*job
	starve      [numLanes]int
	queued      int
	running     int
	draining    bool
	executed    int64
	rejected    int64
	avgNs       float64 // EWMA of job wall time, ns
	leaseTTL    time.Duration
	maxAttempts int
	leaseSeq    int64
	leaseEpoch  string
	leases      map[string]*job
	outstanding int
	leaseExec   func(ctx context.Context, payload any) (any, error)
	retryHint   time.Duration

	// Durability (see journal.go). jrnl/codec are set once by
	// AttachJournal before serving; jobSeq assigns journal identities.
	jrnl        *wal.Writer
	codec       PayloadCodec
	jobSeq      uint64
	journalErrs atomic.Int64

	wg sync.WaitGroup
}

// New starts a queue with the given backlog capacity and worker count.
// Capacity bounds jobs WAITING (running jobs don't count); capacity < 1
// is raised to 1, workers < 1 to 1.
func New(capacity, workers int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 1 {
		workers = 1
	}
	q := &Queue{
		capacity:    capacity,
		workers:     workers,
		leaseTTL:    15 * time.Second,
		maxAttempts: 3,
		retryHint:   time.Second,
		// Lease IDs carry a per-incarnation epoch so that after a crash
		// and journal replay, a stale worker holding a pre-crash lease can
		// never collide with a freshly issued ID: its mutations are
		// rejected as stale instead of double-applying.
		leaseEpoch: fmt.Sprintf("%x", time.Now().UnixNano()),
		leases:     make(map[string]*job),
	}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// SetLeasePolicy sets the lease TTL (heartbeat deadline extension) and
// the retry budget for leasable jobs. Defaults: 15s, 3 attempts.
func (q *Queue) SetLeasePolicy(ttl time.Duration, maxAttempts int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if ttl > 0 {
		q.leaseTTL = ttl
	}
	if maxAttempts > 0 {
		q.maxAttempts = maxAttempts
	}
}

// SetLeaseExecutor lets the push pool run leasable jobs too: when no
// external consumer leases a job first, a pool worker executes fn on its
// payload and resolves the ticket with the outcome — so a queue with
// zero external consumers still drains leasable work. A nil fn restores
// pull-only behavior.
func (q *Queue) SetLeaseExecutor(fn func(ctx context.Context, payload any) (any, error)) {
	q.mu.Lock()
	q.leaseExec = fn
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Submit enqueues run in the lane for pri. The context travels with the
// job and is handed to run when a worker picks it up — a deadline on it
// keeps counting down while the job waits. Returns ErrFull when the
// backlog is at capacity and ErrDraining after Drain has begun.
func (q *Queue) Submit(ctx context.Context, pri Priority, run func(ctx context.Context)) error {
	if pri < High || pri > Low {
		return fmt.Errorf("jobq: invalid priority %d", int(pri))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return ErrDraining
	}
	if q.queued >= q.capacity {
		q.rejected++
		return ErrFull
	}
	q.lanes[pri] = append(q.lanes[pri], &job{ctx: ctx, run: run, pri: pri})
	q.queued++
	q.cond.Broadcast()
	return nil
}

// SubmitLeasable enqueues a pull-mode job: payload travels to whichever
// consumer leases it (or to the lease executor). onEvent, if non-nil,
// observes every lifecycle transition; it runs under the queue lock and
// must not call back into the Queue. The returned Ticket resolves when
// the job is terminal. Capacity and drain rules match Submit.
//
// With a journal attached (AttachJournal), the accept is ack-gated: the
// Ticket is returned only after the accept record is durable, so a
// submitter that has a Ticket holds a job that survives any crash. A
// journal failure rejects the submission.
func (q *Queue) SubmitLeasable(ctx context.Context, pri Priority, payload any, onEvent func(LeaseEvent)) (*Ticket, error) {
	if pri < High || pri > Low {
		return nil, fmt.Errorf("jobq: invalid priority %d", int(pri))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil, ErrDraining
	}
	if q.queued >= q.capacity {
		q.rejected++
		q.mu.Unlock()
		return nil, ErrFull
	}
	t := &Ticket{done: make(chan struct{})}
	j := &job{ctx: ctx, pri: pri, payload: payload, ticket: t, onEvent: onEvent}
	var commit *wal.Commit
	if q.jrnl != nil {
		enc, err := q.codec.Encode(payload)
		if err != nil {
			q.mu.Unlock()
			return nil, fmt.Errorf("jobq: encode payload for journal: %w", err)
		}
		q.jobSeq++
		j.id = q.jobSeq
		var dl int64
		if d, ok := ctx.Deadline(); ok {
			dl = d.UnixNano()
		}
		commit, err = q.appendJournalLocked(opAccept, j, enc, dl)
		if err != nil {
			q.journalErrs.Add(1)
			q.mu.Unlock()
			return nil, fmt.Errorf("jobq: journal accept: %w", err)
		}
	}
	q.lanes[pri] = append(q.lanes[pri], j)
	q.queued++
	q.outstanding++
	q.cond.Broadcast()
	q.mu.Unlock()
	if commit != nil {
		if err := commit.Wait(); err != nil {
			// Not durable: withdraw the job if nothing grabbed it yet so
			// the caller's rejection is honest. If it was already picked
			// up it will run — the caller was told "no" and a duplicate
			// resubmission is deduplicated downstream by content key.
			q.journalErrs.Add(1)
			q.mu.Lock()
			if q.removeQueuedLocked(j) {
				q.queued--
				q.resolveLocked(j, nil, err, LeaseFailed)
			}
			q.mu.Unlock()
			return nil, fmt.Errorf("jobq: journal accept not durable: %w", err)
		}
	}
	return t, nil
}

// SubmitSubLease enqueues a pull-mode job that is a sub-unit of an
// already-accepted parent job — internal/yield's Monte Carlo chunks. It
// behaves exactly like SubmitLeasable except the job is never journaled:
// durability belongs to the parent (which re-derives and resubmits its
// sub-units on recovery), so journaling each chunk would only multiply
// WAL traffic for records that are meaningless without the parent. The
// un-journaled job keeps id 0, which the journal layer treats as
// "skip every record for this job".
//
// Submissions during drain are refused with ErrDraining even though
// push-mode workers may still be running: once the queue is draining,
// workers exit as soon as the backlog empties, and a sub-lease enqueued
// after that would hang forever. Callers fall back to inline execution —
// which, by the chunk determinism contract, produces identical bytes.
func (q *Queue) SubmitSubLease(ctx context.Context, pri Priority, payload any, onEvent func(LeaseEvent)) (*Ticket, error) {
	if pri < High || pri > Low {
		return nil, fmt.Errorf("jobq: invalid priority %d", int(pri))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return nil, ErrDraining
	}
	if q.queued >= q.capacity {
		q.rejected++
		q.mu.Unlock()
		return nil, ErrFull
	}
	t := &Ticket{done: make(chan struct{})}
	j := &job{ctx: ctx, pri: pri, payload: payload, ticket: t, onEvent: onEvent}
	q.lanes[pri] = append(q.lanes[pri], j)
	q.queued++
	q.outstanding++
	q.cond.Broadcast()
	q.mu.Unlock()
	return t, nil
}

func (q *Queue) emitLocked(j *job, ev LeaseEvent) {
	if j.onEvent != nil {
		j.onEvent(ev)
	}
}

// resolveLocked moves a leasable job to a terminal state: journals the
// transition, emits the event, resolves the ticket, and releases the
// outstanding slot. Caller holds q.mu and has already removed the job
// from lanes/leases. The returned commit (nil when not journaled) lets
// ack-gated callers wait for durability after unlocking; everyone else
// ignores it and the record rides the next group commit.
func (q *Queue) resolveLocked(j *job, result any, err error, kind LeaseEventKind) *wal.Commit {
	var op string
	switch kind {
	case LeaseCompleted:
		op = opComplete
	case LeaseFailed:
		op = opFail
	case LeaseExpired:
		op = opExpire
	case LeaseExhausted:
		op = opExhaust
	}
	var commit *wal.Commit
	if op != "" {
		var jerr error
		commit, jerr = q.appendJournalLocked(op, j, nil, 0)
		if jerr != nil {
			q.journalErrs.Add(1)
		}
	}
	if j.cancel != nil {
		j.cancel()
	}
	q.emitLocked(j, LeaseEvent{Kind: kind, Attempt: j.attempts, Result: result, Err: err})
	j.ticket.resolve(result, err, j.attempts)
	q.outstanding--
	q.cond.Broadcast()
	return commit
}

// cullLocked resolves queued leasable jobs whose context already ended,
// so an expired job never costs a lease grant or an executor run.
func (q *Queue) cullLocked() int {
	n := 0
	for lane := range q.lanes {
		kept := q.lanes[lane][:0]
		for _, j := range q.lanes[lane] {
			if j.leasable() && j.ctx.Err() != nil {
				q.queued--
				q.resolveLocked(j, nil, j.ctx.Err(), LeaseExpired)
				n++
				continue
			}
			kept = append(kept, j)
		}
		// Zero the tail so dropped jobs don't linger in the backing array.
		for i := len(kept); i < len(q.lanes[lane]); i++ {
			q.lanes[lane][i] = nil
		}
		q.lanes[lane] = kept
	}
	return n
}

// pickLocked removes and returns the next job for a consumer that can
// run push jobs (wantPush) and/or leasable jobs (wantLease): strict
// priority with the fairShare starvation guard, FIFO within a lane.
func (q *Queue) pickLocked(wantPush, wantLease bool) *job {
	eligible := func(j *job) bool {
		if j.leasable() {
			return wantLease
		}
		return wantPush
	}
	var idx [numLanes]int
	for lane := range q.lanes {
		idx[lane] = -1
		for i, j := range q.lanes[lane] {
			if eligible(j) {
				idx[lane] = i
				break
			}
		}
	}
	chosen := -1
	for lane := range q.lanes {
		if idx[lane] >= 0 && q.starve[lane] >= fairShare {
			chosen = lane
			break
		}
	}
	if chosen < 0 {
		for lane := range q.lanes {
			if idx[lane] >= 0 {
				chosen = lane
				break
			}
		}
	}
	if chosen < 0 {
		return nil
	}
	i := idx[chosen]
	j := q.lanes[chosen][i]
	copy(q.lanes[chosen][i:], q.lanes[chosen][i+1:])
	q.lanes[chosen][len(q.lanes[chosen])-1] = nil
	q.lanes[chosen] = q.lanes[chosen][:len(q.lanes[chosen])-1]
	q.queued--
	q.starve[chosen] = 0
	for lane := range q.lanes {
		if lane != chosen && len(q.lanes[lane]) > 0 {
			q.starve[lane]++
		}
	}
	return j
}

// worker executes jobs until drain empties the backlog.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		var j *job
		for {
			q.cullLocked()
			j = q.pickLocked(true, q.leaseExec != nil)
			if j != nil {
				break
			}
			if q.draining && q.queued == 0 {
				q.mu.Unlock()
				return
			}
			q.cond.Wait()
		}
		if j.leasable() {
			j.attempts++
			exec := q.leaseExec
			q.running++
			q.journalAsyncLocked(opGrant, j)
			q.emitLocked(j, LeaseEvent{Kind: LeaseGranted, Attempt: j.attempts, Local: true})
			q.mu.Unlock()

			start := time.Now()
			result, err := runLeaseExec(exec, j.ctx, j.payload)
			dur := time.Since(start)

			q.mu.Lock()
			q.running--
			q.executed++
			q.observeLocked(dur)
			if err != nil {
				kind := LeaseFailed
				if j.ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
					kind = LeaseExpired
				}
				q.resolveLocked(j, nil, err, kind)
			} else {
				q.resolveLocked(j, result, nil, LeaseCompleted)
			}
			q.mu.Unlock()
			continue
		}
		q.running++
		q.mu.Unlock()

		start := time.Now()
		j.run(j.ctx)
		dur := time.Since(start)

		q.mu.Lock()
		q.running--
		q.executed++
		q.observeLocked(dur)
		q.mu.Unlock()
	}
}

// runLeaseExec runs the lease executor with the panic/expiry guards the
// push pool needs: a dead job context short-circuits without invoking
// the executor, and an executor panic becomes a job failure rather than
// a dead pool worker.
func runLeaseExec(exec func(ctx context.Context, payload any) (any, error), ctx context.Context, payload any) (result any, err error) {
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	defer func() {
		if p := recover(); p != nil {
			result, err = nil, fmt.Errorf("jobq: lease executor panic: %v", p)
		}
	}()
	return exec(ctx, payload)
}

// observeLocked folds one job duration into the EWMA behind RetryAfter.
// α=0.2: smooth enough for a Retry-After estimate, responsive enough to
// follow workload shifts.
func (q *Queue) observeLocked(dur time.Duration) {
	if dur < 0 {
		return
	}
	if q.avgNs == 0 {
		q.avgNs = float64(dur)
	} else {
		q.avgNs += 0.2 * (float64(dur) - q.avgNs)
	}
}

// Lease grants exclusive ownership of the next leasable job, if one is
// ready. The returned lease must be completed, failed, or heartbeat-
// renewed before its Deadline, or the job is requeued.
func (q *Queue) Lease() (*Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.leaseLocked()
}

func (q *Queue) leaseLocked() (*Lease, bool) {
	q.cullLocked()
	j := q.pickLocked(false, true)
	if j == nil {
		return nil, false
	}
	j.attempts++
	q.leaseSeq++
	j.leaseID = fmt.Sprintf("L-%s-%08d", q.leaseEpoch, q.leaseSeq)
	now := time.Now()
	j.leaseExp = now.Add(q.leaseTTL)
	j.grantedAt = now
	q.leases[j.leaseID] = j
	// Grants are journaled but not ack-gated: a lost grant record just
	// means replay sees the job as still queued, which is where a
	// crashed coordinator's leases end up anyway.
	q.journalAsyncLocked(opGrant, j)
	q.emitLocked(j, LeaseEvent{Kind: LeaseGranted, Attempt: j.attempts})
	return &Lease{
		ID:       j.leaseID,
		Attempt:  j.attempts,
		Payload:  j.payload,
		Ctx:      j.ctx,
		TTL:      q.leaseTTL,
		Deadline: j.leaseExp,
	}, true
}

// LeaseWait blocks until a leasable job is available, ctx ends, or the
// queue is draining with no leasable work left (ErrDraining) — the
// long-poll primitive behind the dispatch coordinator's lease endpoint.
// While draining it still grants leases: accepted work must finish.
func (q *Queue) LeaseWait(ctx context.Context) (*Lease, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if l, ok := q.leaseLocked(); ok {
			return l, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if q.draining && q.outstanding == 0 {
			return nil, ErrDraining
		}
		q.cond.Wait()
	}
}

// Heartbeat extends a lease by the queue's TTL and returns the new TTL.
// ErrUnknownLease means the holder no longer owns the job (resolved, or
// expired and requeued). A dead job context resolves the job and returns
// the context error — the holder should stop working on it.
func (q *Queue) Heartbeat(leaseID string) (time.Duration, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.leases[leaseID]
	if !ok {
		return 0, ErrUnknownLease
	}
	if err := j.ctx.Err(); err != nil {
		delete(q.leases, leaseID)
		q.resolveLocked(j, nil, err, LeaseExpired)
		return 0, fmt.Errorf("jobq: lease %s: job context: %w", leaseID, err)
	}
	j.leaseExp = time.Now().Add(q.leaseTTL)
	return q.leaseTTL, nil
}

// Complete resolves a leased job with its result. ErrUnknownLease means
// the lease is stale (expired, requeued, or already resolved) and the
// result was NOT applied — the at-most-once guard against late or
// replayed completions. With a journal attached, Complete returns only
// after the terminal record is durable, so the caller's acknowledgement
// to the worker never outruns the journal.
func (q *Queue) Complete(leaseID string, result any) error {
	q.mu.Lock()
	j, ok := q.leases[leaseID]
	if !ok {
		q.mu.Unlock()
		return ErrUnknownLease
	}
	delete(q.leases, leaseID)
	q.executed++
	q.observeLocked(time.Since(j.grantedAt))
	commit := q.resolveLocked(j, result, nil, LeaseCompleted)
	q.mu.Unlock()
	q.waitJournal(commit)
	return nil
}

// Fail resolves a leased job with an error. Retryable failures (the
// holder is dying, not the job) requeue the job against the retry
// budget; non-retryable ones (the job itself failed) are terminal.
func (q *Queue) Fail(leaseID string, cause error, retryable bool) error {
	q.mu.Lock()
	j, ok := q.leases[leaseID]
	if !ok {
		q.mu.Unlock()
		return ErrUnknownLease
	}
	delete(q.leases, leaseID)
	if cause == nil {
		cause = errors.New("jobq: job failed")
	}
	var commit *wal.Commit
	switch {
	case j.ctx.Err() != nil:
		commit = q.resolveLocked(j, nil, j.ctx.Err(), LeaseExpired)
	case !retryable:
		commit = q.resolveLocked(j, nil, cause, LeaseFailed)
	default:
		q.requeueLocked(j, cause)
	}
	q.mu.Unlock()
	q.waitJournal(commit)
	return nil
}

// requeueLocked puts a lapsed or retryably-failed job back at the FRONT
// of its lane — a retried job keeps its place in line — or fails it when
// the retry budget is spent.
func (q *Queue) requeueLocked(j *job, cause error) {
	j.leaseID = ""
	if j.attempts >= q.maxAttempts {
		q.resolveLocked(j, nil, &RetryExhaustedError{Attempts: j.attempts, Last: cause}, LeaseExhausted)
		return
	}
	q.journalAsyncLocked(opRequeue, j)
	q.emitLocked(j, LeaseEvent{Kind: LeaseRequeued, Attempt: j.attempts, Err: cause})
	q.lanes[j.pri] = append([]*job{j}, q.lanes[j.pri]...)
	q.queued++
	q.cond.Broadcast()
}

// ExpireLeases requeues every lease whose heartbeat deadline has passed
// (crashed or partitioned holder) and resolves jobs — queued or leased —
// whose own context has ended. The dispatch coordinator calls this on a
// timer; tests call it directly. Returns how many jobs changed state.
func (q *Queue) ExpireLeases() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.cullLocked()
	now := time.Now()
	for id, j := range q.leases {
		if err := j.ctx.Err(); err != nil {
			delete(q.leases, id)
			q.resolveLocked(j, nil, err, LeaseExpired)
			n++
			continue
		}
		if now.After(j.leaseExp) {
			delete(q.leases, id)
			q.requeueLocked(j, fmt.Errorf("jobq: lease %s expired (heartbeat lapsed)", id))
			n++
		}
	}
	return n
}

// Drain stops intake and waits until every accepted job — push jobs
// queued or running, and leasable jobs queued, leased, or retrying — has
// reached a terminal state, or until ctx expires. After Drain begins,
// Submit returns ErrDraining while Lease keeps serving: accepted work
// must finish wherever it runs. Drain is idempotent; concurrent calls
// all wait for the same completion.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.draining = true
	q.cond.Broadcast()
	q.mu.Unlock()
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		q.mu.Lock()
		for q.outstanding > 0 {
			q.cond.Wait()
		}
		q.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Depth returns the current backlog size (all lanes, excluding running
// jobs).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// SetRetryHint sets the Retry-After returned before the queue has seen
// any completion — the cold-start case where the EWMA has no samples and
// the old behavior (a flat 1s) told a client to hammer a queue that was
// full precisely because jobs take much longer than a second. A sensible
// hint is the operator's expected job duration (e.g. the service's
// default solve timeout). Non-positive values are ignored; default 1s.
func (q *Queue) SetRetryHint(d time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if d > 0 {
		q.retryHint = d
	}
}

// RetryAfter estimates how long a rejected caller should wait before
// resubmitting: the time for the pool to work one queue-capacity of
// backlog off, based on the average job duration seen so far. Before any
// sample exists it returns the configured retry hint (SetRetryHint).
// Always positive and finite — clamped to [1s, 1h] — whatever the
// concurrent duration updates did to the estimate.
func (q *Queue) RetryAfter() time.Duration {
	q.mu.Lock()
	avg := q.avgNs
	depth := q.queued
	hint := q.retryHint
	q.mu.Unlock()
	if math.IsNaN(avg) || math.IsInf(avg, 0) || avg <= 0 {
		if hint < time.Second {
			hint = time.Second
		} else if hint > time.Hour {
			hint = time.Hour
		}
		return hint.Round(time.Second)
	}
	slots := (depth + q.workers) / q.workers
	est := time.Duration(avg * float64(slots))
	switch {
	case est < time.Second:
		return time.Second
	case est > time.Hour:
		return time.Hour
	}
	return est.Round(time.Second)
}

// Snapshot returns the queue's counters.
func (q *Queue) Snapshot() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Running:     q.running,
		Leased:      len(q.leases),
		Outstanding: q.outstanding,
		Executed:    q.executed,
		Rejected:    q.rejected,
		AvgJobDur:   time.Duration(q.avgNs),
	}
	for lane := range q.lanes {
		st.Queued[lane] = len(q.lanes[lane])
	}
	return st
}
