package jobq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitTicket waits for a ticket to resolve, failing the test on timeout.
func waitTicket(t *testing.T, tk *Ticket) (any, error) {
	t.Helper()
	select {
	case <-tk.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("ticket did not resolve in time")
	}
	return tk.Outcome()
}

func TestLeaseCompleteResolvesTicket(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())

	var events []LeaseEventKind
	tk, err := q.SubmitLeasable(context.Background(), Normal, "payload-1", func(ev LeaseEvent) {
		events = append(events, ev.Kind)
	})
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}

	l, ok := q.Lease()
	if !ok {
		t.Fatal("Lease: no job available")
	}
	if l.Payload != "payload-1" {
		t.Fatalf("lease payload = %v, want payload-1", l.Payload)
	}
	if l.Attempt != 1 {
		t.Fatalf("lease attempt = %d, want 1", l.Attempt)
	}
	if err := q.Complete(l.ID, 42); err != nil {
		t.Fatalf("Complete: %v", err)
	}

	res, err := waitTicket(t, tk)
	if err != nil {
		t.Fatalf("outcome error: %v", err)
	}
	if res != 42 {
		t.Fatalf("outcome = %v, want 42", res)
	}
	if tk.Attempts() != 1 {
		t.Fatalf("attempts = %d, want 1", tk.Attempts())
	}
	want := []LeaseEventKind{LeaseGranted, LeaseCompleted}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events[%d] = %v, want %v", i, events[i], want[i])
		}
	}
}

func TestLeaseExpiryRequeuesAndExhausts(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	q.SetLeasePolicy(time.Millisecond, 2)

	var mu sync.Mutex
	var events []LeaseEvent
	tk, err := q.SubmitLeasable(context.Background(), Normal, "p", func(ev LeaseEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}

	// Attempt 1: lease, never heartbeat, let it lapse.
	l1, ok := q.Lease()
	if !ok {
		t.Fatal("first Lease: no job")
	}
	time.Sleep(5 * time.Millisecond)
	if n := q.ExpireLeases(); n != 1 {
		t.Fatalf("ExpireLeases = %d, want 1", n)
	}
	// The stale lease must no longer be usable.
	if err := q.Complete(l1.ID, "late"); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("Complete on expired lease: err = %v, want ErrUnknownLease", err)
	}

	// Attempt 2: lease again (budget is 2), let it lapse → exhausted.
	l2, ok := q.Lease()
	if !ok {
		t.Fatal("second Lease: no job")
	}
	if l2.Attempt != 2 {
		t.Fatalf("second lease attempt = %d, want 2", l2.Attempt)
	}
	time.Sleep(5 * time.Millisecond)
	if n := q.ExpireLeases(); n != 1 {
		t.Fatalf("second ExpireLeases = %d, want 1", n)
	}

	_, err = waitTicket(t, tk)
	var rex *RetryExhaustedError
	if !errors.As(err, &rex) {
		t.Fatalf("outcome err = %v, want *RetryExhaustedError", err)
	}
	if rex.Attempts != 2 {
		t.Fatalf("exhausted attempts = %d, want 2", rex.Attempts)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []LeaseEventKind{LeaseGranted, LeaseRequeued, LeaseGranted, LeaseExhausted}
	if len(events) != len(want) {
		t.Fatalf("event kinds = %v, want %v", events, want)
	}
	for i := range want {
		if events[i].Kind != want[i] {
			t.Fatalf("events[%d].Kind = %v, want %v", i, events[i].Kind, want[i])
		}
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	q.SetLeasePolicy(50*time.Millisecond, 3)

	tk, err := q.SubmitLeasable(context.Background(), Normal, "p", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}
	l, ok := q.Lease()
	if !ok {
		t.Fatal("Lease: no job")
	}
	// Keep the lease alive across several TTL windows.
	for i := 0; i < 5; i++ {
		time.Sleep(20 * time.Millisecond)
		ttl, err := q.Heartbeat(l.ID)
		if err != nil {
			t.Fatalf("Heartbeat %d: %v", i, err)
		}
		if ttl <= 0 {
			t.Fatalf("Heartbeat %d: ttl = %v, want > 0", i, ttl)
		}
		if n := q.ExpireLeases(); n != 0 {
			t.Fatalf("ExpireLeases after heartbeat %d = %d, want 0", i, n)
		}
	}
	if err := q.Complete(l.ID, "ok"); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if res, err := waitTicket(t, tk); err != nil || res != "ok" {
		t.Fatalf("outcome = (%v, %v), want (ok, nil)", res, err)
	}
}

func TestFailRetryableAndTerminal(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	q.SetLeasePolicy(time.Minute, 3)

	tk, err := q.SubmitLeasable(context.Background(), Normal, "p", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}

	// Retryable fail: requeued, not terminal.
	l1, _ := q.Lease()
	if err := q.Fail(l1.ID, errors.New("worker dying"), true); err != nil {
		t.Fatalf("retryable Fail: %v", err)
	}
	select {
	case <-tk.Done():
		t.Fatal("ticket resolved after retryable fail")
	default:
	}

	// Terminal fail: resolves with the cause.
	l2, ok := q.Lease()
	if !ok {
		t.Fatal("re-lease after retryable fail: no job")
	}
	cause := errors.New("solver rejected input")
	if err := q.Fail(l2.ID, cause, false); err != nil {
		t.Fatalf("terminal Fail: %v", err)
	}
	_, err = waitTicket(t, tk)
	if !errors.Is(err, cause) {
		t.Fatalf("outcome err = %v, want %v", err, cause)
	}
}

func TestQueuedJobWithDeadCtxIsCulledWithoutLease(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	tk, err := q.SubmitLeasable(ctx, Normal, "p", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}
	cancel()

	// Lease must not hand out the dead job.
	if l, ok := q.Lease(); ok {
		t.Fatalf("Lease granted dead-ctx job %v", l.ID)
	}
	_, err = waitTicket(t, tk)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("outcome err = %v, want context.Canceled", err)
	}
	if tk.Attempts() != 0 {
		t.Fatalf("attempts = %d, want 0 (no lease should have been granted)", tk.Attempts())
	}
}

func TestHeartbeatAfterJobDeadlineResolvesExpired(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	q.SetLeasePolicy(time.Minute, 3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tk, err := q.SubmitLeasable(ctx, Normal, "p", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}
	l, ok := q.Lease()
	if !ok {
		t.Fatal("Lease: no job")
	}
	cancel()
	if _, err := q.Heartbeat(l.ID); err == nil {
		t.Fatal("Heartbeat after job ctx cancel: want error")
	}
	_, err = waitTicket(t, tk)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("outcome err = %v, want context.Canceled", err)
	}
	// The lease is gone; completing it must be rejected.
	if err := q.Complete(l.ID, "late"); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("Complete after expiry: err = %v, want ErrUnknownLease", err)
	}
}

func TestDoubleCompleteRejected(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())

	tk, err := q.SubmitLeasable(context.Background(), Normal, "p", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}
	l, _ := q.Lease()
	if err := q.Complete(l.ID, "first"); err != nil {
		t.Fatalf("first Complete: %v", err)
	}
	if err := q.Complete(l.ID, "second"); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("double Complete: err = %v, want ErrUnknownLease", err)
	}
	res, _ := waitTicket(t, tk)
	if res != "first" {
		t.Fatalf("outcome = %v, want the FIRST completion to win", res)
	}
}

func TestLeaseWaitBlocksUntilWork(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())

	got := make(chan *Lease, 1)
	go func() {
		l, err := q.LeaseWait(context.Background())
		if err != nil {
			t.Errorf("LeaseWait: %v", err)
			close(got)
			return
		}
		got <- l
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	tk, err := q.SubmitLeasable(context.Background(), High, "late-arrival", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}
	select {
	case l := <-got:
		if l == nil {
			t.Fatal("LeaseWait failed")
		}
		if l.Payload != "late-arrival" {
			t.Fatalf("payload = %v", l.Payload)
		}
		if err := q.Complete(l.ID, "ok"); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("LeaseWait did not wake on submission")
	}
	if _, err := waitTicket(t, tk); err != nil {
		t.Fatalf("outcome: %v", err)
	}
}

func TestLeaseWaitHonorsCtxAndDrain(t *testing.T) {
	q := New(4, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.LeaseWait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("LeaseWait with expiring ctx: err = %v, want DeadlineExceeded", err)
	}

	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := q.LeaseWait(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("LeaseWait after drain: err = %v, want ErrDraining", err)
	}
}

func TestDrainWaitsForLeasedJobs(t *testing.T) {
	q := New(4, 1)
	tk, err := q.SubmitLeasable(context.Background(), Normal, "p", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}
	l, ok := q.Lease()
	if !ok {
		t.Fatal("Lease: no job")
	}

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v before the leased job resolved", err)
	case <-time.After(30 * time.Millisecond):
	}

	if err := q.Complete(l.ID, "done"); err != nil {
		t.Fatalf("Complete during drain: %v", err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not finish after the leased job resolved")
	}
	if res, err := waitTicket(t, tk); err != nil || res != "done" {
		t.Fatalf("outcome = (%v, %v)", res, err)
	}
}

func TestLeaseExecutorRunsLeasableJobs(t *testing.T) {
	q := New(8, 2)
	defer q.Drain(context.Background())
	q.SetLeaseExecutor(func(ctx context.Context, payload any) (any, error) {
		return fmt.Sprintf("exec:%v", payload), nil
	})

	var tickets []*Ticket
	for i := 0; i < 5; i++ {
		tk, err := q.SubmitLeasable(context.Background(), Normal, i, nil)
		if err != nil {
			t.Fatalf("SubmitLeasable %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		res, err := waitTicket(t, tk)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if want := fmt.Sprintf("exec:%d", i); res != want {
			t.Fatalf("job %d result = %v, want %v", i, res, want)
		}
	}
}

func TestLeaseExecutorPanicFailsJobNotPool(t *testing.T) {
	q := New(8, 1)
	defer q.Drain(context.Background())
	q.SetLeaseExecutor(func(ctx context.Context, payload any) (any, error) {
		if payload == "boom" {
			panic("executor exploded")
		}
		return "ok", nil
	})

	bad, err := q.SubmitLeasable(context.Background(), Normal, "boom", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}
	good, err := q.SubmitLeasable(context.Background(), Normal, "fine", nil)
	if err != nil {
		t.Fatalf("SubmitLeasable: %v", err)
	}
	if _, err := waitTicket(t, bad); err == nil {
		t.Fatal("panicking job resolved without error")
	}
	// The pool worker must have survived the panic to run this one.
	if res, err := waitTicket(t, good); err != nil || res != "ok" {
		t.Fatalf("job after panic = (%v, %v), want (ok, nil)", res, err)
	}
}
