package jobq

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestNoStarvationUnderHighPriorityStream pins the anti-starvation
// guarantee: a saturated queue fed a continuous high-priority stream
// must still drain low- and normal-priority jobs. Regression for the
// strict-priority scheduler, which would pin the low lanes forever.
func TestNoStarvationUnderHighPriorityStream(t *testing.T) {
	q := New(256, 1)
	defer q.Drain(context.Background())

	var lowDone, normalDone sync.WaitGroup
	const nLow, nNormal = 4, 4
	lowDone.Add(nLow)
	normalDone.Add(nNormal)
	for i := 0; i < nLow; i++ {
		if err := q.Submit(context.Background(), Low, func(ctx context.Context) { lowDone.Done() }); err != nil {
			t.Fatalf("submit low %d: %v", i, err)
		}
	}
	for i := 0; i < nNormal; i++ {
		if err := q.Submit(context.Background(), Normal, func(ctx context.Context) { normalDone.Done() }); err != nil {
			t.Fatalf("submit normal %d: %v", i, err)
		}
	}

	// Continuous high-priority stream: every time a high job finishes,
	// submit another, so the high lane is never empty while the stream
	// runs. Under strict priority the low/normal jobs above would never
	// be dequeued.
	stop := make(chan struct{})
	var streamWG sync.WaitGroup
	var resubmit func()
	resubmit = func() {
		select {
		case <-stop:
			return
		default:
		}
		streamWG.Add(1)
		err := q.Submit(context.Background(), High, func(ctx context.Context) {
			defer streamWG.Done()
			resubmit()
		})
		if err != nil {
			streamWG.Done()
		}
	}
	// Prime a few in-flight high jobs so the lane stays saturated.
	for i := 0; i < 8; i++ {
		resubmit()
	}

	waitAll := func(wg *sync.WaitGroup, what string) {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("%s jobs starved: not drained under continuous high-priority stream", what)
		}
	}
	waitAll(&normalDone, "normal")
	waitAll(&lowDone, "low")
	close(stop)
	streamWG.Wait()
}

// TestFairShareBoundsStarvation pins the bound itself on a single
// deterministic dequeue sequence: with a full high lane and one low job,
// the low job runs after at most fairShare high jobs.
func TestFairShareBoundsStarvation(t *testing.T) {
	q := New(256, 1)
	defer q.Drain(context.Background())

	// Stall the single worker so we can enqueue a deterministic backlog.
	gate := make(chan struct{})
	if err := q.Submit(context.Background(), High, func(ctx context.Context) { <-gate }); err != nil {
		t.Fatalf("submit gate: %v", err)
	}
	time.Sleep(10 * time.Millisecond) // worker picks up the gate job

	var order []string
	var mu sync.Mutex
	record := func(tag string) func(context.Context) {
		return func(ctx context.Context) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	if err := q.Submit(context.Background(), Low, record("low")); err != nil {
		t.Fatalf("submit low: %v", err)
	}
	const nHigh = 3 * fairShare
	for i := 0; i < nHigh; i++ {
		if err := q.Submit(context.Background(), High, record("high")); err != nil {
			t.Fatalf("submit high %d: %v", i, err)
		}
	}
	close(gate)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, tag := range order {
		if tag == "low" {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatalf("low job never ran; order = %v", order)
	}
	if pos > fairShare {
		t.Fatalf("low job ran at position %d, want ≤ %d (fairShare)", pos, fairShare)
	}
}

// TestRetryAfterPositiveFiniteUnderConcurrentUpdates hammers the EWMA
// estimator from many goroutines while reading RetryAfter, pinning that
// the estimate stays positive and finite throughout.
func TestRetryAfterPositiveFiniteUnderConcurrentUpdates(t *testing.T) {
	q := New(1024, 8)
	defer q.Drain(context.Background())

	var stop atomic.Bool
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				ra := q.RetryAfter()
				if ra <= 0 {
					t.Errorf("RetryAfter = %v, want > 0", ra)
					return
				}
				if ra > time.Hour {
					t.Errorf("RetryAfter = %v, want ≤ 1h", ra)
					return
				}
			}
		}()
	}

	var jobs sync.WaitGroup
	for i := 0; i < 400; i++ {
		jobs.Add(1)
		err := q.Submit(context.Background(), Priority(i%3), func(ctx context.Context) {
			defer jobs.Done()
			if rand := time.Duration(1); rand > 0 {
				time.Sleep(time.Microsecond)
			}
		})
		if err != nil {
			jobs.Done()
		}
	}
	jobs.Wait()
	stop.Store(true)
	readers.Wait()

	if ra := q.RetryAfter(); ra < time.Second || ra > time.Hour {
		t.Fatalf("final RetryAfter = %v, want within [1s, 1h]", ra)
	}
}
