package jobq

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPriorityOrdering(t *testing.T) {
	q := New(16, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	var mu sync.Mutex
	var order []string

	// Occupy the single worker so the next submissions pile up in the
	// backlog, then release and observe drain order.
	if err := q.Submit(nil, Normal, func(context.Context) {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	record := func(name string) func(context.Context) {
		return func(context.Context) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	// Submit in worst order: low first, high last.
	for _, s := range []struct {
		pri  Priority
		name string
	}{
		{Low, "low1"}, {Low, "low2"}, {Normal, "norm1"}, {High, "high1"}, {Normal, "norm2"}, {High, "high2"},
	} {
		if err := q.Submit(nil, s.pri, record(s.name)); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{"high1", "high2", "norm1", "norm2", "low1", "low2"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestCapacityBackpressure(t *testing.T) {
	q := New(2, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	if err := q.Submit(nil, Normal, func(context.Context) {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; backlog empty
	if err := q.Submit(nil, Normal, func(context.Context) {}); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(nil, High, func(context.Context) {}); err != nil {
		t.Fatal(err)
	}
	// Backlog now at capacity 2: next submission must fail fast,
	// whatever its priority.
	if err := q.Submit(nil, High, func(context.Context) {}); !errors.Is(err, ErrFull) {
		t.Fatalf("got %v, want ErrFull", err)
	}
	if ra := q.RetryAfter(); ra < time.Second {
		t.Fatalf("RetryAfter %v < 1s floor", ra)
	}
	if st := q.Snapshot(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	close(release)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := q.Snapshot(); st.Executed != 3 {
		t.Fatalf("executed = %d, want 3", st.Executed)
	}
}

func TestDrainCompletesBacklogAndRejectsNew(t *testing.T) {
	q := New(64, 2)
	var mu sync.Mutex
	ran := 0
	slow := make(chan struct{})
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		if err := q.Submit(nil, Normal, func(context.Context) {
			started <- struct{}{}
			<-slow
			mu.Lock()
			ran++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	<-started
	// Both workers are mid-job; queue more work behind them.
	for i := 0; i < 5; i++ {
		if err := q.Submit(nil, Low, func(context.Context) {
			mu.Lock()
			ran++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()
	// Intake must close as soon as drain begins, even while jobs run.
	deadline := time.After(2 * time.Second)
	for {
		err := q.Submit(nil, Normal, func(context.Context) {})
		if errors.Is(err, ErrDraining) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected submit error %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("intake never closed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(slow)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran < 7 {
		t.Fatalf("drain returned with %d jobs run, want at least 7 (in-flight + backlog)", ran)
	}
}

func TestDrainHonorsContext(t *testing.T) {
	q := New(4, 1)
	hung := make(chan struct{})
	started := make(chan struct{})
	if err := q.Submit(nil, Normal, func(context.Context) {
		close(started)
		<-hung
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	close(hung)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobContextTravels(t *testing.T) {
	q := New(4, 1)
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	got := make(chan any, 1)
	if err := q.Submit(ctx, Normal, func(jctx context.Context) {
		got <- jctx.Value(key{})
	}); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != "v" {
		t.Fatalf("job context value = %v", v)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidPriority(t *testing.T) {
	q := New(1, 1)
	if err := q.Submit(nil, Priority(9), func(context.Context) {}); err == nil {
		t.Fatal("invalid priority accepted")
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Fatal("unknown priority parsed")
	}
	for s, want := range map[string]Priority{"high": High, "normal": Normal, "": Normal, "low": Low} {
		got, err := ParsePriority(s)
		if err != nil || got != want {
			t.Fatalf("ParsePriority(%q) = %v, %v", s, got, err)
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSubmitters hammers Submit from many goroutines under -race:
// every accepted job must execute exactly once and the counters must add
// up.
func TestParallelSubmitters(t *testing.T) {
	q := New(32, 4)
	var mu sync.Mutex
	acceptedN, rejectedN, ranN := 0, 0, 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := q.Submit(nil, Priority(i%3), func(context.Context) {
					mu.Lock()
					ranN++
					mu.Unlock()
				})
				mu.Lock()
				if err == nil {
					acceptedN++
				} else if errors.Is(err, ErrFull) {
					rejectedN++
				} else {
					t.Errorf("submit: %v", err)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ranN != acceptedN {
		t.Fatalf("ran %d of %d accepted jobs", ranN, acceptedN)
	}
	if acceptedN+rejectedN != 400 {
		t.Fatalf("accepted %d + rejected %d != 400", acceptedN, rejectedN)
	}
	st := q.Snapshot()
	if int(st.Executed) != acceptedN || int(st.Rejected) != rejectedN {
		t.Fatalf("stats %+v disagree with accepted=%d rejected=%d", st, acceptedN, rejectedN)
	}
}
