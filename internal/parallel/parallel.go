// Package parallel provides the bounded, deterministic fan-out primitive
// used by every parallelized stage of the optimization stack: interval ×
// zone solving, Monte Carlo instances, per-mode waveform evaluation, and
// the experiment table rows.
//
// The contract is built for bitwise-deterministic results regardless of
// worker count:
//
//   - Work is identified by index; callers write results into pre-indexed
//     slots and merge them *after* ForEach returns, in index order. The
//     pool never reorders, batches, or merges anything itself.
//   - Workers <= 1 (after resolution) degenerates to the plain serial loop
//     on the calling goroutine — the exact code path the serial
//     implementation used.
//   - On error, the error of the lowest-numbered failed index is returned,
//     so the surfaced error does not depend on goroutine scheduling for
//     deterministic workloads. Dispatch stops early, so under
//     cancellation not every index runs; the caller must treat the result
//     slots as invalid when an error is returned.
//   - A panicking worker stops the pool and the panic is re-raised on the
//     calling goroutine wrapped in *Panic, preserving the worker's stack.
//     The wavemin facade recognizes *Panic and converts it into
//     *wavemin.InternalError exactly as it does for serial panics.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"wavemin/internal/obs"
)

// Panic carries a panic captured on a worker goroutine across the pool
// boundary. ForEach re-panics with a *Panic; recover boundaries should
// unwrap Value/Stack to report the original fault.
type Panic struct {
	Value any    // the worker's panic value
	Stack []byte // the worker goroutine's stack at the panic
}

// Error implements error so a *Panic also reads well if it escapes to a
// generic recover handler.
func (p *Panic) Error() string { return fmt.Sprintf("parallel: worker panic: %v", p.Value) }

// Workers resolves a worker-count knob: values <= 0 mean "one worker per
// available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 resolves to GOMAXPROCS, and is additionally capped at n).
// It returns after every started call has finished.
//
// The context is checked before each dispatch; after cancellation no new
// indices start and ctx.Err() is returned (unless an fn error with a
// lower index is recorded, which wins). fn must also honor ctx itself for
// prompt cancellation of long-running items.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// Telemetry: the item count is deterministic content; the resolved
	// pool width and per-worker tallies depend on GOMAXPROCS and
	// scheduling, so they go into the Sched (timing) block, which the
	// determinism contract excludes.
	sp := obs.FromContext(ctx)
	if sp != nil {
		sp.Count("parallel.items", int64(n))
		sp.Sched("parallel.workers", int64(workers))
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		if sp != nil {
			sp.Sched("parallel.worker[0].items", int64(n))
		}
		return nil
	}

	var (
		next atomic.Int64 // next index to dispatch
		stop atomic.Bool  // set on first error/panic/cancel: stop dispatching
		wg   sync.WaitGroup

		mu       sync.Mutex
		firstIdx int
		firstErr error
		pan      *Panic
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if pan == nil {
					pan = &Panic{Value: r, Stack: debug.Stack()}
				}
				mu.Unlock()
				stop.Store(true)
			}
		}()
		if err := fn(i); err != nil {
			record(i, err)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var done int64
			for !stop.Load() {
				if ctx.Err() != nil {
					stop.Store(true)
					break
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				runOne(i)
				done++
			}
			if sp != nil {
				sp.Sched(fmt.Sprintf("parallel.worker[%d].items", w), done)
			}
		}(w)
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
