package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		counts := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSerialMatchesParallel(t *testing.T) {
	// The same deterministic workload must produce identical result slots
	// under any worker count.
	run := func(workers int) []float64 {
		out := make([]float64, 64)
		if err := ForEach(context.Background(), workers, len(out), func(i int) error {
			v := 1.0
			for k := 0; k < i%13+1; k++ {
				v = v*1.000001 + float64(i)
			}
			out[i] = v
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %g, want %g", w, i, got[i], want[i])
			}
		}
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Indices 10 and 40 fail; whichever order the workers hit them, the
	// reported error must be index 10's once both have run. Force both to
	// run by failing only after every index was dispatched.
	for trial := 0; trial < 20; trial++ {
		errAt := func(i int) error { return fmt.Errorf("boom at %d", i) }
		err := ForEach(context.Background(), 8, 50, func(i int) error {
			if i == 10 || i == 40 {
				time.Sleep(time.Millisecond) // let both get dispatched
				return errAt(i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if !strings.Contains(err.Error(), "boom at") {
			t.Fatalf("unexpected error %v", err)
		}
	}
}

func TestForEachSerialErrorShortCircuits(t *testing.T) {
	ran := 0
	err := ForEach(context.Background(), 1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || err.Error() != "stop" {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Fatalf("serial path ran %d items after error, want 4", ran)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEach(ctx, 4, 100, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Serial path too.
	if err := ForEach(ctx, 1, 100, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
}

func TestForEachPanicPropagatesWithWorkerStack(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected re-panic")
		}
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *Panic", r)
		}
		if p.Value != "worker exploded" {
			t.Fatalf("panic value = %v", p.Value)
		}
		if !strings.Contains(string(p.Stack), "parallel_test") {
			t.Fatal("stack does not point at the panicking worker")
		}
		if !strings.Contains(p.Error(), "worker exploded") {
			t.Fatalf("Error() = %q", p.Error())
		}
	}()
	_ = ForEach(context.Background(), 4, 16, func(i int) error {
		if i == 5 {
			panic("worker exploded")
		}
		return nil
	})
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", w)
	}
	if w := Workers(5); w != 5 {
		t.Fatalf("Workers(5) = %d", w)
	}
}
