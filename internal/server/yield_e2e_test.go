package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"wavemin/internal/dispatch"
	"wavemin/internal/faultinject"
	"wavemin/internal/yield"
)

// yieldReqBody builds the canonical yield-mode request the e2e scenarios
// share: identical bytes into every server, so responses are comparable
// byte for byte.
func yieldReqBody(t *testing.T) []byte {
	t.Helper()
	return marshalReq(t, map[string]any{
		"tree":   smallTreeJSON(t, 8),
		"config": fastConfig(),
		"yield": map[string]any{
			"sigma":      0.08,
			"kappa":      200,
			"samples":    256,
			"candidates": 3,
			"seed":       7,
		},
		"timeoutMs": 60000,
	})
}

// runYieldJob submits the body, waits for completion, and returns the
// finished view plus the raw result bytes.
func runYieldJob(t *testing.T, h *harness, body []byte) (jobView, json.RawMessage) {
	t.Helper()
	code, resp := h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("POST yield: status %d: %v", code, resp)
	}
	v := h.waitJob(jobID(t, resp), 60*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("yield job ended %s: %s", v.Status, v.Error)
	}
	_, res := h.resultBody(v.JobID)
	return v, res
}

// TestYieldEndToEndLocal drives yield mode through the plain in-process
// server: report shape, job decoration, early-stop metrics, and the
// cache replay contract under the extended key.
func TestYieldEndToEndLocal(t *testing.T) {
	h := newHarness(t, Options{Workers: 2, DefaultTimeout: time.Minute, MaxTimeout: time.Minute})
	body := yieldReqBody(t)
	v, res := runYieldJob(t, h, body)
	if v.AlgorithmUsed != yield.AlgorithmYieldMC {
		t.Fatalf("algorithmUsed = %q, want %q", v.AlgorithmUsed, yield.AlgorithmYieldMC)
	}
	var rep yield.Report
	if err := json.Unmarshal(res, &rep); err != nil {
		t.Fatalf("result is not a yield report: %v", err)
	}
	if rep.Mode != "yield" || len(rep.Candidates) == 0 {
		t.Fatalf("malformed report: %+v", rep)
	}
	if rep.Winner < 0 || rep.Winner >= len(rep.Candidates) {
		t.Fatalf("winner %d out of range", rep.Winner)
	}
	w := rep.Candidates[rep.Winner]
	if w.Yield < 0 || w.Yield > 1 || w.NominalSkew > rep.Kappa {
		t.Fatalf("winner violates invariants: %+v", w)
	}
	if len(rep.Result) == 0 {
		t.Fatal("report carries no winning result")
	}

	// The acceptance criterion, at the metrics level: early stopping
	// demonstrably spent less than the budget.
	m := h.srv.MetricsSnapshot()
	if m.YieldJobs != 1 {
		t.Fatalf("YieldJobs = %d, want 1", m.YieldJobs)
	}
	if m.YieldSamplesSaved <= 0 || m.YieldEarlyStops != 1 {
		t.Fatalf("early stop not visible in metrics: saved=%d stops=%d",
			m.YieldSamplesSaved, m.YieldEarlyStops)
	}
	if !rep.EarlyStopped || rep.SamplesSaved != int(m.YieldSamplesSaved) {
		t.Fatalf("report/metrics disagree on savings: %d vs %d", rep.SamplesSaved, m.YieldSamplesSaved)
	}

	// Same request again: a cache hit replaying identical bytes, with
	// the yield decoration intact.
	code, resp := h.post(body)
	if code != http.StatusOK || resp["cacheHit"] != true {
		t.Fatalf("second submit: status %d %v, want cache hit", code, resp)
	}
	v2 := h.waitJob(jobID(t, resp), 10*time.Second)
	if v2.AlgorithmUsed != yield.AlgorithmYieldMC {
		t.Fatalf("cache-hit decoration lost: %q", v2.AlgorithmUsed)
	}
	_, res2 := h.resultBody(v2.JobID)
	if string(res2) != string(res) {
		t.Fatal("cache replay is not byte-identical")
	}
	if got := h.srv.MetricsSnapshot().SolverRuns; got != m.SolverRuns {
		t.Fatalf("cache hit ran the solver (%d → %d runs)", m.SolverRuns, got)
	}
}

// TestYieldFleetByteIdentical is the distributed acceptance test: a
// 3-worker fleet — with a seeded worker kill mid-chunk — must produce
// exactly the bytes of the single-node run. The kill exercises the whole
// failure path: the crashed worker abandons its lease, the sweeper
// requeues the chunk, another worker re-executes it, and the retry must
// not double-count (the report would change bytes if it did).
func TestYieldFleetByteIdentical(t *testing.T) {
	body := yieldReqBody(t)

	// Reference: plain single-node server, pure local execution.
	ref := newHarness(t, Options{Workers: 2, DefaultTimeout: time.Minute, MaxTimeout: time.Minute})
	_, want := runYieldJob(t, ref, body)

	// Fleet: coordinator with remote-only execution and a tight lease so
	// the injected crash requeues quickly.
	fleet := newHarness(t, Options{
		Workers:        1,
		DefaultTimeout: time.Minute,
		MaxTimeout:     time.Minute,
		Dispatch: &dispatch.Options{
			LeaseTTL:      time.Second,
			SweepInterval: 100 * time.Millisecond,
			MaxAttempts:   5,
			LocalExec:     false, // every chunk must cross the wire
		},
	})

	// The seeded kill: exactly one chunk execution panics. The worker's
	// crash containment turns it into an abandoned lease — the same
	// observable as a dead process.
	var kills atomic.Int64
	t.Cleanup(faultinject.Reset)
	faultinject.Set(faultinject.SiteWorkerExecute, func() {
		if kills.Add(1) == 1 {
			panic("injected mid-chunk worker kill")
		}
	})

	for _, id := range []string{"w1", "w2", "w3"} {
		t.Cleanup(startWorker(t, fleet.ts.URL, id))
	}

	_, got := runYieldJob(t, fleet, body)
	if string(got) != string(want) {
		t.Fatalf("fleet report differs from single-node reference\nwant: %s\ngot:  %s", want, got)
	}
	if kills.Load() < 1 {
		t.Fatal("kill hook never fired: the crash path went unexercised")
	}

	m := fleet.srv.MetricsSnapshot()
	if m.YieldChunks == 0 {
		t.Fatal("no chunks crossed the dispatch protocol")
	}
	if m.YieldSamplesSaved <= 0 {
		t.Fatalf("fleet run did not early-stop: saved=%d", m.YieldSamplesSaved)
	}
}

// TestYieldRejectsIncompatibleRequests pins the structured 400s for the
// combinations the decoder must refuse.
func TestYieldRejectsIncompatibleRequests(t *testing.T) {
	h := newHarness(t, Options{})
	tree := smallTreeJSON(t, 4)
	cases := []map[string]any{
		{"tree": tree, "yield": map[string]any{}, "baseJobId": "j-000001"},
		{"tree": tree, "yield": map[string]any{}, "modes": []map[string]any{
			{"name": "a", "supplies": map[string]float64{"core": 1.0}},
			{"name": "b", "supplies": map[string]float64{"core": 0.9}},
		}},
		{"tree": tree, "yield": map[string]any{"samples": yield.MaxSamples + 1}},
		{"tree": tree, "yield": map[string]any{"candidates": 99}},
	}
	for i, c := range cases {
		code, resp := h.post(marshalReq(t, c))
		if code != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%v), want 400", i, code, resp)
		}
	}
	if got := h.srv.MetricsSnapshot().YieldJobs; got != 0 {
		t.Fatalf("rejected requests started %d yield jobs", got)
	}
}

// TestYieldServerSampleCap pins Options.YieldMaxSamples: a budget over
// the server cap is a 400 even though the protocol ceiling allows it.
func TestYieldServerSampleCap(t *testing.T) {
	h := newHarness(t, Options{YieldMaxSamples: 128})
	body := marshalReq(t, map[string]any{
		"tree":  smallTreeJSON(t, 4),
		"yield": map[string]any{"samples": 256},
	})
	code, resp := h.post(body)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d (%v), want 400", code, resp)
	}
}
