package server

// Live shard-map convergence: gossip, adoption, bucket handoff, and
// replication-on-write. The shard map is a versioned immutable object;
// this file is everything that moves a node from one version to the
// next while the fleet keeps serving.
//
// Every candidate map — anti-entropy pulls, maps piggybacked on 409
// catch-up and handoff pushes, operator injection — funnels through
// adoptMap, whose only gate is shard.ShouldAdopt: strictly newer, same
// shape, and (for adjacent versions) at most one bucket moved. Stale
// candidates are counted and ignored, never errors: old maps circulate
// legitimately while a rebalance propagates. Adoption is monotone, so
// the fleet converges on the highest version anyone has published and
// a node never moves backward.
//
// A node that surrenders a bucket drains before it flips: while still
// routing by the old map (so nothing is lost if the drain dies), it
// pushes the bucket's warm cached artifacts to the new owner over
// PUT /v1/shard/cache|zones/{key}, carrying the NEW map inline so the
// receiver can adopt it and accept as owner. Only then does the new map
// become this node's routing truth. The drain enumerates the memory
// tier only — content addressing makes every copy identical, so a
// partial drain costs the new owner hit rate, never correctness.
//
// Replication-on-write keeps failover warm: every clean result a node
// caches is also copied to the key's replica shards (memory-only on
// the receiver), so a later owner death degrades reads to a replica
// instead of a 503.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"wavemin/internal/shard"
)

// shardLabel is the dispatch lease label of shard id under map version
// ver — workers see which partition epoch granted their lease, and the
// label follows every adoption.
func shardLabel(id, ver int) string { return fmt.Sprintf("s%d@v%d", id, ver) }

// adoptMap is the single entry point through which this node's map ever
// changes. It serializes on adoptMu, gates on shard.ShouldAdopt (stale →
// counted and ignored; invalid → counted and rejected), drains any
// bucket this node is surrendering to its new owner, and only then
// stores the new map and re-labels the dispatch coordinator. source is
// for the expvar trail only.
func (s *Server) adoptMap(cand *shard.Map, source string) error {
	sh := s.sh
	sh.adoptMu.Lock()
	defer sh.adoptMu.Unlock()
	cur := sh.Map()
	if err := shard.ShouldAdopt(cur, cand); err != nil {
		if errors.Is(err, shard.ErrStaleVersion) {
			sh.bump(&sh.mapsStale, "maps_ignored_stale")
		} else {
			sh.bump(&sh.mapsRejected, "maps_rejected")
		}
		return err
	}
	next := cand.Clone()
	s.drainSurrendered(cur, next)
	sh.m.Store(next)
	sh.mapGauge.Set(int64(next.Version))
	sh.bump(&sh.mapsAdopted, "maps_adopted")
	sh.vars.Add("maps_adopted_"+source, 1)
	if s.coord != nil {
		s.coord.SetShardLabel(shardLabel(sh.id, next.Version))
	}
	return nil
}

// drainSurrendered pushes the warm artifacts of every bucket this node
// owns under cur but not under next to the bucket's new owner, BEFORE
// the flip: the drain happens while this node still routes (and still
// answers peer lookups) by cur, so a failed push leaves the old owner
// authoritative and nothing is lost — the new owner just starts colder.
// Caller holds adoptMu.
func (s *Server) drainSurrendered(cur, next *shard.Map) {
	sh := s.sh
	moved, _, err := shard.Diff(cur, next)
	if err != nil {
		return // ShouldAdopt already pinned the shapes equal
	}
	surrendered := make(map[int]int) // bucket → new owner
	for _, b := range moved {
		if cur.Assign[b] == sh.id && next.Assign[b] != sh.id {
			surrendered[b] = next.Assign[b]
		}
	}
	if len(surrendered) == 0 {
		return
	}
	s.drainKeys(next, surrendered, s.cache.LocalKeys(), "/v1/shard/cache/",
		func(key string) ([]byte, bool) { return s.cache.GetLocal(key) })
	if s.zones != nil {
		s.drainKeys(next, surrendered, s.zones.LocalKeys(), "/v1/shard/zones/",
			func(key string) ([]byte, bool) { return s.zones.GetLocal(key) })
	}
}

func (s *Server) drainKeys(next *shard.Map, surrendered map[int]int, keys []string, path string, get func(string) ([]byte, bool)) {
	sh := s.sh
	for _, key := range keys {
		b, err := next.BucketOf(key)
		if err != nil {
			continue // internal bookkeeping keys (job→zones maps) may not route
		}
		newOwner, ok := surrendered[b]
		if !ok {
			continue
		}
		val, ok := get(key)
		if !ok {
			continue // evicted between snapshot and read
		}
		if err := s.pushKey(newOwner, path, key, val, next); err != nil {
			sh.bump(&sh.handoffSendErrs, "handoff_send_errors")
			continue
		}
		sh.bump(&sh.handoffSent, "handoff_keys_sent")
	}
}

// pushKey PUTs one cached artifact to a peer, carrying m's version and
// encoding so the receiver can adopt m before judging ownership. Used by
// bucket handoff (m = the map being adopted) and replication-on-write
// (m = the current map).
func (s *Server) pushKey(target int, path, key string, val []byte, m *shard.Map) error {
	sh := s.sh
	ctx, cancel := context.WithTimeout(context.Background(), sh.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, sh.peers[target]+path+key, bytes.NewReader(val))
	if err != nil {
		return err
	}
	req.Header.Set(headerForwardedFrom, strconv.Itoa(sh.id))
	req.Header.Set(headerShardMapVersion, strconv.Itoa(m.Version))
	req.Header.Set(headerShardMap, m.Encode())
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := sh.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxShardMapBytes))
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("peer %d answered %d", target, resp.StatusCode)
	}
	return nil
}

// replicateResult copies a clean cached result to the key's replica
// shards, so a later owner death finds warm read-only copies. Failures
// are counted, never surfaced: a missing replica copy degrades a future
// failover read to a miss, not this job's completion.
func (s *Server) replicateResult(key string, val []byte) {
	sh := s.sh
	if sh == nil {
		return
	}
	m := sh.Map()
	set, err := m.ReplicasOf(key)
	if err != nil || len(set) == 0 {
		return
	}
	for _, t := range set {
		if t == sh.id {
			continue
		}
		if err := s.pushKey(t, "/v1/shard/cache/", key, val, m); err != nil {
			sh.bump(&sh.replicaPushErrs, "replica_push_errors")
			continue
		}
		sh.bump(&sh.replicaPushes, "replica_pushes")
	}
}

// --- push endpoints --------------------------------------------------------

// handleShardCachePut accepts a pushed result-cache artifact (bucket
// handoff or replication-on-write); handleShardZonesPut is its twin for
// zone solutions. The receiver judges the push under ITS OWN current
// map — catching up from the carried map or the sender first when the
// versions skew — and accepts durably as the key's owner, memory-only
// as one of its replicas, and refuses 421 with NO write otherwise: a
// hostile or misrouted push can waste bandwidth, never place bytes on a
// shard the map says shouldn't hold them.
func (s *Server) handleShardCachePut(w http.ResponseWriter, r *http.Request) {
	s.acceptPush(w, r,
		func(key string, val []byte) { s.cache.Put(key, val) },
		func(key string, val []byte) { s.cache.PutLocal(key, val) })
}

func (s *Server) handleShardZonesPut(w http.ResponseWriter, r *http.Request) {
	if s.zones == nil {
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "eco_disabled",
			message: "this node has no zone cache (Options.Eco / wavemind -eco)"})
		return
	}
	s.acceptPush(w, r,
		func(key string, val []byte) { s.zones.Put(key, val) },
		func(key string, val []byte) { s.zones.PutLocal(key, val) })
}

func (s *Server) acceptPush(w http.ResponseWriter, r *http.Request, putOwned, putReplica func(string, []byte)) {
	sh := s.sh
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "bad_key",
			message: "cache keys are 64-character lowercase-hex digests"})
		return
	}
	val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPeerResponseBytes))
	if err != nil {
		writeAPIError(w, badRequest("reading pushed value: %v", err))
		return
	}
	from, _ := forwardedFrom(r)
	m, agreed := s.syncForwardedVersion(r, from)
	if !agreed {
		s.writeMapSkew(w, r.Header.Get(headerShardMapVersion))
		return
	}
	owner, err := m.ShardOf(key)
	if err != nil {
		writeAPIError(w, badRequest("shard routing: %v", err))
		return
	}
	switch {
	case owner == sh.id:
		putOwned(key, val)
		sh.bump(&sh.handoffRecv, "handoff_keys_received")
	case m.IsReplica(key, sh.id):
		putReplica(key, val)
		sh.bump(&sh.replicaStored, "replica_keys_stored")
	default:
		sh.bump(&sh.pushRefused, "push_wrong_shard")
		writeAPIError(w, &apiError{status: http.StatusMisdirectedRequest, code: "wrong_shard",
			message: fmt.Sprintf("key belongs to shard %d; this node (shard %d) is neither its owner nor a replica", owner, sh.id)})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleShardMapPost is operator/test map injection: the rebalance
// entry point. The body names an encoded map; it passes the same
// ShouldAdopt gate as every gossiped candidate, so a stale or invalid
// injection is a structured 4xx, never a changed map.
func (s *Server) handleShardMapPost(w http.ResponseWriter, r *http.Request) {
	sh := s.sh
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxShardMapBytes))
	if err != nil {
		writeAPIError(w, badRequest("reading request body: %v", err))
		return
	}
	var payload struct {
		Map string `json:"map"`
	}
	if err := json.Unmarshal(body, &payload); err != nil || payload.Map == "" {
		writeAPIError(w, badRequest(`want {"map": "v<ver>:<bits>:<shards>[:<assign>][:r<replicas>]"}`))
		return
	}
	cand, err := shard.Decode(payload.Map)
	if err != nil {
		sh.bump(&sh.mapsRejected, "maps_rejected")
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "bad_map",
			message: err.Error()})
		return
	}
	if err := s.adoptMap(cand, "operator"); err != nil {
		code := "map_rejected"
		if errors.Is(err, shard.ErrStaleVersion) {
			code = "map_stale"
		}
		writeAPIError(w, &apiError{status: http.StatusConflict, code: code, message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"adopted": true, "mapVersion": cand.Version})
}

// --- anti-entropy ----------------------------------------------------------

// fetchAndAdopt pulls peer's map over GET /v1/shard/map and adopts it if
// it supersedes this node's. shard.ErrStaleVersion (peer at or behind
// our version) is the quiet steady state, not a failure.
func (s *Server) fetchAndAdopt(peer int) error {
	sh := s.sh
	if peer < 0 || peer >= len(sh.peers) || peer == sh.id {
		return fmt.Errorf("server: gossip: no peer %d", peer)
	}
	ctx, cancel := context.WithTimeout(context.Background(), sh.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.peers[peer]+"/v1/shard/map", nil)
	if err != nil {
		return err
	}
	resp, err := sh.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxShardMapBytes))
		return fmt.Errorf("server: gossip: peer %d answered %d", peer, resp.StatusCode)
	}
	var payload struct {
		MapVersion int    `json:"mapVersion"`
		Map        string `json:"map"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxShardMapBytes)).Decode(&payload); err != nil {
		return fmt.Errorf("server: gossip: peer %d: %w", peer, err)
	}
	if payload.MapVersion <= sh.Map().Version {
		// Peers at or behind this node are the steady state; skip the
		// decode and the adoption-gate counters entirely.
		return shard.ErrStaleVersion
	}
	cand, err := shard.Decode(payload.Map)
	if err != nil {
		sh.bump(&sh.mapsRejected, "maps_rejected")
		return fmt.Errorf("server: gossip: peer %d: %w", peer, err)
	}
	return s.adoptMap(cand, "gossip")
}

// gossipLoop is the anti-entropy pull: every GossipInterval, ask each
// peer for its map and adopt anything newer. Forward-path piggybacking
// converges the routes that carry traffic; this loop converges the ones
// that don't — an idle node still follows a rebalance.
func (s *Server) gossipLoop(interval time.Duration) {
	defer s.gossipWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.gossipStop:
			return
		case <-tick.C:
			s.gossipPullOnce()
		}
	}
}

func (s *Server) gossipPullOnce() {
	sh := s.sh
	for p := range sh.peers {
		if p == sh.id {
			continue
		}
		sh.bump(&sh.gossipPulls, "gossip_pulls")
		if err := s.fetchAndAdopt(p); err != nil && !errors.Is(err, shard.ErrStaleVersion) {
			sh.bump(&sh.gossipErrs, "gossip_errors")
		}
	}
}

func (s *Server) stopGossip() {
	if s.gossipStop == nil {
		return
	}
	s.gossipStopOnce.Do(func() { close(s.gossipStop) })
	s.gossipWG.Wait()
}
