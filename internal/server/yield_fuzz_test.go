package server

import (
	"fmt"
	"testing"
)

// yieldValidTree is a minimal well-formed tree for yield fuzz bodies.
const yieldValidTree = `{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`

// hostileYieldBlocks is the seed corpus of hostile yield configs: every
// shape that once looked tempting to pass through unvalidated — NaN/Inf
// knobs, negative and overflow-sized budgets, huge candidate counts,
// wrong JSON types, control bytes in strings. Each must come back as a
// structured 400, never a 5xx, never a solver or sampler run.
var hostileYieldBlocks = []string{
	`{"sigma":"NaN"}`,
	`{"sigma":1e999}`,
	`{"sigma":-0.5}`,
	`{"sigma":7}`,
	`{"correlation":-1}`,
	`{"correlation":2}`,
	`{"kappa":-20}`,
	`{"kappa":1e999}`,
	`{"peakCap":-1}`,
	`{"peakCap":1e999}`,
	`{"samples":-1}`,
	`{"samples":1073741824}`,
	`{"samples":3.5}`,
	`{"epsilon":0.75}`,
	`{"epsilon":-0.1}`,
	`{"epsilon":1e999}`,
	`{"confidence":0.1}`,
	`{"confidence":1.5}`,
	`{"candidates":-3}`,
	`{"candidates":1000000}`,
	`{"candidates":"all"}`,
	"{\"seed\":\"\u0000\u001b[2J\"}",
	`{"unknown_yield_knob":1}`,
	`[1,2,3]`,
	`"yes"`,
}

// FuzzYieldRequest drives hostile yield blocks (and arbitrary mutations
// of them) through the request decoder. The contract matches
// FuzzOptimizeRequest: every input either decodes to a fully validated
// yield job or fails with a structured 4xx — never a panic, never a 5xx
// shape, never a half-valid request.
func FuzzYieldRequest(f *testing.F) {
	for _, blk := range hostileYieldBlocks {
		f.Add([]byte(fmt.Sprintf(`{"tree":%s,"yield":%s}`, yieldValidTree, blk)))
	}
	// Structurally hostile combinations.
	f.Add([]byte(fmt.Sprintf(`{"tree":%s,"yield":{},"baseJobId":"j-000001"}`, yieldValidTree)))
	f.Add([]byte(fmt.Sprintf(`{"tree":%s,"yield":{},"modes":[{"name":"a"},{"name":"b"}]}`, yieldValidTree)))
	f.Add([]byte(`{"yield":{}}`)) // tree missing entirely
	// Valid yield requests so the fuzzer explores the accept path:
	// defaults-only, explicit epsilon 0 (full-budget mode), and a fully
	// specified block.
	f.Add([]byte(fmt.Sprintf(`{"tree":%s,"yield":{}}`, yieldValidTree)))
	f.Add([]byte(fmt.Sprintf(`{"tree":%s,"yield":{"epsilon":0}}`, yieldValidTree)))
	f.Add([]byte(fmt.Sprintf(
		`{"tree":%s,"yield":{"sigma":0.1,"correlation":0.3,"kappa":25,"peakCap":9000,"samples":512,"epsilon":0.01,"confidence":0.99,"candidates":2,"seed":42}}`,
		yieldValidTree)))

	opts := Options{}.withDefaults()
	f.Fuzz(func(t *testing.T, body []byte) {
		req, apiErr := decodeOptimizeRequest(body, opts)
		if apiErr != nil {
			if apiErr.status < 400 || apiErr.status > 499 {
				t.Fatalf("decode error with status %d, want 4xx", apiErr.status)
			}
			if apiErr.code == "" || apiErr.message == "" {
				t.Fatalf("unstructured decode error: %+v", apiErr)
			}
			if req != nil {
				t.Fatal("decoder returned both a request and an error")
			}
			return
		}
		if req.yield == nil {
			return // decoded as a plain optimization request — fine
		}
		// Accepted yield requests must be complete and fully bounded.
		if err := req.yield.Validate(); err != nil {
			t.Fatalf("accepted yield request carries invalid params: %v", err)
		}
		if req.baseJobID != "" {
			t.Fatal("accepted yield request carries a baseJobId")
		}
		if len(req.modes) > 1 {
			t.Fatalf("accepted yield request carries %d modes", len(req.modes))
		}
		if req.key == "" || len(req.key) != 64 {
			t.Fatalf("accepted yield request has malformed extended key %q", req.key)
		}
	})
}
