package server

// Shard routing: the layer that makes a fleet of wavemind coordinators
// behave as one logical service. Every node carries the same versioned
// shard map (internal/shard); POST /v1/optimize hashes the request's
// canonical CacheKey, serves it locally when this node owns the key's
// shard, and otherwise forwards it — exactly one hop — to the owner.
// Job reads route by the shard ID baked into sharded job IDs. Cache
// lookups consult the owning peer read-through (rescache.PeerTier);
// peer failures degrade to local misses, never errors, and peer hits
// are promoted memory-only so a node's durable tier stays shard-pure.
//
// The forwarding protocol is deliberately tiny:
//
//   - X-Wavemin-Forwarded-From: <shard> marks a forwarded request. Its
//     presence means "never forward again" — a node that receives a
//     forwarded request it does not own answers 421 wrong_shard rather
//     than bouncing it onward, so routing loops are structurally
//     impossible (single hop, enforced by the receiver).
//   - X-Wavemin-Shard-Map-Version carries the sender's map version; a
//     mismatch is a 409 shard_map_version, the signal that a rebalance
//     is propagating and the client should retry.
//   - A dead owner is a 503 shard_unavailable with Retry-After — the
//     shard's keys are unavailable until the owner returns; no other
//     node may adopt them (serving a stale or wrong-shard answer is
//     worse than a retryable refusal).
//
// In-flight forwards are bounded (Options.MaxForwardInFlight); past the
// bound, submissions are refused with 503 forward_backpressure so a
// slow peer cannot pile unbounded goroutines onto its neighbors.

import (
	"bytes"
	"context"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"wavemin/internal/obs"
	"wavemin/internal/rescache"
	"wavemin/internal/shard"
)

// Forwarding protocol headers.
const (
	headerForwardedFrom   = "X-Wavemin-Forwarded-From"
	headerShardMapVersion = "X-Wavemin-Shard-Map-Version"
	headerServedByShard   = "X-Wavemin-Served-By-Shard"
)

// maxPeerResponseBytes bounds what a forward or peer-cache read will
// accept back: generous enough for any result JSON (dispatch bounds its
// wire frames similarly), small enough that a misbehaving peer cannot
// exhaust memory.
const maxPeerResponseBytes = 64 << 20

// shardUnavailableRetrySeconds is the Retry-After hint on 503
// shard_unavailable: long enough for a restart to come back, short
// enough that clients re-probe a recovered owner promptly.
const shardUnavailableRetrySeconds = 1

// shardState is a sharded node's routing identity: which shard it is,
// the fleet's shard map, and the peer base URLs indexed by shard ID.
type shardState struct {
	id     int
	m      *shard.Map
	peers  []string // base URL per shard; peers[id] unused (self)
	client *http.Client
	slots  chan struct{} // in-flight forward bound
	vars   *expvar.Map   // per-shard expvar map (obs.ExpvarShard)

	forwardsOut     atomic.Int64
	forwardsIn      atomic.Int64
	wrongShard      atomic.Int64
	unavailable     atomic.Int64
	backpressure    atomic.Int64
	badJobID        atomic.Int64
	mapVersionConf  atomic.Int64
	peerServeHits   atomic.Int64
	peerServeMisses atomic.Int64
}

// ShardMetrics is the routing layer's counter snapshot; all zero when
// the server runs unsharded.
type ShardMetrics struct {
	ShardID         int
	MapVersion      int
	Shards          int
	ForwardsOut     int64 // requests this node forwarded to an owner
	ForwardsIn      int64 // forwarded requests this node served as owner
	WrongShard      int64 // forwarded requests refused (421 wrong_shard)
	Unavailable     int64 // forwards that found the owner unreachable (503)
	Backpressure    int64 // forwards refused at the in-flight bound (503)
	BadJobID        int64 // job reads refused for malformed sharded IDs
	MapVersionConf  int64 // forwarded requests refused on map-version skew (409)
	PeerServeHits   int64 // peer read-through lookups this node answered
	PeerServeMisses int64 // peer read-through lookups this node missed
}

func newShardState(opts Options) (*shardState, error) {
	m := opts.ShardMap
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("server: shard map: %w", err)
	}
	if opts.ShardID < 0 || opts.ShardID >= m.Shards {
		return nil, fmt.Errorf("server: shard ID %d outside the map's 0..%d", opts.ShardID, m.Shards-1)
	}
	if len(opts.Peers) != m.Shards {
		return nil, fmt.Errorf("server: %d peer URLs for a %d-shard map (need one per shard, in shard order)", len(opts.Peers), m.Shards)
	}
	peers := make([]string, m.Shards)
	for i, p := range opts.Peers {
		if i == opts.ShardID {
			peers[i] = strings.TrimSuffix(p, "/") // unused, kept for symmetry
			continue
		}
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("server: peer %d: %q is not an absolute base URL", i, p)
		}
		peers[i] = strings.TrimSuffix(p, "/")
	}
	sh := &shardState{
		id:     opts.ShardID,
		m:      m,
		peers:  peers,
		client: &http.Client{Timeout: opts.PeerTimeout},
		slots:  make(chan struct{}, opts.MaxForwardInFlight),
		vars:   obs.ExpvarShard(opts.ShardID),
	}
	return sh, nil
}

// bump increments a routing counter and mirrors it into the node's
// per-shard expvar map.
func (sh *shardState) bump(c *atomic.Int64, name string) {
	c.Add(1)
	sh.vars.Add(name, 1)
}

func (sh *shardState) metrics() ShardMetrics {
	return ShardMetrics{
		ShardID:         sh.id,
		MapVersion:      sh.m.Version,
		Shards:          sh.m.Shards,
		ForwardsOut:     sh.forwardsOut.Load(),
		ForwardsIn:      sh.forwardsIn.Load(),
		WrongShard:      sh.wrongShard.Load(),
		Unavailable:     sh.unavailable.Load(),
		Backpressure:    sh.backpressure.Load(),
		BadJobID:        sh.badJobID.Load(),
		MapVersionConf:  sh.mapVersionConf.Load(),
		PeerServeHits:   sh.peerServeHits.Load(),
		PeerServeMisses: sh.peerServeMisses.Load(),
	}
}

// forwardedFrom reports whether r is a peer-forwarded request and which
// shard sent it (-1 when the header value is not a shard number — the
// hop marker still counts; only the attribution is lost).
func forwardedFrom(r *http.Request) (from int, forwarded bool) {
	v := r.Header.Get(headerForwardedFrom)
	if v == "" {
		return -1, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return -1, true
	}
	return n, true
}

// checkForwarded runs the receiver-side protocol checks on a forwarded
// request that must be owned by shard `owner`: map-version agreement
// (409) and ownership (421). It writes the refusal and returns true when
// the request is finished.
func (s *Server) checkForwarded(w http.ResponseWriter, r *http.Request, owner int) (rejected bool) {
	sh := s.sh
	if v := r.Header.Get(headerShardMapVersion); v != strconv.Itoa(sh.m.Version) {
		sh.bump(&sh.mapVersionConf, "map_version_conflicts")
		writeAPIError(w, &apiError{status: http.StatusConflict, code: "shard_map_version",
			message: fmt.Sprintf("shard map version skew: sender has %q, this node has %d; retry after the rebalance settles", v, sh.m.Version)})
		return true
	}
	if owner != sh.id {
		// A forwarded request this node does not own is either a forged
		// header or a misrouted hop; refusing (never re-forwarding) makes
		// routing loops structurally impossible.
		sh.bump(&sh.wrongShard, "wrong_shard_rejected")
		writeAPIError(w, &apiError{status: http.StatusMisdirectedRequest, code: "wrong_shard",
			message: fmt.Sprintf("key belongs to shard %d; this node is shard %d and forwarded requests are never re-forwarded", owner, sh.id)})
		return true
	}
	return false
}

// routeOptimize decides where a decoded submission runs. It returns true
// when it fully handled the request (forwarded it, or refused it); false
// means this node owns the key and admission continues locally.
func (s *Server) routeOptimize(w http.ResponseWriter, r *http.Request, req *optimizeRequest, body []byte) bool {
	sh := s.sh
	owner, err := sh.m.ShardOf(req.key)
	if err != nil {
		// CacheKey always yields a routable 64-hex key, so this is
		// unreachable in practice — but routing must degrade to a 4xx.
		writeAPIError(w, badRequest("shard routing: %v", err))
		return true
	}
	if from, fwd := forwardedFrom(r); fwd {
		if s.checkForwarded(w, r, owner) {
			return true
		}
		sh.bump(&sh.forwardsIn, "forwards_in")
		req.forwardedFrom = from
		return false
	}
	if owner == sh.id {
		return false
	}
	s.forwardToPeer(w, r, owner, http.MethodPost, "/v1/optimize", body, "application/json")
	return true
}

// routeJobRead decides where a GET /v1/jobs/... lands, by the shard ID
// encoded in the job ID. Legacy (unsharded) IDs resolve locally. Returns
// true when the request was fully handled here.
func (s *Server) routeJobRead(w http.ResponseWriter, r *http.Request, id string) bool {
	sh := s.sh
	owner, _, sharded, err := shard.DecodeJobID(id)
	if err != nil {
		sh.bump(&sh.badJobID, "bad_job_ids")
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "bad_job_id",
			message: fmt.Sprintf("job ID %q: %v", id, err)})
		return true
	}
	if sharded && owner >= sh.m.Shards {
		sh.bump(&sh.badJobID, "bad_job_ids")
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "bad_job_id",
			message: fmt.Sprintf("job ID %q references shard %d beyond the %d-shard map", id, owner, sh.m.Shards)})
		return true
	}
	if _, fwd := forwardedFrom(r); fwd {
		// Forwarded reads terminate here whatever the ID says — single hop.
		if !sharded {
			return false
		}
		return s.checkForwarded(w, r, owner)
	}
	if !sharded || owner == sh.id {
		return false
	}
	s.forwardToPeer(w, r, owner, http.MethodGet, r.URL.EscapedPath(), nil, "")
	return true
}

// forwardToPeer relays a request to the owning shard and streams the
// owner's response back verbatim (plus a served-by header). Backpressure
// and owner failures become the structured 503s of the routing contract.
func (s *Server) forwardToPeer(w http.ResponseWriter, r *http.Request, owner int, method, path string, body []byte, contentType string) {
	sh := s.sh
	select {
	case sh.slots <- struct{}{}:
		defer func() { <-sh.slots }()
	default:
		sh.bump(&sh.backpressure, "forward_backpressure")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": map[string]any{
				"code":              "forward_backpressure",
				"message":           fmt.Sprintf("too many forwards to peers in flight (bound %d); retry shortly", cap(sh.slots)),
				"retryAfterSeconds": 1,
			},
		})
		return
	}
	sh.bump(&sh.forwardsOut, "forwards_out")
	preq, err := http.NewRequestWithContext(r.Context(), method, sh.peers[owner]+path, bytes.NewReader(body))
	if err != nil {
		s.writeShardUnavailable(w, owner, err)
		return
	}
	preq.Header.Set(headerForwardedFrom, strconv.Itoa(sh.id))
	preq.Header.Set(headerShardMapVersion, strconv.Itoa(sh.m.Version))
	if contentType != "" {
		preq.Header.Set("Content-Type", contentType)
	}
	resp, err := sh.client.Do(preq)
	if err != nil {
		s.writeShardUnavailable(w, owner, err)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
	if err != nil {
		s.writeShardUnavailable(w, owner, err)
		return
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(headerServedByShard, strconv.Itoa(owner))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(respBody)
}

// writeShardUnavailable is the routing contract's "owner is down"
// answer: the shard's keys are temporarily unserviceable — no other node
// may adopt them — so the client gets a retryable 503 with a hint.
func (s *Server) writeShardUnavailable(w http.ResponseWriter, owner int, err error) {
	sh := s.sh
	sh.bump(&sh.unavailable, "shard_unavailable")
	w.Header().Set("Retry-After", strconv.Itoa(shardUnavailableRetrySeconds))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error": map[string]any{
			"code":              "shard_unavailable",
			"message":           fmt.Sprintf("shard %d owner unreachable: %v", owner, err),
			"retryAfterSeconds": shardUnavailableRetrySeconds,
		},
	})
}

// recordForwardHop emits the forwarded-hop span into a job's trace, so a
// cross-node submission shows where it entered the fleet.
func (s *Server) recordForwardHop(tr *obs.Trace, req *optimizeRequest) {
	if tr == nil || s.sh == nil || req.forwardedFrom < 0 {
		return
	}
	sp := tr.Start("shard.forward")
	sp.SetAttr("from_shard", strconv.Itoa(req.forwardedFrom))
	sp.SetAttr("to_shard", strconv.Itoa(s.sh.id))
	sp.End()
}

// --- gossip / peer-serving endpoints --------------------------------------

// handleShardMap is the fleet's health/gossip endpoint: which shard this
// node is, which map version it routes by, and the peer list it uses.
// Nodes (and operators) compare versions here to detect skew.
func (s *Server) handleShardMap(w http.ResponseWriter, r *http.Request) {
	sh := s.sh
	writeJSON(w, http.StatusOK, map[string]any{
		"shardId":    sh.id,
		"mapVersion": sh.m.Version,
		"shards":     sh.m.Shards,
		"prefixBits": sh.m.PrefixBits,
		"map":        sh.m.Encode(),
		"peers":      sh.peers,
	})
}

// validCacheKey reports whether key has the only shape the caches store:
// a 64-char lowercase-hex sha256 digest.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleShardCache answers a peer's read-through lookup against this
// node's LOCAL result-cache tiers only (consulting its own peer tier
// here would bounce misses around the fleet). 200 + bytes on hit,
// structured 404 on miss, 400 on a malformed key.
func (s *Server) handleShardCache(w http.ResponseWriter, r *http.Request) {
	s.servePeerLookup(w, r, func(key string) ([]byte, bool) { return s.cache.GetLocal(key) })
}

// handleShardZones is handleShardCache for the zone-solution cache.
func (s *Server) handleShardZones(w http.ResponseWriter, r *http.Request) {
	s.servePeerLookup(w, r, func(key string) ([]byte, bool) { return s.zones.GetLocal(key) })
}

func (s *Server) servePeerLookup(w http.ResponseWriter, r *http.Request, get func(string) ([]byte, bool)) {
	sh := s.sh
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "bad_key",
			message: "cache keys are 64-character lowercase-hex digests"})
		return
	}
	val, ok := get(key)
	if !ok {
		sh.bump(&sh.peerServeMisses, "peer_serve_misses")
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "cache_miss",
			message: "key not cached on this node"})
		return
	}
	sh.bump(&sh.peerServeHits, "peer_serve_hits")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerServedByShard, strconv.Itoa(sh.id))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(val)
}

// --- peer cache tier -------------------------------------------------------

// peerCacheTier implements rescache.PeerTier over the fleet: a local
// miss asks the key's owning coordinator for its locally cached bytes.
// It is read-only by construction and shares the forward slot bound, so
// cache read-through cannot outgrow the same backpressure budget.
type peerCacheTier struct {
	sh   *shardState
	path string // "/v1/shard/cache/" or "/v1/shard/zones/"
}

func (p *peerCacheTier) PeerGet(key string) ([]byte, bool, error) {
	owner, err := p.sh.m.ShardOf(key)
	if err != nil {
		// Not a routable key (zone keys and cache keys always are); there
		// is no owner to ask, so it is an authoritative miss, not a fault.
		return nil, false, nil
	}
	if owner == p.sh.id {
		// This node IS the authority; its local tiers already missed.
		return nil, false, nil
	}
	select {
	case p.sh.slots <- struct{}{}:
		defer func() { <-p.sh.slots }()
	default:
		return nil, false, fmt.Errorf("peer cache: forward slots saturated")
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.sh.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.sh.peers[owner]+p.path+key, nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set(headerForwardedFrom, strconv.Itoa(p.sh.id))
	req.Header.Set(headerShardMapVersion, strconv.Itoa(p.sh.m.Version))
	resp, err := p.sh.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		val, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
		if err != nil {
			return nil, false, err
		}
		p.sh.vars.Add("peer_fetch_hits", 1)
		return val, true, nil
	case http.StatusNotFound:
		p.sh.vars.Add("peer_fetch_misses", 1)
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("peer cache: shard %d answered %d", owner, resp.StatusCode)
	}
}

var _ rescache.PeerTier = (*peerCacheTier)(nil)
