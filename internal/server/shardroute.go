package server

// Shard routing: the layer that makes a fleet of wavemind coordinators
// behave as one logical service. Every node carries a LIVE versioned
// shard map (internal/shard); POST /v1/optimize hashes the request's
// canonical CacheKey, serves it locally when this node owns the key's
// shard, and otherwise forwards it — exactly one hop — to the owner.
// Job reads route by the shard ID baked into sharded job IDs. Cache
// lookups consult the owning peer read-through (rescache.PeerTier);
// peer failures degrade to local misses, never errors, and peer hits
// are promoted memory-only so a node's durable tier stays shard-pure.
//
// The map is no longer frozen at boot: nodes converge on the highest
// valid version the fleet has published (see gossip.go — anti-entropy
// pulls, version piggybacking, and the single shard.ShouldAdopt gate),
// and adjacent versions move at most one bucket, so a node that is one
// version behind misroutes at most one bucket's keys — and the receiver
// catches it by version header, never by a silent wrong-shard write.
//
// The forwarding protocol:
//
//   - X-Wavemin-Forwarded-From: <shard> marks a forwarded request. Its
//     presence means "never forward again" — a node that receives a
//     forwarded request it does not own answers 421 wrong_shard rather
//     than bouncing it onward, so routing loops are structurally
//     impossible (single hop, enforced by the receiver).
//   - X-Wavemin-Shard-Map-Version carries the sender's map version on
//     forwards, and — piggybacked by middleware — this node's version
//     on EVERY response. Version skew is no longer a terminal refusal:
//     a receiver that is behind fetches the sender's map and adopts it
//     before re-checking; a sender whose forward bounces 409 against a
//     newer receiver adopts the receiver's map and retries once. Only
//     when catch-up fails does the 409 shard_map_version reach the
//     client — the retryable signal that a rebalance is propagating.
//   - A dead owner degrades before it refuses: a cached read is served
//     from one of the bucket's replicas (the map's read-only copies,
//     kept warm by replication-on-write and bucket handoff) and only a
//     key with no reachable copy gets the 503 shard_unavailable with
//     Retry-After. Content addressing makes a replica-served answer
//     byte-identical to the owner's, so failover is never-wrong, only
//     possibly a miss.
//
// In-flight forwards are bounded (Options.MaxForwardInFlight); past the
// bound, submissions are refused with 503 forward_backpressure so a
// slow peer cannot pile unbounded goroutines onto its neighbors.

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wavemin/internal/obs"
	"wavemin/internal/rescache"
	"wavemin/internal/shard"
)

// Forwarding protocol headers.
const (
	headerForwardedFrom   = "X-Wavemin-Forwarded-From"
	headerShardMapVersion = "X-Wavemin-Shard-Map-Version"
	headerServedByShard   = "X-Wavemin-Served-By-Shard"
	// headerShardMap carries the sender's full encoded map on handoff
	// pushes, so the receiving owner can adopt the new version from the
	// push itself — the sender cannot serve it over GET /v1/shard/map
	// yet, because drain-before-flip pushes while still routing by the
	// old map.
	headerShardMap = "X-Wavemin-Shard-Map"
)

// maxPeerResponseBytes bounds what a forward or peer-cache read will
// accept back: generous enough for any result JSON (dispatch bounds its
// wire frames similarly), small enough that a misbehaving peer cannot
// exhaust memory.
const maxPeerResponseBytes = 64 << 20

// maxShardMapBytes bounds an encoded shard map on the wire (gossip
// responses, operator injection, piggybacked handoff headers). The
// largest legal map — 64k buckets of explicit assignments and replica
// sets — fits comfortably; anything bigger is hostile.
const maxShardMapBytes = 1 << 20

// shardUnavailableRetrySeconds is the Retry-After hint on 503
// shard_unavailable: long enough for a restart to come back, short
// enough that clients re-probe a recovered owner promptly.
const shardUnavailableRetrySeconds = 1

// shardState is a sharded node's routing identity: which shard it is,
// the fleet's live shard map, and the peer base URLs indexed by shard
// ID. The map pointer is atomic — request paths load it lock-free —
// and adoptions serialize on adoptMu so drain-before-flip handoffs
// never interleave.
type shardState struct {
	id     int
	m      atomic.Pointer[shard.Map]
	peers  []string // base URL per shard; peers[id] unused (self)
	client *http.Client
	slots  chan struct{} // in-flight forward bound
	vars   *expvar.Map   // per-shard expvar map (obs.ExpvarShard)

	adoptMu  sync.Mutex  // serializes adoptMap (drain, then flip)
	mapGauge *expvar.Int // live map version (point-in-time, not a counter)

	forwardsOut     atomic.Int64
	forwardsIn      atomic.Int64
	wrongShard      atomic.Int64
	unavailable     atomic.Int64
	backpressure    atomic.Int64
	badJobID        atomic.Int64
	mapVersionConf  atomic.Int64
	peerServeHits   atomic.Int64
	peerServeMisses atomic.Int64

	mapsAdopted     atomic.Int64
	mapsStale       atomic.Int64
	mapsRejected    atomic.Int64
	gossipPulls     atomic.Int64
	gossipErrs      atomic.Int64
	handoffSent     atomic.Int64
	handoffSendErrs atomic.Int64
	handoffRecv     atomic.Int64
	replicaStored   atomic.Int64
	pushRefused     atomic.Int64
	replicaPushes   atomic.Int64
	replicaPushErrs atomic.Int64
	replicaHits     atomic.Int64
}

// Map returns the node's current shard map. The returned map is
// immutable — adoption stores a fresh clone — so callers may hold it
// across a whole request without locking.
func (sh *shardState) Map() *shard.Map { return sh.m.Load() }

// ShardMetrics is the routing layer's counter snapshot; all zero when
// the server runs unsharded.
type ShardMetrics struct {
	ShardID         int
	MapVersion      int // live map version (a gauge: rises on adoption)
	Shards          int
	ForwardsOut     int64 // requests this node forwarded to an owner
	ForwardsIn      int64 // forwarded requests this node served as owner
	WrongShard      int64 // forwarded requests refused (421 wrong_shard)
	Unavailable     int64 // forwards that found the owner unreachable (503)
	Backpressure    int64 // forwards refused at the in-flight bound (503)
	BadJobID        int64 // job reads refused for malformed sharded IDs
	MapVersionConf  int64 // version skew that survived catch-up (409)
	PeerServeHits   int64 // peer read-through lookups this node answered
	PeerServeMisses int64 // peer read-through lookups this node missed

	MapsAdopted     int64 // map versions adopted (gossip, piggyback, handoff, operator)
	MapsStale       int64 // candidate maps ignored as not-newer (normal during rebalance)
	MapsRejected    int64 // candidate maps refused (invalid or wrong-shape)
	GossipPulls     int64 // anti-entropy map pulls attempted
	GossipErrs      int64 // anti-entropy pulls that failed (peer down or hostile)
	HandoffSent     int64 // artifacts pushed to new owners during bucket handoff
	HandoffSendErrs int64 // handoff pushes that failed (new owner re-solves)
	HandoffRecv     int64 // handoff artifacts this node accepted as new owner
	ReplicaStored   int64 // pushed copies this node accepted as a bucket replica
	PushRefused     int64 // pushes refused as wrong-shard (421, nothing written)
	ReplicaPushes   int64 // clean results copied to bucket replicas on write
	ReplicaPushErrs int64 // replica copies that failed (failover degrades to miss)
	ReplicaHits     int64 // reads served by a replica copy instead of the owner
}

func newShardState(opts Options) (*shardState, error) {
	m := opts.ShardMap
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("server: shard map: %w", err)
	}
	if opts.ShardID < 0 || opts.ShardID >= m.Shards {
		return nil, fmt.Errorf("server: shard ID %d outside the map's 0..%d", opts.ShardID, m.Shards-1)
	}
	if len(opts.Peers) != m.Shards {
		return nil, fmt.Errorf("server: %d peer URLs for a %d-shard map (need one per shard, in shard order)", len(opts.Peers), m.Shards)
	}
	peers := make([]string, m.Shards)
	for i, p := range opts.Peers {
		if i == opts.ShardID {
			peers[i] = strings.TrimSuffix(p, "/") // unused, kept for symmetry
			continue
		}
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("server: peer %d: %q is not an absolute base URL", i, p)
		}
		peers[i] = strings.TrimSuffix(p, "/")
	}
	sh := &shardState{
		id:     opts.ShardID,
		peers:  peers,
		client: &http.Client{Timeout: opts.PeerTimeout},
		slots:  make(chan struct{}, opts.MaxForwardInFlight),
		vars:   obs.ExpvarShard(opts.ShardID),
	}
	// The boot map is cloned so a caller mutating its copy (tests build
	// successors from the original) can never race the router.
	sh.m.Store(m.Clone())
	sh.mapGauge = obs.ExpvarGauge(sh.vars, "map_version")
	sh.mapGauge.Set(int64(m.Version))
	return sh, nil
}

// bump increments a routing counter and mirrors it into the node's
// per-shard expvar map.
func (sh *shardState) bump(c *atomic.Int64, name string) {
	c.Add(1)
	sh.vars.Add(name, 1)
}

func (sh *shardState) metrics() ShardMetrics {
	m := sh.Map()
	return ShardMetrics{
		ShardID:         sh.id,
		MapVersion:      m.Version,
		Shards:          m.Shards,
		ForwardsOut:     sh.forwardsOut.Load(),
		ForwardsIn:      sh.forwardsIn.Load(),
		WrongShard:      sh.wrongShard.Load(),
		Unavailable:     sh.unavailable.Load(),
		Backpressure:    sh.backpressure.Load(),
		BadJobID:        sh.badJobID.Load(),
		MapVersionConf:  sh.mapVersionConf.Load(),
		PeerServeHits:   sh.peerServeHits.Load(),
		PeerServeMisses: sh.peerServeMisses.Load(),
		MapsAdopted:     sh.mapsAdopted.Load(),
		MapsStale:       sh.mapsStale.Load(),
		MapsRejected:    sh.mapsRejected.Load(),
		GossipPulls:     sh.gossipPulls.Load(),
		GossipErrs:      sh.gossipErrs.Load(),
		HandoffSent:     sh.handoffSent.Load(),
		HandoffSendErrs: sh.handoffSendErrs.Load(),
		HandoffRecv:     sh.handoffRecv.Load(),
		ReplicaStored:   sh.replicaStored.Load(),
		PushRefused:     sh.pushRefused.Load(),
		ReplicaPushes:   sh.replicaPushes.Load(),
		ReplicaPushErrs: sh.replicaPushErrs.Load(),
		ReplicaHits:     sh.replicaHits.Load(),
	}
}

// forwardedFrom reports whether r is a peer-forwarded request and which
// shard sent it (-1 when the header value is not a shard number — the
// hop marker still counts; only the attribution is lost).
func forwardedFrom(r *http.Request) (from int, forwarded bool) {
	v := r.Header.Get(headerForwardedFrom)
	if v == "" {
		return -1, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return -1, true
	}
	return n, true
}

// syncForwardedVersion reconciles a forwarded request's map version with
// this node's. Equal versions agree immediately. A sender that is AHEAD
// is the convergence signal: this node fetches the sender's map and
// adopts it (through the shard.ShouldAdopt gate) before re-checking, so
// a lagging receiver catches up inside the request instead of bouncing
// 409s until gossip arrives. A sender that is behind — or a fetch that
// fails — leaves the skew standing, and the caller answers the 409; the
// response carries this node's version (piggyback middleware), so the
// SENDER then adopts and retries. Returns the map to route by and
// whether the versions agree.
func (s *Server) syncForwardedVersion(r *http.Request, from int) (*shard.Map, bool) {
	sh := s.sh
	m := sh.Map()
	v, err := strconv.Atoi(r.Header.Get(headerShardMapVersion))
	if err != nil {
		return m, false
	}
	if v == m.Version {
		return m, true
	}
	if v > m.Version && from >= 0 && from < len(sh.peers) && from != sh.id {
		if enc := r.Header.Get(headerShardMap); enc != "" && len(enc) <= maxShardMapBytes {
			// Handoff pushes carry the map inline: the sender is mid-adoption
			// and cannot serve the new version over GET yet.
			if cand, derr := shard.Decode(enc); derr == nil {
				_ = s.adoptMap(cand, "piggyback")
			} else {
				sh.bump(&sh.mapsRejected, "maps_rejected")
			}
		} else {
			_ = s.fetchAndAdopt(from)
		}
		if m = sh.Map(); v == m.Version {
			return m, true
		}
	}
	return m, false
}

// writeMapSkew answers version skew that survived catch-up: the
// retryable 409 of the routing contract. The piggybacked version header
// on this very response is what lets the sender converge and retry.
func (s *Server) writeMapSkew(w http.ResponseWriter, senderVer string) {
	sh := s.sh
	sh.bump(&sh.mapVersionConf, "map_version_conflicts")
	writeAPIError(w, &apiError{status: http.StatusConflict, code: "shard_map_version",
		message: fmt.Sprintf("shard map version skew: sender has %q, this node has %d; retry after the rebalance settles", senderVer, sh.Map().Version)})
}

// writeWrongShard refuses a forwarded request this node does not own:
// either a forged header or a misrouted hop, and refusing (never
// re-forwarding) makes routing loops structurally impossible.
func (s *Server) writeWrongShard(w http.ResponseWriter, owner int) {
	sh := s.sh
	sh.bump(&sh.wrongShard, "wrong_shard_rejected")
	writeAPIError(w, &apiError{status: http.StatusMisdirectedRequest, code: "wrong_shard",
		message: fmt.Sprintf("key belongs to shard %d; this node is shard %d and forwarded requests are never re-forwarded", owner, sh.id)})
}

// routeOptimize decides where a decoded submission runs. It returns true
// when it fully handled the request (forwarded it, failed it over to a
// replica, or refused it); false means this node owns the key and
// admission continues locally.
func (s *Server) routeOptimize(w http.ResponseWriter, r *http.Request, req *optimizeRequest, body []byte) bool {
	sh := s.sh
	if from, fwd := forwardedFrom(r); fwd {
		m, agreed := s.syncForwardedVersion(r, from)
		if !agreed {
			s.writeMapSkew(w, r.Header.Get(headerShardMapVersion))
			return true
		}
		owner, err := m.ShardOf(req.key)
		if err != nil {
			writeAPIError(w, badRequest("shard routing: %v", err))
			return true
		}
		if owner != sh.id {
			s.writeWrongShard(w, owner)
			return true
		}
		sh.bump(&sh.forwardsIn, "forwards_in")
		req.forwardedFrom = from
		return false
	}
	for attempt := 0; ; attempt++ {
		m := sh.Map()
		owner, err := m.ShardOf(req.key)
		if err != nil {
			// CacheKey always yields a routable 64-hex key, so this is
			// unreachable in practice — but routing must degrade to a 4xx.
			writeAPIError(w, badRequest("shard routing: %v", err))
			return true
		}
		if owner == sh.id {
			return false
		}
		res, ferr := s.forwardToPeer(w, r, owner, http.MethodPost, "/v1/optimize", body, "application/json", attempt == 0)
		switch res {
		case forwardRetry:
			// A newer map was adopted mid-forward; recompute the owner
			// (it may now be this node) and try once more.
			continue
		case forwardOwnerDown:
			if s.serveFromReplica(w, req) {
				return true
			}
			s.writeShardUnavailable(w, owner, ferr)
			return true
		default:
			return true
		}
	}
}

// routeJobRead decides where a GET /v1/jobs/... lands, by the shard ID
// encoded in the job ID. Legacy (unsharded) IDs resolve locally. Returns
// true when the request was fully handled here. Job state — unlike
// cached results — is owner-local and has no replicas, so a dead owner
// here stays a 503.
func (s *Server) routeJobRead(w http.ResponseWriter, r *http.Request, id string) bool {
	sh := s.sh
	owner, _, sharded, err := shard.DecodeJobID(id)
	if err != nil {
		sh.bump(&sh.badJobID, "bad_job_ids")
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "bad_job_id",
			message: fmt.Sprintf("job ID %q: %v", id, err)})
		return true
	}
	if sharded && owner >= sh.Map().Shards {
		sh.bump(&sh.badJobID, "bad_job_ids")
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "bad_job_id",
			message: fmt.Sprintf("job ID %q references shard %d beyond the %d-shard map", id, owner, sh.Map().Shards)})
		return true
	}
	if from, fwd := forwardedFrom(r); fwd {
		// Forwarded reads terminate here whatever the ID says — single hop.
		if !sharded {
			return false
		}
		if _, agreed := s.syncForwardedVersion(r, from); !agreed {
			s.writeMapSkew(w, r.Header.Get(headerShardMapVersion))
			return true
		}
		if owner != sh.id {
			s.writeWrongShard(w, owner)
			return true
		}
		return false
	}
	if !sharded || owner == sh.id {
		return false
	}
	res, ferr := s.forwardToPeer(w, r, owner, http.MethodGet, r.URL.EscapedPath(), nil, "", true)
	if res == forwardRetry {
		// Job ownership is fixed by the ID, so the adopted map cannot
		// change the target — but the retry now carries the agreed version.
		res, ferr = s.forwardToPeer(w, r, owner, http.MethodGet, r.URL.EscapedPath(), nil, "", false)
	}
	if res == forwardOwnerDown {
		s.writeShardUnavailable(w, owner, ferr)
	}
	return true
}

// forwardResult is what forwardToPeer did with the request.
type forwardResult int

const (
	// forwardDone: a response was written (the owner's answer relayed,
	// or a structured refusal) — the request is finished.
	forwardDone forwardResult = iota
	// forwardOwnerDown: the owner was unreachable and NOTHING was
	// written; the caller chooses replica failover or 503.
	forwardOwnerDown
	// forwardRetry: the peer answered 409 with a newer map, this node
	// adopted it, and nothing was written; the caller re-routes.
	forwardRetry
)

// forwardToPeer relays a request to the owning shard and streams the
// owner's response back verbatim (plus a served-by header). A 409 from
// a peer that is AHEAD triggers fetch-and-adopt and (when allowRetry)
// returns forwardRetry instead of relaying the refusal — the sender-side
// half of live-map convergence. Backpressure is answered directly;
// transport failures are returned unwritten so the caller can degrade
// to a replica read.
func (s *Server) forwardToPeer(w http.ResponseWriter, r *http.Request, owner int, method, path string, body []byte, contentType string, allowRetry bool) (forwardResult, error) {
	sh := s.sh
	select {
	case sh.slots <- struct{}{}:
		defer func() { <-sh.slots }()
	default:
		sh.bump(&sh.backpressure, "forward_backpressure")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": map[string]any{
				"code":              "forward_backpressure",
				"message":           fmt.Sprintf("too many forwards to peers in flight (bound %d); retry shortly", cap(sh.slots)),
				"retryAfterSeconds": 1,
			},
		})
		return forwardDone, nil
	}
	sh.bump(&sh.forwardsOut, "forwards_out")
	preq, err := http.NewRequestWithContext(r.Context(), method, sh.peers[owner]+path, bytes.NewReader(body))
	if err != nil {
		return forwardOwnerDown, err
	}
	preq.Header.Set(headerForwardedFrom, strconv.Itoa(sh.id))
	preq.Header.Set(headerShardMapVersion, strconv.Itoa(sh.Map().Version))
	if contentType != "" {
		preq.Header.Set("Content-Type", contentType)
	}
	resp, err := sh.client.Do(preq)
	if err != nil {
		return forwardOwnerDown, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
	if err != nil {
		return forwardOwnerDown, err
	}
	if resp.StatusCode == http.StatusConflict && allowRetry {
		if pv, perr := strconv.Atoi(resp.Header.Get(headerShardMapVersion)); perr == nil && pv > sh.Map().Version {
			if s.fetchAndAdopt(owner) == nil {
				return forwardRetry, nil
			}
		}
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(headerServedByShard, strconv.Itoa(owner))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(respBody)
	return forwardDone, nil
}

// writeShardUnavailable is the routing contract's "owner is down and no
// replica could answer" refusal: the key is temporarily unserviceable —
// no other node may ADOPT it (only replicas may READ for it) — so the
// client gets a retryable 503 with a hint.
func (s *Server) writeShardUnavailable(w http.ResponseWriter, owner int, err error) {
	sh := s.sh
	sh.bump(&sh.unavailable, "shard_unavailable")
	w.Header().Set("Retry-After", strconv.Itoa(shardUnavailableRetrySeconds))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error": map[string]any{
			"code":              "shard_unavailable",
			"message":           fmt.Sprintf("shard %d owner unreachable: %v", owner, err),
			"retryAfterSeconds": shardUnavailableRetrySeconds,
		},
	})
}

// serveFromReplica answers a submission whose owner is down from a
// replica copy of the cached result: the bucket's reader shards (this
// node included) are consulted in map order, and a hit is served as a
// normal cache-hit job minted locally. Content addressing makes the
// copy byte-identical to the owner's answer, so the only thing degraded
// about this path is that an uncached key still gets the 503. Returns
// false when no replica could answer (caller falls through to 503).
func (s *Server) serveFromReplica(w http.ResponseWriter, req *optimizeRequest) bool {
	sh := s.sh
	if req.noCache {
		return false
	}
	m := sh.Map()
	set, err := m.ReplicasOf(req.key)
	if err != nil || len(set) == 0 {
		return false
	}
	for _, t := range set {
		var blob []byte
		var ok bool
		if t == sh.id {
			blob, ok = s.cache.GetLocal(req.key)
		} else {
			blob, ok, _ = sh.fetchCached(t, "/v1/shard/cache/", req.key)
		}
		if !ok {
			continue
		}
		sh.bump(&sh.replicaHits, "replica_read_hits")
		bump(&s.met.submitted, "server_jobs_submitted")
		bump(&s.met.cacheHits, "server_cache_hits")
		j := s.addJob(req, true)
		var res struct {
			AlgorithmUsed string
		}
		_ = json.Unmarshal(blob, &res)
		j.mu.Lock()
		j.status = StatusDone
		j.finished = time.Now()
		j.resultJSON = blob
		j.algorithmUsed = res.AlgorithmUsed
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"jobId": j.id, "status": StatusDone, "cacheHit": true,
		})
		return true
	}
	return false
}

// recordForwardHop emits the forwarded-hop span into a job's trace, so a
// cross-node submission shows where it entered the fleet.
func (s *Server) recordForwardHop(tr *obs.Trace, req *optimizeRequest) {
	if tr == nil || s.sh == nil || req.forwardedFrom < 0 {
		return
	}
	sp := tr.Start("shard.forward")
	sp.SetAttr("from_shard", strconv.Itoa(req.forwardedFrom))
	sp.SetAttr("to_shard", strconv.Itoa(s.sh.id))
	sp.End()
}

// --- gossip / peer-serving endpoints --------------------------------------

// handleShardMap is the fleet's health/gossip endpoint: which shard this
// node is, which map version it routes by, and the peer list it uses.
// Nodes pull here on the anti-entropy tick (and after a 409) to
// converge; operators compare versions here to watch a rebalance settle.
func (s *Server) handleShardMap(w http.ResponseWriter, r *http.Request) {
	sh := s.sh
	m := sh.Map()
	writeJSON(w, http.StatusOK, map[string]any{
		"shardId":    sh.id,
		"mapVersion": m.Version,
		"shards":     m.Shards,
		"prefixBits": m.PrefixBits,
		"map":        m.Encode(),
		"peers":      sh.peers,
	})
}

// validCacheKey reports whether key has the only shape the caches store:
// a 64-char lowercase-hex sha256 digest.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleShardCache answers a peer's read-through lookup against this
// node's LOCAL result-cache tiers only (consulting its own peer tier
// here would bounce misses around the fleet). 200 + bytes on hit,
// structured 404 on miss, 400 on a malformed key.
func (s *Server) handleShardCache(w http.ResponseWriter, r *http.Request) {
	s.servePeerLookup(w, r, func(key string) ([]byte, bool) { return s.cache.GetLocal(key) })
}

// handleShardZones is handleShardCache for the zone-solution cache.
func (s *Server) handleShardZones(w http.ResponseWriter, r *http.Request) {
	s.servePeerLookup(w, r, func(key string) ([]byte, bool) { return s.zones.GetLocal(key) })
}

func (s *Server) servePeerLookup(w http.ResponseWriter, r *http.Request, get func(string) ([]byte, bool)) {
	sh := s.sh
	key := r.PathValue("key")
	if !validCacheKey(key) {
		writeAPIError(w, &apiError{status: http.StatusBadRequest, code: "bad_key",
			message: "cache keys are 64-character lowercase-hex digests"})
		return
	}
	val, ok := get(key)
	if !ok {
		sh.bump(&sh.peerServeMisses, "peer_serve_misses")
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "cache_miss",
			message: "key not cached on this node"})
		return
	}
	sh.bump(&sh.peerServeHits, "peer_serve_hits")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerServedByShard, strconv.Itoa(sh.id))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(val)
}

// fetchCached performs one peer cache lookup against target's local
// tiers. Callers manage forward slots; this only does the wire work.
func (sh *shardState) fetchCached(target int, path, key string) ([]byte, bool, error) {
	if target < 0 || target >= len(sh.peers) || target == sh.id {
		return nil, false, fmt.Errorf("peer cache: no peer %d", target)
	}
	ctx, cancel := context.WithTimeout(context.Background(), sh.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.peers[target]+path+key, nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set(headerForwardedFrom, strconv.Itoa(sh.id))
	req.Header.Set(headerShardMapVersion, strconv.Itoa(sh.Map().Version))
	resp, err := sh.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		val, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
		if err != nil {
			return nil, false, err
		}
		sh.vars.Add("peer_fetch_hits", 1)
		return val, true, nil
	case http.StatusNotFound:
		sh.vars.Add("peer_fetch_misses", 1)
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("peer cache: shard %d answered %d", target, resp.StatusCode)
	}
}

// --- peer cache tier -------------------------------------------------------

// peerCacheTier implements rescache.PeerTier over the fleet: a local
// miss asks the key's owning coordinator for its locally cached bytes,
// and — when the owner cannot be consulted — falls back to the bucket's
// replicas, so a dead owner degrades a read to its warm copies before
// it degrades to a local re-solve. It is read-only by construction and
// shares the forward slot bound, so cache read-through cannot outgrow
// the same backpressure budget.
type peerCacheTier struct {
	sh   *shardState
	path string // "/v1/shard/cache/" or "/v1/shard/zones/"
}

func (p *peerCacheTier) PeerGet(key string) ([]byte, bool, error) {
	sh := p.sh
	m := sh.Map()
	owner, err := m.ShardOf(key)
	if err != nil {
		// Not a routable key (zone keys and cache keys always are); there
		// is no owner to ask, so it is an authoritative miss, not a fault.
		return nil, false, nil
	}
	set, _ := m.ReplicasOf(key)
	targets := make([]int, 0, 1+len(set))
	if owner != sh.id {
		targets = append(targets, owner)
	}
	for _, t := range set {
		if t != sh.id && t != owner {
			targets = append(targets, t)
		}
	}
	if len(targets) == 0 {
		// This node IS the authority (and any replicas are itself); its
		// local tiers already missed.
		return nil, false, nil
	}
	select {
	case sh.slots <- struct{}{}:
		defer func() { <-sh.slots }()
	default:
		return nil, false, fmt.Errorf("peer cache: forward slots saturated")
	}
	var lastErr error
	for _, t := range targets {
		val, ok, err := sh.fetchCached(t, p.path, key)
		if err != nil {
			lastErr = err
			continue
		}
		if ok {
			if t != owner {
				sh.bump(&sh.replicaHits, "replica_read_hits")
			}
			return val, true, nil
		}
		if t == owner {
			// The owner answered: the miss is authoritative, and replicas
			// only ever hold copies of what the owner had.
			return nil, false, nil
		}
	}
	if lastErr != nil {
		return nil, false, lastErr
	}
	return nil, false, nil
}

var _ rescache.PeerTier = (*peerCacheTier)(nil)
