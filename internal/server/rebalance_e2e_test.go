package server

// Rebalance e2e: the live shard-map machinery — gossip convergence,
// drain-before-flip bucket handoff, and replica failover — exercised on
// a real in-process fleet (run via `make e2e-rebalance`, which adds
// -race and a seed). Three scenarios:
//
//   - TestShardRebalanceHandoffHitRate: moving a warm bucket must not
//     cost a single cache hit or solver re-run — the old owner drains
//     the bucket to the new owner before flipping, so a post-rebalance
//     replay of the whole workload hits exactly like the pre-rebalance
//     baseline.
//   - TestShardGossipSkewConverges: a node left on version N beside
//     peers on N+1 converges WITHOUT restart — by anti-entropy pull
//     when gossip is on, by 409-driven catch-up on the traffic path
//     when it is off — and the version-conflict counter plateaus once
//     the fleet agrees.
//   - TestShardRebalanceChaos: a seeded schedule rebalances a durable
//     fleet mid-workload and kills the OLD owner and then the NEW owner
//     of the moved bucket. Acknowledged jobs survive every crash
//     (DataDir journals), reads degrade to replicas instead of 503,
//     and every byte served anywhere matches a single-node reference.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"testing"
	"time"

	"wavemin/internal/dispatch"
	"wavemin/internal/shard"
)

const rebalanceGossipTick = 25 * time.Millisecond

// ownedKeys snapshots the result-cache keys node currently holds that it
// OWNS under its live map — its own solves, excluding replica copies
// pushed to it (those route elsewhere and would pollute the diff below).
func (fl *fleet) ownedKeys(node int) map[string]bool {
	srv := fl.nodes[node].srv.Load()
	m := srv.sh.Map()
	out := map[string]bool{}
	for _, k := range srv.cache.LocalKeys() {
		if owner, err := m.ShardOf(k); err == nil && owner == node {
			out[k] = true
		}
	}
	return out
}

// solveTracked submits body via entry, waits for completion, and returns
// the job ID, the owning shard, and the design's cache key — recovered
// as the one key the owner's owned-set gained. Designs must be solved
// one at a time for the diff to be unambiguous.
func (fl *fleet) solveTracked(entry int, body []byte) (id string, owner int, key string) {
	fl.t.Helper()
	before := make([]map[string]bool, len(fl.nodes))
	for i := range fl.nodes {
		before[i] = fl.ownedKeys(i)
	}
	code, resp, _ := fl.post(entry, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		fl.t.Fatalf("submit via node %d: status %d %v", entry, code, resp)
	}
	id = jobID(fl.t, resp)
	owner = jobOwner(fl.t, id)
	if v, ok := fl.waitJob(entry, id, 30*time.Second); !ok || v.Status != StatusDone {
		fl.t.Fatalf("job %s: %q (ok=%v)", id, v.Status, ok)
	}
	for k := range fl.ownedKeys(owner) {
		if !before[owner][k] {
			if key != "" {
				fl.t.Fatalf("owner %d gained two keys for one design (%s, %s)", owner, key, k)
			}
			key = k
		}
	}
	if key == "" {
		fl.t.Fatalf("owner %d gained no cache key solving job %s", owner, id)
	}
	return id, owner, key
}

// injectMap posts an encoded map to node — the operator rebalance entry
// point — and requires adoption.
func (fl *fleet) injectMap(node int, m *shard.Map) {
	fl.t.Helper()
	body, _ := json.Marshal(map[string]string{"map": m.Encode()})
	resp, err := http.Post(fl.peers[node]+"/v1/shard/map", "application/json", bytes.NewReader(body))
	if err != nil {
		fl.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fl.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fl.t.Fatalf("map injection at node %d: status %d %v", node, resp.StatusCode, out)
	}
}

// mapVersionOf reads node's live map version over the gossip endpoint.
func (fl *fleet) mapVersionOf(node int) int {
	fl.t.Helper()
	code, body, _ := fl.get(node, "/v1/shard/map")
	if code != http.StatusOK {
		fl.t.Fatalf("GET /v1/shard/map via node %d: status %d: %s", node, code, body)
	}
	var out struct {
		MapVersion int `json:"mapVersion"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		fl.t.Fatal(err)
	}
	return out.MapVersion
}

// waitMapVersion polls the listed nodes until every one reports ver.
func (fl *fleet) waitMapVersion(nodes []int, ver int, timeout time.Duration) {
	fl.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		settled := true
		for _, n := range nodes {
			if fl.mapVersionOf(n) != ver {
				settled = false
			}
		}
		if settled {
			return
		}
		if time.Now().After(deadline) {
			vers := make([]int, 0, len(nodes))
			for _, n := range nodes {
				vers = append(vers, fl.mapVersionOf(n))
			}
			fl.t.Fatalf("fleet did not converge on map v%d within %v (nodes %v at %v)", ver, timeout, nodes, vers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func rebalanceFleetMap(t *testing.T, shards int) *shard.Map {
	t.Helper()
	m, err := shard.New(1, 8, shards)
	if err != nil {
		t.Fatal(err)
	}
	m, err = m.WithReplicas(1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestShardRebalanceHandoffHitRate(t *testing.T) {
	fl := newFleetWithMap(t, rebalanceFleetMap(t, 3), Options{GossipInterval: rebalanceGossipTick}, nil)
	const designs = 4
	bodies := make([][]byte, designs)
	keys := make([]string, designs)
	owners := make([]int, designs)
	for i := range bodies {
		bodies[i] = marshalReq(t, map[string]any{
			"tree":   smallTreeJSON(t, 6+i),
			"config": fastConfig(),
		})
		_, owners[i], keys[i] = fl.solveTracked(i%3, bodies[i])
	}

	// Pre-rebalance baseline: the whole workload replays as cache hits.
	replayAllHits := func(stage string) {
		t.Helper()
		for i, body := range bodies {
			code, resp, _ := fl.post((i+1)%3, body)
			if code != http.StatusOK {
				t.Fatalf("%s: design %d replay: status %d %v", stage, i, code, resp)
			}
			if hit, _ := resp["cacheHit"].(bool); !hit {
				t.Fatalf("%s: design %d replay missed the cache", stage, i)
			}
		}
	}
	fleetRuns := func() int64 {
		var runs int64
		for _, node := range fl.nodes {
			runs += node.srv.Load().MetricsSnapshot().SolverRuns
		}
		return runs
	}
	replayAllHits("baseline")
	baselineRuns := fleetRuns()
	if baselineRuns != designs {
		t.Fatalf("baseline solver runs = %d, want %d", baselineRuns, designs)
	}

	// Move design 0's bucket from its owner to the ring successor,
	// injected at the OLD owner — the node that must drain before it
	// flips. Then the whole fleet converges by gossip.
	oldOwner := owners[0]
	newOwner := (oldOwner + 1) % 3
	bucket, err := fl.m.BucketOf(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	next, err := fl.m.MoveBucket(bucket, newOwner)
	if err != nil {
		t.Fatal(err)
	}
	fl.injectMap(oldOwner, next)
	fl.waitMapVersion([]int{0, 1, 2}, next.Version, 10*time.Second)

	// Post-handoff: identical hit rate, not one extra solver run — the
	// moved bucket's artifacts traveled with the bucket.
	replayAllHits("post-handoff")
	if runs := fleetRuns(); runs != baselineRuns {
		t.Fatalf("rebalance cost solver runs: %d after, %d before", runs, baselineRuns)
	}
	// The moved design is now answered by the new owner.
	code, resp, hdr := fl.post((newOwner+1)%3, bodies[0])
	if code != http.StatusOK {
		t.Fatalf("moved design via third node: status %d %v", code, resp)
	}
	if got := hdr.Get("X-Wavemin-Served-By-Shard"); got != strconv.Itoa(newOwner) {
		t.Fatalf("moved design served by shard %q, want %d", got, newOwner)
	}
	sent := fl.nodes[oldOwner].srv.Load().MetricsSnapshot().Shard
	recv := fl.nodes[newOwner].srv.Load().MetricsSnapshot().Shard
	if sent.HandoffSent == 0 || recv.HandoffRecv == 0 {
		t.Fatalf("handoff moved no artifacts (sent=%d recv=%d)", sent.HandoffSent, recv.HandoffRecv)
	}
}

// TestShardGossipSkewConverges pins the convergence regression: a node
// left behind on version N beside peers on N+1 must reach N+1 without a
// restart — and once it has, the 409 version-conflict counter stops
// moving (skew is transient, not a steady-state tax).
func TestShardGossipSkewConverges(t *testing.T) {
	confSum := func(fl *fleet) int64 {
		var sum int64
		for _, node := range fl.nodes {
			sum += node.srv.Load().MetricsSnapshot().Shard.MapVersionConf
		}
		return sum
	}
	// pickBucketOwnedBy returns a bucket owned by shard s.
	pickBucketOwnedBy := func(m *shard.Map, s int) int {
		for b, owner := range m.Assign {
			if owner == s {
				return b
			}
		}
		t.Fatalf("shard %d owns no bucket", s)
		return -1
	}

	t.Run("anti-entropy pull", func(t *testing.T) {
		fl := newFleetWithMap(t, rebalanceFleetMap(t, 3), Options{GossipInterval: rebalanceGossipTick}, nil)
		next, err := fl.m.MoveBucket(pickBucketOwnedBy(fl.m, 1), 2)
		if err != nil {
			t.Fatal(err)
		}
		// Inject at node 0 only; 1 and 2 must find it by pulling.
		fl.injectMap(0, next)
		fl.waitMapVersion([]int{0, 1, 2}, next.Version, 10*time.Second)
		for i := range fl.nodes {
			if a := fl.nodes[i].srv.Load().MetricsSnapshot().Shard.MapsAdopted; i != 0 && a == 0 {
				t.Fatalf("node %d converged without counting an adoption", i)
			}
		}
		// Plateau: an agreed fleet serves traffic with zero new conflicts.
		before := confSum(fl)
		for i := 0; i < 3; i++ {
			body := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 9+i), "config": fastConfig()})
			if _, owner, _ := fl.solveTracked(i, body); owner < 0 {
				t.Fatal("unreachable")
			}
		}
		if after := confSum(fl); after != before {
			t.Fatalf("version conflicts kept rising after convergence: %d -> %d", before, after)
		}
	})

	t.Run("traffic-path catch-up", func(t *testing.T) {
		// Gossip off: the ONLY convergence channel is the request path —
		// a stale sender's forward meets a 409 whose response header
		// names the newer version, and the sender fetches and retries.
		fl := newFleetWithMap(t, rebalanceFleetMap(t, 3), Options{GossipInterval: 0}, nil)
		// A design owned by node 0 gives nodes 1 and 2 a reason to
		// forward to it after it adopts the newer map.
		var body0 []byte
		found := false
		for n := 6; n < 40 && !found; n++ {
			body := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, n), "config": fastConfig()})
			if _, owner, _ := fl.solveTracked(0, body); owner == 0 {
				body0, found = body, true
			}
		}
		if !found {
			t.Fatal("no probe design owned by shard 0")
		}
		next, err := fl.m.MoveBucket(pickBucketOwnedBy(fl.m, 1), 2)
		if err != nil {
			t.Fatal(err)
		}
		fl.injectMap(0, next)
		if got := fl.mapVersionOf(1); got != fl.m.Version {
			t.Fatalf("node 1 moved to v%d with gossip off and no traffic", got)
		}
		// Each stale node's forward to node 0 trips the 409, catches up,
		// and retries to a successful cache hit in the same call.
		for _, stale := range []int{1, 2} {
			code, resp, _ := fl.post(stale, body0)
			if code != http.StatusOK {
				t.Fatalf("stale node %d submit: status %d %v", stale, code, resp)
			}
			if hit, _ := resp["cacheHit"].(bool); !hit {
				t.Fatalf("stale node %d replay missed the cache", stale)
			}
			if got := fl.mapVersionOf(stale); got != next.Version {
				t.Fatalf("node %d still at v%d after the 409 round trip", stale, got)
			}
		}
		if confSum(fl) == 0 {
			t.Fatal("catch-up happened without a single 409 being counted")
		}
		// Plateau, again: once agreed, replays add no conflicts.
		before := confSum(fl)
		for _, node := range []int{1, 2} {
			if code, resp, _ := fl.post(node, body0); code != http.StatusOK {
				t.Fatalf("post-convergence replay via %d: status %d %v", node, code, resp)
			}
		}
		if after := confSum(fl); after != before {
			t.Fatalf("version conflicts kept rising after convergence: %d -> %d", before, after)
		}
	})
}

// TestShardRebalanceChaos is the full rebalance-under-fire scenario on a
// DURABLE fleet: per-node DataDirs, replicas, live gossip. A bucket
// moves mid-workload; then the old owner is killed (replica failover
// must answer for its remaining buckets), restarted (it reboots on the
// STALE boot map and must gossip its way forward), and finally the NEW
// owner is killed (the restarted old owner — now a replica of the moved
// bucket — must answer from its durable copy). Every acknowledged job
// survives, and every byte matches the single-node reference.
// WAVEMIND_E2E_REBALANCE_SEED varies the submission schedule.
func TestShardRebalanceChaos(t *testing.T) {
	seed := int64(1)
	if env := os.Getenv("WAVEMIND_E2E_REBALANCE_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("WAVEMIND_E2E_REBALANCE_SEED: %v", err)
		}
		seed = n
	}
	rng := rand.New(rand.NewSource(seed))

	const designs = 6
	single := newHarness(t, Options{Dispatch: &dispatch.Options{LocalExec: true}})
	bodies := make([][]byte, designs)
	refBytes := make([]json.RawMessage, designs)
	for i := range bodies {
		bodies[i] = marshalReq(t, map[string]any{
			"tree":   smallTreeJSON(t, 5+i),
			"config": fastConfig(),
		})
		code, resp := single.post(bodies[i])
		if code != http.StatusAccepted {
			t.Fatalf("reference submit %d: status %d %v", i, code, resp)
		}
		id := jobID(t, resp)
		if v := single.waitJob(id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("reference job %d: %s (%s)", i, v.Status, v.Error)
		}
		_, refBytes[i] = single.resultBody(id)
	}

	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	fl := newFleetWithMap(t, rebalanceFleetMap(t, 3),
		Options{Dispatch: &dispatch.Options{LocalExec: true}, GossipInterval: rebalanceGossipTick},
		func(i int, opts *Options) { opts.DataDir = dirs[i] })

	// Phase 1: solve the workload via seeded entry nodes. Every job the
	// fleet acknowledges here must stay readable through all the chaos.
	acked := make([]string, designs)
	keys := make([]string, designs)
	for i, body := range bodies {
		id, _, key := fl.solveTracked(rng.Intn(3), body)
		acked[i], keys[i] = id, key
		if _, got := fl.resultBody(rng.Intn(3), id); !bytes.Equal(got, refBytes[i]) {
			t.Fatalf("design %d: fleet result differs from reference before any chaos", i)
		}
	}

	// Phase 2: rebalance mid-workload — move design 0's bucket from its
	// owner to the ring successor, injected at the old owner.
	oldOwner := jobOwner(t, acked[0])
	newOwner := (oldOwner + 1) % 3
	bucket, err := fl.m.BucketOf(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	next, err := fl.m.MoveBucket(bucket, newOwner)
	if err != nil {
		t.Fatal(err)
	}
	// The old owner must keep answering for its OTHER buckets after it
	// dies — find a design it still owns under the new map (solving
	// extra probes if the seeded workload left it none).
	dOld := -1
	for i, key := range keys {
		if owner, err := next.ShardOf(key); err == nil && owner == oldOwner && i != 0 {
			dOld = i
			break
		}
	}
	for n := 20; dOld == -1 && n < 60; n++ {
		body := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, n), "config": fastConfig()})
		id, owner, key := fl.solveTracked(rng.Intn(3), body)
		if nextOwner, err := next.ShardOf(key); err == nil && nextOwner == oldOwner && owner == oldOwner {
			bodies = append(bodies, body)
			acked = append(acked, id)
			keys = append(keys, key)
			refBytes = append(refBytes, nil) // reference fetched below
			code, resp := single.post(body)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Fatalf("reference probe: status %d %v", code, resp)
			}
			pid := jobID(t, resp)
			if v := single.waitJob(pid, 30*time.Second); v.Status != StatusDone {
				t.Fatalf("reference probe: %s", v.Status)
			}
			_, refBytes[len(refBytes)-1] = single.resultBody(pid)
			dOld = len(bodies) - 1
		}
	}
	if dOld == -1 {
		t.Fatal("could not find a design the old owner keeps after the move")
	}

	fl.injectMap(oldOwner, next)
	fl.waitMapVersion([]int{0, 1, 2}, next.Version, 10*time.Second)

	// Phase 3: kill the OLD owner. Its remaining buckets' reads must
	// degrade to the ring-successor replica (warm from
	// replication-on-write), not to 503.
	fl.kill(oldOwner)
	entry := (oldOwner + 2) % 3
	code, resp, _ := fl.post(entry, bodies[dOld])
	if code != http.StatusOK {
		t.Fatalf("dead old owner: replica failover answered %d %v, want 200", code, resp)
	}
	if hit, _ := resp["cacheHit"].(bool); !hit {
		t.Fatal("replica failover served a non-hit")
	}
	failoverID := jobID(t, resp)
	if _, got := fl.resultBody(entry, failoverID); !bytes.Equal(got, refBytes[dOld]) {
		t.Fatal("replica failover bytes differ from the single-node reference")
	}

	// Phase 4: restart the old owner. It boots on the STALE v1 map and
	// must gossip forward without another restart. No acknowledged work
	// may be lost: each acked design either still reads done under its
	// job ID, or — the journal checkpoints completed jobs away — its
	// result survives in the durable store, so a resubmission is an
	// immediate cache hit with the reference bytes, never a re-solve.
	fl.restart(oldOwner)
	fl.waitMapVersion([]int{oldOwner}, next.Version, 10*time.Second)
	for i, id := range acked {
		if v, ok := fl.waitJob(rng.Intn(3), id, 30*time.Second); ok {
			if v.Status != StatusDone {
				t.Fatalf("acknowledged job %s (design %d) finished %q after restart", id, i, v.Status)
			}
			if _, got := fl.resultBody(rng.Intn(3), id); !bytes.Equal(got, refBytes[i]) {
				t.Fatalf("design %d: bytes diverged from reference after restart", i)
			}
			continue
		}
		code, resp, _ := fl.post(rng.Intn(3), bodies[i])
		if code != http.StatusOK {
			t.Fatalf("acknowledged design %d lost to the crash: resubmit answered %d %v, want 200 hit", i, code, resp)
		}
		if hit, _ := resp["cacheHit"].(bool); !hit {
			t.Fatalf("acknowledged design %d lost to the crash: resubmission re-solved", i)
		}
		if _, got := fl.resultBody(rng.Intn(3), jobID(t, resp)); !bytes.Equal(got, refBytes[i]) {
			t.Fatalf("design %d: bytes diverged from reference after restart", i)
		}
	}

	// Phase 5: kill the NEW owner. The moved bucket's replica is the
	// restarted old owner — MoveBucket swapped it into the replica set —
	// and it must answer design 0 from its durable copy.
	fl.kill(newOwner)
	entry = (newOwner + 2) % 3
	if entry == oldOwner {
		entry = (newOwner + 1) % 3
	}
	code, resp, _ = fl.post(entry, bodies[0])
	if code != http.StatusOK {
		t.Fatalf("dead new owner: replica failover answered %d %v, want 200", code, resp)
	}
	if hit, _ := resp["cacheHit"].(bool); !hit {
		t.Fatal("moved-bucket failover served a non-hit")
	}
	if _, got := fl.resultBody(entry, jobID(t, resp)); !bytes.Equal(got, refBytes[0]) {
		t.Fatal("moved-bucket failover bytes differ from the single-node reference")
	}

	// Recovery: with the fleet whole again, the entire workload replays
	// as IMMEDIATE cache hits — a 202 here would mean some acknowledged
	// result was lost and re-solved — and the failover counters show the
	// chaos was real.
	fl.restart(newOwner)
	fl.waitMapVersion([]int{0, 1, 2}, next.Version, 10*time.Second)
	for i, body := range bodies {
		code, resp, _ := fl.post(rng.Intn(3), body)
		if code != http.StatusOK {
			t.Fatalf("final replay design %d: status %d %v, want 200 hit", i, code, resp)
		}
		if hit, _ := resp["cacheHit"].(bool); !hit {
			t.Fatalf("final replay design %d re-solved: an acknowledged result was lost", i)
		}
		if _, got := fl.resultBody(rng.Intn(3), jobID(t, resp)); !bytes.Equal(got, refBytes[i]) {
			t.Fatalf("final replay design %d: bytes differ from reference", i)
		}
	}
	var replicaHits int64
	for _, node := range fl.nodes {
		replicaHits += node.srv.Load().MetricsSnapshot().Shard.ReplicaHits
	}
	if replicaHits == 0 {
		t.Fatal("chaos never exercised a replica failover read")
	}
}
