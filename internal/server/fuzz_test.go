package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// malformedTrees is the FuzzLoadTree seed corpus from the root package:
// the malformed-tree shapes the loader hardening rejected one by one
// (wrong format tag, empty node list, unknown cell, out-of-range and
// duplicate IDs, dangling parents, non-root node 0, negative or
// non-finite parasitics, adjust steps on a cell that has none). The
// service wraps the same loader, so each must come back as a structured
// 400 — never a 500 or a panic.
var malformedTrees = []string{
	`{}`,
	`{"format":"wavemin-clocktree-v0","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"NOPE","x":0,"y":0}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":5,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":0,"parent":0,"cell":"BUF_X8","x":0,"y":0}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":7,"cell":"BUF_X8","x":0,"y":0}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":1,"cell":"BUF_X8","x":0,"y":0},{"id":1,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0,"wire_res":-4}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0,"sink_cap":-1}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":1e999,"y":0}]}`,
	`{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0,"adjust_steps":{"m1":3}}]}`,
}

// malformedRequests are request-level (not tree-level) rejections.
var malformedRequests = []string{
	``,
	`not json`,
	`[]`,
	`{"tree":{}} trailing`,
	`{"unknown_knob":1}`,
	`{"config":{"samples":16}}`, // tree missing
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"config":{"samples":1}}`,
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"config":{"algorithm":"quantum"}}`,
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"priority":"urgent"}`,
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"timeoutMs":-5}`,
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"modes":[{"name":""}]}`,
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"modes":[{"name":"m","supplies":{"core":-1}}]}`,
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"modes":[{"name":"m"},{"name":"m"}]}`,
	// ECO base references: a non-string baseJobId is a decode-level 400;
	// a well-formed one on a server without ECO enabled is a structured
	// 400 ("eco_disabled") from the submit path — never a 5xx, and never
	// a solver run.
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"baseJobId":17}`,
	`{"tree":{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]},"baseJobId":"j-000001"}`,
}

// FuzzOptimizeRequest drives arbitrary bytes through the request decoder:
// every input must either decode to a fully validated job or fail with a
// structured 4xx — never panic, never produce a half-valid request.
func FuzzOptimizeRequest(f *testing.F) {
	for _, tree := range malformedTrees {
		f.Add([]byte(fmt.Sprintf(`{"tree":%s}`, tree)))
	}
	for _, body := range malformedRequests {
		f.Add([]byte(body))
	}
	// One fully valid request so the fuzzer explores the accept path too.
	valid := fmt.Sprintf(`{"tree":%s,"config":{"samples":16},"priority":"low","timeoutMs":1000}`,
		`{"format":"wavemin-clocktree-v1","nodes":[
		 {"id":0,"parent":-1,"cell":"BUF_X8","x":10,"y":10},
		 {"id":1,"parent":0,"cell":"BUF_X8","x":20,"y":10,"wire_res":1,"wire_cap":2,"sink_cap":8},
		 {"id":2,"parent":0,"cell":"INV_X8","x":10,"y":20,"wire_res":1,"wire_cap":2,"sink_cap":8}]}`)
	f.Add([]byte(valid))
	// ECO base references the decoder must pass through untouched (the
	// server resolves them at submit time): a replayed-looking ID, a
	// hostile path-shaped ID, and one with control bytes.
	validTree := `{"format":"wavemin-clocktree-v1","nodes":[{"id":0,"parent":-1,"cell":"BUF_X8","x":0,"y":0}]}`
	f.Add([]byte(fmt.Sprintf(`{"tree":%s,"baseJobId":"j-000001"}`, validTree)))
	f.Add([]byte(fmt.Sprintf("{\"tree\":%s,\"baseJobId\":\"j-\u0000\u001b[2J\"}", validTree)))
	f.Add([]byte(fmt.Sprintf(`{"tree":%s,"baseJobId":"../../etc/passwd"}`, validTree)))

	opts := Options{}.withDefaults()
	f.Fuzz(func(t *testing.T, body []byte) {
		req, apiErr := decodeOptimizeRequest(body, opts)
		if apiErr != nil {
			if apiErr.status < 400 || apiErr.status > 499 {
				t.Fatalf("decode error with status %d, want 4xx", apiErr.status)
			}
			if apiErr.code == "" || apiErr.message == "" {
				t.Fatalf("unstructured decode error: %+v", apiErr)
			}
			if req != nil {
				t.Fatal("decoder returned both a request and an error")
			}
			return
		}
		// Accepted requests must be complete: a queueable job with a
		// cache identity and an enforceable deadline.
		if req.design == nil || req.key == "" || req.timeout <= 0 || req.timeout > opts.MaxTimeout {
			t.Fatalf("accepted request is incomplete: %+v", req)
		}
		if err := req.cfg.Validate(); err != nil {
			t.Fatalf("accepted request carries invalid config: %v", err)
		}
	})
}

// TestOptimizeRejectsMalformed replays the corpus through the real HTTP
// stack: each malformed body must yield a structured JSON 400 from
// POST /v1/optimize.
func TestOptimizeRejectsMalformed(t *testing.T) {
	srv := mustNew(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var bodies []string
	for _, tree := range malformedTrees {
		bodies = append(bodies, fmt.Sprintf(`{"tree":%s}`, tree))
	}
	bodies = append(bodies, malformedRequests...)

	for i, body := range bodies {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %d %.80q: status %d, want 400", i, body, resp.StatusCode)
			continue
		}
		if derr != nil || out.Error.Code == "" || out.Error.Message == "" {
			t.Errorf("body %d %.80q: unstructured 400 (decode err %v, error %+v)", i, body, derr, out.Error)
		}
	}
	if got := srv.MetricsSnapshot().SolverRuns; got != 0 {
		t.Fatalf("malformed requests ran the solver %d times", got)
	}

	// Oversized bodies are bounded before decoding: 413, not an OOM.
	big := fmt.Sprintf(`{"tree":"%s"}`, strings.Repeat("x", 1<<20))
	srvSmall := mustNew(t, Options{MaxRequestBytes: 1024})
	tsSmall := httptest.NewServer(srvSmall.Handler())
	defer tsSmall.Close()
	resp, err := http.Post(tsSmall.URL+"/v1/optimize", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := io.ReadAll(resp.Body); rerr != nil {
		t.Logf("reading 413 body: %v", rerr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}
