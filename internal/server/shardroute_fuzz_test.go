package server

// FuzzShardRoute hardens the routing layer's attack surface: forged
// peer-forward requests (arbitrary forwarded-from and map-version
// headers), hostile job IDs (overflow shard fields, path traversal,
// out-of-map shards), hostile peer-cache keys, and arbitrary submit
// bodies. The contract under fuzz: every such request terminates on the
// receiving node with a structured 4xx — never a 5xx, never a panic,
// never a second forwarding hop, and never a write into the local cache
// tiers (a wrong-shard cache write would poison the fleet's
// read-through).
//
// Every fuzz request carries the forwarded-from marker, which by the
// protocol pins it to this node: forwarded requests are never
// re-forwarded. The dead peer URLs below are dialed at most by the
// live-map catch-up path (a sender claiming a newer version triggers a
// fetch-and-adopt against it), and that dial failing is part of the
// contract under test: catch-up failure must surface as the structured
// 409, never as a 5xx or a hung request.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wavemin/internal/shard"
)

func FuzzShardRoute(f *testing.F) {
	m, err := shard.New(3, 8, 3) // version 3: common fuzz strings ("", "1") skew
	if err != nil {
		f.Fatal(err)
	}
	// Peer URLs are black holes: forwards never dial them (single hop),
	// and the catch-up fetches that do must fail closed into 4xx. The
	// short PeerTimeout keeps those failures immediate.
	dead := []string{"http://127.0.0.1:1", "http://127.0.0.1:1", "http://127.0.0.1:1"}
	srv, err := New(Options{ShardMap: m, ShardID: 0, Peers: dead, PeerTimeout: 200 * time.Millisecond})
	if err != nil {
		f.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)
	var everAccepted atomic.Bool

	seeds := []struct{ id, from, ver, key, body string }{
		{"j-s1-000001", "2", "3", "ab" + strings.Repeat("0", 62), `{}`},
		{"j-s0-000001", "x", "1", strings.Repeat("f", 64), `not json`},
		{"j-s99999-000001", "2", "3", "../../etc/passwd", ``},
		{"j-s1-9999999999999999999", "-1", "99", strings.Repeat("F", 64), `[]`},
		{"j-s1-../../etc/passwd", "", "v3", "short", `{"tree":{}}`},
		{"j-000001", "1", "3", strings.Repeat("0", 64), `{"unknown":1}`},
		{"j-s0-000001/result", "0", "3", strings.Repeat("0", 63) + "g", `{"tree":null}`},
	}
	for _, s := range seeds {
		f.Add(s.id, s.from, s.ver, s.key, []byte(s.body))
	}

	// sanitizeHeader maps fuzz bytes onto the sendable header-value set:
	// raw control bytes cannot cross an HTTP/1.1 wire (the client refuses
	// them before the server ever sees the request), so they are not part
	// of the server's attack surface — substitute a visible stand-in and
	// keep the rest of the hostile value.
	sanitizeHeader := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r < 0x20 || r == 0x7f {
				return '_'
			}
			return r
		}, s)
	}

	do := func(t *testing.T, method, path, from, ver string, body []byte) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			// The fuzzer built an unsendable path (control bytes); that is
			// the HTTP client refusing, not the server — skip.
			return 0, nil
		}
		if from == "" {
			from = "forged" // keep the hop marker present: single-hop pin
		}
		req.Header.Set("X-Wavemin-Forwarded-From", sanitizeHeader(from))
		req.Header.Set("X-Wavemin-Shard-Map-Version", sanitizeHeader(ver))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: transport error (a forwarded request left the node?): %v", method, path, err)
		}
		defer resp.Body.Close()
		respBody, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, respBody
	}

	assertStructured := func(t *testing.T, what string, code int, body []byte) {
		t.Helper()
		if code == 0 || code == http.StatusOK || code == http.StatusAccepted {
			return // unsendable, or the rare fully valid request
		}
		if code >= 500 {
			t.Fatalf("%s: status %d (want structured 4xx): %s", what, code, body)
		}
		if code == http.StatusNotFound && bytes.HasPrefix(body, []byte("404 page not found")) {
			// An ID whose escaped form collapses the path (empty, ".", "..")
			// never reaches the route: the mux's own plain-text 404 is the
			// refusal, one layer earlier.
			return
		}
		var out struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &out); err != nil || out.Error.Code == "" {
			t.Fatalf("%s: status %d without a structured error code: %s", what, code, body)
		}
	}

	f.Fuzz(func(t *testing.T, id, from, ver, key string, body []byte) {
		// Hostile job IDs through the read-routing path. PathEscape keeps
		// raw fuzz bytes a single path segment, the same shape a real
		// client's URL yields after mux parsing.
		code, respBody := do(t, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), from, ver, nil)
		assertStructured(t, "job read", code, respBody)

		// Hostile keys against the peer cache and zone lookups.
		code, respBody = do(t, http.MethodGet, "/v1/shard/cache/"+url.PathEscape(key), from, ver, nil)
		assertStructured(t, "peer cache lookup", code, respBody)
		code, respBody = do(t, http.MethodGet, "/v1/shard/zones/"+url.PathEscape(key), from, ver, nil)
		assertStructured(t, "peer zone lookup", code, respBody)

		// Forged forwarded submits with arbitrary bodies.
		code, respBody = do(t, http.MethodPost, "/v1/optimize", from, ver, body)
		assertStructured(t, "forwarded submit", code, respBody)

		// No refused input may have written into the local cache tiers: a
		// rejected request that still cached something is a wrong-shard
		// write. The only path that may legitimately cache is a fully
		// valid, locally owned submit (202/200); should the fuzzer ever
		// synthesize one, the zero-entry invariant no longer holds and the
		// check disarms for the rest of this worker's run.
		if code == http.StatusAccepted || code == http.StatusOK {
			everAccepted.Store(true)
		}
		if !everAccepted.Load() {
			if st := srv.cache.Stats(); st.Mem.Entries != 0 {
				t.Fatalf("refused requests left %d entries in the local cache tier", st.Mem.Entries)
			}
		}
	})
}
