package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"wavemin"
	"wavemin/internal/jobq"
	"wavemin/internal/yield"
)

// maxModes bounds the power-mode list of one request: the multi-mode
// solver's cost vectors grow with the mode count, so an unbounded list is
// a resource-exhaustion vector, and no benchmark in the paper uses more.
const maxModes = 8

// wireRequest is the JSON body of POST /v1/optimize. Unknown fields are
// rejected (a typoed knob silently ignored is worse than a 400); the tree
// payload itself is the clocktree JSON format and is validated by its own
// loader.
type wireRequest struct {
	// Tree is the clock tree to optimize, in the wavemin-clocktree-v1
	// JSON format (what cmd/wavemin -save writes). Required.
	Tree json.RawMessage `json:"tree"`
	// Config selects the problem parameters; zero/absent fields take the
	// paper defaults.
	Config *wireConfig `json:"config"`
	// Modes declares power modes (multi-mode flow). Absent or empty means
	// single-mode at nominal supply.
	Modes []wireMode `json:"modes"`
	// Priority picks the queue lane: "high", "normal" (default), "low".
	Priority string `json:"priority"`
	// TimeoutMs bounds the job's wall time, queue wait included; 0 takes
	// the server default. The solver degrades down the algorithm ladder
	// rather than failing when the deadline gets close.
	TimeoutMs int64 `json:"timeoutMs"`
	// NoCache skips the result-cache lookup for this request (the result
	// is still stored for future requests).
	NoCache bool `json:"noCache"`
	// BaseJobID names a completed job to re-optimize incrementally from:
	// the base job's per-zone solutions seed this run, unchanged zones
	// replay, and only the delta is solved. Requires the server's ECO mode
	// (Options.Eco). Unknown bases are a 404 ("unknown_base"); bases that
	// cannot seed a delta — unfinished, failed, degraded, or without
	// recorded zones — are a 409 ("base_not_reusable"). The result is
	// bitwise-identical to a cold solve of the same tree either way.
	BaseJobID string `json:"baseJobId"`
	// Trace captures a per-job telemetry trace, served at
	// GET /v1/jobs/{id}/trace. Off by default: traces cost memory.
	Trace bool `json:"trace"`
	// Yield switches the job to statistical yield mode: solve the config's
	// result plus perturbed-knob alternates, race them under seeded Monte
	// Carlo process variation, and return the yield-maximizing assignment
	// with confidence intervals (internal/yield). Incompatible with
	// baseJobId and with multi-mode requests.
	Yield *wireYield `json:"yield"`
}

// wireYield is the yield-mode block of a request. Epsilon is a pointer
// because absence and zero mean different things: absent takes the
// default early-stop width, an explicit 0 disables the width-based stop
// (the full-budget reference mode).
type wireYield struct {
	Sigma       float64  `json:"sigma"`
	Correlation float64  `json:"correlation"`
	Kappa       float64  `json:"kappa"`
	PeakCap     float64  `json:"peakCap"`
	Samples     int      `json:"samples"`
	Epsilon     *float64 `json:"epsilon"`
	Confidence  float64  `json:"confidence"`
	Candidates  int      `json:"candidates"`
	Seed        int64    `json:"seed"`
}

type wireConfig struct {
	Kappa            float64 `json:"kappa"`
	Samples          int     `json:"samples"`
	Epsilon          float64 `json:"epsilon"`
	ZoneSize         float64 `json:"zoneSize"`
	Algorithm        string  `json:"algorithm"` // "wavemin" (default) | "fast" | "peakmin"
	EnableADI        bool    `json:"enableAdi"`
	MaxIntervals     int     `json:"maxIntervals"`
	MaxIntersections int     `json:"maxIntersections"`
	Workers          int     `json:"workers"`
}

type wireMode struct {
	Name     string             `json:"name"`
	Supplies map[string]float64 `json:"supplies"`
}

// apiError is a structured request failure: it renders as
// {"error":{"code":...,"message":...}} with the HTTP status attached.
type apiError struct {
	status  int
	code    string
	message string
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_request", message: fmt.Sprintf(format, args...)}
}

// optimizeRequest is a fully validated, ready-to-queue optimization job:
// the reconstructed design, the effective config, queueing parameters,
// and the canonical cache key.
type optimizeRequest struct {
	design  *wavemin.Design
	cfg     wavemin.Config
	pri     jobq.Priority
	timeout time.Duration
	noCache bool
	trace   bool
	key     string
	// tree and modes retain the canonical problem inputs so a dispatch
	// coordinator can ship the job to a worker that re-derives the design
	// bit-for-bit (internal/dispatch.JobSpec).
	tree  json.RawMessage
	modes []wavemin.Mode
	// baseJobID is the raw (unresolved) ECO base reference; the server
	// resolves it against its job registry and zone store at submit time.
	baseJobID string
	// yield, when non-nil, makes this a yield-mode job (internal/yield):
	// key is then the extended yield key, not the base optimization key.
	yield *yield.Params
	// forwardedFrom is the shard that forwarded this submission to its
	// owner, or -1 for direct submissions (and unsharded servers). Set by
	// the routing layer after decode; feeds the forwarded-hop trace span.
	forwardedFrom int
}

// decodeOptimizeRequest parses and validates one POST /v1/optimize body.
// Every rejection is a structured 4xx apiError — malformed input must
// never surface as a 500 or a panic (FuzzOptimizeRequest pins this).
func decodeOptimizeRequest(body []byte, opts Options) (*optimizeRequest, *apiError) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var wire wireRequest
	if err := dec.Decode(&wire); err != nil {
		return nil, badRequest("request body: %v", err)
	}
	if dec.More() {
		return nil, badRequest("request body: trailing data after the request object")
	}
	if len(wire.Tree) == 0 {
		return nil, badRequest("missing required field %q", "tree")
	}
	design, err := wavemin.LoadTree(bytes.NewReader(wire.Tree))
	if err != nil {
		return nil, badRequest("tree: %v", err)
	}

	var cfg wavemin.Config
	if wire.Config != nil {
		cfg = wavemin.Config{
			Kappa:            wire.Config.Kappa,
			Samples:          wire.Config.Samples,
			Epsilon:          wire.Config.Epsilon,
			ZoneSize:         wire.Config.ZoneSize,
			EnableADI:        wire.Config.EnableADI,
			MaxIntervals:     wire.Config.MaxIntervals,
			MaxIntersections: wire.Config.MaxIntersections,
			Workers:          wire.Config.Workers,
		}
		switch wire.Config.Algorithm {
		case "", "wavemin":
			cfg.Algorithm = wavemin.WaveMin
		case "fast":
			cfg.Algorithm = wavemin.WaveMinFast
		case "peakmin":
			cfg.Algorithm = wavemin.PeakMin
		default:
			return nil, badRequest("config.algorithm: unknown algorithm %q (want wavemin, fast, or peakmin)", wire.Config.Algorithm)
		}
	}
	// One server-side policy knob overrides the wire config: a cap on the
	// per-job solver parallelism, so queue-level and solver-level fan-out
	// don't multiply into oversubscription. Workers is not part of the
	// cache key, so the override cannot cause cache aliasing.
	if opts.MaxSolverWorkers > 0 && (cfg.Workers == 0 || cfg.Workers > opts.MaxSolverWorkers) {
		cfg.Workers = opts.MaxSolverWorkers
	}
	if err := cfg.Validate(); err != nil {
		return nil, badRequest("config: %v", err)
	}

	var modes []wavemin.Mode
	if len(wire.Modes) > 0 {
		if len(wire.Modes) > maxModes {
			return nil, badRequest("modes: %d modes exceeds the limit of %d", len(wire.Modes), maxModes)
		}
		seen := make(map[string]bool, len(wire.Modes))
		modes = make([]wavemin.Mode, 0, len(wire.Modes))
		for i, m := range wire.Modes {
			if m.Name == "" {
				return nil, badRequest("modes[%d]: missing name", i)
			}
			if seen[m.Name] {
				return nil, badRequest("modes[%d]: duplicate mode name %q", i, m.Name)
			}
			seen[m.Name] = true
			for dom, v := range m.Supplies {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > 10 {
					return nil, badRequest("modes[%d]: domain %q has implausible supply %g V", i, dom, v)
				}
			}
			modes = append(modes, wavemin.Mode{Name: m.Name, Supplies: m.Supplies})
		}
		if err := design.SetModes(modes); err != nil {
			return nil, badRequest("modes: %v", err)
		}
	}

	pri, err := jobq.ParsePriority(wire.Priority)
	if err != nil {
		return nil, badRequest("priority: %v", err)
	}
	if wire.TimeoutMs < 0 {
		return nil, badRequest("timeoutMs: negative timeout %d", wire.TimeoutMs)
	}
	timeout := time.Duration(wire.TimeoutMs) * time.Millisecond
	if timeout == 0 {
		timeout = opts.DefaultTimeout
	}
	if timeout > opts.MaxTimeout {
		timeout = opts.MaxTimeout
	}

	key, err := design.CacheKey(cfg)
	if err != nil {
		// Config and tree were both validated above, so this is
		// unreachable in practice — but a decode path must degrade to a
		// 4xx, never a panic or a 500.
		return nil, badRequest("cache key: %v", err)
	}

	var yp *yield.Params
	if wire.Yield != nil {
		if wire.BaseJobID != "" {
			return nil, badRequest("yield: incompatible with baseJobId (an ECO delta has no candidate ladder to race)")
		}
		if len(modes) > 1 {
			return nil, badRequest("yield: at most one power mode is supported (got %d)", len(modes))
		}
		p := yield.Params{
			Sigma:       wire.Yield.Sigma,
			Correlation: wire.Yield.Correlation,
			Kappa:       wire.Yield.Kappa,
			PeakCap:     wire.Yield.PeakCap,
			Samples:     wire.Yield.Samples,
			Confidence:  wire.Yield.Confidence,
			Candidates:  wire.Yield.Candidates,
			Seed:        wire.Yield.Seed,
		}
		if wire.Yield.Epsilon != nil {
			// An explicit 0 means "full budget, no width stop"; only
			// absence takes the default.
			p.Epsilon = *wire.Yield.Epsilon
		} else {
			p.Epsilon = yield.DefaultEpsilon
		}
		p = p.WithDefaults()
		if p.Kappa == 0 {
			// The skew bound defaults to the optimization's effective κ —
			// "how often does this assignment hold the bound it was
			// optimized for" is the question most callers are asking.
			p.Kappa = cfg.WithDefaults().Kappa
		}
		if opts.YieldMaxSamples > 0 && p.Samples > opts.YieldMaxSamples {
			return nil, badRequest("yield: samples %d exceeds this server's cap of %d", p.Samples, opts.YieldMaxSamples)
		}
		if err := p.Validate(); err != nil {
			return nil, badRequest("%v", err)
		}
		yp = &p
		// The extended key replaces the base key wholesale: caching,
		// replication, and shard routing all see one content identity per
		// (problem, yield knobs) pair, in the same hex keyspace.
		key = p.Key(key)
	}
	return &optimizeRequest{
		design:        design,
		cfg:           cfg,
		pri:           pri,
		timeout:       timeout,
		noCache:       wire.NoCache,
		trace:         wire.Trace,
		key:           key,
		tree:          wire.Tree,
		modes:         modes,
		baseJobID:     wire.BaseJobID,
		yield:         yp,
		forwardedFrom: -1,
	}, nil
}
