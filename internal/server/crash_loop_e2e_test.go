package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// TestCrashLoopKill9 is the out-of-process chaos recovery suite: it
// builds the real wavemind binary, runs it with -data-dir, and kill -9s
// it repeatedly at seeded-random moments — mid-solve, mid-fsync,
// wherever the schedule lands. After each kill the next incarnation must
// come up healthy on the same state, and at the end every problem must
// be answerable with byte-identical results across a final restart.
//
// Gated behind WAVEMIND_E2E_CRASH=1 (run via `make e2e-crash`): it
// builds a binary and spawns processes, which is too heavy for the
// default `go test ./...` tier. WAVEMIND_E2E_CRASH_SEED overrides the
// kill schedule's seed.
func TestCrashLoopKill9(t *testing.T) {
	if os.Getenv("WAVEMIND_E2E_CRASH") == "" {
		t.Skip("set WAVEMIND_E2E_CRASH=1 (make e2e-crash) to run the subprocess kill -9 loop")
	}
	seed := int64(1)
	if s := os.Getenv("WAVEMIND_E2E_CRASH_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("WAVEMIND_E2E_CRASH_SEED %q: %v", s, err)
		}
		seed = n
	}
	rng := rand.New(rand.NewSource(seed))
	t.Logf("kill schedule seed %d", seed)

	bin := filepath.Join(t.TempDir(), "wavemind")
	if out, err := exec.Command("go", "build", "-o", bin, "wavemin/cmd/wavemind").CombinedOutput(); err != nil {
		t.Fatalf("building wavemind: %v\n%s", err, out)
	}
	dir := t.TempDir()

	bodies := [][]byte{
		marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 8), "config": fastConfig()}),
		marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 12), "config": fastConfig()}),
		marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 16), "config": fastConfig()}),
	}

	const killRounds = 4
	for round := 0; round < killRounds; round++ {
		url, cmd := startWavemind(t, bin, dir)
		for i, body := range bodies {
			code := crashLoopSubmit(t, url, body)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Fatalf("round %d submit %d: status %d", round, i, code)
			}
		}
		// Kill at a seeded-random moment: sometimes mid-solve, sometimes
		// after everything completed, sometimes between the two.
		time.Sleep(time.Duration(rng.Intn(250)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		_ = cmd.Wait()
	}

	// Settle incarnation: every problem must resolve, and its bytes are
	// the canon the final restart must reproduce.
	url, cmd := startWavemind(t, bin, dir)
	canon := make([][]byte, len(bodies))
	for i, body := range bodies {
		canon[i] = crashLoopResolve(t, url, body)
	}
	stopWavemind(t, cmd)

	// Final restart: every result must now come back from the store,
	// byte-identical, without another solve.
	url, cmd = startWavemind(t, bin, dir)
	for i, body := range bodies {
		code := crashLoopSubmit(t, url, body)
		if code != http.StatusOK {
			t.Fatalf("final restart lost result %d: submit status %d, want cache hit", i, code)
		}
		if got := crashLoopResolve(t, url, body); !bytes.Equal(canon[i], got) {
			t.Fatalf("result %d diverged across restart:\n want %s\n got  %s", i, canon[i], got)
		}
	}
	stopWavemind(t, cmd)
}

// startWavemind launches one wavemind incarnation on dir and waits for
// /healthz to go ready (recovery finished).
func startWavemind(t *testing.T, bin, dir string) (string, *exec.Cmd) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dir, "-workers", "2", "-drain-timeout", "30s")
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	url := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return url, cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("wavemind on %s never became healthy (recovery wedged?)", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func stopWavemind(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("wavemind exited dirty on SIGTERM: %v", err)
	}
}

func crashLoopSubmit(t *testing.T, url string, body []byte) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// crashLoopResolve submits body and drives it to a done result, via
// cache hit or a full solve, returning the canonical result bytes.
func crashLoopResolve(t *testing.T, url string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		JobID  string `json:"jobId"`
		Status string `json:"status"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if derr != nil || sub.JobID == "" {
		t.Fatalf("submit: status %d, decode %v, job %q", resp.StatusCode, derr, sub.JobID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", url, sub.JobID))
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		derr := json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		if v.Status == StatusDone {
			break
		}
		if v.Status != StatusQueued && v.Status != StatusRunning {
			t.Fatalf("job %s finished %s (error %q)", sub.JobID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck %s", sub.JobID, v.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", url, sub.JobID))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil || len(out.Result) == 0 {
		t.Fatalf("result fetch: status %d, err %v", r.StatusCode, err)
	}
	return out.Result
}
