package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"wavemin/internal/clocktree"
	"wavemin/internal/dispatch"
	"wavemin/internal/jobq"
	"wavemin/internal/obs"
	"wavemin/internal/yield"
)

// submitYield admits one yield-mode job. The driver runs on its own
// goroutine (under dispatchWG, so Drain waits for it) rather than a
// queue worker: it is a coordinator, not a unit of work — it solves the
// candidate ladder, then fans sample chunks out as sub-leases of this
// job and folds the stream. Admission is bounded twice: at most
// QueueCapacity drivers may exist (pending + running, same backpressure
// contract as the queue: past it submissions get 429), and at most
// YieldMaxConcurrent may drive the fleet at once (the rest wait in
// "queued", their deadlines ticking).
func (s *Server) submitYield(jctx context.Context, j *job, req *optimizeRequest) error {
	if n := s.yieldPending.Add(1); n > int64(s.opts.QueueCapacity) {
		s.yieldPending.Add(-1)
		return jobq.ErrFull
	}
	bump(&s.met.yieldJobs, "server_yield_jobs")
	s.dispatchWG.Add(1)
	go s.runYield(jctx, j, req)
	return nil
}

// runYield drives one yield job end to end: candidate generation, the
// sampling race, and landing the report in the job record and cache.
func (s *Server) runYield(ctx context.Context, j *job, req *optimizeRequest) {
	defer s.dispatchWG.Done()
	defer s.yieldPending.Add(-1)
	defer j.cancel()

	select {
	case s.yieldSem <- struct{}{}:
		defer func() { <-s.yieldSem }()
	case <-ctx.Done():
		bump(&s.met.expired, "server_jobs_expired")
		j.finishErr(StatusExpired, ctx.Err())
		return
	}
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()

	if req.trace {
		mem := &obs.Memory{}
		tr := obs.New(obs.Options{})
		tr.AttachSink(mem)
		tr.AttachSink(obs.ExpvarSink{})
		j.mu.Lock()
		j.trace = mem
		j.mu.Unlock()
		s.recordForwardHop(tr, req)
		ctx = obs.Into(ctx, tr)
		defer tr.Flush()
	}

	p := *req.yield
	var mode *clocktree.Mode
	if len(req.modes) > 0 {
		mode = &req.modes[0]
	}

	// Candidate solves run inline on the driver (they are few and the
	// fleet path would gain nothing: each is a full optimization whose
	// result the driver needs before any sampling can start).
	s.met.solverRuns.Add(int64(p.Candidates))
	obs.ExpvarCounters().Add("server_solver_runs", int64(p.Candidates))
	cands, rejected, err := yield.GenerateCandidates(ctx, req.tree, req.cfg, req.modes, p)
	if err != nil {
		s.finishYieldErr(j, err)
		return
	}

	var runner yield.Runner
	if s.coord != nil {
		runner = &fleetRunner{s: s, pri: req.pri, deadline: deadlineOf(ctx)}
	} else {
		runner = &yield.LocalRunner{Workers: req.cfg.Workers}
	}
	rep, err := yield.Run(ctx, cands, p, rejected, mode, runner)
	if err != nil {
		s.finishYieldErr(j, err)
		return
	}
	blob, merr := json.Marshal(rep)
	if merr != nil {
		bump(&s.met.failed, "server_jobs_failed")
		j.finishErr(StatusFailed, merr)
		return
	}
	// Yield reports are pure functions of (tree, config, modes, knobs) —
	// the chunk determinism contract — so they cache and replicate under
	// the extended key exactly like optimization results.
	if !req.noCache {
		s.cache.Put(req.key, blob)
		s.replicateResult(req.key, blob)
	}
	s.met.yieldSamplesSaved.Add(int64(rep.SamplesSaved))
	obs.ExpvarCounters().Add("server_yield_samples_saved", int64(rep.SamplesSaved))
	if rep.EarlyStopped {
		bump(&s.met.yieldEarlyStops, "server_yield_early_stops")
	}
	bump(&s.met.completed, "server_jobs_completed")
	j.mu.Lock()
	j.status = StatusDone
	j.finished = time.Now()
	j.resultJSON = blob
	j.algorithmUsed = rep.AlgorithmUsed
	j.mu.Unlock()
}

// finishYieldErr classifies a yield failure the way runJob does: context
// exhaustion (including a candidate solve degrading under the deadline)
// is an expiry, everything else a failure.
func (s *Server) finishYieldErr(j *job, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		bump(&s.met.expired, "server_jobs_expired")
		j.finishErr(StatusExpired, err)
		return
	}
	bump(&s.met.failed, "server_jobs_failed")
	j.finishErr(StatusFailed, err)
}

// deadlineOf extracts ctx's deadline (zero time when none): sub-lease
// specs carry it so workers bound chunk execution the same way the
// driver is bound.
func deadlineOf(ctx context.Context) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	return time.Time{}
}

// fleetRunner fans a round's chunks out over the dispatch fleet as
// sub-leases and folds the outcomes back into the slot order the driver
// expects. Chunks refused by the queue (full, or draining) are evaluated
// inline — the chunk determinism contract makes the fallback
// byte-identical, so admission pressure can slow a yield run but never
// change its answer.
type fleetRunner struct {
	s        *Server
	pri      jobq.Priority
	deadline time.Time
}

func (f *fleetRunner) RunChunks(ctx context.Context, specs []*yield.ChunkSpec) ([]*yield.ChunkStats, error) {
	out := make([]*yield.ChunkStats, len(specs))
	type pending struct {
		i  int
		tk *jobq.Ticket
	}
	pends := make([]pending, 0, len(specs))
	for i, spec := range specs {
		js := &dispatch.JobSpec{Yield: spec, Deadline: f.deadline, NoCache: true}
		tk, err := f.s.coord.SubmitSub(ctx, f.pri, js, nil)
		if err != nil {
			if errors.Is(err, jobq.ErrFull) || errors.Is(err, jobq.ErrDraining) {
				st, cerr := yield.ExecuteChunk(ctx, spec)
				if cerr != nil {
					return nil, cerr
				}
				out[i] = st
				bump(&f.s.met.yieldChunksInline, "server_yield_chunks_inline")
				continue
			}
			return nil, err
		}
		bump(&f.s.met.yieldChunks, "server_yield_chunks")
		pends = append(pends, pending{i, tk})
	}
	for _, p := range pends {
		<-p.tk.Done()
		result, err := p.tk.Outcome()
		if err != nil {
			var re *dispatch.RemoteError
			if errors.As(err, &re) && re.Code == "expired" {
				return nil, fmt.Errorf("yield: chunk expired: %w", context.DeadlineExceeded)
			}
			return nil, err
		}
		o, ok := result.(*dispatch.Outcome)
		if !ok {
			return nil, fmt.Errorf("yield: unexpected chunk outcome %T", result)
		}
		var st yield.ChunkStats
		if uerr := json.Unmarshal(o.ResultJSON, &st); uerr != nil {
			return nil, fmt.Errorf("yield: chunk stats: %w", uerr)
		}
		// The lease protocol is open: a worker could complete a chunk
		// with stats that answer a different spec (or none). Reject
		// before they contaminate the fold.
		if verr := st.Validate(specs[p.i]); verr != nil {
			return nil, verr
		}
		out[p.i] = &st
	}
	return out, nil
}
