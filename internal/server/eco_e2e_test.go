package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"wavemin"
	"wavemin/internal/dispatch"
	"wavemin/internal/faultinject"
)

// ecoTreeJSON synthesizes the e2e tree with one sink's load optionally
// nudged — the canonical "one leaf resized" ECO delta. deltaSink < 0
// builds the unmodified base tree.
func ecoTreeJSON(t testing.TB, n, deltaSink int, deltaCap float64) json.RawMessage {
	t.Helper()
	sinks := make([]wavemin.Sink, 0, n)
	for i := 0; i < n; i++ {
		cap := 8.0
		if i == deltaSink {
			cap += deltaCap
		}
		sinks = append(sinks, wavemin.Sink{
			X:   float64(15 + (i%4)*10),
			Y:   float64(15 + (i/4)*10),
			Cap: cap,
		})
	}
	d, err := wavemin.New(sinks)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveTree(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ecoConfig is fastConfig with a zone pitch small enough that the e2e
// die spans several zones — ECO reuse is per zone, so a single-zone die
// would make every delta a full re-solve.
func ecoConfig() map[string]any {
	c := fastConfig()
	c["zoneSize"] = 15
	return c
}

// submitWait posts a request, requires admission, and waits for the job
// to finish; it returns the finished job view.
func (h *harness) submitWait(body []byte) jobView {
	h.t.Helper()
	code, resp := h.post(body)
	if code != http.StatusAccepted && code != http.StatusOK {
		h.t.Fatalf("submit: status %d: %v", code, resp)
	}
	return h.waitJob(jobID(h.t, resp), 30*time.Second)
}

// TestParallelECOBitwiseEquivalence is the ECO correctness contract: a
// delta solve seeded from a base job must return byte-for-byte the result
// a cold solve of the same tree returns — at every worker count, and on
// the dispatched (remote worker) path as well as the local one. The name
// carries "Parallel" so `make check` runs it under the race detector.
func TestParallelECOBitwiseEquivalence(t *testing.T) {
	baseTree := ecoTreeJSON(t, 12, -1, 0)
	deltaTree := ecoTreeJSON(t, 12, 3, 4) // one sink's load resized

	req := func(tree json.RawMessage, workers int, baseJobID string) []byte {
		cfg := ecoConfig()
		cfg["workers"] = workers
		m := map[string]any{"tree": tree, "config": cfg}
		if baseJobID != "" {
			m["baseJobId"] = baseJobID
		}
		return marshalReq(t, m)
	}

	// Cold references on an ECO-disabled dispatch server: canonical bytes
	// (Runtime zeroed), no zone recording anywhere near them.
	ref := newHarness(t, Options{Workers: 1, DefaultTimeout: time.Minute, MaxTimeout: time.Minute,
		Dispatch: &dispatch.Options{LocalExec: true}})
	vb := ref.submitWait(req(baseTree, 1, ""))
	if vb.Status != StatusDone {
		t.Fatalf("cold base finished %s (error %q)", vb.Status, vb.Error)
	}
	_, coldBase := ref.resultBody(vb.JobID)
	vd := ref.submitWait(req(deltaTree, 1, ""))
	if vd.Status != StatusDone {
		t.Fatalf("cold delta finished %s (error %q)", vd.Status, vd.Error)
	}
	_, coldDelta := ref.resultBody(vd.JobID)

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	reusedCounts := make([]int, 0, len(workerCounts)+1)

	runEco := func(t *testing.T, h *harness, workers int) {
		vb := h.submitWait(req(baseTree, workers, ""))
		if vb.Status != StatusDone {
			t.Fatalf("base finished %s (error %q)", vb.Status, vb.Error)
		}
		if vb.ZonesReused != 0 || vb.ZonesResolved == 0 {
			t.Fatalf("base job reused/resolved = %d/%d, want 0/>0", vb.ZonesReused, vb.ZonesResolved)
		}
		_, gotBase := h.resultBody(vb.JobID)
		if !bytes.Equal(gotBase, coldBase) {
			t.Fatalf("eco-recorded base bytes diverged from cold solve\ncold: %s\neco:  %s", coldBase, gotBase)
		}

		vd := h.submitWait(req(deltaTree, workers, vb.JobID))
		if vd.Status != StatusDone {
			t.Fatalf("delta finished %s (error %q)", vd.Status, vd.Error)
		}
		if vd.ZonesReused == 0 {
			t.Fatalf("delta job replayed no zones (reused/resolved = %d/%d); ECO had no effect", vd.ZonesReused, vd.ZonesResolved)
		}
		if vd.ZonesResolved == 0 {
			t.Fatalf("delta job re-solved no zones; the edited leaf's zone key failed to flip")
		}
		_, gotDelta := h.resultBody(vd.JobID)
		if !bytes.Equal(gotDelta, coldDelta) {
			t.Fatalf("delta solve bytes diverged from cold solve\ncold:  %s\ndelta: %s", coldDelta, gotDelta)
		}
		reusedCounts = append(reusedCounts, vd.ZonesReused)
	}

	for _, w := range workerCounts {
		h := newHarness(t, Options{Workers: 1, DefaultTimeout: time.Minute, MaxTimeout: time.Minute,
			Eco: true, Dispatch: &dispatch.Options{LocalExec: true}})
		runEco(t, h, w)
	}

	// Dispatched: the delta executes on a remote worker that shares
	// nothing with the coordinator but the JobSpec — seeds ride out in
	// the spec, solutions ride home in the outcome.
	srv := mustNew(t, Options{Workers: 1, DefaultTimeout: time.Minute, MaxTimeout: time.Minute,
		Eco: true, Dispatch: &dispatch.Options{
			LeaseTTL: 2 * time.Second, MaxAttempts: 3, LocalExec: false,
		}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	stop := startWorker(t, ts.URL, "eco-w1")
	defer stop()
	runEco(t, &harness{t: t, srv: srv, ts: ts}, 2)

	// The reuse accounting is deterministic content: identical at every
	// worker count and on both execution paths.
	for i := 1; i < len(reusedCounts); i++ {
		if reusedCounts[i] != reusedCounts[0] {
			t.Fatalf("zonesReused varies across runs: %v", reusedCounts)
		}
	}
}

// TestECOBaseErrors pins the structured error contract of baseJobId:
// every bad reference is a 4xx with a machine-readable code — a 404 for
// unknown bases, a 409 for bases that cannot seed a delta, a 400 when the
// server has no ECO mode at all — and never a 5xx.
func TestECOBaseErrors(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	tree := ecoTreeJSON(t, 8, -1, 0)
	withBase := func(base string, extra map[string]any) []byte {
		m := map[string]any{"tree": tree, "config": ecoConfig(), "baseJobId": base}
		for k, v := range extra {
			m[k] = v
		}
		return marshalReq(t, m)
	}
	errCode := func(resp map[string]any) string {
		e, _ := resp["error"].(map[string]any)
		c, _ := e["code"].(string)
		return c
	}

	t.Run("EcoDisabled", func(t *testing.T) {
		h := newHarness(t, Options{Workers: 1})
		code, resp := h.post(withBase("j-000001", nil))
		if code != http.StatusBadRequest || errCode(resp) != "eco_disabled" {
			t.Fatalf("status %d code %q, want 400 eco_disabled", code, errCode(resp))
		}
	})

	eco := Options{Workers: 1, DefaultTimeout: time.Minute, MaxTimeout: time.Minute,
		Eco: true, Dispatch: &dispatch.Options{LocalExec: true}}

	t.Run("UnknownBase", func(t *testing.T) {
		h := newHarness(t, eco)
		code, resp := h.post(withBase("j-999999", nil))
		if code != http.StatusNotFound || errCode(resp) != "unknown_base" {
			t.Fatalf("status %d code %q, want 404 unknown_base", code, errCode(resp))
		}
	})

	t.Run("UnfinishedBase", func(t *testing.T) {
		h := newHarness(t, eco)
		release := make(chan struct{})
		started := make(chan struct{}, 16)
		faultinject.Set(faultinject.SitePolarityZone, func() {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
		})
		defer func() { faultinject.Reset(); close(release) }()
		code, resp := h.post(marshalReq(t, map[string]any{"tree": tree, "config": ecoConfig()}))
		if code != http.StatusAccepted {
			t.Fatalf("submit base: status %d: %v", code, resp)
		}
		<-started // base is mid-solve
		code, resp = h.post(withBase(jobID(t, resp), nil))
		if code != http.StatusConflict || errCode(resp) != "base_not_reusable" {
			t.Fatalf("status %d code %q, want 409 base_not_reusable", code, errCode(resp))
		}
	})

	t.Run("CacheHitBase", func(t *testing.T) {
		h := newHarness(t, eco)
		body := marshalReq(t, map[string]any{"tree": tree, "config": ecoConfig()})
		if v := h.submitWait(body); v.Status != StatusDone {
			t.Fatalf("seed job finished %s", v.Status)
		}
		// Same problem again: answered from the result cache, so the job
		// ran no solver and recorded no zones — it cannot seed a delta.
		code, resp := h.post(body)
		if code != http.StatusOK {
			t.Fatalf("resubmit: status %d, want 200 cache hit: %v", code, resp)
		}
		code, resp = h.post(withBase(jobID(t, resp), nil))
		if code != http.StatusConflict || errCode(resp) != "base_not_reusable" {
			t.Fatalf("status %d code %q, want 409 base_not_reusable", code, errCode(resp))
		}
	})

	t.Run("DegradedBase", func(t *testing.T) {
		h := newHarness(t, eco)
		// A solver slowed far past the job deadline degrades down the
		// algorithm ladder: the job completes, but its result is
		// deadline-shaped — and a delta must never seed from it.
		faultinject.Set(faultinject.SitePolarityZone, func() { time.Sleep(100 * time.Millisecond) })
		defer faultinject.Reset()
		code, resp := h.post(marshalReq(t, map[string]any{
			"tree": tree, "config": ecoConfig(), "timeoutMs": 200}))
		if code != http.StatusAccepted {
			t.Fatalf("submit: status %d: %v", code, resp)
		}
		id := jobID(t, resp)
		v := h.waitJob(id, 30*time.Second)
		if v.Status == StatusDone && !v.Degraded {
			t.Fatalf("base finished clean despite the wedged solver; cannot exercise the degraded-base path")
		}
		faultinject.Reset()
		code, resp = h.post(withBase(id, nil))
		if code != http.StatusConflict || errCode(resp) != "base_not_reusable" {
			t.Fatalf("status %d code %q, want 409 base_not_reusable", code, errCode(resp))
		}
	})
}

// TestECOCrashRecovery is the crash-mid-ECO scenario: a delta job is
// journaled (with its seed solutions in the spec) and the coordinator
// crashes before solving it. The recovered coordinator must finish the
// delta byte-identically — and must answer NEW deltas that name the
// pre-crash base from the durable zone store, even though its job
// registry died with the process.
func TestECOCrashRecovery(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	opts := func() Options {
		o := durableOpts(dir)
		o.Eco = true
		return o
	}
	baseTree := ecoTreeJSON(t, 12, -1, 0)
	deltaTree := ecoTreeJSON(t, 12, 3, 4)

	// Cold reference bytes for the delta tree.
	ref := newHarness(t, Options{Dispatch: &dispatch.Options{LocalExec: true}})
	v := ref.submitWait(marshalReq(t, map[string]any{"tree": deltaTree, "config": ecoConfig()}))
	if v.Status != StatusDone {
		t.Fatalf("reference finished %s (error %q)", v.Status, v.Error)
	}
	_, coldDelta := ref.resultBody(v.JobID)

	h1 := newHarness(t, opts())
	vb := h1.submitWait(marshalReq(t, map[string]any{"tree": baseTree, "config": ecoConfig()}))
	if vb.Status != StatusDone {
		t.Fatalf("base finished %s (error %q)", vb.Status, vb.Error)
	}
	baseID := vb.JobID

	// Wedge the solver so the delta is accepted but cannot finish, then
	// cut power mid-solve.
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	faultinject.Set(faultinject.SitePolarityZone, func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	code, resp := h1.post(marshalReq(t, map[string]any{
		"tree": deltaTree, "config": ecoConfig(), "baseJobId": baseID}))
	if code != http.StatusAccepted {
		t.Fatalf("submit delta: status %d: %v", code, resp)
	}
	deltaID := jobID(t, resp)
	<-started
	h1.srv.Crash()
	faultinject.Reset()
	close(release)

	h2 := newHarness(t, opts())
	if rec := h2.srv.Recovery(); !rec.Durable || rec.JobsRestored != 1 {
		t.Fatalf("recovery = %+v, want 1 job restored", rec)
	}
	vd := h2.waitJob(deltaID, 30*time.Second)
	if vd.Status != StatusDone {
		t.Fatalf("recovered delta finished %s (error %q)", vd.Status, vd.Error)
	}
	if vd.ZonesReused == 0 {
		t.Fatalf("recovered delta replayed no zones; the journaled seeds were lost")
	}
	_, got := h2.resultBody(deltaID)
	if !bytes.Equal(got, coldDelta) {
		t.Fatalf("recovered delta bytes diverged from cold solve\ncold:      %s\nrecovered: %s", coldDelta, got)
	}

	// The pre-crash base job ID is gone from the registry, but its zone
	// solutions and its job → zones mapping survived in DataDir/zones.
	code, resp = h2.post(marshalReq(t, map[string]any{
		"tree": ecoTreeJSON(t, 12, 5, 4), "config": ecoConfig(), "baseJobId": baseID}))
	if code != http.StatusAccepted {
		t.Fatalf("post-crash delta on pre-crash base: status %d: %v", code, resp)
	}
	vn := h2.waitJob(jobID(t, resp), 30*time.Second)
	if vn.Status != StatusDone {
		t.Fatalf("post-crash delta finished %s (error %q)", vn.Status, vn.Error)
	}
	if vn.ZonesReused == 0 {
		t.Fatalf("post-crash delta replayed no zones; durable zone store did not answer")
	}
}
