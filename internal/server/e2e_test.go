package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"wavemin"
	"wavemin/internal/faultinject"
)

// smallTreeJSON synthesizes a small design and returns its serialized
// clock tree — the payload every e2e request carries.
func smallTreeJSON(t testing.TB, n int) json.RawMessage {
	t.Helper()
	sinks := make([]wavemin.Sink, 0, n)
	for i := 0; i < n; i++ {
		sinks = append(sinks, wavemin.Sink{
			X:   float64(15 + (i%4)*10),
			Y:   float64(15 + (i/4)*10),
			Cap: 8,
		})
	}
	d, err := wavemin.New(sinks)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveTree(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fastConfig keeps e2e solves in the tens of milliseconds.
func fastConfig() map[string]any {
	return map[string]any{"samples": 16, "maxIntervals": 2}
}

func marshalReq(t testing.TB, req map[string]any) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

type harness struct {
	t   *testing.T
	srv *Server
	ts  *httptest.Server
}

func mustNew(t *testing.T, opts Options) *Server {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	srv := mustNew(t, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &harness{t: t, srv: srv, ts: ts}
}

// post submits a body to POST /v1/optimize and returns status + decoded
// response object.
func (h *harness) post(body []byte) (int, map[string]any) {
	h.t.Helper()
	resp, err := http.Post(h.ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		h.t.Fatalf("POST /v1/optimize: status %d, non-JSON body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

func (h *harness) get(path string) (int, []byte) {
	h.t.Helper()
	resp, err := http.Get(h.ts.URL + path)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp.StatusCode, body
}

// waitJob polls GET /v1/jobs/{id} until the job leaves queued/running.
func (h *harness) waitJob(id string, timeout time.Duration) jobView {
	h.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body := h.get("/v1/jobs/" + id)
		if code != http.StatusOK {
			h.t.Fatalf("GET /v1/jobs/%s: status %d: %s", id, code, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			h.t.Fatal(err)
		}
		if v.Status != StatusQueued && v.Status != StatusRunning {
			return v
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// resultBody fetches GET /v1/jobs/{id}/result and returns the raw bytes of
// the "result" field, for bitwise comparisons.
func (h *harness) resultBody(id string) (bool, json.RawMessage) {
	h.t.Helper()
	code, body := h.get("/v1/jobs/" + id + "/result")
	if code != http.StatusOK {
		h.t.Fatalf("GET result for %s: status %d: %s", id, code, body)
	}
	var out struct {
		CacheHit bool            `json:"cacheHit"`
		Result   json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		h.t.Fatal(err)
	}
	return out.CacheHit, out.Result
}

func jobID(t *testing.T, resp map[string]any) string {
	t.Helper()
	id, _ := resp["jobId"].(string)
	if id == "" {
		t.Fatalf("response carries no jobId: %v", resp)
	}
	return id
}

// TestEndToEnd is the service's e2e suite: each scenario drives the real
// HTTP stack (httptest) end to end through submission, queueing, the
// solver, and the result/trace endpoints. Scenarios run sequentially —
// several install process-global faultinject hooks.
func TestEndToEnd(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"HappyPathWithTrace", e2eHappyPath},
		{"CacheHitIsBitwiseIdentical", e2eCacheHit},
		{"BackpressureQueueFull", e2eBackpressure},
		{"DeadlineExpiryMidSolve", e2eDeadlineMidSolve},
		{"DeadlineExpiryInQueue", e2eDeadlineInQueue},
		{"DrainFinishesAcceptedWork", e2eDrain},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			sc.run(t)
		})
	}
}

func e2eHappyPath(t *testing.T) {
	h := newHarness(t, Options{})
	body := marshalReq(t, map[string]any{
		"tree":   smallTreeJSON(t, 8),
		"config": fastConfig(),
		"trace":  true,
	})
	code, resp := h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, resp)
	}
	if hit, _ := resp["cacheHit"].(bool); hit {
		t.Fatal("fresh submission reported a cache hit")
	}
	id := jobID(t, resp)

	v := h.waitJob(id, 30*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job finished %s (error %q), want done", v.Status, v.Error)
	}
	if v.AlgorithmUsed != "ClkWaveMin" || v.Degraded {
		t.Fatalf("job used %q (degraded=%v), want undegraded ClkWaveMin", v.AlgorithmUsed, v.Degraded)
	}
	if !v.HasTrace {
		t.Fatal("trace requested but job reports none")
	}

	_, blob := h.resultBody(id)
	var res wavemin.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("result JSON: %v", err)
	}
	if res.Before.PeakCurrent <= 0 || res.After.PeakCurrent <= 0 {
		t.Fatalf("implausible metrics: before %+v after %+v", res.Before, res.After)
	}
	if res.Stats != nil {
		t.Fatal("cached-form result must not embed per-run Stats")
	}

	code, trace := h.get("/v1/jobs/" + id + "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace endpoint: status %d: %s", code, trace)
	}
	if !bytes.Contains(trace, []byte(`"optimize`)) {
		t.Fatalf("trace carries no optimize span: %.200s", trace)
	}

	// Unknown job and unfinished-state errors are structured, not 500s.
	if code, body := h.get("/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d: %s", code, body)
	}
	if code, body := h.get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", code, body)
	}
}

func e2eCacheHit(t *testing.T) {
	h := newHarness(t, Options{})
	body := marshalReq(t, map[string]any{
		"tree":   smallTreeJSON(t, 8),
		"config": fastConfig(),
	})
	code, resp := h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d, body %v", code, resp)
	}
	id1 := jobID(t, resp)
	if v := h.waitJob(id1, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("first job finished %s (error %q)", v.Status, v.Error)
	}
	_, first := h.resultBody(id1)
	runsAfterFirst := h.srv.MetricsSnapshot().SolverRuns

	// A semantically identical resubmission — different JSON key order and
	// an explicit execution-policy knob — must answer from the cache,
	// without another solver run.
	body2 := marshalReq(t, map[string]any{
		"config": map[string]any{"maxIntervals": 2, "samples": 16, "workers": 2},
		"tree":   smallTreeJSON(t, 8),
	})
	code, resp = h.post(body2)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, body %v (want immediate 200)", code, resp)
	}
	if hit, _ := resp["cacheHit"].(bool); !hit {
		t.Fatalf("resubmit not served from cache: %v", resp)
	}
	id2 := jobID(t, resp)
	hit, second := h.resultBody(id2)
	if !hit {
		t.Fatal("result endpoint lost the cacheHit marker")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit not bitwise identical:\n first %s\nsecond %s", first, second)
	}

	m := h.srv.MetricsSnapshot()
	if m.SolverRuns != runsAfterFirst {
		t.Fatalf("cache hit re-invoked the solver: runs %d -> %d", runsAfterFirst, m.SolverRuns)
	}
	if m.CacheHits != 1 {
		t.Fatalf("cacheHits = %d, want 1", m.CacheHits)
	}
	// noCache forces a fresh solve even with the result cached.
	body3 := marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 8), "config": fastConfig(), "noCache": true,
	})
	code, resp = h.post(body3)
	if code != http.StatusAccepted {
		t.Fatalf("noCache submit: status %d, body %v", code, resp)
	}
	if v := h.waitJob(jobID(t, resp), 30*time.Second); v.Status != StatusDone {
		t.Fatalf("noCache job finished %s", v.Status)
	}
	if m := h.srv.MetricsSnapshot(); m.SolverRuns != runsAfterFirst+1 {
		t.Fatalf("noCache run count %d, want %d", m.SolverRuns, runsAfterFirst+1)
	}
}

func e2eBackpressure(t *testing.T) {
	h := newHarness(t, Options{QueueCapacity: 1, Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	// The hook may fire from several per-zone solver goroutines at once:
	// signal arrival without blocking, then hold them all until release.
	faultinject.Set(faultinject.SitePolarityZone, func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})

	body := marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 8), "config": fastConfig(),
	})
	code, resp := h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d, body %v", code, resp)
	}
	running := jobID(t, resp)
	<-started // the single worker is now blocked mid-solve

	code, resp = h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("second submit (fills backlog): status %d, body %v", code, resp)
	}
	queued := jobID(t, resp)

	// Queue at capacity: every further submission must be a 429 with a
	// usable Retry-After, never a 500 and never silently dropped.
	for i := 0; i < 3; i++ {
		req, err := http.NewRequest("POST", h.ts.URL+"/v1/optimize", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("submit at capacity: status %d: %s", resp.StatusCode, raw)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("Retry-After %q, want an integer >= 1", resp.Header.Get("Retry-After"))
		}
		var e struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != "queue_full" {
			t.Fatalf("429 body %s (err %v), want error.code queue_full", raw, err)
		}
	}
	if m := h.srv.MetricsSnapshot(); m.RejectedFull != 3 {
		t.Fatalf("rejectedFull = %d, want 3", m.RejectedFull)
	}

	faultinject.Reset() // let the queued job pass its own zone hooks
	close(release)      // unblock every held hook call of the running job
	for _, id := range []string{running, queued} {
		if v := h.waitJob(id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("job %s finished %s (error %q) after release", id, v.Status, v.Error)
		}
	}
}

func e2eDeadlineMidSolve(t *testing.T) {
	h := newHarness(t, Options{Workers: 1})
	// Every per-zone polarity solve stalls longer than the whole job
	// deadline: the ladder must degrade rung by rung and bottom out at the
	// unmodified tree instead of hanging or failing.
	faultinject.Set(faultinject.SitePolarityZone, func() { time.Sleep(300 * time.Millisecond) })

	body := marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 8), "config": fastConfig(), "timeoutMs": 200,
	})
	code, resp := h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, resp)
	}
	id := jobID(t, resp)
	v := h.waitJob(id, 30*time.Second)
	switch v.Status {
	case StatusDone:
		if !v.Degraded {
			t.Fatalf("solve beat a deadline it cannot beat: %+v", v)
		}
	case StatusExpired:
		// Also acceptable: the deadline fired before the ladder could
		// even return the unmodified tree.
	default:
		t.Fatalf("job finished %s (error %q), want done-degraded or expired", v.Status, v.Error)
	}

	// A degraded answer must never be cached: the same request with no
	// fault and a roomy deadline runs the solver for real.
	faultinject.Reset()
	body = marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 8), "config": fastConfig(),
	})
	code, resp = h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit after degradation: status %d, body %v (a degraded result leaked into the cache)", code, resp)
	}
	if v := h.waitJob(jobID(t, resp), 30*time.Second); v.Status != StatusDone || v.Degraded {
		t.Fatalf("clean resubmit finished %s degraded=%v", v.Status, v.Degraded)
	}
}

func e2eDeadlineInQueue(t *testing.T) {
	h := newHarness(t, Options{Workers: 1, QueueCapacity: 4})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	var once sync.Once
	faultinject.Set(faultinject.SitePolarityZone, func() {
		// Once blocks every concurrent caller until the first completes,
		// so the whole blocker job holds until release closes.
		once.Do(func() { started <- struct{}{}; <-release })
	})

	body := marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 8), "config": fastConfig(),
	})
	code, resp := h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit: status %d", code)
	}
	blocker := jobID(t, resp)
	<-started

	// This job's 50ms deadline expires while it waits behind the blocker;
	// the worker must retire it as expired without invoking the solver.
	code, resp = h.post(marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 8), "config": fastConfig(), "timeoutMs": 50, "noCache": true,
	}))
	if code != http.StatusAccepted {
		t.Fatalf("doomed submit: status %d", code)
	}
	doomed := jobID(t, resp)
	time.Sleep(100 * time.Millisecond)
	runsBefore := h.srv.MetricsSnapshot().SolverRuns
	close(release)

	if v := h.waitJob(doomed, 30*time.Second); v.Status != StatusExpired {
		t.Fatalf("doomed job finished %s, want expired", v.Status)
	}
	if v := h.waitJob(blocker, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("blocker finished %s (error %q)", v.Status, v.Error)
	}
	m := h.srv.MetricsSnapshot()
	if m.SolverRuns != runsBefore {
		t.Fatalf("expired-in-queue job invoked the solver: runs %d -> %d", runsBefore, m.SolverRuns)
	}
	if m.Expired != 1 {
		t.Fatalf("expired = %d, want 1", m.Expired)
	}
	if code, body := h.get("/v1/jobs/" + doomed + "/result"); code != http.StatusConflict {
		t.Fatalf("result of expired job: status %d: %s", code, body)
	}
}

func e2eDrain(t *testing.T) {
	h := newHarness(t, Options{Workers: 2, QueueCapacity: 8})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	var once sync.Once
	faultinject.Set(faultinject.SitePolarityZone, func() {
		select {
		case started <- struct{}{}:
		default:
		}
		once.Do(func() { <-release }) // Once blocks every concurrent caller until released
	})

	body := marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 8), "config": fastConfig(), "noCache": true,
	})
	var ids []string
	for i := 0; i < 3; i++ {
		code, resp := h.post(body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, body %v", i, code, resp)
		}
		ids = append(ids, jobID(t, resp))
	}
	<-started // at least one job is mid-solve when the drain begins

	drained := make(chan error, 1)
	go func() { drained <- h.srv.Drain(t.Context()) }()

	// Intake must close promptly: new submissions and health checks flip
	// to 503 while in-flight work keeps running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, resp := h.post(body)
		if code == http.StatusServiceUnavailable {
			if c, _ := resp["error"].(map[string]any); c["code"] != "draining" {
				t.Fatalf("503 body %v, want error.code draining", resp)
			}
			break
		}
		if code != http.StatusAccepted && code != http.StatusTooManyRequests {
			t.Fatalf("submit during drain onset: status %d, body %v", code, resp)
		}
		if time.Now().After(deadline) {
			t.Fatal("intake never closed after Drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body := h.get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d: %s", code, body)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every job accepted before the drain completed — none were dropped.
	for _, id := range ids {
		if v := h.waitJob(id, time.Second); v.Status != StatusDone {
			t.Fatalf("accepted job %s finished %s (error %q) across drain", id, v.Status, v.Error)
		}
	}
}

// TestParallelSubmitStorm race-hammers the full HTTP stack: concurrent
// submissions against a tiny queue must each resolve to 202 (accepted),
// 200 (cache hit), or 429 (backpressure) — never a 5xx, a hang, or a
// dropped job.
func TestParallelSubmitStorm(t *testing.T) {
	h := newHarness(t, Options{QueueCapacity: 2, Workers: 2})
	body := marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 8), "config": fastConfig(),
	})
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	var accepted []string
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				resp, err := http.Post(h.ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var out map[string]any
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil {
					t.Errorf("status %d with non-JSON body: %v", resp.StatusCode, derr)
					return
				}
				mu.Lock()
				counts[resp.StatusCode]++
				if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
					accepted = append(accepted, out["jobId"].(string))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for code := range counts {
		switch code {
		case http.StatusOK, http.StatusAccepted, http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected status %d under storm (counts %v)", code, counts)
		}
	}
	if len(accepted) == 0 {
		t.Fatalf("storm accepted nothing: %v", counts)
	}
	for _, id := range accepted {
		if v := h.waitJob(id, 60*time.Second); v.Status != StatusDone {
			t.Fatalf("accepted job %s finished %s (error %q)", id, v.Status, v.Error)
		}
	}
}
