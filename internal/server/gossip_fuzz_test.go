package server

// FuzzShardMapGossip hardens the live-map attack surface: hostile
// operator injections (POST /v1/shard/map with arbitrary bodies) and
// forged handoff/replica pushes (PUT /v1/shard/cache/{key} with
// arbitrary version and piggybacked-map headers and arbitrary values).
// The contract under fuzz:
//
//   - Every response is a success or a STRUCTURED 4xx — never a 5xx,
//     never a panic. Stale maps are ignored-with-counter (409
//     map_stale), invalid maps rejected (400/409), both structured.
//   - The node's map version is MONOTONE: no input ever moves it
//     backward. (It may legitimately rise — a fuzzed input that spells
//     a valid newer same-shape map IS an adoption, and must pass the
//     same gate as a real one.)
//   - No wrong-shard cache write: a push the node does not accept (it
//     is neither owner nor replica of the key under its live map at
//     that moment) leaves no trace in the cache tiers. Accepted pushes
//     are re-checked against the live map after the fact.
//
// Peer URLs are dead sockets: a hostile version header claiming a newer
// map triggers a catch-up dial that must fail closed into the
// structured 409, never a 5xx or a hang (PeerTimeout bounds it).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"wavemin/internal/shard"
)

func FuzzShardMapGossip(f *testing.F) {
	base, err := shard.New(3, 8, 3)
	if err != nil {
		f.Fatal(err)
	}
	base, err = base.WithReplicas(1)
	if err != nil {
		f.Fatal(err)
	}
	dead := []string{"http://127.0.0.1:1", "http://127.0.0.1:1", "http://127.0.0.1:1"}
	srv, err := New(Options{ShardMap: base, ShardID: 0, Peers: dead, PeerTimeout: 100 * time.Millisecond})
	if err != nil {
		f.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	f.Cleanup(ts.Close)

	// accepted tracks every key a push legitimately stored (as owner or
	// replica); the cache tiers may never hold more distinct entries
	// than this set, or a refused push wrote anyway.
	var acceptedMu sync.Mutex
	accepted := map[string]bool{}

	ownedKey := strings.Repeat("0", 64)  // bucket 0 → shard 0 (round-robin)
	otherKey := "01" + strings.Repeat("0", 62) // bucket 1 → shard 1, replica 2
	seeds := []struct {
		mapBody, key, ver, mapHdr string
		val                       []byte
	}{
		{`{"map":"v4:8:3:r*1"}`, ownedKey, "3", "", []byte("x")},      // clean adoption, clean owned push
		{`{"map":"v1:8:3"}`, otherKey, "3", "", []byte("y")},          // stale map, wrong-shard push
		{`{"map":"v9:4:3"}`, ownedKey, "99", "v99:8:3", []byte("z")},  // shape change, piggybacked catch-up
		{`{"map":"v1073741825:8:3"}`, ownedKey, "-1", "vX", nil},      // version overflow, hostile headers
		{`not json`, "../../etc/passwd", "v3", "not-a-map", []byte{0}},
		{`{"map":"v4:8:3:` + strings.Repeat("0,", 255) + `0"}`, strings.Repeat("f", 64), "4", "v4:8:3", []byte("w")},
		{`{"map":""}`, strings.Repeat("F", 64), "3", "", bytes.Repeat([]byte("A"), 256)},
	}
	for _, s := range seeds {
		f.Add(s.mapBody, s.key, s.ver, s.mapHdr, s.val)
	}

	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r < 0x20 || r == 0x7f {
				return '_'
			}
			return r
		}, s)
	}
	structured := func(t *testing.T, what string, code int, body []byte) {
		t.Helper()
		if code < 400 {
			return
		}
		if code >= 500 {
			t.Fatalf("%s: status %d (want structured 4xx): %s", what, code, body)
		}
		if code == http.StatusNotFound && bytes.HasPrefix(body, []byte("404 page not found")) {
			return // a path-collapsing key never reached the route
		}
		var out struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &out); err != nil || out.Error.Code == "" {
			t.Fatalf("%s: status %d without a structured error code: %s", what, code, body)
		}
	}

	f.Fuzz(func(t *testing.T, mapBody, key, ver, mapHdr string, val []byte) {
		before := srv.sh.Map().Version

		// Hostile operator injection.
		resp, err := http.Post(ts.URL+"/v1/shard/map", "application/json", strings.NewReader(mapBody))
		if err != nil {
			t.Fatalf("POST /v1/shard/map: transport error: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		structured(t, "map injection", resp.StatusCode, body)
		if resp.StatusCode == http.StatusOK {
			var out struct {
				Adopted    bool `json:"adopted"`
				MapVersion int  `json:"mapVersion"`
			}
			if err := json.Unmarshal(body, &out); err != nil || !out.Adopted || out.MapVersion <= before {
				t.Fatalf("200 adoption that is not a forward step: %s (was v%d)", body, before)
			}
		}

		// Forged push with hostile version and piggybacked-map headers.
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/shard/cache/"+url.PathEscape(key), bytes.NewReader(val))
		if err != nil {
			return // unsendable path: the HTTP client refused, not the server
		}
		req.Header.Set("X-Wavemin-Forwarded-From", "1")
		req.Header.Set("X-Wavemin-Shard-Map-Version", sanitize(ver))
		if mapHdr != "" {
			req.Header.Set("X-Wavemin-Shard-Map", sanitize(mapHdr))
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		pushResp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT push: transport error: %v", err)
		}
		pushBody, _ := io.ReadAll(pushResp.Body)
		pushResp.Body.Close()
		structured(t, "forged push", pushResp.StatusCode, pushBody)

		after := srv.sh.Map()
		if after.Version < before {
			t.Fatalf("map version moved backward: v%d -> v%d", before, after.Version)
		}
		acceptedMu.Lock()
		if pushResp.StatusCode == http.StatusNoContent {
			// An accepted push must be justified by the live map: this
			// node is the key's owner or one of its replicas. (The map
			// can only have risen since the write; content addressing
			// keeps a copy accepted under an older epoch harmless.)
			owner, err := after.ShardOf(key)
			if err == nil && owner != 0 && !after.IsReplica(key, 0) {
				acceptedMu.Unlock()
				t.Fatalf("push for key %q accepted, but node 0 is neither owner (shard %d) nor replica", key, owner)
			}
			accepted[key] = true
		}
		n := len(accepted)
		acceptedMu.Unlock()
		if entries := srv.cache.Stats().Mem.Entries; entries > n {
			t.Fatalf("cache holds %d entries but only %d pushes were accepted: a refused push wrote anyway", entries, n)
		}
	})
}
