// Package server is the wavemind batch optimization service: an HTTP
// JSON API over the wavemin facade, backed by a bounded prioritized job
// queue (internal/jobq) and a content-addressed LRU result cache
// (internal/rescache).
//
// Endpoints:
//
//	POST /v1/optimize          submit a tree + config; 202 + job ID, or
//	                           200 immediately on a result-cache hit,
//	                           429 + Retry-After when the queue is full,
//	                           503 while draining
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/result  the optimization Result (JSON)
//	GET  /v1/jobs/{id}/trace   the job's telemetry trace (JSONL), when
//	                           the request asked for one
//	GET  /healthz              liveness (503 while draining)
//	GET  /debug/vars, /debug/pprof/...   expvar + pprof (Options.Debug)
//
// Results are cached under the canonical content hash of (tree, config,
// modes) — wavemin.Design.CacheKey — so resubmitting an identical
// problem is answered instantly, byte-for-byte identically, without
// re-running the solver. Degraded (deadline-shaped) results are never
// cached. Drain stops intake and finishes every accepted job — the
// SIGTERM path of cmd/wavemind.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	_ "expvar" // /debug/vars when Options.Debug mounts the default mux
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // /debug/pprof when Options.Debug mounts the default mux
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wavemin"
	"wavemin/internal/castore"
	"wavemin/internal/dispatch"
	"wavemin/internal/jobq"
	"wavemin/internal/obs"
	"wavemin/internal/rescache"
	"wavemin/internal/shard"
	"wavemin/internal/wal"
	"wavemin/internal/zonecache"
)

// Options configures a Server. Zero values take the defaults noted.
type Options struct {
	QueueCapacity    int           // backlog bound (default 64)
	Workers          int           // jobs executed concurrently (default 2)
	CacheMaxBytes    int64         // result cache byte bound (default 64 MiB)
	CacheMaxEntries  int           // result cache entry bound (default 4096)
	DefaultTimeout   time.Duration // per-job deadline when the request names none (default 30s)
	MaxTimeout       time.Duration // per-job deadline ceiling (default 2m)
	MaxRequestBytes  int64         // request body bound (default 8 MiB)
	MaxJobs          int           // finished job records retained (default 4096)
	MaxSolverWorkers int           // cap on per-job solver parallelism (0 = uncapped)
	Debug            bool          // mount /debug/vars and /debug/pprof
	// Dispatch, when non-nil, runs the server as a dispatch coordinator:
	// jobs are enqueued as leasable work that `wavemind -role=worker`
	// processes pull over /v1/dispatch/*, and (with Dispatch.LocalExec)
	// the local pool still executes whatever no worker claims. Nil — the
	// default — keeps the PR 4 in-process path exactly as it was.
	Dispatch *dispatch.Options

	// DataDir, when set, makes the server crash-safe: accepted jobs are
	// journaled to DataDir/journal before their submission is
	// acknowledged, results are persisted to the content-addressed store
	// under DataDir/store before completions are acknowledged, and a
	// restart replays both — the backlog is re-enqueued (attempts, lane
	// order, and deadlines preserved) and cached results survive. DataDir
	// implies the dispatch path (jobs must be serializable to replay);
	// when Dispatch is nil it defaults to local-only execution.
	DataDir string
	// Fsync is the journal durability policy: "batch" (group-commit
	// fsync, the default), "always" (fsync per record), or "none" (OS
	// flush timing; a crash may lose the most recent acknowledgements).
	// It also controls whether result-store writes fsync.
	Fsync string
	// RecoverBestEffort salvages the valid journal prefix when startup
	// replay hits mid-journal corruption (quarantining the corrupt
	// segment) instead of refusing to start.
	RecoverBestEffort bool
	// CheckpointEvery is how often the journal is compacted to a
	// snapshot of the live backlog (default 30s).
	CheckpointEvery time.Duration
	// StoreMaxBytes bounds the persistent result store (default 256 MiB);
	// least-recently-used results are evicted.
	StoreMaxBytes int64

	// Eco enables incremental re-optimization: every solver job records
	// its per-zone solutions in a zone cache (durable under DataDir/zones
	// when DataDir is set), and POST /v1/optimize accepts a "baseJobId"
	// whose zone solutions seed the new job — unchanged zones replay,
	// only the delta is solved. Off by default: recording zones adds keying
	// work and eco counters to job traces.
	Eco bool
	// ZoneCacheMaxBytes bounds the in-memory zone-solution tier (default
	// 32 MiB); ZoneStoreMaxBytes bounds the durable tier under
	// DataDir/zones (default 64 MiB). Both LRU-evict.
	ZoneCacheMaxBytes int64
	ZoneStoreMaxBytes int64

	// ShardMap, when non-nil, runs the server as one node of a sharded
	// fleet (see shardroute.go): ShardID names the shard this node owns,
	// Peers lists every node's base URL in shard order, and requests for
	// keys other shards own are forwarded a single hop to their owner.
	// All three must be set together.
	ShardMap *shard.Map
	ShardID  int
	Peers    []string
	// MaxForwardInFlight bounds concurrent forwards to peers (default
	// 128); past it, submissions get 503 forward_backpressure.
	MaxForwardInFlight int
	// PeerTimeout bounds each peer call — forwarded requests and cache
	// read-throughs alike (default 15s).
	PeerTimeout time.Duration
	// GossipInterval is the anti-entropy cadence: how often this node
	// pulls each peer's shard map (GET /v1/shard/map) and adopts anything
	// newer. Zero disables the loop — version piggybacking on forwards
	// still converges the routes that carry traffic, but an idle node
	// will not follow a rebalance on its own.
	GossipInterval time.Duration

	// YieldMaxSamples caps the per-candidate Monte Carlo budget a yield
	// request may ask for, below the protocol ceiling (yield.MaxSamples).
	// 0 = protocol ceiling only.
	YieldMaxSamples int
	// YieldMaxConcurrent bounds yield jobs driving the fleet at once
	// (default 2): each one fans out many chunk sub-leases, so an
	// unbounded count would let a burst of yield requests starve plain
	// optimization jobs.
	YieldMaxConcurrent int
}

func (o Options) withDefaults() Options {
	if o.QueueCapacity == 0 {
		o.QueueCapacity = 64
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.CacheMaxBytes == 0 {
		o.CacheMaxBytes = 64 << 20
	}
	if o.CacheMaxEntries == 0 {
		o.CacheMaxEntries = 4096
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.MaxRequestBytes == 0 {
		o.MaxRequestBytes = 8 << 20
	}
	if o.MaxJobs == 0 {
		o.MaxJobs = 4096
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 30 * time.Second
	}
	if o.StoreMaxBytes == 0 {
		o.StoreMaxBytes = 256 << 20
	}
	if o.ZoneCacheMaxBytes == 0 {
		o.ZoneCacheMaxBytes = 32 << 20
	}
	if o.ZoneStoreMaxBytes == 0 {
		o.ZoneStoreMaxBytes = 64 << 20
	}
	if o.MaxForwardInFlight == 0 {
		o.MaxForwardInFlight = 128
	}
	if o.PeerTimeout == 0 {
		o.PeerTimeout = 15 * time.Second
	}
	if o.YieldMaxConcurrent == 0 {
		o.YieldMaxConcurrent = 2
	}
	return o
}

// Job statuses on the wire.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"  // solver error
	StatusExpired = "expired" // deadline passed (in queue, or cancelled mid-solve)
)

// job is one submitted optimization.
type job struct {
	id        string
	pri       jobq.Priority
	cacheHit  bool
	submitted time.Time
	cancel    context.CancelFunc

	mu            sync.Mutex
	status        string
	started       time.Time
	finished      time.Time
	resultJSON    []byte
	algorithmUsed string
	degraded      bool
	errMsg        string
	trace         *obs.Memory // non-nil iff the request asked for a trace
	// ECO bookkeeping (Options.Eco): the zone-solution keys this job
	// recorded — what a later delta submitted with baseJobId=<this id>
	// seeds from — plus the reuse counters for the job view.
	zoneKeys      []string
	zonesReused   int
	zonesResolved int
}

// jobView is the wire form of a job record.
type jobView struct {
	JobID         string `json:"jobId"`
	Status        string `json:"status"`
	Priority      string `json:"priority"`
	CacheHit      bool   `json:"cacheHit"`
	SubmittedAt   string `json:"submittedAt"`
	StartedAt     string `json:"startedAt,omitempty"`
	FinishedAt    string `json:"finishedAt,omitempty"`
	AlgorithmUsed string `json:"algorithmUsed,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	Error         string `json:"error,omitempty"`
	HasTrace      bool   `json:"hasTrace,omitempty"`
	ZonesReused   int    `json:"zonesReused,omitempty"`
	ZonesResolved int    `json:"zonesResolved,omitempty"`
}

// Metrics is a snapshot of the server's counters (also published to the
// "wavemin" expvar map as server_* entries).
type Metrics struct {
	Submitted        int64
	SolverRuns       int64 // jobs that actually invoked Design.Optimize
	CacheHits        int64
	CacheMisses      int64
	Completed        int64
	Failed           int64
	Expired          int64
	RejectedFull     int64
	RejectedDraining int64
	CacheStats       rescache.Stats
	QueueStats       jobq.Stats

	// Durable-tier counters; zero values when DataDir is unset.
	TieredCache    rescache.TieredStats
	StoreStats     castore.Stats
	JournalErrs    int64 // journal appends/waits that failed (durability degraded)
	CheckpointErrs int64 // journal checkpoints that failed
	Recovery       RecoveryInfo

	// ECO counters; zero values when Options.Eco is unset.
	EcoZonesReused   int64 // zone instances replayed instead of solved
	EcoZonesResolved int64 // zone instances solved by eco-enabled jobs
	ZoneCache        rescache.TieredStats

	// Yield-mode counters; zero until a yield request arrives.
	YieldJobs         int64 // yield runs started
	YieldChunks       int64 // sample chunks dispatched as sub-leases
	YieldChunksInline int64 // chunks evaluated inline (no coordinator, or drain/full fallback)
	YieldSamplesSaved int64 // budgeted samples early stopping never spent
	YieldEarlyStops   int64 // yield runs that stopped before the full budget

	// Shard-routing counters; zero values when Options.ShardMap is unset.
	Shard ShardMetrics
}

// RecoveryInfo describes what startup replay found in DataDir.
type RecoveryInfo struct {
	Durable      bool  // DataDir was configured
	JobsRestored int   // non-terminal jobs re-enqueued from the journal
	Ignored      int   // journal records referencing unknown job IDs
	Records      int   // journal data records replayed
	Checkpoints  int   // journal checkpoint records replayed
	TornBytes    int64 // bytes truncated from a torn journal tail
	Salvaged     bool  // best-effort recovery dropped a corrupt suffix
	Quarantined  int   // journal segments quarantined by best-effort recovery
}

type counters struct {
	submitted        atomic.Int64
	solverRuns       atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	completed        atomic.Int64
	failed           atomic.Int64
	expired          atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
	ecoReused        atomic.Int64
	ecoResolved      atomic.Int64

	yieldJobs         atomic.Int64
	yieldChunks       atomic.Int64
	yieldChunksInline atomic.Int64
	yieldSamplesSaved atomic.Int64
	yieldEarlyStops   atomic.Int64
}

// bump increments a counter and mirrors it into the process-wide expvar
// map, so /debug/vars shows live service totals.
func bump(c *atomic.Int64, expvarName string) {
	c.Add(1)
	obs.ExpvarCounters().Add(expvarName, 1)
}

// Server is the wavemind service. Construct with New; serve Handler().
type Server struct {
	opts    Options
	q       *jobq.Queue
	cache   *rescache.Tiered
	mux     *http.ServeMux
	handler http.Handler // mux, wrapped (when sharded) in the version-piggyback middleware

	coord      *dispatch.Coordinator // non-nil iff Options.Dispatch was set
	dispatchWG sync.WaitGroup        // finishDispatched goroutines in flight

	// yieldSem bounds concurrent yield drivers (Options.YieldMaxConcurrent):
	// each driver fans out chunk sub-leases, and the semaphore is what
	// keeps a burst of yield jobs from monopolizing the lease queue.
	// yieldPending counts admitted-but-unfinished yield jobs; past
	// QueueCapacity, submissions get the queue's 429.
	yieldSem     chan struct{}
	yieldPending atomic.Int64

	zones *zonecache.Cache // non-nil iff Options.Eco was set

	sh *shardState // non-nil iff Options.ShardMap was set

	// Anti-entropy gossip loop; nil/zero unless sharded with a
	// GossipInterval.
	gossipStop     chan struct{}
	gossipStopOnce sync.Once
	gossipWG       sync.WaitGroup

	// Durable tier; all nil/zero when Options.DataDir is unset.
	store      *castore.Store
	wal        *wal.Writer
	recovery   RecoveryInfo
	ckStop     chan struct{}
	ckStopOnce sync.Once
	ckWG       sync.WaitGroup
	ckErrs     atomic.Int64

	ready    atomic.Bool
	draining atomic.Bool
	nextID   atomic.Int64
	met      counters

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for bounded retention
}

// New builds a server and starts its worker pool. With Options.DataDir
// set it first recovers: the journal is replayed, the surviving backlog
// is re-enqueued under the job IDs clients were already polling, and the
// persistent result store is reopened — only then does New return, so a
// ready server has always finished recovery.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.DataDir != "" && opts.Dispatch == nil {
		// Durability requires replayable jobs: the dispatch path carries
		// serializable JobSpecs where the in-process path carries
		// closures. LocalExec keeps execution in this process.
		opts.Dispatch = &dispatch.Options{LocalExec: true}
	}
	s := &Server{
		opts:     opts,
		q:        jobq.New(opts.QueueCapacity, opts.Workers),
		jobs:     make(map[string]*job),
		yieldSem: make(chan struct{}, opts.YieldMaxConcurrent),
	}
	if opts.ShardMap != nil {
		sh, err := newShardState(opts)
		if err != nil {
			return nil, err
		}
		s.sh = sh
	} else if len(opts.Peers) != 0 {
		return nil, fmt.Errorf("server: Peers set without ShardMap (sharding needs ShardMap, ShardID, and Peers together)")
	}
	var dopts dispatch.Options
	if opts.Dispatch != nil {
		dopts = *opts.Dispatch
		if dopts.SolverWorkers == 0 {
			dopts.SolverWorkers = opts.MaxSolverWorkers
		}
		if s.sh != nil && dopts.ShardLabel == "" {
			// The label names the map epoch too, and follows every
			// adoption (Coordinator.SetShardLabel in adoptMap).
			dopts.ShardLabel = shardLabel(s.sh.id, s.sh.Map().Version)
		}
	}

	var backing rescache.Backing
	var recovered []jobq.RecoveredJob
	var lastID uint64
	syncWrites := false
	if opts.DataDir != "" {
		pol, err := wal.ParseSyncPolicy(opts.Fsync)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		syncWrites = pol != wal.SyncNone
		store, err := castore.Open(filepath.Join(opts.DataDir, "store"), castore.Options{
			MaxBytes: opts.StoreMaxBytes,
			Sync:     syncWrites,
		})
		if err != nil {
			return nil, fmt.Errorf("server: result store: %w", err)
		}
		s.store = store
		backing = store

		replayer := jobq.NewReplayer(decodeSpecPayload)
		w, rep, err := wal.Open(filepath.Join(opts.DataDir, "journal"), wal.Options{
			Sync:       pol,
			BestEffort: opts.RecoverBestEffort,
		}, replayer.Apply)
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("server: journal: %w", err)
		}
		recovered, err = replayer.Jobs()
		if err != nil {
			w.Abort()
			store.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.wal = w
		lastID = replayer.LastID()
		s.recovery = RecoveryInfo{
			Durable:      true,
			JobsRestored: len(recovered),
			Ignored:      replayer.Ignored(),
			Records:      rep.Records,
			Checkpoints:  rep.Checkpoints,
			TornBytes:    rep.TornBytes,
			Salvaged:     rep.Salvaged,
			Quarantined:  rep.Quarantined,
		}
		s.q.AttachJournal(w, jobq.PayloadCodec{Encode: encodeSpecPayload, Decode: decodeSpecPayload})
		// Durable-before-ack: completions reach the store before the
		// queue (and its journal) learn the job completed.
		dopts.PersistResult = store.Put
	}
	s.cache = rescache.NewTiered(rescache.New(opts.CacheMaxBytes, opts.CacheMaxEntries), backing)
	if s.sh != nil {
		// Fleet read-through: local result-cache misses consult the key's
		// owning coordinator before falling back to a local solve.
		s.cache.SetPeer(&peerCacheTier{sh: s.sh, path: "/v1/shard/cache/"})
	}

	if opts.Eco {
		if opts.DataDir != "" {
			z, err := zonecache.Open(filepath.Join(opts.DataDir, "zones"),
				opts.ZoneCacheMaxBytes, opts.ZoneStoreMaxBytes, syncWrites)
			if err != nil {
				if s.wal != nil {
					s.wal.Abort()
				}
				if s.store != nil {
					s.store.Close()
				}
				return nil, fmt.Errorf("server: zone store: %w", err)
			}
			s.zones = z
		} else {
			s.zones = zonecache.New(opts.ZoneCacheMaxBytes, 0)
		}
		if s.sh != nil {
			s.zones.SetPeer(&peerCacheTier{sh: s.sh, path: "/v1/shard/zones/"})
		}
	}

	if opts.Dispatch != nil {
		s.coord = dispatch.NewCoordinator(s.q, dopts)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	if s.coord != nil {
		s.coord.Register(mux)
	}
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.sh != nil {
		mux.HandleFunc("GET /v1/shard/map", s.handleShardMap)
		mux.HandleFunc("POST /v1/shard/map", s.handleShardMapPost)
		mux.HandleFunc("GET /v1/shard/cache/{key}", s.handleShardCache)
		mux.HandleFunc("PUT /v1/shard/cache/{key}", s.handleShardCachePut)
		mux.HandleFunc("GET /v1/shard/zones/{key}", s.handleShardZones)
		mux.HandleFunc("PUT /v1/shard/zones/{key}", s.handleShardZonesPut)
	}
	if opts.Debug {
		// The blank expvar and pprof imports register on the default
		// mux; mounting it exposes the same /debug/* endpoints
		// cmd/wavemin's -debug-addr serves.
		mux.Handle("GET /debug/", http.DefaultServeMux)
	}
	s.mux = mux
	s.handler = http.Handler(mux)
	if s.sh != nil {
		// Piggyback this node's live map version on EVERY response, so any
		// exchange — forwards, pushes, plain reads — doubles as a gossip
		// edge: a peer that sees a higher version fetches and adopts.
		s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(headerShardMapVersion, strconv.Itoa(s.sh.Map().Version))
			mux.ServeHTTP(w, r)
		})
	}

	if s.wal != nil {
		if err := s.restoreJobs(recovered, lastID); err != nil {
			s.wal.Abort()
			s.store.Close()
			return nil, err
		}
		// Compact the replayed history into one checkpoint so the next
		// start replays from here, and keep compacting in the background.
		if err := s.q.CheckpointJournal(); err != nil {
			s.ckErrs.Add(1)
		}
		s.ckStop = make(chan struct{})
		s.ckWG.Add(1)
		go s.checkpointLoop()
	}
	if s.sh != nil && opts.GossipInterval > 0 {
		s.gossipStop = make(chan struct{})
		s.gossipWG.Add(1)
		go s.gossipLoop(opts.GossipInterval)
	}
	s.ready.Store(true)
	return s, nil
}

// encodeSpecPayload / decodeSpecPayload form the journal's payload
// codec: every journaled queue payload is a *dispatch.JobSpec.
func encodeSpecPayload(payload any) ([]byte, error) {
	spec, ok := payload.(*dispatch.JobSpec)
	if !ok {
		return nil, fmt.Errorf("server: journal: unexpected payload %T", payload)
	}
	return json.Marshal(spec)
}

func decodeSpecPayload(data []byte) (any, error) {
	var spec dispatch.JobSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, err
	}
	return &spec, nil
}

// restoreJobs rebuilds registry records for journal-recovered jobs and
// re-enqueues them. Each job keeps the public ID its submitter was
// given, so clients polling across the crash see "queued", not 404.
func (s *Server) restoreJobs(recs []jobq.RecoveredJob, lastID uint64) error {
	type slot struct {
		j    *job
		tr   *obs.Trace
		spec *dispatch.JobSpec
	}
	slots := make(map[uint64]*slot, len(recs))
	for _, rj := range recs {
		spec, ok := rj.Payload.(*dispatch.JobSpec)
		if !ok {
			return fmt.Errorf("server: recovered job %d: unexpected payload %T", rj.ID, rj.Payload)
		}
		j := s.reattachJob(spec.JobID, rj.Pri)
		sl := &slot{j: j, spec: spec}
		if spec.Trace {
			// The pre-crash trace died with the process; recovered jobs
			// get a fresh one covering the post-recovery attempts.
			mem := &obs.Memory{}
			sl.tr = obs.New(obs.Options{})
			sl.tr.AttachSink(mem)
			sl.tr.AttachSink(obs.ExpvarSink{})
			j.mu.Lock()
			j.trace = mem
			j.mu.Unlock()
		}
		slots[rj.ID] = sl
	}
	tickets := s.q.Restore(recs, lastID, func(rj jobq.RecoveredJob) func(jobq.LeaseEvent) {
		sl := slots[rj.ID]
		traceFn := dispatch.TraceObserver(sl.tr)
		j := sl.j
		return func(ev jobq.LeaseEvent) {
			// Runs under the queue lock: job-record field writes only.
			if traceFn != nil {
				traceFn(ev)
			}
			if ev.Kind == jobq.LeaseGranted {
				j.mu.Lock()
				if j.status == StatusQueued {
					j.status = StatusRunning
					j.started = time.Now()
				}
				j.mu.Unlock()
			}
		}
	})
	for i, rj := range recs {
		sl := slots[rj.ID]
		obs.ExpvarCounters().Add("server_jobs_recovered", 1)
		s.dispatchWG.Add(1)
		go s.finishDispatched(sl.j, sl.spec.Key, sl.spec.NoCache, sl.tr, tickets[i])
	}
	return nil
}

// reattachJob rebuilds the registry record of a recovered job under its
// pre-crash public ID, keeping the ID counter past every recovered ID.
func (s *Server) reattachJob(id string, pri jobq.Priority) *job {
	var n int64
	if id == "" || parseJobID(id, &n) != nil {
		id = s.newJobID()
	} else {
		for {
			cur := s.nextID.Load()
			if cur >= n || s.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	j := &job{
		id:  id,
		pri: pri,
		// The original submission time died with the crashed process;
		// recovery time is the honest substitute.
		submitted: time.Now(),
		status:    StatusQueued,
		cancel:    func() {},
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.evictJobsLocked()
	s.mu.Unlock()
	return j
}

func parseJobID(id string, n *int64) error {
	if _, seq, sharded, err := shard.DecodeJobID(id); err == nil && sharded {
		*n = seq
		return nil
	}
	_, err := fmt.Sscanf(id, "j-%d", n)
	return err
}

// checkpointLoop compacts the journal periodically so replay time stays
// proportional to the live backlog, not to total history.
func (s *Server) checkpointLoop() {
	defer s.ckWG.Done()
	tick := time.NewTicker(s.opts.CheckpointEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.ckStop:
			return
		case <-tick.C:
			if err := s.q.CheckpointJournal(); err != nil {
				s.ckErrs.Add(1)
			}
		}
	}
}

func (s *Server) stopCheckpoints() {
	if s.ckStop == nil {
		return
	}
	s.ckStopOnce.Do(func() { close(s.ckStop) })
	s.ckWG.Wait()
}

// Crash simulates a power failure for recovery tests: background
// goroutines stop and the journal and store are abandoned without
// flushing buffered state — disk is left exactly as kill -9 would leave
// it. The server is unusable afterward; recover by calling New on the
// same DataDir.
func (s *Server) Crash() {
	s.stopGossip()
	s.stopCheckpoints()
	if s.coord != nil {
		s.coord.Close()
	}
	if s.wal != nil {
		s.wal.Abort()
	}
	if s.store != nil {
		s.store.Abort()
	}
	s.zones.Abort()
}

// Recovery reports what startup replay found.
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Drain stops intake (new submissions get 503, health checks report
// draining) and waits until every accepted job has finished or ctx
// expires — the SIGTERM path.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.stopGossip()
	err := s.q.Drain(ctx)
	if err == nil {
		// The queue resolved every ticket; wait for the goroutines that
		// turn resolved tickets into job records and cache entries.
		s.dispatchWG.Wait()
	}
	if s.coord != nil {
		s.coord.Close()
	}
	if err != nil {
		// Backlog unfinished: leave the journal live so the state on disk
		// stays crash-consistent and the next start recovers it.
		return err
	}
	s.stopCheckpoints()
	if s.wal != nil {
		// Every job is terminal: a final checkpoint leaves an empty
		// snapshot, so the next start replays nothing.
		if cerr := s.q.CheckpointJournal(); cerr != nil {
			s.ckErrs.Add(1)
		}
		if cerr := s.wal.Close(); cerr != nil {
			err = cerr
		}
	}
	if s.store != nil {
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if cerr := s.zones.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Coordinator returns the dispatch coordinator, or nil when the server
// runs pure in-process (Options.Dispatch unset).
func (s *Server) Coordinator() *dispatch.Coordinator { return s.coord }

// MetricsSnapshot returns the server's counters.
func (s *Server) MetricsSnapshot() Metrics {
	tiered := s.cache.Stats()
	m := Metrics{
		Submitted:        s.met.submitted.Load(),
		SolverRuns:       s.met.solverRuns.Load(),
		CacheHits:        s.met.cacheHits.Load(),
		CacheMisses:      s.met.cacheMisses.Load(),
		Completed:        s.met.completed.Load(),
		Failed:           s.met.failed.Load(),
		Expired:          s.met.expired.Load(),
		RejectedFull:     s.met.rejectedFull.Load(),
		RejectedDraining: s.met.rejectedDraining.Load(),
		CacheStats:       tiered.Mem,
		QueueStats:       s.q.Snapshot(),
		TieredCache:      tiered,
		JournalErrs:      s.q.JournalErrs(),
		CheckpointErrs:   s.ckErrs.Load(),
		Recovery:         s.recovery,
	}
	if s.store != nil {
		m.StoreStats = s.store.Stats()
	}
	if s.zones != nil {
		m.EcoZonesReused = s.met.ecoReused.Load()
		m.EcoZonesResolved = s.met.ecoResolved.Load()
		m.ZoneCache = s.zones.Stats()
	}
	if s.sh != nil {
		m.Shard = s.sh.metrics()
	}
	m.YieldJobs = s.met.yieldJobs.Load()
	m.YieldChunks = s.met.yieldChunks.Load()
	m.YieldChunksInline = s.met.yieldChunksInline.Load()
	m.YieldSamplesSaved = s.met.yieldSamplesSaved.Load()
	m.YieldEarlyStops = s.met.yieldEarlyStops.Load()
	return m
}

// --- submission ----------------------------------------------------------

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectDraining(w)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeAPIError(w, &apiError{status: http.StatusRequestEntityTooLarge, code: "too_large",
				message: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
			return
		}
		writeAPIError(w, badRequest("reading request body: %v", err))
		return
	}
	req, apiErr := decodeOptimizeRequest(body, s.opts)
	if apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	if s.sh != nil && s.routeOptimize(w, r, req, body) {
		// Another shard owns the key: the request was forwarded (or
		// refused) and everything below — admission counters included —
		// happens on the owner.
		return
	}
	if apiErr := s.attachEco(req); apiErr != nil {
		writeAPIError(w, apiErr)
		return
	}
	bump(&s.met.submitted, "server_jobs_submitted")

	if !req.noCache {
		if blob, ok := s.cache.Get(req.key); ok {
			bump(&s.met.cacheHits, "server_cache_hits")
			j := s.addJob(req, true)
			var res struct {
				AlgorithmUsed string
			}
			_ = json.Unmarshal(blob, &res) // own marshaling; best-effort decoration
			j.mu.Lock()
			j.status = StatusDone
			j.finished = time.Now()
			j.resultJSON = blob
			j.algorithmUsed = res.AlgorithmUsed
			j.mu.Unlock()
			writeJSON(w, http.StatusOK, map[string]any{
				"jobId": j.id, "status": StatusDone, "cacheHit": true,
			})
			return
		}
		bump(&s.met.cacheMisses, "server_cache_misses")
	}

	j := s.addJob(req, false)
	deadline := time.Now().Add(req.timeout)
	jctx, cancel := context.WithDeadline(context.Background(), deadline)
	j.cancel = cancel
	switch {
	case req.yield != nil:
		err = s.submitYield(jctx, j, req)
	case s.coord != nil:
		err = s.submitDispatched(jctx, j, req, deadline)
	default:
		err = s.q.Submit(jctx, req.pri, func(ctx context.Context) { s.runJob(ctx, j, req) })
	}
	if err != nil {
		cancel()
		s.removeJob(j.id)
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"jobId": j.id, "status": StatusQueued, "cacheHit": false,
	})
}

// --- incremental re-optimization (ECO) -----------------------------------

// attachEco resolves a request's ECO inputs before admission. With
// Options.Eco set, every solver job records its zone solutions (an empty
// ECOConfig); a baseJobId additionally seeds the run with the base job's
// solutions so unchanged zones replay. Every rejection is a structured
// 4xx — an unknown base is a 404, a base whose result cannot seed a delta
// is a 409 — never a 5xx: a bad base reference is a client error, and a
// missing seed is at worst a cold solve, not a failure.
func (s *Server) attachEco(req *optimizeRequest) *apiError {
	if req.yield != nil {
		// Yield candidate solves never record or replay zones: the
		// candidate ladder perturbs zoning knobs, so zone keys would not
		// line up across candidates — and the decoder already rejected
		// yield+baseJobId.
		return nil
	}
	if req.baseJobID != "" {
		if s.zones == nil {
			return &apiError{status: http.StatusBadRequest, code: "eco_disabled",
				message: "baseJobId requires the server's ECO mode (Options.Eco / wavemind -eco)"}
		}
		seeds, apiErr := s.resolveBase(req.baseJobID)
		if apiErr != nil {
			return apiErr
		}
		req.cfg.ECO = &wavemin.ECOConfig{BaseZones: seeds}
		return nil
	}
	if s.zones != nil {
		req.cfg.ECO = &wavemin.ECOConfig{}
	}
	return nil
}

// resolveBase turns a base job reference into the seed map a delta run
// starts from.
func (s *Server) resolveBase(id string) (map[string][]byte, *apiError) {
	j := s.lookup(id)
	if j == nil {
		// The registry forgets finished jobs at restart and under
		// retention pressure, but every clean completion also persisted
		// its job → zone-keys mapping in the zone store — a recovered
		// coordinator answers deltas from the durable tier.
		if raw, ok := s.zones.Get(jobZonesKey(id)); ok {
			var keys []string
			if json.Unmarshal(raw, &keys) == nil {
				return s.fetchZones(keys), nil
			}
		}
		return nil, &apiError{status: http.StatusNotFound, code: "unknown_base",
			message: fmt.Sprintf("base job %q: no such job (unknown, evicted, or never completed cleanly)", id)}
	}
	j.mu.Lock()
	status, degraded, keys := j.status, j.degraded, j.zoneKeys
	j.mu.Unlock()
	reject := func(msg string) (map[string][]byte, *apiError) {
		return nil, &apiError{status: http.StatusConflict, code: "base_not_reusable",
			message: fmt.Sprintf("base job %q: %s", id, msg)}
	}
	switch {
	case status != StatusDone:
		return reject("job is " + status + "; a delta needs a finished base")
	case degraded:
		return reject("result is degraded (deadline-shaped); a delta never seeds from degraded solutions")
	case len(keys) == 0:
		return reject("job recorded no zone solutions (cache hit, multi-mode, or pre-ECO run)")
	}
	return s.fetchZones(keys), nil
}

// fetchZones loads whichever of the base's solutions are still cached.
// Misses are dropped, not errors: seeds are an optimization, so an
// evicted solution just means that zone is re-solved.
func (s *Server) fetchZones(keys []string) map[string][]byte {
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := s.zones.Get(k); ok {
			out[k] = v
		}
	}
	return out
}

// jobZonesKey derives the zone-store key of a job's zone-keys mapping
// from its public ID (store keys must be hex digests; job IDs are not).
func jobZonesKey(jobID string) string {
	sum := sha256.Sum256([]byte("wavemin-jobzones\x00" + jobID))
	return hex.EncodeToString(sum[:])
}

// landZones records a cleanly completed job's zone solutions: each lands
// in the zone cache (and its durable tier), and the sorted key list lands
// both in the job record and — keyed by job ID — in the store itself, so
// the job can seed deltas even after the registry forgets it. Callers
// skip degraded results entirely.
func (s *Server) landZones(j *job, zones map[string][]byte, reused, resolved int) {
	if s.zones == nil {
		return
	}
	s.met.ecoReused.Add(int64(reused))
	s.met.ecoResolved.Add(int64(resolved))
	obs.ExpvarCounters().Add("server_eco_zones_reused", int64(reused))
	obs.ExpvarCounters().Add("server_eco_zones_resolved", int64(resolved))
	keys := make([]string, 0, len(zones))
	for k, v := range zones {
		s.zones.Put(k, v)
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		if blob, err := json.Marshal(keys); err == nil {
			s.zones.Put(jobZonesKey(j.id), blob)
		}
	}
	j.mu.Lock()
	j.zoneKeys = keys
	j.zonesReused = reused
	j.zonesResolved = resolved
	j.mu.Unlock()
}

// writeSubmitError renders a queue-admission failure: 429 + Retry-After
// on a full backlog, 503 while draining, 400 otherwise.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobq.ErrFull):
		bump(&s.met.rejectedFull, "server_rejected_full")
		retry := s.q.RetryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": map[string]any{
				"code":              "queue_full",
				"message":           "job queue at capacity; retry later",
				"retryAfterSeconds": int(retry.Seconds()),
			},
		})
	case errors.Is(err, jobq.ErrDraining):
		s.rejectDraining(w)
	default:
		writeAPIError(w, badRequest("submit: %v", err))
	}
}

// submitDispatched enqueues a job through the dispatch coordinator:
// instead of a closure bound to this process, the queue carries a
// serializable JobSpec that a remote worker (or the local executor) can
// run — same deadlines, same cache policy, same canonical result bytes.
func (s *Server) submitDispatched(jctx context.Context, j *job, req *optimizeRequest, deadline time.Time) error {
	spec := &dispatch.JobSpec{
		Tree:     req.tree,
		Config:   req.cfg,
		Modes:    req.modes,
		Trace:    req.trace,
		Key:      req.key,
		Deadline: deadline,
		JobID:    j.id,
		NoCache:  req.noCache,
	}
	var tr *obs.Trace
	if req.trace {
		mem := &obs.Memory{}
		tr = obs.New(obs.Options{})
		tr.AttachSink(mem)
		tr.AttachSink(obs.ExpvarSink{})
		j.mu.Lock()
		j.trace = mem
		j.mu.Unlock()
		s.recordForwardHop(tr, req)
	}
	tk, err := s.coord.Submit(jctx, req.pri, spec, tr, func(ev jobq.LeaseEvent) {
		// Runs under the queue lock: job-record field writes only.
		if ev.Kind == jobq.LeaseGranted && ev.Attempt == 1 {
			j.mu.Lock()
			j.status = StatusRunning
			j.started = time.Now()
			j.mu.Unlock()
		}
	})
	if err != nil {
		return err
	}
	s.dispatchWG.Add(1)
	go s.finishDispatched(j, req.key, req.noCache, tr, tk)
	return nil
}

// finishDispatched waits for a dispatched job's ticket and lands the
// outcome in the job record and (for clean, undegraded results) the
// cache — the dispatch-path twin of runJob's tail. It takes the key and
// cache policy rather than the request because recovered jobs have no
// request: their spec is all that survived the crash.
func (s *Server) finishDispatched(j *job, key string, noCache bool, tr *obs.Trace, tk *jobq.Ticket) {
	defer s.dispatchWG.Done()
	defer j.cancel()
	<-tk.Done()
	result, err := tk.Outcome()
	if ferr := tr.Flush(); ferr != nil && err == nil {
		err = fmt.Errorf("trace flush: %w", ferr)
	}
	if err != nil {
		var rex *jobq.RetryExhaustedError
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			bump(&s.met.expired, "server_jobs_expired")
			j.finishErr(StatusExpired, err)
		case errors.As(err, &rex):
			bump(&s.met.failed, "server_jobs_failed")
			j.finishErr(StatusFailed, err)
		default:
			bump(&s.met.failed, "server_jobs_failed")
			j.finishErr(StatusFailed, err)
		}
		return
	}
	out, ok := result.(*dispatch.Outcome)
	if !ok {
		bump(&s.met.failed, "server_jobs_failed")
		j.finishErr(StatusFailed, fmt.Errorf("dispatch: unexpected outcome %T", result))
		return
	}
	// Same cache policy as the local path: degraded results are what the
	// deadline allowed, not the answer to the problem — never cache them.
	// Memory tier only: on the dispatch path the bytes already reached
	// the persistent store (when one is configured) before the
	// completion was acknowledged.
	if !out.Degraded && !noCache {
		s.cache.PutLocal(key, out.ResultJSON)
		s.replicateResult(key, out.ResultJSON)
	}
	if !out.Degraded {
		s.landZones(j, out.Zones, out.ZonesReused, out.ZonesResolved)
	}
	bump(&s.met.completed, "server_jobs_completed")
	j.mu.Lock()
	j.status = StatusDone
	j.finished = time.Now()
	j.resultJSON = out.ResultJSON
	j.algorithmUsed = out.AlgorithmUsed
	j.degraded = out.Degraded
	j.mu.Unlock()
}

func (s *Server) rejectDraining(w http.ResponseWriter) {
	bump(&s.met.rejectedDraining, "server_rejected_draining")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error": map[string]any{"code": "draining", "message": "server is draining; not accepting new jobs"},
	})
}

// runJob executes one queued job on a jobq worker.
func (s *Server) runJob(ctx context.Context, j *job, req *optimizeRequest) {
	defer j.cancel()
	if ctx.Err() != nil {
		// The deadline passed while the job sat in the backlog: surface
		// the expiry without spending solver time on it.
		bump(&s.met.expired, "server_jobs_expired")
		j.finishErr(StatusExpired, ctx.Err())
		return
	}
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()

	var tr *obs.Trace
	if req.trace {
		mem := &obs.Memory{}
		tr = obs.New(obs.Options{})
		tr.AttachSink(mem)
		tr.AttachSink(obs.ExpvarSink{})
		j.mu.Lock()
		j.trace = mem
		j.mu.Unlock()
		s.recordForwardHop(tr, req)
		ctx = obs.Into(ctx, tr)
	}

	bump(&s.met.solverRuns, "server_solver_runs")
	res, err := req.design.Optimize(ctx, req.cfg)
	if ferr := tr.Flush(); ferr != nil && err == nil {
		err = fmt.Errorf("trace flush: %w", ferr)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			bump(&s.met.expired, "server_jobs_expired")
			j.finishErr(StatusExpired, err)
		} else {
			bump(&s.met.failed, "server_jobs_failed")
			j.finishErr(StatusFailed, err)
		}
		return
	}
	// The stored Result is the semantic answer only: per-run telemetry is
	// served by the trace endpoint and never enters the result bytes, so
	// cache hits are byte-identical replays.
	res.Stats = nil
	blob, merr := json.Marshal(res)
	if merr != nil {
		bump(&s.met.failed, "server_jobs_failed")
		j.finishErr(StatusFailed, merr)
		return
	}
	// Degraded results are what the deadline allowed, not the answer to
	// the problem — caching one would serve a worse tree to a future
	// caller with a roomier budget.
	if !res.Degraded && !req.noCache {
		s.cache.Put(req.key, blob)
		s.replicateResult(req.key, blob)
	}
	if !res.Degraded {
		s.landZones(j, res.Zones, res.ZonesReused, res.ZonesResolved)
	}
	bump(&s.met.completed, "server_jobs_completed")
	j.mu.Lock()
	j.status = StatusDone
	j.finished = time.Now()
	j.resultJSON = blob
	j.algorithmUsed = res.AlgorithmUsed
	j.degraded = res.Degraded
	j.mu.Unlock()
}

func (j *job) finishErr(status string, err error) {
	j.mu.Lock()
	j.status = status
	j.finished = time.Now()
	j.errMsg = err.Error()
	j.mu.Unlock()
}

// --- job registry --------------------------------------------------------

// newJobID mints the next public job ID. Sharded nodes bake their shard
// into the ID (j-s<shard>-<seq>), so any fleet node can route a later
// read straight to the owner without a registry lookup.
func (s *Server) newJobID() string {
	n := s.nextID.Add(1)
	if s.sh != nil {
		return shard.EncodeJobID(s.sh.id, n)
	}
	return fmt.Sprintf("j-%06d", n)
}

func (s *Server) addJob(req *optimizeRequest, cacheHit bool) *job {
	id := s.newJobID()
	j := &job{
		id:        id,
		pri:       req.pri,
		cacheHit:  cacheHit,
		submitted: time.Now(),
		status:    StatusQueued,
		cancel:    func() {},
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.evictJobsLocked()
	s.mu.Unlock()
	return j
}

func (s *Server) removeJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// evictJobsLocked drops the oldest FINISHED job records beyond MaxJobs, so
// the registry cannot grow without bound while never forgetting a live
// job. Caller holds s.mu.
func (s *Server) evictJobsLocked() {
	if len(s.jobs) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.opts.MaxJobs {
			j.mu.Lock()
			finished := j.status == StatusDone || j.status == StatusFailed || j.status == StatusExpired
			j.mu.Unlock()
			if finished {
				delete(s.jobs, id)
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = append([]string(nil), kept...)
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// --- read endpoints ------------------------------------------------------

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.sh != nil && s.routeJobRead(w, r, r.PathValue("id")) {
		return
	}
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "unknown_job", message: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		JobID:         j.id,
		Status:        j.status,
		Priority:      j.pri.String(),
		CacheHit:      j.cacheHit,
		SubmittedAt:   j.submitted.UTC().Format(time.RFC3339Nano),
		AlgorithmUsed: j.algorithmUsed,
		Degraded:      j.degraded,
		Error:         j.errMsg,
		HasTrace:      j.trace != nil,
		ZonesReused:   j.zonesReused,
		ZonesResolved: j.zonesResolved,
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.sh != nil && s.routeJobRead(w, r, r.PathValue("id")) {
		return
	}
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "unknown_job", message: "no such job"})
		return
	}
	j.mu.Lock()
	status := j.status
	blob := j.resultJSON
	errMsg := j.errMsg
	cacheHit := j.cacheHit
	j.mu.Unlock()
	switch status {
	case StatusDone:
		writeJSON(w, http.StatusOK, map[string]any{
			"jobId":    j.id,
			"cacheHit": cacheHit,
			"result":   json.RawMessage(blob),
		})
	case StatusFailed, StatusExpired:
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": map[string]any{"code": "job_" + status, "message": errMsg},
		})
	default:
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": map[string]any{"code": "not_finished", "message": "job is " + status + "; poll GET /v1/jobs/{id}"},
		})
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.sh != nil && s.routeJobRead(w, r, r.PathValue("id")) {
		return
	}
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "unknown_job", message: "no such job"})
		return
	}
	j.mu.Lock()
	mem := j.trace
	status := j.status
	j.mu.Unlock()
	if mem == nil {
		writeAPIError(w, &apiError{status: http.StatusNotFound, code: "no_trace",
			message: "job captured no trace (submit with \"trace\": true; cache hits run no solver and have none)"})
		return
	}
	if status == StatusQueued || status == StatusRunning {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": map[string]any{"code": "not_finished", "message": "job is " + status + "; poll GET /v1/jobs/{id}"},
		})
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	_ = obs.Encode(w, mem.Events())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	body := map[string]any{"status": "ok"}
	if s.sh != nil {
		body["shardId"] = s.sh.id
		body["shardMapVersion"] = s.sh.Map().Version
	}
	writeJSON(w, http.StatusOK, body)
}

// --- response helpers ----------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, map[string]any{
		"error": map[string]any{"code": e.code, "message": e.message},
	})
}
