package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"wavemin/internal/dispatch"
)

// startWorker runs one dispatch worker against the harness until the
// returned stop function is called (or the server drains).
func startWorker(t *testing.T, url, id string) (stop func()) {
	t.Helper()
	w, err := dispatch.NewWorker(dispatch.WorkerOptions{
		Coordinator: url,
		ID:          id,
		PollWait:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(context.Background())
	}()
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		w.Kill()
		<-done
	}
}

// TestDispatchServerEndToEnd drives the full fleet path through the
// public API: a coordinator-mode server, two remote workers, a traced
// request — asserting completion, the stitched dispatch trace, cache
// replay, and a clean drain that releases the workers.
func TestDispatchServerEndToEnd(t *testing.T) {
	srv := mustNew(t, Options{
		Workers:        1,
		DefaultTimeout: time.Minute,
		MaxTimeout:     time.Minute,
		Dispatch: &dispatch.Options{
			LeaseTTL:      2 * time.Second,
			SweepInterval: 100 * time.Millisecond,
			MaxAttempts:   3,
			LocalExec:     false, // force the remote path
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	stop1 := startWorker(t, ts.URL, "w1")
	defer stop1()
	stop2 := startWorker(t, ts.URL, "w2")
	defer stop2()
	h := &harness{t: t, srv: srv, ts: ts}

	body := marshalReq(t, map[string]any{
		"tree":   smallTreeJSON(t, 12),
		"config": fastConfig(),
		"trace":  true,
	})
	code, resp := h.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", code, resp)
	}
	id := resp["jobId"].(string)
	v := h.waitJob(id, 30*time.Second)
	if v.Status != StatusDone {
		t.Fatalf("job status = %s (error %q), want done", v.Status, v.Error)
	}
	if v.AlgorithmUsed == "" {
		t.Error("job record missing algorithmUsed")
	}

	// The result must decode as a wavemin result with zero Runtime (the
	// dispatch path's canonical-bytes rule).
	code, rb := h.get("/v1/jobs/" + id + "/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, rb)
	}
	var rres struct {
		Result map[string]any `json:"result"`
	}
	if err := json.Unmarshal(rb, &rres); err != nil {
		t.Fatal(err)
	}
	if rt, ok := rres.Result["Runtime"].(float64); !ok || rt != 0 {
		t.Errorf("dispatched result Runtime = %v, want 0 (canonical bytes)", rres.Result["Runtime"])
	}

	// The trace is the coordinator's dispatch tree with the worker's
	// solver trace stitched underneath.
	code, tb := h.get("/v1/jobs/" + id + "/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: status %d: %s", code, tb)
	}
	trace := string(tb)
	for _, want := range []string{`"path":"dispatch[0]"`, `"path":"dispatch[0]/attempt[0]"`, `dispatch[0]/attempt[0]/optimize[0]`} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s", want)
		}
	}

	// An identical resubmission is a cache hit with byte-identical result.
	code, resp = h.post(body)
	if code != http.StatusOK || resp["cacheHit"] != true {
		t.Fatalf("resubmit: status %d, cacheHit %v; want 200 cached", code, resp["cacheHit"])
	}
	id2 := resp["jobId"].(string)
	_, rb2 := h.get("/v1/jobs/" + id2 + "/result")
	var rres2 struct {
		Result json.RawMessage `json:"result"`
	}
	var rres1 struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(rb, &rres1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rb2, &rres2); err != nil {
		t.Fatal(err)
	}
	if string(rres1.Result) != string(rres2.Result) {
		t.Error("cache replay bytes differ from the dispatched result")
	}

	// Drain: accepted work is done, so drain completes promptly and the
	// lease endpoint starts reporting draining, releasing worker loops.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestDispatchLocalExecMatchesInProcessPath pins the hybrid default
// against PR 4 semantics: a coordinator with LocalExec and zero remote
// workers must answer exactly like the plain in-process server — same
// result fields, modulo the Runtime wall clock the dispatch path zeroes.
func TestDispatchLocalExecMatchesInProcessPath(t *testing.T) {
	body := marshalReq(t, map[string]any{
		"tree":   smallTreeJSON(t, 12),
		"config": fastConfig(),
	})

	runOne := func(opts Options) map[string]any {
		h := newHarness(t, opts)
		code, resp := h.post(body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: status %d: %v", code, resp)
		}
		id := resp["jobId"].(string)
		if v := h.waitJob(id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("job status = %s (error %q)", v.Status, v.Error)
		}
		_, rb := h.get("/v1/jobs/" + id + "/result")
		var rres struct {
			Result map[string]any `json:"result"`
		}
		if err := json.Unmarshal(rb, &rres); err != nil {
			t.Fatal(err)
		}
		return rres.Result
	}

	plain := runOne(Options{Workers: 1, DefaultTimeout: time.Minute, MaxTimeout: time.Minute})
	hybrid := runOne(Options{Workers: 1, DefaultTimeout: time.Minute, MaxTimeout: time.Minute,
		Dispatch: &dispatch.Options{LocalExec: true}})

	// Runtime is the one legitimate difference: wall clock on the local
	// path, canonically zero on the dispatch path.
	delete(plain, "Runtime")
	delete(hybrid, "Runtime")
	if !reflect.DeepEqual(plain, hybrid) {
		t.Errorf("hybrid result diverged from the in-process path:\nplain:  %v\nhybrid: %v", plain, hybrid)
	}
}
