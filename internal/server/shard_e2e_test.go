package server

// Sharded-fleet e2e: a 3-coordinator in-process fleet behind the
// shard-routing layer must behave like one logical service — any node
// accepts any submission, exactly one node (the key's owner) solves it,
// every node can answer reads for every job, and a killed owner degrades
// to structured 503s that clear on restart with byte-identical results.
//
// Each fleet node is a real *Server mounted behind a tiny proxy whose
// handler can be swapped atomically: "kill" points the proxy at a
// connection-aborting handler (what a dead process looks like to a peer)
// and crashes the server; "restart" swaps in a freshly constructed
// server. The proxies exist only because peer base URLs must be known
// before server construction.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"wavemin/internal/dispatch"
	"wavemin/internal/shard"
)

type fleetNode struct {
	proxy *httptest.Server
	srv   atomic.Pointer[Server]
	down  atomic.Bool
}

type fleet struct {
	t     *testing.T
	m     *shard.Map
	base  Options
	peers []string
	nodes []*fleetNode
	// perNode, when set, customizes each node's Options after the shared
	// base is applied — per-node DataDirs for durable fleets, and the
	// like. Runs again on restart, so a restarted node keeps its config.
	perNode func(i int, opts *Options)
}

func newFleet(t *testing.T, n int, base Options) *fleet {
	t.Helper()
	m, err := shard.New(1, 8, n)
	if err != nil {
		t.Fatal(err)
	}
	return newFleetWithMap(t, m, base, nil)
}

// newFleetWithMap boots a fleet on an explicit starting map (replica
// sets, custom assignments) with an optional per-node Options hook.
func newFleetWithMap(t *testing.T, m *shard.Map, base Options, perNode func(int, *Options)) *fleet {
	t.Helper()
	n := m.Shards
	fl := &fleet{t: t, m: m, base: base, perNode: perNode}
	for i := 0; i < n; i++ {
		node := &fleetNode{}
		node.proxy = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if node.down.Load() {
				// A dead owner aborts the connection; peers observe a
				// transport error, exactly as with a killed process.
				panic(http.ErrAbortHandler)
			}
			node.srv.Load().Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(node.proxy.Close)
		fl.nodes = append(fl.nodes, node)
		fl.peers = append(fl.peers, node.proxy.URL)
	}
	for i := range fl.nodes {
		fl.nodes[i].srv.Store(fl.newServer(i))
	}
	return fl
}

func (fl *fleet) newServer(i int) *Server {
	opts := fl.base
	opts.ShardMap = fl.m
	opts.ShardID = i
	opts.Peers = fl.peers
	if fl.perNode != nil {
		fl.perNode(i, &opts)
	}
	return mustNew(fl.t, opts)
}

// kill makes node i look dead to the fleet: its proxy aborts every
// connection and the server behind it is crashed mid-flight.
func (fl *fleet) kill(i int) {
	fl.nodes[i].down.Store(true)
	fl.nodes[i].srv.Load().Crash()
}

// restart brings node i back as a freshly constructed server (no
// DataDir in these tests, so its pre-crash state is gone — the worst
// case for the consistency checks below).
func (fl *fleet) restart(i int) {
	fl.nodes[i].srv.Store(fl.newServer(i))
	fl.nodes[i].down.Store(false)
}

func (fl *fleet) post(node int, body []byte) (int, map[string]any, http.Header) {
	fl.t.Helper()
	resp, err := http.Post(fl.peers[node]+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		fl.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fl.t.Fatalf("POST via node %d: status %d, non-JSON body: %v", node, resp.StatusCode, err)
	}
	return resp.StatusCode, out, resp.Header
}

func (fl *fleet) get(node int, path string) (int, []byte, http.Header) {
	fl.t.Helper()
	resp, err := http.Get(fl.peers[node] + path)
	if err != nil {
		fl.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		fl.t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// waitJob polls GET /v1/jobs/{id} via node until the job leaves
// queued/running. ok=false means the job became unreachable (its owner
// died: 503 shard_unavailable, or a restarted owner lost it: 404).
func (fl *fleet) waitJob(node int, id string, timeout time.Duration) (v jobView, ok bool) {
	fl.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body, _ := fl.get(node, "/v1/jobs/"+id)
		switch code {
		case http.StatusOK:
			if err := json.Unmarshal(body, &v); err != nil {
				fl.t.Fatal(err)
			}
			if v.Status != StatusQueued && v.Status != StatusRunning {
				return v, true
			}
		case http.StatusServiceUnavailable, http.StatusNotFound:
			return jobView{}, false
		default:
			fl.t.Fatalf("GET /v1/jobs/%s via node %d: status %d: %s", id, node, code, body)
		}
		if time.Now().After(deadline) {
			fl.t.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// resultBody fetches the raw result bytes via node, for bitwise
// comparisons across nodes and against a single-node reference.
func (fl *fleet) resultBody(node int, id string) (bool, json.RawMessage) {
	fl.t.Helper()
	code, body, _ := fl.get(node, "/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		fl.t.Fatalf("GET result for %s via node %d: status %d: %s", id, node, code, body)
	}
	var out struct {
		CacheHit bool            `json:"cacheHit"`
		Result   json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		fl.t.Fatal(err)
	}
	return out.CacheHit, out.Result
}

// errorCode digs the structured error code out of a decoded response.
func errorCode(resp map[string]any) string {
	e, _ := resp["error"].(map[string]any)
	code, _ := e["code"].(string)
	return code
}

// jobOwner decodes the owning shard baked into a fleet job ID.
func jobOwner(t *testing.T, id string) int {
	t.Helper()
	owner, _, sharded, err := shard.DecodeJobID(id)
	if err != nil || !sharded {
		t.Fatalf("fleet job ID %q is not a well-formed sharded ID (sharded=%v, err=%v)", id, sharded, err)
	}
	return owner
}

// TestShardFleetCrossNodeCacheHit is the acceptance criterion: a design
// submitted and solved via node A is a bitwise-identical cache hit via
// node B — no solver re-run, asserted via server metrics — and every
// node answers reads for the job identically.
func TestShardFleetCrossNodeCacheHit(t *testing.T) {
	fl := newFleet(t, 3, Options{})
	body := marshalReq(t, map[string]any{
		"tree":   smallTreeJSON(t, 8),
		"config": fastConfig(),
	})

	code, resp, _ := fl.post(0, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit via node 0: status %d, body %v", code, resp)
	}
	if hit, _ := resp["cacheHit"].(bool); hit {
		t.Fatal("fresh submission reported a cache hit")
	}
	id := jobID(t, resp)
	owner := jobOwner(t, id)

	// Reads route: poll from a node that is NOT the owner.
	reader := (owner + 1) % 3
	v, ok := fl.waitJob(reader, id, 30*time.Second)
	if !ok || v.Status != StatusDone {
		t.Fatalf("job finished %q (ok=%v), want done", v.Status, ok)
	}
	hit, ref := fl.resultBody(reader, id)
	if hit {
		t.Fatal("first solve reported as cache hit")
	}

	// Same design via a different node: forwarded to the owner, answered
	// from its cache.
	submitter := (owner + 2) % 3
	code, resp2, hdr := fl.post(submitter, body)
	if code != http.StatusOK {
		t.Fatalf("resubmit via node %d: status %d, body %v", submitter, code, resp2)
	}
	if hit, _ := resp2["cacheHit"].(bool); !hit {
		t.Fatalf("cross-node resubmission missed the cache: %v", resp2)
	}
	if got := hdr.Get("X-Wavemin-Served-By-Shard"); got != strconv.Itoa(owner) {
		t.Fatalf("served-by header = %q, want owner %d", got, owner)
	}
	id2 := jobID(t, resp2)
	if got := jobOwner(t, id2); got != owner {
		t.Fatalf("cache-hit job minted on shard %d, want owner %d", got, owner)
	}

	// Bitwise identity, read via every node in the fleet.
	for node := range fl.nodes {
		hit2, got := fl.resultBody(node, id2)
		if !hit2 || !bytes.Equal(ref, got) {
			t.Fatalf("node %d: cross-node result differs or missed (hit=%v, %d vs %d bytes)",
				node, hit2, len(got), len(ref))
		}
	}

	// Exactly one solver run fleet-wide, on the owner; the resubmission
	// and the cross-node polls were forwards, not re-solves.
	var runs, hits int64
	for i, node := range fl.nodes {
		m := node.srv.Load().MetricsSnapshot()
		runs += m.SolverRuns
		hits += m.CacheHits
		if i == owner {
			if m.SolverRuns != 1 || m.CacheHits != 1 {
				t.Fatalf("owner metrics: %d runs / %d hits, want 1/1", m.SolverRuns, m.CacheHits)
			}
			if m.Shard.ForwardsIn == 0 {
				t.Fatal("owner saw no forwarded requests")
			}
		} else if m.SolverRuns != 0 {
			t.Fatalf("non-owner node %d ran the solver %d times", i, m.SolverRuns)
		}
	}
	if runs != 1 || hits != 1 {
		t.Fatalf("fleet aggregate: %d solver runs / %d cache hits, want 1/1", runs, hits)
	}
}

// TestShardFleetHitRateMatchesSingleNode replays the same workload —
// every design submitted twice, the second time via a different node —
// against a 3-node fleet and a single-node server: the aggregate cache
// hit rate and solver-run count must be identical.
func TestShardFleetHitRateMatchesSingleNode(t *testing.T) {
	const designs = 5
	single := newHarness(t, Options{})
	fl := newFleet(t, 3, Options{})

	bodies := make([][]byte, designs)
	for i := range bodies {
		bodies[i] = marshalReq(t, map[string]any{
			"tree":   smallTreeJSON(t, 6+i),
			"config": fastConfig(),
		})
	}
	for pass := 0; pass < 2; pass++ {
		for i, body := range bodies {
			// Single-node leg.
			code, resp := single.post(body)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Fatalf("single pass %d design %d: status %d %v", pass, i, code, resp)
			}
			if v := single.waitJob(jobID(t, resp), 30*time.Second); v.Status != StatusDone {
				t.Fatalf("single pass %d design %d: %s (%s)", pass, i, v.Status, v.Error)
			}
			// Fleet leg, entering via a different node each pass.
			node := (i + pass) % 3
			fcode, fresp, _ := fl.post(node, body)
			if fcode != http.StatusAccepted && fcode != http.StatusOK {
				t.Fatalf("fleet pass %d design %d: status %d %v", pass, i, fcode, fresp)
			}
			fid := jobID(t, fresp)
			if v, ok := fl.waitJob(node, fid, 30*time.Second); !ok || v.Status != StatusDone {
				t.Fatalf("fleet pass %d design %d: %s (ok=%v)", pass, i, v.Status, ok)
			}
		}
	}

	sm := single.srv.MetricsSnapshot()
	var fleetRuns, fleetHits, fleetMisses int64
	for _, node := range fl.nodes {
		m := node.srv.Load().MetricsSnapshot()
		fleetRuns += m.SolverRuns
		fleetHits += m.CacheHits
		fleetMisses += m.CacheMisses
	}
	if fleetHits != sm.CacheHits || fleetRuns != sm.SolverRuns || fleetMisses != sm.CacheMisses {
		t.Fatalf("fleet hits/misses/runs = %d/%d/%d, single-node baseline = %d/%d/%d",
			fleetHits, fleetMisses, fleetRuns, sm.CacheHits, sm.CacheMisses, sm.SolverRuns)
	}
	if fleetHits != designs {
		t.Fatalf("replayed workload hit %d times, want %d (every second submission)", fleetHits, designs)
	}
}

// TestShardFleetForwardProtocol exercises the receiver-side routing
// contract directly: forged forwarded requests, map-version skew, and
// hostile job IDs are structured 4xx refusals, never re-forwards.
func TestShardFleetForwardProtocol(t *testing.T) {
	fl := newFleet(t, 3, Options{})
	body := marshalReq(t, map[string]any{
		"tree":   smallTreeJSON(t, 8),
		"config": fastConfig(),
	})
	// Find the owner so the forged requests can target a non-owner.
	code, resp, _ := fl.post(0, body)
	if code != http.StatusAccepted {
		t.Fatalf("seed submit: status %d %v", code, resp)
	}
	owner := jobOwner(t, jobID(t, resp))
	wrong := (owner + 1) % 3

	forward := func(node int, method, path string, body []byte, ver string) (int, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(method, fl.peers[node]+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Wavemin-Forwarded-From", "2")
		req.Header.Set("X-Wavemin-Shard-Map-Version", ver)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s %s: status %d, non-JSON body: %v", method, path, resp.StatusCode, err)
		}
		return resp.StatusCode, out
	}

	// A forwarded submit landing on a node that does not own the key is a
	// 421, never a second hop.
	if code, out := forward(wrong, http.MethodPost, "/v1/optimize", body, "1"); code != http.StatusMisdirectedRequest || errorCode(out) != "wrong_shard" {
		t.Fatalf("forged forward to non-owner: status %d, code %q, want 421 wrong_shard", code, errorCode(out))
	}
	// Map-version skew is a 409 — even on the right owner.
	if code, out := forward(owner, http.MethodPost, "/v1/optimize", body, "99"); code != http.StatusConflict || errorCode(out) != "shard_map_version" {
		t.Fatalf("version-skewed forward: status %d, code %q, want 409 shard_map_version", code, errorCode(out))
	}
	// Hostile sharded job IDs are 400s on any node.
	for _, id := range []string{"j-s99999-000001", "j-s1-xyz", "j-s-1"} {
		codeGot, body, _ := fl.get(0, "/v1/jobs/"+id)
		var out map[string]any
		_ = json.Unmarshal(body, &out)
		if codeGot != http.StatusBadRequest || errorCode(out) != "bad_job_id" {
			t.Fatalf("job ID %q: status %d, code %q, want 400 bad_job_id", id, codeGot, errorCode(out))
		}
	}
	// An ID referencing a shard beyond the map is refused even forwarded.
	if code, out := forward(0, http.MethodGet, "/v1/jobs/j-s7-000001", nil, "1"); code != http.StatusBadRequest || errorCode(out) != "bad_job_id" {
		t.Fatalf("out-of-map shard ID: status %d, code %q, want 400 bad_job_id", code, errorCode(out))
	}
	// Peer cache lookups: malformed keys 400, honest misses 404.
	if code, out := forward(0, http.MethodGet, "/v1/shard/cache/not-a-digest", nil, "1"); code != http.StatusBadRequest || errorCode(out) != "bad_key" {
		t.Fatalf("malformed peer key: status %d, code %q, want 400 bad_key", code, errorCode(out))
	}
	missKey := "0000000000000000000000000000000000000000000000000000000000000000"
	if code, out := forward(0, http.MethodGet, "/v1/shard/cache/"+missKey, nil, "1"); code != http.StatusNotFound || errorCode(out) != "cache_miss" {
		t.Fatalf("peer miss: status %d, code %q, want 404 cache_miss", code, errorCode(out))
	}
}

// TestShardFleetLeaseStaysShardLocal pins the dispatch rule of the
// fleet: a worker may join any coordinator, but a coordinator only ever
// leases out jobs it owns — and the grant names the shard it came from,
// so worker logs attribute the work.
func TestShardFleetLeaseStaysShardLocal(t *testing.T) {
	// LocalExec off: submitted jobs sit leasable until a worker pulls.
	fl := newFleet(t, 3, Options{Dispatch: &dispatch.Options{LocalExec: false}})
	body := marshalReq(t, map[string]any{
		"tree":   smallTreeJSON(t, 8),
		"config": fastConfig(),
	})
	code, resp, _ := fl.post(1, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d %v", code, resp)
	}
	owner := jobOwner(t, jobID(t, resp))

	lease := func(node int, waitMs int64) (int, map[string]any) {
		t.Helper()
		lr, _ := json.Marshal(map[string]any{"workerId": "w-fleet-test", "waitMs": waitMs})
		resp, err := http.Post(fl.peers[node]+"/v1/dispatch/lease", "application/json", bytes.NewReader(lr))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNoContent {
			return resp.StatusCode, nil
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("lease via node %d: status %d, non-JSON: %v", node, resp.StatusCode, err)
		}
		return resp.StatusCode, out
	}

	// Non-owners hold no leasable work for this key: the job was admitted
	// on its owner, and leases never cross shards.
	for _, node := range []int{(owner + 1) % 3, (owner + 2) % 3} {
		if code, out := lease(node, 0); code != http.StatusNoContent {
			t.Fatalf("node %d (non-owner) leased out %v, want 204 no work", node, out)
		}
	}
	// The owner grants the lease, labeled with its shard and the map
	// epoch it routes by (the label follows adopted maps).
	code, out := lease(owner, 5000)
	if code != http.StatusOK {
		t.Fatalf("lease from owner: status %d %v", code, out)
	}
	if got, want := out["shard"], fmt.Sprintf("s%d@v1", owner); got != want {
		t.Fatalf("lease grant shard label = %v, want %q", got, want)
	}
}

// TestShardFleetChaosKillRestart is the cluster chaos scenario: a seeded
// schedule kills one coordinator mid-solve each round. Submissions whose
// owner is down must fail with the structured 503 shard_unavailable (and
// a Retry-After hint), succeed after the owner restarts, and every
// result collected anywhere in the fleet must be byte-identical to a
// single-node reference run. WAVEMIND_E2E_SHARD_SEED varies the schedule.
func TestShardFleetChaosKillRestart(t *testing.T) {
	seed := int64(1)
	if env := os.Getenv("WAVEMIND_E2E_SHARD_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("WAVEMIND_E2E_SHARD_SEED: %v", err)
		}
		seed = n
	}
	rng := rand.New(rand.NewSource(seed))

	// Single-node reference run: the fleet must reproduce these bytes.
	// Both sides run the dispatch execution path (LocalExec, no remote
	// workers), whose result bytes are a pure function of the job spec —
	// the wall-clock Runtime field is canonically zero — so independent
	// solves on different nodes are bitwise-comparable.
	const designs = 6
	single := newHarness(t, Options{Dispatch: &dispatch.Options{LocalExec: true}})
	bodies := make([][]byte, designs)
	refBytes := make([]json.RawMessage, designs)
	for i := range bodies {
		bodies[i] = marshalReq(t, map[string]any{
			"tree":   smallTreeJSON(t, 5+i),
			"config": fastConfig(),
		})
		code, resp := single.post(bodies[i])
		if code != http.StatusAccepted {
			t.Fatalf("reference submit %d: status %d %v", i, code, resp)
		}
		id := jobID(t, resp)
		if v := single.waitJob(id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("reference job %d: %s (%s)", i, v.Status, v.Error)
		}
		_, refBytes[i] = single.resultBody(id)
	}

	fl := newFleet(t, 3, Options{Dispatch: &dispatch.Options{LocalExec: true}})
	liveNode := func(victim int) int {
		n := rng.Intn(3)
		if n == victim {
			n = (n + 1) % 3
		}
		return n
	}
	// checkDone polls a submitted job and compares its bytes against the
	// reference; false means the job was lost to the kill (acceptable —
	// it must succeed on a later resubmission).
	checkDone := func(node int, design int, id string) bool {
		v, ok := fl.waitJob(node, id, 30*time.Second)
		if !ok {
			return false
		}
		if v.Status != StatusDone {
			t.Fatalf("design %d via node %d: finished %q (%s)", design, node, v.Status, v.Error)
		}
		_, got := fl.resultBody(node, id)
		if !bytes.Equal(got, refBytes[design]) {
			t.Fatalf("design %d: fleet result differs from single-node reference (%d vs %d bytes)",
				design, len(got), len(refBytes[design]))
		}
		return true
	}

	saw503 := 0
	for round := 0; round < 3; round++ {
		victim := rng.Intn(3)
		type inflight struct {
			node   int
			design int
			id     string
		}
		var pending []inflight
		unresolved := map[int]bool{}
		// Kill the victim mid-stream: some submissions race the live
		// server, the rest meet a dead owner.
		killAfter := 1 + rng.Intn(designs-1)
		for i, body := range bodies {
			if i == killAfter {
				fl.kill(victim)
			}
			node := liveNode(victim)
			code, resp, hdr := fl.post(node, body)
			switch code {
			case http.StatusAccepted, http.StatusOK:
				pending = append(pending, inflight{node: node, design: i, id: jobID(t, resp)})
			case http.StatusServiceUnavailable:
				if got := errorCode(resp); got != "shard_unavailable" {
					t.Fatalf("round %d design %d: 503 code %q, want shard_unavailable", round, i, got)
				}
				if hdr.Get("Retry-After") == "" {
					t.Fatal("503 shard_unavailable without a Retry-After hint")
				}
				saw503++
				unresolved[i] = true
			default:
				t.Fatalf("round %d design %d via node %d: status %d %v", round, i, node, code, resp)
			}
		}
		for _, p := range pending {
			if !checkDone(p.node, p.design, p.id) {
				unresolved[p.design] = true
			}
		}
		// Recovery: the owner restarts (state gone — no DataDir) and every
		// refused or lost design must now solve to the reference bytes.
		fl.restart(victim)
		for i := range bodies {
			if !unresolved[i] {
				continue
			}
			node := rng.Intn(3)
			code, resp, _ := fl.post(node, bodies[i])
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Fatalf("round %d recovery design %d: status %d %v", round, i, code, resp)
			}
			if !checkDone(node, i, jobID(t, resp)) {
				t.Fatalf("round %d: design %d unreachable after the owner restarted", round, i)
			}
		}
	}

	// The seeded schedule above may or may not have caught a forward in
	// flight; force the deterministic case so the 503 path is always
	// covered: kill design 0's owner, submit via a live node, recover.
	code, resp, _ := fl.post(0, bodies[0])
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("owner-discovery submit: status %d %v", code, resp)
	}
	owner := jobOwner(t, jobID(t, resp))
	if _, ok := fl.waitJob(0, jobID(t, resp), 30*time.Second); !ok {
		t.Fatal("owner-discovery job lost on a healthy fleet")
	}
	fl.kill(owner)
	submitter := (owner + 1) % 3
	code, resp, hdr := fl.post(submitter, bodies[0])
	if code != http.StatusServiceUnavailable || errorCode(resp) != "shard_unavailable" {
		t.Fatalf("dead owner: status %d code %q, want 503 shard_unavailable", code, errorCode(resp))
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 shard_unavailable without a Retry-After hint")
	}
	saw503++
	fl.restart(owner)
	code, resp, _ = fl.post(submitter, bodies[0])
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("post-restart submit: status %d %v", code, resp)
	}
	if v, ok := fl.waitJob(submitter, jobID(t, resp), 30*time.Second); !ok || v.Status != StatusDone {
		t.Fatalf("post-restart job: %q (ok=%v)", v.Status, ok)
	}
	if _, got := fl.resultBody(submitter, jobID(t, resp)); !bytes.Equal(got, refBytes[0]) {
		t.Fatal("post-restart result differs from the single-node reference")
	}
	if saw503 == 0 {
		t.Fatal("chaos schedule never exercised shard_unavailable")
	}

	// The routing layer counted what the chaos inflicted.
	var unavailable int64
	for _, node := range fl.nodes {
		unavailable += node.srv.Load().MetricsSnapshot().Shard.Unavailable
	}
	if unavailable == 0 {
		t.Fatal("no node counted a shard_unavailable refusal")
	}
}
