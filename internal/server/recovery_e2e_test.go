package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wavemin/internal/dispatch"
	"wavemin/internal/faultinject"
)

// TestRecoveryEndToEnd drives the durable serving tier through crashes:
// each scenario runs one or more server incarnations over the same
// DataDir, cutting power (Server.Crash) between them, and asserts the
// durability contract — accepted jobs survive under their public IDs,
// persisted results replay byte-identically without re-solving, corrupt
// store entries are quarantined and re-solved, and a failed fsync is
// never acknowledged. Scenarios run sequentially: several install
// process-global faultinject hooks.
func TestRecoveryEndToEnd(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"CrashRestartPreservesBacklogAndResults", recoveryCrashRestart},
		{"CorruptStoreEntryQuarantinedAndReSolved", recoveryCorruptEntry},
		{"FsyncFaultRefusesAcknowledgement", recoveryFsyncFault},
		{"CleanDrainLeavesEmptyBacklog", recoveryCleanDrain},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			t.Cleanup(faultinject.Reset)
			sc.run(t)
		})
	}
}

func durableOpts(dir string) Options {
	return Options{
		DataDir:         dir,
		Workers:         1,
		DefaultTimeout:  time.Minute,
		MaxTimeout:      time.Minute,
		CheckpointEvery: time.Hour, // scenarios checkpoint implicitly at open
	}
}

func recoveryCrashRestart(t *testing.T) {
	dir := t.TempDir()

	// Reference bytes for the tree that will be interrupted mid-solve:
	// an uninterrupted dispatch-path solve on a throwaway memory-only
	// server. The recovered run must reproduce them exactly.
	ref := newHarness(t, Options{Dispatch: &dispatch.Options{LocalExec: true}})
	bodyB := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 12), "config": fastConfig()})
	code, resp := ref.post(bodyB)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit: status %d, body %v", code, resp)
	}
	if v := ref.waitJob(jobID(t, resp), 30*time.Second); v.Status != StatusDone {
		t.Fatalf("reference job finished %s (error %q)", v.Status, v.Error)
	}
	_, refB := ref.resultBody(jobID(t, resp))

	h1 := newHarness(t, durableOpts(dir))

	// Job A completes before the crash; its result must survive it.
	bodyA := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 8), "config": fastConfig()})
	code, resp = h1.post(bodyA)
	if code != http.StatusAccepted {
		t.Fatalf("submit A: status %d, body %v", code, resp)
	}
	idA := jobID(t, resp)
	if v := h1.waitJob(idA, 30*time.Second); v.Status != StatusDone {
		t.Fatalf("job A finished %s (error %q)", v.Status, v.Error)
	}
	_, resA := h1.resultBody(idA)

	// Wedge the solver: B crashes mid-solve, C dies queued behind it.
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	faultinject.Set(faultinject.SitePolarityZone, func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	code, resp = h1.post(bodyB)
	if code != http.StatusAccepted {
		t.Fatalf("submit B: status %d, body %v", code, resp)
	}
	idB := jobID(t, resp)
	<-started // B is mid-solve
	bodyC := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 16), "config": fastConfig()})
	code, resp = h1.post(bodyC)
	if code != http.StatusAccepted {
		t.Fatalf("submit C: status %d, body %v", code, resp)
	}
	idC := jobID(t, resp)

	// Power cut. The 202s above were ack-gated on the journal, so both
	// accept records are durable even though neither job finished.
	h1.srv.Crash()
	faultinject.Reset()
	close(release)

	h2 := newHarness(t, durableOpts(dir))
	rec := h2.srv.Recovery()
	if !rec.Durable || rec.JobsRestored != 2 {
		t.Fatalf("recovery = %+v, want 2 jobs restored", rec)
	}

	// The backlog survives under the same public IDs and runs to done.
	for _, id := range []string{idB, idC} {
		if v := h2.waitJob(id, 30*time.Second); v.Status != StatusDone {
			t.Fatalf("recovered job %s finished %s (error %q)", id, v.Status, v.Error)
		}
	}
	// The interrupted solve reproduced the uninterrupted bytes exactly.
	if _, gotB := h2.resultBody(idB); !bytes.Equal(refB, gotB) {
		t.Fatalf("recovered result diverged:\n want %s\n got  %s", refB, gotB)
	}
	// A was terminal pre-crash: replay drops it from the registry.
	if code, _ := h2.get("/v1/jobs/" + idA); code != http.StatusNotFound {
		t.Fatalf("pre-crash terminal job still in registry: status %d", code)
	}

	// A's result bytes survived the crash in the store: resubmitting is
	// an immediate 200 served from disk, byte-identical, with no solve.
	diskHitsBefore := h2.srv.MetricsSnapshot().TieredCache.DiskHits
	code, resp = h2.post(bodyA)
	if code != http.StatusOK {
		t.Fatalf("resubmit of pre-crash result: status %d, body %v (want immediate cache hit)", code, resp)
	}
	_, resA2 := h2.resultBody(jobID(t, resp))
	if !bytes.Equal(resA, resA2) {
		t.Fatalf("result lost fidelity across crash:\n before %s\n after  %s", resA, resA2)
	}
	m := h2.srv.MetricsSnapshot()
	if m.TieredCache.DiskHits != diskHitsBefore+1 {
		t.Fatalf("disk hits %d -> %d, want one disk-served hit", diskHitsBefore, m.TieredCache.DiskHits)
	}
	if m.JournalErrs != 0 {
		t.Fatalf("journal errors after recovery: %d", m.JournalErrs)
	}

	if err := h2.srv.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func recoveryCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	h1 := newHarness(t, durableOpts(dir))
	body := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 8), "config": fastConfig()})
	code, resp := h1.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, resp)
	}
	if v := h1.waitJob(jobID(t, resp), 30*time.Second); v.Status != StatusDone {
		t.Fatalf("job finished %s (error %q)", v.Status, v.Error)
	}
	_, want := h1.resultBody(jobID(t, resp))
	if err := h1.srv.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Rot the stored entry on disk: flip one payload byte.
	objs, err := filepath.Glob(filepath.Join(dir, "store", "objects", "*", "*", "*.obj"))
	if err != nil || len(objs) != 1 {
		t.Fatalf("object files %v (err %v), want exactly one", objs, err)
	}
	raw, err := os.ReadFile(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(objs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The next incarnation must not serve the rotten bytes: the entry is
	// quarantined, the job re-solves, and the fresh result matches the
	// original exactly (and heals the store).
	h2 := newHarness(t, durableOpts(dir))
	code, resp = h2.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit over corrupt entry: status %d, body %v (a corrupt entry was served as a cache hit)", code, resp)
	}
	if v := h2.waitJob(jobID(t, resp), 30*time.Second); v.Status != StatusDone {
		t.Fatalf("re-solve finished %s (error %q)", v.Status, v.Error)
	}
	_, got := h2.resultBody(jobID(t, resp))
	if !bytes.Equal(want, got) {
		t.Fatalf("re-solved result diverged:\n want %s\n got  %s", want, got)
	}
	m := h2.srv.MetricsSnapshot()
	if m.StoreStats.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", m.StoreStats.Quarantined)
	}
	if qs, _ := filepath.Glob(filepath.Join(dir, "store", "quarantine", "*.corrupt")); len(qs) != 1 {
		t.Fatalf("quarantine dir holds %v, want one preserved corpse", qs)
	}
	// The healed entry now serves resubmissions again.
	if code, _ = h2.post(body); code != http.StatusOK {
		t.Fatalf("resubmit after heal: status %d, want cache hit", code)
	}
	if err := h2.srv.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func recoveryFsyncFault(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.Fsync = "always"
	h1 := newHarness(t, opts)

	// Every journal fsync fails: the accept record cannot be made
	// durable, so the submission must be refused — never a 202 the
	// journal cannot honor.
	faultinject.SetErr(faultinject.SiteWALSync, func() error {
		return errors.New("injected: fsync failed")
	})
	body := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 8), "config": fastConfig()})
	code, resp := h1.post(body)
	if code < 400 {
		t.Fatalf("submit with failing fsync: status %d, body %v (acknowledged a job the journal cannot keep)", code, resp)
	}
	if errs := h1.srv.MetricsSnapshot().JournalErrs; errs == 0 {
		t.Fatal("failed fsync left no journal-error trace")
	}
	faultinject.Reset()

	// Whatever the torn journal holds, the next incarnation recovers to
	// a consistent state: any restored job (an accept whose bytes hit
	// the OS before the failed fsync) simply re-runs; none is acked-lost.
	h1.srv.Crash()
	h2 := newHarness(t, durableOpts(dir))
	rec := h2.srv.Recovery()
	if rec.JobsRestored > 1 {
		t.Fatalf("recovery restored %d jobs from a single refused submission", rec.JobsRestored)
	}
	// Serving works again end to end after the fault clears.
	code, resp = h2.post(body)
	switch code {
	case http.StatusAccepted:
		if v := h2.waitJob(jobID(t, resp), 30*time.Second); v.Status != StatusDone {
			t.Fatalf("post-fault job finished %s (error %q)", v.Status, v.Error)
		}
	case http.StatusOK:
		// Also fine: a restored ghost of the refused submission already
		// re-ran and cached the result.
	default:
		t.Fatalf("submit after restart: status %d, body %v", code, resp)
	}
	if err := h2.srv.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func recoveryCleanDrain(t *testing.T) {
	dir := t.TempDir()
	h1 := newHarness(t, durableOpts(dir))
	body := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 8), "config": fastConfig()})
	code, resp := h1.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, resp)
	}
	if v := h1.waitJob(jobID(t, resp), 30*time.Second); v.Status != StatusDone {
		t.Fatalf("job finished %s (error %q)", v.Status, v.Error)
	}
	if err := h1.srv.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// A clean drain checkpoints an empty backlog: the next start replays
	// nothing but still has the result.
	h2 := newHarness(t, durableOpts(dir))
	rec := h2.srv.Recovery()
	if rec.JobsRestored != 0 {
		t.Fatalf("clean shutdown left %d jobs to restore", rec.JobsRestored)
	}
	if code, _ := h2.post(body); code != http.StatusOK {
		t.Fatalf("resubmit after clean restart: status %d, want cache hit", code)
	}
	if err := h2.srv.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestRecoveredJobView covers the registry reattachment details the e2e
// path does not pin down: a recovered job is visible as queued/running
// under its old ID immediately after New, and fresh submissions get IDs
// beyond every recovered one.
func TestRecoveredJobView(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	h1 := newHarness(t, durableOpts(dir))

	release := make(chan struct{})
	started := make(chan struct{}, 16)
	faultinject.Set(faultinject.SitePolarityZone, func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	body := marshalReq(t, map[string]any{"tree": smallTreeJSON(t, 8), "config": fastConfig()})
	code, resp := h1.post(body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, resp)
	}
	id := jobID(t, resp)
	<-started
	h1.srv.Crash()
	faultinject.Reset()
	close(release)

	h2 := newHarness(t, durableOpts(dir))
	code, raw := h2.get("/v1/jobs/" + id)
	if code != http.StatusOK {
		t.Fatalf("recovered job lookup: status %d: %s", code, raw)
	}
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status == StatusFailed || v.Status == StatusExpired {
		t.Fatalf("recovered job is %s (error %q)", v.Status, v.Error)
	}
	if v.JobID != id {
		t.Fatalf("recovered job ID %q, want %q", v.JobID, id)
	}
	if h2.waitJob(id, 30*time.Second).Status != StatusDone {
		t.Fatal("recovered job did not finish")
	}

	// Fresh submissions must not collide with recovered IDs.
	code, resp = h2.post(marshalReq(t, map[string]any{
		"tree": smallTreeJSON(t, 12), "config": fastConfig(),
	}))
	if code != http.StatusAccepted {
		t.Fatalf("fresh submit: status %d, body %v", code, resp)
	}
	if fresh := jobID(t, resp); fresh == id {
		t.Fatalf("fresh job reused recovered ID %q", fresh)
	}
	if err := h2.srv.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
