// Package xorpol implements dynamically reconfigurable polarity assignment
// after Lu & Taskin (ISVLSI 2010) and Lu, Teng & Taskin (TVLSI 2012) — the
// paper's references [30] and [31]: each leaf buffering element drives its
// flip-flops through an XOR gate with a mode-programmable control bit, and
// the flip-flops are double-edge triggered. The leaf's *polarity* then
// becomes a per-power-mode choice with (idealized) no timing impact, so
// every mode is optimized independently — the ultimate flexibility the
// static assignment of the main flow approximates.
//
// The cost is the XOR's own switching current, charged per leaf on both
// rails at every edge.
package xorpol

import (
	"context"
	"fmt"
	"math"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/mosp"
	"wavemin/internal/obs"
	"wavemin/internal/parallel"
	"wavemin/internal/polarity"
	"wavemin/internal/waveform"
)

// Config parameterizes Optimize.
type Config struct {
	Samples  int     // |S| per mode (split over four rail/edge groups)
	ZoneSize float64 // µm; 0 = polarity.DefaultZoneSize
	// XOROverheadFrac scales the XOR gate's own current pulse relative to
	// the leaf's main pulse peak (default 0.08).
	XOROverheadFrac float64
	// Workers bounds the goroutines fanned out over the mode × zone grid
	// (every (mode, zone) instance is independent — modes decouple by
	// construction here). 0 = GOMAXPROCS, 1 = serial; results are
	// identical for every worker count.
	Workers int
}

// Result is a per-mode polarity program.
type Result struct {
	// Positive[leaf][modeName] reports the XOR control: true = the leaf's
	// output follows the clock (positive polarity) in that mode.
	Positive map[clocktree.NodeID]map[string]bool
	// PeakPerMode is the optimizer's estimate per mode, µA.
	PeakPerMode map[string]float64
	// WorstPeak is the max over modes.
	WorstPeak float64
}

// Optimize chooses each leaf's polarity independently per mode. The tree's
// cells (and hence timing) are untouched: an ideal XOR adds equal delay on
// both polarities, so the skew is whatever the tree already has.
// Cancellation is checked per mode and per zone.
func Optimize(ctx context.Context, t *clocktree.Tree, modes []clocktree.Mode, cfg Config) (*Result, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("xorpol: no modes")
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 16
	}
	if cfg.XOROverheadFrac == 0 {
		cfg.XOROverheadFrac = 0.08
	}
	perGroup := cfg.Samples / int(polarity.NumGroups)
	if perGroup < 1 {
		perGroup = 1
	}
	res := &Result{
		Positive:    make(map[clocktree.NodeID]map[string]bool),
		PeakPerMode: make(map[string]float64),
	}
	for _, leaf := range t.Leaves() {
		res.Positive[leaf] = make(map[string]bool, len(modes))
	}
	zones := polarity.LeafZones(polarity.PartitionZones(t, cfg.ZoneSize))

	// Timings are shared read-only inputs; compute them up front, then fan
	// the independent (mode, zone) instances out as one flat index space
	// and merge in fixed mode-major order afterwards.
	timings := make([]*clocktree.Timing, len(modes))
	for mi, mode := range modes {
		timings[mi] = t.ComputeTiming(mode)
	}
	type zoneOut struct {
		positive []bool // per zone leaf
		peak     float64
	}
	ctx, sp := obs.Start(ctx, "xorpol")
	defer sp.End()
	sp.Count("xorpol.modes", int64(len(modes)))
	sp.Count("xorpol.zones", int64(len(zones)))
	nz := len(zones)
	solved := make([]zoneOut, len(modes)*nz)
	ferr := parallel.ForEach(ctx, cfg.Workers, len(solved), func(k int) error {
		mi, zi := k/nz, k%nz
		// Slot-indexed sub-span on the flat (mode, zone) index so the
		// serialized trace is independent of scheduling.
		zctx := ctx
		if zsp := sp.ChildAt(k, "modezone"); zsp != nil {
			defer zsp.End()
			zsp.SetAttr("mode", modes[mi].Name)
			zsp.Count("zone.leaves", int64(len(zones[zi].Leaves)))
			zctx = obs.WithSpan(ctx, zsp)
		}
		out, err := solveModeZone(zctx, t, timings[mi], &zones[zi], cfg, perGroup)
		if err != nil {
			return err
		}
		solved[k] = zoneOut{positive: out.positive, peak: out.peak}
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	for mi, mode := range modes {
		var modePeak float64
		for zi, zone := range zones {
			out := &solved[mi*nz+zi]
			for li, leaf := range zone.Leaves {
				res.Positive[leaf][mode.Name] = out.positive[li]
			}
			if out.peak > modePeak {
				modePeak = out.peak
			}
		}
		res.PeakPerMode[mode.Name] = modePeak
		res.WorstPeak = math.Max(res.WorstPeak, modePeak)
	}
	return res, nil
}

// modeZoneOut is one (mode, zone) solve: the per-leaf positive-polarity
// control bits and the zone's peak estimate.
type modeZoneOut struct {
	positive []bool
	peak     float64
}

// solveModeZone optimizes the polarity program of one zone in one mode.
// Runs on worker goroutines; the tree and timing are read-only here.
func solveModeZone(
	ctx context.Context, t *clocktree.Tree, tm *clocktree.Timing,
	zone *polarity.Zone, cfg Config, perGroup int,
) (modeZoneOut, error) {
	// Baseline: non-leaf currents plus every leaf's XOR overhead
	// (the XOR switches in both polarities).
	var base [4]waveform.Waveform
	for _, id := range zone.NonLeaves {
		iddR, issR := t.NodeCurrents(tm, id, cell.Rising)
		iddF, issF := t.NodeCurrents(tm, id, cell.Falling)
		base[0] = waveform.Add(base[0], iddR)
		base[1] = waveform.Add(base[1], issR)
		base[2] = waveform.Add(base[2], iddF)
		base[3] = waveform.Add(base[3], issF)
	}
	// Per-leaf option waveforms: keep (parity as built) or flip
	// (swap the edges), plus the XOR overhead on the baseline.
	type opt struct{ w [4]waveform.Waveform }
	options := make([][2]opt, len(zone.Leaves))
	for li, leaf := range zone.Leaves {
		iddR, issR := t.NodeCurrents(tm, leaf, cell.Rising)
		iddF, issF := t.NodeCurrents(tm, leaf, cell.Falling)
		keep := opt{w: [4]waveform.Waveform{iddR, issR, iddF, issF}}
		flip := opt{w: [4]waveform.Waveform{iddF, issF, iddR, issR}}
		options[li] = [2]opt{keep, flip}
		pk, _ := iddR.Peak()
		if p2, _ := issR.Peak(); p2 > pk {
			pk = p2
		}
		over := xorPulse(tm, leaf, pk*cfg.XOROverheadFrac)
		for g := 0; g < 4; g++ {
			base[g] = waveform.Add(base[g], over)
		}
	}
	// Sample sets per group from everything in play.
	var samples [4]waveform.SampleSet
	for g := 0; g < 4; g++ {
		ws := []waveform.Waveform{base[g]}
		for li := range options {
			ws = append(ws, options[li][0].w[g], options[li][1].w[g])
		}
		samples[g] = waveform.HotSpots(perGroup, ws...)
	}
	vec := func(w [4]waveform.Waveform) []float64 {
		var out []float64
		for g := 0; g < 4; g++ {
			out = append(out, samples[g].Vector(w[g])...)
		}
		return out
	}
	g := &mosp.Graph{Baseline: vec(base)}
	for li := range options {
		g.Layers = append(g.Layers, []mosp.Vertex{
			{Weight: vec(options[li][0].w), Tag: 0},
			{Weight: vec(options[li][1].w), Tag: 1},
		})
	}
	sol, err := mosp.Solve(ctx, g, mosp.Options{Epsilon: 0.01})
	if err != nil {
		return modeZoneOut{}, err
	}
	out := modeZoneOut{positive: make([]bool, len(zone.Leaves)), peak: sol.Max}
	for li, leaf := range zone.Leaves {
		out.positive[li] = g.Layers[li][sol.Picks[li]].Tag == 0 == t.PolarityOf(leaf)
	}
	return out, nil
}

// xorPulse models the XOR gate's own supply pulse at the leaf's switching
// time.
func xorPulse(tm *clocktree.Timing, leaf clocktree.NodeID, peak float64) waveform.Waveform {
	if peak <= 0 {
		return waveform.Waveform{}
	}
	at := tm.ATOut[leaf]
	return waveform.Triangle(math.Max(0, at-2), 2, 3, peak)
}

// Flips counts, per mode, how many leaves run with flipped (relative to
// the tree's built-in parity) polarity.
func (r *Result) Flips(t *clocktree.Tree, modes []clocktree.Mode) map[string]int {
	out := make(map[string]int, len(modes))
	for _, m := range modes {
		n := 0
		for leaf, byMode := range r.Positive {
			if byMode[m.Name] != t.PolarityOf(leaf) {
				n++
			}
		}
		out[m.Name] = n
	}
	return out
}
