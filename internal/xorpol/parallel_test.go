package xorpol

import (
	"context"
	"reflect"
	"runtime"
	"testing"
)

// TestParallelDeterminismOptimize requires an identical polarity program
// under every worker count: the (mode, zone) fan-out merges in fixed
// mode-major order.
func TestParallelDeterminismOptimize(t *testing.T) {
	tree, modes := testDesign(t)
	run := func(workers int) *Result {
		res, err := Optimize(context.Background(), tree, modes, Config{Samples: 16, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	want := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if got.WorstPeak != want.WorstPeak {
			t.Fatalf("workers=%d: worst peak %g != %g", w, got.WorstPeak, want.WorstPeak)
		}
		if !reflect.DeepEqual(got.PeakPerMode, want.PeakPerMode) {
			t.Fatalf("workers=%d: per-mode peaks differ", w)
		}
		if !reflect.DeepEqual(got.Positive, want.Positive) {
			t.Fatalf("workers=%d: polarity program differs", w)
		}
	}
}
