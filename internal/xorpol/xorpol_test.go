package xorpol

import (
	"context"
	"testing"

	"wavemin/internal/bench"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
	"wavemin/internal/waveform"
)

func testDesign(t testing.TB) (*clocktree.Tree, []clocktree.Mode) {
	lib := cell.DefaultLibrary()
	var sinks []cts.Sink
	for i := 0; i < 12; i++ {
		sinks = append(sinks, cts.Sink{X: 15 + float64(i%4)*8, Y: 15 + float64(i/4)*8, Cap: 8})
	}
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := cts.Synthesize(sinks, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	domains := bench.AssignDomains(tree, 60, 50, 2)
	modes := []clocktree.Mode{
		{Name: "M1", Supplies: map[string]float64{domains[0]: 1.1, domains[1]: 1.1}},
		{Name: "M2", Supplies: map[string]float64{domains[0]: 0.9, domains[1]: 1.1}},
	}
	return tree, modes
}

// goldenPeak evaluates a polarity program for one mode by superposing the
// (possibly edge-flipped) leaf currents plus non-leaf currents.
func goldenPeak(t *clocktree.Tree, mode clocktree.Mode, res *Result) float64 {
	tm := t.ComputeTiming(mode)
	var worst float64
	for gi, pair := range [][2]cell.Edge{{cell.Rising, cell.Rising}, {cell.Falling, cell.Falling}} {
		_ = gi
		var idd, iss waveform.Waveform
		for _, id := range t.NonLeaves() {
			i1, i2 := t.NodeCurrents(tm, id, pair[0])
			idd = waveform.Add(idd, i1)
			iss = waveform.Add(iss, i2)
		}
		for _, leaf := range t.Leaves() {
			e := pair[0]
			if res.Positive[leaf][mode.Name] != t.PolarityOf(leaf) {
				e = e.Opposite()
			}
			i1, i2 := t.NodeCurrents(tm, leaf, e)
			idd = waveform.Add(idd, i1)
			iss = waveform.Add(iss, i2)
		}
		if p, _ := idd.Peak(); p > worst {
			worst = p
		}
		if p, _ := iss.Peak(); p > worst {
			worst = p
		}
	}
	return worst
}

func TestOptimizeProgramsEveryLeafAndMode(t *testing.T) {
	tree, modes := testDesign(t)
	res, err := Optimize(context.Background(), tree, modes, Config{Samples: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tree.Leaves() {
		for _, m := range modes {
			if _, ok := res.Positive[leaf][m.Name]; !ok {
				t.Fatalf("leaf %d missing polarity for %s", leaf, m.Name)
			}
		}
	}
	if res.WorstPeak <= 0 {
		t.Fatal("missing peak estimate")
	}
}

func TestXORPolarityBeatsAllPositive(t *testing.T) {
	tree, modes := testDesign(t)
	res, err := Optimize(context.Background(), tree, modes, Config{Samples: 32})
	if err != nil {
		t.Fatal(err)
	}
	// All-positive program (everything as built).
	allPos := &Result{Positive: make(map[clocktree.NodeID]map[string]bool)}
	for _, leaf := range tree.Leaves() {
		allPos.Positive[leaf] = map[string]bool{}
		for _, m := range modes {
			allPos.Positive[leaf][m.Name] = tree.PolarityOf(leaf)
		}
	}
	for _, m := range modes {
		opt := goldenPeak(tree, m, res)
		base := goldenPeak(tree, m, allPos)
		if opt > base*1.02 {
			t.Fatalf("mode %s: XOR program %g worse than all-positive %g", m.Name, opt, base)
		}
	}
	// And it actually flips a meaningful number of leaves.
	flips := res.Flips(tree, modes)
	for _, m := range modes {
		if flips[m.Name] == 0 {
			t.Fatalf("mode %s: no flips chosen", m.Name)
		}
	}
}

func TestPerModeProgramsDiffer(t *testing.T) {
	// With a voltage island shifting arrivals in M2, the per-mode optima
	// generally differ — that is the point of dynamic polarity.
	tree, modes := testDesign(t)
	res, err := Optimize(context.Background(), tree, modes, Config{Samples: 32})
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for _, byMode := range res.Positive {
		if byMode["M1"] != byMode["M2"] {
			differ = true
		}
	}
	if !differ {
		t.Log("per-mode programs identical (acceptable but unusual); peaks:", res.PeakPerMode)
	}
}

func TestValidation(t *testing.T) {
	tree, _ := testDesign(t)
	if _, err := Optimize(context.Background(), tree, nil, Config{}); err == nil {
		t.Fatal("no modes should error")
	}
}

func TestTimingUntouched(t *testing.T) {
	tree, modes := testDesign(t)
	before := tree.ComputeTiming(modes[1]).Skew(tree)
	if _, err := Optimize(context.Background(), tree, modes, Config{Samples: 16}); err != nil {
		t.Fatal(err)
	}
	after := tree.ComputeTiming(modes[1]).Skew(tree)
	if before != after {
		t.Fatal("XOR polarity must not touch timing")
	}
}
