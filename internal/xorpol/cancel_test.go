package xorpol

import (
	"context"
	"errors"
	"testing"
)

func TestOptimizeCanceled(t *testing.T) {
	tree, modes := testDesign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(ctx, tree, modes, Config{Samples: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
