// Package wal is a segmented write-ahead journal: the durability
// substrate of the wavemind serving tier. Callers append opaque records;
// the journal guarantees that once an append's Commit has been waited
// on, the record survives a process crash (kill -9) and is delivered —
// in order — to the replay callback at the next Open.
//
// # Framing
//
// A record is framed as
//
//	[u32le payload length][u8 kind][u32le CRC32C(payload)][payload]
//
// and segments are append-only files named wal-<16-digit-index>.seg.
// CRC32C (Castagnoli) detects bit flips; the length prefix detects
// truncation. A torn FINAL record — the partial write of the crash
// itself — is silently truncated at replay. A malformed record anywhere
// ELSE is real corruption: replay fails with a *CorruptError, unless
// Options.BestEffort salvages the valid prefix and quarantines the rest
// (segment renamed to .corrupt) — the operator escape hatch, never the
// default.
//
// # Durability
//
// Append is ordered (records are framed into the journal in call order,
// so callers holding a state lock get journal order == state order) and
// asynchronous: it returns a *Commit whose Wait blocks until the record
// is durable under the configured SyncPolicy. SyncBatch amortizes fsync
// over a group-commit window: every Wait still only returns after a
// covering fsync, but concurrent appends share one. SyncNone trades
// durability of the unflushed tail for speed — acknowledged records can
// be lost to a crash, and the caller owns that trade.
//
// # Checkpoints
//
// Checkpoint(snapshot) rotates to a fresh segment whose first record is
// the snapshot (kind Checkpoint), then deletes every older segment.
// Replay applies a checkpoint by resetting state to the snapshot and
// then applying the records after it, so the journal's length is
// bounded by the churn since the last checkpoint, not by history.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wavemin/internal/faultinject"
	"wavemin/internal/obs"
)

// RecordKind distinguishes ordinary records from checkpoint snapshots.
type RecordKind byte

const (
	// Data is an ordinary application record.
	Data RecordKind = 1
	// Checkpoint is a full-state snapshot: replay resets to it and
	// applies only records that follow.
	Checkpoint RecordKind = 2
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncBatch (the default) groups appends inside GroupWindow into one
	// fsync: every Commit.Wait still returns only after a covering
	// fsync, but concurrent appenders share it.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs every batch immediately, with no grouping
	// window: minimum acknowledged-loss exposure, maximum fsync count.
	SyncAlways
	// SyncNone never fsyncs on append (segment boundaries still sync).
	// A crash can lose the OS-buffered tail of acknowledged records —
	// for journals whose loss is acceptable, like a cache recency index.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the wire/flag form: "always", "batch", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	default:
		return SyncBatch, fmt.Errorf("wal: unknown sync policy %q (want always, batch, or none)", s)
	}
}

// Options configures a journal. Zero values take the defaults noted.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 4 MiB). A batch is never split across segments,
	// so segments may overshoot by one batch.
	SegmentBytes int64
	// Sync is the append durability policy (default SyncBatch).
	Sync SyncPolicy
	// GroupWindow is the SyncBatch group-commit window (default 2ms):
	// how long the committer waits, after the first pending record, for
	// more appends to share the fsync.
	GroupWindow time.Duration
	// BestEffort salvages the valid prefix when replay hits mid-journal
	// corruption, quarantining corrupt segments as *.corrupt, instead of
	// failing Open with a *CorruptError.
	BestEffort bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.GroupWindow == 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	return o
}

// Report describes what replay found on disk.
type Report struct {
	Segments    int   // segment files scanned
	Records     int   // data records delivered to the replay callback
	Checkpoints int   // checkpoint records delivered
	TornBytes   int64 // bytes truncated from a torn final record
	Salvaged    bool  // BestEffort dropped a corrupt suffix
	Quarantined int   // segments renamed to *.corrupt by BestEffort
}

// CorruptError reports a malformed record that is not a torn tail:
// mid-journal corruption that replay refuses to skip silently.
type CorruptError struct {
	Segment string // file path of the corrupt segment
	Offset  int64  // byte offset of the malformed record
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record in %s at offset %d: %s (re-run with best-effort recovery to salvage the valid prefix)", e.Segment, e.Offset, e.Reason)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	headerSize = 9
	// maxRecordBytes is a framing sanity bound: a length prefix beyond it
	// is treated as corruption (or a torn tail), not as a 4 GiB alloc.
	maxRecordBytes = 256 << 20

	segPrefix = "wal-"
	segSuffix = ".seg"
)

// ErrClosed reports an operation on a closed (or aborted) journal.
var ErrClosed = errors.New("wal: closed")

// Writer is an open journal positioned for appending. Construct with
// Open; safe for concurrent use.
type Writer struct {
	dir  string
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	pending []byte // framed records not yet handed to the committer
	appendL int64  // LSN of the newest framed record
	durable int64  // LSN through which records are durable
	err     error  // sticky failure; set once, never cleared
	closed  bool
	flush   bool // checkpoint/close wants the window skipped

	// io guards the segment file and its rotation; the committer holds
	// it while writing so Checkpoint can rotate without racing a batch.
	io     sync.Mutex
	f      *os.File
	seg    int64 // index of the open segment
	size   int64 // bytes written to the open segment
	closeC chan struct{}
	doneC  chan struct{}
}

// Commit is the durability handle of one Append.
type Commit struct {
	w   *Writer
	lsn int64
}

// Wait blocks until the record is durable under the journal's sync
// policy (or the journal failed) and returns the sticky error, if any.
func (c *Commit) Wait() error {
	c.w.mu.Lock()
	defer c.w.mu.Unlock()
	for c.w.durable < c.lsn && c.w.err == nil {
		c.w.cond.Wait()
	}
	return c.w.err
}

// Open replays the journal in dir (creating dir if needed), delivering
// every record in order to replay, then returns a Writer positioned to
// append after the last valid record. A torn final record is truncated;
// mid-journal corruption fails with *CorruptError unless
// opts.BestEffort. A nil replay callback skips delivery (still
// validating frames) — for journals opened only to append.
func Open(dir string, opts Options, replay func(kind RecordKind, payload []byte) error) (*Writer, *Report, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{}
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := replaySegment(dir, seg, last, opts.BestEffort, replay, rep); err != nil {
			return nil, nil, err
		}
		if rep.Salvaged {
			// Everything from the corruption point on is quarantined;
			// later segments are unreachable history.
			for _, rest := range segs[i+1:] {
				if qerr := quarantineSegment(segPath(dir, rest)); qerr == nil {
					rep.Quarantined++
				}
			}
			break
		}
	}
	rep.Segments = len(segs)

	w := &Writer{
		dir:    dir,
		opts:   opts,
		closeC: make(chan struct{}),
		doneC:  make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	// Append into a fresh segment: the tail segment may predate a crash,
	// and a clean boundary keeps torn-tail reasoning local to one file.
	next := int64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	if err := w.openSegment(next); err != nil {
		return nil, nil, err
	}
	go w.commitLoop()
	counters := obs.ExpvarCounters()
	counters.Add("wal_replayed_records", int64(rep.Records))
	counters.Add("wal_replayed_checkpoints", int64(rep.Checkpoints))
	counters.Add("wal_torn_bytes", rep.TornBytes)
	return w, rep, nil
}

func segPath(dir string, idx int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, idx, segSuffix))
}

func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, err := strconv.ParseInt(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
		if err != nil || idx <= 0 {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func quarantineSegment(path string) error {
	return os.Rename(path, path+".corrupt")
}

// replaySegment scans one segment, delivering records to fn. last marks
// the final segment, where a malformed tail record is a torn write.
func replaySegment(dir string, idx int64, last, bestEffort bool, fn func(RecordKind, []byte) error, rep *Report) error {
	path := segPath(dir, idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		reason := ""
		var kind RecordKind
		var payload []byte
		if len(rest) < headerSize {
			reason = fmt.Sprintf("short header: %d bytes", len(rest))
		} else {
			n := int64(binary.LittleEndian.Uint32(rest))
			kind = RecordKind(rest[4])
			sum := binary.LittleEndian.Uint32(rest[5:9])
			switch {
			case n > maxRecordBytes:
				reason = fmt.Sprintf("implausible record length %d", n)
			case kind != Data && kind != Checkpoint:
				reason = fmt.Sprintf("unknown record kind %d", kind)
			case int64(len(rest))-headerSize < n:
				reason = fmt.Sprintf("short payload: have %d of %d bytes", int64(len(rest))-headerSize, n)
			default:
				payload = rest[headerSize : headerSize+n]
				if crc32.Checksum(payload, castagnoli) != sum {
					reason = "CRC32C mismatch"
				}
			}
		}
		if reason != "" {
			if last {
				// The torn final write of the crash itself: truncate and
				// carry on — nothing after it was ever acknowledged as
				// durable under any sync policy that fsyncs in order.
				rep.TornBytes = int64(len(data)) - off
				return truncateSegment(path, off)
			}
			if bestEffort {
				// Salvage: keep the valid prefix live on disk (so the
				// journal replays to the same state next time), save the
				// corrupt suffix aside for forensics.
				rep.Salvaged = true
				_ = os.WriteFile(path+".corrupt", data[off:], 0o644)
				if err := truncateSegment(path, off); err != nil {
					return err
				}
				rep.Quarantined++
				return nil
			}
			return &CorruptError{Segment: path, Offset: off, Reason: reason}
		}
		if fn != nil {
			if err := fn(kind, payload); err != nil {
				return fmt.Errorf("wal: replay callback: %w", err)
			}
		}
		if kind == Checkpoint {
			rep.Checkpoints++
		} else {
			rep.Records++
		}
		off += headerSize + int64(len(payload))
	}
	return nil
}

func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	return f.Sync()
}

// openSegment creates segment idx and makes it current. Caller must
// hold w.io (or be the only goroutine with access, as in Open).
func (w *Writer) openSegment(idx int64) error {
	f, err := os.OpenFile(segPath(w.dir, idx), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.seg, w.size = f, idx, 0
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

func frame(kind RecordKind, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	buf[4] = byte(kind)
	binary.LittleEndian.PutUint32(buf[5:9], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// Append frames payload into the journal and returns its durability
// handle. The record's position in the journal is fixed by the order of
// Append calls — callers serializing Appends with their state mutations
// (e.g. under one mutex) get replay order == state order. The record is
// NOT durable until Commit.Wait returns nil.
func (w *Writer) Append(payload []byte) (*Commit, error) {
	if int64(len(payload)) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), int64(maxRecordBytes))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	if w.err != nil {
		return nil, w.err
	}
	w.pending = append(w.pending, frame(Data, payload)...)
	w.appendL++
	w.cond.Broadcast()
	obs.ExpvarCounters().Add("wal_appends", 1)
	return &Commit{w: w, lsn: w.appendL}, nil
}

// commitLoop is the group committer: it drains pending batches to the
// segment file and fsyncs them per policy, advancing the durable LSN.
func (w *Writer) commitLoop() {
	defer close(w.doneC)
	for {
		w.mu.Lock()
		for len(w.pending) == 0 && !w.closed && w.err == nil {
			w.cond.Wait()
		}
		if (w.closed || w.err != nil) && len(w.pending) == 0 {
			w.mu.Unlock()
			return
		}
		if w.opts.Sync == SyncBatch && w.opts.GroupWindow > 0 && !w.flush {
			// Group commit: let concurrent appenders pile onto this fsync.
			w.mu.Unlock()
			time.Sleep(w.opts.GroupWindow)
			w.mu.Lock()
		}
		batch := w.pending
		w.pending = nil
		target := w.appendL
		w.flush = false
		w.mu.Unlock()

		err := w.writeBatch(batch)

		w.mu.Lock()
		if err != nil {
			if w.err == nil {
				w.err = err
			}
		} else {
			w.durable = target
		}
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// writeBatch appends one batch of framed records to the current segment,
// rotating first if the segment is over its bound, and syncs per policy.
func (w *Writer) writeBatch(batch []byte) error {
	w.io.Lock()
	defer w.io.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	if w.size > 0 && w.size+int64(len(batch)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if err := faultinject.ErrAt(faultinject.SiteWALAppend); err != nil {
		// Injected torn write: half the batch lands, the rest never does
		// — exactly what a crash mid-write leaves behind.
		_, _ = w.f.Write(batch[:len(batch)/2])
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.f.Write(batch); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.size += int64(len(batch))
	if w.opts.Sync != SyncNone {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) syncLocked() error {
	if err := faultinject.ErrAt(faultinject.SiteWALSync); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	obs.ExpvarCounters().Add("wal_syncs", 1)
	return nil
}

// rotateLocked seals the current segment and opens the next. Caller
// holds w.io.
func (w *Writer) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	return w.openSegment(w.seg + 1)
}

// Checkpoint rotates to a fresh segment whose first record is snapshot,
// fsyncs it, and deletes all older segments. On return the journal's
// replayable state is exactly: snapshot, plus whatever is appended
// later. Callers must serialize Checkpoint with their own Appends (the
// jobq holds its state lock across both), or the snapshot may miss
// records framed after it was taken.
func (w *Writer) Checkpoint(snapshot []byte) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.flush = true
	w.cond.Broadcast()
	for w.durable < w.appendL && w.err == nil {
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	// Committer is idle (nothing pending) and we hold w.mu, so no new
	// batch can start; taking w.io cannot deadlock.
	w.io.Lock()
	err := w.checkpointIOLocked(snapshot)
	if err != nil && w.err == nil {
		w.err = err
		w.cond.Broadcast()
	}
	w.io.Unlock()
	w.mu.Unlock()
	if err == nil {
		obs.ExpvarCounters().Add("wal_checkpoints", 1)
	}
	return err
}

func (w *Writer) checkpointIOLocked(snapshot []byte) error {
	old := w.seg
	if err := w.rotateLocked(); err != nil {
		return err
	}
	if _, err := w.f.Write(frame(Checkpoint, snapshot)); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	w.size += headerSize + int64(len(snapshot))
	if err := w.syncLocked(); err != nil {
		return err
	}
	// The snapshot is durable; history before it is dead weight.
	for idx := old; idx >= 1; idx-- {
		path := segPath(w.dir, idx)
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break // already pruned by an earlier checkpoint
			}
			return fmt.Errorf("wal: pruning %s: %w", path, err)
		}
	}
	return syncDir(w.dir)
}

// Sync forces everything appended so far to disk (even under SyncNone)
// and returns when it is durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.flush = true
	w.cond.Broadcast()
	for w.durable < w.appendL && w.err == nil {
		w.cond.Wait()
	}
	err := w.err
	w.mu.Unlock()
	if err != nil {
		return err
	}
	w.io.Lock()
	defer w.io.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	return w.syncLocked()
}

// Err returns the journal's sticky failure, if any: once an append
// batch, sync, or checkpoint fails, the journal accepts no more work.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes pending records, fsyncs, and closes the journal.
func (w *Writer) Close() error { return w.close(true) }

// Abort closes the journal WITHOUT flushing pending records — the
// crash-simulation path for recovery tests: whatever the committer had
// not yet written simply never happened, exactly like kill -9.
func (w *Writer) Abort() { _ = w.close(false) }

func (w *Writer) close(flush bool) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if !flush {
		w.pending = nil // drop unwritten records on the floor
		if w.err == nil {
			w.err = ErrClosed
		}
	}
	w.closed = true
	w.flush = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.doneC

	w.io.Lock()
	defer w.io.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if flush {
		if serr := w.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: close: %w", serr)
		}
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	w.f = nil
	w.mu.Lock()
	if w.err == nil {
		w.err = ErrClosed
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// ReadAll replays the journal in dir without opening it for append —
// the inspection path for tools and tests. It applies the same framing
// rules as Open, including torn-tail truncation.
func ReadAll(dir string, bestEffort bool, fn func(kind RecordKind, payload []byte) error) (*Report, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	rep := &Report{Segments: len(segs)}
	for i, seg := range segs {
		if err := replaySegment(dir, seg, i == len(segs)-1, bestEffort, fn, rep); err != nil {
			return nil, err
		}
		if rep.Salvaged {
			break
		}
	}
	return rep, nil
}
