package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wavemin/internal/faultinject"
)

// collect replays dir and returns the (kind, payload) stream.
type replayed struct {
	kind    RecordKind
	payload []byte
}

func openCollect(t *testing.T, dir string, opts Options) (*Writer, *Report, []replayed) {
	t.Helper()
	var got []replayed
	w, rep, err := Open(dir, opts, func(kind RecordKind, payload []byte) error {
		got = append(got, replayed{kind, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w, rep, got
}

func appendWait(t *testing.T, w *Writer, payload string) {
	t.Helper()
	c, err := w.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, rep, _ := openCollect(t, dir, Options{Sync: SyncAlways})
	if rep.Records != 0 || rep.Segments != 0 {
		t.Fatalf("fresh journal reported %+v", rep)
	}
	want := []string{"one", "two", "", "four with a longer payload"}
	for _, p := range want {
		appendWait(t, w, p)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, rep2, got := openCollect(t, dir, Options{})
	defer w2.Close()
	if rep2.Records != len(want) {
		t.Fatalf("replayed %d records, want %d (report %+v)", rep2.Records, len(want), rep2)
	}
	for i, p := range want {
		if got[i].kind != Data || string(got[i].payload) != p {
			t.Fatalf("record %d: got kind=%d %q, want Data %q", i, got[i].kind, got[i].payload, p)
		}
	}
}

func TestGroupCommitBatchesConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncBatch, GroupWindow: 5 * time.Millisecond})
	defer w.Close()
	const n = 32
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			c, err := w.Append([]byte(fmt.Sprintf("r-%02d", i)))
			if err != nil {
				errc <- err
				return
			}
			errc <- c.Wait()
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	w.Close()
	_, rep, _ := openCollect(t, dir, Options{})
	if rep.Records != n {
		t.Fatalf("replayed %d records, want %d", rep.Records, n)
	}
}

func TestSegmentRotationReplaysInOrder(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	var want []string
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("record-%03d-padding-padding", i)
		want = append(want, p)
		appendWait(t, w, p)
	}
	w.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	w2, rep, got := openCollect(t, dir, Options{})
	defer w2.Close()
	if rep.Records != len(want) {
		t.Fatalf("replayed %d records, want %d", rep.Records, len(want))
	}
	for i := range want {
		if string(got[i].payload) != want[i] {
			t.Fatalf("record %d out of order: got %q want %q", i, got[i].payload, want[i])
		}
	}
}

func TestTornFinalRecordIsTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncAlways})
	appendWait(t, w, "kept-1")
	appendWait(t, w, "kept-2")
	w.Close()

	// Tear the tail: a partial frame of the record that was mid-write at
	// the crash.
	segs, _ := listSegments(dir)
	path := segPath(dir, segs[len(segs)-1])
	full := frame(Data, []byte("torn-away"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, rep, got := openCollect(t, dir, Options{})
	defer w2.Close()
	if rep.Records != 2 || rep.TornBytes == 0 {
		t.Fatalf("want 2 records and torn bytes, got %+v", rep)
	}
	if string(got[0].payload) != "kept-1" || string(got[1].payload) != "kept-2" {
		t.Fatalf("unexpected records after truncation: %q %q", got[0].payload, got[1].payload)
	}

	// Idempotent: a second replay sees a clean journal.
	w2.Close()
	_, rep2, _ := openCollect(t, dir, Options{})
	if rep2.TornBytes != 0 || rep2.Records != 2 {
		t.Fatalf("second replay not clean: %+v", rep2)
	}
}

func TestMidJournalCorruptionFailsStructured(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncAlways, SegmentBytes: 32})
	for i := 0; i < 10; i++ {
		appendWait(t, w, fmt.Sprintf("record-number-%02d", i))
	}
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	// Flip a payload bit in an EARLY segment: not a torn tail, real rot.
	path := segPath(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{}, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Segment != path {
		t.Fatalf("corruption attributed to %s, want %s", ce.Segment, path)
	}

	// The escape hatch salvages the valid prefix and quarantines the rest.
	w2, rep, got := openCollect(t, dir, Options{BestEffort: true})
	defer w2.Close()
	if !rep.Salvaged || rep.Quarantined == 0 {
		t.Fatalf("best-effort report %+v", rep)
	}
	if len(got) != 0 {
		// Corruption hit the first record of the first segment, so the
		// salvaged prefix is empty — everything quarantined.
		t.Fatalf("expected empty salvage, got %d records", len(got))
	}
	quar, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(quar) == 0 {
		t.Fatal("no quarantined segments on disk")
	}
}

func TestCheckpointTruncatesHistory(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		appendWait(t, w, fmt.Sprintf("pre-checkpoint-%02d", i))
	}
	if err := w.Checkpoint([]byte("SNAPSHOT")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	appendWait(t, w, "post-1")
	appendWait(t, w, "post-2")
	w.Close()

	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("checkpoint left %d segments, want 1", len(segs))
	}
	w2, rep, got := openCollect(t, dir, Options{})
	defer w2.Close()
	if rep.Checkpoints != 1 || rep.Records != 2 {
		t.Fatalf("replay report %+v, want 1 checkpoint + 2 records", rep)
	}
	if got[0].kind != Checkpoint || string(got[0].payload) != "SNAPSHOT" {
		t.Fatalf("first replayed record should be the checkpoint, got %+v", got[0])
	}
	if string(got[1].payload) != "post-1" || string(got[2].payload) != "post-2" {
		t.Fatalf("post-checkpoint records wrong: %q %q", got[1].payload, got[2].payload)
	}
}

func TestSyncFaultFailsAcknowledgement(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncAlways})
	defer w.Close()
	appendWait(t, w, "before-fault")

	boom := errors.New("injected fsync failure")
	faultinject.SetErr(faultinject.SiteWALSync, func() error { return boom })
	c, err := w.Append([]byte("never-acked"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := c.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait under fsync fault: %v, want %v", err, boom)
	}
	// The failure is sticky: the journal refuses further appends rather
	// than silently dropping durability.
	faultinject.Reset()
	if _, err := w.Append([]byte("after-fault")); !errors.Is(err, boom) {
		t.Fatalf("Append after fault: %v, want sticky %v", err, boom)
	}
	if err := w.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err: %v", err)
	}
}

func TestPartialWriteFaultLeavesTornTail(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncAlways})
	appendWait(t, w, "durable-one")

	boom := errors.New("injected torn write")
	faultinject.SetErr(faultinject.SiteWALAppend, func() error { return boom })
	c, err := w.Append([]byte("torn-record-payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait: %v", err)
	}
	faultinject.Reset()
	w.Abort()

	w2, rep, got := openCollect(t, dir, Options{})
	defer w2.Close()
	if rep.Records != 1 || string(got[0].payload) != "durable-one" {
		t.Fatalf("replay after torn write: %+v %v", rep, got)
	}
	if rep.TornBytes == 0 {
		t.Fatal("expected torn bytes to be truncated")
	}
}

func TestAbortDropsUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncAlways})
	appendWait(t, w, "acked")
	// Appended but never waited on: may or may not survive Abort — but
	// replay must stay well-formed either way.
	_, _ = w.Append([]byte("unacked"))
	w.Abort()

	w2, rep, got := openCollect(t, dir, Options{})
	defer w2.Close()
	if rep.Records < 1 || string(got[0].payload) != "acked" {
		t.Fatalf("acked record lost: %+v", rep)
	}
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Abort: %v, want ErrClosed", err)
	}
}

func TestSyncNonePolicyStillReplays(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openCollect(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 5; i++ {
		appendWait(t, w, fmt.Sprintf("lazy-%d", i))
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	w.Close()
	_, rep, _ := openCollect(t, dir, Options{})
	if rep.Records != 5 {
		t.Fatalf("replayed %d, want 5", rep.Records)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "batch": SyncBatch, "": SyncBatch, "none": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync-ish"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

// FuzzJournalReplay feeds arbitrary segment bytes (optionally split
// across two segments) through replay: it must never panic, and must
// either recover cleanly or return a structured *CorruptError. In
// best-effort mode it must always recover.
func FuzzJournalReplay(f *testing.F) {
	// Seeds: a valid journal, a valid journal with a checkpoint, a torn
	// tail, a bit-flipped record, garbage, and pathological lengths.
	valid := append(frame(Data, []byte("hello")), frame(Data, []byte("world"))...)
	f.Add(valid, false, false)
	f.Add(append(frame(Checkpoint, []byte("snap")), frame(Data, []byte("tail"))...), false, false)
	f.Add(valid[:len(valid)-3], false, false) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+1] ^= 0x10
	f.Add(flipped, true, false)
	f.Add([]byte("not a journal at all"), false, true)
	huge := make([]byte, headerSize)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge, false, false)
	f.Add([]byte{}, false, false)

	f.Fuzz(func(t *testing.T, data []byte, split, bestEffort bool) {
		dir := t.TempDir()
		if split && len(data) > 1 {
			mid := len(data) / 2
			if err := os.WriteFile(segPath(dir, 1), data[:mid], 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segPath(dir, 2), data[mid:], 0o644); err != nil {
				t.Fatal(err)
			}
		} else if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}

		var payloads [][]byte
		w, rep, err := Open(dir, Options{BestEffort: bestEffort}, func(kind RecordKind, payload []byte) error {
			payloads = append(payloads, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("replay returned unstructured error: %v", err)
			}
			if bestEffort {
				t.Fatalf("best-effort replay still failed: %v", err)
			}
			return
		}
		// Recovered: the journal must now be appendable and re-replayable
		// with the identical record stream (truncation is idempotent).
		appendWait(t, w, "post-recovery")
		w.Close()
		var again [][]byte
		_, _, err = Open(dir, Options{}, func(kind RecordKind, payload []byte) error {
			again = append(again, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			t.Fatalf("second replay after recovery failed: %v", err)
		}
		want := append(payloads, []byte("post-recovery"))
		if len(again) != len(want) {
			t.Fatalf("second replay saw %d records, want %d", len(again), len(want))
		}
		for i := range want {
			if !bytes.Equal(again[i], want[i]) {
				t.Fatalf("record %d drifted across replays", i)
			}
		}
		_ = rep
	})
}
