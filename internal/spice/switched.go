package spice

import (
	"fmt"

	"wavemin/internal/waveform"
)

// switchedR is a time-varying conductance — the linearized stand-in for a
// MOS transistor channel: its conductance ramps between "off" and "on" as
// the (externally known) gate waveform sweeps through the threshold.
type switchedR struct {
	a, b int
	g    waveform.Waveform // conductance vs time, mS; evaluated per step
}

// SwitchedR adds a time-varying resistor between a and b whose conductance
// follows g (mS as a function of ps). Conductances below gmin are clamped
// so an "off" switch never floats its nodes.
//
// Switched elements make the system matrix time-dependent: the transient
// solver re-stamps and re-factors it every step, so simulations with
// switches cost O(steps·n³) instead of O(n³ + steps·n²). Intended for the
// small transistor-level characterization testbenches in internal/cell,
// not for full-chip runs.
func (c *Circuit) SwitchedR(a, b int, g waveform.Waveform) {
	if g.IsZero() {
		panic("spice: switched resistor with zero conductance waveform")
	}
	c.switched = append(c.switched, switchedR{a: a, b: b, g: g})
}

// RampOn builds a conductance waveform that is off before t0, ramps
// linearly to gOn (mS) over the transition time tt, and stays on. The
// linearized model of a transistor whose gate passes through threshold at
// t0.
func RampOn(t0, tt, gOn float64) waveform.Waveform {
	if tt <= 0 || gOn <= 0 {
		panic(fmt.Sprintf("spice: bad ramp tt=%g gOn=%g", tt, gOn))
	}
	return waveform.MustNew([]waveform.Point{
		{T: t0, I: 0},
		{T: t0 + tt, I: gOn},
		{T: t0 + tt + 1e6, I: gOn}, // hold on "forever"
	})
}

// RampOff mirrors RampOn: on at gOn until t0, off after t0+tt.
func RampOff(t0, tt, gOn float64) waveform.Waveform {
	if tt <= 0 || gOn <= 0 {
		panic(fmt.Sprintf("spice: bad ramp tt=%g gOn=%g", tt, gOn))
	}
	return waveform.MustNew([]waveform.Point{
		{T: t0 - 1e6, I: gOn},
		{T: t0, I: gOn},
		{T: t0 + tt, I: 0},
	})
}
