package spice

import (
	"context"
	"math"
	"testing"

	"wavemin/internal/waveform"
)

func TestResistorDividerDC(t *testing.T) {
	// VDD --R1-- mid --R2-- gnd; mid should sit at VDD·R2/(R1+R2).
	c := NewCircuit()
	vdd := c.Node("vdd")
	mid := c.Node("mid")
	c.V(vdd, 1.0)
	c.R(vdd, mid, 1.0)
	c.R(mid, Ground, 3.0)
	res, err := c.Transient(context.Background(), 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.75
	for k := range res.Times {
		if got := res.VoltageAt(mid, k); math.Abs(got-want) > 1e-9 {
			t.Fatalf("step %d: mid = %g, want %g", k, got, want)
		}
	}
}

func TestRCStepResponse(t *testing.T) {
	// Current step into an RC to ground: v(t) = I·R·(1 − e^(−t/RC)).
	c := NewCircuit()
	n := c.Node("n")
	c.R(n, Ground, 2.0)   // 2 kΩ
	c.C(n, Ground, 100.0) // 100 fF → τ = 200 ps
	// 1000 µA (=1 mA) step from ground into n. The step begins just after
	// t0 so the DC operating point is v=0 (a source active at t0 would be
	// folded into the initial condition).
	step := waveform.MustNew([]waveform.Point{{T: 0, I: 0}, {T: 1, I: 1000}, {T: 10000, I: 1000}})
	c.I(Ground, n, step)
	res, err := c.Transient(context.Background(), 0, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	tau := 200.0
	vinf := 2.0 // I·R = 1 mA · 2 kΩ = 2 V
	for _, probe := range []float64{100, 200, 400, 800} {
		k := int(probe)
		want := vinf * (1 - math.Exp(-(probe-1)/tau))
		got := res.VoltageAt(n, k)
		if math.Abs(got-want) > 0.01*vinf {
			t.Errorf("v(%g ps) = %g, want %g", probe, got, want)
		}
	}
}

func TestSupplyCurrentMeasuresLoad(t *testing.T) {
	// Supply pad → resistor → ground. Delivered current = V/R.
	c := NewCircuit()
	vdd := c.Node("vdd")
	c.V(vdd, 1.1)
	c.R(vdd, Ground, 1.1) // → 1 mA
	res, err := c.Transient(context.Background(), 0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	iw := res.SupplyCurrent(0)
	if got := iw.At(3); math.Abs(got-1000) > 1e-2 {
		t.Fatalf("supply current %g µA, want 1000", got)
	}
}

func TestRailDroopFromCurrentPulse(t *testing.T) {
	// A current pulse drawn from a rail behind a grid resistance causes a
	// droop ΔV ≈ I·R (plus RC smoothing) — the power-noise mechanism.
	c := NewCircuit()
	pad := c.Node("pad")
	rail := c.Node("rail")
	c.V(pad, 1.1)
	c.R(pad, rail, 0.05)                          // 50 Ω grid resistance
	c.C(rail, Ground, 500)                        // decap
	pulse := waveform.Triangle(100, 20, 30, 2000) // 2 mA peak
	c.I(rail, Ground, pulse)
	res, err := c.Transient(context.Background(), 0, 400, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	droop := res.MaxDeviation(rail, 1.1)
	// Without the decap it would be I·R = 2 mA·50 Ω = 100 mV; the decap
	// must reduce it but it must stay clearly nonzero.
	if droop <= 0.005 || droop >= 0.100 {
		t.Fatalf("droop = %g V, want within (0.005, 0.100)", droop)
	}
	// Before the pulse the rail must sit at VDD.
	if d := math.Abs(res.VoltageAt(rail, 10) - 1.1); d > 1e-6 {
		t.Fatalf("pre-pulse rail off nominal by %g", d)
	}
}

func TestSuperpositionOfInjections(t *testing.T) {
	// Linear circuit: response to two pulses = sum of individual responses.
	build := func(p1, p2 bool) *Circuit {
		c := NewCircuit()
		pad := c.Node("pad")
		rail := c.Node("rail")
		c.V(pad, 1.0)
		c.R(pad, rail, 0.1)
		c.C(rail, Ground, 100)
		if p1 {
			c.I(rail, Ground, waveform.Triangle(50, 10, 10, 500))
		}
		if p2 {
			c.I(rail, Ground, waveform.Triangle(80, 10, 10, 800))
		}
		return c
	}
	r12, err := build(true, true).Transient(context.Background(), 0, 200, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := build(true, false).Transient(context.Background(), 0, 200, 0.5)
	r2, _ := build(false, true).Transient(context.Background(), 0, 200, 0.5)
	rail := 2 // node indices identical across builds
	for k := range r12.Times {
		lhs := r12.VoltageAt(rail, k) - 1.0
		rhs := (r1.VoltageAt(rail, k) - 1.0) + (r2.VoltageAt(rail, k) - 1.0)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("superposition violated at step %d: %g vs %g", k, lhs, rhs)
		}
	}
}

func TestChargeConservation(t *testing.T) {
	// All charge delivered by the supply through R must equal charge drawn
	// by the pulse once the rail has recovered.
	c := NewCircuit()
	pad := c.Node("pad")
	rail := c.Node("rail")
	c.V(pad, 1.0)
	c.R(pad, rail, 0.1)
	c.C(rail, Ground, 50)
	pulse := waveform.Triangle(50, 10, 10, 1000)
	c.I(rail, Ground, pulse)
	res, err := c.Transient(context.Background(), 0, 2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	supplied := res.SupplyCurrent(0).Charge()
	drawn := pulse.Charge()
	if math.Abs(supplied-drawn) > 0.01*drawn {
		t.Fatalf("charge: supplied %g, drawn %g", supplied, drawn)
	}
}

func TestVoltageWaveformAccessor(t *testing.T) {
	c := NewCircuit()
	v := c.Node("v")
	c.V(v, 0.5)
	res, err := c.Transient(context.Background(), 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Voltage(v)
	if w.Len() != 4 {
		t.Fatalf("voltage waveform has %d pts, want 4", w.Len())
	}
	if math.Abs(w.At(1.5)-0.5) > 1e-9 {
		t.Fatalf("voltage waveform value %g", w.At(1.5))
	}
}

func TestNodeManagement(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	if c.Node("a") != a {
		t.Fatal("Node must be idempotent")
	}
	if c.NodeName(a) != "a" {
		t.Fatal("NodeName round-trip failed")
	}
	if c.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2 (ground + a)", c.NumNodes())
	}
}

func TestBadInputs(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.R(n, Ground, 1)
	if _, err := c.Transient(context.Background(), 10, 5, 1); err == nil {
		t.Error("reversed window should error")
	}
	if _, err := c.Transient(context.Background(), 0, 5, 0); err == nil {
		t.Error("zero dt should error")
	}
	if _, err := NewCircuit().Transient(context.Background(), 0, 1, 0.1); err == nil {
		t.Error("empty circuit should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative resistance should panic")
			}
		}()
		c.R(n, Ground, -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative capacitance should panic")
			}
		}()
		c.C(n, Ground, -1)
	}()
}

func TestVSourceOnGroundRejected(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.R(n, Ground, 1)
	c.V(Ground, 1.0)
	if _, err := c.Transient(context.Background(), 0, 1, 0.5); err == nil {
		t.Fatal("voltage source on ground should error")
	}
}

func TestZeroCapIgnored(t *testing.T) {
	c := NewCircuit()
	n := c.Node("n")
	c.C(n, Ground, 0)
	c.R(n, Ground, 1)
	c.V(n, 1)
	if _, err := c.Transient(context.Background(), 0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestTrapezoidalAccuracyOrder(t *testing.T) {
	// Halving dt should reduce the RC step-response error by ≈4× (2nd order).
	run := func(dt float64) float64 {
		c := NewCircuit()
		n := c.Node("n")
		c.R(n, Ground, 2.0)
		c.C(n, Ground, 100.0)
		// Linear ramp onto the step over [0,8] so both dt grids resolve it
		// identically and the DC point is zero.
		step := waveform.MustNew([]waveform.Point{{T: 0, I: 0}, {T: 8, I: 1000}, {T: 10000, I: 1000}})
		c.I(Ground, n, step)
		res, err := c.Transient(context.Background(), 0, 400, dt)
		if err != nil {
			t.Fatal(err)
		}
		// Reference from a very fine run instead of the closed form (the
		// ramp makes the exact expression messy).
		cRef := NewCircuit()
		nr := cRef.Node("n")
		cRef.R(nr, Ground, 2.0)
		cRef.C(nr, Ground, 100.0)
		cRef.I(Ground, nr, step)
		ref, err := cRef.Transient(context.Background(), 0, 400, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.VoltageAt(nr, len(ref.Times)-1)
		return math.Abs(res.VoltageAt(n, len(res.Times)-1) - want)
	}
	e1 := run(8)
	e2 := run(4)
	if e2 >= e1/2 {
		t.Fatalf("trapezoidal convergence too slow: e(8)=%g e(4)=%g", e1, e2)
	}
}
