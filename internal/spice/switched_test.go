package spice

import (
	"context"
	"math"
	"testing"

	"wavemin/internal/waveform"
)

func waveformZero() waveform.Waveform { return waveform.Waveform{} }

func TestSwitchedRDischargesOutput(t *testing.T) {
	// An "inverter" made of two switched resistors: output precharged
	// high, then the pull-down turns on at t=50 and the pull-up off.
	c := NewCircuit()
	vdd := c.Node("vdd")
	out := c.Node("out")
	c.V(vdd, 1.1)
	c.SwitchedR(vdd, out, RampOff(50, 10, 1.0))
	c.SwitchedR(out, Ground, RampOn(50, 10, 1.0))
	c.C(out, Ground, 20)
	res, err := c.Transient(context.Background(), 0, 300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Voltage(out)
	if got := v.At(40); math.Abs(got-1.1) > 0.01 {
		t.Fatalf("pre-switch output %g, want ~1.1", got)
	}
	if got := v.At(290); got > 0.05 {
		t.Fatalf("post-switch output %g, want ~0", got)
	}
	// The discharge current must appear at the ground side, i.e. the
	// supply delivers a crowbar blip then nothing.
	idd := res.SupplyCurrent(0)
	peakAfter, at := idd.Clip(45, 300).Peak()
	if peakAfter <= 0 {
		t.Fatal("no crowbar current")
	}
	if at > 70 {
		t.Fatalf("crowbar at %g, want during the 50..60 overlap", at)
	}
}

func TestSwitchedRChargesOutput(t *testing.T) {
	c := NewCircuit()
	vdd := c.Node("vdd")
	out := c.Node("out")
	c.V(vdd, 1.0)
	c.SwitchedR(vdd, out, RampOn(50, 10, 2.0))
	c.SwitchedR(out, Ground, RampOff(50, 10, 2.0))
	c.C(out, Ground, 30)
	res, err := c.Transient(context.Background(), 0, 300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Voltage(out)
	if got := v.At(40); got > 0.05 {
		t.Fatalf("pre-switch output %g, want ~0", got)
	}
	if got := v.At(290); math.Abs(got-1.0) > 0.05 {
		t.Fatalf("post-switch output %g, want ~1", got)
	}
	// Delivered charge ≈ C·V.
	q := res.SupplyCurrent(0).Clip(45, 300).Charge()
	want := 1000 * 30 * 1.0
	if math.Abs(q-want) > 0.2*want {
		t.Fatalf("delivered charge %g, want ≈%g", q, want)
	}
}

func TestRampValidation(t *testing.T) {
	for _, f := range []func(){
		func() { RampOn(0, 0, 1) },
		func() { RampOn(0, 1, 0) },
		func() { RampOff(0, -1, 1) },
		func() {
			c := NewCircuit()
			c.SwitchedR(c.Node("a"), Ground, waveformZero())
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
