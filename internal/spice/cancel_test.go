package spice

import (
	"context"
	"errors"
	"testing"
)

func TestTransientCanceled(t *testing.T) {
	c := NewCircuit()
	vdd := c.Node("vdd")
	mid := c.Node("mid")
	c.V(vdd, 1.0)
	c.R(vdd, mid, 1.0)
	c.R(mid, Ground, 3.0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Transient(ctx, 0, 10, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
