// Package spice is a small transient simulator for linear RC circuits with
// time-varying current sources and ideal voltage sources — the behavioural
// substitute for the paper's HSPICE runs.
//
// It implements modified nodal analysis (MNA) with trapezoidal companion
// models for capacitors. The circuits the WaveMin flow needs are linear
// (the nonlinear transistors are abstracted into the characterized current
// pulses of internal/cell), so a single LU factorization per time step size
// suffices and simulation is fast and unconditionally stable.
//
// Units: volts, kΩ, fF, ps. With these, conductance is mS and current is
// mA internally; the public API takes and returns µA so it composes with
// internal/waveform and internal/cell without conversion factors at call
// sites.
package spice

import (
	"fmt"

	"wavemin/internal/waveform"
)

// Ground is the reference node; it is always index 0 and named "0".
const Ground = 0

// Circuit is a netlist under construction. The zero value is not usable;
// call NewCircuit.
type Circuit struct {
	names   []string
	indexOf map[string]int

	resistors []resistor
	caps      []capacitor
	isources  []isource
	vsources  []vsource
	switched  []switchedR
}

type resistor struct {
	a, b int
	g    float64 // conductance, mS (1/kΩ)
}

type capacitor struct {
	a, b int
	c    float64 // fF
}

type isource struct {
	from, to int
	w        waveform.Waveform // µA, positive = current flows from→to
}

type vsource struct {
	node int
	v    float64 // volts, DC
}

// NewCircuit returns an empty circuit containing only the ground node.
func NewCircuit() *Circuit {
	c := &Circuit{indexOf: map[string]int{"0": Ground}}
	c.names = []string{"0"}
	return c
}

// Node returns the index of the named node, creating it if necessary.
func (c *Circuit) Node(name string) int {
	if i, ok := c.indexOf[name]; ok {
		return i
	}
	i := len(c.names)
	c.names = append(c.names, name)
	c.indexOf[name] = i
	return i
}

// NodeName returns the name of node i.
func (c *Circuit) NodeName(i int) string { return c.names[i] }

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// R adds a resistor of r kΩ between nodes a and b.
func (c *Circuit) R(a, b int, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("spice: non-positive resistance %g", r))
	}
	c.resistors = append(c.resistors, resistor{a: a, b: b, g: 1 / r})
}

// C adds a capacitor of f fF between nodes a and b.
func (c *Circuit) C(a, b int, f float64) {
	if f < 0 {
		panic(fmt.Sprintf("spice: negative capacitance %g", f))
	}
	if f == 0 {
		return
	}
	c.caps = append(c.caps, capacitor{a: a, b: b, c: f})
}

// I adds a time-varying current source drawing w µA from node `from` into
// node `to`. To model a cell pulling current out of a supply rail node n,
// use I(n, Ground, pulse).
func (c *Circuit) I(from, to int, w waveform.Waveform) {
	c.isources = append(c.isources, isource{from: from, to: to, w: w})
}

// V pins a node to a DC voltage (an ideal supply pad).
func (c *Circuit) V(node int, volts float64) {
	c.vsources = append(c.vsources, vsource{node: node, v: volts})
}

// Result holds a transient solution on a uniform time grid.
type Result struct {
	circuit *Circuit
	Times   []float64   // ps
	v       [][]float64 // v[step][node], volts
	isrcV   [][]float64 // isrcV[step][vsourceIdx] branch currents, mA
}

// VoltageAt returns node's voltage at step k.
func (r *Result) VoltageAt(node, k int) float64 { return r.v[k][node] }

// Voltage returns the node's full voltage waveform (volts vs ps).
func (r *Result) Voltage(node int) waveform.Waveform {
	pts := make([]waveform.Point, len(r.Times))
	for k, t := range r.Times {
		pts[k] = waveform.Point{T: t, I: r.v[k][node]}
	}
	return waveform.MustNew(pts)
}

// SupplyCurrent returns the current delivered by the i-th voltage source
// added to the circuit, in µA. This is how "peak current drawn from the
// VDD pad" is measured, mirroring probing a supply in HSPICE.
func (r *Result) SupplyCurrent(i int) waveform.Waveform {
	pts := make([]waveform.Point, len(r.Times))
	for k, t := range r.Times {
		pts[k] = waveform.Point{T: t, I: r.isrcV[k][i] * 1000} // mA→µA
	}
	return waveform.MustNew(pts)
}

// MaxDeviation returns the largest |V(node) − ref| over the run, in volts.
// With ref the nominal rail voltage this is the paper's "voltage
// fluctuation" noise metric.
func (r *Result) MaxDeviation(node int, ref float64) float64 {
	var worst float64
	for k := range r.Times {
		d := r.v[k][node] - ref
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
