package spice

import (
	"errors"
	"fmt"
	"math"
)

// lu is a dense LU factorization with partial pivoting. Transient analysis
// of a linear circuit with a fixed time step solves the same matrix every
// step, so we factor once and back-substitute per step.
type lu struct {
	n    int
	a    [][]float64 // packed L (unit diagonal, below) and U (on/above)
	perm []int       // row permutation
}

// errSingular is returned when the system matrix cannot be factored; in
// circuit terms: a floating node or an inconsistent source loop.
var errSingular = errors.New("spice: singular matrix (floating node or source loop?)")

// factor computes the LU decomposition of a (which is overwritten).
func factor(a [][]float64) (*lu, error) {
	n := len(a)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, best := k, math.Abs(a[k][k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i][k]); v > best {
				p, best = i, v
			}
		}
		if best < 1e-18 {
			return nil, fmt.Errorf("%w: pivot %d", errSingular, k)
		}
		if p != k {
			a[p], a[k] = a[k], a[p]
			perm[p], perm[k] = perm[k], perm[p]
		}
		inv := 1 / a[k][k]
		for i := k + 1; i < n; i++ {
			f := a[i][k] * inv
			a[i][k] = f
			if f == 0 {
				continue
			}
			row, pivRow := a[i], a[k]
			for j := k + 1; j < n; j++ {
				row[j] -= f * pivRow[j]
			}
		}
	}
	return &lu{n: n, a: a, perm: perm}, nil
}

// solve computes x such that A·x = b, writing into x (len n). b is not
// modified.
func (f *lu) solve(b, x []float64) {
	n := f.n
	// Apply permutation and forward-substitute L·y = P·b.
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	for i := 0; i < n; i++ {
		row := f.a[i]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back-substitute U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := f.a[i]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// newMatrix allocates an n×n zero matrix as row slices over one backing
// array.
func newMatrix(n int) [][]float64 {
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}
