package spice

import (
	"context"
	"fmt"

	"wavemin/internal/waveform"
)

// gmin is a tiny conductance added from every node to ground so that nodes
// connected only through capacitors still have a defined DC operating
// point. Standard SPICE practice.
const gmin = 1e-9 // mS

// Transient simulates the circuit from t0 to t1 with a fixed step dt (ps)
// using trapezoidal integration. The initial condition is the DC operating
// point at t0 (capacitors open, sources evaluated at t0). The context is
// checked every time step, so long transients cancel promptly.
func (c *Circuit) Transient(ctx context.Context, t0, t1, dt float64) (*Result, error) {
	if dt <= 0 || t1 <= t0 {
		return nil, fmt.Errorf("spice: bad time window [%g,%g] dt=%g", t0, t1, dt)
	}
	nn := len(c.names) // includes ground
	nv := len(c.vsources)
	dim := (nn - 1) + nv // unknowns: node voltages (minus ground) + branch currents

	if dim == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}

	// idx maps a node number to its matrix row, -1 for ground.
	idx := func(node int) int { return node - 1 }

	stampG := func(m [][]float64, a, b int, g float64) {
		if a != Ground {
			m[idx(a)][idx(a)] += g
		}
		if b != Ground {
			m[idx(b)][idx(b)] += g
		}
		if a != Ground && b != Ground {
			m[idx(a)][idx(b)] -= g
			m[idx(b)][idx(a)] -= g
		}
	}

	buildMatrix := func(withCaps bool, t float64) ([][]float64, error) {
		m := newMatrix(dim)
		for i := 0; i < nn-1; i++ {
			m[i][i] += gmin
		}
		for _, r := range c.resistors {
			stampG(m, r.a, r.b, r.g)
		}
		for _, sw := range c.switched {
			g := sw.g.At(t)
			if g < gmin {
				g = gmin
			}
			stampG(m, sw.a, sw.b, g)
		}
		if withCaps {
			for _, cp := range c.caps {
				stampG(m, cp.a, cp.b, 2*cp.c/dt)
			}
		}
		for k, vs := range c.vsources {
			row := (nn - 1) + k
			if vs.node == Ground {
				return nil, fmt.Errorf("spice: voltage source %d on ground", k)
			}
			m[idx(vs.node)][row] += 1 // branch current leaves the node
			m[row][idx(vs.node)] += 1 // v_node = V
		}
		return m, nil
	}

	// DC operating point: caps open, switches at their t0 state.
	mDC, err := buildMatrix(false, t0)
	if err != nil {
		return nil, err
	}
	luDC, err := factor(mDC)
	if err != nil {
		return nil, fmt.Errorf("spice: DC solve: %w", err)
	}
	rhs := make([]float64, dim)
	x := make([]float64, dim)
	// Source times are queried in ascending order (t0, then each step),
	// so cursors replace per-step binary searches; Cursor.At is
	// bit-identical to Waveform.At for nondecreasing times.
	srcCur := make([]waveform.Cursor, len(c.isources))
	for i, is := range c.isources {
		srcCur[i] = is.w.Cursor()
	}
	fillSources := func(t float64) {
		for i := range rhs {
			rhs[i] = 0
		}
		for i, is := range c.isources {
			cur := srcCur[i].At(t) / 1000 // µA → mA
			if is.from != Ground {
				rhs[idx(is.from)] -= cur
			}
			if is.to != Ground {
				rhs[idx(is.to)] += cur
			}
		}
		for k, vs := range c.vsources {
			rhs[(nn-1)+k] = vs.v
		}
	}
	fillSources(t0)
	luDC.solve(rhs, x)

	// Capacitor state: branch voltage and branch current at current step.
	vc := make([]float64, len(c.caps))
	ic := make([]float64, len(c.caps))
	volt := func(sol []float64, node int) float64 {
		if node == Ground {
			return 0
		}
		return sol[idx(node)]
	}
	for i, cp := range c.caps {
		vc[i] = volt(x, cp.a) - volt(x, cp.b)
		ic[i] = 0 // DC: no current through caps
	}

	// Transient matrix: caps as trapezoidal companions. With switched
	// elements the matrix is time-dependent and re-factored per step;
	// otherwise one factorization serves the whole run.
	timeVarying := len(c.switched) > 0
	var luTR *lu
	if !timeVarying {
		mTR, err := buildMatrix(true, t0)
		if err != nil {
			return nil, err
		}
		luTR, err = factor(mTR)
		if err != nil {
			return nil, fmt.Errorf("spice: transient factor: %w", err)
		}
	}

	steps := int((t1-t0)/dt+0.5) + 1
	res := &Result{
		circuit: c,
		Times:   make([]float64, steps),
		v:       make([][]float64, steps),
		isrcV:   make([][]float64, steps),
	}
	record := func(k int, t float64, sol []float64) {
		res.Times[k] = t
		row := make([]float64, nn)
		for node := 1; node < nn; node++ {
			row[node] = sol[idx(node)]
		}
		res.v[k] = row
		br := make([]float64, nv)
		for i := range br {
			// Branch unknown is current flowing out of the node into the
			// source; the supply *delivers* the negative of that.
			br[i] = -sol[(nn-1)+i]
		}
		res.isrcV[k] = br
	}
	record(0, t0, x)

	xNext := make([]float64, dim)
	for k := 1; k < steps; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := t0 + float64(k)*dt
		if timeVarying {
			mTR, err := buildMatrix(true, t)
			if err != nil {
				return nil, err
			}
			luTR, err = factor(mTR)
			if err != nil {
				return nil, fmt.Errorf("spice: transient factor at t=%g: %w", t, err)
			}
		}
		fillSources(t)
		for i, cp := range c.caps {
			geq := 2 * cp.c / dt
			ieq := geq*vc[i] + ic[i]
			// Companion current source pushes ieq from b to a.
			if cp.a != Ground {
				rhs[idx(cp.a)] += ieq
			}
			if cp.b != Ground {
				rhs[idx(cp.b)] -= ieq
			}
		}
		luTR.solve(rhs, xNext)
		// Update capacitor states.
		for i, cp := range c.caps {
			geq := 2 * cp.c / dt
			newVc := volt(xNext, cp.a) - volt(xNext, cp.b)
			newIc := geq*(newVc-vc[i]) - ic[i]
			vc[i], ic[i] = newVc, newIc
		}
		record(k, t, xNext)
		x, xNext = xNext, x
	}
	return res, nil
}
