// Package faultinject provides named, hook-based fault-injection sites for
// testing the robustness of the optimization pipeline: panics, delays and
// cancellations can be injected at well-known points inside the solvers
// without build tags or test-only compilation units.
//
// Production code calls At("pkg.Site") at interesting points; the call is
// a single atomic load when no hooks are registered, so instrumented hot
// loops pay essentially nothing in normal operation. Tests register hooks
// with Set and must Reset (typically via t.Cleanup) when done.
//
// Hooks run synchronously on the calling goroutine, so a hook may panic
// (to exercise recover boundaries), sleep (to exercise deadlines), or
// block on a channel until the test cancels a context (to exercise prompt
// cancellation) — whatever the test needs.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Well-known site names. Production code should use these constants so
// tests and implementation cannot drift apart.
const (
	SiteMospSolve      = "mosp.Solve"       // entry of the ε-approximate solver
	SiteMospSolveLayer = "mosp.Solve.layer" // before each layer expansion
	SiteMospSolveFast  = "mosp.SolveFast"   // entry of the greedy variant
	SiteMultimodeZone  = "multimode.zone"   // before each per-zone solve
	SitePowergridSim   = "powergrid.Simulate"
	SitePolarityZone   = "polarity.zone" // before each per-zone solve
	SitePeakminSolve   = "peakmin.Solve"

	// Dispatch-layer sites, used by the chaos e2e suite to kill workers
	// mid-solve and to drop heartbeats.
	SiteWorkerExecute   = "dispatch.worker.execute"   // before a worker runs a leased job
	SiteWorkerHeartbeat = "dispatch.worker.heartbeat" // before each heartbeat send

	// Durability-layer error sites (see ErrAt): the WAL and the
	// content-addressed store consult these before the corresponding IO,
	// so the recovery suite can make fsyncs fail, renames fail, and
	// appends tear mid-record without a real disk fault.
	SiteWALSync       = "wal.sync"       // before fsync of a journal segment
	SiteWALAppend     = "wal.append"     // before writing a batch of records; an injected error tears the batch mid-frame
	SiteCastoreWrite  = "castore.write"  // before writing an entry's temp file
	SiteCastoreRename = "castore.rename" // before the tmp→final rename
	SiteCastoreSync   = "castore.sync"   // before fsync of an entry file
)

var (
	active atomic.Int32 // number of registered hooks (At + ErrAt); 0 = fast path
	mu     sync.Mutex
	hooks  = make(map[string]func())
	errs   = make(map[string]func() error)
)

// At runs the hook registered for site, if any. Safe for concurrent use;
// near-zero cost when no hooks are registered.
func At(site string) {
	if active.Load() == 0 {
		return
	}
	mu.Lock()
	fn := hooks[site]
	mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Set registers fn to run at every subsequent At(site), replacing any
// previous hook for that site. A nil fn clears the site.
func Set(site string, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	_, had := hooks[site]
	if fn == nil {
		if had {
			delete(hooks, site)
			active.Add(-1)
		}
		return
	}
	hooks[site] = fn
	if !had {
		active.Add(1)
	}
}

// ErrAt returns the error injected at site, if any. Durability code
// (WAL fsync, castore rename) consults it before the real IO so tests
// can simulate disk faults; like At, it is a single atomic load when no
// hooks are registered.
func ErrAt(site string) error {
	if active.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := errs[site]
	mu.Unlock()
	if fn != nil {
		return fn()
	}
	return nil
}

// SetErr registers fn as the error source for ErrAt(site), replacing any
// previous one. fn returning nil lets the IO proceed — so a hook can
// fail only the Nth call. A nil fn clears the site.
func SetErr(site string, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	_, had := errs[site]
	if fn == nil {
		if had {
			delete(errs, site)
			active.Add(-1)
		}
		return
	}
	errs[site] = fn
	if !had {
		active.Add(1)
	}
}

// Clear removes the hook for site, if any.
func Clear(site string) { Set(site, nil) }

// Reset removes every registered hook. Tests should defer this (or use
// t.Cleanup) so hooks never leak across tests.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for k := range hooks {
		delete(hooks, k)
	}
	for k := range errs {
		delete(errs, k)
	}
	active.Store(0)
}
