package faultinject

import (
	"sync"
	"testing"
)

func TestNoHookIsNoop(t *testing.T) {
	Reset()
	At("nonexistent") // must not panic or block
}

func TestSetFiresAndClearStops(t *testing.T) {
	defer Reset()
	n := 0
	Set("x", func() { n++ })
	At("x")
	At("x")
	if n != 2 {
		t.Fatalf("hook fired %d times, want 2", n)
	}
	Clear("x")
	At("x")
	if n != 2 {
		t.Fatalf("hook fired after Clear")
	}
}

func TestSetNilClears(t *testing.T) {
	defer Reset()
	Set("x", func() { t.Fatal("should not fire") })
	Set("x", nil)
	At("x")
	if active.Load() != 0 {
		t.Fatalf("active = %d after clearing the only hook", active.Load())
	}
}

func TestPanicPropagates(t *testing.T) {
	defer Reset()
	Set("boom", func() { panic("injected") })
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recovered %v, want injected panic", r)
		}
	}()
	At("boom")
}

func TestConcurrentAccess(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				Set("c", func() {})
				At("c")
				Clear("c")
			}
		}()
	}
	wg.Wait()
}
