// Package mosp solves the multi-objective shortest path problem on the
// layered DAGs produced by the WaveMin→MOSP conversion (paper §V-B,
// Algorithm 1, Fig. 9).
//
// Graph shape: one layer per sink; one vertex per feasible (sink, cell)
// assignment; every vertex of layer i has an arc from every vertex of
// layer i−1; arc weights depend only on the destination vertex (the noise
// vector of that assignment over the sample set S); arcs into the dest
// vertex carry the non-leaf baseline vector (Observation 1). A src→dest
// path therefore picks exactly one vertex per layer and its cost is the
// component-wise sum of the picked weights plus the baseline.
//
// Solvers:
//
//   - Solve: label-correcting Pareto dynamic programming with Warburton's
//     coordinate-scaling ε-approximation [33] plus an admissible incumbent
//     bound, returning the min–max (max-ordering) path.
//   - SolveGreedy: layer-by-layer greedy; used for the incumbent bound.
//   - SolveFast: the paper's ClkWaveMin-f vertex-selection heuristic.
//   - SolveExhaustive: brute force, the test oracle.
//
// The label-expansion hot loop is allocation-free in steady state: cost
// vectors live in two chunked float arenas that double-buffer across
// layers, label structs come from a chunked slab (stable addresses, so
// prev chains survive), and round-key deduplication uses an FNV-1a hash
// of the quantized coordinates with collision-checked equality instead of
// a string-keyed map.
package mosp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"wavemin/internal/faultinject"
	"wavemin/internal/obs"
)

// solveStats accumulates hot-loop counters. It is allocated only when the
// context carries a telemetry span, so the disabled path stays exactly as
// allocation-free as before; the loop guards are plain nil checks.
type solveStats struct {
	expanded  int64 // labels materialized (post incumbent prune)
	pruned    int64 // partial paths killed by the incumbent bound
	dedupHits int64 // Warburton round-key merges
	capped    int64 // layers where the MaxLabels safety valve fired
}

// flush records the counters onto the span (nil-safe).
func (st *solveStats) flush(sp *obs.Span) {
	if st == nil {
		return
	}
	sp.Count("mosp.labels_expanded", st.expanded)
	sp.Count("mosp.pruned", st.pruned)
	sp.Count("mosp.dedup_hits", st.dedupHits)
	sp.Count("mosp.capped_layers", st.capped)
}

// Vertex is one assignment option in a layer.
type Vertex struct {
	// Weight is the option's noise vector over the sample set (length =
	// the graph dimension r).
	Weight []float64
	// Tag is an opaque caller identifier (e.g. index into a cell list).
	Tag int
}

// Graph is a layered MOSP instance.
type Graph struct {
	// Baseline is the weight of every arc into dest: the accumulated
	// non-leaf noise vector. May be nil (treated as zero).
	Baseline []float64
	// Layers holds the per-sink option vertices. Every layer must be
	// non-empty.
	Layers [][]Vertex
}

// Dim returns the weight dimension r.
func (g *Graph) Dim() int {
	if len(g.Baseline) > 0 {
		return len(g.Baseline)
	}
	for _, l := range g.Layers {
		for _, v := range l {
			return len(v.Weight)
		}
	}
	return 0
}

// Validate checks structural consistency: non-empty layers, uniform
// dimension, non-negative finite weights (noise values are currents).
func (g *Graph) Validate() error {
	r := g.Dim()
	if r == 0 {
		return fmt.Errorf("mosp: zero-dimensional graph")
	}
	if g.Baseline != nil && len(g.Baseline) != r {
		return fmt.Errorf("mosp: baseline dim %d != %d", len(g.Baseline), r)
	}
	for _, b := range g.Baseline {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("mosp: bad baseline value %g", b)
		}
	}
	if len(g.Layers) == 0 {
		return fmt.Errorf("mosp: no layers")
	}
	for i, l := range g.Layers {
		if len(l) == 0 {
			return fmt.Errorf("mosp: layer %d empty (infeasible instance)", i)
		}
		for j, v := range l {
			if len(v.Weight) != r {
				return fmt.Errorf("mosp: layer %d vertex %d dim %d != %d", i, j, len(v.Weight), r)
			}
			for _, w := range v.Weight {
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return fmt.Errorf("mosp: layer %d vertex %d bad weight %g", i, j, w)
				}
			}
		}
	}
	return nil
}

// Solution is a src→dest path: one pick per layer.
type Solution struct {
	Picks []int     // vertex index per layer
	Cost  []float64 // exact summed vector including the baseline
	Max   float64   // max over Cost — the min–max objective value
}

func (g *Graph) solutionFor(picks []int) Solution {
	r := g.Dim()
	cost := make([]float64, r) // make zeroes; copy below covers a nil baseline
	copy(cost, g.Baseline)
	for li, pi := range picks {
		for s, w := range g.Layers[li][pi].Weight {
			cost[s] += w
		}
	}
	m := math.Inf(-1)
	for _, c := range cost {
		if c > m {
			m = c
		}
	}
	return Solution{Picks: picks, Cost: cost, Max: m}
}

// SolveGreedy picks, layer by layer, the vertex minimizing the running
// max (baseline included). Fast, and its value upper-bounds the optimum —
// used as the incumbent for Solve's pruning.
func SolveGreedy(g *Graph) (Solution, error) {
	if err := g.Validate(); err != nil {
		return Solution{}, err
	}
	r := g.Dim()
	run := make([]float64, r)
	copy(run, g.Baseline)
	picks := make([]int, len(g.Layers))
	for li, layer := range g.Layers {
		best, bestMax := -1, math.Inf(1)
		for vi, v := range layer {
			m := math.Inf(-1)
			for s := 0; s < r; s++ {
				if c := run[s] + v.Weight[s]; c > m {
					m = c
				}
			}
			if m < bestMax {
				best, bestMax = vi, m
			}
		}
		picks[li] = best
		for s := 0; s < r; s++ {
			run[s] += layer[best].Weight[s]
		}
	}
	return g.solutionFor(picks), nil
}

// fastEntry is one layer's cached best in SolveFast's lazy heap: the
// least noise-worsening M over the layer's vertices, computed against the
// running sum at some earlier round.
type fastEntry struct {
	m  float64
	li int // layer index (also the tie-break: lower layer wins)
	vi int // first vertex achieving m in layer scan order
}

func fastLess(a, b fastEntry) bool {
	return a.m < b.m || (a.m == b.m && a.li < b.li)
}

func fastSiftDown(h []fastEntry, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && fastLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && fastLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// SolveFast implements the paper's ClkWaveMin-f (§V-C): starting from the
// non-leaf baseline, repeatedly select — over all still-unassigned layers
// and all their vertices — the vertex v with the least noise-worsening
// M(v) = max_s(sum_s + noise(v,s)), assign it, and remove its layer.
//
// Rather than rescanning every remaining layer each round (O(|S|·|L|²·W)),
// each layer's best (M, vertex) is cached in a min-heap keyed by (M,
// layer). The running sum only ever grows, so a cached M is a lower bound
// on the layer's true M; per round only the layers that surface at the
// heap top are recomputed against the current sum, and a layer whose
// recomputed M still wins the (M, layer) order is exactly the pick the
// full rescan would have made — including ties, which both orders break
// toward the lower layer index and the first vertex in scan order.
// Cancellation is checked once per selection round.
func SolveFast(ctx context.Context, g *Graph) (Solution, error) {
	if err := g.Validate(); err != nil {
		return Solution{}, err
	}
	faultinject.At(faultinject.SiteMospSolveFast)
	sp := obs.FromContext(ctx)
	var recomputes int64
	r := g.Dim()
	sum := make([]float64, r)
	copy(sum, g.Baseline)
	nl := len(g.Layers)
	picks := make([]int, nl)
	for i := range picks {
		picks[i] = -1
	}

	recompute := func(li int) (float64, int) {
		bestVi, bestM := -1, math.Inf(1)
		for vi, v := range g.Layers[li] {
			m := math.Inf(-1)
			for s := 0; s < r; s++ {
				if c := sum[s] + v.Weight[s]; c > m {
					m = c
				}
			}
			if m < bestM {
				bestVi, bestM = vi, m
			}
		}
		return bestM, bestVi
	}

	heap := make([]fastEntry, nl)
	stamp := make([]int, nl) // round at which heap entry li was computed
	for li := range g.Layers {
		m, vi := recompute(li)
		heap[li] = fastEntry{m: m, li: li, vi: vi}
	}
	for i := nl/2 - 1; i >= 0; i-- {
		fastSiftDown(heap, i)
	}

	for round := 0; round < nl; round++ {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		// Settle the top: recompute stale entries (their M can only have
		// grown) until the minimum is current.
		for stamp[heap[0].li] != round {
			li := heap[0].li
			heap[0].m, heap[0].vi = recompute(li)
			if sp != nil {
				recomputes++
			}
			stamp[li] = round
			fastSiftDown(heap, 0)
		}
		e := heap[0]
		picks[e.li] = e.vi
		for s, w := range g.Layers[e.li][e.vi].Weight {
			sum[s] += w
		}
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		if len(heap) > 0 {
			fastSiftDown(heap, 0)
		}
	}
	if sp != nil {
		sp.Count("mosp.fast_rounds", int64(nl))
		sp.Count("mosp.fast_recomputes", recomputes)
	}
	return g.solutionFor(picks), nil
}

// SolveExhaustive enumerates every path — the test oracle. It refuses
// instances with more than ~200k paths.
func SolveExhaustive(g *Graph) (Solution, error) {
	if err := g.Validate(); err != nil {
		return Solution{}, err
	}
	paths := 1
	for _, l := range g.Layers {
		paths *= len(l)
		if paths > 200_000 {
			return Solution{}, fmt.Errorf("mosp: exhaustive refused (%d+ paths)", paths)
		}
	}
	r := g.Dim()
	picks := make([]int, len(g.Layers))
	bestPicks := make([]int, len(g.Layers))
	bestMax := math.Inf(1)
	run := make([]float64, r)
	copy(run, g.Baseline)
	var rec func(li int)
	rec = func(li int) {
		if li == len(g.Layers) {
			m := math.Inf(-1)
			for _, c := range run {
				if c > m {
					m = c
				}
			}
			if m < bestMax {
				bestMax = m
				copy(bestPicks, picks)
			}
			return
		}
		for vi, v := range g.Layers[li] {
			picks[li] = vi
			for s, w := range v.Weight {
				run[s] += w
			}
			rec(li + 1)
			for s, w := range v.Weight {
				run[s] -= w
			}
		}
	}
	rec(0)
	return g.solutionFor(bestPicks), nil
}

// label is a partial path in the Pareto DP. Label structs are slab
// allocated (stable addresses) and their cost slices point into the
// expander's float arenas.
type label struct {
	cost  []float64 // exact, baseline included
	max   float64   // max over cost
	layer int32     // last assigned layer
	pick  int32     // vertex picked in that layer
	prev  *label
}

// Options tunes Solve.
type Options struct {
	// Epsilon is Warburton's approximation parameter: the returned min–max
	// value is within (1+Epsilon) of optimal (subject to MaxLabels).
	Epsilon float64
	// MaxLabels caps the label set per layer as a memory/time safety
	// valve. When hit, the labels with the smallest current max survive;
	// the ε guarantee then degrades gracefully. 0 = default.
	MaxLabels int
	// WarmLabels / WarmFrontier are warm-start capacity hints from a prior
	// solve of a similar instance (ECO mode): expected label expansions and
	// final frontier size. They pre-size the label slab, the per-layer
	// frontier slice, and the dedup map — and do nothing else. No pruning
	// bound, tie-break, or cap depends on them, so the solution (and every
	// result byte derived from it) is identical with or without hints; a
	// stale hint costs memory or speed, never correctness. 0 = cold sizing.
	WarmLabels   int
	WarmFrontier int
	// Info, when non-nil, receives the solve-effort stats a later warm
	// start feeds back as hints.
	Info *SolveInfo
}

// SolveInfo reports how much work a Solve did — the numbers a warm start
// reuses as capacity hints.
type SolveInfo struct {
	Expanded int // labels materialized (post incumbent prune)
	Frontier int // labels on the final frontier
}

// DefaultMaxLabels bounds the per-layer Pareto set.
const DefaultMaxLabels = 50_000

// floatArena hands out fixed-dimension cost vectors from chunked backing
// arrays. Chunks are never reallocated, so previously returned slices
// stay valid until reset; reset recycles all chunks without freeing them.
type floatArena struct {
	chunks    [][]float64
	ci        int // index of the chunk currently being filled
	chunkSize int
}

func newFloatArena(r int) *floatArena {
	size := 1 << 14
	if size < 4*r {
		size = 4 * r
	}
	return &floatArena{chunkSize: size}
}

func (a *floatArena) alloc(r int) []float64 {
	for {
		if a.ci >= len(a.chunks) {
			a.chunks = append(a.chunks, make([]float64, 0, a.chunkSize))
		}
		c := a.chunks[a.ci]
		if len(c)+r <= cap(c) {
			a.chunks[a.ci] = c[:len(c)+r]
			return a.chunks[a.ci][len(c) : len(c)+r : len(c)+r]
		}
		a.ci++
	}
}

// unalloc returns the most recent alloc (LIFO) to the arena — used when a
// label is pruned before being kept. Must not be interleaved with other
// allocs.
func (a *floatArena) unalloc(r int) {
	c := a.chunks[a.ci]
	a.chunks[a.ci] = c[:len(c)-r]
}

func (a *floatArena) reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.ci = 0
}

// labelArena slab-allocates labels in fixed chunks so pointers remain
// stable (prev chains) while amortizing allocation to one make per chunk.
// firstChunk, when positive, sizes the initial chunk — the warm-start
// hint's only effect is fewer chunk allocations.
type labelArena struct {
	chunks     [][]label
	firstChunk int
}

const labelChunkSize = 1024

func (a *labelArena) alloc() *label {
	if n := len(a.chunks); n == 0 || len(a.chunks[n-1]) == cap(a.chunks[n-1]) {
		size := labelChunkSize
		if len(a.chunks) == 0 && a.firstChunk > size {
			size = a.firstChunk
		}
		a.chunks = append(a.chunks, make([]label, 0, size))
	}
	c := &a.chunks[len(a.chunks)-1]
	*c = append(*c, label{})
	return &(*c)[len(*c)-1]
}

// Solve finds the (1+ε)-approximate min–max path via Pareto dynamic
// programming with coordinate scaling and incumbent pruning. The context
// is checked at every layer and periodically inside the label-expansion
// loop, so even pathologically wide instances cancel promptly.
func Solve(ctx context.Context, g *Graph, opt Options) (Solution, error) {
	if err := g.Validate(); err != nil {
		return Solution{}, err
	}
	faultinject.At(faultinject.SiteMospSolve)
	if opt.Epsilon < 0 {
		return Solution{}, fmt.Errorf("mosp: negative epsilon %g", opt.Epsilon)
	}
	if opt.MaxLabels <= 0 {
		opt.MaxLabels = DefaultMaxLabels
	}
	sp := obs.FromContext(ctx)
	var st *solveStats
	if sp != nil || opt.Info != nil {
		st = &solveStats{}
	}
	if sp != nil {
		sp.Count("mosp.layers", int64(len(g.Layers)))
	}
	// Incumbent from the greedy; its value bounds the optimum from above.
	greedy, err := SolveGreedy(g)
	if err != nil {
		return Solution{}, err
	}
	frontier, err := expandLayers(ctx, g, opt, greedy.Max, true, st)
	if sp != nil {
		st.flush(sp)
	}
	if err != nil {
		return Solution{}, err
	}
	if sp != nil {
		sp.Count("mosp.frontier", int64(len(frontier)))
	}
	if opt.Info != nil {
		opt.Info.Expanded = int(st.expanded)
		opt.Info.Frontier = len(frontier)
	}
	if len(frontier) == 0 {
		// Numerical corner: everything pruned against UB. The greedy
		// solution is then optimal within tolerance.
		return greedy, nil
	}
	best := frontier[0]
	for _, lb := range frontier[1:] {
		if lb.max < best.max {
			best = lb
		}
	}
	if best.max >= greedy.Max {
		return greedy, nil
	}
	picks := make([]int, len(g.Layers))
	for lb := best; lb != nil && lb.layer >= 0; lb = lb.prev {
		picks[lb.layer] = int(lb.pick)
	}
	return g.solutionFor(picks), nil
}

// expandLayers runs the Pareto label expansion over every layer and
// returns the dest frontier (nil/empty when everything was pruned against
// the incumbent upper bound ub). Shared by Solve and paretoCount.
func expandLayers(ctx context.Context, g *Graph, opt Options, ub float64, sites bool, st *solveStats) ([]*label, error) {
	r := g.Dim()
	// Warburton scaling: rounding each coordinate down to a multiple of δ
	// changes any path's coordinate by < |L|·δ = ε·UB ≤ ε·OPT-scale, so
	// dedup on rounded keys preserves a (1+ε)-optimal representative.
	delta := 0.0
	if opt.Epsilon > 0 && ub > 0 {
		delta = opt.Epsilon * ub / float64(len(g.Layers))
	}

	// Warm-start capacity hints: strictly pre-sizing. Clamped so a stale
	// or hostile hint can only waste a bounded allocation, and bounded by
	// MaxLabels since no frontier outgrows the safety valve by more than
	// one layer's expansion.
	const warmClamp = 1 << 18
	warmLabels := min(opt.WarmLabels, warmClamp)
	warmFrontier := min(opt.WarmFrontier, min(opt.MaxLabels, warmClamp))

	labels := &labelArena{firstChunk: warmLabels}
	// Cost vectors double-buffer between two arenas: the current frontier
	// reads from one while the next layer writes into the other; the swap
	// recycles the now-dead frontier costs without any per-label GC work.
	// (Only the costs are recycled — label structs persist for the prev
	// chains, which no longer need their cost vectors.)
	arenas := [2]*floatArena{newFloatArena(r), newFloatArena(r)}
	cur := 0

	base := arenas[cur].alloc(r)
	n := copy(base, g.Baseline)
	for i := n; i < r; i++ {
		base[i] = 0 // arena memory is recycled, not zeroed
	}
	start := labels.alloc()
	*start = label{cost: base, max: maxOf(base), layer: -1, pick: -1}
	frontier := []*label{start}
	nextCap := 64
	if warmFrontier > nextCap {
		nextCap = warmFrontier
	}
	next := make([]*label, 0, nextCap)
	var seen map[uint64]int32
	if delta > 0 {
		seenCap := 256
		if warmFrontier > seenCap {
			seenCap = warmFrontier
		}
		seen = make(map[uint64]int32, seenCap)
	}

	for li, layer := range g.Layers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if sites {
			faultinject.At(faultinject.SiteMospSolveLayer)
		}
		nextArena := arenas[1-cur]
		next = next[:0]
		if delta > 0 {
			clear(seen)
		}
		for fi, lb := range frontier {
			if fi%1024 == 1023 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			for vi := range layer {
				v := &layer[vi]
				cost := nextArena.alloc(r)
				m := math.Inf(-1)
				pruned := false
				for s := 0; s < r; s++ {
					c := lb.cost[s] + v.Weight[s]
					// Incumbent prune, hoisted ahead of the remaining cost
					// writes: weights are non-negative, so the final max
					// can only grow; anything already above UB is dead
					// (ties kept to preserve the greedy path itself).
					if c > ub+1e-12 {
						pruned = true
						break
					}
					cost[s] = c
					if c > m {
						m = c
					}
				}
				if pruned {
					if st != nil {
						st.pruned++
					}
					nextArena.unalloc(r)
					continue
				}
				if st != nil {
					st.expanded++
				}
				nl := labels.alloc()
				*nl = label{cost: cost, max: m, layer: int32(li), pick: int32(vi), prev: lb}
				if delta > 0 {
					h := hashQuantized(cost, delta)
					if idx, ok := seen[h]; ok {
						if sameQuantized(next[idx].cost, cost, delta) {
							if st != nil {
								st.dedupHits++
							}
							// Keep the better representative by replacing
							// the slot's pointer — never by overwriting the
							// stored label in place, which would alias two
							// logically distinct labels.
							if nl.max < next[idx].max {
								next[idx] = nl
							}
							continue
						}
						// True hash collision (equal hash, different
						// quantized coordinates): keep both labels; the
						// first occupant keeps the dedup slot. Costs only
						// the missed dedup, never correctness.
					} else {
						seen[h] = int32(len(next))
					}
				}
				next = append(next, nl)
			}
		}
		// Pareto dominance filter (exact costs) when affordable.
		if len(next) <= 2048 {
			next = paretoFilter(next, r)
		}
		// Safety valve.
		if len(next) > opt.MaxLabels {
			if st != nil {
				st.capped++
			}
			sort.Slice(next, func(i, j int) bool { return next[i].max < next[j].max })
			next = next[:opt.MaxLabels]
		}
		if len(next) == 0 {
			return nil, nil
		}
		frontier, next = next, frontier
		arenas[cur].reset()
		cur = 1 - cur
	}
	return frontier, nil
}

// ParetoSize reports how many labels survive at the dest layer for the
// given ε — an observability hook for the complexity experiments.
func ParetoSize(g *Graph, opt Options) (int, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	return paretoCount(g, opt), nil
}

func paretoCount(g *Graph, opt Options) int {
	if opt.MaxLabels <= 0 {
		opt.MaxLabels = DefaultMaxLabels
	}
	greedy, _ := SolveGreedy(g)
	frontier, err := expandLayers(context.Background(), g, opt, greedy.Max, false, nil)
	if err != nil {
		return 0
	}
	return len(frontier)
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	if len(v) == 0 {
		return 0
	}
	return m
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashQuantized is FNV-1a over the little-endian bytes of each coordinate
// rounded down to a multiple of delta — the allocation-free replacement
// for the old string round-key.
func hashQuantized(cost []float64, delta float64) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range cost {
		q := uint64(c / delta)
		for b := 0; b < 8; b++ {
			h ^= q & 0xff
			h *= fnvPrime64
			q >>= 8
		}
	}
	return h
}

// sameQuantized reports whether two cost vectors round to the same
// Warburton key — the collision check behind hashQuantized.
func sameQuantized(a, b []float64, delta float64) bool {
	for s := range a {
		if uint64(a[s]/delta) != uint64(b[s]/delta) {
			return false
		}
	}
	return true
}

// paretoFilter removes labels dominated by another label (≤ on every
// coordinate, < on at least one implied by distinctness handling: we treat
// equal vectors as mutually dominating and keep one).
func paretoFilter(labels []*label, r int) []*label {
	// Sort by max ascending: a label can only be dominated by one with a
	// smaller-or-equal max.
	sort.Slice(labels, func(i, j int) bool { return labels[i].max < labels[j].max })
	out := labels[:0]
	for _, cand := range labels {
		dominated := false
		for _, kept := range out {
			// A kept label whose max strictly exceeds the candidate's max
			// cannot dominate it — the maxes already order the pair, so
			// skip the full coordinate scan.
			if kept.max > cand.max+1e-15 {
				continue
			}
			if dominates(kept.cost, cand.cost, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, cand)
		}
	}
	return out
}

func dominates(a, b []float64, r int) bool {
	for s := 0; s < r; s++ {
		if a[s] > b[s]+1e-15 {
			return false
		}
	}
	return true
}
