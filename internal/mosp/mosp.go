// Package mosp solves the multi-objective shortest path problem on the
// layered DAGs produced by the WaveMin→MOSP conversion (paper §V-B,
// Algorithm 1, Fig. 9).
//
// Graph shape: one layer per sink; one vertex per feasible (sink, cell)
// assignment; every vertex of layer i has an arc from every vertex of
// layer i−1; arc weights depend only on the destination vertex (the noise
// vector of that assignment over the sample set S); arcs into the dest
// vertex carry the non-leaf baseline vector (Observation 1). A src→dest
// path therefore picks exactly one vertex per layer and its cost is the
// component-wise sum of the picked weights plus the baseline.
//
// Solvers:
//
//   - Solve: label-correcting Pareto dynamic programming with Warburton's
//     coordinate-scaling ε-approximation [33] plus an admissible incumbent
//     bound, returning the min–max (max-ordering) path.
//   - SolveGreedy: layer-by-layer greedy; used for the incumbent bound.
//   - SolveFast: the paper's ClkWaveMin-f vertex-selection heuristic.
//   - SolveExhaustive: brute force, the test oracle.
package mosp

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"wavemin/internal/faultinject"
)

// Vertex is one assignment option in a layer.
type Vertex struct {
	// Weight is the option's noise vector over the sample set (length =
	// the graph dimension r).
	Weight []float64
	// Tag is an opaque caller identifier (e.g. index into a cell list).
	Tag int
}

// Graph is a layered MOSP instance.
type Graph struct {
	// Baseline is the weight of every arc into dest: the accumulated
	// non-leaf noise vector. May be nil (treated as zero).
	Baseline []float64
	// Layers holds the per-sink option vertices. Every layer must be
	// non-empty.
	Layers [][]Vertex
}

// Dim returns the weight dimension r.
func (g *Graph) Dim() int {
	if len(g.Baseline) > 0 {
		return len(g.Baseline)
	}
	for _, l := range g.Layers {
		for _, v := range l {
			return len(v.Weight)
		}
	}
	return 0
}

// Validate checks structural consistency: non-empty layers, uniform
// dimension, non-negative finite weights (noise values are currents).
func (g *Graph) Validate() error {
	r := g.Dim()
	if r == 0 {
		return fmt.Errorf("mosp: zero-dimensional graph")
	}
	if g.Baseline != nil && len(g.Baseline) != r {
		return fmt.Errorf("mosp: baseline dim %d != %d", len(g.Baseline), r)
	}
	for _, b := range g.Baseline {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("mosp: bad baseline value %g", b)
		}
	}
	if len(g.Layers) == 0 {
		return fmt.Errorf("mosp: no layers")
	}
	for i, l := range g.Layers {
		if len(l) == 0 {
			return fmt.Errorf("mosp: layer %d empty (infeasible instance)", i)
		}
		for j, v := range l {
			if len(v.Weight) != r {
				return fmt.Errorf("mosp: layer %d vertex %d dim %d != %d", i, j, len(v.Weight), r)
			}
			for _, w := range v.Weight {
				if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return fmt.Errorf("mosp: layer %d vertex %d bad weight %g", i, j, w)
				}
			}
		}
	}
	return nil
}

// Solution is a src→dest path: one pick per layer.
type Solution struct {
	Picks []int     // vertex index per layer
	Cost  []float64 // exact summed vector including the baseline
	Max   float64   // max over Cost — the min–max objective value
}

func (g *Graph) solutionFor(picks []int) Solution {
	r := g.Dim()
	cost := make([]float64, r)
	copy(cost, g.Baseline)
	if g.Baseline == nil {
		for i := range cost {
			cost[i] = 0
		}
	}
	for li, pi := range picks {
		for s, w := range g.Layers[li][pi].Weight {
			cost[s] += w
		}
	}
	m := math.Inf(-1)
	for _, c := range cost {
		if c > m {
			m = c
		}
	}
	return Solution{Picks: picks, Cost: cost, Max: m}
}

// SolveGreedy picks, layer by layer, the vertex minimizing the running
// max (baseline included). Fast, and its value upper-bounds the optimum —
// used as the incumbent for Solve's pruning.
func SolveGreedy(g *Graph) (Solution, error) {
	if err := g.Validate(); err != nil {
		return Solution{}, err
	}
	r := g.Dim()
	run := make([]float64, r)
	copy(run, g.Baseline)
	picks := make([]int, len(g.Layers))
	for li, layer := range g.Layers {
		best, bestMax := -1, math.Inf(1)
		for vi, v := range layer {
			m := math.Inf(-1)
			for s := 0; s < r; s++ {
				if c := run[s] + v.Weight[s]; c > m {
					m = c
				}
			}
			if m < bestMax {
				best, bestMax = vi, m
			}
		}
		picks[li] = best
		for s := 0; s < r; s++ {
			run[s] += layer[best].Weight[s]
		}
	}
	return g.solutionFor(picks), nil
}

// SolveFast implements the paper's ClkWaveMin-f (§V-C): starting from the
// non-leaf baseline, repeatedly select — over all still-unassigned layers
// and all their vertices — the vertex v with the least noise-worsening
// M(v) = max_s(sum_s + noise(v,s)), assign it, and remove its layer.
// O(|S|·|L|²·maxWidth) time, O(|S|) extra space. Cancellation is checked
// once per selection round.
func SolveFast(ctx context.Context, g *Graph) (Solution, error) {
	if err := g.Validate(); err != nil {
		return Solution{}, err
	}
	faultinject.At(faultinject.SiteMospSolveFast)
	r := g.Dim()
	sum := make([]float64, r)
	copy(sum, g.Baseline)
	picks := make([]int, len(g.Layers))
	for i := range picks {
		picks[i] = -1
	}
	for remaining := len(g.Layers); remaining > 0; remaining-- {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		bestLayer, bestVertex, bestM := -1, -1, math.Inf(1)
		for li, layer := range g.Layers {
			if picks[li] >= 0 {
				continue
			}
			for vi, v := range layer {
				m := math.Inf(-1)
				for s := 0; s < r; s++ {
					if c := sum[s] + v.Weight[s]; c > m {
						m = c
					}
				}
				if m < bestM {
					bestLayer, bestVertex, bestM = li, vi, m
				}
			}
		}
		picks[bestLayer] = bestVertex
		for s, w := range g.Layers[bestLayer][bestVertex].Weight {
			sum[s] += w
		}
	}
	return g.solutionFor(picks), nil
}

// SolveExhaustive enumerates every path — the test oracle. It refuses
// instances with more than ~200k paths.
func SolveExhaustive(g *Graph) (Solution, error) {
	if err := g.Validate(); err != nil {
		return Solution{}, err
	}
	paths := 1
	for _, l := range g.Layers {
		paths *= len(l)
		if paths > 200_000 {
			return Solution{}, fmt.Errorf("mosp: exhaustive refused (%d+ paths)", paths)
		}
	}
	r := g.Dim()
	picks := make([]int, len(g.Layers))
	best := Solution{Max: math.Inf(1)}
	run := make([]float64, r)
	var rec func(li int)
	rec = func(li int) {
		if li == len(g.Layers) {
			m := math.Inf(-1)
			for _, c := range run {
				if c > m {
					m = c
				}
			}
			if m < best.Max {
				best = g.solutionFor(append([]int(nil), picks...))
			}
			return
		}
		for vi, v := range g.Layers[li] {
			picks[li] = vi
			for s, w := range v.Weight {
				run[s] += w
			}
			rec(li + 1)
			for s, w := range v.Weight {
				run[s] -= w
			}
		}
	}
	copy(run, g.Baseline)
	if g.Baseline == nil {
		for i := range run {
			run[i] = 0
		}
	}
	rec(0)
	return best, nil
}

// label is a partial path in the Pareto DP.
type label struct {
	cost  []float64 // exact, baseline included
	max   float64   // max over cost
	layer int       // last assigned layer
	pick  int       // vertex picked in that layer
	prev  *label
}

// Options tunes Solve.
type Options struct {
	// Epsilon is Warburton's approximation parameter: the returned min–max
	// value is within (1+Epsilon) of optimal (subject to MaxLabels).
	Epsilon float64
	// MaxLabels caps the label set per layer as a memory/time safety
	// valve. When hit, the labels with the smallest current max survive;
	// the ε guarantee then degrades gracefully. 0 = default.
	MaxLabels int
}

// DefaultMaxLabels bounds the per-layer Pareto set.
const DefaultMaxLabels = 50_000

// Solve finds the (1+ε)-approximate min–max path via Pareto dynamic
// programming with coordinate scaling and incumbent pruning. The context
// is checked at every layer and periodically inside the label-expansion
// loop, so even pathologically wide instances cancel promptly.
func Solve(ctx context.Context, g *Graph, opt Options) (Solution, error) {
	if err := g.Validate(); err != nil {
		return Solution{}, err
	}
	faultinject.At(faultinject.SiteMospSolve)
	if opt.Epsilon < 0 {
		return Solution{}, fmt.Errorf("mosp: negative epsilon %g", opt.Epsilon)
	}
	if opt.MaxLabels <= 0 {
		opt.MaxLabels = DefaultMaxLabels
	}
	r := g.Dim()
	// Incumbent from the greedy; its value bounds the optimum from above.
	greedy, err := SolveGreedy(g)
	if err != nil {
		return Solution{}, err
	}
	ub := greedy.Max

	// Warburton scaling: rounding each coordinate down to a multiple of δ
	// changes any path's coordinate by < |L|·δ = ε·UB ≤ ε·OPT-scale, so
	// dedup on rounded keys preserves a (1+ε)-optimal representative.
	delta := 0.0
	if opt.Epsilon > 0 && ub > 0 {
		delta = opt.Epsilon * ub / float64(len(g.Layers))
	}

	base := make([]float64, r)
	copy(base, g.Baseline)
	start := &label{cost: base, max: maxOf(base), layer: -1, pick: -1}
	frontier := []*label{start}

	for li, layer := range g.Layers {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		faultinject.At(faultinject.SiteMospSolveLayer)
		seen := make(map[string]*label, len(frontier)*len(layer))
		next := make([]*label, 0, len(frontier)*len(layer))
		for fi, lb := range frontier {
			if fi%1024 == 1023 {
				if err := ctx.Err(); err != nil {
					return Solution{}, err
				}
			}
			for vi := range layer {
				v := &layer[vi]
				cost := make([]float64, r)
				m := math.Inf(-1)
				for s := 0; s < r; s++ {
					cost[s] = lb.cost[s] + v.Weight[s]
					if cost[s] > m {
						m = cost[s]
					}
				}
				// Incumbent prune: weights are non-negative, so the final
				// max can only grow; anything already above UB is dead
				// (ties kept to preserve the greedy path itself).
				if m > ub+1e-12 {
					continue
				}
				nl := &label{cost: cost, max: m, layer: li, pick: vi, prev: lb}
				if delta > 0 {
					key := roundKey(cost, delta)
					if old, ok := seen[key]; ok {
						if nl.max < old.max {
							*old = *nl // keep the better representative
						}
						continue
					}
					seen[key] = nl
				}
				next = append(next, nl)
			}
		}
		// Pareto dominance filter (exact costs) when affordable.
		if len(next) <= 2048 {
			next = paretoFilter(next, r)
		}
		// Safety valve.
		if len(next) > opt.MaxLabels {
			sort.Slice(next, func(i, j int) bool { return next[i].max < next[j].max })
			next = next[:opt.MaxLabels]
		}
		if len(next) == 0 {
			// Numerical corner: everything pruned against UB. The greedy
			// solution is then optimal within tolerance.
			return greedy, nil
		}
		frontier = next
	}

	best := frontier[0]
	for _, lb := range frontier[1:] {
		if lb.max < best.max {
			best = lb
		}
	}
	if best.max >= greedy.Max {
		return greedy, nil
	}
	picks := make([]int, len(g.Layers))
	for lb := best; lb != nil && lb.layer >= 0; lb = lb.prev {
		picks[lb.layer] = lb.pick
	}
	return g.solutionFor(picks), nil
}

// ParetoSize reports how many labels survive at the dest layer for the
// given ε — an observability hook for the complexity experiments.
func ParetoSize(g *Graph, opt Options) (int, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	return paretoCount(g, opt), nil
}

func paretoCount(g *Graph, opt Options) int {
	r := g.Dim()
	base := make([]float64, r)
	copy(base, g.Baseline)
	frontier := []*label{{cost: base, max: maxOf(base), layer: -1, pick: -1}}
	greedy, _ := SolveGreedy(g)
	ub := greedy.Max
	delta := 0.0
	if opt.Epsilon > 0 && ub > 0 {
		delta = opt.Epsilon * ub / float64(len(g.Layers))
	}
	if opt.MaxLabels <= 0 {
		opt.MaxLabels = DefaultMaxLabels
	}
	for _, layer := range g.Layers {
		seen := make(map[string]bool)
		var next []*label
		for _, lb := range frontier {
			for vi := range layer {
				v := &layer[vi]
				cost := make([]float64, r)
				m := math.Inf(-1)
				for s := 0; s < r; s++ {
					cost[s] = lb.cost[s] + v.Weight[s]
					if cost[s] > m {
						m = cost[s]
					}
				}
				if m > ub+1e-12 {
					continue
				}
				if delta > 0 {
					key := roundKey(cost, delta)
					if seen[key] {
						continue
					}
					seen[key] = true
				}
				next = append(next, &label{cost: cost, max: m})
			}
		}
		if len(next) <= 2048 {
			next = paretoFilter(next, r)
		}
		if len(next) > opt.MaxLabels {
			sort.Slice(next, func(i, j int) bool { return next[i].max < next[j].max })
			next = next[:opt.MaxLabels]
		}
		frontier = next
	}
	return len(frontier)
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	if len(v) == 0 {
		return 0
	}
	return m
}

// roundKey encodes the cost vector rounded down to multiples of delta.
func roundKey(cost []float64, delta float64) string {
	buf := make([]byte, 8*len(cost))
	for i, c := range cost {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(c/delta))
	}
	return string(buf)
}

// paretoFilter removes labels dominated by another label (≤ on every
// coordinate, < on at least one implied by distinctness handling: we treat
// equal vectors as mutually dominating and keep one).
func paretoFilter(labels []*label, r int) []*label {
	// Sort by max ascending: a label can only be dominated by one with a
	// smaller-or-equal max.
	sort.Slice(labels, func(i, j int) bool { return labels[i].max < labels[j].max })
	out := labels[:0]
	for _, cand := range labels {
		dominated := false
		for _, kept := range out {
			if dominates(kept.cost, cand.cost, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, cand)
		}
	}
	return out
}

func dominates(a, b []float64, r int) bool {
	for s := 0; s < r; s++ {
		if a[s] > b[s]+1e-15 {
			return false
		}
	}
	return true
}
