package mosp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tinyGraph: 2 layers × 2 options, dim 2. Option weights chosen so the
// min–max optimum mixes "polarities".
func tinyGraph() *Graph {
	return &Graph{
		Baseline: []float64{5, 5},
		Layers: [][]Vertex{
			{{Weight: []float64{10, 1}, Tag: 0}, {Weight: []float64{1, 10}, Tag: 1}},
			{{Weight: []float64{10, 1}, Tag: 0}, {Weight: []float64{1, 10}, Tag: 1}},
		},
	}
}

func randGraph(rng *rand.Rand, layers, width, dim int, scale float64) *Graph {
	g := &Graph{Baseline: make([]float64, dim)}
	for s := range g.Baseline {
		g.Baseline[s] = rng.Float64() * scale
	}
	for i := 0; i < layers; i++ {
		var l []Vertex
		for j := 0; j < width; j++ {
			w := make([]float64, dim)
			for s := range w {
				w[s] = rng.Float64() * scale
			}
			l = append(l, Vertex{Weight: w, Tag: j})
		}
		g.Layers = append(g.Layers, l)
	}
	return g
}

func TestValidate(t *testing.T) {
	g := tinyGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := tinyGraph()
	bad.Layers[0] = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty layer should fail")
	}
	bad2 := tinyGraph()
	bad2.Layers[1][0].Weight = []float64{1}
	if err := bad2.Validate(); err == nil {
		t.Error("dim mismatch should fail")
	}
	bad3 := tinyGraph()
	bad3.Baseline[0] = math.NaN()
	if err := bad3.Validate(); err == nil {
		t.Error("NaN baseline should fail")
	}
	bad4 := tinyGraph()
	bad4.Layers[0][0].Weight[0] = -1
	if err := bad4.Validate(); err == nil {
		t.Error("negative weight should fail")
	}
	var empty Graph
	if err := empty.Validate(); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestTinyOptimum(t *testing.T) {
	// Mixing the two "polarities" yields cost (5+10+1, 5+1+10) = (16,16)
	// → max 16. Same-polarity picks give (25,7) → max 25.
	g := tinyGraph()
	for name, solve := range map[string]func(*Graph) (Solution, error){
		"exhaustive": SolveExhaustive,
		"greedy":     SolveGreedy,
		"fast":       func(g *Graph) (Solution, error) { return SolveFast(context.Background(), g) },
		"solve":      func(g *Graph) (Solution, error) { return Solve(context.Background(), g, Options{Epsilon: 0.01}) },
	} {
		sol, err := solve(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(sol.Max-16) > 1e-9 {
			t.Errorf("%s: max = %g, want 16 (picks %v)", name, sol.Max, sol.Picks)
		}
		if g.Layers[0][sol.Picks[0]].Tag == g.Layers[1][sol.Picks[1]].Tag {
			t.Errorf("%s: optimum must mix polarities, got %v", name, sol.Picks)
		}
	}
}

func TestSolutionCostIncludesBaseline(t *testing.T) {
	g := tinyGraph()
	sol, err := Solve(context.Background(), g, Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Cost) != 2 {
		t.Fatal("bad cost dim")
	}
	// Both coordinates ≥ baseline.
	if sol.Cost[0] < 5 || sol.Cost[1] < 5 {
		t.Fatalf("cost %v misses baseline", sol.Cost)
	}
}

func TestSolveMatchesExhaustiveExactly(t *testing.T) {
	// ε = 0 → exact Pareto DP → identical optimum to brute force.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		g := randGraph(rng, 2+rng.Intn(4), 2+rng.Intn(3), 1+rng.Intn(5), 100)
		want, err := SolveExhaustive(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(context.Background(), g, Options{Epsilon: 0})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Max-want.Max) > 1e-9 {
			t.Fatalf("trial %d: Solve %g vs exhaustive %g", trial, got.Max, want.Max)
		}
	}
}

func TestSolveWithinEpsilonOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, eps := range []float64{0.01, 0.1, 0.5} {
		for trial := 0; trial < 25; trial++ {
			g := randGraph(rng, 2+rng.Intn(5), 2+rng.Intn(4), 1+rng.Intn(6), 50)
			opt, err := SolveExhaustive(g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Solve(context.Background(), g, Options{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			if got.Max > opt.Max*(1+eps)+1e-9 {
				t.Fatalf("eps=%g trial %d: %g exceeds (1+ε)·%g", eps, trial, got.Max, opt.Max)
			}
			if got.Max < opt.Max-1e-9 {
				t.Fatalf("eps=%g trial %d: %g below optimum %g (unsound)", eps, trial, got.Max, opt.Max)
			}
		}
	}
}

func TestGreedyAndFastAreUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randGraph(rng, 2+rng.Intn(4), 2+rng.Intn(3), 1+rng.Intn(4), 50)
		opt, err := SolveExhaustive(g)
		if err != nil {
			t.Fatal(err)
		}
		for name, solve := range map[string]func(*Graph) (Solution, error){
			"greedy": SolveGreedy, "fast": func(g *Graph) (Solution, error) { return SolveFast(context.Background(), g) },
		} {
			sol, err := solve(g)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Max < opt.Max-1e-9 {
				t.Fatalf("%s trial %d: heuristic %g below optimum %g", name, trial, sol.Max, opt.Max)
			}
		}
	}
}

func TestFastNeverWorseThanWorstPath(t *testing.T) {
	// ClkWaveMin-f must at least beat the max-ordering worst case: verify
	// it is never worse than picking the per-layer max-weight vertex.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		g := randGraph(rng, 3, 3, 4, 50)
		fast, err := SolveFast(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		worstPicks := make([]int, len(g.Layers))
		for li, layer := range g.Layers {
			worst, wmax := 0, -1.0
			for vi, v := range layer {
				if m := maxOf(v.Weight); m > wmax {
					worst, wmax = vi, m
				}
			}
			worstPicks[li] = worst
		}
		worst := g.solutionFor(worstPicks)
		if fast.Max > worst.Max+1e-9 {
			t.Fatalf("trial %d: fast %g worse than worst-path %g", trial, fast.Max, worst.Max)
		}
	}
}

func TestExhaustiveRefusesHugeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 10, 8, 2, 10) // 8^10 paths
	if _, err := SolveExhaustive(g); err == nil {
		t.Fatal("expected refusal")
	}
}

func TestSingleLayerSingleVertex(t *testing.T) {
	g := &Graph{
		Baseline: []float64{1, 2},
		Layers:   [][]Vertex{{{Weight: []float64{3, 0}, Tag: 7}}},
	}
	sol, err := Solve(context.Background(), g, Options{Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Max != 4 || sol.Picks[0] != 0 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestNilBaselineTreatedAsZero(t *testing.T) {
	g := &Graph{Layers: [][]Vertex{{{Weight: []float64{2, 3}}}}}
	sol, err := Solve(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Max != 3 {
		t.Fatalf("max = %g, want 3", sol.Max)
	}
}

func TestMaxLabelsSafetyValveStillFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 6, 4, 8, 50)
	sol, err := Solve(context.Background(), g, Options{Epsilon: 0, MaxLabels: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Must return a feasible (complete) solution, upper-bounding nothing.
	if len(sol.Picks) != 6 {
		t.Fatalf("picks %v", sol.Picks)
	}
	greedy, _ := SolveGreedy(g)
	if sol.Max > greedy.Max+1e-9 {
		t.Fatalf("capped solve %g worse than greedy %g", sol.Max, greedy.Max)
	}
}

func TestNegativeEpsilonRejected(t *testing.T) {
	if _, err := Solve(context.Background(), tinyGraph(), Options{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon should error")
	}
}

func TestParetoSizeShrinksWithEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randGraph(rng, 5, 4, 3, 100)
	exact, err := ParetoSize(g, Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := ParetoSize(g, Options{Epsilon: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if coarse > exact {
		t.Fatalf("coarser rounding grew the frontier: %d > %d", coarse, exact)
	}
	if exact < 1 || coarse < 1 {
		t.Fatal("frontiers must be non-empty")
	}
}

// Property: Solve's result is invariant under coordinate permutation of
// all weights (min–max is symmetric in the sample axis).
func TestPropertyPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(4)
		g := randGraph(rng, 3, 3, dim, 50)
		perm := rng.Perm(dim)
		pg := &Graph{Baseline: permute(g.Baseline, perm)}
		for _, l := range g.Layers {
			var nl []Vertex
			for _, v := range l {
				nl = append(nl, Vertex{Weight: permute(v.Weight, perm), Tag: v.Tag})
			}
			pg.Layers = append(pg.Layers, nl)
		}
		a, err1 := Solve(context.Background(), g, Options{Epsilon: 0})
		b, err2 := Solve(context.Background(), pg, Options{Epsilon: 0})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Max-b.Max) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a constant to the baseline raises the optimum by at
// most that constant (and at least 0).
func TestPropertyBaselineMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 3, 3, 3, 50)
		a, err := Solve(context.Background(), g, Options{Epsilon: 0})
		if err != nil {
			return false
		}
		const bump = 10
		g2 := &Graph{Baseline: append([]float64(nil), g.Baseline...), Layers: g.Layers}
		for i := range g2.Baseline {
			g2.Baseline[i] += bump
		}
		b, err := Solve(context.Background(), g2, Options{Epsilon: 0})
		if err != nil {
			return false
		}
		return b.Max >= a.Max-1e-9 && b.Max <= a.Max+bump+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func permute(v []float64, perm []int) []float64 {
	out := make([]float64, len(v))
	for i, p := range perm {
		out[i] = v[p]
	}
	return out
}
