package mosp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// dupGraph builds a graph where many partial paths land on identical (or
// identically quantized) cost vectors, so the ε-dedup map merges heavily
// and prev chains run through merged slots — the shape that exposed the
// old `*old = *nl` aliasing corruption.
func dupGraph(rng *rand.Rand, layers, width, dim int) *Graph {
	g := &Graph{Baseline: make([]float64, dim)}
	for s := range g.Baseline {
		g.Baseline[s] = float64(rng.Intn(4))
	}
	for i := 0; i < layers; i++ {
		var l []Vertex
		for j := 0; j < width; j++ {
			w := make([]float64, dim)
			for s := range w {
				// Small integer grid → frequent exact-duplicate sums.
				w[s] = float64(rng.Intn(3))
			}
			l = append(l, Vertex{Weight: w, Tag: j})
		}
		g.Layers = append(g.Layers, l)
	}
	return g
}

// TestDedupCollisionPicksStayConsistent is the regression test for the
// shared-label mutation bug: when two labels round to the same Warburton
// key, keeping the better representative must not rewrite a label struct
// that other labels already reference as prev. We force heavy dedup
// (integer weights + coarse ε) and require that the returned Picks both
// reproduce the reported cost exactly and stay within the ε guarantee of
// the exhaustive optimum.
func TestDedupCollisionPicksStayConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		g := dupGraph(rng, 3+rng.Intn(4), 2+rng.Intn(3), 2+rng.Intn(3))
		opt, err := SolveExhaustive(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.05, 0.3, 1.0} {
			sol, err := Solve(context.Background(), g, Options{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			if len(sol.Picks) != len(g.Layers) {
				t.Fatalf("trial %d eps=%g: incomplete picks %v", trial, eps, sol.Picks)
			}
			// The picks must reproduce the reported solution exactly: a
			// corrupted prev chain yields picks whose true cost disagrees
			// with the label the solver thought it was returning.
			re := g.solutionFor(sol.Picks)
			if math.Abs(re.Max-sol.Max) > 1e-9 {
				t.Fatalf("trial %d eps=%g: picks %v recompute to %g, solver reported %g",
					trial, eps, sol.Picks, re.Max, sol.Max)
			}
			for s := range re.Cost {
				if math.Abs(re.Cost[s]-sol.Cost[s]) > 1e-9 {
					t.Fatalf("trial %d eps=%g: cost mismatch at %d: %v vs %v",
						trial, eps, s, re.Cost, sol.Cost)
				}
			}
			if sol.Max > opt.Max*(1+eps)+1e-9 || sol.Max < opt.Max-1e-9 {
				t.Fatalf("trial %d eps=%g: %g outside [%g, %g·(1+ε)]",
					trial, eps, sol.Max, opt.Max, opt.Max)
			}
		}
	}
}

// TestDedupKeepsBetterRepresentative checks the merge direction: two
// same-key labels must leave the smaller-max one in the frontier. With a
// single wide layer and huge ε everything shares one key, so Solve must
// still find the layer's best vertex.
func TestDedupKeepsBetterRepresentative(t *testing.T) {
	g := &Graph{
		Baseline: []float64{0, 0},
		Layers: [][]Vertex{{
			{Weight: []float64{9, 9}, Tag: 0},
			{Weight: []float64{1, 1}, Tag: 1},
			{Weight: []float64{9, 1}, Tag: 2},
		}},
	}
	sol, err := Solve(context.Background(), g, Options{Epsilon: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Picks[0] != 1 || sol.Max != 1 {
		t.Fatalf("sol = %+v, want pick 1 max 1", sol)
	}
}

// solveFastReference is the pre-optimization O(|S|·|L|²·W) algorithm:
// every round rescans all remaining layers and picks the vertex with the
// least noise-worsening M, ties broken by lower layer index then lower
// vertex index (strict < on both scans). The lazy-heap SolveFast must
// reproduce its picks exactly, ties included.
func solveFastReference(g *Graph) Solution {
	r := g.Dim()
	sum := make([]float64, r)
	copy(sum, g.Baseline)
	picks := make([]int, len(g.Layers))
	done := make([]bool, len(g.Layers))
	for round := 0; round < len(g.Layers); round++ {
		bestLi, bestVi, bestM := -1, -1, math.Inf(1)
		for li := range g.Layers {
			if done[li] {
				continue
			}
			for vi, v := range g.Layers[li] {
				m := math.Inf(-1)
				for s := 0; s < r; s++ {
					if c := sum[s] + v.Weight[s]; c > m {
						m = c
					}
				}
				if m < bestM {
					bestLi, bestVi, bestM = li, vi, m
				}
			}
		}
		done[bestLi] = true
		picks[bestLi] = bestVi
		for s, w := range g.Layers[bestLi][bestVi].Weight {
			sum[s] += w
		}
	}
	return g.solutionFor(picks)
}

// TestSolveFastMatchesReference differentially verifies the lazy-heap
// rewrite against the naive rescan, on both continuous random graphs and
// integer-grid graphs engineered to produce M ties across layers.
func TestSolveFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 80; trial++ {
		var g *Graph
		if trial%2 == 0 {
			g = randGraph(rng, 2+rng.Intn(8), 2+rng.Intn(5), 1+rng.Intn(6), 100)
		} else {
			g = dupGraph(rng, 2+rng.Intn(8), 2+rng.Intn(5), 1+rng.Intn(4))
		}
		want := solveFastReference(g)
		got, err := SolveFast(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Max != want.Max {
			t.Fatalf("trial %d: fast %g vs reference %g", trial, got.Max, want.Max)
		}
		for li := range want.Picks {
			if got.Picks[li] != want.Picks[li] {
				t.Fatalf("trial %d: picks diverge at layer %d: %v vs %v",
					trial, li, got.Picks, want.Picks)
			}
		}
	}
}

// TestFloatArenaStableSlices: slices handed out before a chunk fills must
// stay valid and disjoint as more allocations arrive.
func TestFloatArenaStableSlices(t *testing.T) {
	a := newFloatArena(4)
	var slices [][]float64
	for i := 0; i < 10_000; i++ {
		s := a.alloc(4)
		for k := range s {
			s[k] = float64(i)
		}
		slices = append(slices, s)
	}
	for i, s := range slices {
		for k := range s {
			if s[k] != float64(i) {
				t.Fatalf("slice %d clobbered: %v", i, s)
			}
		}
	}
	a.reset()
	s := a.alloc(4)
	if len(s) != 4 {
		t.Fatalf("post-reset alloc len %d", len(s))
	}
}

// TestFloatArenaUnalloc: LIFO unalloc reuses the same backing region.
func TestFloatArenaUnalloc(t *testing.T) {
	a := newFloatArena(8)
	s1 := a.alloc(8)
	a.unalloc(8)
	s2 := a.alloc(8)
	if &s1[0] != &s2[0] {
		t.Fatal("unalloc did not recycle the last allocation")
	}
}

// TestLabelArenaStablePointers: pointers returned before chunk growth must
// remain valid (prev chains depend on it).
func TestLabelArenaStablePointers(t *testing.T) {
	a := &labelArena{}
	var ptrs []*label
	for i := 0; i < 5*labelChunkSize; i++ {
		l := a.alloc()
		l.pick = int32(i)
		ptrs = append(ptrs, l)
	}
	for i, p := range ptrs {
		if p.pick != int32(i) {
			t.Fatalf("label %d moved or clobbered (pick=%d)", i, p.pick)
		}
	}
}

// TestHashQuantizedCollisionCheck: sameQuantized must discriminate vectors
// that differ in quantized coordinates even if a hash collided.
func TestHashQuantizedCollisionCheck(t *testing.T) {
	a := []float64{10, 20, 30}
	b := []float64{10, 20, 31}
	const delta = 1.0
	if !sameQuantized(a, a, delta) {
		t.Fatal("vector must equal itself")
	}
	if sameQuantized(a, b, delta) {
		t.Fatal("distinct quantized vectors reported equal")
	}
	if hashQuantized(a, delta) == hashQuantized(b, delta) {
		t.Fatal("trivially distinct keys should hash apart")
	}
}
