package mosp

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSolveCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, tinyGraph(), Options{Epsilon: 0.1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve err = %v, want context.Canceled", err)
	}
	if _, err := SolveFast(ctx, tinyGraph()); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveFast err = %v, want context.Canceled", err)
	}
}

func TestSolveDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := Solve(ctx, tinyGraph(), Options{Epsilon: 0.1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Solve err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := SolveFast(ctx, tinyGraph()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveFast err = %v, want context.DeadlineExceeded", err)
	}
}
