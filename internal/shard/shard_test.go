package shard_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wavemin"
	"wavemin/internal/shard"
)

// designKeys synthesizes n random designs (seeded, so the test is
// deterministic) and returns their real CacheKeys — the exact strings the
// serving tier routes by.
func designKeys(t testing.TB, n int, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sinks := make([]wavemin.Sink, 0, 4)
		for j := 0; j < 4; j++ {
			sinks = append(sinks, wavemin.Sink{
				X:   10 + rng.Float64()*80,
				Y:   10 + rng.Float64()*80,
				Cap: 4 + rng.Float64()*8,
			})
		}
		d, err := wavemin.New(sinks)
		if err != nil {
			t.Fatal(err)
		}
		key, err := d.CacheKey(wavemin.Config{})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	return keys
}

// syntheticKeys derives n sha256-hex keys cheaply; the serving tier's
// keys are themselves sha256 digests, so these share their distribution.
func syntheticKeys(n int, seed int64) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("design-%d-%d", seed, i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

// TestShardOfTotalAndDeterministic is the partitioner's core property:
// for a fixed map version, every CacheKey maps to exactly one shard —
// the mapping is total over well-formed keys, deterministic across
// calls, and identical however the map was obtained (constructed or
// decoded from its wire form).
func TestShardOfTotalAndDeterministic(t *testing.T) {
	m, err := shard.New(1, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := shard.Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	// Real designs: the keys the fleet actually routes.
	for _, key := range designKeys(t, 64, 7) {
		s1, err := m.ShardOf(key)
		if err != nil {
			t.Fatalf("ShardOf(%s): %v", key, err)
		}
		if s1 < 0 || s1 >= m.Shards {
			t.Fatalf("ShardOf(%s) = %d, outside 0..%d", key, s1, m.Shards-1)
		}
		s2, err := m.ShardOf(key)
		if err != nil || s2 != s1 {
			t.Fatalf("ShardOf(%s) not deterministic: %d then %d (err %v)", key, s1, s2, err)
		}
		s3, err := decoded.ShardOf(key)
		if err != nil || s3 != s1 {
			t.Fatalf("decoded map disagrees for %s: %d vs %d (err %v)", key, s1, s3, err)
		}
	}
}

// TestDistributionWithinTwiceUniform checks balance on 10k random design
// keys: across the 256 prefix buckets of an 8-bit map every bucket's
// share stays within 2x of uniform (in both directions), and so does
// every shard's share under a 3-shard round-robin assignment.
func TestDistributionWithinTwiceUniform(t *testing.T) {
	const n = 10000
	keys := syntheticKeys(n, 42)
	// A sample of real CacheKeys rides along so the synthetic stand-ins
	// are provably drawn from the same space (64-char lowercase hex).
	keys = append(keys, designKeys(t, 32, 11)...)

	m, err := shard.New(1, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	buckets := make(map[string]int)
	shards := make([]int, m.Shards)
	for _, key := range keys {
		s, err := m.ShardOf(key)
		if err != nil {
			t.Fatalf("ShardOf(%s): %v", key, err)
		}
		shards[s]++
		buckets[key[:2]]++ // 8 prefix bits == first two hex nibbles
	}
	if len(buckets) != 256 {
		t.Fatalf("keys landed in %d prefix buckets, want all 256", len(buckets))
	}
	bucketAvg := float64(len(keys)) / 256
	for b, c := range buckets {
		if float64(c) > 2*bucketAvg || float64(c) < bucketAvg/2 {
			t.Errorf("bucket %s holds %d keys, outside [%.1f, %.1f] (2x of uniform %.1f)",
				b, c, bucketAvg/2, 2*bucketAvg, bucketAvg)
		}
	}
	shardAvg := float64(len(keys)) / float64(m.Shards)
	for s, c := range shards {
		if float64(c) > 2*shardAvg || float64(c) < shardAvg/2 {
			t.Errorf("shard %d holds %d keys, outside 2x of uniform %.1f", s, c, shardAvg)
		}
	}
}

// TestMapRoundTrip: Encode/Decode is the identity on valid maps,
// including non-round-robin assignments, for seeded-random shapes.
func TestMapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		bits := 1 + rng.Intn(10)
		shards := 1 + rng.Intn(1<<bits)
		if shards > shard.MaxShards {
			shards = shard.MaxShards
		}
		m, err := shard.New(1+rng.Intn(9), bits, shards)
		if err != nil {
			t.Fatalf("New(bits=%d, shards=%d): %v", bits, shards, err)
		}
		if trial%2 == 1 {
			// Perturb away from round-robin, preserving the every-shard-
			// owns-a-bucket invariant by only touching duplicate owners.
			for i := shards; i < len(m.Assign); i++ {
				m.Assign[i] = rng.Intn(shards)
			}
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: perturbed map invalid: %v", trial, err)
		}
		enc := m.Encode()
		back, err := shard.Decode(enc)
		if err != nil {
			t.Fatalf("trial %d: Decode(%q): %v", trial, enc, err)
		}
		if back.Version != m.Version || back.PrefixBits != m.PrefixBits || back.Shards != m.Shards {
			t.Fatalf("trial %d: header changed across round-trip: %+v vs %+v", trial, back, m)
		}
		for b := range m.Assign {
			if back.Assign[b] != m.Assign[b] {
				t.Fatalf("trial %d: bucket %d owner %d -> %d across round-trip", trial, b, m.Assign[b], back.Assign[b])
			}
		}
		if back.Encode() != enc {
			t.Fatalf("trial %d: re-encode differs: %q vs %q", trial, back.Encode(), enc)
		}
	}
}

func TestMapValidation(t *testing.T) {
	bad := []string{
		"",                 // empty
		"v1:8",             // missing shards
		"1:8:3",            // no version marker
		"v0:8:3",           // version < 1
		"v1:0:3",           // bits out of range
		"v1:17:3",          // bits out of range
		"v1:8:0",           // no shards
		"v1:2:5",           // more shards than buckets
		"v1:8:2000",        // beyond MaxShards
		"v1:1:2:0,2",       // assignment out of range
		"v1:1:2:0",         // short assignment
		"v1:1:2:0,0",       // shard 1 owns no bucket
		"v1:1:2:0,x",       // non-numeric assignment
		"v1:8:3:../../etc", // hostile assignment
		"vv1:8:3",          // garbage version
	}
	for _, s := range bad {
		if m, err := shard.Decode(s); err == nil {
			t.Errorf("Decode(%q) accepted invalid map %+v", s, m)
		}
	}
	m, _ := shard.New(1, 8, 3)
	if _, err := m.ShardOf("ab"); err != nil {
		t.Errorf("2-nibble key must satisfy an 8-bit prefix: %v", err)
	}
	if _, err := (&shard.Map{Version: 1, PrefixBits: 8, Shards: 3}).ShardOf("ab00"); err == nil {
		t.Error("ShardOf on a map without an assignment table must error")
	}
	for _, key := range []string{"", "a", "AB00", "zz00", "0G"} {
		if s, err := m.ShardOf(key); err == nil {
			t.Errorf("ShardOf(%q) accepted a malformed key (shard %d)", key, s)
		}
	}
}

func TestJobIDRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		shard int
		seq   int64
	}{{0, 1}, {2, 42}, {15, 999999}, {1023, 1000000}} {
		id := shard.EncodeJobID(tc.shard, tc.seq)
		s, seq, sharded, err := shard.DecodeJobID(id)
		if err != nil || !sharded || s != tc.shard || seq != tc.seq {
			t.Fatalf("DecodeJobID(%q) = (%d, %d, %v, %v), want (%d, %d, true, nil)",
				id, s, seq, sharded, err, tc.shard, tc.seq)
		}
	}
	// Legacy single-node IDs (and arbitrary non-prefixed strings) are not
	// sharded and not errors: they resolve against the local registry.
	for _, id := range []string{"j-000001", "j-42", "nope", "", "J-S1-1"} {
		if _, _, sharded, err := shard.DecodeJobID(id); sharded || err != nil {
			t.Fatalf("DecodeJobID(%q) = (sharded=%v, err=%v), want unsharded no-error", id, sharded, err)
		}
	}
	// Hostile sharded forms must error — never parse into a route.
	for _, id := range []string{
		"j-s-000001",                     // empty shard field
		"j-s12345-000001",                // shard overflow (5 digits)
		"j-s1-",                          // empty sequence
		"j-s1-9999999999999999999",       // sequence overflow (19 digits)
		"j-s1-00001x",                    // non-digit sequence
		"j-s1x-000001",                   // non-digit shard
		"j-s1-../../etc/passwd",          // path traversal
		"j-s1-000001/result",             // trailing path segment
		"j-s+1-000001",                   // sign prefix
		strings.Repeat("j-s1-000001", 3), // concatenated IDs
	} {
		if s, seq, sharded, err := shard.DecodeJobID(id); err == nil {
			t.Errorf("DecodeJobID(%q) accepted hostile ID: (%d, %d, %v)", id, s, seq, sharded)
		}
	}
}
