package shard

// Live-map transitions: the rules that let a fleet change its partition
// without restarting. A map is immutable once published; a rebalance
// publishes a successor with Version+1, and the successor is constrained
// so that any two ADJACENT versions route compatibly: at most one
// bucket's owner differs (replica sets may change freely — replicas are
// read-only fallbacks, never authorities). A node that is one version
// behind therefore misroutes at most one bucket's keys, and the receiver
// detects the skew by version header and answers 409 shard_map_version;
// nothing is ever silently written to the wrong shard.
//
// Nodes converge by adoption: ShouldAdopt is the single gate every
// gossiped, piggybacked, or operator-injected map passes through. It
// admits only structurally valid maps of the same shape (PrefixBits and
// Shards are fixed for a fleet's lifetime) with a STRICTLY higher
// version, so convergence is monotone — a node never moves backward,
// and two nodes that have seen the same set of maps hold the same one.

import (
	"errors"
	"fmt"
)

// ErrStaleVersion marks a candidate map whose version is not newer than
// the current one. It is the "ignore, don't reject" outcome of
// ShouldAdopt: an old map circulating in gossip is normal during a
// rebalance, not a protocol violation.
var ErrStaleVersion = errors.New("shard: map version not newer than current")

// MoveBucket returns the successor of m (Version+1) in which bucket is
// owned by newOwner. The old owner replaces newOwner in the bucket's
// replica set when the map carries one: it still holds the bucket's
// artifacts, so it is the natural first reader after the flip.
func (m *Map) MoveBucket(bucket, newOwner int) (*Map, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if bucket < 0 || bucket >= len(m.Assign) {
		return nil, fmt.Errorf("shard: bucket %d outside 0..%d", bucket, len(m.Assign)-1)
	}
	if newOwner < 0 || newOwner >= m.Shards {
		return nil, fmt.Errorf("shard: new owner %d outside 0..%d", newOwner, m.Shards-1)
	}
	oldOwner := m.Assign[bucket]
	if newOwner == oldOwner {
		return nil, fmt.Errorf("shard: bucket %d already owned by %d", bucket, newOwner)
	}
	out := m.Clone()
	out.Version++
	out.Assign[bucket] = newOwner
	if out.Replicas != nil {
		set := out.Replicas[bucket]
		replaced := false
		for i, s := range set {
			if s == newOwner {
				set[i] = oldOwner
				replaced = true
				break
			}
		}
		if !replaced {
			out.Replicas[bucket] = append(set, oldOwner)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// SetBucketReplicas returns the successor of m (Version+1) in which
// bucket's reader set is exactly replicas.
func (m *Map) SetBucketReplicas(bucket int, replicas []int) (*Map, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if bucket < 0 || bucket >= len(m.Assign) {
		return nil, fmt.Errorf("shard: bucket %d outside 0..%d", bucket, len(m.Assign)-1)
	}
	out := m.Clone()
	out.Version++
	if out.Replicas == nil {
		out.Replicas = make([][]int, len(out.Assign))
		for b := range out.Replicas {
			out.Replicas[b] = []int{}
		}
	}
	out.Replicas[bucket] = append([]int{}, replicas...)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Diff reports how two same-shape maps differ: the buckets whose owner
// changed and the buckets whose replica set changed. Shape disagreement
// (PrefixBits or Shards) is an error — such maps are not comparable.
func Diff(a, b *Map) (moved, replicaChanged []int, err error) {
	if a == nil || b == nil {
		return nil, nil, fmt.Errorf("shard: diff of nil map")
	}
	if a.PrefixBits != b.PrefixBits || a.Shards != b.Shards {
		return nil, nil, fmt.Errorf("shard: maps differ in shape (%d/%d bits, %d/%d shards)",
			a.PrefixBits, b.PrefixBits, a.Shards, b.Shards)
	}
	if len(a.Assign) != len(b.Assign) {
		return nil, nil, fmt.Errorf("shard: assignment tables cover %d vs %d buckets", len(a.Assign), len(b.Assign))
	}
	for bk := range a.Assign {
		if a.Assign[bk] != b.Assign[bk] {
			moved = append(moved, bk)
		}
		if !replicaSetEqual(bucketReplicas(a, bk), bucketReplicas(b, bk)) {
			replicaChanged = append(replicaChanged, bk)
		}
	}
	return moved, replicaChanged, nil
}

func bucketReplicas(m *Map, bucket int) []int {
	if m.Replicas == nil {
		return nil
	}
	return m.Replicas[bucket]
}

func replicaSetEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ValidTransition checks that next is a legal immediate successor of
// cur: both valid, same shape, Version exactly cur.Version+1, and at
// most one bucket's owner moved. Replica-set changes are unconstrained.
func ValidTransition(cur, next *Map) error {
	if err := cur.Validate(); err != nil {
		return fmt.Errorf("shard: transition from invalid map: %w", err)
	}
	if err := next.Validate(); err != nil {
		return fmt.Errorf("shard: transition to invalid map: %w", err)
	}
	if next.Version != cur.Version+1 {
		return fmt.Errorf("shard: transition must bump version by one (%d -> %d)", cur.Version, next.Version)
	}
	moved, _, err := Diff(cur, next)
	if err != nil {
		return err
	}
	if len(moved) > 1 {
		return fmt.Errorf("shard: transition moves %d buckets, at most one may move per version", len(moved))
	}
	return nil
}

// ShouldAdopt is the adoption gate every incoming map passes through —
// anti-entropy pulls, maps piggybacked on forwards and handoff writes,
// and operator injection alike. nil means cand supersedes cur and the
// node should adopt it.
//
//   - ErrStaleVersion: cand is not newer — ignore it (count, don't
//     reject; old maps circulate legitimately during a rebalance).
//   - Any other error: cand is invalid or incompatible — reject it.
//
// An adjacent candidate (cur.Version+1) must additionally satisfy the
// single-bucket-move rule; a farther jump cannot be checked stepwise
// (the intermediate maps are not available) and is admitted on shape
// and validity alone, which is what lets a long-partitioned node catch
// up without replaying history.
func ShouldAdopt(cur, cand *Map) error {
	if cur == nil {
		return fmt.Errorf("shard: no current map to compare against")
	}
	if err := cand.Validate(); err != nil {
		return err
	}
	if cand.PrefixBits != cur.PrefixBits || cand.Shards != cur.Shards {
		return fmt.Errorf("shard: candidate map shape (%d bits, %d shards) differs from fleet's (%d bits, %d shards)",
			cand.PrefixBits, cand.Shards, cur.PrefixBits, cur.Shards)
	}
	if cand.Version <= cur.Version {
		return fmt.Errorf("%w (candidate %d, current %d)", ErrStaleVersion, cand.Version, cur.Version)
	}
	if cand.Version == cur.Version+1 {
		return ValidTransition(cur, cand)
	}
	return nil
}
