// Package shard is the static-ring key-space partitioner behind the
// multi-coordinator serving tier: it decides, for every content key in
// the system, which coordinator owns it.
//
// Every cacheable artifact already travels under a portable sha256
// content hash — the whole-design Design.CacheKey, the per-zone
// wavemin-zonekey-v1 solution keys, and the castore entry names are all
// lowercase hex digests — so the partition is by key prefix: the first
// PrefixBits bits of the digest select one of 1<<PrefixBits buckets, and
// a versioned bucket→shard assignment table maps buckets onto shards.
// Because sha256 output is uniform, equal-sized bucket sets give each
// shard an equal slice of the key space without any coordination, and
// because the assignment is an explicit table (not `hash % n`), a later
// map version can move individual buckets between shards — rebalancing
// is a table edit plus a version bump, never a rehash of the world.
//
// The map is deliberately static per version: every node in a fleet must
// be started with (or gossip its way to) the same encoded map, and the
// routing layer rejects peer traffic whose map version disagrees — a
// fleet with skewed maps fails loudly with a structured error instead of
// silently writing keys to the wrong shard.
//
// Job identifiers route differently: a job is born on its owning shard
// (submissions are forwarded before admission), so the owner is encoded
// into the public job ID itself — "j-s<shard>-<seq>" — and any node can
// route GET /v1/jobs/{id} by decoding the ID, no key recomputation
// needed. DecodeJobID is strict: an ID that claims the sharded form but
// is malformed (overflow digits, path metacharacters, empty fields) is an
// error the server surfaces as a structured 400, never a panic or a
// wrong-shard lookup.
package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// MapFormat versions the encoded map syntax itself (the leading "v" of
// Encode). Bump PrefixBits/assignment semantics only together with this.
const (
	minPrefixBits = 1
	maxPrefixBits = 16
	// MaxShards bounds fleet size; 1024 coordinators is far past the
	// design point and keeps the assignment table small.
	MaxShards = 1024
	// MaxVersion bounds the partition epoch. Versions advance one step
	// per rebalance, so a real fleet never approaches it; a gossiped map
	// claiming a version beyond it is an overflow attempt, not a map.
	MaxVersion = 1 << 30
	// maxJobShardDigits bounds the shard field of a job ID: 4 digits
	// covers MaxShards with room, and anything longer is an overflow
	// attempt, not a real shard.
	maxJobShardDigits = 4
	// maxJobSeqDigits bounds the sequence field: 18 digits stays within
	// int64, so a hostile ID can never overflow the parse.
	maxJobSeqDigits = 18
)

// Map is one version of the key-space partition: 1<<PrefixBits prefix
// buckets assigned onto Shards coordinators. Construct with New (uniform
// round-robin assignment) or Decode; mutate only by building a new Map
// with a higher Version.
type Map struct {
	// Version identifies the partition epoch. Peer traffic carries it and
	// mismatches are rejected, so two map versions never mix silently.
	Version int `json:"version"`
	// PrefixBits is how many leading bits of the key digest select a
	// bucket (1..16); buckets = 1 << PrefixBits.
	PrefixBits int `json:"prefixBits"`
	// Shards is the fleet size; shard IDs are 0..Shards-1.
	Shards int `json:"shards"`
	// Assign maps bucket → owning shard; len(Assign) == 1<<PrefixBits.
	Assign []int `json:"assign"`
	// Replicas, when non-nil, maps bucket → reader shards: nodes that
	// hold a read-only copy of the bucket's cached artifacts and serve
	// them when the owner is unreachable. A replica set never contains
	// the bucket's owner, never repeats a shard, and may be empty. Nil
	// means no bucket has replicas (the pre-replica wire form).
	Replicas [][]int `json:"replicas,omitempty"`
}

// New builds a version'd map with the uniform round-robin assignment:
// bucket i belongs to shard i % shards.
func New(version, prefixBits, shards int) (*Map, error) {
	m := &Map{Version: version, PrefixBits: prefixBits, Shards: shards}
	if err := m.validateHeader(); err != nil {
		return nil, err
	}
	m.Assign = make([]int, 1<<prefixBits)
	for i := range m.Assign {
		m.Assign[i] = i % shards
	}
	return m, nil
}

// WithReplicas returns a copy of m (same version) in which every bucket
// has r replicas: the r shards following the bucket's owner in ring
// order. r must leave at least the owner outside the set (r < Shards);
// r == 0 clears all replica sets.
func (m *Map) WithReplicas(r int) (*Map, error) {
	if r < 0 || r >= m.Shards {
		return nil, fmt.Errorf("shard: %d replicas per bucket needs %d+ shards, map has %d", r, r+1, m.Shards)
	}
	out := m.Clone()
	if r == 0 {
		out.Replicas = nil
		return out, nil
	}
	out.Replicas = uniformReplicas(out.Assign, out.Shards, r)
	return out, nil
}

// uniformReplicas derives the ring-successor replica sets WithReplicas
// assigns: bucket b's readers are the r shards after its owner.
func uniformReplicas(assign []int, shards, r int) [][]int {
	out := make([][]int, len(assign))
	for b, owner := range assign {
		set := make([]int, r)
		for i := 0; i < r; i++ {
			set[i] = (owner + 1 + i) % shards
		}
		out[b] = set
	}
	return out
}

// Clone returns a deep copy of m, safe to mutate independently.
func (m *Map) Clone() *Map {
	out := &Map{Version: m.Version, PrefixBits: m.PrefixBits, Shards: m.Shards}
	out.Assign = append([]int(nil), m.Assign...)
	if m.Replicas != nil {
		out.Replicas = make([][]int, len(m.Replicas))
		for b, set := range m.Replicas {
			out.Replicas[b] = append([]int{}, set...)
		}
	}
	return out
}

func (m *Map) validateHeader() error {
	if m.Version < 1 {
		return fmt.Errorf("shard: map version %d, want >= 1", m.Version)
	}
	if m.Version > MaxVersion {
		return fmt.Errorf("shard: map version %d beyond %d (overflow)", m.Version, MaxVersion)
	}
	if m.PrefixBits < minPrefixBits || m.PrefixBits > maxPrefixBits {
		return fmt.Errorf("shard: prefix bits %d, want %d..%d", m.PrefixBits, minPrefixBits, maxPrefixBits)
	}
	if m.Shards < 1 || m.Shards > MaxShards {
		return fmt.Errorf("shard: %d shards, want 1..%d", m.Shards, MaxShards)
	}
	if m.Shards > 1<<m.PrefixBits {
		return fmt.Errorf("shard: %d shards exceed %d buckets (%d prefix bits)", m.Shards, 1<<m.PrefixBits, m.PrefixBits)
	}
	return nil
}

// Validate checks the whole map: header bounds, a full assignment table,
// every entry in range, and every shard owning at least one bucket (a
// shard with no buckets would accept traffic it can never own).
func (m *Map) Validate() error {
	if m == nil {
		return fmt.Errorf("shard: nil map")
	}
	if err := m.validateHeader(); err != nil {
		return err
	}
	if len(m.Assign) != 1<<m.PrefixBits {
		return fmt.Errorf("shard: assignment covers %d buckets, want %d", len(m.Assign), 1<<m.PrefixBits)
	}
	seen := make([]bool, m.Shards)
	for b, s := range m.Assign {
		if s < 0 || s >= m.Shards {
			return fmt.Errorf("shard: bucket %d assigned to shard %d, want 0..%d", b, s, m.Shards-1)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return fmt.Errorf("shard: shard %d owns no buckets", s)
		}
	}
	if m.Replicas != nil {
		if len(m.Replicas) != len(m.Assign) {
			return fmt.Errorf("shard: replica table covers %d buckets, want %d", len(m.Replicas), len(m.Assign))
		}
		for b, set := range m.Replicas {
			inSet := make([]bool, m.Shards)
			for _, s := range set {
				if s < 0 || s >= m.Shards {
					return fmt.Errorf("shard: bucket %d replica %d outside 0..%d", b, s, m.Shards-1)
				}
				if s == m.Assign[b] {
					return fmt.Errorf("shard: bucket %d lists its owner %d as a replica", b, s)
				}
				if inSet[s] {
					return fmt.Errorf("shard: bucket %d repeats replica %d", b, s)
				}
				inSet[s] = true
			}
		}
	}
	return nil
}

// ReplicasOf returns the reader shards of the bucket key hashes into —
// the failover set a router consults when the owner is unreachable. The
// returned slice is the map's own; callers must not mutate it.
func (m *Map) ReplicasOf(key string) ([]int, error) {
	if m == nil || len(m.Assign) != 1<<m.PrefixBits {
		return nil, fmt.Errorf("shard: map has no complete assignment table")
	}
	b, err := m.bucketOf(key)
	if err != nil {
		return nil, err
	}
	if m.Replicas == nil {
		return nil, nil
	}
	return m.Replicas[b], nil
}

// IsReplica reports whether shard is in the replica set of the bucket
// key hashes into — the check a node runs before accepting a pushed
// artifact it does not own. A bad key or an out-of-range shard is simply
// not a replica.
func (m *Map) IsReplica(key string, shard int) bool {
	set, err := m.ReplicasOf(key)
	if err != nil {
		return false
	}
	for _, s := range set {
		if s == shard {
			return true
		}
	}
	return false
}

// ShardOf maps a content key (a lowercase-hex digest — Design.CacheKey,
// a zone key, a castore name) to its owning shard. The key needs at
// least ceil(PrefixBits/4) hex characters; anything shorter, or any
// non-hex character in the prefix, is an error — a hostile key must be
// rejected, never silently bucketed.
func (m *Map) ShardOf(key string) (int, error) {
	if m == nil || len(m.Assign) != 1<<m.PrefixBits {
		return 0, fmt.Errorf("shard: map has no complete assignment table")
	}
	b, err := m.bucketOf(key)
	if err != nil {
		return 0, err
	}
	return m.Assign[b], nil
}

// BucketOf returns the prefix bucket key hashes into — what the handoff
// path uses to decide whether a cached artifact belongs to a bucket
// being drained. Same key rules as ShardOf.
func (m *Map) BucketOf(key string) (int, error) {
	if m == nil || len(m.Assign) != 1<<m.PrefixBits {
		return 0, fmt.Errorf("shard: map has no complete assignment table")
	}
	return m.bucketOf(key)
}

// bucketOf extracts the leading PrefixBits bits of the hex key.
func (m *Map) bucketOf(key string) (int, error) {
	nibbles := (m.PrefixBits + 3) / 4
	if len(key) < nibbles {
		return 0, fmt.Errorf("shard: key %q shorter than the %d-nibble prefix", key, nibbles)
	}
	v := 0
	for i := 0; i < nibbles; i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | int(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | int(c-'a'+10)
		default:
			// Uppercase hex included: canonical keys are lowercase, and a
			// case-folded alias would double-bucket the same content.
			return 0, fmt.Errorf("shard: key prefix has non-canonical character %q", c)
		}
	}
	return v >> (4*nibbles - m.PrefixBits), nil
}

// Encode renders the map in the flag-friendly form Decode parses:
//
//	v<version>:<prefixBits>:<shards>              round-robin assignment
//	v<version>:<prefixBits>:<shards>:<a0>,<a1>,…  explicit assignment
//
// Maps with replica sets append one more field:
//
//	:r*<k>             uniform — every bucket's readers are the k shards
//	                   after its owner in ring order (WithReplicas)
//	:r<s0>|<s1>|…      explicit — one comma-joined reader set per bucket
//
// The explicit tails are emitted only when the assignment differs from
// round-robin (or the replicas from uniform), so the common map stays
// short ("v1:8:3:r*1").
func (m *Map) Encode() string {
	head := fmt.Sprintf("v%d:%d:%d", m.Version, m.PrefixBits, m.Shards)
	rr := true
	for i, s := range m.Assign {
		if s != i%m.Shards {
			rr = false
			break
		}
	}
	if !rr {
		parts := make([]string, len(m.Assign))
		for i, s := range m.Assign {
			parts[i] = strconv.Itoa(s)
		}
		head += ":" + strings.Join(parts, ",")
	}
	if m.Replicas == nil {
		return head
	}
	return head + ":" + m.encodeReplicas()
}

func (m *Map) encodeReplicas() string {
	if k := len(m.Replicas[0]); k > 0 {
		uniform := true
		want := uniformReplicas(m.Assign, m.Shards, k)
		for b, set := range m.Replicas {
			if len(set) != k {
				uniform = false
				break
			}
			for i, s := range set {
				if want[b][i] != s {
					uniform = false
					break
				}
			}
			if !uniform {
				break
			}
		}
		if uniform {
			return fmt.Sprintf("r*%d", k)
		}
	}
	sets := make([]string, len(m.Replicas))
	for b, set := range m.Replicas {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = strconv.Itoa(s)
		}
		sets[b] = strings.Join(parts, ",")
	}
	return "r" + strings.Join(sets, "|")
}

// Decode parses an Encode'd map and validates it.
func Decode(s string) (*Map, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 3 || len(fields) > 5 {
		return nil, fmt.Errorf("shard: map %q: want v<ver>:<bits>:<shards>[:<assign>][:r<replicas>]", s)
	}
	if !strings.HasPrefix(fields[0], "v") {
		return nil, fmt.Errorf("shard: map %q: version field must start with 'v'", s)
	}
	ver, err := strconv.Atoi(fields[0][1:])
	if err != nil {
		return nil, fmt.Errorf("shard: map %q: version: %v", s, err)
	}
	bits, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("shard: map %q: prefix bits: %v", s, err)
	}
	shards, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, fmt.Errorf("shard: map %q: shards: %v", s, err)
	}
	var replicaField string
	assignField := ""
	switch rest := fields[3:]; len(rest) {
	case 0:
	case 1:
		if strings.HasPrefix(rest[0], "r") {
			replicaField = rest[0]
		} else {
			assignField = rest[0]
		}
	case 2:
		assignField = rest[0]
		if !strings.HasPrefix(rest[1], "r") {
			return nil, fmt.Errorf("shard: map %q: fifth field must be a replica spec (r...)", s)
		}
		replicaField = rest[1]
	}
	m := &Map{Version: ver, PrefixBits: bits, Shards: shards}
	if err := m.validateHeader(); err != nil {
		return nil, err
	}
	if assignField == "" {
		m.Assign = make([]int, 1<<bits)
		for i := range m.Assign {
			m.Assign[i] = i % shards
		}
	} else {
		parts := strings.Split(assignField, ",")
		m.Assign = make([]int, 0, len(parts))
		for i, p := range parts {
			a, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("shard: map %q: assignment[%d]: %v", s, i, err)
			}
			m.Assign = append(m.Assign, a)
		}
	}
	if replicaField != "" {
		if err := m.decodeReplicas(replicaField[1:]); err != nil {
			return nil, fmt.Errorf("shard: map %q: %w", s, err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// decodeReplicas parses the replica field (with its leading 'r' already
// stripped): "*<k>" uniform, or per-bucket "|"-separated sets. Bounds are
// checked while parsing so a hostile field cannot allocate past the
// map's own size.
func (m *Map) decodeReplicas(spec string) error {
	if k, ok := strings.CutPrefix(spec, "*"); ok {
		r, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("replicas: %v", err)
		}
		if r < 1 || r >= m.Shards {
			return fmt.Errorf("replicas: %d per bucket needs %d+ shards, map has %d", r, r+1, m.Shards)
		}
		m.Replicas = uniformReplicas(m.Assign, m.Shards, r)
		return nil
	}
	sets := strings.Split(spec, "|")
	if len(sets) != len(m.Assign) {
		return fmt.Errorf("replicas: %d sets for %d buckets", len(sets), len(m.Assign))
	}
	m.Replicas = make([][]int, len(sets))
	for b, set := range sets {
		if set == "" {
			m.Replicas[b] = []int{}
			continue
		}
		parts := strings.Split(set, ",")
		if len(parts) >= m.Shards {
			return fmt.Errorf("replicas: bucket %d lists %d readers, map has %d shards", b, len(parts), m.Shards)
		}
		out := make([]int, 0, len(parts))
		for _, p := range parts {
			r, err := strconv.Atoi(p)
			if err != nil {
				return fmt.Errorf("replicas: bucket %d: %v", b, err)
			}
			out = append(out, r)
		}
		m.Replicas[b] = out
	}
	return nil
}

// --- job-ID routing --------------------------------------------------------

// EncodeJobID renders the public identifier of a job owned by shard:
// "j-s<shard>-<seq>", seq zero-padded to six digits to match the legacy
// single-node "j-%06d" width.
func EncodeJobID(shard int, seq int64) string {
	return fmt.Sprintf("j-s%d-%06d", shard, seq)
}

// DecodeJobID parses a public job ID.
//
//   - A well-formed sharded ID returns (shard, seq, true, nil).
//   - An ID without the "j-s" prefix returns sharded=false with no error:
//     it is a legacy single-node ID (or an unknown string) the caller
//     resolves against its local registry — at worst a structured 404.
//   - An ID that claims the sharded form but is malformed — empty or
//     oversized digit runs, non-digits, anything after the sequence —
//     returns an error. Overflow attempts and path metacharacters land
//     here, so a hostile ID can never parse into a forwardable route.
//
// The shard value is syntactic only; callers must still bound it by the
// live map's Shards before trusting it.
func DecodeJobID(id string) (shard int, seq int64, sharded bool, err error) {
	rest, ok := strings.CutPrefix(id, "j-s")
	if !ok {
		return 0, 0, false, nil
	}
	shardStr, seqStr, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, 0, false, fmt.Errorf("shard: job id %q: want j-s<shard>-<seq>", id)
	}
	if l := len(shardStr); l == 0 || l > maxJobShardDigits {
		return 0, 0, false, fmt.Errorf("shard: job id %q: shard field must be 1..%d digits", id, maxJobShardDigits)
	}
	if l := len(seqStr); l == 0 || l > maxJobSeqDigits {
		return 0, 0, false, fmt.Errorf("shard: job id %q: sequence field must be 1..%d digits", id, maxJobSeqDigits)
	}
	for _, c := range shardStr + seqStr {
		if c < '0' || c > '9' {
			return 0, 0, false, fmt.Errorf("shard: job id %q: non-digit in shard/sequence field", id)
		}
	}
	shard, err = strconv.Atoi(shardStr)
	if err != nil {
		return 0, 0, false, fmt.Errorf("shard: job id %q: shard: %v", id, err)
	}
	seq, err = strconv.ParseInt(seqStr, 10, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("shard: job id %q: sequence: %v", id, err)
	}
	return shard, seq, true, nil
}
