package shard

// Property suite for live-map transitions: randomized maps (seeded, so
// failures replay) are pushed through the wire codec, the MoveBucket
// successor constructor, and the ShouldAdopt gate, checking the
// invariants the serving tier's convergence proof leans on:
//
//   - Encode/Decode is the identity on every valid map, replica sets
//     included (gossip cannot corrupt a map in flight).
//   - Every MoveBucket successor is a ValidTransition and differs from
//     its parent in at most one bucket's owner.
//   - Validate rejects the replica-table corruptions a hostile or buggy
//     peer could ship: owner inside its own replica set, repeated
//     replicas, out-of-range shards.
//   - ShouldAdopt is monotone: feeding a node any shuffle of a map
//     history converges it to the highest version, never backward, and
//     two nodes fed different shuffles of the same history agree.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// randomMap builds a valid map with arbitrary assignment and (half the
// time) arbitrary replica sets, using rng only.
func randomMap(t *testing.T, rng *rand.Rand) *Map {
	t.Helper()
	bits := 1 + rng.Intn(6) // 2..64 buckets keeps the suite fast
	buckets := 1 << bits
	shards := 1 + rng.Intn(buckets)
	m := &Map{
		Version:    1 + rng.Intn(100),
		PrefixBits: bits,
		Shards:     shards,
		Assign:     make([]int, buckets),
	}
	// Seed every shard with one bucket (Validate requires non-empty
	// ownership), then scatter the rest.
	perm := rng.Perm(buckets)
	for s := 0; s < shards; s++ {
		m.Assign[perm[s]] = s
	}
	for _, b := range perm[shards:] {
		m.Assign[b] = rng.Intn(shards)
	}
	if shards > 1 && rng.Intn(2) == 0 {
		m.Replicas = make([][]int, buckets)
		for b := range m.Replicas {
			// A random subset of the non-owner shards, in random order.
			others := make([]int, 0, shards-1)
			for s := 0; s < shards; s++ {
				if s != m.Assign[b] {
					others = append(others, s)
				}
			}
			rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
			m.Replicas[b] = others[:rng.Intn(len(others)+1)]
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("randomMap built an invalid map: %v\nmap: %+v", err, m)
	}
	return m
}

func TestTransitionWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < 500; i++ {
		m := randomMap(t, rng)
		enc := m.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("iter %d: Decode(%q): %v", i, enc, err)
		}
		if !mapsEqual(m, got) {
			t.Fatalf("iter %d: round trip changed the map\nencoded: %q\nin:  %+v\nout: %+v", i, enc, m, got)
		}
		// Second pass: re-encoding the decoded map must be stable, so a
		// map relayed through many nodes keeps one canonical wire form.
		if enc2 := got.Encode(); enc2 != enc {
			t.Fatalf("iter %d: Encode not stable: %q then %q", i, enc, enc2)
		}
	}
}

// mapsEqual compares maps treating a nil replica table and one of all
// empty sets as DIFFERENT — they encode differently and Decode must
// reproduce exactly what Encode saw.
func mapsEqual(a, b *Map) bool {
	if a.Version != b.Version || a.PrefixBits != b.PrefixBits || a.Shards != b.Shards {
		return false
	}
	if !reflect.DeepEqual(a.Assign, b.Assign) {
		return false
	}
	if (a.Replicas == nil) != (b.Replicas == nil) {
		return false
	}
	if a.Replicas == nil {
		return true
	}
	if len(a.Replicas) != len(b.Replicas) {
		return false
	}
	for i := range a.Replicas {
		if len(a.Replicas[i]) != len(b.Replicas[i]) {
			return false
		}
		for j := range a.Replicas[i] {
			if a.Replicas[i][j] != b.Replicas[i][j] {
				return false
			}
		}
	}
	return true
}

// pickMove selects a random legal single-bucket move: the bucket's
// current owner keeps at least one other bucket afterward.
func pickMove(m *Map, rng *rand.Rand) (bucket, newOwner int, ok bool) {
	owned := make([]int, m.Shards)
	for _, s := range m.Assign {
		owned[s]++
	}
	var movable []int
	for b, s := range m.Assign {
		if owned[s] > 1 {
			movable = append(movable, b)
		}
	}
	if len(movable) == 0 {
		return 0, 0, false
	}
	bucket = movable[rng.Intn(len(movable))]
	newOwner = rng.Intn(m.Shards)
	if newOwner == m.Assign[bucket] {
		newOwner = (newOwner + 1) % m.Shards
	}
	return bucket, newOwner, true
}

func TestMoveBucketAlwaysValidTransition(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbeef))
	for i := 0; i < 300; i++ {
		m := randomMap(t, rng)
		if m.Shards < 2 {
			continue // nowhere to move a bucket
		}
		// Walk a random chain of moves; every link must be adoptable. A
		// move may not orphan its source shard (Validate requires every
		// shard to own a bucket), so pick only from multi-bucket owners.
		cur := m
		for step := 0; step < 5; step++ {
			bucket, newOwner, ok := pickMove(cur, rng)
			if !ok {
				break // every shard owns exactly one bucket: no legal move
			}
			next, err := cur.MoveBucket(bucket, newOwner)
			if err != nil {
				t.Fatalf("iter %d step %d: MoveBucket(%d, %d): %v", i, step, bucket, newOwner, err)
			}
			if next.Version != cur.Version+1 {
				t.Fatalf("iter %d step %d: version %d -> %d, want +1", i, step, cur.Version, next.Version)
			}
			if err := ValidTransition(cur, next); err != nil {
				t.Fatalf("iter %d step %d: MoveBucket produced an invalid transition: %v", i, step, err)
			}
			moved, _, err := Diff(cur, next)
			if err != nil {
				t.Fatalf("iter %d step %d: Diff: %v", i, step, err)
			}
			if len(moved) != 1 || moved[0] != bucket {
				t.Fatalf("iter %d step %d: moved buckets %v, want exactly [%d]", i, step, moved, bucket)
			}
			if err := ShouldAdopt(cur, next); err != nil {
				t.Fatalf("iter %d step %d: adjacent successor not adoptable: %v", i, step, err)
			}
			// The displaced owner keeps read access: when the map carries
			// replica sets, the old owner must land in the bucket's set.
			if next.Replicas != nil {
				old := cur.Assign[bucket]
				found := false
				for _, s := range next.Replicas[bucket] {
					if s == old {
						found = true
					}
				}
				if !found {
					t.Fatalf("iter %d step %d: old owner %d not in replica set %v after move",
						i, step, old, next.Replicas[bucket])
				}
			}
			cur = next
		}
	}
}

func TestValidateRejectsCorruptReplicaTables(t *testing.T) {
	base := func() *Map {
		m, err := New(1, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		m, err = m.WithReplicas(2)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name    string
		corrupt func(m *Map)
	}{
		{"owner in own replica set", func(m *Map) { m.Replicas[0][0] = m.Assign[0] }},
		{"repeated replica", func(m *Map) { m.Replicas[1][1] = m.Replicas[1][0] }},
		{"replica shard out of range high", func(m *Map) { m.Replicas[2][0] = m.Shards }},
		{"replica shard negative", func(m *Map) { m.Replicas[2][0] = -1 }},
		{"replica table too short", func(m *Map) { m.Replicas = m.Replicas[:3] }},
		{"assignment out of range", func(m *Map) { m.Assign[0] = m.Shards }},
		{"shard owns no buckets", func(m *Map) {
			for b := range m.Assign {
				if m.Assign[b] == 3 {
					m.Assign[b] = 0
				}
			}
			m.Replicas = nil // avoid tripping the owner-as-replica check first
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base()
			tc.corrupt(m)
			if err := m.Validate(); err == nil {
				t.Fatalf("Validate accepted a corrupt map: %+v", m)
			}
			// The same corruption arriving by gossip must be rejected by
			// the adoption gate, not just by direct validation.
			cur := base()
			m.Version = cur.Version + 2 // non-adjacent: only shape+validity gate it
			if err := ShouldAdopt(cur, m); err == nil || errors.Is(err, ErrStaleVersion) {
				t.Fatalf("ShouldAdopt admitted a corrupt map (err=%v)", err)
			}
		})
	}
}

// TestShouldAdoptMonotoneConvergence replays a rebalance history to two
// simulated nodes in different shuffles. Both must converge to the
// final map, stale deliveries must be ignored with ErrStaleVersion (not
// rejected), and no adoption may ever lower the version.
func TestShouldAdoptMonotoneConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfeed))
	for iter := 0; iter < 50; iter++ {
		// Build a linear history of single-bucket moves.
		root, err := New(1, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		root, err = root.WithReplicas(1)
		if err != nil {
			t.Fatal(err)
		}
		history := []*Map{root}
		cur := root
		for len(history) < 8 {
			bucket, newOwner, ok := pickMove(cur, rng)
			if !ok {
				t.Fatal("no legal move on a 32-bucket/4-shard map")
			}
			next, err := cur.MoveBucket(bucket, newOwner)
			if err != nil {
				t.Fatal(err)
			}
			history = append(history, next)
			cur = next
		}
		final := history[len(history)-1]

		deliver := func(node *Map, cand *Map) *Map {
			err := ShouldAdopt(node, cand)
			switch {
			case err == nil:
				if cand.Version <= node.Version {
					t.Fatalf("adoption moved version backward: %d -> %d", node.Version, cand.Version)
				}
				return cand
			case errors.Is(err, ErrStaleVersion):
				if cand.Version > node.Version {
					t.Fatalf("version %d > %d flagged stale", cand.Version, node.Version)
				}
				return node
			default:
				t.Fatalf("history map v%d rejected at node v%d: %v", cand.Version, node.Version, err)
				return nil
			}
		}

		// Node A sees the history in a shuffle (gossip reordering); node B
		// sees only the final map (a long partition healed by one pull —
		// the far-jump admission).
		a := root
		for _, idx := range rng.Perm(len(history)) {
			a = deliver(a, history[idx])
		}
		b := deliver(root, final)
		if a.Version != final.Version || b.Version != final.Version {
			t.Fatalf("iter %d: nodes at v%d/v%d, want v%d", iter, a.Version, b.Version, final.Version)
		}
		if !mapsEqual(a, b) {
			t.Fatalf("iter %d: converged nodes disagree\na: %+v\nb: %+v", iter, a, b)
		}
		// Redelivering anything from the history is now a no-op.
		for _, h := range history {
			if got := deliver(a, h); got.Version != final.Version {
				t.Fatalf("iter %d: redelivery moved node to v%d", iter, got.Version)
			}
		}
	}
}

func TestShouldAdoptRejectsShapeChange(t *testing.T) {
	cur, err := New(1, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	otherBits, err := New(5, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	otherShards, err := New(5, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, cand := range map[string]*Map{"prefix bits": otherBits, "shards": otherShards} {
		if err := ShouldAdopt(cur, cand); err == nil || errors.Is(err, ErrStaleVersion) {
			t.Fatalf("%s change admitted (err=%v)", name, err)
		}
	}
	if err := ShouldAdopt(nil, cur); err == nil {
		t.Fatal("nil current map admitted a candidate")
	}
	// An adjacent candidate moving two buckets violates the one-move
	// rule even though a far jump with the same table would be admitted.
	twoMoves := cur.Clone()
	twoMoves.Version++
	twoMoves.Assign[0] = (twoMoves.Assign[0] + 1) % 3
	twoMoves.Assign[1] = (twoMoves.Assign[1] + 1) % 3
	if err := ShouldAdopt(cur, twoMoves); err == nil || errors.Is(err, ErrStaleVersion) {
		t.Fatalf("adjacent two-bucket move admitted (err=%v)", err)
	}
	farJump := twoMoves.Clone()
	farJump.Version = cur.Version + 2
	if err := ShouldAdopt(cur, farJump); err != nil {
		t.Fatalf("far jump with same table rejected: %v", err)
	}
}
