// Package rescache is a content-addressed LRU result cache: byte values
// stored under canonical content-hash keys (wavemin's Design.CacheKey),
// bounded by both entry count and total byte size.
//
// Content addressing is what makes the cache safe to consult blindly: two
// requests share a key only when they denote the same optimization
// problem in canonical form, so a hit can be served without comparing
// inputs. The cache itself is value-agnostic — it stores opaque bytes —
// and safe for concurrent use.
package rescache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Entries   int   // resident entries
	Bytes     int64 // resident key+value bytes
	Hits      int64
	Misses    int64
	Puts      int64
	Evictions int64 // entries dropped to respect the bounds
}

// Cache is a bounded LRU keyed by content hash. The zero value is not
// usable; construct with New.
type Cache struct {
	mu         sync.Mutex
	maxBytes   int64
	maxEntries int
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64
	hits       int64
	misses     int64
	puts       int64
	evictions  int64
}

type entry struct {
	key string
	val []byte
}

// New creates a cache bounded to maxEntries entries and maxBytes total
// key+value bytes. A bound of 0 (or negative) means "unbounded" on that
// axis; a value larger than maxBytes on its own is simply not stored.
func New(maxBytes int64, maxEntries int) *Cache {
	return &Cache{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the value stored under key and marks it most recently used.
// The returned slice is the cache's copy: callers must treat it as
// read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Contains reports whether key is resident, without touching recency or
// the hit/miss counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put stores val under key (copying val), replacing any previous value,
// and evicts least-recently-used entries until both bounds hold. A value
// that alone exceeds the byte bound is not stored (and evicts nothing).
func (c *Cache) Put(key string, val []byte) {
	size := int64(len(key) + len(val))
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.puts++
	cp := append([]byte(nil), val...)
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(cp)) - int64(len(e.val))
		e.val = cp
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: cp})
		c.bytes += size
	}
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		c.evictOldest()
	}
}

// evictOldest drops the LRU entry. Caller holds c.mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.key) + len(e.val))
	c.evictions++
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the resident keys from most to least recently used —
// primarily for tests asserting eviction order.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Puts:      c.puts,
		Evictions: c.evictions,
	}
}
