package rescache

import "sync/atomic"

// Backing is the persistence tier a Tiered cache spills to. It is
// deliberately a two-method interface so rescache stays decoupled from
// any particular store; castore.Store satisfies it. Get must return
// (nil, false) — never wrong bytes — for entries it cannot verify.
type Backing interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
}

// TieredStats extends the in-memory counters with the disk tier's view.
type TieredStats struct {
	Mem       Stats
	DiskHits  int64 // memory misses served from the backing store
	DiskMiss  int64 // misses in both tiers
	WriteErrs int64 // backing Put failures (entry stays memory-only)
}

// Tiered is a two-level read-through cache: an in-memory LRU in front of
// a persistent backing store. Reads consult memory first and promote
// disk hits; writes go through to disk before landing in memory, so
// anything a caller has been told is cached survives a crash (modulo
// backing-store sync policy). Safe for concurrent use.
type Tiered struct {
	mem  *Cache
	disk Backing

	diskHits  atomic.Int64
	diskMiss  atomic.Int64
	writeErrs atomic.Int64
}

// NewTiered layers mem over disk. A nil disk degrades to memory-only
// behavior, so callers can construct one unconditionally and only wire
// a backing store when durability is configured.
func NewTiered(mem *Cache, disk Backing) *Tiered {
	return &Tiered{mem: mem, disk: disk}
}

// Get returns the cached value for key, promoting a disk hit into the
// memory tier so repeated reads stay cheap.
func (t *Tiered) Get(key string) ([]byte, bool) {
	if val, ok := t.mem.Get(key); ok {
		return val, true
	}
	if t.disk == nil {
		return nil, false
	}
	val, ok := t.disk.Get(key)
	if !ok {
		t.diskMiss.Add(1)
		return nil, false
	}
	t.diskHits.Add(1)
	t.mem.Put(key, val)
	return val, true
}

// Put stores val in both tiers, disk first: by the time a caller can
// observe the entry, it is already on its way to stable storage. A
// backing-store failure is counted but does not block the memory tier —
// serving keeps working with durability degraded.
func (t *Tiered) Put(key string, val []byte) {
	if t.disk != nil {
		if err := t.disk.Put(key, val); err != nil {
			t.writeErrs.Add(1)
		}
	}
	t.mem.Put(key, val)
}

// PutLocal stores val in the memory tier only. The durable serving path
// uses it when the bytes already reached the backing store through a
// stricter channel (persist-before-ack), so writing disk again here
// would be redundant.
func (t *Tiered) PutLocal(key string, val []byte) {
	t.mem.Put(key, val)
}

// Contains reports residency in either tier without touching recency.
func (t *Tiered) Contains(key string) bool {
	if t.mem.Contains(key) {
		return true
	}
	if t.disk == nil {
		return false
	}
	_, ok := t.disk.Get(key)
	return ok
}

// Stats snapshots both tiers' counters.
func (t *Tiered) Stats() TieredStats {
	return TieredStats{
		Mem:       t.mem.Stats(),
		DiskHits:  t.diskHits.Load(),
		DiskMiss:  t.diskMiss.Load(),
		WriteErrs: t.writeErrs.Load(),
	}
}
