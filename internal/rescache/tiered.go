package rescache

import (
	"sync/atomic"

	"wavemin/internal/faultinject"
)

// Backing is the persistence tier a Tiered cache spills to. It is
// deliberately a two-method interface so rescache stays decoupled from
// any particular store; castore.Store satisfies it. Get must return
// (nil, false) — never wrong bytes — for entries it cannot verify.
type Backing interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
}

// PeerTier is the remote read-through tier of a sharded fleet: a lookup
// against whichever coordinator owns the key's shard. Unlike Backing it
// returns an error, because a peer can be down in a way a local disk
// cannot — and the Tiered contract is that every peer error DEGRADES TO
// A LOCAL MISS: the caller solves locally instead of failing the
// request. A peer tier is read-only by design; writes stay on the
// owning shard, so a Tiered cache can never perform a wrong-shard write
// through this interface.
type PeerTier interface {
	// PeerGet returns (bytes, true, nil) on a peer hit, (nil, false, nil)
	// on an authoritative miss, and (nil, false, err) when the owner
	// could not be consulted.
	PeerGet(key string) ([]byte, bool, error)
}

// TieredStats extends the in-memory counters with the disk tier's view.
type TieredStats struct {
	Mem       Stats
	DiskHits  int64 // memory misses served from the backing store
	DiskMiss  int64 // misses in both tiers
	WriteErrs int64 // backing Put failures (entry stays memory-only)
	PeerHits  int64 // local misses served by the owning peer
	PeerMiss  int64 // misses the owning peer confirmed
	PeerErrs  int64 // peer lookups that failed (degraded to local miss)
}

// Tiered is a read-through cache of up to three levels: an in-memory LRU
// in front of a persistent backing store, optionally in front of a fleet
// peer tier (SetPeer). Reads consult memory first and promote disk hits;
// writes go through to disk before landing in memory, so anything a
// caller has been told is cached survives a crash (modulo backing-store
// sync policy). The peer tier is read-only — peer hits promote into
// memory, never disk, and peer errors degrade to misses. Safe for
// concurrent use.
type Tiered struct {
	mem  *Cache
	disk Backing
	peer atomic.Pointer[peerHolder] // set at most once, after construction

	diskHits  atomic.Int64
	diskMiss  atomic.Int64
	writeErrs atomic.Int64
	peerHits  atomic.Int64
	peerMiss  atomic.Int64
	peerErrs  atomic.Int64
}

// peerHolder wraps the interface so a nil PeerTier and an unset pointer
// are distinguishable under atomic loads.
type peerHolder struct{ p PeerTier }

// NewTiered layers mem over disk. A nil disk degrades to memory-only
// behavior, so callers can construct one unconditionally and only wire
// a backing store when durability is configured.
func NewTiered(mem *Cache, disk Backing) *Tiered {
	return &Tiered{mem: mem, disk: disk}
}

// SetPeer attaches the fleet read-through tier: local misses (memory and
// disk both) additionally consult the key's owning peer. Peer hits are
// promoted into the MEMORY tier only — never the local disk, which
// belongs to this node's own shards — and every peer failure degrades to
// a local miss, so a dead peer costs a re-solve, never an error.
func (t *Tiered) SetPeer(p PeerTier) {
	if p != nil {
		t.peer.Store(&peerHolder{p: p})
	}
}

// Get returns the cached value for key, promoting a disk hit into the
// memory tier so repeated reads stay cheap. With a peer tier attached, a
// local miss is checked against the key's owning peer before being
// reported as a miss.
func (t *Tiered) Get(key string) ([]byte, bool) {
	if val, ok := t.GetLocal(key); ok {
		return val, true
	}
	ph := t.peer.Load()
	if ph == nil {
		return nil, false
	}
	if err := faultinject.ErrAt(SitePeerGet); err != nil {
		t.peerErrs.Add(1)
		return nil, false
	}
	val, ok, err := ph.p.PeerGet(key)
	if err != nil {
		// The peer-degradation contract: an unreachable owner is a miss,
		// not a failure — the caller falls back to a local solve.
		t.peerErrs.Add(1)
		return nil, false
	}
	if !ok {
		t.peerMiss.Add(1)
		return nil, false
	}
	t.peerHits.Add(1)
	// Memory-only promotion: this node does not own the key, so its
	// durable tier must not adopt it (wrong-shard write).
	t.mem.Put(key, val)
	return val, true
}

// GetLocal consults only this node's own tiers (memory, then disk),
// promoting disk hits into memory. It is the lookup a node uses to
// answer a PEER's read-through request: consulting its own peer tier
// there would bounce a miss around the fleet.
func (t *Tiered) GetLocal(key string) ([]byte, bool) {
	if val, ok := t.mem.Get(key); ok {
		return val, true
	}
	if t.disk == nil {
		return nil, false
	}
	val, ok := t.disk.Get(key)
	if !ok {
		t.diskMiss.Add(1)
		return nil, false
	}
	t.diskHits.Add(1)
	t.mem.Put(key, val)
	return val, true
}

// SitePeerGet is the fault-injection site consulted before every peer
// lookup; an injected error exercises the degrade-to-miss contract
// without a network fault.
const SitePeerGet = "rescache.peer.get"

// Put stores val in both tiers, disk first: by the time a caller can
// observe the entry, it is already on its way to stable storage. A
// backing-store failure is counted but does not block the memory tier —
// serving keeps working with durability degraded.
func (t *Tiered) Put(key string, val []byte) {
	if t.disk != nil {
		if err := t.disk.Put(key, val); err != nil {
			t.writeErrs.Add(1)
		}
	}
	t.mem.Put(key, val)
}

// PutLocal stores val in the memory tier only. The durable serving path
// uses it when the bytes already reached the backing store through a
// stricter channel (persist-before-ack), so writing disk again here
// would be redundant.
func (t *Tiered) PutLocal(key string, val []byte) {
	t.mem.Put(key, val)
}

// LocalKeys snapshots the memory tier's resident keys — the hot set a
// bucket handoff drains to a new owner. The durable tier is deliberately
// not enumerated: handoff copies what is warm, and anything colder is
// re-solved by the new owner (content addressing makes every copy
// identical, so a partial drain costs hit rate, never correctness).
func (t *Tiered) LocalKeys() []string {
	return t.mem.Keys()
}

// Contains reports residency in either tier without touching recency.
func (t *Tiered) Contains(key string) bool {
	if t.mem.Contains(key) {
		return true
	}
	if t.disk == nil {
		return false
	}
	_, ok := t.disk.Get(key)
	return ok
}

// Stats snapshots all tiers' counters.
func (t *Tiered) Stats() TieredStats {
	return TieredStats{
		Mem:       t.mem.Stats(),
		DiskHits:  t.diskHits.Load(),
		DiskMiss:  t.diskMiss.Load(),
		WriteErrs: t.writeErrs.Load(),
		PeerHits:  t.peerHits.Load(),
		PeerMiss:  t.peerMiss.Load(),
		PeerErrs:  t.peerErrs.Load(),
	}
}
