package rescache

import "wavemin/internal/canon"

// ExtendKey derives a new content key from a base key plus a semantic
// payload, under a format tag that names the derivation (and versions it:
// changing what the payload means must change the tag).
//
// This is how derived workloads — internal/yield's Monte Carlo runs over
// an optimization's inputs — get cacheable identities of their own: the
// base key pins the underlying problem (tree, config, modes), the
// semantic string pins every knob that can change the derived result's
// bytes, and nothing execution-shaped (worker counts, chunking, dispatch
// topology) may enter either. The result is a hex sha256 in the same
// keyspace as the primary keys, so every tier — memory, disk store, peer
// read-through, shard routing — accepts it unchanged.
func ExtendKey(base, format, semantic string) string {
	h := canon.NewHasher(format)
	h.Section("base", base)
	h.Section("semantic", semantic)
	return h.Sum()
}
