package rescache_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"wavemin"
	"wavemin/internal/rescache"
)

// --- Content-hash property: hash equality ⇔ canonical-form equality ----
//
// The cache is only sound if Design.CacheKey is a faithful fingerprint of
// the canonical problem. These tests drive it with randomized (tree,
// Config, modes) triples generated from explicit specs: two builds of the
// SAME spec must collide, builds of DIFFERENT specs must not, and the
// non-semantic degrees of freedom (JSON key order, default-filled config
// fields, mode-list permutation, Workers/Budget) must not affect the key.

// reqSpec deterministically generates one optimization request.
type reqSpec struct {
	nSinks  int
	jitter  int // positional offset, µm
	kappa   float64
	samples int
	algo    wavemin.Algorithm
	nModes  int
}

func (s reqSpec) signature() string {
	return fmt.Sprintf("%d/%d/%g/%d/%d/%d", s.nSinks, s.jitter, s.kappa, s.samples, s.algo, s.nModes)
}

// build constructs the spec's design and config from scratch. The rng
// perturbs only NON-semantic choices (Workers, Budget, mode order), so
// builds of one spec always denote the same canonical problem.
func (s reqSpec) build(t *testing.T, rng *rand.Rand) (*wavemin.Design, wavemin.Config) {
	t.Helper()
	sinks := make([]wavemin.Sink, 0, s.nSinks)
	for i := 0; i < s.nSinks; i++ {
		sinks = append(sinks, wavemin.Sink{
			X:   float64(15 + (i%3)*10 + s.jitter),
			Y:   float64(15 + (i/3)*10),
			Cap: 8,
		})
	}
	d, err := wavemin.New(sinks)
	if err != nil {
		t.Fatal(err)
	}
	if s.nModes > 1 {
		modes := make([]wavemin.Mode, 0, s.nModes)
		for m := 0; m < s.nModes; m++ {
			vdd := 1.1
			if m%2 == 1 {
				vdd = 0.9
			}
			modes = append(modes, wavemin.Mode{
				Name:     fmt.Sprintf("m%d", m),
				Supplies: map[string]float64{"core": vdd},
			})
		}
		rng.Shuffle(len(modes), func(i, j int) { modes[i], modes[j] = modes[j], modes[i] })
		if err := d.SetModes(modes); err != nil {
			t.Fatal(err)
		}
	}
	cfg := wavemin.Config{
		Kappa:   s.kappa,
		Samples: s.samples,
		// Execution policy must never reach the key.
		Workers: rng.Intn(8),
		Budget:  time.Duration(rng.Int63n(int64(time.Second))),
	}
	switch s.algo {
	case wavemin.WaveMin:
		// Leave the zero value on half the builds: default filling must
		// make Config{} and Config{Algorithm: WaveMin} identical.
		if rng.Intn(2) == 0 {
			cfg.Algorithm = wavemin.WaveMin
		}
	default:
		cfg.Algorithm = s.algo
	}
	return d, cfg
}

func randomSpecs(rng *rand.Rand, n int) []reqSpec {
	seen := map[string]bool{}
	var specs []reqSpec
	for len(specs) < n {
		s := reqSpec{
			nSinks:  4 + rng.Intn(6),
			jitter:  rng.Intn(3) * 5,
			kappa:   []float64{0, 16, 20, 25}[rng.Intn(4)],
			samples: []int{0, 32, 64}[rng.Intn(3)],
			algo:    wavemin.Algorithm(rng.Intn(3)),
			nModes:  1 + rng.Intn(3),
		}
		if seen[s.signature()] {
			continue
		}
		seen[s.signature()] = true
		specs = append(specs, s)
	}
	return specs
}

func TestCacheKeyPropertyHashEqualsCanonicalEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := randomSpecs(rng, 8)
	type build struct {
		spec reqSpec
		key  string
	}
	var builds []build
	for _, s := range specs {
		// Two independent builds of the same spec, with different
		// non-semantic noise (worker counts, budgets, mode order).
		for rep := 0; rep < 2; rep++ {
			d, cfg := s.build(t, rng)
			key, err := d.CacheKey(cfg)
			if err != nil {
				t.Fatalf("%s: %v", s.signature(), err)
			}
			builds = append(builds, build{spec: s, key: key})
		}
	}
	for i := range builds {
		for j := i + 1; j < len(builds); j++ {
			same := builds[i].spec.signature() == builds[j].spec.signature()
			if same && builds[i].key != builds[j].key {
				t.Errorf("spec %s: two builds hashed differently", builds[i].spec.signature())
			}
			if !same && builds[i].key == builds[j].key {
				t.Errorf("specs %s and %s collided", builds[i].spec.signature(), builds[j].spec.signature())
			}
		}
	}
}

func TestCacheKeyPropertyJSONKeyOrderIrrelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range randomSpecs(rng, 3) {
		d, cfg := s.build(t, rng)
		want, err := d.CacheKey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var canon strings.Builder
		if err := d.SaveTree(&canon); err != nil {
			t.Fatal(err)
		}
		// Re-marshal through map[string]any: object keys come back in
		// sorted order, different from the canonical struct order.
		var blob any
		if err := json.Unmarshal([]byte(canon.String()), &blob); err != nil {
			t.Fatal(err)
		}
		scrambled, err := json.Marshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(scrambled, []byte(canon.String())) {
			t.Fatal("scramble did not change the serialized form; test is vacuous")
		}
		d2, err := wavemin.LoadTree(bytes.NewReader(scrambled))
		if err != nil {
			t.Fatal(err)
		}
		// Carry the modes over: key-order scrambling concerns the tree.
		if s.nModes > 1 {
			d2modes := designModes(d)
			if err := d2.SetModes(d2modes); err != nil {
				t.Fatal(err)
			}
		}
		got, err := d2.CacheKey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("spec %s: reordered JSON keys changed the cache key", s.signature())
		}
	}
}

// designModes snapshots a design's modes via the public field (safe here:
// single-goroutine test).
func designModes(d *wavemin.Design) []wavemin.Mode {
	return append([]wavemin.Mode(nil), d.Modes...)
}

func TestCacheKeyPropertySemanticChangeChangesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomSpecs(rng, 1)[0]
	d, cfg := s.build(t, rng)
	base, err := d.CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Any semantic config change must change the key.
	for name, mut := range map[string]func(wavemin.Config) wavemin.Config{
		"kappa":   func(c wavemin.Config) wavemin.Config { c.Kappa = c.Kappa + 37; return c },
		"samples": func(c wavemin.Config) wavemin.Config { c.Samples = 77; return c },
		"epsilon": func(c wavemin.Config) wavemin.Config { c.Epsilon = 0.2; return c },
		"adi":     func(c wavemin.Config) wavemin.Config { c.EnableADI = !c.EnableADI; return c },
	} {
		k, err := d.CacheKey(mut(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
	// A semantic tree change must change the key.
	var sb strings.Builder
	if err := d.SaveTree(&sb); err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(sb.String(), `"sink_cap": 8`, `"sink_cap": 9`, 1)
	if mutated == sb.String() {
		t.Fatal("tree mutation did not apply; test is vacuous")
	}
	d2, err := wavemin.LoadTree(strings.NewReader(mutated))
	if err != nil {
		t.Fatal(err)
	}
	if s.nModes > 1 {
		if err := d2.SetModes(designModes(d)); err != nil {
			t.Fatal(err)
		}
	}
	k2, err := d2.CacheKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == base {
		t.Error("mutating a sink cap did not change the key")
	}
}

// --- LRU behavior --------------------------------------------------------

func TestLRUEvictionOrder(t *testing.T) {
	c := rescache.New(0, 3)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("c", []byte("3"))
	if _, ok := c.Get("a"); !ok { // refresh a: eviction order is now b,c
		t.Fatal("missing a")
	}
	c.Put("d", []byte("4"))
	if c.Contains("b") {
		t.Fatal("b should be the LRU victim")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if got, want := c.Keys(), []string{"d", "a", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recency order %v, want %v", got, want)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestLRUMaxBytesAccounting(t *testing.T) {
	// Each entry is 1-byte key + 9-byte value = 10 bytes.
	c := rescache.New(25, 0)
	c.Put("a", bytes.Repeat([]byte("x"), 9))
	c.Put("b", bytes.Repeat([]byte("y"), 9))
	if st := c.Stats(); st.Bytes != 20 || st.Entries != 2 {
		t.Fatalf("stats after two puts: %+v", st)
	}
	c.Put("c", bytes.Repeat([]byte("z"), 9)) // 30 > 25: evict LRU ("a")
	st := c.Stats()
	if c.Contains("a") || !c.Contains("b") || !c.Contains("c") {
		t.Fatalf("wrong victim; keys = %v", c.Keys())
	}
	if st.Bytes != 20 || st.Evictions != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	// Replacement adjusts accounting instead of double-counting.
	c.Put("b", []byte("shorter")) // 1+7 = 8 bytes
	if st := c.Stats(); st.Bytes != 18 {
		t.Fatalf("bytes after replace = %d, want 18", st.Bytes)
	}
	// A value that alone exceeds the bound is not stored and evicts nothing.
	c.Put("huge", bytes.Repeat([]byte("h"), 30))
	if c.Contains("huge") {
		t.Fatal("oversize value stored")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("oversize put disturbed the cache: %+v", st)
	}
}

func TestLRUGetCopiesAreStable(t *testing.T) {
	c := rescache.New(0, 0)
	val := []byte("payload")
	c.Put("k", val)
	val[0] = 'X' // caller mutating its slice must not reach the cache
	got, ok := c.Get("k")
	if !ok || string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("phantom hit")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}
