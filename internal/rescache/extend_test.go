package rescache

import "testing"

func TestExtendKeyDerivation(t *testing.T) {
	base := "aaaa1111"
	k := ExtendKey(base, "fmt-v1", "knob=1")
	if len(k) != 64 {
		t.Fatalf("extended key %q is not a hex sha256", k)
	}
	if k == base {
		t.Fatal("extended key equals the base key")
	}
	if ExtendKey(base, "fmt-v1", "knob=1") != k {
		t.Fatal("derivation not deterministic")
	}
	if ExtendKey(base, "fmt-v1", "knob=2") == k {
		t.Fatal("semantic change did not change the key")
	}
	if ExtendKey("bbbb2222", "fmt-v1", "knob=1") == k {
		t.Fatal("base change did not change the key")
	}
	if ExtendKey(base, "fmt-v2", "knob=1") == k {
		t.Fatal("format version change did not change the key")
	}
}

// TestExtendKeyUsableAsPrimaryKey: extended keys must flow through every
// cache tier unchanged — they are ordinary keys to the cache.
func TestExtendKeyUsableAsPrimaryKey(t *testing.T) {
	c := New(1<<20, 16)
	k := ExtendKey("aaaa1111", "fmt-v1", "knob=1")
	c.Put(k, []byte("blob"))
	got, ok := c.Get(k)
	if !ok || string(got) != "blob" {
		t.Fatalf("extended key round-trip failed: %q %v", got, ok)
	}
}
