package rescache

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

type fakeBacking struct {
	mu     sync.Mutex
	m      map[string][]byte
	puts   int
	gets   int
	putErr error
}

func newFakeBacking() *fakeBacking { return &fakeBacking{m: make(map[string][]byte)} }

func (f *fakeBacking) Get(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	v, ok := f.m[key]
	return v, ok
}

func (f *fakeBacking) Put(key string, val []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	if f.putErr != nil {
		return f.putErr
	}
	f.m[key] = append([]byte(nil), val...)
	return nil
}

func TestTieredWriteThroughAndReadThrough(t *testing.T) {
	disk := newFakeBacking()
	tc := NewTiered(New(0, 0), disk)

	tc.Put("aa", []byte("alpha"))
	if _, ok := disk.m["aa"]; !ok {
		t.Fatal("put did not write through to disk")
	}
	if v, ok := tc.Get("aa"); !ok || !bytes.Equal(v, []byte("alpha")) {
		t.Fatal("memory tier miss after put")
	}
	if st := tc.Stats(); st.DiskHits != 0 {
		t.Fatalf("memory hit counted as disk hit: %+v", st)
	}

	// An entry only on disk (e.g. after restart) is promoted on read.
	disk.m["bb"] = []byte("bravo")
	v, ok := tc.Get("bb")
	if !ok || !bytes.Equal(v, []byte("bravo")) {
		t.Fatal("read-through miss")
	}
	if st := tc.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hit not counted: %+v", st)
	}
	gets := disk.gets
	if v, ok := tc.Get("bb"); !ok || !bytes.Equal(v, []byte("bravo")) {
		t.Fatal("promoted entry lost")
	}
	if disk.gets != gets {
		t.Fatal("second read hit disk despite promotion")
	}

	if _, ok := tc.Get("absent"); ok {
		t.Fatal("hit for absent key")
	}
	if st := tc.Stats(); st.DiskMiss != 1 {
		t.Fatalf("double miss not counted: %+v", st)
	}
}

func TestTieredMemoryEvictionFallsBackToDisk(t *testing.T) {
	disk := newFakeBacking()
	tc := NewTiered(New(0, 1), disk) // memory holds a single entry

	tc.Put("aa", []byte("alpha"))
	tc.Put("bb", []byte("bravo")) // evicts aa from memory

	if !tc.Contains("aa") {
		t.Fatal("evicted entry should still be resident on disk")
	}
	if v, ok := tc.Get("aa"); !ok || !bytes.Equal(v, []byte("alpha")) {
		t.Fatal("evicted entry not recovered from disk")
	}
}

func TestTieredDiskWriteFailureDegradesGracefully(t *testing.T) {
	disk := newFakeBacking()
	disk.putErr = errors.New("disk full")
	tc := NewTiered(New(0, 0), disk)

	tc.Put("aa", []byte("alpha"))
	if v, ok := tc.Get("aa"); !ok || !bytes.Equal(v, []byte("alpha")) {
		t.Fatal("memory tier should still serve after disk write failure")
	}
	if st := tc.Stats(); st.WriteErrs != 1 {
		t.Fatalf("write error not counted: %+v", st)
	}
	if len(disk.m) != 0 {
		t.Fatal("failed put left bytes on disk")
	}
}

func TestTieredNilBackingIsMemoryOnly(t *testing.T) {
	tc := NewTiered(New(0, 0), nil)
	tc.Put("aa", []byte("alpha"))
	if v, ok := tc.Get("aa"); !ok || !bytes.Equal(v, []byte("alpha")) {
		t.Fatal("memory-only tiered cache broken")
	}
	if _, ok := tc.Get("bb"); ok {
		t.Fatal("phantom hit with nil backing")
	}
	if tc.Contains("bb") {
		t.Fatal("phantom contains with nil backing")
	}
}
