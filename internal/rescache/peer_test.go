package rescache

import (
	"errors"
	"sync/atomic"
	"testing"

	"wavemin/internal/faultinject"
)

// fakePeer scripts the peer tier: a map of owned entries plus a failure
// switch that simulates a dead or partitioned owner.
type fakePeer struct {
	entries map[string][]byte
	dead    atomic.Bool
	calls   atomic.Int64
}

func (p *fakePeer) PeerGet(key string) ([]byte, bool, error) {
	p.calls.Add(1)
	if p.dead.Load() {
		return nil, false, errors.New("peer: connection refused")
	}
	v, ok := p.entries[key]
	return v, ok, nil
}

// fakeDisk is an in-memory Backing that records writes, so tests can
// prove the peer tier never reaches the durable tier.
type fakeDisk struct {
	entries map[string][]byte
	puts    atomic.Int64
}

func (d *fakeDisk) Get(key string) ([]byte, bool) { v, ok := d.entries[key]; return v, ok }
func (d *fakeDisk) Put(key string, val []byte) error {
	d.puts.Add(1)
	d.entries[key] = append([]byte(nil), val...)
	return nil
}

// TestPeerTierReadThrough: a local miss consults the peer, a peer hit is
// served and promoted to the MEMORY tier only — the local disk never
// adopts a key another shard owns.
func TestPeerTierReadThrough(t *testing.T) {
	disk := &fakeDisk{entries: map[string][]byte{}}
	peer := &fakePeer{entries: map[string][]byte{"k1": []byte("remote-bytes")}}
	tc := NewTiered(New(1<<20, 16), disk)
	tc.SetPeer(peer)

	got, ok := tc.Get("k1")
	if !ok || string(got) != "remote-bytes" {
		t.Fatalf("Get(k1) = (%q, %v), want peer hit", got, ok)
	}
	if n := disk.puts.Load(); n != 0 {
		t.Fatalf("peer hit wrote %d entries to the local disk tier (wrong-shard write)", n)
	}
	// Promotion landed in memory: the second read is local, no peer call.
	before := peer.calls.Load()
	if _, ok := tc.Get("k1"); !ok {
		t.Fatal("promoted entry missing from memory tier")
	}
	if peer.calls.Load() != before {
		t.Fatal("second read re-consulted the peer; promotion failed")
	}
	st := tc.Stats()
	if st.PeerHits != 1 {
		t.Fatalf("PeerHits = %d, want 1", st.PeerHits)
	}

	// An authoritative peer miss is a miss, counted as such.
	if _, ok := tc.Get("absent"); ok {
		t.Fatal("absent key reported a hit")
	}
	if st := tc.Stats(); st.PeerMiss != 1 {
		t.Fatalf("PeerMiss = %d, want 1", st.PeerMiss)
	}
}

// TestPeerTierErrorDegradesToMiss is the regression for the fleet
// degradation contract: a dead peer must read as a local miss — the
// caller re-solves — and must never surface as an error or corrupt the
// local tiers. Exercised both through a failing PeerTier and through the
// rescache.peer.get fault-injection site.
func TestPeerTierErrorDegradesToMiss(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	disk := &fakeDisk{entries: map[string][]byte{}}
	peer := &fakePeer{entries: map[string][]byte{"k1": []byte("remote-bytes")}}
	peer.dead.Store(true)
	tc := NewTiered(New(1<<20, 16), disk)
	tc.SetPeer(peer)

	if _, ok := tc.Get("k1"); ok {
		t.Fatal("dead peer produced a hit")
	}
	if st := tc.Stats(); st.PeerErrs != 1 {
		t.Fatalf("PeerErrs = %d, want 1", st.PeerErrs)
	}
	// The degraded lookup must not poison later ones: the peer recovers
	// and the same key is served remotely.
	peer.dead.Store(false)
	if got, ok := tc.Get("k1"); !ok || string(got) != "remote-bytes" {
		t.Fatalf("recovered peer: Get(k1) = (%q, %v), want hit", got, ok)
	}

	// Fault injection at the site: even a healthy peer is skipped and the
	// lookup degrades, proving the guard sits before the network call.
	faultinject.SetErr(SitePeerGet, func() error { return errors.New("injected peer fault") })
	if _, ok := tc.Get("k2"); ok {
		t.Fatal("injected fault produced a hit")
	}
	if st := tc.Stats(); st.PeerErrs != 2 {
		t.Fatalf("PeerErrs = %d, want 2 after injected fault", st.PeerErrs)
	}
	// Local writes still work while the peer path is faulted — serving
	// degrades, it does not stop.
	tc.Put("k3", []byte("local"))
	if got, ok := tc.Get("k3"); !ok || string(got) != "local" {
		t.Fatalf("local Put/Get under peer fault = (%q, %v)", got, ok)
	}
}

// TestGetLocalNeverConsultsPeer: the lookup that answers a peer's
// read-through request must stay node-local, or two nodes could bounce
// a missing key between each other forever.
func TestGetLocalNeverConsultsPeer(t *testing.T) {
	disk := &fakeDisk{entries: map[string][]byte{"d1": []byte("disk-bytes")}}
	peer := &fakePeer{entries: map[string][]byte{"p1": []byte("peer-bytes")}}
	tc := NewTiered(New(1<<20, 16), disk)
	tc.SetPeer(peer)

	if got, ok := tc.GetLocal("d1"); !ok || string(got) != "disk-bytes" {
		t.Fatalf("GetLocal(d1) = (%q, %v), want local disk hit", got, ok)
	}
	if _, ok := tc.GetLocal("p1"); ok {
		t.Fatal("GetLocal served a key only the peer holds")
	}
	if n := peer.calls.Load(); n != 0 {
		t.Fatalf("GetLocal made %d peer calls, want 0", n)
	}
}
