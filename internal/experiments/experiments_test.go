package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run reduced configurations (one small circuit,
// coarse sampling) to keep the suite fast; the full paper parameters are
// exercised by cmd/experiments and the benchmarks in bench_test.go.

func TestLoadCircuit(t *testing.T) {
	ckt, err := LoadCircuit("s15850")
	if err != nil {
		t.Fatal(err)
	}
	if ckt.Tree.Len() == 0 || ckt.Grid.NodeCount() == 0 {
		t.Fatal("empty circuit")
	}
	if _, err := LoadCircuit("nope"); err == nil {
		t.Fatal("unknown circuit should error")
	}
}

func TestTable1ShowsObservation4(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(res.Rows))
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Format(), "#Invs") {
		t.Fatal("format missing header")
	}
	// Slew grows monotonically with replacements (INV_X8 loads the parent
	// more than BUF_X4).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Slew <= res.Rows[i-1].Slew {
			t.Fatalf("slew not monotone at row %d", i)
		}
	}
}

func TestFig1MirroredProfiles(t *testing.T) {
	res, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffer.PeakPlus() <= res.Buffer.PeakMinus() {
		t.Fatal("buffer should peak at rising edge")
	}
	if res.Inverter.PeakPlus() >= res.Inverter.PeakMinus() {
		t.Fatal("inverter should peak at falling edge")
	}
	if res.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestFig2Observation1(t *testing.T) {
	res, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 16 {
		t.Fatalf("%d assignments, want 16", len(res.Assignments))
	}
	if !res.ObservationHolds() {
		t.Fatal("leaf-optimal assignment should differ from the true optimum (Observation 1)")
	}
}

func TestFig3ADIBenefit(t *testing.T) {
	res, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumADIs == 0 {
		t.Fatal("the toy should assign ADIs")
	}
	if res.WithADI.Peak >= res.WithoutADI.Peak {
		t.Fatalf("ADIs should reduce the peak: %g vs %g", res.WithADI.Peak, res.WithoutADI.Peak)
	}
}

func TestFig6MatchesPaperGrid(t *testing.T) {
	res, err := RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 6: e2's arrivals include 68 (INV_X2) … 75 (BUF_X1).
	if got := res.Arrivals["INV_X2"][1]; got != 68 {
		t.Fatalf("INV_X2 on e2: %g, want 68", got)
	}
	if got := res.Arrivals["BUF_X1"][1]; got != 75 {
		t.Fatalf("BUF_X1 on e2: %g, want 75", got)
	}
	// The highlighted interval [69, 74] must be present.
	found := false
	for _, iv := range res.Intervals {
		if iv.Lo == 69 && iv.Hi == 74 {
			found = true
		}
	}
	if !found {
		t.Fatal("interval [69,74] missing")
	}
}

func TestFig14NegativeCorrelation(t *testing.T) {
	res, err := RunFig14("s15850", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 5 {
		t.Fatalf("only %d intersections", len(res.Points))
	}
	if res.Correlation >= 0 {
		t.Fatalf("expected negative DoF/noise correlation, got %g", res.Correlation)
	}
}

func TestTable5SmallCircuit(t *testing.T) {
	cfg := Table5Config{Circuits: []string{"s15850"}, Kappa: 20, Samples: 32, Epsilon: 0.05, MaxIntervals: 4}
	res, err := RunTable5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r.WaveMin.Peak <= 0 || r.PeakMin.Peak <= 0 {
		t.Fatal("missing golden peaks")
	}
	// The headline: WaveMin at least matches the baseline here.
	if r.WaveMin.Peak > r.PeakMin.Peak*1.02 {
		t.Fatalf("WaveMin %g worse than PeakMin %g", r.WaveMin.Peak, r.PeakMin.Peak)
	}
	// Both respect κ (+drift slack).
	if r.SkewPM > cfg.Kappa+2 || r.SkewWM > cfg.Kappa+2 {
		t.Fatalf("skew violated: PM %g, WM %g", r.SkewPM, r.SkewWM)
	}
	if !strings.Contains(res.Format(), "s15850") {
		t.Fatal("format missing row")
	}
}

func TestTable6SamplingTrend(t *testing.T) {
	cfg := Table6Config{Circuits: []string{"s15850"}, Kappa: 20, Epsilon: 0.05,
		SampleSweeps: []int{4, 32}, FastSamples: 32, MaxIntervals: 4}
	res, err := RunTable6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	// Denser sampling should not be (much) worse than |S|=4.
	if r.Sweep[1].Peak > r.Sweep[0].Peak*1.10 {
		t.Fatalf("|S|=32 peak %g much worse than |S|=4 %g", r.Sweep[1].Peak, r.Sweep[0].Peak)
	}
	// And WaveMin variants beat the PeakMin baseline.
	if r.Sweep[1].Peak > r.PeakMin.Peak*1.02 {
		t.Fatalf("WaveMin %g worse than PeakMin %g", r.Sweep[1].Peak, r.PeakMin.Peak)
	}
	if r.Fast.Exec <= 0 || r.Sweep[0].Exec <= 0 {
		t.Fatal("missing timings")
	}
}

func TestTable7MultiMode(t *testing.T) {
	cfg := Table7Config{Circuits: []string{"s15850"}, SkewBounds: []float64{12, 20},
		NumModes: 3, Samples: 16, Epsilon: 0.05, MaxIntersections: 4}
	res, err := RunTable7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.SkewOK {
			t.Fatalf("κ=%g: skew violated", r.Kappa)
		}
		if r.Wave.Peak > r.Base.Peak*1.02 {
			t.Fatalf("κ=%g: ClkWaveMin-M %g worse than baseline %g", r.Kappa, r.Wave.Peak, r.Base.Peak)
		}
	}
	// Tighter κ needs at least as many ADBs.
	if res.Rows[0].BaseADB < res.Rows[1].BaseADB {
		t.Fatalf("ADB count should not grow with κ: %d @12 vs %d @20",
			res.Rows[0].BaseADB, res.Rows[1].BaseADB)
	}
}

func TestMonteCarloStudy(t *testing.T) {
	cfg := MCConfig{Circuits: []string{"s15850"}, Kappa: 100, Samples: 16, Epsilon: 0.05,
		Sigma: 0.05, Instances: 100, Seed: 1, MaxIntervals: 4}
	res, err := RunMonteCarlo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	// At the paper's κ=100 both yields are high.
	if r.PeakMin.Yield < 0.7 || r.WaveMin.Yield < 0.7 {
		t.Fatalf("yields too low: PM %g, WM %g", r.PeakMin.Yield, r.WaveMin.Yield)
	}
	// σ̂/µ̂ in the paper's 0.05–0.09 decade.
	if r.WaveMin.NormSDev < 0.01 || r.WaveMin.NormSDev > 0.2 {
		t.Fatalf("implausible normalized sdev %g", r.WaveMin.NormSDev)
	}
}

func TestBaselineLadderOrdering(t *testing.T) {
	res, err := RunBaselineLadder([]string{"s15850"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	// Each generation improves on no optimization; WaveMin ends best (or
	// within a whisker).
	if r.Nieh.Peak >= r.NoOpt.Peak {
		t.Fatalf("Nieh %g should beat no-opt %g", r.Nieh.Peak, r.NoOpt.Peak)
	}
	if r.WaveMin.Peak > r.PeakMin.Peak*1.02 {
		t.Fatalf("WaveMin %g should not lose to PeakMin %g", r.WaveMin.Peak, r.PeakMin.Peak)
	}
	if r.WaveMin.Peak > r.Nieh.Peak*1.02 || r.WaveMin.Peak > r.Samanta.Peak*1.02 {
		t.Fatalf("WaveMin %g should not lose to the early baselines %g/%g",
			r.WaveMin.Peak, r.Nieh.Peak, r.Samanta.Peak)
	}
	if !strings.Contains(res.Format(), "Nieh[22]") {
		t.Fatal("format missing header")
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	res, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intersections) != 3 {
		t.Fatalf("%d intersections, want 3", len(res.Intersections))
	}
	// The Fig. 12 optimum: BUF_X1 on e1/e2, INV_X1 on e3/e4, window (75,79).
	want := []string{"BUF_X1", "BUF_X1", "INV_X1", "INV_X1"}
	for i := range want {
		if res.Assignment[i] != want[i] {
			t.Fatalf("assignment %v, want %v", res.Assignment, want)
		}
	}
	if res.Windows[0].Hi != 75 || res.Windows[1].Hi != 79 {
		t.Fatalf("windows (%g,%g)", res.Windows[0].Hi, res.Windows[1].Hi)
	}
	if res.SkewM1 > 3.5 || res.SkewM2 > 4.5 {
		t.Fatalf("skews %g/%g, want ≈3/4", res.SkewM1, res.SkewM2)
	}
	out := res.Format()
	for _, wantStr := range []string{"(75, 79)", "(75, 78)", "(72, 77)", "fsbl", "infsbl"} {
		if !strings.Contains(out, wantStr) {
			t.Fatalf("format missing %q:\n%s", wantStr, out)
		}
	}
}
