package experiments

import (
	"context"

	"wavemin/internal/parallel"
	"wavemin/internal/polarity"
	"wavemin/internal/variation"
)

// MCConfig mirrors the paper's §VII-D study: trees optimized at κ = 100 ps
// and |S| = 158, then 1000 Monte Carlo instances with 5 % Gaussian
// variation on wires, cell widths and thresholds. At the paper's κ = 100
// our substrate also lands near the paper's ~95 % yield regime.
type MCConfig struct {
	Circuits     []string
	Kappa        float64
	Samples      int
	Epsilon      float64
	Sigma        float64
	Correlation  float64 // die-wide share of σ (see variation.Params)
	Instances    int
	Seed         int64
	WithGrid     bool // also measure rail noise (slower)
	MaxIntervals int
	// Workers bounds the per-circuit row fan-out plus the solver and
	// Monte Carlo parallelism inside each row. 0 = GOMAXPROCS, 1 =
	// serial; results are identical for every worker count.
	Workers int
}

// DefaultMCConfig returns the scaled defaults over all benchmarks.
func DefaultMCConfig() MCConfig {
	names := make([]string, 0, 7)
	for _, s := range allSpecs() {
		names = append(names, s.Name)
	}
	return MCConfig{
		Circuits: names, Kappa: 100, Samples: 158, Epsilon: 0.01,
		Sigma: 0.05, Correlation: 0.8, Instances: 1000, Seed: 1, MaxIntervals: 8,
	}
}

// MCRow is one circuit's yields and spreads for both optimizers.
type MCRow struct {
	Name             string
	PeakMin, WaveMin *variation.Stats
	NominalSkewPM    float64
	NominalSkewWM    float64
}

// MCResult aggregates the study.
type MCResult struct {
	Config MCConfig
	Rows   []MCRow
	// Averages over circuits, paper-style.
	AvgYieldPM, AvgYieldWM       float64
	AvgNormPeakPM, AvgNormPeakWM float64
	AvgNormVDDPM, AvgNormVDDWM   float64
	AvgNormGndPM, AvgNormGndWM   float64
}

// RunMonteCarlo optimizes each circuit with both algorithms and evaluates
// both products under process variation.
func RunMonteCarlo(cfg MCConfig) (*MCResult, error) {
	out := &MCResult{Config: cfg}
	rows := make([]MCRow, len(cfg.Circuits))
	ferr := parallel.ForEach(context.Background(), cfg.Workers, len(cfg.Circuits), func(i int) error {
		name := cfg.Circuits[i]
		ckt, err := LoadCircuit(name)
		if err != nil {
			return err
		}
		lib := sizingLib(ckt.Lib)
		row := MCRow{Name: name}
		for _, algo := range []polarity.Algorithm{polarity.ClkPeakMinBaseline, polarity.ClkWaveMin} {
			res, err := polarity.Optimize(context.Background(), ckt.Tree, polarity.Config{
				Library: lib, Kappa: cfg.Kappa, Samples: cfg.Samples,
				Epsilon: cfg.Epsilon, Algorithm: algo, MaxIntervals: cfg.MaxIntervals,
				Workers: cfg.Workers,
			})
			if err != nil {
				return err
			}
			work := ckt.Tree.Clone()
			polarity.Apply(work, res.Assignment)
			p := variation.Params{
				Sigma: cfg.Sigma, Correlation: cfg.Correlation,
				N: cfg.Instances, Kappa: cfg.Kappa, Seed: cfg.Seed,
				Workers: cfg.Workers,
			}
			if cfg.WithGrid {
				p.Grid = ckt.Grid
			}
			st, err := variation.MonteCarlo(context.Background(), work, p)
			if err != nil {
				return err
			}
			nominal := work.ComputeTiming(p.Mode).Skew(work)
			if algo == polarity.ClkPeakMinBaseline {
				row.PeakMin, row.NominalSkewPM = st, nominal
			} else {
				row.WaveMin, row.NominalSkewWM = st, nominal
			}
		}
		rows[i] = row
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	out.Rows = rows
	for _, row := range rows {
		out.AvgYieldPM += row.PeakMin.Yield
		out.AvgYieldWM += row.WaveMin.Yield
		out.AvgNormPeakPM += row.PeakMin.NormSDev
		out.AvgNormPeakWM += row.WaveMin.NormSDev
		out.AvgNormVDDPM += row.PeakMin.NormVDD
		out.AvgNormVDDWM += row.WaveMin.NormVDD
		out.AvgNormGndPM += row.PeakMin.NormGnd
		out.AvgNormGndWM += row.WaveMin.NormGnd
	}
	if n := float64(len(out.Rows)); n > 0 {
		out.AvgYieldPM /= n
		out.AvgYieldWM /= n
		out.AvgNormPeakPM /= n
		out.AvgNormPeakWM /= n
		out.AvgNormVDDPM /= n
		out.AvgNormVDDWM /= n
		out.AvgNormGndPM /= n
		out.AvgNormGndWM /= n
	}
	return out, nil
}

// Format renders the §VII-D summary.
func (r *MCResult) Format() string {
	w := &tableWriter{}
	w.row(cellf(10, "Circuit"),
		cellf(9, "PM yield"), cellf(9, "WM yield"),
		cellf(9, "PM σ̂/µ̂"), cellf(9, "WM σ̂/µ̂"),
		cellf(9, "PM skew"), cellf(9, "WM skew"))
	for _, row := range r.Rows {
		w.row(cellf(10, "%s", row.Name),
			cellf(9, "%.1f%%", row.PeakMin.Yield*100), cellf(9, "%.1f%%", row.WaveMin.Yield*100),
			cellf(9, "%.3f", row.PeakMin.NormSDev), cellf(9, "%.3f", row.WaveMin.NormSDev),
			cellf(9, "%.1f", row.NominalSkewPM), cellf(9, "%.1f", row.NominalSkewWM))
	}
	w.row(cellf(10, "Average"),
		cellf(9, "%.1f%%", r.AvgYieldPM*100), cellf(9, "%.1f%%", r.AvgYieldWM*100),
		cellf(9, "%.3f", r.AvgNormPeakPM), cellf(9, "%.3f", r.AvgNormPeakWM),
		cellf(9, ""), cellf(9, ""))
	if r.Config.WithGrid {
		w.row(cellf(10, "Noise σ̂/µ̂"),
			cellf(9, "V:%.3f", r.AvgNormVDDPM), cellf(9, "V:%.3f", r.AvgNormVDDWM),
			cellf(9, "G:%.3f", r.AvgNormGndPM), cellf(9, "G:%.3f", r.AvgNormGndWM),
			cellf(9, ""), cellf(9, ""))
	}
	return w.String()
}
