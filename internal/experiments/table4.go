package experiments

import (
	"context"
	"fmt"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/multimode"
)

// Table4 reproduces the paper's Table IV: the feasible intersections of
// the two-mode worked example (Fig. 10/11) with their per-sink feasible
// cell types, plus the downstream Fig. 12 optimum.
type Table4 struct {
	Intersections []multimode.Intersection
	LeafCells     [][]string // per leaf: candidate cell names
	Feasible      [][][]string
	// Fig. 12 outcome.
	Assignment []string
	Windows    []multimode.Window
	SkewM1     float64
	SkewM2     float64
}

// fig10Tree rebuilds the paper's Fig. 10 design: a BUF_X2 root, two BUF_X2
// voltage-island internals (A1/A2), four BUF_X2 leaves; arrivals 70 in M1
// and 70/70/78/78 in M2 (island A2 at 0.9 V).
func fig10Tree() (*clocktree.Tree, []clocktree.Mode, *cell.Library) {
	lib := cell.PaperLibrary()
	buf2 := lib.MustByName("BUF_X2")
	tr := clocktree.New(buf2, 25, 140)
	m1 := tr.AddChild(tr.Root(), buf2, 15, 120, 0.5, 27) // 7 ps wire
	m2 := tr.AddChild(tr.Root(), buf2, 35, 120, 0.5, 27)
	for i, mid := range []clocktree.NodeID{m1, m1, m2, m2} {
		leaf := tr.AddChild(mid, buf2, float64(10+8*i), 10, 0.5, 23) // 6 ps wire
		tr.SetSinkCap(leaf, 0)
	}
	tr.SetDomainSubtree(tr.Root(), "A1")
	tr.SetDomainSubtree(m2, "A2")
	modes := []clocktree.Mode{
		{Name: "M1", Supplies: map[string]float64{"A1": 1.1, "A2": 1.1}},
		{Name: "M2", Supplies: map[string]float64{"A1": 1.1, "A2": 0.9}},
	}
	return tr, modes, lib
}

// RunTable4 enumerates the worked example's feasible intersections and
// solves the best one.
func RunTable4() (*Table4, error) {
	tr, modes, lib := fig10Tree()
	cfg := multimode.Config{Library: lib, Kappa: 5, Samples: 16, Epsilon: 0.01}
	p, err := multimode.NewProblem(tr, modes, cfg)
	if err != nil {
		return nil, err
	}
	out := &Table4{Intersections: p.Intersections()}
	for li := range p.Leaves() {
		var names []string
		for _, c := range p.CandidateCells(li) {
			names = append(names, c.Name)
		}
		out.LeafCells = append(out.LeafCells, names)
	}
	for _, ix := range out.Intersections {
		perLeaf := make([][]string, len(ix.Feasible))
		for li, cis := range ix.Feasible {
			for _, ci := range cis {
				perLeaf[li] = append(perLeaf[li], out.LeafCells[li][ci])
			}
		}
		out.Feasible = append(out.Feasible, perLeaf)
	}
	res, err := multimode.Optimize(context.Background(), tr, modes, cfg)
	if err != nil {
		return nil, err
	}
	for _, leaf := range tr.Leaves() {
		out.Assignment = append(out.Assignment, res.Assignment[leaf].Name)
	}
	out.Windows = res.Windows
	if err := multimode.ApplyResult(context.Background(), tr, modes, cfg.Kappa, res); err != nil {
		return nil, err
	}
	out.SkewM1 = tr.ComputeTiming(modes[0]).Skew(tr)
	out.SkewM2 = tr.ComputeTiming(modes[1]).Skew(tr)
	return out, nil
}

// Format renders the paper's fsbl/infsbl table plus the Fig. 12 outcome.
func (t *Table4) Format() string {
	w := &tableWriter{}
	header := []string{cellf(14, "Intersection"), cellf(5, "Node")}
	for _, n := range t.LeafCells[0] {
		header = append(header, cellf(8, "%s", n))
	}
	w.row(header...)
	for i, ix := range t.Intersections {
		name := fmt.Sprintf("(%.0f, %.0f)", ix.Windows[0].Hi, ix.Windows[1].Hi)
		for li := range t.Feasible[i] {
			cols := []string{cellf(14, "%s", name), cellf(5, "e%d", li+1)}
			name = "" // only on the first row of the block
			for _, cn := range t.LeafCells[li] {
				mark := "infsbl"
				for _, f := range t.Feasible[i][li] {
					if f == cn {
						mark = "fsbl"
					}
				}
				cols = append(cols, cellf(8, "%s", mark))
			}
			w.row(cols...)
		}
	}
	w.row(cellf(14, "optimum"), cellf(5, ""),
		cellf(0, "windows (%.0f, %.0f): %v; skew M1=%.1f M2=%.1f",
			t.Windows[0].Hi, t.Windows[1].Hi, t.Assignment, t.SkewM1, t.SkewM2))
	return w.String()
}
