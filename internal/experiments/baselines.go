package experiments

import (
	"context"
	"wavemin/internal/clocktree"
	"wavemin/internal/polarity"
)

// BaselineLadderRow is one circuit evaluated under every polarity
// strategy in the paper's lineage.
type BaselineLadderRow struct {
	Name    string
	NoOpt   Golden // the synthesized tree as-is (all buffers)
	Nieh    Golden // [22] global opposite-phase split
	Samanta Golden // [23] per-zone balanced split
	PeakMin Golden // [27] two-corner knapsack with sizing
	WaveMin Golden // this paper
}

// BaselineLadder compares the whole lineage under the golden evaluator.
type BaselineLadder struct {
	Rows []BaselineLadderRow
}

// RunBaselineLadder evaluates each strategy on each circuit (single mode,
// κ = 20 ps).
func RunBaselineLadder(circuits []string, samples int) (*BaselineLadder, error) {
	out := &BaselineLadder{}
	for _, name := range circuits {
		ckt, err := LoadCircuit(name)
		if err != nil {
			return nil, err
		}
		lib := sizingLib(ckt.Lib)
		eval := func(a polarity.Assignment) (Golden, error) {
			work := ckt.Tree.Clone()
			polarity.Apply(work, a)
			return Evaluate(work, clocktree.NominalMode, ckt.Grid)
		}
		row := BaselineLadderRow{Name: name}
		if row.NoOpt, err = Evaluate(ckt.Tree, clocktree.NominalMode, ckt.Grid); err != nil {
			return nil, err
		}
		nieh, err := polarity.NiehBaseline(ckt.Tree, lib, clocktree.NominalMode)
		if err != nil {
			return nil, err
		}
		if row.Nieh, err = eval(nieh); err != nil {
			return nil, err
		}
		sam, err := polarity.SamantaBaseline(ckt.Tree, lib, clocktree.NominalMode, polarity.DefaultZoneSize)
		if err != nil {
			return nil, err
		}
		if row.Samanta, err = eval(sam); err != nil {
			return nil, err
		}
		for _, algo := range []polarity.Algorithm{polarity.ClkPeakMinBaseline, polarity.ClkWaveMin} {
			res, err := polarity.Optimize(context.Background(), ckt.Tree, polarity.Config{
				Library: lib, Kappa: 20, Samples: samples, Epsilon: 0.01,
				Algorithm: algo, MaxIntervals: 6,
			})
			if err != nil {
				return nil, err
			}
			g, err := eval(res.Assignment)
			if err != nil {
				return nil, err
			}
			if algo == polarity.ClkPeakMinBaseline {
				row.PeakMin = g
			} else {
				row.WaveMin = g
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format renders the ladder (golden peak, mA).
func (b *BaselineLadder) Format() string {
	w := &tableWriter{}
	w.row(cellf(10, "Circuit"), cellf(10, "no-opt"), cellf(10, "Nieh[22]"),
		cellf(12, "Samanta[23]"), cellf(12, "PeakMin[27]"), cellf(10, "WaveMin"))
	for _, r := range b.Rows {
		w.row(cellf(10, "%s", r.Name),
			cellf(10, "%.2f", mA(r.NoOpt.Peak)), cellf(10, "%.2f", mA(r.Nieh.Peak)),
			cellf(12, "%.2f", mA(r.Samanta.Peak)), cellf(12, "%.2f", mA(r.PeakMin.Peak)),
			cellf(10, "%.2f", mA(r.WaveMin.Peak)))
	}
	return w.String()
}
