package experiments

import (
	"context"
	"time"

	"wavemin/internal/bench"
	"wavemin/internal/parallel"
	"wavemin/internal/polarity"
)

func allSpecs() []bench.Spec { return bench.Specs() }

// Table6Config mirrors the paper's Table VI: sampling-density sweep plus
// the fast heuristic, κ = 20 ps.
type Table6Config struct {
	Circuits     []string
	Kappa        float64
	Epsilon      float64
	SampleSweeps []int // paper: 4, 8, 158
	FastSamples  int   // paper: 158
	MaxIntervals int
	// Workers bounds both the per-circuit row fan-out and the solver
	// parallelism inside each optimization. Note the per-variant Exec
	// times measure wall clock and shrink (or jitter) accordingly.
	// 0 = GOMAXPROCS, 1 = serial.
	Workers int
}

// DefaultTable6Config returns the paper's parameters.
func DefaultTable6Config() Table6Config {
	names := make([]string, 0, 7)
	for _, s := range allSpecs() {
		names = append(names, s.Name)
	}
	return Table6Config{
		Circuits: names, Kappa: 20, Epsilon: 0.01,
		SampleSweeps: []int{4, 8, 158}, FastSamples: 158, MaxIntervals: 8,
	}
}

// Table6Cell is one (circuit, variant) measurement.
type Table6Cell struct {
	Peak float64       // golden peak, µA
	Exec time.Duration // optimization wall time
}

// Table6Row covers one circuit.
type Table6Row struct {
	Name    string
	PeakMin Table6Cell   // the [27] baseline
	Sweep   []Table6Cell // per SampleSweeps entry
	Fast    Table6Cell   // ClkWaveMin-f at FastSamples
}

// Table6 is the full sweep.
type Table6 struct {
	Config Table6Config
	Rows   []Table6Row
}

// RunTable6 measures peak current and execution time per variant.
func RunTable6(cfg Table6Config) (*Table6, error) {
	out := &Table6{Config: cfg}
	rows := make([]Table6Row, len(cfg.Circuits))
	ferr := parallel.ForEach(context.Background(), cfg.Workers, len(cfg.Circuits), func(i int) error {
		name := cfg.Circuits[i]
		ckt, err := LoadCircuit(name)
		if err != nil {
			return err
		}
		lib := sizingLib(ckt.Lib)
		row := Table6Row{Name: name}
		measure := func(algo polarity.Algorithm, samples int) (Table6Cell, error) {
			c := polarity.Config{
				Library: lib, Kappa: cfg.Kappa, Samples: samples,
				Epsilon: cfg.Epsilon, Algorithm: algo, MaxIntervals: cfg.MaxIntervals,
				Workers: cfg.Workers,
			}
			start := time.Now()
			res, err := polarity.Optimize(context.Background(), ckt.Tree, c)
			elapsed := time.Since(start)
			if err != nil {
				return Table6Cell{}, err
			}
			work := ckt.Tree.Clone()
			polarity.Apply(work, res.Assignment)
			tm := work.ComputeTiming(c.Mode)
			return Table6Cell{Peak: work.PeakCurrent(tm), Exec: elapsed}, nil
		}
		if row.PeakMin, err = measure(polarity.ClkPeakMinBaseline, 4); err != nil {
			return err
		}
		for _, s := range cfg.SampleSweeps {
			c, err := measure(polarity.ClkWaveMin, s)
			if err != nil {
				return err
			}
			row.Sweep = append(row.Sweep, c)
		}
		if row.Fast, err = measure(polarity.ClkWaveMinF, cfg.FastSamples); err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	out.Rows = rows
	return out, nil
}

// Format renders the paper's Table VI layout.
func (t *Table6) Format() string {
	w := &tableWriter{}
	head := []string{cellf(10, "Circuit"), cellf(9, "PM peak"), cellf(9, "PM ms")}
	for _, s := range t.Config.SampleSweeps {
		head = append(head, cellf(9, "|S|=%d", s), cellf(9, "ms"))
	}
	head = append(head, cellf(9, "Fast"), cellf(9, "ms"))
	w.row(head...)
	for _, r := range t.Rows {
		cols := []string{cellf(10, "%s", r.Name),
			cellf(9, "%.2f", mA(r.PeakMin.Peak)), cellf(9, "%.2f", msOf(r.PeakMin.Exec))}
		for _, c := range r.Sweep {
			cols = append(cols, cellf(9, "%.2f", mA(c.Peak)), cellf(9, "%.2f", msOf(c.Exec)))
		}
		cols = append(cols, cellf(9, "%.2f", mA(r.Fast.Peak)), cellf(9, "%.2f", msOf(r.Fast.Exec)))
		w.row(cols...)
	}
	return w.String()
}

func msOf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
