// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the synthetic benchmark substrate. Each Run*
// function returns a structured result with a Format method that prints
// rows shaped like the paper's; cmd/experiments exposes them on the
// command line and bench_test.go wraps them as benchmarks.
//
// Scaling note: absolute numbers differ from the paper (our substrate is
// a behavioural simulator, not the authors' HSPICE testbed), but the
// comparisons — who wins, by roughly what factor, and how trends move
// with |S|, κ, and the degree of freedom — are the reproduction targets.
// EXPERIMENTS.md records paper-vs-measured for every experiment.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"wavemin/internal/bench"
	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
	"wavemin/internal/cts"
	"wavemin/internal/powergrid"
)

// Circuit is a loaded benchmark: synthesized tree plus its power grid.
type Circuit struct {
	Spec bench.Spec
	Tree *clocktree.Tree
	Grid *powergrid.Grid
	Lib  *cell.Library
}

// LoadCircuit synthesizes one named benchmark with the experiment
// defaults: BUF_X8 leaves (inside the sizing library's range) and an
// ISPD-dense or ISCAS-sparse power grid per the circuit family.
func LoadCircuit(name string) (*Circuit, error) {
	spec, ok := bench.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	lib := cell.DefaultLibrary()
	opt := cts.DefaultOptions()
	opt.LeafCell = "BUF_X8"
	tree, err := spec.Synthesize(lib, opt)
	if err != nil {
		return nil, err
	}
	gridOpt := powergrid.DefaultOptions()
	if spec.Clustered {
		gridOpt = powergrid.DenseOptions()
	}
	grid, err := powergrid.New(spec.DieW, spec.DieH, gridOpt)
	if err != nil {
		return nil, err
	}
	return &Circuit{Spec: spec, Tree: tree, Grid: grid, Lib: lib}, nil
}

// Golden is the "HSPICE-measured" evaluation of one tree configuration:
// the total-waveform peak current and the worst rail deviations from the
// power-grid transient.
type Golden struct {
	Peak float64 // µA
	VDD  float64 // volts
	Gnd  float64 // volts
}

// Evaluate measures the tree in one mode.
func Evaluate(tree *clocktree.Tree, mode clocktree.Mode, grid *powergrid.Grid) (Golden, error) {
	tm := tree.ComputeTiming(mode)
	g := Golden{Peak: tree.PeakCurrent(tm)}
	if grid != nil {
		v, gn, err := grid.MeasureTreeNoise(context.Background(), tree, tm)
		if err != nil {
			return Golden{}, err
		}
		g.VDD, g.Gnd = v, gn
	}
	return g, nil
}

// EvaluateModes measures across modes and keeps the worst of each metric
// (the paper's multi-mode reporting).
func EvaluateModes(tree *clocktree.Tree, modes []clocktree.Mode, grid *powergrid.Grid) (Golden, error) {
	var worst Golden
	for _, m := range modes {
		g, err := Evaluate(tree, m, grid)
		if err != nil {
			return Golden{}, err
		}
		worst.Peak = math.Max(worst.Peak, g.Peak)
		worst.VDD = math.Max(worst.VDD, g.VDD)
		worst.Gnd = math.Max(worst.Gnd, g.Gnd)
	}
	return worst, nil
}

// improvement returns the percent reduction from base to opt (positive =
// opt is better), the paper's "Improvement (%)" columns.
func improvement(base, opt float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - opt) / base
}

// mA formats µA as the paper's mA columns.
func mA(uA float64) float64 { return uA / 1000 }

// mV formats volts as the paper's mV columns.
func mV(v float64) float64 { return v * 1000 }

// tableWriter accumulates fixed-width rows.
type tableWriter struct {
	b strings.Builder
}

func (w *tableWriter) row(cols ...string) {
	for i, c := range cols {
		if i > 0 {
			w.b.WriteString("  ")
		}
		w.b.WriteString(c)
	}
	w.b.WriteString("\n")
}

// String returns the accumulated table text.
func (w *tableWriter) String() string { return w.b.String() }

func cellf(width int, format string, args ...interface{}) string {
	return fmt.Sprintf("%*s", width, fmt.Sprintf(format, args...))
}
