package experiments

import (
	"fmt"

	"wavemin/internal/cell"
	"wavemin/internal/clocktree"
)

// Table1Row is one step of the sibling-replacement sweep.
type Table1Row struct {
	NumInvs int
	NumBufs int
	TD      float64 // observed buffer's propagation delay, ps
	PeakIDD float64 // rail IDD peak (all 17 elements), µA
	PeakISS float64 // rail ISS peak, µA
	Slew    float64 // observed buffer's input transition, ps
}

// Table1 reproduces the paper's Table I: a BUF_X16 parent drives 16
// BUF_X4 leaves; 0..15 of the observed buffer's siblings are replaced by
// INV_X8 and the observed buffer's delay, the shared rail's current peaks,
// and the input slew are recorded. The paper's observation — replacement
// barely moves delay and slew but moves the peaks directly — is the
// justification for Observation 4.
type Table1 struct {
	Rows []Table1Row
}

// RunTable1 builds the 17-element cluster and sweeps replacements.
func RunTable1() (*Table1, error) {
	lib := cell.DefaultLibrary()
	buf4 := lib.MustByName("BUF_X4")
	inv8 := lib.MustByName("INV_X8")
	out := &Table1{}
	for k := 0; k <= 15; k++ {
		tree := clocktree.New(lib.MustByName("BUF_X16"), 25, 25)
		var leaves []clocktree.NodeID
		for i := 0; i < 16; i++ {
			leaf := tree.AddChild(tree.Root(), buf4, 25, 25, 0.01, 2)
			tree.SetSinkCap(leaf, 4)
			leaves = append(leaves, leaf)
		}
		// Observed buffer is leaves[0]; replace the first k siblings.
		for i := 1; i <= k; i++ {
			tree.SetCell(leaves[i], inv8)
		}
		tm := tree.ComputeTiming(clocktree.NominalMode)
		obs := leaves[0]
		row := Table1Row{
			NumInvs: k, NumBufs: 16 - k,
			TD:   tm.ATOut[obs] - tm.ATIn[obs],
			Slew: tm.SlewIn[obs],
		}
		for _, e := range []cell.Edge{cell.Rising, cell.Falling} {
			idd, iss := tree.TreeCurrents(tm, e)
			if p, _ := idd.Peak(); p > row.PeakIDD {
				row.PeakIDD = p
			}
			if p, _ := iss.Peak(); p > row.PeakISS {
				row.PeakISS = p
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format renders Table I.
func (t *Table1) Format() string {
	w := &tableWriter{}
	w.row(cellf(7, "#Invs"), cellf(7, "#Bufs"), cellf(9, "TD(ps)"),
		cellf(11, "IDD(µA)"), cellf(11, "ISS(µA)"), cellf(10, "Slew(ps)"))
	for _, r := range t.Rows {
		w.row(cellf(7, "%d", r.NumInvs), cellf(7, "%d", r.NumBufs),
			cellf(9, "%.2f", r.TD), cellf(11, "%.1f", r.PeakIDD),
			cellf(11, "%.1f", r.PeakISS), cellf(10, "%.2f", r.Slew))
	}
	return w.String()
}

// Check verifies the observation the table supports (Observation 4): a
// *local* update — replacing one more sibling — moves the rail peak much
// more (relatively) than it moves the observed buffer's delay and slew.
func (t *Table1) Check() error {
	var stepPeak, stepSlew, stepTD float64
	for i := 1; i < len(t.Rows); i++ {
		a, b := t.Rows[i-1], t.Rows[i]
		stepPeak += rel(a.PeakIDD, b.PeakIDD)
		stepSlew += rel(a.Slew, b.Slew)
		stepTD += rel(a.TD, b.TD)
	}
	n := float64(len(t.Rows) - 1)
	stepPeak, stepSlew, stepTD = stepPeak/n, stepSlew/n, stepTD/n
	if stepPeak < 1.5*stepSlew || stepPeak < 1.5*stepTD {
		return fmt.Errorf("table1: per-step changes peak %.3f, slew %.3f, TD %.3f — observation 4 not visible",
			stepPeak, stepSlew, stepTD)
	}
	return nil
}

func rel(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	d := (b - a) / a
	if d < 0 {
		return -d
	}
	return d
}
